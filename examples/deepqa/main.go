// Deepqa answers natural-language questions over the knowledge base —
// the "deep question answering" application the tutorial's introduction
// names among the knowledge-centric services a KB enables (§1).
//
// Question templates are parsed into conjunctive triple-pattern queries
// and evaluated by the KB's query engine; entity names in questions are
// resolved through the NED dictionary.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"kbharvest"
	"kbharvest/internal/core"
)

// question pairs a recognizer with a query builder.
type question struct {
	prefix string // lowercase question prefix
	suffix string
	build  func(entity string) []core.Pattern
	render func(b core.Binding) string
}

var questions = []question{
	{
		prefix: "who founded ",
		build: func(e string) []core.Pattern {
			return []core.Pattern{{S: core.PVar("x"), P: core.PIRI("kb:founded"), O: core.PIRI(e)}}
		},
		render: func(b core.Binding) string { return clean(b["x"].Value) },
	},
	{
		prefix: "where was ", suffix: " born",
		build: func(e string) []core.Pattern {
			return []core.Pattern{{S: core.PIRI(e), P: core.PIRI("kb:bornIn"), O: core.PVar("x")}}
		},
		render: func(b core.Binding) string { return clean(b["x"].Value) },
	},
	{
		prefix: "who is married to ",
		build: func(e string) []core.Pattern {
			return []core.Pattern{{S: core.PIRI(e), P: core.PIRI("kb:marriedTo"), O: core.PVar("x")}}
		},
		render: func(b core.Binding) string { return clean(b["x"].Value) },
	},
	{
		prefix: "which companies are located in ",
		build: func(e string) []core.Pattern {
			return []core.Pattern{
				{S: core.PVar("x"), P: core.PIRI("kb:locatedIn"), O: core.PIRI(e)},
				{S: core.PVar("x"), P: core.PIRI("rdf:type"), O: core.PIRI("kb:company")},
			}
		},
		render: func(b core.Binding) string { return clean(b["x"].Value) },
	},
	{
		prefix: "who works at ",
		build: func(e string) []core.Pattern {
			return []core.Pattern{{S: core.PVar("x"), P: core.PIRI("kb:worksAt"), O: core.PIRI(e)}}
		},
		render: func(b core.Binding) string { return clean(b["x"].Value) },
	},
	{
		prefix: "what did ", suffix: " win",
		build: func(e string) []core.Pattern {
			return []core.Pattern{{S: core.PIRI(e), P: core.PIRI("kb:wonPrize"), O: core.PVar("x")}}
		},
		render: func(b core.Binding) string { return clean(b["x"].Value) },
	},
}

func main() {
	log.SetFlags(0)
	opt := kbharvest.DefaultBuildOptions()
	opt.World = kbharvest.WorldConfig{
		People: 80, Companies: 20, Cities: 10, Countries: 3,
		Universities: 8, Products: 15, Prizes: 5,
	}
	result, err := kbharvest.Build(opt)
	if err != nil {
		log.Fatal(err)
	}

	// Pose one question of each kind about real entities of the world.
	w := result.World
	asks := []string{
		"Who founded " + w.Companies[0].Name + "?",
		"Where was " + w.People[0].Name + " born?",
		"Who is married to " + firstMarried(result) + "?",
		"Which companies are located in " + w.Cities[0].Name + "?",
		"Who works at " + w.Companies[1].Name + "?",
		"What did " + firstWinner(result) + " win?",
	}
	for _, q := range asks {
		fmt.Printf("Q: %s\n", q)
		answers := answer(result, q)
		if len(answers) == 0 {
			fmt.Println("A: (no answer found)")
		} else {
			fmt.Printf("A: %s\n", strings.Join(answers, "; "))
		}
		fmt.Println()
	}
}

// answer parses the question, resolves the entity name via the NED
// dictionary, runs the query, and renders answers.
func answer(result *kbharvest.BuildResult, q string) []string {
	lq := strings.ToLower(strings.TrimSuffix(strings.TrimSpace(q), "?"))
	for _, tmpl := range questions {
		if !strings.HasPrefix(lq, tmpl.prefix) || !strings.HasSuffix(lq, tmpl.suffix) {
			continue
		}
		name := strings.TrimSpace(q[len(tmpl.prefix) : len(lq)-len(tmpl.suffix)])
		cands := result.Dictionary.Candidates(name)
		if len(cands) == 0 {
			return nil
		}
		entity := cands[0].Entity
		// Stream bindings instead of materializing the full result set;
		// a QA surface only ever renders a handful of answers.
		var out []string
		seen := map[string]bool{}
		err := result.KB.QueryFunc(context.Background(), tmpl.build(entity), 0, func(b core.Binding) bool {
			a := tmpl.render(b)
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
			return len(out) < 10
		})
		if err != nil {
			log.Fatal(err)
		}
		return out
	}
	return nil
}

func clean(iri string) string {
	return strings.ReplaceAll(strings.TrimPrefix(iri, "kb:"), "_", " ")
}

func firstMarried(result *kbharvest.BuildResult) string {
	for _, f := range result.World.FactsOf("kb:marriedTo") {
		return result.World.ByID[f.S].Name
	}
	return result.World.People[0].Name
}

func firstWinner(result *kbharvest.BuildResult) string {
	for _, f := range result.World.FactsOf("kb:wonPrize") {
		return result.World.ByID[f.S].Name
	}
	return result.World.People[0].Name
}
