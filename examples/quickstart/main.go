// Quickstart: build a knowledge base end to end, query it, and save a
// snapshot — the 60-second tour of the public API.
package main

import (
	"fmt"
	"log"
	"os"

	"kbharvest"
)

func main() {
	log.SetFlags(0)
	// 1. Build a KB at small scale: synthetic world + corpus, taxonomy
	//    harvesting, pattern extraction, consistency reasoning, temporal
	//    scoping — the full §2/§3 pipeline.
	opt := kbharvest.DefaultBuildOptions()
	opt.World = kbharvest.WorldConfig{
		People: 60, Companies: 15, Cities: 10, Countries: 3,
		Universities: 6, Products: 12, Prizes: 4,
	}
	result, err := kbharvest.Build(opt)
	if err != nil {
		log.Fatal(err)
	}
	stats := result.KB.Stats()
	fmt.Printf("built KB: %d facts about %d entities\n", stats.Facts, stats.Entities)

	// 2. Query with conjunctive triple patterns: founders and the city of
	//    the company they founded.
	rows, err := result.KB.QueryStrings([]string{
		"?person kb:founded ?company",
		"?company kb:locatedIn ?city",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("founders with company cities: %d rows; first 3:\n", len(rows))
	for i, b := range rows {
		if i == 3 {
			break
		}
		fmt.Printf("  %s founded %s in %s\n", b["person"].Value, b["company"].Value, b["city"].Value)
	}

	// 3. Ask the taxonomy: every physicist the KB knows.
	physicists := result.KB.Instances("kb:physicist")
	fmt.Printf("physicists known to the KB: %d\n", len(physicists))

	// 4. Disambiguate an ambiguous mention with the bundled NED models.
	person := result.World.People[0]
	linker := result.Linker()
	res := linker.Disambiguate([]kbharvest.Mention{{
		Surface: person.Aliases[0], // ambiguous family name
		Context: result.Corpus.BySubject[person.ID].Text,
	}}, 2 /* joint mode */)
	fmt.Printf("mention %q resolved to %s (gold %s)\n", person.Aliases[0], res[0].Entity, person.ID)

	// 5. Save the KB as N-Triples-with-metadata.
	f, err := os.CreateTemp("", "kbharvest-quickstart-*.nt")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(f.Name())
	if err := kbharvest.SaveKB(result.KB, f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot saved to %s\n", f.Name())
}
