// Brandtracking is the tutorial's motivating analytics example (§4):
// "track and compare two entities in social media over an extended
// timespan (e.g., the Apple iPhone vs. Samsung Galaxy families)".
//
// A year of synthetic posts mentions two smartphone families, half the
// time by the ambiguous family word alone ("Nova" instead of "Nova 3").
// String matching cannot attribute those mentions to a concrete product;
// entity disambiguation against the KB can — that is the "knowledge for
// big data" direction of the tutorial.
package main

import (
	"fmt"
	"log"
	"strings"

	"kbharvest"
	"kbharvest/internal/ned"
	"kbharvest/internal/synth"
	"kbharvest/internal/temporal"
)

func main() {
	log.SetFlags(0)
	opt := kbharvest.DefaultBuildOptions()
	opt.World = kbharvest.WorldConfig{
		People: 80, Companies: 25, Cities: 12, Countries: 4,
		Universities: 8, Products: 40, Prizes: 5,
	}
	result, err := kbharvest.Build(opt)
	if err != nil {
		log.Fatal(err)
	}
	linker := result.Linker()

	streamOpt := synth.DefaultStreamOptions(result.World)
	streamOpt.Posts = 4000
	posts := synth.GenerateStream(result.World, streamOpt)
	fmt.Printf("tracking %q vs %q over %d posts, %d days\n\n",
		streamOpt.Lines[0], streamOpt.Lines[1], len(posts), streamOpt.Days)

	// Monthly mention series per family, with NED resolving each mention
	// to a concrete product entity.
	type key struct {
		line  string
		month int
	}
	series := map[key]int{}
	products := map[string]map[string]int{} // line -> product -> count
	attributed, correct := 0, 0
	for _, p := range posts {
		for _, m := range p.Mentions {
			res := linker.Disambiguate([]ned.Mention{{Surface: m.Surface, Context: p.Text}}, ned.PriorContext)
			if len(res) != 1 || res[0].NoCandidate {
				continue
			}
			entity := res[0].Entity
			line := result.World.ProductLine[entity]
			if line == "" {
				continue
			}
			attributed++
			if entity == m.Entity {
				correct++
			}
			month := temporal.FromDay(p.Day).Month
			series[key{line, month}]++
			if products[line] == nil {
				products[line] = map[string]int{}
			}
			products[line][entity]++
		}
	}
	fmt.Printf("NED attribution accuracy: %.3f (%d/%d mentions)\n\n",
		float64(correct)/float64(attributed), correct, attributed)

	fmt.Println("monthly mention volume (NED-attributed):")
	fmt.Printf("%-10s", "month")
	for _, line := range streamOpt.Lines {
		fmt.Printf("%10s", line)
	}
	fmt.Println()
	for month := 1; month <= 12; month++ {
		fmt.Printf("%-10d", month)
		for _, line := range streamOpt.Lines {
			fmt.Printf("%10d", series[key{line, month}])
		}
		fmt.Println()
	}

	fmt.Println("\nper-product breakdown (top products per family):")
	for _, line := range streamOpt.Lines {
		fmt.Printf("  %s:\n", line)
		for product, n := range products[line] {
			fmt.Printf("    %-30s %5d mentions\n", strings.TrimPrefix(product, "kb:"), n)
		}
	}
}
