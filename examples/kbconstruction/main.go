// Kbconstruction walks through every stage of the knowledge-base
// construction pipeline with per-stage reporting — the narrative of §2
// and §3 of the tutorial in one runnable program: corpus, taxonomy, fact
// extraction, consistency reasoning, temporal scoping, evaluation.
package main

import (
	"fmt"
	"log"

	"kbharvest"
	"kbharvest/internal/core"
	"kbharvest/internal/eval"
	"kbharvest/internal/pipeline"
	"kbharvest/internal/rdf"
)

func main() {
	log.SetFlags(0)
	opt := kbharvest.DefaultBuildOptions()
	opt.World = kbharvest.WorldConfig{
		People: 100, Companies: 25, Cities: 12, Countries: 4,
		Universities: 8, Products: 20, Prizes: 6,
	}
	opt.Workers = 4
	result, err := kbharvest.Build(opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== stage timings")
	for _, st := range result.Timings {
		fmt.Printf("  %-10s %8v  %6d items\n", st.Stage, st.Duration.Round(1e6), st.Items)
	}

	fmt.Println("\n=== corpus (the raw material)")
	fmt.Printf("  articles: %d\n", len(result.Corpus.Articles))
	a := result.Corpus.Articles[0]
	fmt.Printf("  sample article %q:\n    categories: %v\n    infobox: %v\n",
		a.Title, a.Categories, a.Infobox)

	fmt.Println("\n=== taxonomy (harvested from categories)")
	for _, class := range []string{"kb:person", "kb:scientist", "kb:company"} {
		fmt.Printf("  %-14s %4d instances, subclasses: %v\n",
			class, len(result.KB.Instances(class)), result.KB.Subclasses(class))
	}

	fmt.Println("\n=== fact harvesting + reasoning")
	fmt.Printf("  candidates extracted: %d\n", result.Candidates)
	fmt.Printf("  accepted after consistency reasoning: %d\n", result.Accepted)
	tp, fp, fn := pipeline.EvaluateFacts(result)
	fmt.Printf("  quality vs ground truth: %v\n", eval.Score(tp, fp, fn))

	fmt.Println("\n=== temporal scopes (sample)")
	shown := 0
	result.KB.MatchFunc(rdf.Triple{P: rdf.NewIRI("kb:worksAt")}, func(id core.FactID, t rdf.Triple) bool {
		info, _ := result.KB.Info(id)
		if info.Time != core.Always {
			fmt.Printf("  %s worksAt %s during %v\n", t.S.Value, t.O.Value, info.Time)
			shown++
		}
		return shown < 3
	})

	fmt.Println("\n=== provenance (every fact knows where it came from)")
	shown = 0
	result.KB.MatchFunc(rdf.Triple{P: rdf.NewIRI("kb:founded")}, func(id core.FactID, t rdf.Triple) bool {
		info, _ := result.KB.Info(id)
		fmt.Printf("  %s  conf=%.2f  source=%s\n", t.String(), info.Confidence, info.Source)
		shown++
		return shown < 3
	})
}
