package kbharvest

// The benchmark harness: one testing.B benchmark per experiment in
// DESIGN.md §4 (each regenerates its EXPERIMENTS.md table once per
// iteration), followed by micro-benchmarks for the core data structures
// and the index ablation called out in DESIGN.md §5.
//
// Run with: go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"testing"

	"kbharvest/internal/core"
	"kbharvest/internal/experiments"
	"kbharvest/internal/extract"
	"kbharvest/internal/extract/openie"
	"kbharvest/internal/extract/patterns"
	"kbharvest/internal/linkage"
	"kbharvest/internal/ned"
	"kbharvest/internal/parse"
	"kbharvest/internal/pipeline"
	"kbharvest/internal/qcache"
	"kbharvest/internal/rdf"
	"kbharvest/internal/reason"
	"kbharvest/internal/synth"
	"kbharvest/internal/text"
)

// benchExperiment runs one experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tabs := exp.Run(); len(tabs) == 0 {
			b.Fatal("experiment produced no tables")
		}
	}
}

func BenchmarkE1TaxonomyInduction(b *testing.B)  { benchExperiment(b, "E1") }
func BenchmarkE2SetExpansion(b *testing.B)       { benchExperiment(b, "E2") }
func BenchmarkE3Bootstrap(b *testing.B)          { benchExperiment(b, "E3") }
func BenchmarkE4DistantSupervision(b *testing.B) { benchExperiment(b, "E4") }
func BenchmarkE5FactorGraph(b *testing.B)        { benchExperiment(b, "E5") }
func BenchmarkE6Reasoning(b *testing.B)          { benchExperiment(b, "E6") }
func BenchmarkE7OpenIE(b *testing.B)             { benchExperiment(b, "E7") }
func BenchmarkE8MapReduceScaling(b *testing.B)   { benchExperiment(b, "E8") }
func BenchmarkE9SequenceMining(b *testing.B)     { benchExperiment(b, "E9") }
func BenchmarkE10Temporal(b *testing.B)          { benchExperiment(b, "E10") }
func BenchmarkE11Multilingual(b *testing.B)      { benchExperiment(b, "E11") }
func BenchmarkE12RuleMining(b *testing.B)        { benchExperiment(b, "E12") }
func BenchmarkE13NED(b *testing.B)               { benchExperiment(b, "E13") }
func BenchmarkE14Linkage(b *testing.B)           { benchExperiment(b, "E14") }
func BenchmarkE15BrandTracking(b *testing.B)     { benchExperiment(b, "E15") }

// --- micro-benchmarks -------------------------------------------------

func benchStore(n int) *core.Store {
	st := core.NewStore()
	for i := 0; i < n; i++ {
		st.Add(rdf.T(
			fmt.Sprintf("kb:e%d", i%1000),
			fmt.Sprintf("kb:r%d", i%20),
			fmt.Sprintf("kb:e%d", (i*7)%1000),
		))
	}
	return st
}

func BenchmarkStoreAdd(b *testing.B) {
	b.ReportAllocs()
	st := core.NewStore()
	for i := 0; i < b.N; i++ {
		st.Add(rdf.T(
			fmt.Sprintf("kb:e%d", i%100000),
			fmt.Sprintf("kb:r%d", i%50),
			fmt.Sprintf("kb:e%d", (i*13)%100000),
		))
	}
}

// benchTriples pre-generates n distinct-ish triples so the ingestion
// benchmarks below measure store work, not fmt.Sprintf.
func benchTriples(n int) []rdf.Triple {
	ts := make([]rdf.Triple, n)
	for i := range ts {
		ts[i] = rdf.T(
			fmt.Sprintf("kb:e%d", i%100000),
			fmt.Sprintf("kb:r%d", i%50),
			fmt.Sprintf("kb:e%d", (i/50)%100000+100000),
		)
	}
	return ts
}

// BenchmarkStoreAddBatch compares the batch write path against per-triple
// Add on identical pre-generated input. The /1 case is the per-triple
// baseline; /64 and /1024 go through AddBatch, so ns/op across the
// sub-benchmarks is directly comparable.
func BenchmarkStoreAddBatch(b *testing.B) {
	for _, size := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("%d", size), func(b *testing.B) {
			ts := benchTriples(b.N)
			st := core.NewStore()
			b.ReportAllocs()
			b.ResetTimer()
			if size == 1 {
				for _, t := range ts {
					st.Add(t)
				}
				return
			}
			for i := 0; i < len(ts); i += size {
				end := i + size
				if end > len(ts) {
					end = len(ts)
				}
				st.AddBatch(ts[i:end])
			}
		})
	}
}

func BenchmarkStoreMatchSP(b *testing.B) {
	st := benchStore(100000)
	pat := rdf.Triple{S: rdf.NewIRI("kb:e42"), P: rdf.NewIRI("kb:r2")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Match(pat)
	}
}

func BenchmarkStoreMatchP(b *testing.B) {
	st := benchStore(100000)
	pat := rdf.Triple{P: rdf.NewIRI("kb:r2")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.MatchFunc(pat, func(core.FactID, rdf.Triple) bool { return true })
	}
}

// BenchmarkStoreIndexAblation compares an indexed (?, p, o) lookup with
// the same query answered by a full scan — the DESIGN.md §5 index
// ablation. Expect several orders of magnitude difference.
func BenchmarkStoreIndexAblation(b *testing.B) {
	st := benchStore(100000)
	pat := rdf.Triple{P: rdf.NewIRI("kb:r2"), O: rdf.NewIRI("kb:e7")}
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st.Match(pat)
		}
	})
	b.Run("fullscan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			st.MatchFunc(rdf.Triple{}, func(_ core.FactID, t rdf.Triple) bool {
				if t.P == pat.P && t.O == pat.O {
					n++
				}
				return true
			})
		}
	})
}

func BenchmarkStoreQueryJoin(b *testing.B) {
	st := benchStore(100000)
	q := []core.Pattern{
		{S: core.PVar("x"), P: core.PIRI("kb:r2"), O: core.PVar("y")},
		{S: core.PVar("y"), P: core.PIRI("kb:r3"), O: core.PVar("z")},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Query(q)
	}
}

// BenchmarkQueryCacheWarm measures the steady-state read path: every
// query is a cache hit validated by per-pattern generation loads.
func BenchmarkQueryCacheWarm(b *testing.B) {
	st := benchStore(100000)
	q := []core.Pattern{
		{S: core.PVar("x"), P: core.PIRI("kb:r2"), O: core.PVar("y")},
		{S: core.PVar("y"), P: core.PIRI("kb:r3"), O: core.PVar("z")},
	}
	c := qcache.New(st, qcache.Options{})
	ctx := context.Background()
	if _, _, err := c.Query(ctx, q, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, cached, _ := c.Query(ctx, q, 0); !cached {
			b.Fatal("warm benchmark missed the cache")
		}
	}
}

// BenchmarkQueryCacheInvalidated measures the worst case: every hit is
// stale because a write bumped an overlapping generation, forcing a
// re-evaluation plus re-fill each iteration.
func BenchmarkQueryCacheInvalidated(b *testing.B) {
	st := benchStore(100000)
	q := []core.Pattern{
		{S: core.PVar("x"), P: core.PIRI("kb:r2"), O: core.PVar("y")},
		{S: core.PVar("y"), P: core.PIRI("kb:r3"), O: core.PVar("z")},
	}
	c := qcache.New(st, qcache.Options{})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Add(rdf.T(fmt.Sprintf("kb:churn%d", i), "kb:r2", "kb:churn"))
		if _, cached, _ := c.Query(ctx, q, 0); cached {
			b.Fatal("invalidation benchmark hit the cache")
		}
	}
}

const benchSentence = "Steve Jobs founded Apple Computer in Cupertino in 1976 and later released the Nova 3."

func BenchmarkTokenize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		text.Tokenize(benchSentence)
	}
}

func BenchmarkPOSTag(b *testing.B) {
	toks := text.Tokenize(benchSentence)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		text.Tag(toks)
	}
}

func BenchmarkDependencyParse(b *testing.B) {
	tagged := text.Tag(text.Tokenize(benchSentence))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parse.Parse(tagged)
	}
}

func BenchmarkPorterStem(b *testing.B) {
	words := []string{"relational", "conflated", "acquisitions", "establishes", "university"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		text.Stem(words[i%len(words)])
	}
}

func benchCorpusSentences(b *testing.B) (*synth.World, []extract.Sentence) {
	b.Helper()
	w := synth.Generate(synth.Config{
		People: 100, Companies: 25, Cities: 12, Countries: 4,
		Universities: 8, Products: 20, Prizes: 6,
	}, 301)
	corpus := synth.BuildCorpus(w, synth.DefaultCorpusOptions())
	return w, extract.SplitDocs(pipeline.Docs(corpus))
}

func BenchmarkPatternExtraction(b *testing.B) {
	_, sents := benchCorpusSentences(b)
	pats := patterns.DefaultPatterns()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		patterns.Apply(sents, pats)
	}
}

func BenchmarkOpenIEPerDoc(b *testing.B) {
	w := synth.Generate(synth.Config{
		People: 50, Companies: 12, Cities: 8, Countries: 3,
		Universities: 5, Products: 10, Prizes: 4,
	}, 302)
	corpus := synth.BuildCorpus(w, synth.DefaultCorpusOptions())
	docs := make([]openie.Doc, len(corpus.Articles))
	for i, a := range corpus.Articles {
		docs[i] = openie.Doc{Text: a.Text, Source: a.ID}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		openie.Extract(docs[i%len(docs):i%len(docs)+1], openie.DefaultOptions())
	}
}

func BenchmarkWalkSAT(b *testing.B) {
	_, sents := benchCorpusSentences(b)
	cands := patterns.Apply(sents, patterns.DefaultPatterns())
	rules := reason.ConsistencyRules{Functional: map[string]bool{"kb:bornIn": true, "kb:locatedIn": true}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := reason.BuildConsistency(cands, rules)
		cp.SolveWalkSAT(2000, 0.2, int64(i))
	}
}

func BenchmarkNEDJoint(b *testing.B) {
	res, err := pipeline.Run(context.Background(), pipeline.Options{
		World: synth.Config{
			People: 100, Companies: 25, Cities: 12, Countries: 4,
			Universities: 8, Products: 20, Prizes: 6,
		},
		Seed: 303, Workers: 2, Reason: false, Infoboxes: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	linker := res.Linker()
	a := res.Corpus.Articles[0]
	var mentions []ned.Mention
	for _, m := range a.Mentions {
		mentions = append(mentions, ned.Mention{Surface: m.Surface, Context: a.Text})
	}
	if len(mentions) == 0 {
		b.Skip("no mentions in first article")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linker.Disambiguate(mentions, ned.Joint)
	}
}

func BenchmarkLinkageBlocking(b *testing.B) {
	w := synth.Generate(synth.DefaultConfig().Scaled(0.5), 304)
	var a, bb []linkage.Record
	for _, p := range w.People {
		a = append(a, linkage.Record{ID: "a:" + p.ID, Name: p.Name, Aliases: p.Aliases})
		bb = append(bb, linkage.Record{ID: "b:" + p.ID, Name: p.Name, Aliases: p.Aliases})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linkage.Blocking(a, bb)
	}
}

func BenchmarkJaroWinkler(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		linkage.JaroWinkler("Kraurneathon Virnnaim", "Kraurneathan Virnaim")
	}
}

func BenchmarkPipelineSmall(b *testing.B) {
	opt := pipeline.Options{
		World: synth.Config{
			People: 50, Companies: 12, Cities: 8, Countries: 3,
			Universities: 5, Products: 10, Prizes: 4,
		},
		Seed: 305, Workers: 4, Reason: true, Infoboxes: true, Temporal: true,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.Run(context.Background(), opt); err != nil {
			b.Fatal(err)
		}
	}
}
