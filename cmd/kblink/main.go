// Kblink aligns two KB editions and emits owl:sameAs links (§4's entity
// linkage). For the demo it derives two noisy editions of the same
// synthetic world; -seed2 controls the perturbation.
//
// Usage:
//
//	kblink                  # link two editions, print sameAs triples
//	kblink -matcher rule    # threshold matcher instead of learned
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"kbharvest/internal/linkage"
	"kbharvest/internal/rdf"
	"kbharvest/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kblink: ")
	seed := flag.Int64("seed", 115, "world seed")
	matcherFlag := flag.String("matcher", "learned", "matcher: rule | learned")
	threshold := flag.Float64("threshold", 0.93, "rule matcher threshold")
	flag.Parse()

	a, b, gold := editions(*seed)
	var matcher linkage.Matcher = linkage.RuleMatcher{Threshold: *threshold}
	if *matcherFlag == "learned" {
		ta, tb, tgold := editions(*seed + 1000)
		matcher = trainOn(ta, tb, tgold)
	}
	pairs := linkage.Blocking(a, b)
	links := linkage.Link(a, b, pairs, matcher)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	correct := 0
	for _, l := range links {
		fmt.Fprintln(w, rdf.T(l.A, rdf.OWLSameAs, l.B).String())
		if gold[l.A] == l.B {
			correct++
		}
	}
	fmt.Fprintf(os.Stderr, "kblink: %d candidate pairs, %d links, %d correct (gold %d)\n",
		len(pairs), len(links), correct, len(gold))
}

func editions(seed int64) (a, b []linkage.Record, gold map[string]string) {
	w := synth.Generate(synth.DefaultConfig().Scaled(0.5), seed)
	rng := rand.New(rand.NewSource(seed + 1))
	gold = map[string]string{}
	for i, p := range w.People {
		aID := "a:" + p.ID
		a = append(a, linkage.Record{ID: aID, Name: p.Name, Aliases: p.Aliases})
		if i%7 != 0 {
			bID := "b:" + p.ID
			b = append(b, linkage.Record{ID: bID, Name: perturb(p.Name, rng), Aliases: p.Aliases})
			gold[aID] = bID
		}
	}
	return a, b, gold
}

func trainOn(a, b []linkage.Record, gold map[string]string) linkage.Matcher {
	byID := map[string]linkage.Record{}
	for _, r := range b {
		byID[r.ID] = r
	}
	rng := rand.New(rand.NewSource(9))
	var examples []linkage.LabeledPair
	for _, r := range a {
		if bid, ok := gold[r.ID]; ok {
			examples = append(examples, linkage.LabeledPair{A: r, B: byID[bid], Match: true})
		}
		neg := b[rng.Intn(len(b))]
		if gold[r.ID] != neg.ID {
			examples = append(examples, linkage.LabeledPair{A: r, B: neg, Match: false})
		}
	}
	return linkage.TrainLogistic(examples, 20, 0.5, 7)
}

func perturb(name string, rng *rand.Rand) string {
	if len(name) < 4 {
		return name
	}
	i := 1 + rng.Intn(len(name)-2)
	switch rng.Intn(3) {
	case 0:
		return name[:i] + name[i+1:]
	case 1:
		bs := []byte(name)
		bs[i], bs[i+1] = bs[i+1], bs[i]
		return string(bs)
	default:
		return name[:i] + string(name[i]) + name[i:]
	}
}
