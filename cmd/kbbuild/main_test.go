package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"kbharvest/internal/core"
	"kbharvest/internal/rdf"
)

func TestShardPaths(t *testing.T) {
	got := shardPaths("kb.nt", 3)
	want := []string{"kb.0.nt", "kb.1.nt", "kb.2.nt"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("shardPaths[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if p := shardPaths("kb.nt", 1); len(p) != 1 || p[0] != "kb.nt" {
		t.Errorf("shardPaths(1) = %v, want [kb.nt]", p)
	}
}

// writeShards + checkShards round-trip, and -check turns corruption —
// a truncated shard, a flipped bit — into a hard error instead of a
// silently short KB.
func TestCheckShardsDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	st := core.NewStore()
	for i := 0; i < 40; i++ {
		st.Add(rdf.T(fmt.Sprintf("kb:e%d", i), "kb:rel", fmt.Sprintf("kb:v%d", i)))
	}
	paths := shardPaths(filepath.Join(dir, "kb.nt"), 2)
	if err := writeShards(st, paths); err != nil {
		t.Fatal(err)
	}
	if err := checkShards(paths, st.Len()); err != nil {
		t.Fatalf("clean check failed: %v", err)
	}

	// Truncation: chop the tail (trailer and some facts) off shard 0.
	orig, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(paths[0], orig[:len(orig)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := checkShards(paths, st.Len()); err == nil {
		t.Error("check passed on truncated shard, want integrity error")
	}
	if err := os.WriteFile(paths[0], orig, 0o644); err != nil {
		t.Fatal(err)
	}

	// Bit flip: corrupt one content byte in shard 1 without changing size.
	flipped, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.IndexByte(flipped, 'e') // inside some "kb:eN" subject
	if i < 0 {
		t.Fatal("no byte to flip")
	}
	flipped[i] ^= 0x01
	if err := os.WriteFile(paths[1], flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := checkShards(paths, st.Len()); err == nil {
		t.Error("check passed on bit-flipped shard, want integrity error")
	}
}
