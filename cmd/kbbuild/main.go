// Kbbuild runs the full knowledge-base construction pipeline over a
// synthetic corpus and writes the resulting KB snapshot.
//
// Usage:
//
//	kbbuild -out kb.nt              # default-scale world
//	kbbuild -scale 2 -seed 7 -out kb.nt -workers 8
//	kbbuild -no-reason              # skip consistency reasoning
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"kbharvest/internal/core"
	"kbharvest/internal/eval"
	"kbharvest/internal/ingest"
	"kbharvest/internal/pipeline"
	"kbharvest/internal/rdf"
	"kbharvest/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kbbuild: ")
	out := flag.String("out", "", "snapshot output path (default: stdout off)")
	scale := flag.Float64("scale", 1.0, "world scale factor")
	seed := flag.Int64("seed", 42, "generation seed")
	workers := flag.Int("workers", 0, "extraction parallelism (0 = all cores)")
	queueDepth := flag.Int("ingest-queue", 0, "write-behind ingest queue depth in batches (0 = default)")
	noReason := flag.Bool("no-reason", false, "disable consistency reasoning")
	reify := flag.String("reify", "", "also export SPOTL-style reified facts (metadata as triples) to this path")
	check := flag.Bool("check", false, "reload the written snapshot and verify the fact count round-trips")
	flag.Parse()
	if *check && *out == "" {
		log.Fatal("-check requires -out")
	}

	// Ctrl-C cancels the pipeline run cleanly instead of killing the
	// process mid-write: the stage loop, map-reduce workers, and the
	// write-behind ingest queue are all context-aware.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opt := pipeline.DefaultOptions()
	opt.World = synth.DefaultConfig().Scaled(*scale)
	opt.Seed = *seed
	opt.Workers = *workers
	opt.Reason = !*noReason
	opt.Ingest = ingest.Options{QueueDepth: *queueDepth}

	res, err := pipeline.Run(ctx, opt)
	if err != nil {
		log.Fatal(err)
	}
	stats := res.KB.Stats()
	fmt.Printf("world: %d entities, %d gold facts\n", len(res.World.Entities), len(res.World.Facts))
	fmt.Printf("corpus: %d articles\n", len(res.Corpus.Articles))
	fmt.Printf("extraction: %d candidates -> %d accepted\n", res.Candidates, res.Accepted)
	fmt.Printf("kb: %d facts, %d entities, %d predicates\n", stats.Facts, stats.Entities, stats.Predicates)
	tp, fp, fn := pipeline.EvaluateFacts(res)
	fmt.Printf("fact quality vs ground truth: %v\n", eval.Score(tp, fp, fn))
	for _, st := range res.Timings {
		fmt.Printf("  stage %-10s %8v  %6d items\n", st.Stage, st.Duration.Round(1e6), st.Items)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := res.KB.Save(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("snapshot written to %s\n", *out)
		if *check {
			g, err := os.Open(*out)
			if err != nil {
				log.Fatal(err)
			}
			defer g.Close()
			reloaded := core.NewStore()
			n, err := reloaded.Load(g)
			if err != nil {
				log.Fatalf("check: reload: %v", err)
			}
			if n != stats.Facts || reloaded.Len() != stats.Facts {
				log.Fatalf("check: snapshot round-trip lost facts: wrote %d, reloaded %d (live %d)",
					stats.Facts, n, reloaded.Len())
			}
			fmt.Printf("check: snapshot round-trips %d facts\n", n)
		}
	}
	if *reify != "" {
		f, err := os.Create(*reify)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		triples := res.KB.ReifyAll(rdf.Triple{})
		if err := rdf.WriteAll(f, triples); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d reified triples written to %s\n", len(triples), *reify)
	}
}
