// Kbbuild runs the full knowledge-base construction pipeline over a
// synthetic corpus and writes the resulting KB snapshot.
//
// With -shards N the snapshot is hash-partitioned by subject into
// kb.0.nt … kb.N-1.nt (for -out kb.nt), one file per kbserve shard; the
// partition function lives in internal/shardkb so kbrouter routes
// queries to the same shard kbbuild wrote each subject to. The plain
// single-file snapshot is simply the N=1 case.
//
// Usage:
//
//	kbbuild -out kb.nt              # default-scale world
//	kbbuild -scale 2 -seed 7 -out kb.nt -workers 8
//	kbbuild -out kb.nt -shards 4    # kb.0.nt … kb.3.nt
//	kbbuild -no-reason              # skip consistency reasoning
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"kbharvest/internal/core"
	"kbharvest/internal/eval"
	"kbharvest/internal/ingest"
	"kbharvest/internal/pipeline"
	"kbharvest/internal/rdf"
	"kbharvest/internal/shardkb"
	"kbharvest/internal/synth"
)

// shardPaths derives the per-partition snapshot names from -out:
// kb.nt with 4 shards becomes kb.0.nt … kb.3.nt. With n <= 1 the
// single-file name is used as-is.
func shardPaths(out string, n int) []string {
	if n <= 1 {
		return []string{out}
	}
	ext := filepath.Ext(out)
	base := strings.TrimSuffix(out, ext)
	paths := make([]string, n)
	for i := range paths {
		paths[i] = fmt.Sprintf("%s.%d%s", base, i, ext)
	}
	return paths
}

// writeShards saves the store hash-partitioned across the given paths
// using the shared subject-hash shard function. Writes are crash-safe:
// each shard goes to a synced temp file atomically renamed into place,
// so an interrupted build leaves the previous snapshot intact.
func writeShards(st *core.Store, paths []string) error {
	n := len(paths)
	return st.SaveShardFiles(paths, func(t rdf.Triple) int { return shardkb.TripleShard(t, n) })
}

// checkShards reloads every partition and verifies (a) the per-shard
// fact counts sum to the store's count and (b) each reloaded fact lives
// in the partition its subject hashes to.
func checkShards(paths []string, want int) error {
	total := 0
	n := len(paths)
	for i, p := range paths {
		g, err := os.Open(p)
		if err != nil {
			return fmt.Errorf("check: %w", err)
		}
		reloaded := core.NewStore()
		got, err := reloaded.Load(g)
		g.Close()
		if err != nil {
			return fmt.Errorf("check: reload %s: %w", p, err)
		}
		if reloaded.Len() != got {
			return fmt.Errorf("check: %s: read %d facts but store holds %d", p, got, reloaded.Len())
		}
		for _, t := range reloaded.All() {
			if s := shardkb.TripleShard(t, n); s != i {
				return fmt.Errorf("check: %s holds %s, which hashes to shard %d", p, t, s)
			}
		}
		total += got
	}
	if total != want {
		return fmt.Errorf("check: shards round-trip %d facts, wrote %d", total, want)
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("kbbuild: ")
	out := flag.String("out", "", "snapshot output path (default: stdout off)")
	scale := flag.Float64("scale", 1.0, "world scale factor")
	seed := flag.Int64("seed", 42, "generation seed")
	workers := flag.Int("workers", 0, "extraction parallelism (0 = all cores)")
	queueDepth := flag.Int("ingest-queue", 0, "write-behind ingest queue depth in batches (0 = default)")
	noReason := flag.Bool("no-reason", false, "disable consistency reasoning")
	reify := flag.String("reify", "", "also export SPOTL-style reified facts (metadata as triples) to this path")
	check := flag.Bool("check", false, "reload the written snapshot and verify the fact count round-trips")
	shards := flag.Int("shards", 1, "hash-partition the snapshot by subject into this many files")
	flag.Parse()
	if *check && *out == "" {
		log.Fatal("-check requires -out")
	}
	if *shards < 1 {
		log.Fatal("-shards must be >= 1")
	}
	if *shards > 1 && *out == "" {
		log.Fatal("-shards requires -out")
	}

	// Ctrl-C cancels the pipeline run cleanly instead of killing the
	// process mid-write: the stage loop, map-reduce workers, and the
	// write-behind ingest queue are all context-aware.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opt := pipeline.DefaultOptions()
	opt.World = synth.DefaultConfig().Scaled(*scale)
	opt.Seed = *seed
	opt.Workers = *workers
	opt.Reason = !*noReason
	opt.Ingest = ingest.Options{QueueDepth: *queueDepth}

	res, err := pipeline.Run(ctx, opt)
	if err != nil {
		log.Fatal(err)
	}
	stats := res.KB.Stats()
	fmt.Printf("world: %d entities, %d gold facts\n", len(res.World.Entities), len(res.World.Facts))
	fmt.Printf("corpus: %d articles\n", len(res.Corpus.Articles))
	fmt.Printf("extraction: %d candidates -> %d accepted\n", res.Candidates, res.Accepted)
	fmt.Printf("kb: %d facts, %d entities, %d predicates\n", stats.Facts, stats.Entities, stats.Predicates)
	tp, fp, fn := pipeline.EvaluateFacts(res)
	fmt.Printf("fact quality vs ground truth: %v\n", eval.Score(tp, fp, fn))
	for _, st := range res.Timings {
		fmt.Printf("  stage %-10s %8v  %6d items\n", st.Stage, st.Duration.Round(1e6), st.Items)
	}
	if *out != "" {
		paths := shardPaths(*out, *shards)
		if err := writeShards(res.KB, paths); err != nil {
			log.Fatal(err)
		}
		if *shards > 1 {
			fmt.Printf("snapshot partitioned into %d shards: %s … %s\n", *shards, paths[0], paths[len(paths)-1])
		} else {
			fmt.Printf("snapshot written to %s\n", *out)
		}
		if *check {
			if err := checkShards(paths, stats.Facts); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("check: %d shard(s) round-trip %d facts\n", len(paths), stats.Facts)
		}
	}
	if *reify != "" {
		f, err := os.Create(*reify)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		triples := res.KB.ReifyAll(rdf.Triple{})
		if err := rdf.WriteAll(f, triples); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d reified triples written to %s\n", len(triples), *reify)
	}
}
