// Kbserve is the long-lived query serving surface of the knowledge base:
// it loads a snapshot once and serves concurrent conjunctive queries over
// HTTP through the sharded result cache (internal/qcache), with
// per-request timeouts and an operational stats endpoint.
//
// Usage:
//
//	kbserve -kb kb.nt [-addr :8080] [-timeout 2s] [-cache-shards 16] [-cache-per-shard 256]
//
// Endpoints:
//
//	POST /query   {"patterns": ["?p kb:founded ?c", "?c kb:locatedIn ?city"], "limit": 100}
//	              -> {"vars": [...], "rows": [{"var": "<term>"}, ...], "count": N,
//	                  "cached": true|false, "took_us": T}
//	              Patterns use the kbquery "s p o" syntax: ?name marks
//	              variables, bare tokens and <...> are IRIs, double-quoted
//	              strings are literals. An all-constant query returns
//	              {"ask": true|false} instead of rows.
//	GET  /statsz  cache hit rate, query latency histogram, store stats
//	GET  /healthz liveness probe
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"kbharvest/internal/core"
	"kbharvest/internal/qcache"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kbserve: ")
	kbPath := flag.String("kb", "", "KB snapshot path (required)")
	addr := flag.String("addr", ":8080", "listen address")
	timeout := flag.Duration("timeout", 2*time.Second, "per-request query timeout")
	cacheShards := flag.Int("cache-shards", 16, "result cache shard count")
	cachePerShard := flag.Int("cache-per-shard", 256, "cached queries per shard")
	flag.Parse()
	if *kbPath == "" {
		fmt.Fprintln(os.Stderr, "usage: kbserve -kb snapshot.nt [-addr :8080]")
		os.Exit(2)
	}
	f, err := os.Open(*kbPath)
	if err != nil {
		log.Fatal(err)
	}
	st := core.NewStore()
	n, err := st.Load(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded %d facts from %s: %s", n, *kbPath, st)

	srv := newServer(st, qcache.Options{Shards: *cacheShards, PerShard: *cachePerShard}, *timeout)
	// A public serving endpoint needs connection-level timeouts: the
	// per-request query timeout only starts once a request is parsed, so
	// without these a client trickling headers or a body holds a
	// connection open indefinitely (slowloris).
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	log.Printf("serving on %s", *addr)
	log.Fatal(hs.ListenAndServe())
}
