// Kbserve is the long-lived query serving surface of the knowledge base:
// it loads a snapshot once and serves concurrent conjunctive queries over
// HTTP through the sharded result cache (internal/qcache), with
// per-request timeouts and an operational stats endpoint. The handler
// itself lives in internal/serve; N kbserve processes over partitioned
// snapshots (kbbuild -shards) form the shard tier behind cmd/kbrouter.
//
// Usage:
//
//	kbserve -kb kb.nt [-addr :8080] [-timeout 2s] [-cache-shards 16] [-cache-per-shard 256]
//
// Endpoints:
//
//	POST /query    {"patterns": ["?p kb:founded ?c", "?c kb:locatedIn ?city"], "limit": 100}
//	               -> {"vars": [...], "rows": [{"var": "<term>"}, ...], "count": N,
//	                   "cached": true|false, "took_us": T}
//	               Patterns use the kbquery "s p o" syntax: ?name marks
//	               variables, bare tokens and <...> are IRIs, double-quoted
//	               strings are literals. An all-constant query returns
//	               {"ask": true|false} instead of rows.
//	POST /estimate {"patterns": [...]} -> per-pattern index-cardinality bounds
//	GET  /statsz   cache hit rate, query latency histogram, store stats
//	GET  /healthz  liveness probe
//	GET  /readyz   readiness: fact count + snapshot path; 503 while empty,
//	               while the snapshot failed CRC verification, or while
//	               draining for shutdown
//
// On SIGINT/SIGTERM the server first flips /readyz to 503 ("draining")
// for -drain-notice so routers stop sending work, then stops accepting
// connections and drains in-flight requests for up to -drain before
// exiting, so a rolling restart behind kbrouter never kills queries
// mid-flight.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kbharvest/internal/core"
	"kbharvest/internal/qcache"
	"kbharvest/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kbserve: ")
	kbPath := flag.String("kb", "", "KB snapshot path (required)")
	addr := flag.String("addr", ":8080", "listen address")
	timeout := flag.Duration("timeout", 2*time.Second, "per-request query timeout")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown deadline for in-flight requests")
	drainNotice := flag.Duration("drain-notice", 500*time.Millisecond, "how long /readyz advertises draining before the listener closes")
	cacheShards := flag.Int("cache-shards", 16, "result cache shard count")
	cachePerShard := flag.Int("cache-per-shard", 256, "cached queries per shard")
	flag.Parse()
	if *kbPath == "" {
		fmt.Fprintln(os.Stderr, "usage: kbserve -kb snapshot.nt [-addr :8080]")
		os.Exit(2)
	}
	f, err := os.Open(*kbPath)
	if err != nil {
		log.Fatal(err)
	}
	st := core.NewStore()
	n, loadErr := st.Load(f)
	f.Close()
	if loadErr != nil {
		// A corrupt snapshot (failed CRC, truncated file) is not a reason
		// to crash-loop: keep the process up so operators can hit /statsz
		// and /healthz, but never report ready — the router will not send
		// traffic to a shard holding a torn KB.
		log.Printf("SNAPSHOT REJECTED, refusing ready: %v", loadErr)
	} else {
		log.Printf("loaded %d facts from %s: %s", n, *kbPath, st)
	}

	srv := serve.NewServer(st, serve.Options{
		Cache:     qcache.Options{Shards: *cacheShards, PerShard: *cachePerShard},
		Timeout:   *timeout,
		Snapshot:  *kbPath,
		LoadError: loadErr,
	})
	// A public serving endpoint needs connection-level timeouts: the
	// per-request query timeout only starts once a request is parsed, so
	// without these a client trickling headers or a body holds a
	// connection open indefinitely (slowloris).
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		IdleTimeout:       60 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain: Shutdown stops accepting
	// new connections and waits for in-flight requests up to the drain
	// deadline, so rolling restarts behind kbrouter are lossless.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("serving on %s", *addr)
		errc <- hs.ListenAndServe()
	}()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	// Flip /readyz to 503 before Shutdown stops accepting: routers and
	// load balancers polling readiness see "draining" and stop sending
	// new work while the listener is still up, so no request races the
	// closing socket. The notice window gives pollers one cycle to react.
	srv.SetDraining(true)
	log.Printf("signal received, draining for up to %v (notice %v)", *drain, *drainNotice)
	if *drainNotice > 0 {
		time.Sleep(*drainNotice)
	}
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Print("drained, exiting")
}
