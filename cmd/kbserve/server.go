package main

// The HTTP serving layer: request parsing, cache-backed evaluation with
// per-request deadlines, and the /statsz operational counters. The
// handler is constructed by newServer so tests can drive it with
// httptest without binding a socket.

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"kbharvest/internal/core"
	"kbharvest/internal/qcache"
)

// queryRequest is the POST /query body.
type queryRequest struct {
	// Patterns are "s p o" lines in kbquery syntax.
	Patterns []string `json:"patterns"`
	// Limit caps the number of rows (0 = all).
	Limit int `json:"limit"`
}

// queryResponse is the POST /query reply.
type queryResponse struct {
	Vars   []string            `json:"vars,omitempty"`
	Rows   []map[string]string `json:"rows,omitempty"`
	Count  int                 `json:"count"`
	Ask    *bool               `json:"ask,omitempty"` // set for zero-variable queries
	Cached bool                `json:"cached"`
	TookUS int64               `json:"took_us"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// latencyHistogram counts query latencies in power-of-two microsecond
// buckets; all counters are atomics so request handlers never serialize
// on stats.
type latencyHistogram struct {
	buckets [32]atomic.Uint64 // bucket i: latency < 2^i µs
	count   atomic.Uint64
	sumUS   atomic.Uint64
}

func (h *latencyHistogram) observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	b := 0
	for us>>b > 0 && b < len(h.buckets)-1 {
		b++
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sumUS.Add(uint64(us))
}

// quantile returns an upper bound on the q-quantile latency in µs.
func (h *latencyHistogram) quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	var seen uint64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return uint64(1) << i
		}
	}
	return uint64(1) << (len(h.buckets) - 1)
}

type server struct {
	st      *core.Store
	cache   *qcache.Cache
	timeout time.Duration
	mux     *http.ServeMux
	lat     latencyHistogram
}

func newServer(st *core.Store, opt qcache.Options, timeout time.Duration) *server {
	s := &server{
		st:      st,
		cache:   qcache.New(st, opt),
		timeout: timeout,
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/statsz", s.handleStatsz)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST a JSON body to /query"})
		return
	}
	var req queryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad request body: " + err.Error()})
		return
	}
	if len(req.Patterns) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{"no patterns"})
		return
	}
	patterns := make([]core.Pattern, 0, len(req.Patterns))
	hasVar := false
	for _, line := range req.Patterns {
		p, err := core.ParsePattern(line)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
			return
		}
		if p.S.Var != "" || p.P.Var != "" || p.O.Var != "" {
			hasVar = true
		}
		patterns = append(patterns, p)
	}

	ctx := r.Context()
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	t0 := time.Now()
	bindings, cached, err := s.cache.Query(ctx, patterns, req.Limit)
	took := time.Since(t0)
	s.lat.observe(took)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		} else if errors.Is(err, context.Canceled) {
			status = 499 // client closed request
		}
		writeJSON(w, status, errorResponse{err.Error()})
		return
	}

	resp := queryResponse{Count: len(bindings), Cached: cached, TookUS: took.Microseconds()}
	if !hasVar {
		// ASK-style: an all-constant conjunction either holds or not.
		ask := len(bindings) > 0
		resp.Ask = &ask
		resp.Count = 0
		writeJSON(w, http.StatusOK, resp)
		return
	}
	if len(bindings) > 0 {
		var vars []core.Var
		for v := range bindings[0] {
			vars = append(vars, v)
		}
		sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
		resp.Vars = make([]string, len(vars))
		for i, v := range vars {
			resp.Vars[i] = string(v)
		}
		resp.Rows = make([]map[string]string, len(bindings))
		for i, b := range bindings {
			row := make(map[string]string, len(vars))
			for _, v := range vars {
				row[string(v)] = b[v].String()
			}
			resp.Rows[i] = row
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// statszResponse is the GET /statsz reply.
type statszResponse struct {
	Cache   cacheStats   `json:"cache"`
	Latency latencyStats `json:"latency"`
	Store   core.Stats   `json:"store"`
}

type cacheStats struct {
	qcache.Stats
	HitRate float64 `json:"hit_rate"`
}

type latencyStats struct {
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  uint64  `json:"p50_us"`
	P90US  uint64  `json:"p90_us"`
	P99US  uint64  `json:"p99_us"`
}

func (s *server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	cs := s.cache.Stats()
	lat := latencyStats{
		Count: s.lat.count.Load(),
		P50US: s.lat.quantile(0.50),
		P90US: s.lat.quantile(0.90),
		P99US: s.lat.quantile(0.99),
	}
	if lat.Count > 0 {
		lat.MeanUS = float64(s.lat.sumUS.Load()) / float64(lat.Count)
	}
	writeJSON(w, http.StatusOK, statszResponse{
		Cache:   cacheStats{Stats: cs, HitRate: cs.HitRate()},
		Latency: lat,
		Store:   s.st.Stats(),
	})
}
