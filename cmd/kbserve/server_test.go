package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"kbharvest/internal/core"
	"kbharvest/internal/qcache"
	"kbharvest/internal/rdf"
)

func testStore() *core.Store {
	st := core.NewStore()
	st.Add(rdf.T("kb:jobs", "kb:founded", "kb:apple"))
	st.Add(rdf.T("kb:wozniak", "kb:founded", "kb:apple"))
	st.Add(rdf.T("kb:gates", "kb:founded", "kb:microsoft"))
	st.Add(rdf.T("kb:apple", "kb:locatedIn", "kb:cupertino"))
	st.Add(rdf.T("kb:microsoft", "kb:locatedIn", "kb:redmond"))
	return st
}

func postQuery(t *testing.T, srv http.Handler, body string) (*httptest.ResponseRecorder, queryResponse) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	var resp queryResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad response %q: %v", rec.Body.String(), err)
		}
	}
	return rec, resp
}

func TestServerQueryJoin(t *testing.T) {
	srv := newServer(testStore(), qcache.Options{}, time.Second)
	rec, resp := postQuery(t, srv, `{"patterns": ["?p kb:founded ?c", "?c kb:locatedIn ?city"]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Count != 3 || len(resp.Rows) != 3 {
		t.Fatalf("count = %d rows = %d, want 3", resp.Count, len(resp.Rows))
	}
	if resp.Cached {
		t.Error("first query reported cached")
	}
	if want := []string{"c", "city", "p"}; fmt.Sprint(resp.Vars) != fmt.Sprint(want) {
		t.Errorf("vars = %v, want %v", resp.Vars, want)
	}
	// Repeat: served from cache.
	rec, resp = postQuery(t, srv, `{"patterns": ["?p kb:founded ?c", "?c kb:locatedIn ?city"]}`)
	if rec.Code != http.StatusOK || !resp.Cached {
		t.Errorf("repeat query: status %d cached %v", rec.Code, resp.Cached)
	}
	if resp.Count != 3 {
		t.Errorf("cached count = %d", resp.Count)
	}
}

func TestServerQueryLimit(t *testing.T) {
	srv := newServer(testStore(), qcache.Options{}, time.Second)
	rec, resp := postQuery(t, srv, `{"patterns": ["?p kb:founded ?c"], "limit": 2}`)
	if rec.Code != http.StatusOK || resp.Count != 2 {
		t.Errorf("status %d count %d, want 2 rows", rec.Code, resp.Count)
	}
}

func TestServerAskQuery(t *testing.T) {
	srv := newServer(testStore(), qcache.Options{}, time.Second)
	rec, resp := postQuery(t, srv, `{"patterns": ["kb:jobs kb:founded kb:apple"]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Ask == nil || !*resp.Ask {
		t.Errorf("ask = %v, want true", resp.Ask)
	}
	if len(resp.Rows) != 0 {
		t.Errorf("ask query returned rows: %v", resp.Rows)
	}
	_, resp = postQuery(t, srv, `{"patterns": ["kb:jobs kb:founded kb:microsoft"]}`)
	if resp.Ask == nil || *resp.Ask {
		t.Errorf("ask = %v, want false", resp.Ask)
	}
}

func TestServerBadRequests(t *testing.T) {
	srv := newServer(testStore(), qcache.Options{}, time.Second)
	cases := []struct {
		body string
		want int
	}{
		{`{"patterns": []}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
		{`{"patterns": ["only twoterms"]}`, http.StatusBadRequest},
		{`{"patterns": ["?x kb:label \"unterminated"]}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		rec, _ := postQuery(t, srv, c.body)
		if rec.Code != c.want {
			t.Errorf("body %q: status %d, want %d (%s)", c.body, rec.Code, c.want, rec.Body.String())
		}
	}
	// GET /query is not allowed.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/query", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /query status = %d", rec.Code)
	}
}

func TestServerTimeout(t *testing.T) {
	// A deadline in the past forces the evaluation's first context check
	// to fail, exercising the 504 path.
	srv := newServer(testStore(), qcache.Options{}, time.Nanosecond)
	rec, _ := postQuery(t, srv, `{"patterns": ["?p kb:founded ?c"]}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Errorf("status = %d, want 504: %s", rec.Code, rec.Body.String())
	}
}

func TestServerStatsz(t *testing.T) {
	srv := newServer(testStore(), qcache.Options{}, time.Second)
	postQuery(t, srv, `{"patterns": ["?p kb:founded ?c"]}`)
	postQuery(t, srv, `{"patterns": ["?p kb:founded ?c"]}`)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statsz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("statsz status %d", rec.Code)
	}
	var stats statszResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("statsz body %q: %v", rec.Body.String(), err)
	}
	if stats.Cache.Hits != 1 || stats.Cache.Misses != 1 {
		t.Errorf("cache stats = %+v", stats.Cache)
	}
	if stats.Cache.HitRate != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", stats.Cache.HitRate)
	}
	if stats.Latency.Count != 2 || stats.Latency.P99US == 0 {
		t.Errorf("latency stats = %+v", stats.Latency)
	}
	if stats.Store.Facts != 5 {
		t.Errorf("store facts = %d, want 5", stats.Store.Facts)
	}
}

func TestServerHealthz(t *testing.T) {
	srv := newServer(testStore(), qcache.Options{}, time.Second)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("healthz status %d", rec.Code)
	}
}

// Concurrent requests against a store that keeps mutating: handlers and
// the cache must be race-clean, and every answer must be a possible state
// (3 stable join rows plus at most one transient chain).
func TestServerConcurrentQueriesWithWriter(t *testing.T) {
	st := testStore()
	srv := newServer(st, qcache.Options{Shards: 4}, time.Second)
	stop := make(chan struct{})
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			co := fmt.Sprintf("kb:startup%d", i%5)
			st.Add(rdf.T("kb:founder", "kb:founded", co))
			st.Add(rdf.T(co, "kb:locatedIn", "kb:garage"))
			st.Remove(rdf.T("kb:founder", "kb:founded", co))
			st.Remove(rdf.T(co, "kb:locatedIn", "kb:garage"))
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 150; r++ {
				req := httptest.NewRequest(http.MethodPost, "/query",
					strings.NewReader(`{"patterns": ["?p kb:founded ?c", "?c kb:locatedIn ?city"]}`))
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("status %d: %s", rec.Code, rec.Body.String())
					return
				}
				var resp queryResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					errs <- err
					return
				}
				if resp.Count < 3 || resp.Count > 4 {
					errs <- fmt.Errorf("impossible row count %d", resp.Count)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	writerWG.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}
