// Kbquery loads a KB snapshot and evaluates conjunctive triple-pattern
// queries against it.
//
// Usage:
//
//	kbquery -kb kb.nt '?p kb:founded ?c' '?c kb:locatedIn ?city'
//
// Each argument is one "s p o" pattern; ?name marks variables, bare
// tokens are IRIs, double-quoted strings are literals. Patterns are
// joined on shared variables. A query with no variables is an ASK:
// kbquery prints "true" or "false".
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"kbharvest/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kbquery: ")
	kbPath := flag.String("kb", "", "KB snapshot path (required)")
	limit := flag.Int("limit", 25, "maximum rows to print (0 = all)")
	flag.Parse()
	if *kbPath == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: kbquery -kb snapshot.nt 'pattern' ...")
		os.Exit(2)
	}
	f, err := os.Open(*kbPath)
	if err != nil {
		log.Fatal(err)
	}
	st := core.NewStore()
	n, err := st.Load(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d facts\n", n)

	var patterns []core.Pattern
	hasVar := false
	for _, line := range flag.Args() {
		p, err := core.ParsePattern(line)
		if err != nil {
			log.Fatal(err)
		}
		if p.S.Var != "" || p.P.Var != "" || p.O.Var != "" {
			hasVar = true
		}
		patterns = append(patterns, p)
	}
	if !hasVar {
		// All-constant conjunction: answer ASK-style.
		holds := false
		err := st.QueryFunc(context.Background(), patterns, 1, func(core.Binding) bool {
			holds = true
			return false
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(holds)
		return
	}
	var bindings []core.Binding
	err = st.QueryFunc(context.Background(), patterns, 0, func(b core.Binding) bool {
		bindings = append(bindings, b)
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	if len(bindings) == 0 {
		fmt.Println("no results")
		return
	}
	// Stable variable order and row order.
	var vars []core.Var
	for v := range bindings[0] {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	core.SortBindings(bindings, vars...)
	for i, b := range bindings {
		if *limit > 0 && i >= *limit {
			fmt.Printf("... (%d more rows)\n", len(bindings)-i)
			break
		}
		for j, v := range vars {
			if j > 0 {
				fmt.Print("  ")
			}
			fmt.Printf("?%s=%s", v, b[v])
		}
		fmt.Println()
	}
	fmt.Printf("%d rows\n", len(bindings))
}
