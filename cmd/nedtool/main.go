// Nedtool disambiguates entity mentions in free text against the models
// built by the construction pipeline (§4 of the tutorial).
//
// Usage:
//
//	nedtool "Venn joined Acme Systems after leaving the university."
//	nedtool -mode joint -scale 0.5 "text with mentions ..."
//
// With no arguments it reads text from stdin.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"kbharvest/internal/ned"
	"kbharvest/internal/pipeline"
	"kbharvest/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nedtool: ")
	scale := flag.Float64("scale", 0.5, "world scale for model building")
	seed := flag.Int64("seed", 42, "world seed")
	modeFlag := flag.String("mode", "joint", "disambiguation mode: prior | context | joint")
	topK := flag.Int("top", 3, "candidates to show per mention")
	flag.Parse()

	var mode ned.Mode
	switch *modeFlag {
	case "prior":
		mode = ned.PriorOnly
	case "context":
		mode = ned.PriorContext
	case "joint":
		mode = ned.Joint
	default:
		log.Fatalf("unknown mode %q", *modeFlag)
	}

	text := strings.Join(flag.Args(), " ")
	if text == "" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			log.Fatal(err)
		}
		text = string(data)
	}
	if strings.TrimSpace(text) == "" {
		log.Fatal("no input text")
	}

	opt := pipeline.DefaultOptions()
	opt.World = synth.DefaultConfig().Scaled(*scale)
	opt.Seed = *seed
	res, err := pipeline.Run(context.Background(), opt)
	if err != nil {
		log.Fatal(err)
	}
	linker := res.Linker()

	detected := res.Dictionary.DetectMentions(text, 3)
	if len(detected) == 0 {
		fmt.Println("no known mentions found")
		return
	}
	mentions := make([]ned.Mention, len(detected))
	for i, d := range detected {
		mentions[i] = ned.Mention{Surface: d.Surface, Context: window(text, d.Start, d.End, 150)}
	}
	results := linker.Disambiguate(mentions, mode)
	fmt.Printf("mode: %s\n", mode)
	for i, r := range results {
		fmt.Printf("%-24q -> ", detected[i].Surface)
		if r.NoCandidate {
			fmt.Println("(no candidate)")
			continue
		}
		fmt.Printf("%s (score %.3f)\n", r.Entity, r.Score)
		for _, c := range linker.TopCandidates(mentions[i], *topK) {
			fmt.Printf("    candidate %-30s %.3f\n", c.Entity, c.Prior)
		}
	}
}

func window(s string, start, end, radius int) string {
	lo := start - radius
	if lo < 0 {
		lo = 0
	}
	hi := end + radius
	if hi > len(s) {
		hi = len(s)
	}
	return s[lo:hi]
}
