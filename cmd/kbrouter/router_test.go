package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"kbharvest/internal/core"
	"kbharvest/internal/experiments"
	"kbharvest/internal/rdf"
	"kbharvest/internal/serve"
	"kbharvest/internal/shardkb"
)

// startTier partitions the store across n in-process kbserve shards and
// returns a router over them plus the shard URLs (for failure injection).
func startTier(t *testing.T, st *core.Store, n int, opt shardkb.Options) (*router, []string) {
	t.Helper()
	stores := make([]*core.Store, n)
	for i := range stores {
		stores[i] = core.NewStore()
	}
	for _, tr := range st.All() {
		stores[shardkb.TripleShard(tr, n)].Add(tr)
	}
	urls := make([]string, n)
	for i := range stores {
		srv := httptest.NewServer(serve.NewServer(stores[i], serve.Options{Timeout: 2 * time.Second}))
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	if opt.Timeout == 0 {
		opt.Timeout = 2 * time.Second
	}
	client, err := shardkb.New(urls, opt)
	if err != nil {
		t.Fatal(err)
	}
	return newRouter(client, 10*time.Second), urls
}

func smallStore() *core.Store {
	st := core.NewStore()
	st.Add(rdf.T("kb:jobs", "kb:founded", "kb:apple"))
	st.Add(rdf.T("kb:wozniak", "kb:founded", "kb:apple"))
	st.Add(rdf.T("kb:gates", "kb:founded", "kb:microsoft"))
	st.Add(rdf.T("kb:apple", "kb:locatedIn", "kb:cupertino"))
	st.Add(rdf.T("kb:microsoft", "kb:locatedIn", "kb:redmond"))
	return st
}

func postRouterQuery(t *testing.T, rt http.Handler, body string) (*httptest.ResponseRecorder, serve.QueryResponse) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body))
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, req)
	var resp serve.QueryResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad response %q: %v", rec.Body.String(), err)
		}
	}
	return rec, resp
}

// canonical renders a binding set as sorted strings for set comparison.
func canonical(rows []map[string]string) []string {
	out := make([]string, 0, len(rows))
	for _, row := range rows {
		var keys []string
		for k := range row {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var parts []string
		for _, k := range keys {
			parts = append(parts, k+"="+row[k])
		}
		out = append(out, strings.Join(parts, " "))
	}
	sort.Strings(out)
	return out
}

func bindingsToRows(bs []core.Binding) []map[string]string {
	rows := make([]map[string]string, len(bs))
	for i, b := range bs {
		row := make(map[string]string, len(b))
		for v, t := range b {
			row[string(v)] = t.String()
		}
		rows[i] = row
	}
	return rows
}

// The acceptance cross-check: every multi-pattern query of the E9
// serving suite must come back from the sharded tier identical to the
// single merged store, at every shard count.
func TestRouterMatchesMergedStoreOnServingSuite(t *testing.T) {
	merged, queries := experiments.ServingWorkload(119)
	for _, n := range []int{1, 2, 4} {
		rt, _ := startTier(t, merged, n, shardkb.Options{})
		for qi, q := range queries {
			lines := make([]string, len(q))
			for i, p := range q {
				lines[i] = shardkb.FormatPattern(p)
			}
			body, _ := json.Marshal(serve.QueryRequest{Patterns: lines})
			rec, resp := postRouterQuery(t, rt, string(body))
			if rec.Code != http.StatusOK {
				t.Fatalf("n=%d q=%d: status %d: %s", n, qi, rec.Code, rec.Body.String())
			}
			want := canonical(bindingsToRows(merged.Query(q)))
			got := canonical(resp.Rows)
			if len(got) != len(want) {
				t.Fatalf("n=%d q=%d: %d rows, merged store has %d", n, qi, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d q=%d: row %d differs:\n  got  %s\n  want %s", n, qi, i, got[i], want[i])
				}
			}
			if resp.Partial {
				t.Errorf("n=%d q=%d: spurious partial flag", n, qi)
			}
		}
	}
}

func TestRouterPointLookupIsSingleRPC(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		rt, _ := startTier(t, smallStore(), n, shardkb.Options{})
		rec, resp := postRouterQuery(t, rt, `{"patterns": ["kb:jobs kb:founded ?c"]}`)
		if rec.Code != http.StatusOK || resp.Count != 1 {
			t.Fatalf("n=%d: status %d count %d", n, rec.Code, resp.Count)
		}
		if resp.Rows[0]["c"] != "<kb:apple>" {
			t.Errorf("n=%d: c = %q", n, resp.Rows[0]["c"])
		}
		srec := httptest.NewRecorder()
		rt.ServeHTTP(srec, httptest.NewRequest(http.MethodGet, "/statsz", nil))
		var stats routerStatsz
		if err := json.Unmarshal(srec.Body.Bytes(), &stats); err != nil {
			t.Fatal(err)
		}
		if stats.Client.RPCs != 1 || stats.Client.FastPath != 1 || stats.Client.Scatters != 0 {
			t.Errorf("n=%d: point lookup issued %d RPCs (fastpath %d, scatters %d), want exactly 1 RPC",
				n, stats.Client.RPCs, stats.Client.FastPath, stats.Client.Scatters)
		}
		if stats.FastPathRate != 1 {
			t.Errorf("n=%d: fast-path rate = %v", n, stats.FastPathRate)
		}
	}
}

// A join that walks from bound subjects must use the fast path for its
// second step: after ?c binds, "?c kb:hasCEO ?ceo" becomes
// subject-constant per binding group.
func TestRouterJoinUsesFastPathAfterSubstitution(t *testing.T) {
	st := smallStore()
	st.Add(rdf.T("kb:apple", "kb:hasCEO", "kb:cook"))
	st.Add(rdf.T("kb:microsoft", "kb:hasCEO", "kb:nadella"))
	rt, _ := startTier(t, st, 4, shardkb.Options{})
	rec, resp := postRouterQuery(t, rt,
		`{"patterns": ["?c kb:locatedIn ?city", "?c kb:hasCEO ?ceo"]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Count != 2 {
		t.Fatalf("count = %d, want 2", resp.Count)
	}
	srec := httptest.NewRecorder()
	rt.ServeHTTP(srec, httptest.NewRequest(http.MethodGet, "/statsz", nil))
	var stats routerStatsz
	if err := json.Unmarshal(srec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	// One scatter for the locatedIn scan, then one pinned RPC per distinct
	// bound company (apple, microsoft).
	if stats.Client.Scatters != 1 {
		t.Errorf("scatters = %d, want 1", stats.Client.Scatters)
	}
	if stats.Client.FastPath != 2 {
		t.Errorf("fast-path executions = %d, want 2", stats.Client.FastPath)
	}
}

func TestRouterAsk(t *testing.T) {
	rt, _ := startTier(t, smallStore(), 2, shardkb.Options{})
	rec, resp := postRouterQuery(t, rt,
		`{"patterns": ["kb:jobs kb:founded kb:apple", "kb:apple kb:locatedIn kb:cupertino"]}`)
	if rec.Code != http.StatusOK || resp.Ask == nil || !*resp.Ask {
		t.Fatalf("status %d ask %v", rec.Code, resp.Ask)
	}
	_, resp = postRouterQuery(t, rt,
		`{"patterns": ["kb:jobs kb:founded kb:apple", "kb:apple kb:locatedIn kb:redmond"]}`)
	if resp.Ask == nil || *resp.Ask {
		t.Errorf("ask = %v, want false", resp.Ask)
	}
}

func TestRouterLimit(t *testing.T) {
	rt, _ := startTier(t, smallStore(), 2, shardkb.Options{})
	rec, resp := postRouterQuery(t, rt, `{"patterns": ["?p kb:founded ?c"], "limit": 2}`)
	if rec.Code != http.StatusOK || resp.Count != 2 {
		t.Errorf("status %d count %d, want 2", rec.Code, resp.Count)
	}
}

func TestRouterBadRequest(t *testing.T) {
	rt, _ := startTier(t, smallStore(), 2, shardkb.Options{})
	rec, _ := postRouterQuery(t, rt, `{"patterns": []}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", rec.Code)
	}
}

// killShard swaps one shard URL for a closed server.
func killShard(t *testing.T, urls []string, i int) {
	t.Helper()
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	urls[i] = dead.URL
}

func TestRouterPartialFailurePolicies(t *testing.T) {
	st := smallStore()
	// Default policy: a scatter with a dead shard fails the query.
	stores := make([]*core.Store, 4)
	for i := range stores {
		stores[i] = core.NewStore()
	}
	for _, tr := range st.All() {
		stores[shardkb.TripleShard(tr, 4)].Add(tr)
	}
	urls := make([]string, 4)
	for i := range stores {
		srv := httptest.NewServer(serve.NewServer(stores[i], serve.Options{Timeout: time.Second}))
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	const dead = 1
	killShard(t, urls, dead)

	strictClient, _ := shardkb.New(urls, shardkb.Options{Timeout: 500 * time.Millisecond})
	strict := newRouter(strictClient, 5*time.Second)
	rec, _ := postRouterQuery(t, strict, `{"patterns": ["?p kb:founded ?c"]}`)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("strict status = %d, want 500: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "partial") {
		t.Errorf("strict error does not name the partial failure: %s", rec.Body.String())
	}

	// -allow-partial: merged available results, flagged in the response.
	laxClient, _ := shardkb.New(urls, shardkb.Options{Timeout: 500 * time.Millisecond, AllowPartial: true})
	lax := newRouter(laxClient, 5*time.Second)
	rec, resp := postRouterQuery(t, lax, `{"patterns": ["?p kb:founded ?c"]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("lax status = %d: %s", rec.Code, rec.Body.String())
	}
	if !resp.Partial {
		t.Error("lax response not flagged partial")
	}
	want := 0
	for _, tr := range st.All() {
		if tr.P.Value == "kb:founded" && shardkb.TripleShard(tr, 4) != dead {
			want++
		}
	}
	if resp.Count != want {
		t.Errorf("lax count = %d, want %d (live shards only)", resp.Count, want)
	}
	srec := httptest.NewRecorder()
	lax.ServeHTTP(srec, httptest.NewRequest(http.MethodGet, "/statsz", nil))
	var stats routerStatsz
	if err := json.Unmarshal(srec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.PartialAnswers != 1 || stats.Client.PartialFailures == 0 {
		t.Errorf("partial stats = %+v", stats)
	}
}

func TestRouterReadyz(t *testing.T) {
	rt, _ := startTier(t, smallStore(), 2, shardkb.Options{})
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz status %d: %s", rec.Code, rec.Body.String())
	}
	var ready routerReady
	if err := json.Unmarshal(rec.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Shards != 2 || ready.Facts != 5 {
		t.Errorf("readyz = %+v", ready)
	}

	// One empty shard makes the whole tier not ready.
	emptySrv := httptest.NewServer(serve.NewServer(core.NewStore(), serve.Options{}))
	t.Cleanup(emptySrv.Close)
	liveSrv := httptest.NewServer(serve.NewServer(smallStore(), serve.Options{}))
	t.Cleanup(liveSrv.Close)
	client, _ := shardkb.New([]string{liveSrv.URL, emptySrv.URL}, shardkb.Options{Timeout: time.Second})
	rt2 := newRouter(client, time.Second)
	rec = httptest.NewRecorder()
	rt2.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("not-ready tier status = %d, want 503", rec.Code)
	}
}

// Concurrent mixed traffic through the router must be race-clean and
// always answer from a consistent partition (run under -race in CI).
func TestRouterConcurrent(t *testing.T) {
	rt, _ := startTier(t, smallStore(), 4, shardkb.Options{})
	queries := []struct {
		body string
		want int
	}{
		{`{"patterns": ["kb:jobs kb:founded ?c"]}`, 1},
		{`{"patterns": ["?p kb:founded ?c"]}`, 3},
		{`{"patterns": ["?p kb:founded ?c", "?c kb:locatedIn ?city"]}`, 3},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 6)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				q := queries[(g+i)%len(queries)]
				req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(q.body))
				rec := httptest.NewRecorder()
				rt.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("status %d: %s", rec.Code, rec.Body.String())
					return
				}
				var resp serve.QueryResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					errs <- err
					return
				}
				if resp.Count != q.want {
					errs <- fmt.Errorf("query %s: count %d, want %d", q.body, resp.Count, q.want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}
