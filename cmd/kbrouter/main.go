// Kbrouter is the scatter/gather front of the sharded serving tier. It
// speaks the same /query JSON protocol as kbserve but answers from N
// kbserve shards: multi-pattern conjunctive queries are planned
// router-side — patterns ordered by summed shard estimates (each shard's
// /estimate endpoint), bindings substituted step by step — and each
// concrete pattern is either pinned to the one shard its subject hashes
// to (a point lookup costs one RPC at any shard count) or scattered to
// all shards concurrently and joined locally.
//
// # Deployment topology
//
// The tier is built in three steps, all agreeing on the subject-hash
// shard function in internal/shardkb:
//
//	kbbuild -shards N -out kb.nt     # writes kb.0.nt … kb.N-1.nt
//	kbserve -kb kb.i.nt -addr :808i  # one or more processes per partition
//	kbrouter -shards http://h0a:8080|http://h0b:8080,http://h1:8080
//
// Shard order on the kbrouter command line must match the partition
// indexes kbbuild wrote: shard i of the router is queried for exactly
// the subjects that hash to partition i. Each comma-separated shard may
// list several replicas joined with "|" — kbserve processes loaded from
// the same kb.i.nt — and the router rides out replica faults: transient
// failures (connection errors, 5xx, timeouts) retry on another replica
// with jittered exponential backoff, -hedge/-hedge-percentile race a
// second replica against a slow first attempt, and a per-replica
// circuit breaker (-breaker-threshold, -breaker-cooldown) sheds traffic
// from a dead replica until its /readyz probe recovers. Adding capacity
// means re-partitioning with a new N and rolling the tier; kbserve
// drains gracefully on SIGTERM so a rolling restart behind the router
// never drops in-flight queries, and the router's /readyz refuses
// traffic until every shard has a ready replica.
//
// Usage:
//
//	kbrouter -shards 'http://h0a:8080|http://h0b:8080,http://h1:8080'
//	         [-addr :8090] [-timeout 5s] [-shard-timeout 2s]
//	         [-max-inflight 16] [-allow-partial]
//	         [-retries 3] [-retry-base 20ms] [-retry-max 250ms]
//	         [-hedge 30ms | -hedge-percentile 0.99]
//	         [-breaker-threshold 5] [-breaker-cooldown 1s]
//
// Endpoints:
//
//	POST /query   same JSON protocol as kbserve; responses gain a
//	              "partial": true flag when -allow-partial merged
//	              results with a shard down (the default policy instead
//	              fails such queries with a partial error)
//	GET  /statsz  per-shard latency, fan-out counts, fast-path hit
//	              rate, partial-failure counts
//	GET  /healthz liveness probe
//	GET  /readyz  readiness of the whole tier (503 until every shard
//	              serves a loaded snapshot)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"kbharvest/internal/shardkb"
)

// parseShards splits the -shards flag into replica groups: shards are
// comma-separated in partition order, replicas of one shard joined
// with "|". Every shard must name at least one replica URL.
func parseShards(s string) ([][]string, error) {
	var groups [][]string
	for _, shard := range strings.Split(s, ",") {
		if strings.TrimSpace(shard) == "" {
			continue
		}
		var replicas []string
		for _, u := range strings.Split(shard, "|") {
			if u = strings.TrimSpace(u); u != "" {
				replicas = append(replicas, u)
			}
		}
		if len(replicas) == 0 {
			return nil, fmt.Errorf("shard %d has no replica URLs", len(groups))
		}
		groups = append(groups, replicas)
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("-shards names no shards")
	}
	return groups, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("kbrouter: ")
	shards := flag.String("shards", "", "comma-separated shards in partition order; replicas of one shard joined with | (required)")
	addr := flag.String("addr", ":8090", "listen address")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request query timeout")
	shardTimeout := flag.Duration("shard-timeout", 2*time.Second, "per-replica RPC attempt timeout")
	maxInflight := flag.Int("max-inflight", 0, "bound on concurrent shard RPCs (0 = 2x shard count)")
	allowPartial := flag.Bool("allow-partial", false, "merge available results when shards fail instead of failing the query")
	retries := flag.Int("retries", 0, "max physical attempts per shard RPC, first try included (0 = 2x replicas, clamped to [2,4])")
	retryBase := flag.Duration("retry-base", 20*time.Millisecond, "first retry backoff (exponential with jitter)")
	retryMax := flag.Duration("retry-max", 250*time.Millisecond, "retry backoff cap")
	hedge := flag.Duration("hedge", 0, "fixed hedge delay: fire a second replica attempt if the first has not replied (0 = off)")
	hedgePct := flag.Float64("hedge-percentile", 0, "derive the hedge delay from this observed latency quantile, e.g. 0.99 (0 = off)")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive failures before a replica's circuit breaker opens (negative = disabled)")
	breakerCooldown := flag.Duration("breaker-cooldown", time.Second, "how long an open breaker waits before a half-open /readyz probe")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown deadline for in-flight requests")
	drainNotice := flag.Duration("drain-notice", 500*time.Millisecond, "how long /readyz advertises draining before the listener closes")
	flag.Parse()
	if *shards == "" {
		fmt.Fprintln(os.Stderr, "usage: kbrouter -shards http://h0a:8080|http://h0b:8080,http://h1:8080 [-addr :8090]")
		os.Exit(2)
	}
	groups, err := parseShards(*shards)
	if err != nil {
		log.Fatal(err)
	}
	client, err := shardkb.New(nil, shardkb.Options{
		Shards:           groups,
		Timeout:          *shardTimeout,
		MaxInFlight:      *maxInflight,
		AllowPartial:     *allowPartial,
		MaxAttempts:      *retries,
		RetryBase:        *retryBase,
		RetryMax:         *retryMax,
		HedgeDelay:       *hedge,
		HedgePercentile:  *hedgePct,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Startup readiness probe: don't refuse to start (shards may still be
	// loading — /readyz gates traffic), but tell the operator.
	probe, cancel := context.WithTimeout(context.Background(), *shardTimeout+time.Second)
	if replies, err := client.Ready(probe); err != nil {
		log.Printf("warning: shard tier not ready yet: %v", err)
	} else {
		facts := 0
		for _, r := range replies {
			facts += r.Facts
		}
		log.Printf("%d shards ready, %d facts total", len(groups), facts)
	}
	cancel()

	rt := newRouter(client, *timeout)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           rt,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		IdleTimeout:       60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("routing %d shards on %s", len(groups), *addr)
		errc <- hs.ListenAndServe()
	}()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	// Advertise draining on /readyz before the listener closes, so a
	// fronting load balancer stops routing here without racing Shutdown.
	rt.SetDraining(true)
	log.Printf("signal received, draining for up to %v (notice %v)", *drain, *drainNotice)
	if *drainNotice > 0 {
		time.Sleep(*drainNotice)
	}
	sctx, scancel := context.WithTimeout(context.Background(), *drain)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Print("drained, exiting")
}
