// Kbrouter is the scatter/gather front of the sharded serving tier. It
// speaks the same /query JSON protocol as kbserve but answers from N
// kbserve shards: multi-pattern conjunctive queries are planned
// router-side — patterns ordered by summed shard estimates (each shard's
// /estimate endpoint), bindings substituted step by step — and each
// concrete pattern is either pinned to the one shard its subject hashes
// to (a point lookup costs one RPC at any shard count) or scattered to
// all shards concurrently and joined locally.
//
// # Deployment topology
//
// The tier is built in three steps, all agreeing on the subject-hash
// shard function in internal/shardkb:
//
//	kbbuild -shards N -out kb.nt     # writes kb.0.nt … kb.N-1.nt
//	kbserve -kb kb.i.nt -addr :808i  # one process per partition
//	kbrouter -shards http://host0:8080,…,http://hostN-1:8080
//
// Shard order on the kbrouter command line must match the partition
// indexes kbbuild wrote: shard i of the router is queried for exactly
// the subjects that hash to partition i. Adding capacity means
// re-partitioning with a new N and rolling the tier; kbserve drains
// gracefully on SIGTERM so a rolling restart behind the router never
// drops in-flight queries, and the router's /readyz refuses traffic
// until every shard reports a loaded snapshot.
//
// Usage:
//
//	kbrouter -shards http://h0:8080,http://h1:8080 [-addr :8090]
//	         [-timeout 5s] [-shard-timeout 2s] [-max-inflight 16]
//	         [-allow-partial]
//
// Endpoints:
//
//	POST /query   same JSON protocol as kbserve; responses gain a
//	              "partial": true flag when -allow-partial merged
//	              results with a shard down (the default policy instead
//	              fails such queries with a partial error)
//	GET  /statsz  per-shard latency, fan-out counts, fast-path hit
//	              rate, partial-failure counts
//	GET  /healthz liveness probe
//	GET  /readyz  readiness of the whole tier (503 until every shard
//	              serves a loaded snapshot)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"kbharvest/internal/shardkb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kbrouter: ")
	shards := flag.String("shards", "", "comma-separated kbserve base URLs, in partition order (required)")
	addr := flag.String("addr", ":8090", "listen address")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request query timeout")
	shardTimeout := flag.Duration("shard-timeout", 2*time.Second, "per-shard RPC timeout")
	maxInflight := flag.Int("max-inflight", 0, "bound on concurrent shard RPCs (0 = 2x shard count)")
	allowPartial := flag.Bool("allow-partial", false, "merge available results when shards fail instead of failing the query")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown deadline for in-flight requests")
	flag.Parse()
	if *shards == "" {
		fmt.Fprintln(os.Stderr, "usage: kbrouter -shards http://h0:8080,http://h1:8080 [-addr :8090]")
		os.Exit(2)
	}
	var urls []string
	for _, u := range strings.Split(*shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	client, err := shardkb.New(urls, shardkb.Options{
		Timeout:      *shardTimeout,
		MaxInFlight:  *maxInflight,
		AllowPartial: *allowPartial,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Startup readiness probe: don't refuse to start (shards may still be
	// loading — /readyz gates traffic), but tell the operator.
	probe, cancel := context.WithTimeout(context.Background(), *shardTimeout+time.Second)
	if replies, err := client.Ready(probe); err != nil {
		log.Printf("warning: shard tier not ready yet: %v", err)
	} else {
		facts := 0
		for _, r := range replies {
			facts += r.Facts
		}
		log.Printf("%d shards ready, %d facts total", len(urls), facts)
	}
	cancel()

	rt := newRouter(client, *timeout)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           rt,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		IdleTimeout:       60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("routing %d shards on %s", len(urls), *addr)
		errc <- hs.ListenAndServe()
	}()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("signal received, draining for up to %v", *drain)
	sctx, scancel := context.WithTimeout(context.Background(), *drain)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Print("drained, exiting")
}
