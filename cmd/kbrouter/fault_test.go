package main

// Fault-tolerance acceptance tests: the router over a replicated tier
// with faultkb proxies in front of each replica, proving that replica
// failures stay invisible to clients.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"kbharvest/internal/core"
	"kbharvest/internal/experiments"
	"kbharvest/internal/faultkb"
	"kbharvest/internal/serve"
	"kbharvest/internal/shardkb"
)

// startReplicatedTier partitions st across n shards with r replicas each,
// every replica behind its own faultkb proxy, and returns the router plus
// the injectors indexed [shard][replica].
func startReplicatedTier(t *testing.T, st *core.Store, n, r int, opt shardkb.Options) (*router, [][]*faultkb.Injector) {
	t.Helper()
	stores := make([]*core.Store, n)
	for i := range stores {
		stores[i] = core.NewStore()
	}
	for _, tr := range st.All() {
		stores[shardkb.TripleShard(tr, n)].Add(tr)
	}
	groups := make([][]string, n)
	injectors := make([][]*faultkb.Injector, n)
	for i := 0; i < n; i++ {
		for j := 0; j < r; j++ {
			backend := httptest.NewServer(serve.NewServer(stores[i], serve.Options{Timeout: 2 * time.Second}))
			t.Cleanup(backend.Close)
			in := faultkb.New(int64(17*i + j))
			proxy := httptest.NewServer(faultkb.NewProxy(backend.URL, in, nil))
			t.Cleanup(proxy.Close)
			groups[i] = append(groups[i], proxy.URL)
			injectors[i] = append(injectors[i], in)
		}
	}
	if opt.Timeout == 0 {
		opt.Timeout = 2 * time.Second
	}
	opt.Shards = groups
	client, err := shardkb.New(nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	return newRouter(client, 10*time.Second), injectors
}

// The headline acceptance test: the full E9 serving suite runs against a
// 2-shard x 2-replica tier while one replica of every shard is killed
// mid-suite, and every query still answers 200 with the rows the merged
// store would produce. Run with -race in CI.
func TestRouterSurvivesReplicaKillMidSuite(t *testing.T) {
	merged, queries := experiments.ServingWorkload(119)
	rt, injectors := startReplicatedTier(t, merged, 2, 2, shardkb.Options{
		RetryBase: 2 * time.Millisecond, RetryMax: 20 * time.Millisecond,
	})

	// Precompute expected rows so worker goroutines only compare.
	type expect struct {
		body string
		want []string
	}
	expects := make([]expect, len(queries))
	for qi, q := range queries {
		lines := make([]string, len(q))
		for i, p := range q {
			lines[i] = shardkb.FormatPattern(p)
		}
		body, _ := json.Marshal(serve.QueryRequest{Patterns: lines})
		expects[qi] = expect{body: string(body), want: canonical(bindingsToRows(merged.Query(q)))}
	}

	const rounds = 8
	const workers = 4
	var wg sync.WaitGroup
	killed := make(chan struct{})
	errs := make(chan string, rounds*workers*len(expects))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				if w == 0 && round == rounds/2 {
					// Kill replica 0 of every shard mid-suite: every request
					// to it is dropped from here on.
					for i := range injectors {
						injectors[i][0].SetPlan(faultkb.Plan{DropRate: 1})
					}
					close(killed)
				}
				for _, e := range expects {
					rec, resp := postRouterQuery(t, rt, e.body)
					if rec.Code != http.StatusOK {
						errs <- rec.Body.String()
						continue
					}
					got := canonical(resp.Rows)
					if len(got) != len(e.want) {
						errs <- "row count mismatch"
						continue
					}
					for i := range e.want {
						if got[i] != e.want[i] {
							errs <- "row mismatch"
							break
						}
					}
					if resp.Partial {
						errs <- "spurious partial flag"
					}
				}
			}
		}(w)
	}
	wg.Wait()
	<-killed // the kill must actually have happened
	close(errs)
	for e := range errs {
		t.Errorf("client-visible failure with one of 2 replicas down: %s", e)
	}
	stats := rt.client.Stats()
	if stats.Retries == 0 {
		t.Error("suite rode out a replica kill without a single retry — kill did not bite")
	}
}

// A dead replica must not make the router report unready: readiness is
// per shard group, satisfied by any live replica.
func TestRouterReadyzWithReplicaDown(t *testing.T) {
	rt, injectors := startReplicatedTier(t, smallStore(), 2, 2, shardkb.Options{})
	injectors[0][0].SetPlan(faultkb.Plan{DropRate: 1})
	req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz = %d with a live replica per shard: %s", rec.Code, rec.Body.String())
	}

	// Both replicas of shard 1 down: the tier is not ready.
	for _, in := range injectors[1] {
		in.SetPlan(faultkb.Plan{DropRate: 1})
	}
	rec = httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d with a whole shard down, want 503", rec.Code)
	}
}

// Draining flips /readyz to 503 while /query keeps answering — the
// ready-to-draining transition a rolling restart depends on.
func TestRouterDrainingReadyz(t *testing.T) {
	rt, _ := startReplicatedTier(t, smallStore(), 1, 1, shardkb.Options{})
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz = %d before drain, want 200: %s", rec.Code, rec.Body.String())
	}
	rt.SetDraining(true)
	rec = httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d while draining, want 503", rec.Code)
	}
	var rr routerReady
	if err := json.Unmarshal(rec.Body.Bytes(), &rr); err != nil || rr.Error != "draining" {
		t.Fatalf("draining readyz body = %q, %v", rec.Body.String(), err)
	}
	// Queries in flight keep working during the drain notice window.
	rec2, resp := postRouterQuery(t, rt, `{"patterns": ["kb:jobs kb:founded ?c"]}`)
	if rec2.Code != http.StatusOK || resp.Count != 1 {
		t.Fatalf("query during drain = %d, count %d; want 200, 1", rec2.Code, resp.Count)
	}
	rt.SetDraining(false)
	rec = httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz = %d after drain cleared, want 200", rec.Code)
	}
}

func TestParseShards(t *testing.T) {
	groups, err := parseShards("http://a|http://b, http://c")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || len(groups[0]) != 2 || len(groups[1]) != 1 {
		t.Fatalf("parseShards = %v", groups)
	}
	if groups[0][0] != "http://a" || groups[0][1] != "http://b" || groups[1][0] != "http://c" {
		t.Fatalf("parseShards = %v", groups)
	}
	for _, bad := range []string{"", ",", "|,http://a"} {
		if _, err := parseShards(bad); err == nil {
			t.Errorf("parseShards(%q) succeeded, want error", bad)
		}
	}
}
