package main

// The router's query engine: it plans multi-pattern conjunctive queries
// router-side — order patterns by summed shard estimates, then for each
// pattern substitute the bindings accumulated so far and scatter/gather
// through the shardkb client, joining locally. A pattern whose subject
// becomes a constant under substitution rides the single-shard fast
// path, so chained joins that walk from a bound entity cost one RPC per
// binding group instead of a full fan-out.

import (
	"context"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"kbharvest/internal/core"
	"kbharvest/internal/serve"
	"kbharvest/internal/shardkb"
)

type router struct {
	client  *shardkb.Client
	timeout time.Duration
	mux     *http.ServeMux

	lat            serve.LatencyHistogram
	queries        atomic.Uint64
	partialAnswers atomic.Uint64
	draining       atomic.Bool
}

// SetDraining flips the router in or out of drain mode: while draining,
// /readyz answers 503 so a fronting load balancer stops routing here
// before the listener closes. In-flight queries still complete.
func (rt *router) SetDraining(v bool) { rt.draining.Store(v) }

func newRouter(client *shardkb.Client, timeout time.Duration) *router {
	rt := &router{
		client:  client,
		timeout: timeout,
		mux:     http.NewServeMux(),
	}
	rt.mux.HandleFunc("/query", rt.handleQuery)
	rt.mux.HandleFunc("/statsz", rt.handleStatsz)
	rt.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	rt.mux.HandleFunc("/readyz", rt.handleReadyz)
	return rt
}

func (rt *router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// substitute replaces variables bound in b with their constants.
func substitute(p core.Pattern, b core.Binding) core.Pattern {
	sub := func(pt core.PatternTerm) core.PatternTerm {
		if pt.Var != "" {
			if t, ok := b[pt.Var]; ok {
				return core.PTerm(t)
			}
		}
		return pt
	}
	return core.Pattern{S: sub(p.S), P: sub(p.P), O: sub(p.O)}
}

// patternGroup is one distinct substituted pattern and the accumulated
// bindings that produced it: bindings agreeing on a pattern's bound
// variables share one shard execution instead of issuing duplicate RPCs.
type patternGroup struct {
	sub     core.Pattern
	parents []core.Binding
}

// execute evaluates the conjunction across the shard tier. The join
// order is fixed up front by summed shard estimates (cheapest pattern
// first — the same cardinality-driven heuristic the in-process engine
// uses, aggregated over shards); each step substitutes the bindings
// accumulated so far, deduplicates the resulting concrete patterns, and
// scatters or fast-paths each one. It reports whether any step merged
// partial shard results.
func (rt *router) execute(ctx context.Context, patterns []core.Pattern, limit int) ([]core.Binding, bool, error) {
	order := make([]int, len(patterns))
	for i := range order {
		order[i] = i
	}
	if len(patterns) > 1 {
		ests, err := rt.client.Estimates(ctx, patterns)
		if err != nil {
			return nil, false, err
		}
		sort.SliceStable(order, func(a, b int) bool { return ests[order[a]] < ests[order[b]] })
	}

	// Only a single-pattern query can push the row limit down to the
	// shards: with joins, early rows may be filtered by later patterns.
	patternLimit := 0
	if len(patterns) == 1 {
		patternLimit = limit
	}

	bindings := []core.Binding{{}}
	partial := false
	for _, idx := range order {
		if len(bindings) == 0 {
			break // conjunction already empty
		}
		groups := make(map[string]*patternGroup)
		var keys []string // deterministic execution order
		for _, b := range bindings {
			sub := substitute(patterns[idx], b)
			key := shardkb.FormatPattern(sub)
			g, ok := groups[key]
			if !ok {
				g = &patternGroup{sub: sub}
				groups[key] = g
				keys = append(keys, key)
			}
			g.parents = append(g.parents, b)
		}
		var next []core.Binding
		for _, key := range keys {
			g := groups[key]
			res, err := rt.client.Pattern(ctx, g.sub, patternLimit)
			if err != nil {
				return nil, false, err
			}
			partial = partial || res.Partial
			for _, parent := range g.parents {
				for _, m := range res.Bindings {
					// m binds exactly the variables the substitution left
					// open, so the union is conflict-free.
					merged := make(core.Binding, len(parent)+len(m))
					for k, v := range parent {
						merged[k] = v
					}
					for k, v := range m {
						merged[k] = v
					}
					next = append(next, merged)
				}
			}
		}
		bindings = next
	}
	if limit > 0 && len(bindings) > limit {
		bindings = bindings[:limit]
	}
	return bindings, partial, nil
}

func (rt *router) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, patterns := serve.DecodePatterns(w, r)
	if req == nil {
		return
	}
	ctx := r.Context()
	if rt.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rt.timeout)
		defer cancel()
	}
	t0 := time.Now()
	bindings, partial, err := rt.execute(ctx, patterns, req.Limit)
	took := time.Since(t0)
	rt.lat.Observe(took)
	rt.queries.Add(1)
	if err != nil {
		serve.WriteQueryError(w, err)
		return
	}
	if partial {
		rt.partialAnswers.Add(1)
	}
	resp := serve.BuildQueryResponse(bindings, serve.HasVars(patterns))
	resp.TookUS = took.Microseconds()
	resp.Partial = partial
	serve.WriteJSON(w, http.StatusOK, resp)
}

// routerStatsz is the router's GET /statsz reply: router-level query
// latency plus the scatter client's fan-out, fast-path, per-shard
// latency, and partial-failure counters.
type routerStatsz struct {
	Queries        uint64             `json:"queries"`
	PartialAnswers uint64             `json:"partial_answers"` // queries served with partial results
	Latency        serve.LatencyStats `json:"latency"`
	FastPathRate   float64            `json:"fast_path_rate"`
	Client         shardkb.Stats      `json:"client"`
}

func (rt *router) handleStatsz(w http.ResponseWriter, r *http.Request) {
	cs := rt.client.Stats()
	serve.WriteJSON(w, http.StatusOK, routerStatsz{
		Queries:        rt.queries.Load(),
		PartialAnswers: rt.partialAnswers.Load(),
		Latency:        rt.lat.Summary(),
		FastPathRate:   cs.FastPathRate(),
		Client:         cs,
	})
}

// routerReady is the router's GET /readyz reply.
type routerReady struct {
	Shards int    `json:"shards"`
	Facts  int    `json:"facts"`
	Error  string `json:"error,omitempty"`
}

// handleReadyz health-checks every shard: the router is ready only when
// each shard answers /readyz with a loaded store, so a fronting load
// balancer never routes to a tier with an empty or still-loading shard.
func (rt *router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		serve.WriteJSON(w, http.StatusServiceUnavailable,
			routerReady{Shards: rt.client.NumShards(), Error: "draining"})
		return
	}
	replies, err := rt.client.Ready(r.Context())
	resp := routerReady{Shards: rt.client.NumShards()}
	for _, rr := range replies {
		if rr != nil {
			resp.Facts += rr.Facts
		}
	}
	if err != nil {
		resp.Error = err.Error()
		serve.WriteJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	serve.WriteJSON(w, http.StatusOK, resp)
}
