// Benchrunner regenerates every experiment table in EXPERIMENTS.md.
//
// Usage:
//
//	benchrunner             # run all experiments
//	benchrunner -exp E6,E13 # run a subset
//	benchrunner -list       # list experiments and the claims they test
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kbharvest/internal/experiments"
)

func main() {
	expFlag := flag.String("exp", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Claim)
		}
		return
	}

	selected := experiments.All()
	if *expFlag != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		fmt.Printf("=== %s: %s\n", e.ID, e.Claim)
		t0 := time.Now()
		for _, tab := range e.Run() {
			fmt.Println(tab.String())
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
}
