// Benchrunner regenerates every experiment table in EXPERIMENTS.md.
//
// Usage:
//
//	benchrunner                   # run all experiments
//	benchrunner -exp E6,E13       # run a subset
//	benchrunner -list             # list experiments and the claims they test
//	benchrunner -exp E8 -json BENCH_store.json  # machine-readable results
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kbharvest/internal/eval"
	"kbharvest/internal/experiments"
)

// jsonResult is the machine-readable record of one experiment run, consumed
// by CI to archive benchmark numbers (e.g. the E8 worker-scaling tables).
type jsonResult struct {
	ID     string        `json:"id"`
	Claim  string        `json:"claim"`
	Millis float64       `json:"millis"`
	Tables []*eval.Table `json:"tables"`
}

func main() {
	expFlag := flag.String("exp", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonPath := flag.String("json", "", "also write results as JSON to this path")
	queueDepth := flag.Int("ingest-queue", 0, "write-behind ingest queue depth in batches for E8c (0 = default)")
	flag.Parse()
	experiments.IngestQueueDepth = *queueDepth

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Claim)
		}
		return
	}

	selected := experiments.All()
	if *expFlag != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	var results []jsonResult
	for _, e := range selected {
		fmt.Printf("=== %s: %s\n", e.ID, e.Claim)
		t0 := time.Now()
		tabs := e.Run()
		took := time.Since(t0)
		for _, tab := range tabs {
			fmt.Println(tab.String())
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, took.Round(time.Millisecond))
		results = append(results, jsonResult{
			ID: e.ID, Claim: e.Claim,
			Millis: float64(took.Microseconds()) / 1000,
			Tables: tabs,
		})
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: encode json: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("json results written to %s\n", *jsonPath)
	}
}
