// Package kbharvest is a knowledge-base construction and knowledge-centric
// analytics toolkit — a from-scratch Go reproduction of the system stack
// surveyed in "Knowledge Bases in the Age of Big Data Analytics" (Suchanek
// & Weikum, PVLDB 7(13), 2014).
//
// The library covers both directions of the tutorial's theme:
//
//   - big data FOR knowledge: building a KB from a (synthetic) Web corpus —
//     taxonomy induction from category systems, relational fact harvesting
//     with patterns / distant supervision / open IE, consistency reasoning
//     via weighted MaxSat, factor-graph inference, temporal scoping,
//     multilingual labels, commonsense rule mining;
//   - knowledge FOR big data: named-entity disambiguation combining
//     priors, context, and coherence, and entity linkage emitting
//     owl:sameAs at scale.
//
// Quickstart:
//
//	result, err := kbharvest.Build(kbharvest.DefaultBuildOptions())
//	if err != nil { ... }
//	rows, _ := result.KB.QueryStrings([]string{"?p kb:founded ?c"})
//
// See examples/ for full programs and DESIGN.md for the system inventory.
package kbharvest

import (
	"context"
	"io"

	"kbharvest/internal/core"
	"kbharvest/internal/ned"
	"kbharvest/internal/pipeline"
	"kbharvest/internal/rdf"
	"kbharvest/internal/synth"
)

// KB is the knowledge base: a dictionary-encoded triple store with
// SPO/POS/OSP indexes, per-fact confidence/provenance/temporal metadata,
// taxonomy operations, and a conjunctive query engine.
type KB = core.Store

// Triple is one subject-predicate-object statement.
type Triple = rdf.Triple

// Term is one RDF term (IRI, literal, or blank node).
type Term = rdf.Term

// Interval is a fact's validity timespan in days since 1900-01-01.
type Interval = core.Interval

// FactInfo is per-fact metadata: confidence, provenance, temporal scope.
type FactInfo = core.FactInfo

// BuildOptions configure an end-to-end KB construction run.
type BuildOptions = pipeline.Options

// BuildResult is the output of Build: the KB, the generating world and
// corpus (for evaluation), and ready-made NED models.
type BuildResult = pipeline.Result

// WorldConfig sizes the synthetic world standing in for Wikipedia/Web
// sources (see DESIGN.md for the substitution rationale).
type WorldConfig = synth.Config

// Linker is the AIDA-style named-entity disambiguator.
type Linker = ned.Linker

// Mention is one surface form plus its textual context, ready for
// disambiguation.
type Mention = ned.Mention

// NewKB returns an empty knowledge base.
func NewKB() *KB { return core.NewStore() }

// DefaultBuildOptions enables every pipeline stage at default scale.
func DefaultBuildOptions() BuildOptions { return pipeline.DefaultOptions() }

// Build runs the full construction pipeline: synthetic world and corpus,
// taxonomy harvesting, fact extraction, consistency reasoning, temporal
// scoping, labels, and NED model building.
func Build(opt BuildOptions) (*BuildResult, error) {
	return pipeline.Run(context.Background(), opt)
}

// BuildContext is Build bounded by a context: cancelling ctx aborts the
// run promptly — the extraction workers and the write-behind ingest queue
// are cancellation-aware — returning the context error.
func BuildContext(ctx context.Context, opt BuildOptions) (*BuildResult, error) {
	return pipeline.Run(ctx, opt)
}

// NewIRI builds an IRI term.
func NewIRI(iri string) Term { return rdf.NewIRI(iri) }

// T builds an IRI-only triple.
func T(s, p, o string) Triple { return rdf.T(s, p, o) }

// SaveKB writes a KB snapshot (N-Triples plus metadata comments) to w.
func SaveKB(kb *KB, w io.Writer) error { return kb.Save(w) }

// LoadKB reads a snapshot into a fresh KB.
func LoadKB(r io.Reader) (*KB, error) {
	kb := core.NewStore()
	if _, err := kb.Load(r); err != nil {
		return nil, err
	}
	return kb, nil
}
