module kbharvest

go 1.22
