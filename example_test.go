package kbharvest_test

import (
	"fmt"
	"log"

	"kbharvest"
)

// ExampleBuild shows the minimal end-to-end flow: construct a KB from the
// synthetic corpus and ask it a join query. (Entity names are generated,
// so the example prints only stable aggregates.)
func ExampleBuild() {
	opt := kbharvest.DefaultBuildOptions()
	opt.World = kbharvest.WorldConfig{
		People: 40, Companies: 10, Cities: 8, Countries: 3,
		Universities: 4, Products: 8, Prizes: 3,
	}
	opt.Seed = 7
	result, err := kbharvest.Build(opt)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := result.KB.QueryStrings([]string{
		"?person kb:founded ?company",
		"?company kb:locatedIn ?city",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(rows) > 0)
	// Output: true
}

// ExampleKB_QueryStrings demonstrates the conjunctive query syntax on a
// hand-built KB.
func ExampleKB_QueryStrings() {
	kb := kbharvest.NewKB()
	kb.Add(kbharvest.T("kb:Jobs", "kb:founded", "kb:Apple"))
	kb.Add(kbharvest.T("kb:Apple", "kb:locatedIn", "kb:Cupertino"))
	rows, err := kb.QueryStrings([]string{
		"?p kb:founded ?c",
		"?c kb:locatedIn ?city",
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range rows {
		fmt.Printf("%s founded %s in %s\n", b["p"].Value, b["c"].Value, b["city"].Value)
	}
	// Output: kb:Jobs founded kb:Apple in kb:Cupertino
}
