package kbharvest

import (
	"bytes"
	"testing"

	"kbharvest/internal/ned"
)

func smallBuild(t *testing.T, seed int64) *BuildResult {
	t.Helper()
	opt := DefaultBuildOptions()
	opt.World = WorldConfig{
		People: 50, Companies: 12, Cities: 8, Countries: 3,
		Universities: 5, Products: 10, Prizes: 4,
	}
	opt.Seed = seed
	res, err := Build(opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFacadeBuildAndQuery(t *testing.T) {
	res := smallBuild(t, 1001)
	if res.KB.Len() == 0 {
		t.Fatal("empty KB")
	}
	rows, err := res.KB.QueryStrings([]string{"?p kb:founded ?c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Error("no founders found")
	}
	// Taxonomy available through the facade type.
	if len(res.KB.Instances("kb:person")) == 0 {
		t.Error("no persons in harvested taxonomy")
	}
}

func TestFacadeSaveLoadRoundTrip(t *testing.T) {
	res := smallBuild(t, 1002)
	var buf bytes.Buffer
	if err := SaveKB(res.KB, &buf); err != nil {
		t.Fatal(err)
	}
	kb2, err := LoadKB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if kb2.Len() != res.KB.Len() {
		t.Errorf("round trip: %d != %d facts", kb2.Len(), res.KB.Len())
	}
	// A known fact survives with metadata.
	for _, tr := range res.KB.All()[:10] {
		if !kb2.Has(tr) {
			t.Errorf("fact lost: %v", tr)
		}
	}
}

func TestFacadeLinker(t *testing.T) {
	res := smallBuild(t, 1003)
	linker := res.Linker()
	p := res.World.People[0]
	out := linker.Disambiguate([]Mention{{Surface: p.Name}}, ned.PriorOnly)
	if len(out) != 1 || out[0].Entity != p.ID {
		t.Errorf("facade linker result = %+v", out)
	}
}

func TestFacadeHelpers(t *testing.T) {
	kb := NewKB()
	kb.Add(T("a", "p", "b"))
	if !kb.Has(T("a", "p", "b")) {
		t.Error("T/Has through facade failed")
	}
	if NewIRI("x").Value != "x" {
		t.Error("NewIRI wrong")
	}
}

func TestFacadeLoadError(t *testing.T) {
	if _, err := LoadKB(bytes.NewBufferString("garbage line\n")); err == nil {
		t.Error("LoadKB should propagate parse errors")
	}
}
