// Package factorgraph implements factor graphs over boolean variables with
// Gibbs-sampling marginal inference — the statistical-learning machinery of
// DeepDive-style knowledge-base construction (§3): candidate facts become
// random variables, extractor confidences become priors, and correlations
// (mutual exclusion of contradictory facts, mutual support of corroborating
// ones) become weighted factors. Marginal probabilities then decide which
// facts enter the KB.
package factorgraph

import (
	"fmt"
	"math"
	"math/rand"
)

// Graph is a factor graph over boolean variables.
type Graph struct {
	names   []string
	factors []factor
	// adj[v] lists the factors touching variable v.
	adj [][]int
}

type factor struct {
	vars []int
	// logPot returns the log-potential of the factor under the given
	// assignment of its variables (aligned with vars).
	logPot func(vals []bool) float64
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// AddVariable adds a boolean variable and returns its index.
func (g *Graph) AddVariable(name string) int {
	g.names = append(g.names, name)
	g.adj = append(g.adj, nil)
	return len(g.names) - 1
}

// NumVariables returns the variable count.
func (g *Graph) NumVariables() int { return len(g.names) }

// Name returns a variable's name.
func (g *Graph) Name(v int) string { return g.names[v] }

// AddFactor attaches a log-potential over the given variables.
func (g *Graph) AddFactor(vars []int, logPot func(vals []bool) float64) error {
	for _, v := range vars {
		if v < 0 || v >= len(g.names) {
			return fmt.Errorf("factorgraph: variable %d out of range", v)
		}
	}
	idx := len(g.factors)
	g.factors = append(g.factors, factor{vars: append([]int(nil), vars...), logPot: logPot})
	for _, v := range vars {
		g.adj[v] = append(g.adj[v], idx)
	}
	return nil
}

// AddPrior biases a variable toward true with the given probability
// (converted to a log-odds unary factor).
func (g *Graph) AddPrior(v int, pTrue float64) error {
	const eps = 1e-6
	if pTrue < eps {
		pTrue = eps
	}
	if pTrue > 1-eps {
		pTrue = 1 - eps
	}
	logOdds := math.Log(pTrue / (1 - pTrue))
	return g.AddFactor([]int{v}, func(vals []bool) float64 {
		if vals[0] {
			return logOdds
		}
		return 0
	})
}

// AddMutex penalizes both variables being true by weight (soft mutual
// exclusion — e.g. two objects for a functional relation).
func (g *Graph) AddMutex(a, b int, weight float64) error {
	return g.AddFactor([]int{a, b}, func(vals []bool) float64 {
		if vals[0] && vals[1] {
			return -weight
		}
		return 0
	})
}

// AddSupport rewards both variables being true by weight (corroborating
// evidence, e.g. infobox and sentence extraction agreeing).
func (g *Graph) AddSupport(a, b int, weight float64) error {
	return g.AddFactor([]int{a, b}, func(vals []bool) float64 {
		if vals[0] && vals[1] {
			return weight
		}
		return 0
	})
}

// AddImplication softly encodes a -> b: penalizes a=true, b=false.
func (g *Graph) AddImplication(a, b int, weight float64) error {
	return g.AddFactor([]int{a, b}, func(vals []bool) float64 {
		if vals[0] && !vals[1] {
			return -weight
		}
		return 0
	})
}

// Gibbs runs Gibbs sampling and returns the marginal P(v = true) for every
// variable, averaged over iterations after burn-in sweeps.
func (g *Graph) Gibbs(burnin, iterations int, seed int64) []float64 {
	n := len(g.names)
	rng := rand.New(rand.NewSource(seed))
	state := make([]bool, n)
	for v := range state {
		state[v] = rng.Intn(2) == 0
	}
	counts := make([]int, n)
	scratch := make([]bool, 8)
	condLogOdds := func(v int) float64 {
		// log P(v=1 | rest) - log P(v=0 | rest) over touching factors.
		delta := 0.0
		for _, fi := range g.adj[v] {
			f := g.factors[fi]
			if cap(scratch) < len(f.vars) {
				scratch = make([]bool, len(f.vars))
			}
			vals := scratch[:len(f.vars)]
			for i, fv := range f.vars {
				vals[i] = state[fv]
			}
			for i, fv := range f.vars {
				if fv == v {
					vals[i] = true
				}
			}
			lp1 := f.logPot(vals)
			for i, fv := range f.vars {
				if fv == v {
					vals[i] = false
				}
			}
			lp0 := f.logPot(vals)
			delta += lp1 - lp0
		}
		return delta
	}
	sweep := func(record bool) {
		for v := 0; v < n; v++ {
			p1 := sigmoid(condLogOdds(v))
			state[v] = rng.Float64() < p1
			if record && state[v] {
				counts[v]++
			}
		}
	}
	for i := 0; i < burnin; i++ {
		sweep(false)
	}
	for i := 0; i < iterations; i++ {
		sweep(true)
	}
	marg := make([]float64, n)
	for v := range marg {
		if iterations > 0 {
			marg[v] = float64(counts[v]) / float64(iterations)
		}
	}
	return marg
}

// MAP runs iterated conditional modes (greedy coordinate ascent) from the
// all-prior-favored start and returns an approximate MAP assignment.
func (g *Graph) MAP(maxSweeps int) []bool {
	n := len(g.names)
	state := make([]bool, n)
	scratch := make([]bool, 8)
	score := func(v int, val bool) float64 {
		s := 0.0
		for _, fi := range g.adj[v] {
			f := g.factors[fi]
			if cap(scratch) < len(f.vars) {
				scratch = make([]bool, len(f.vars))
			}
			vals := scratch[:len(f.vars)]
			for i, fv := range f.vars {
				vals[i] = state[fv]
				if fv == v {
					vals[i] = val
				}
			}
			s += f.logPot(vals)
		}
		return s
	}
	for sweepNo := 0; sweepNo < maxSweeps; sweepNo++ {
		changed := false
		for v := 0; v < n; v++ {
			want := score(v, true) > score(v, false)
			if state[v] != want {
				state[v] = want
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return state
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}
