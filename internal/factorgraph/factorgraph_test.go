package factorgraph

import (
	"math"
	"testing"
)

func TestPriorMarginal(t *testing.T) {
	g := NewGraph()
	v := g.AddVariable("x")
	if err := g.AddPrior(v, 0.9); err != nil {
		t.Fatal(err)
	}
	marg := g.Gibbs(100, 2000, 1)
	if math.Abs(marg[v]-0.9) > 0.05 {
		t.Errorf("marginal = %v, want ~0.9", marg[v])
	}
}

func TestPriorExtremesClamped(t *testing.T) {
	g := NewGraph()
	a := g.AddVariable("a")
	b := g.AddVariable("b")
	if err := g.AddPrior(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.AddPrior(b, 1); err != nil {
		t.Fatal(err)
	}
	marg := g.Gibbs(50, 1000, 2)
	if marg[a] > 0.05 || marg[b] < 0.95 {
		t.Errorf("marginals = %v", marg)
	}
}

func TestMutexSuppressesWeaker(t *testing.T) {
	g := NewGraph()
	strong := g.AddVariable("strong")
	weak := g.AddVariable("weak")
	g.AddPrior(strong, 0.85)
	g.AddPrior(weak, 0.6)
	g.AddMutex(strong, weak, 6)
	marg := g.Gibbs(200, 4000, 3)
	// Exact marginal for this network is ~0.69 (the mutex drags both
	// down; the stronger prior much less).
	if marg[strong] < 0.6 {
		t.Errorf("strong marginal = %v", marg[strong])
	}
	if marg[weak] > 0.45 {
		t.Errorf("weak marginal should drop under mutex: %v", marg[weak])
	}
	if marg[weak] >= marg[strong] {
		t.Errorf("mutex should favor stronger prior: %v vs %v", marg[weak], marg[strong])
	}
}

func TestSupportLiftsBoth(t *testing.T) {
	g := NewGraph()
	a := g.AddVariable("a")
	b := g.AddVariable("b")
	g.AddPrior(a, 0.5)
	g.AddPrior(b, 0.8)
	g.AddSupport(a, b, 3)
	marg := g.Gibbs(200, 4000, 4)
	if marg[a] < 0.6 {
		t.Errorf("supported variable should rise above its prior: %v", marg[a])
	}
}

func TestImplication(t *testing.T) {
	g := NewGraph()
	a := g.AddVariable("a")
	b := g.AddVariable("b")
	g.AddPrior(a, 0.9)
	g.AddPrior(b, 0.3)
	g.AddImplication(a, b, 5)
	marg := g.Gibbs(200, 4000, 5)
	if marg[b] < 0.5 {
		t.Errorf("implication should lift consequent: %v", marg[b])
	}
}

func TestMAPAgreesWithStrongPriors(t *testing.T) {
	g := NewGraph()
	a := g.AddVariable("a")
	b := g.AddVariable("b")
	c := g.AddVariable("c")
	g.AddPrior(a, 0.95)
	g.AddPrior(b, 0.05)
	g.AddPrior(c, 0.7)
	g.AddMutex(a, c, 10)
	state := g.MAP(20)
	if !state[a] {
		t.Error("a should be true in MAP")
	}
	if state[b] {
		t.Error("b should be false in MAP")
	}
	if state[c] {
		t.Error("c should lose the mutex against a")
	}
}

func TestAddFactorOutOfRange(t *testing.T) {
	g := NewGraph()
	if err := g.AddFactor([]int{3}, func([]bool) float64 { return 0 }); err == nil {
		t.Error("expected range error")
	}
}

func TestGibbsDeterministicPerSeed(t *testing.T) {
	build := func() *Graph {
		g := NewGraph()
		a := g.AddVariable("a")
		b := g.AddVariable("b")
		g.AddPrior(a, 0.7)
		g.AddPrior(b, 0.4)
		g.AddMutex(a, b, 2)
		return g
	}
	m1 := build().Gibbs(50, 500, 42)
	m2 := build().Gibbs(50, 500, 42)
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("same-seed runs differ: %v vs %v", m1, m2)
		}
	}
}

func TestNamesAndCounts(t *testing.T) {
	g := NewGraph()
	v := g.AddVariable("fact(a,b)")
	if g.NumVariables() != 1 || g.Name(v) != "fact(a,b)" {
		t.Error("bookkeeping wrong")
	}
}

// The DeepDive-shaped scenario of experiment E5 in miniature: joint
// inference must beat independent thresholding when correlations carry
// the signal.
func TestJointBeatsIndependentOnCorrelatedCandidates(t *testing.T) {
	// Ground truth: fact A true, fact B false. Both have ambiguous priors
	// (0.55 / 0.6), but A is supported by a high-confidence corroborator
	// C (0.9) and B contradicts C via functionality.
	g := NewGraph()
	a := g.AddVariable("A")
	b := g.AddVariable("B")
	c := g.AddVariable("C")
	g.AddPrior(a, 0.55)
	g.AddPrior(b, 0.6)
	g.AddPrior(c, 0.9)
	g.AddSupport(a, c, 4)
	g.AddMutex(b, c, 4)
	marg := g.Gibbs(200, 4000, 6)
	// Independent thresholding at 0.5 accepts both A and B. Joint
	// inference must separate them.
	if marg[a] <= marg[b] {
		t.Errorf("joint inference failed to separate: A=%v B=%v", marg[a], marg[b])
	}
	if marg[b] > 0.5 {
		t.Errorf("contradicted fact should fall below threshold: %v", marg[b])
	}
}
