package pipeline

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"kbharvest/internal/core"
	"kbharvest/internal/eval"
	"kbharvest/internal/extract"
	"kbharvest/internal/extract/patterns"
	"kbharvest/internal/ned"
	"kbharvest/internal/rdf"
	"kbharvest/internal/synth"
	"kbharvest/internal/temporal"
)

func smallOptions(seed int64) Options {
	return Options{
		World: synth.Config{
			People: 60, Companies: 15, Cities: 10, Countries: 3,
			Universities: 6, Products: 12, Prizes: 4,
		},
		Seed:      seed,
		Corpus:    synth.DefaultCorpusOptions(),
		Workers:   2,
		Reason:    true,
		Infoboxes: true,
		Temporal:  true,
	}
}

func TestRunEndToEnd(t *testing.T) {
	res, err := Run(context.Background(), smallOptions(91))
	if err != nil {
		t.Fatal(err)
	}
	if res.KB.Len() == 0 {
		t.Fatal("empty KB")
	}
	if res.Candidates == 0 || res.Accepted == 0 {
		t.Fatalf("candidates=%d accepted=%d", res.Candidates, res.Accepted)
	}
	if res.Accepted > res.Candidates {
		t.Error("reasoning cannot accept more than extracted")
	}
	// All stages timed.
	stages := map[string]bool{}
	for _, s := range res.Timings {
		stages[s.Stage] = true
	}
	for _, want := range []string{"generate", "taxonomy", "extract", "reason", "assert", "labels", "nedmodels"} {
		if !stages[want] {
			t.Errorf("missing stage timing %q", want)
		}
	}
}

func TestExtractionQuality(t *testing.T) {
	res, err := Run(context.Background(), smallOptions(92))
	if err != nil {
		t.Fatal(err)
	}
	tp, fp, fn := EvaluateFacts(res)
	score := eval.Score(tp, fp, fn)
	t.Logf("pipeline fact quality: %v", score)
	if score.Precision < 0.85 {
		t.Errorf("pipeline precision = %v", score)
	}
	if score.Recall < 0.45 {
		t.Errorf("pipeline recall = %v", score)
	}
}

func TestReasoningImprovesPrecision(t *testing.T) {
	noReason := smallOptions(93)
	noReason.Reason = false
	withReason := smallOptions(93)

	resNo, err := Run(context.Background(), noReason)
	if err != nil {
		t.Fatal(err)
	}
	resYes, err := Run(context.Background(), withReason)
	if err != nil {
		t.Fatal(err)
	}
	tpN, fpN, _ := EvaluateFacts(resNo)
	tpY, fpY, _ := EvaluateFacts(resYes)
	precNo := eval.Accuracy(tpN, tpN+fpN)
	precYes := eval.Accuracy(tpY, tpY+fpY)
	t.Logf("precision without reasoning %.3f, with %.3f", precNo, precYes)
	if precYes < precNo {
		t.Errorf("reasoning lowered precision: %.3f -> %.3f", precNo, precYes)
	}
}

func TestTaxonomyInKB(t *testing.T) {
	res, err := Run(context.Background(), smallOptions(94))
	if err != nil {
		t.Fatal(err)
	}
	// Harvested types must cover most entities.
	typed := 0
	for _, e := range res.World.Entities {
		if len(res.KB.DirectTypes(e.ID)) > 0 {
			typed++
		}
	}
	if frac := float64(typed) / float64(len(res.World.Entities)); frac < 0.95 {
		t.Errorf("only %.2f of entities typed", frac)
	}
	// Subclass edges present.
	if len(res.KB.Subclasses(classIRI("person"))) == 0 {
		t.Error("no induced person subclasses")
	}
}

func TestTemporalScopesInKB(t *testing.T) {
	res, err := Run(context.Background(), smallOptions(95))
	if err != nil {
		t.Fatal(err)
	}
	scoped := 0
	for _, rel := range relationIRIs() {
		for _, id := range res.KB.MatchFacts(patternFor(rel)) {
			info, _ := res.KB.Info(id)
			if info.Time.Begin != -1<<31 && info.Time.End != 1<<31-1 {
				scoped++
			}
		}
	}
	if scoped == 0 {
		t.Error("no facts carry bounded temporal scopes")
	}
}

func TestMapReduceWorkerEquivalence(t *testing.T) {
	w := synth.Generate(synth.Config{
		People: 40, Companies: 10, Cities: 8, Countries: 3,
		Universities: 4, Products: 8, Prizes: 3,
	}, 96)
	corpus := synth.BuildCorpus(w, synth.DefaultCorpusOptions())
	docs := Docs(corpus)
	base, err := ExtractMapReduce(context.Background(), docs, patterns.DefaultPatterns(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := ExtractMapReduce(context.Background(), docs, patterns.DefaultPatterns(), workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(keysOf(base), keysOf(got)) {
			t.Errorf("workers=%d extraction differs from workers=1", workers)
		}
	}
}

func TestLinkerFromPipeline(t *testing.T) {
	res, err := Run(context.Background(), smallOptions(97))
	if err != nil {
		t.Fatal(err)
	}
	linker := res.Linker()
	if linker == nil || linker.Dict == nil {
		t.Fatal("linker not wired")
	}
	// It should disambiguate a canonical name to the right entity.
	p := res.World.People[0]
	results := linker.Disambiguate([]ned.Mention{{Surface: p.Name, Context: ""}}, ned.PriorOnly)
	if len(results) != 1 || results[0].Entity != p.ID {
		t.Errorf("linker result = %+v, want %s", results, p.ID)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, err := Run(context.Background(), smallOptions(98))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), smallOptions(98))
	if err != nil {
		t.Fatal(err)
	}
	if a.Candidates != b.Candidates || a.Accepted != b.Accepted || a.KB.Len() != b.KB.Len() {
		t.Errorf("same-seed runs differ: %d/%d/%d vs %d/%d/%d",
			a.Candidates, a.Accepted, a.KB.Len(), b.Candidates, b.Accepted, b.KB.Len())
	}
}

func TestDocsAdapter(t *testing.T) {
	w := synth.Generate(synth.Config{
		People: 10, Companies: 4, Cities: 4, Countries: 2,
		Universities: 2, Products: 3, Prizes: 2,
	}, 99)
	corpus := synth.BuildCorpus(w, synth.DefaultCorpusOptions())
	docs := Docs(corpus)
	if len(docs) != len(corpus.Articles) {
		t.Fatalf("docs = %d, want %d", len(docs), len(corpus.Articles))
	}
	for i, d := range docs {
		a := corpus.Articles[i]
		if d.Text != a.Text || d.Source != a.ID {
			t.Fatalf("doc %d mismatch", i)
		}
		if len(d.Mentions) != len(a.Mentions) {
			t.Fatalf("doc %d mention count mismatch", i)
		}
		for j, m := range d.Mentions {
			if d.Text[m.Start:m.End] != a.Mentions[j].Surface {
				t.Fatalf("doc %d mention %d offsets wrong", i, j)
			}
		}
	}
}

func TestRunDefaultsZeroValueWorld(t *testing.T) {
	// A zero-valued World config falls back to the default world rather
	// than producing an empty pipeline.
	opt := Options{Seed: 100, Workers: 4, Infoboxes: true}
	res, err := Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.World.Entities) == 0 || res.KB.Len() == 0 {
		t.Error("zero-value options should build the default world")
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := Run(ctx, smallOptions(101))
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("Run with cancelled ctx = (%v, %v), want context.Canceled", res, err)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Errorf("cancelled Run took %v, want prompt return", took)
	}
}

func TestRunCancelMidway(t *testing.T) {
	// Cancelling during the run must abort with a context error rather
	// than completing or hanging; the exact stage it dies in is timing
	// dependent.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, smallOptions(102))
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("mid-run cancel returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
}

func TestStageItemsCounted(t *testing.T) {
	res, err := Run(context.Background(), smallOptions(103))
	if err != nil {
		t.Fatal(err)
	}
	items := map[string]int{}
	for _, s := range res.Timings {
		items[s.Stage] = s.Items
	}
	if items["generate"] != len(res.Corpus.Articles) {
		t.Errorf("generate items = %d, want %d articles", items["generate"], len(res.Corpus.Articles))
	}
	if items["extract"] != res.Candidates {
		t.Errorf("extract items = %d, want %d candidates", items["extract"], res.Candidates)
	}
	if items["reason"] != res.Accepted || items["assert"] != res.Accepted {
		t.Errorf("reason/assert items = %d/%d, want %d accepted",
			items["reason"], items["assert"], res.Accepted)
	}
	for _, stage := range []string{"taxonomy", "labels", "nedmodels"} {
		if items[stage] == 0 {
			t.Errorf("stage %s counted no items", stage)
		}
	}
}

func TestScopesMatchReextraction(t *testing.T) {
	// The scope candidates carried out of the extract stage must aggregate
	// to the same intervals the old per-sentence re-extraction produced.
	res, err := Run(context.Background(), smallOptions(104))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]core.Interval{}
	for _, doc := range Docs(res.Corpus) {
		for _, sent := range extract.SplitDoc(doc) {
			iv, ok := temporal.ScopeSentence(sent.Text)
			if !ok {
				continue
			}
			for _, c := range patterns.Apply([]extract.Sentence{sent}, patterns.DefaultPatterns()) {
				want[c.Key()] = append(want[c.Key()], iv)
			}
		}
	}
	for _, rel := range relationIRIs() {
		res.KB.MatchFunc(rdf.Triple{P: rdf.NewIRI(rel)}, func(id core.FactID, tr rdf.Triple) bool {
			info, _ := res.KB.Info(id)
			key := tr.S.Value + "\x00" + rel + "\x00" + tr.O.Value
			wantTime := core.Always
			if ivs := want[key]; len(ivs) > 0 {
				if iv, ok := temporal.AggregateScopes(ivs); ok {
					wantTime = iv
				}
			}
			if info.Time != wantTime {
				t.Errorf("fact %s scope = %v, want %v", key, info.Time, wantTime)
			}
			return true
		})
	}
}

func keysOf(cands []extract.Candidate) map[string]bool {
	out := make(map[string]bool, len(cands))
	for _, c := range cands {
		out[c.Key()] = true
	}
	return out
}

func patternFor(rel string) rdf.Triple {
	return rdf.Triple{P: rdf.NewIRI(rel)}
}
