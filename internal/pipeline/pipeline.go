// Package pipeline assembles the full knowledge-base construction system
// of the tutorial (§2 + §3): synthetic world and corpus in, curated KB
// out. Stages: taxonomy harvesting from categories, fact extraction
// (infoboxes + surface patterns, optionally distributed over the
// map-reduce engine), logical consistency reasoning, temporal scoping,
// multilingual labels, and the NED models for downstream analytics (§4).
package pipeline

import (
	"fmt"
	"time"

	"kbharvest/internal/core"
	"kbharvest/internal/extract"
	"kbharvest/internal/extract/patterns"
	"kbharvest/internal/mapreduce"
	"kbharvest/internal/ned"
	"kbharvest/internal/rdf"
	"kbharvest/internal/reason"
	"kbharvest/internal/synth"
	"kbharvest/internal/taxonomy"
	"kbharvest/internal/temporal"
)

// Options configure a pipeline run.
type Options struct {
	// World sizes the synthetic world; zero value means DefaultConfig.
	World synth.Config
	// Seed drives world, corpus, and every randomized stage.
	Seed int64
	// Corpus tunes the article renderer; zero value means defaults.
	Corpus synth.CorpusOptions
	// Workers is the extraction parallelism (map-reduce). Default 1.
	Workers int
	// Reason toggles the consistency-reasoning stage.
	Reason bool
	// Infoboxes toggles infobox harvesting.
	Infoboxes bool
	// Temporal toggles fact time-scoping.
	Temporal bool
}

// DefaultOptions enables every stage at default scale.
func DefaultOptions() Options {
	return Options{
		World:     synth.DefaultConfig(),
		Seed:      42,
		Corpus:    synth.DefaultCorpusOptions(),
		Workers:   1,
		Reason:    true,
		Infoboxes: true,
		Temporal:  true,
	}
}

// StageTiming records one stage's wall-clock cost.
type StageTiming struct {
	Stage    string
	Duration time.Duration
}

// Result is the pipeline output.
type Result struct {
	KB     *core.Store
	World  *synth.World
	Corpus *synth.Corpus

	// Candidates counts raw extractions before reasoning; Accepted after.
	Candidates int
	Accepted   int
	Timings    []StageTiming

	// NED models built from the corpus for §4-style analytics.
	Dictionary  *ned.Dictionary
	ContextMod  *ned.ContextModel
	Relatedness *ned.Relatedness
}

// Run executes the pipeline.
func Run(opt Options) (*Result, error) {
	if opt.World.People == 0 {
		opt.World = synth.DefaultConfig()
	}
	if opt.Workers < 1 {
		opt.Workers = 1
	}
	res := &Result{KB: core.NewStore()}
	stage := func(name string, fn func() error) error {
		t0 := time.Now()
		if err := fn(); err != nil {
			return fmt.Errorf("pipeline: %s: %w", name, err)
		}
		res.Timings = append(res.Timings, StageTiming{Stage: name, Duration: time.Since(t0)})
		return nil
	}

	if err := stage("generate", func() error {
		res.World = synth.Generate(opt.World, opt.Seed)
		res.Corpus = synth.BuildCorpus(res.World, opt.Corpus)
		return nil
	}); err != nil {
		return nil, err
	}

	if err := stage("taxonomy", func() error {
		harvestTaxonomy(res)
		return nil
	}); err != nil {
		return nil, err
	}

	var cands []extract.Candidate
	if err := stage("extract", func() error {
		var err error
		cands, err = runExtraction(res, opt)
		return err
	}); err != nil {
		return nil, err
	}
	res.Candidates = len(cands)

	accepted := cands
	if opt.Reason {
		if err := stage("reason", func() error {
			accepted = runReasoning(res, cands)
			return nil
		}); err != nil {
			return nil, err
		}
	}
	res.Accepted = len(accepted)

	if err := stage("assert", func() error {
		assertFacts(res, accepted, opt)
		return nil
	}); err != nil {
		return nil, err
	}

	if err := stage("labels", func() error {
		assertLabels(res)
		return nil
	}); err != nil {
		return nil, err
	}

	if err := stage("nedmodels", func() error {
		buildNEDModels(res)
		return nil
	}); err != nil {
		return nil, err
	}
	return res, nil
}

// harvestTaxonomy runs category analysis over the corpus and asserts
// types and subclass edges.
func harvestTaxonomy(res *Result) {
	var pages []taxonomy.Page
	for _, a := range res.Corpus.Articles {
		pages = append(pages, taxonomy.Page{Subject: a.Subject, Categories: a.Categories})
	}
	typeFacts := taxonomy.HarvestTypes(pages)
	ts := make([]rdf.Triple, 0, len(typeFacts))
	infos := make([]core.FactInfo, 0, len(typeFacts))
	for _, tf := range typeFacts {
		ts = append(ts, rdf.T(tf.Entity, rdf.RDFType, classIRI(tf.ClassNoun)))
		infos = append(infos, core.FactInfo{Confidence: 0.95, Source: "category:" + tf.Category, Time: core.Always})
	}
	res.KB.AddBatchMeta(ts, infos)
	edges := taxonomy.InduceSubclasses(res.Corpus.CategoryParents)
	ts = ts[:0]
	for _, e := range edges {
		ts = append(ts, rdf.T(classIRI(e.Sub), rdf.RDFSSubClassOf, classIRI(e.Super)))
	}
	res.KB.AddBatch(ts)
}

func classIRI(noun string) string { return "kb:" + noun }

// Docs converts corpus articles into extraction documents with gold
// mention annotations.
func Docs(corpus *synth.Corpus) []extract.Doc {
	docs := make([]extract.Doc, 0, len(corpus.Articles))
	for _, a := range corpus.Articles {
		d := extract.Doc{Text: a.Text, Source: a.ID}
		for _, m := range a.Mentions {
			d.Mentions = append(d.Mentions, extract.Span{Start: m.Start, End: m.End, Entity: m.Entity})
		}
		docs = append(docs, d)
	}
	return docs
}

// runExtraction applies infobox and pattern extraction, fanned out over
// the map-reduce engine when Workers > 1.
func runExtraction(res *Result, opt Options) ([]extract.Candidate, error) {
	var cands []extract.Candidate
	if opt.Infoboxes {
		var boxes []patterns.Infobox
		for _, a := range res.Corpus.Articles {
			if len(a.Infobox) > 0 {
				boxes = append(boxes, patterns.Infobox{Subject: a.Subject, Fields: a.Infobox})
			}
		}
		resolve := func(name string) (string, bool) {
			if e := res.World.EntityByName(name); e != nil {
				return e.ID, true
			}
			return "", false
		}
		cands = append(cands, patterns.HarvestInfoboxes(boxes, synth.InfoboxRelation, resolve)...)
	}
	textCands, err := ExtractMapReduce(Docs(res.Corpus), patterns.DefaultPatterns(), opt.Workers)
	if err != nil {
		return nil, err
	}
	return append(cands, textCands...), nil
}

// ExtractMapReduce runs pattern extraction as a map-reduce job: map =
// per-document extraction, reduce = dedup by fact key keeping max
// confidence. This is the §3 "map-reduce computation" path, and the unit
// experiment E8 scales over `workers`.
func ExtractMapReduce(docs []extract.Doc, pats []patterns.SurfacePattern, workers int) ([]extract.Candidate, error) {
	inputs := make([]interface{}, len(docs))
	for i := range docs {
		inputs[i] = docs[i]
	}
	mapper := func(record interface{}, emit func(string, interface{})) error {
		doc, ok := record.(extract.Doc)
		if !ok {
			return fmt.Errorf("bad record type %T", record)
		}
		for _, c := range patterns.Apply(extract.SplitDoc(doc), pats) {
			emit(c.Key(), c)
		}
		return nil
	}
	reducer := func(key string, values []interface{}, emit func(interface{})) error {
		best := values[0].(extract.Candidate)
		for _, v := range values[1:] {
			if c := v.(extract.Candidate); c.Confidence > best.Confidence {
				best = c
			}
		}
		emit(best)
		return nil
	}
	kvs, err := mapreduce.Run(inputs, mapper, reducer, mapreduce.Config{Workers: workers})
	if err != nil {
		return nil, err
	}
	out := make([]extract.Candidate, 0, len(kvs))
	for _, kv := range kvs {
		out = append(out, kv.Value.(extract.Candidate))
	}
	return out, nil
}

// runReasoning builds the consistency problem from the schema rules and
// the harvested taxonomy, then solves it.
func runReasoning(res *Result, cands []extract.Candidate) []extract.Candidate {
	rules := reason.ConsistencyRules{
		Functional: map[string]bool{},
		TypeCheck: func(c extract.Candidate) bool {
			schema, ok := synth.SchemaOf(c.P)
			if !ok {
				return true
			}
			// Use the *harvested* taxonomy (not gold) for typing; missing
			// types pass (open-world).
			okS := len(res.KB.DirectTypes(c.S)) == 0 || res.KB.IsA(c.S, schema.Domain)
			okO := len(res.KB.DirectTypes(c.O)) == 0 || res.KB.IsA(c.O, schema.Range)
			return okS && okO
		},
	}
	for _, s := range synth.Schema {
		if s.Functional {
			rules.Functional[s.ID] = true
		}
	}
	cp := reason.BuildConsistency(cands, rules)
	sol := cp.SolveWalkSAT(4*len(cands)+1000, 0.2, 7)
	return cp.Accepted(sol)
}

// assertFacts writes accepted candidates into the KB with provenance and
// (optionally) temporal scope mined from their source sentences.
func assertFacts(res *Result, accepted []extract.Candidate, opt Options) {
	// Collect per-fact sentence scopes for temporal aggregation.
	scopes := map[string][]core.Interval{}
	if opt.Temporal {
		for _, doc := range Docs(res.Corpus) {
			for _, sent := range extract.SplitDoc(doc) {
				iv, ok := temporal.ScopeSentence(sent.Text)
				if !ok {
					continue
				}
				for _, c := range patterns.Apply([]extract.Sentence{sent}, patterns.DefaultPatterns()) {
					scopes[c.Key()] = append(scopes[c.Key()], iv)
				}
			}
		}
	}
	ts := make([]rdf.Triple, len(accepted))
	infos := make([]core.FactInfo, len(accepted))
	for i, c := range accepted {
		ts[i] = c.Triple()
		infos[i] = core.FactInfo{Confidence: c.Confidence, Source: c.Source, Time: core.Always}
		if ivs := scopes[c.Key()]; len(ivs) > 0 {
			if iv, ok := temporal.AggregateScopes(ivs); ok {
				infos[i].Time = iv
			}
		}
	}
	res.KB.AddBatchMeta(ts, infos)
}

// assertLabels copies the multilingual labels and aliases from the world
// metadata (standing in for interwiki harvesting).
func assertLabels(res *Result) {
	var ts []rdf.Triple
	for _, e := range res.World.Entities {
		for lang, name := range e.Labels {
			ts = append(ts, rdf.Triple{
				S: rdf.NewIRI(e.ID), P: rdf.NewIRI(rdf.RDFSLabel),
				O: rdf.NewLangLiteral(name, lang),
			})
		}
		for _, a := range e.Aliases {
			ts = append(ts, rdf.Triple{
				S: rdf.NewIRI(e.ID), P: rdf.NewIRI(rdf.SKOSAltLabel),
				O: rdf.NewLangLiteral(a, "en"),
			})
		}
	}
	res.KB.AddBatch(ts)
}

// buildNEDModels wires dictionary, context, and relatedness models from
// the corpus — the §4 deliverable.
func buildNEDModels(res *Result) {
	b := ned.NewBuilder()
	for _, e := range res.World.Entities {
		b.Observe(e.Name, e.ID, 4)
		for _, a := range e.Aliases {
			b.Observe(a, e.ID, 1)
		}
	}
	for _, a := range res.Corpus.Articles {
		for _, m := range a.Mentions {
			if m.Linked {
				b.Observe(m.Surface, m.Entity, 2)
			}
		}
	}
	res.Dictionary = b.Build()
	ctx := ned.NewContextModel()
	rel := ned.NewRelatedness()
	for _, a := range res.Corpus.Articles {
		ctx.AddDocument(a.Subject, a.Text)
		rel.AddLinks(a.ID, a.Links)
	}
	ctx.Finalize()
	res.ContextMod = ctx
	res.Relatedness = rel
}

// Linker returns a ready AIDA-style linker over the pipeline's models.
func (r *Result) Linker() *ned.Linker {
	return ned.NewLinker(r.Dictionary, r.ContextMod, r.Relatedness)
}

// EvaluateFacts scores the KB's relational facts against the generating
// world's ground truth (relation facts only; types and labels excluded).
func EvaluateFacts(res *Result) (tp, fp, fn int) {
	goldKeys := map[string]bool{}
	for _, f := range res.World.Facts {
		goldKeys[f.S+"\x00"+f.P+"\x00"+f.O] = true
	}
	predKeys := map[string]bool{}
	for _, rel := range relationIRIs() {
		res.KB.MatchFunc(rdf.Triple{P: rdf.NewIRI(rel)}, func(_ core.FactID, t rdf.Triple) bool {
			predKeys[t.S.Value+"\x00"+rel+"\x00"+t.O.Value] = true
			return true
		})
	}
	for k := range predKeys {
		if goldKeys[k] {
			tp++
		} else {
			fp++
		}
	}
	for k := range goldKeys {
		if !predKeys[k] {
			fn++
		}
	}
	return tp, fp, fn
}

func relationIRIs() []string {
	out := make([]string, 0, len(synth.Schema))
	for _, s := range synth.Schema {
		out = append(out, s.ID)
	}
	return out
}
