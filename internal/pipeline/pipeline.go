// Package pipeline assembles the full knowledge-base construction system
// of the tutorial (§2 + §3) as a streaming, cancellable data flow:
// synthetic world and corpus in, curated KB out. Stages — generate,
// taxonomy harvesting from categories, fact extraction (infoboxes +
// surface patterns over the map-reduce engine), logical consistency
// reasoning, temporal scoping, multilingual labels, and the NED models for
// downstream analytics (§4) — run under one context.Context and are
// timed and counted uniformly (see StageTiming).
//
// The write path is asynchronous: stages do not call the store's batch API
// directly but emit facts through a write-behind ingest.Ingester, whose
// dedicated drainer goroutines batch them into core.Store.AddBatchMeta.
// Producers therefore never block on store lock acquisition (only on
// queue backpressure), and stages that must observe earlier writes — the
// reasoner reads the harvested taxonomy — get visibility from an explicit
// Ingester.Flush at the end of each writing stage rather than a global
// barrier. Extraction likewise streams: documents are fed to the
// map-reduce job through a channel as they are rendered, never
// materialized as one boxed input slice, and the sentence-level temporal
// scope candidates are carried out of the extract stage so temporal
// scoping does not re-run extraction.
//
// Cancelling the context makes Run return promptly with a context error:
// the map-reduce workers, the ingest queue, and the stage loop all check
// it.
package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"kbharvest/internal/core"
	"kbharvest/internal/extract"
	"kbharvest/internal/extract/patterns"
	"kbharvest/internal/ingest"
	"kbharvest/internal/mapreduce"
	"kbharvest/internal/ned"
	"kbharvest/internal/rdf"
	"kbharvest/internal/reason"
	"kbharvest/internal/synth"
	"kbharvest/internal/taxonomy"
	"kbharvest/internal/temporal"
)

// Options configure a pipeline run.
type Options struct {
	// World sizes the synthetic world; zero value means DefaultConfig.
	World synth.Config
	// Seed drives world, corpus, and every randomized stage.
	Seed int64
	// Corpus tunes the article renderer; zero value means defaults.
	Corpus synth.CorpusOptions
	// Workers is the extraction parallelism (map-reduce). Values <= 0
	// default to runtime.GOMAXPROCS(0), matching mapreduce.Config.
	Workers int
	// Reason toggles the consistency-reasoning stage.
	Reason bool
	// Infoboxes toggles infobox harvesting.
	Infoboxes bool
	// Temporal toggles fact time-scoping.
	Temporal bool
	// Ingest tunes the write-behind ingestion layer (per-producer batch
	// size, queue depth, drainer count). Zero value means defaults.
	Ingest ingest.Options
}

// DefaultOptions enables every stage at default scale. Workers defaults to
// runtime.GOMAXPROCS(0) — the full machine — like the map-reduce engine;
// set it explicitly to throttle extraction parallelism.
func DefaultOptions() Options {
	return Options{
		World:     synth.DefaultConfig(),
		Seed:      42,
		Corpus:    synth.DefaultCorpusOptions(),
		Workers:   runtime.GOMAXPROCS(0),
		Reason:    true,
		Infoboxes: true,
		Temporal:  true,
	}
}

// StageTiming records one stage's wall-clock cost and output size.
type StageTiming struct {
	Stage    string
	Duration time.Duration
	// Items counts the stage's output units: articles generated, taxonomy
	// facts harvested, candidates extracted, candidates accepted, facts
	// asserted, label triples, NED-model documents.
	Items int
}

// Result is the pipeline output.
type Result struct {
	KB     *core.Store
	World  *synth.World
	Corpus *synth.Corpus

	// Candidates counts raw extractions before reasoning; Accepted after.
	Candidates int
	Accepted   int
	Timings    []StageTiming

	// NED models built from the corpus for §4-style analytics.
	Dictionary  *ned.Dictionary
	ContextMod  *ned.ContextModel
	Relatedness *ned.Relatedness
}

// runState carries the intermediate products between stages.
type runState struct {
	res *Result
	opt Options
	ing *ingest.Ingester

	cands    []extract.Candidate
	scopes   map[string][]core.Interval
	accepted []extract.Candidate
	reasoned bool
}

// stage is one named, timed, cancellable unit of the pipeline. run returns
// the number of items the stage produced.
type stage struct {
	name    string
	enabled bool
	run     func(ctx context.Context) (int, error)
}

// Run executes the pipeline under ctx. Cancelling ctx aborts the run
// promptly — between stages, between map-reduce records, and inside the
// ingest queue — returning the context error.
func Run(ctx context.Context, opt Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	if opt.World.People == 0 {
		opt.World = synth.DefaultConfig()
	}
	if opt.Workers < 1 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	res := &Result{KB: core.NewStore()}
	st := &runState{res: res, opt: opt, ing: ingest.New(ctx, res.KB, opt.Ingest)}
	defer st.ing.Close()

	stages := []stage{
		{"generate", true, st.generate},
		{"taxonomy", true, st.taxonomy},
		{"extract", true, st.extract},
		{"reason", opt.Reason, st.reason},
		{"assert", true, st.assert},
		{"labels", true, st.labels},
		{"nedmodels", true, st.nedModels},
	}
	for _, s := range stages {
		if !s.enabled {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("pipeline: %s: %w", s.name, err)
		}
		t0 := time.Now()
		n, err := s.run(ctx)
		if err != nil {
			return nil, fmt.Errorf("pipeline: %s: %w", s.name, err)
		}
		res.Timings = append(res.Timings, StageTiming{Stage: s.name, Duration: time.Since(t0), Items: n})
	}
	if err := st.ing.Close(); err != nil {
		return nil, fmt.Errorf("pipeline: ingest: %w", err)
	}
	return res, nil
}

// generate builds the synthetic world and renders its corpus.
func (st *runState) generate(context.Context) (int, error) {
	st.res.World = synth.Generate(st.opt.World, st.opt.Seed)
	st.res.Corpus = synth.BuildCorpus(st.res.World, st.opt.Corpus)
	return len(st.res.Corpus.Articles), nil
}

// taxonomy runs category analysis over the corpus and streams types and
// subclass edges into the KB. It flushes the ingester before returning:
// the reasoner's type checks read the harvested taxonomy.
func (st *runState) taxonomy(context.Context) (int, error) {
	res := st.res
	pages := make([]taxonomy.Page, 0, len(res.Corpus.Articles))
	for _, a := range res.Corpus.Articles {
		pages = append(pages, taxonomy.Page{Subject: a.Subject, Categories: a.Categories})
	}
	typeFacts := taxonomy.HarvestTypes(pages)
	// Same (entity, class) pair can arrive from several categories; keep
	// the last, mirroring AddBatchMeta's last-wins metadata semantics
	// deterministically even though batches drain concurrently.
	last := make(map[string]int, len(typeFacts))
	for i, tf := range typeFacts {
		last[tf.Entity+"\x00"+tf.ClassNoun] = i
	}
	p := st.ing.Producer()
	for i, tf := range typeFacts {
		if last[tf.Entity+"\x00"+tf.ClassNoun] != i {
			continue
		}
		err := p.Emit(rdf.T(tf.Entity, rdf.RDFType, classIRI(tf.ClassNoun)),
			core.FactInfo{Confidence: 0.95, Source: "category:" + tf.Category, Time: core.Always})
		if err != nil {
			return 0, err
		}
	}
	edges := taxonomy.InduceSubclasses(res.Corpus.CategoryParents)
	ts := make([]rdf.Triple, 0, len(edges))
	for _, e := range edges {
		ts = append(ts, rdf.T(classIRI(e.Sub), rdf.RDFSSubClassOf, classIRI(e.Super)))
	}
	res.KB.AddBatch(ts)
	if err := st.ing.Flush(); err != nil {
		return 0, err
	}
	return len(typeFacts) + len(edges), nil
}

// extract applies infobox and pattern extraction. Documents stream into
// the map-reduce job through a channel as they are adapted from corpus
// articles, and — when temporal scoping is on — each sentence's time
// scope is carried along with the candidates it yields, so the assert
// stage never re-extracts.
func (st *runState) extract(ctx context.Context) (int, error) {
	res := st.res
	var cands []extract.Candidate
	if st.opt.Infoboxes {
		var boxes []patterns.Infobox
		for _, a := range res.Corpus.Articles {
			if len(a.Infobox) > 0 {
				boxes = append(boxes, patterns.Infobox{Subject: a.Subject, Fields: a.Infobox})
			}
		}
		resolve := func(name string) (string, bool) {
			if e := res.World.EntityByName(name); e != nil {
				return e.ID, true
			}
			return "", false
		}
		cands = append(cands, patterns.HarvestInfoboxes(boxes, synth.InfoboxRelation, resolve)...)
	}
	records := make(chan interface{}, st.opt.Workers)
	go func() {
		defer close(records)
		for _, a := range res.Corpus.Articles {
			select {
			case records <- docOfArticle(a):
			case <-ctx.Done():
				return
			}
		}
	}()
	textCands, scopes, err := extractStream(ctx, records, patterns.DefaultPatterns(), st.opt.Workers, st.opt.Temporal)
	if err != nil {
		return 0, err
	}
	st.cands = append(cands, textCands...)
	st.scopes = scopes
	res.Candidates = len(st.cands)
	return len(st.cands), nil
}

// reason builds the consistency problem from the schema rules and the
// harvested taxonomy, then solves it.
func (st *runState) reason(context.Context) (int, error) {
	st.accepted = runReasoning(st.res, st.cands)
	st.reasoned = true
	return len(st.accepted), nil
}

// assert streams accepted candidates into the KB with provenance and
// (optionally) the temporal scope aggregated from the sentence-level
// scopes collected during extraction, then flushes for visibility.
func (st *runState) assert(context.Context) (int, error) {
	if !st.reasoned {
		st.accepted = st.cands // reasoning disabled: accept everything
	}
	st.res.Accepted = len(st.accepted)
	// The same fact key can be accepted twice (infobox + pattern). Keep
	// the last occurrence's metadata — what one big AddBatchMeta would
	// have done — so the final provenance does not depend on which
	// drainer writes which batch first.
	last := make(map[string]int, len(st.accepted))
	for i, c := range st.accepted {
		last[c.Key()] = i
	}
	p := st.ing.Producer()
	for i, c := range st.accepted {
		if last[c.Key()] != i {
			continue
		}
		info := core.FactInfo{Confidence: c.Confidence, Source: c.Source, Time: core.Always}
		if ivs := st.scopes[c.Key()]; len(ivs) > 0 {
			if iv, ok := temporal.AggregateScopes(ivs); ok {
				info.Time = iv
			}
		}
		if err := p.Emit(c.Triple(), info); err != nil {
			return 0, err
		}
	}
	if err := st.ing.Flush(); err != nil {
		return 0, err
	}
	return len(st.accepted), nil
}

// labels copies the multilingual labels and aliases from the world
// metadata (standing in for interwiki harvesting).
func (st *runState) labels(context.Context) (int, error) {
	res := st.res
	var ts []rdf.Triple
	for _, e := range res.World.Entities {
		for lang, name := range e.Labels {
			ts = append(ts, rdf.Triple{
				S: rdf.NewIRI(e.ID), P: rdf.NewIRI(rdf.RDFSLabel),
				O: rdf.NewLangLiteral(name, lang),
			})
		}
		for _, a := range e.Aliases {
			ts = append(ts, rdf.Triple{
				S: rdf.NewIRI(e.ID), P: rdf.NewIRI(rdf.SKOSAltLabel),
				O: rdf.NewLangLiteral(a, "en"),
			})
		}
	}
	res.KB.AddBatch(ts)
	return len(ts), nil
}

// nedModels wires dictionary, context, and relatedness models from the
// corpus — the §4 deliverable.
func (st *runState) nedModels(context.Context) (int, error) {
	res := st.res
	b := ned.NewBuilder()
	for _, e := range res.World.Entities {
		b.Observe(e.Name, e.ID, 4)
		for _, a := range e.Aliases {
			b.Observe(a, e.ID, 1)
		}
	}
	for _, a := range res.Corpus.Articles {
		for _, m := range a.Mentions {
			if m.Linked {
				b.Observe(m.Surface, m.Entity, 2)
			}
		}
	}
	res.Dictionary = b.Build()
	ctx := ned.NewContextModel()
	rel := ned.NewRelatedness()
	for _, a := range res.Corpus.Articles {
		ctx.AddDocument(a.Subject, a.Text)
		rel.AddLinks(a.ID, a.Links)
	}
	ctx.Finalize()
	res.ContextMod = ctx
	res.Relatedness = rel
	return len(res.Corpus.Articles), nil
}

func classIRI(noun string) string { return "kb:" + noun }

// docOfArticle adapts one corpus article to an extraction document with
// gold mention annotations.
func docOfArticle(a *synth.Article) extract.Doc {
	d := extract.Doc{Text: a.Text, Source: a.ID}
	for _, m := range a.Mentions {
		d.Mentions = append(d.Mentions, extract.Span{Start: m.Start, End: m.End, Entity: m.Entity})
	}
	return d
}

// Docs converts corpus articles into extraction documents with gold
// mention annotations.
func Docs(corpus *synth.Corpus) []extract.Doc {
	docs := make([]extract.Doc, 0, len(corpus.Articles))
	for _, a := range corpus.Articles {
		docs = append(docs, docOfArticle(a))
	}
	return docs
}

// scopedCandidate is the map-side extraction record: one candidate plus
// the temporal scope of the sentence it came from, if any.
type scopedCandidate struct {
	cand   extract.Candidate
	iv     core.Interval
	scoped bool
}

// extractOut is the reduce-side output: the best candidate per fact key
// and every sentence-level scope observed for it.
type extractOut struct {
	cand extract.Candidate
	ivs  []core.Interval
}

// ExtractMapReduce runs pattern extraction as a map-reduce job: map =
// per-sentence extraction, reduce = dedup by fact key keeping max
// confidence. This is the §3 "map-reduce computation" path, and the unit
// experiment E8 scales over `workers`. Documents are fed to the job
// through a channel; use extractStream via Run for scope collection.
func ExtractMapReduce(ctx context.Context, docs []extract.Doc, pats []patterns.SurfacePattern, workers int) ([]extract.Candidate, error) {
	records := make(chan interface{}, 1)
	go func() {
		defer close(records)
		for _, d := range docs {
			select {
			case records <- d:
			case <-ctx.Done():
				return
			}
		}
	}()
	cands, _, err := extractStream(ctx, records, pats, workers, false)
	return cands, err
}

// extractStream is the streaming extraction core: it consumes extract.Doc
// records from a channel, fans them over map-reduce workers, and returns
// the deduped candidates (sorted by fact key) plus, when collectScopes is
// set, the sentence-level temporal scopes per fact key.
func extractStream(ctx context.Context, records <-chan interface{}, pats []patterns.SurfacePattern, workers int, collectScopes bool) ([]extract.Candidate, map[string][]core.Interval, error) {
	mapper := func(record interface{}, emit func(string, interface{})) error {
		doc, ok := record.(extract.Doc)
		if !ok {
			return fmt.Errorf("bad record type %T", record)
		}
		for _, sent := range extract.SplitDoc(doc) {
			var iv core.Interval
			scoped := false
			if collectScopes {
				iv, scoped = temporal.ScopeSentence(sent.Text)
			}
			for _, c := range patterns.Apply([]extract.Sentence{sent}, pats) {
				emit(c.Key(), scopedCandidate{cand: c, iv: iv, scoped: scoped})
			}
		}
		return nil
	}
	reducer := func(key string, values []interface{}, emit func(interface{})) error {
		out := extractOut{cand: values[0].(scopedCandidate).cand}
		for _, v := range values {
			sc := v.(scopedCandidate)
			if better(sc.cand, out.cand) {
				out.cand = sc.cand
			}
			if sc.scoped {
				out.ivs = append(out.ivs, sc.iv)
			}
		}
		emit(out)
		return nil
	}
	kvs, err := mapreduce.RunStream(ctx, records, mapper, reducer, mapreduce.Config{Workers: workers})
	if err != nil {
		return nil, nil, err
	}
	cands := make([]extract.Candidate, 0, len(kvs))
	var scopes map[string][]core.Interval
	if collectScopes {
		scopes = make(map[string][]core.Interval, len(kvs))
	}
	for _, kv := range kvs {
		out := kv.Value.(extractOut)
		cands = append(cands, out.cand)
		if collectScopes && len(out.ivs) > 0 {
			scopes[kv.Key] = out.ivs
		}
	}
	return cands, scopes, nil
}

// better orders candidates of one fact key: higher confidence wins, ties
// break on (Source, Middle) so the winner is deterministic no matter how
// records were scheduled over workers.
func better(a, b extract.Candidate) bool {
	if a.Confidence != b.Confidence {
		return a.Confidence > b.Confidence
	}
	if a.Source != b.Source {
		return a.Source < b.Source
	}
	return a.Middle < b.Middle
}

// runReasoning builds the consistency problem from the schema rules and
// the harvested taxonomy, then solves it.
func runReasoning(res *Result, cands []extract.Candidate) []extract.Candidate {
	rules := reason.ConsistencyRules{
		Functional: map[string]bool{},
		TypeCheck: func(c extract.Candidate) bool {
			schema, ok := synth.SchemaOf(c.P)
			if !ok {
				return true
			}
			// Use the *harvested* taxonomy (not gold) for typing; missing
			// types pass (open-world).
			okS := len(res.KB.DirectTypes(c.S)) == 0 || res.KB.IsA(c.S, schema.Domain)
			okO := len(res.KB.DirectTypes(c.O)) == 0 || res.KB.IsA(c.O, schema.Range)
			return okS && okO
		},
	}
	for _, s := range synth.Schema {
		if s.Functional {
			rules.Functional[s.ID] = true
		}
	}
	cp := reason.BuildConsistency(cands, rules)
	sol := cp.SolveWalkSAT(4*len(cands)+1000, 0.2, 7)
	return cp.Accepted(sol)
}

// Linker returns a ready AIDA-style linker over the pipeline's models.
func (r *Result) Linker() *ned.Linker {
	return ned.NewLinker(r.Dictionary, r.ContextMod, r.Relatedness)
}

// EvaluateFacts scores the KB's relational facts against the generating
// world's ground truth (relation facts only; types and labels excluded).
func EvaluateFacts(res *Result) (tp, fp, fn int) {
	goldKeys := map[string]bool{}
	for _, f := range res.World.Facts {
		goldKeys[f.S+"\x00"+f.P+"\x00"+f.O] = true
	}
	predKeys := map[string]bool{}
	for _, rel := range relationIRIs() {
		res.KB.MatchFunc(rdf.Triple{P: rdf.NewIRI(rel)}, func(_ core.FactID, t rdf.Triple) bool {
			predKeys[t.S.Value+"\x00"+rel+"\x00"+t.O.Value] = true
			return true
		})
	}
	for k := range predKeys {
		if goldKeys[k] {
			tp++
		} else {
			fp++
		}
	}
	for k := range goldKeys {
		if !predKeys[k] {
			fn++
		}
	}
	return tp, fp, fn
}

func relationIRIs() []string {
	out := make([]string, 0, len(synth.Schema))
	for _, s := range synth.Schema {
		out = append(out, s.ID)
	}
	return out
}
