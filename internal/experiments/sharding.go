package experiments

// E10b: scatter/gather sharded serving. The tutorial's web-scale theme
// (§4) is that KBs behind online services outgrow one machine; the
// serving tier answer is subject-hash partitioning with a router that
// pins subject-constant lookups to one shard and scatters everything
// else. This experiment serves the same synthetic world from 1, 2, and
// 4 kbserve shards (real HTTP servers, in-process) and measures the two
// regimes the design separates: point lookups, whose cost must stay at
// exactly one RPC at any shard count, and full scatters, whose fan-out
// grows with the tier.

import (
	"context"
	"net/http/httptest"
	"time"

	"kbharvest/internal/core"
	"kbharvest/internal/eval"
	"kbharvest/internal/serve"
	"kbharvest/internal/shardkb"
	"kbharvest/internal/synth"
)

// e10bShardedServing partitions the serving world across n in-process
// kbserve instances for n in {1,2,4} and drives the shardkb scatter
// client at each width.
func e10bShardedServing() *eval.Table {
	merged, _ := ServingWorkload(119)
	all := merged.All()

	// Point lookups: one subject-constant pattern per distinct subject.
	seen := map[string]bool{}
	var points []core.Pattern
	for _, t := range all {
		if seen[t.S.Value] {
			continue
		}
		seen[t.S.Value] = true
		points = append(points, core.Pattern{S: core.PTerm(t.S), P: core.PVar("p"), O: core.PVar("o")})
		if len(points) == 400 {
			break
		}
	}
	// Full scatters: subject unbound, so every shard must answer.
	scatters := []core.Pattern{
		{S: core.PVar("p"), P: core.PIRI(synth.RelFounded), O: core.PVar("c")},
		{S: core.PVar("p"), P: core.PIRI(synth.RelMarriedTo), O: core.PVar("q")},
	}

	tab := eval.NewTable("E10b: sharded serving — point lookup vs full scatter",
		"shards", "mode", "queries", "q/s", "p50-us", "p99-us", "rpc/query")
	ctx := context.Background()
	for _, n := range []int{1, 2, 4} {
		stores := make([]*core.Store, n)
		for i := range stores {
			stores[i] = core.NewStore()
		}
		for _, t := range all {
			stores[shardkb.TripleShard(t, n)].Add(t)
		}
		servers := make([]*httptest.Server, n)
		urls := make([]string, n)
		for i := range stores {
			servers[i] = httptest.NewServer(serve.NewServer(stores[i], serve.Options{Timeout: 5 * time.Second}))
			urls[i] = servers[i].URL
		}
		client, err := shardkb.New(urls, shardkb.Options{Timeout: 5 * time.Second})
		if err != nil {
			panic("E10b: " + err.Error())
		}

		run := func(mode string, queries []core.Pattern, reps int) {
			before := client.Stats()
			var lat serve.LatencyHistogram
			t0 := time.Now()
			count := 0
			for r := 0; r < reps; r++ {
				for _, q := range queries {
					q0 := time.Now()
					if _, err := client.Pattern(ctx, q, 0); err != nil {
						panic("E10b: " + err.Error())
					}
					lat.Observe(time.Since(q0))
					count++
				}
			}
			wall := time.Since(t0)
			after := client.Stats()
			sum := lat.Summary()
			tab.AddRow(n, mode, count,
				float64(count)/wall.Seconds(), sum.P50US, sum.P99US,
				float64(after.RPCs-before.RPCs)/float64(count))
		}
		run("point lookup", points, 1)
		run("full scatter", scatters, 50)

		for _, s := range servers {
			s.Close()
		}
	}
	return tab
}
