package experiments

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"kbharvest/internal/commonsense"
	"kbharvest/internal/core"
	"kbharvest/internal/eval"
	"kbharvest/internal/extract"
	"kbharvest/internal/extract/openie"
	"kbharvest/internal/extract/patterns"
	"kbharvest/internal/ingest"
	"kbharvest/internal/mapreduce"
	"kbharvest/internal/mining"
	"kbharvest/internal/multilingual"
	"kbharvest/internal/rdf"
	"kbharvest/internal/synth"
	"kbharvest/internal/temporal"
)

// openIERelationMap folds normalized open-IE relation phrases onto the
// world's gold relations, with inversion flags, so precision can be
// measured against ground truth.
var openIERelationMap = map[string]struct {
	rel      string
	inverted bool
}{
	"found":          {synth.RelFounded, false},
	"found by":       {synth.RelFounded, true},
	"establish":      {synth.RelFounded, false},
	"start":          {synth.RelFounded, false},
	"bear in":        {synth.RelBornIn, false},
	"bear on":        {synth.RelBornIn, false}, // "born on DATE in CITY" (arg2 = city after date range)
	"marry":          {synth.RelMarriedTo, false},
	"marry to":       {synth.RelMarriedTo, false},
	"acquire":        {synth.RelAcquired, false},
	"acquire by":     {synth.RelAcquired, true},
	"buy":            {synth.RelAcquired, false},
	"work at":        {synth.RelWorksAt, false},
	"join":           {synth.RelWorksAt, false},
	"graduate from":  {synth.RelGraduatedFrom, false},
	"study at":       {synth.RelGraduatedFrom, false},
	"win":            {synth.RelWonPrize, false},
	"receive":        {synth.RelWonPrize, false},
	"lead":           {synth.RelCEOOf, false},
	"serve as":       {synth.RelCEOOf, false},
	"headquarter in": {synth.RelLocatedIn, false},
	"base in":        {synth.RelLocatedIn, false},
	"locate in":      {synth.RelLocatedIn, false},
	"release":        {synth.RelCreated, false},
	"release by":     {synth.RelCreated, true},
	"unveil":         {synth.RelCreated, false},
	"compete with":   {synth.RelRivalOf, false},
}

// E7OpenIE — §3: open IE yield/precision with and without the ReVerb
// syntactic + lexical constraints.
func E7OpenIE() []*eval.Table {
	w, corpus := standardWorld(108)
	var docs []openie.Doc
	for _, a := range corpus.Articles {
		docs = append(docs, openie.Doc{Text: a.Text, Source: a.ID})
	}
	resolve := func(name string) (string, bool) {
		if e := w.EntityByName(strings.TrimSpace(name)); e != nil {
			return e.ID, true
		}
		return "", false
	}
	// overall-precision counts an extraction correct only when both args
	// resolve to entities AND the normalized relation maps onto a gold
	// relation that actually holds, over ALL extractions — so incoherent
	// extractions (common-noun arguments, junk relation phrases) count
	// as errors. args-resolve isolates the argument-coherence component.
	evalExs := func(exs []openie.Extraction) (yield int, argRes, overall float64) {
		resolved, matched := 0, 0
		for _, ex := range exs {
			a1, ok1 := resolve(ex.Arg1)
			a2, ok2 := resolve(ex.Arg2)
			if ok1 && ok2 {
				resolved++
				if m, ok := openIERelationMap[ex.Normalized]; ok {
					s, o := a1, a2
					if m.inverted {
						s, o = o, s
					}
					if w.HasFact(s, m.rel, o) {
						matched++
					}
				}
			}
		}
		argRes = eval.Accuracy(resolved, len(exs))
		overall = eval.Accuracy(matched, len(exs))
		return len(exs), argRes, overall
	}
	tab := eval.NewTable("E7: open IE — effect of ReVerb constraints",
		"config", "extractions", "args-resolve", "overall-precision")
	for _, cfg := range []struct {
		name string
		opt  openie.Options
	}{
		{"no constraints", openie.Options{Syntactic: false, Lexical: false}},
		{"syntactic only", openie.Options{Syntactic: true, Lexical: false}},
		{"syntactic + lexical", openie.Options{Syntactic: true, Lexical: true, MinRelPairs: 3}},
	} {
		yield, argRes, prec := evalExs(openie.Extract(docs, cfg.opt))
		tab.AddRow(cfg.name, yield, argRes, prec)
	}
	// Relation inventory discovered under full constraints.
	inv := eval.NewTable("E7b: top discovered relation phrases", "phrase", "count")
	exs := openie.Extract(docs, openie.DefaultOptions())
	for i, rc := range openie.RelationCounts(exs) {
		if i >= 10 {
			break
		}
		inv.AddRow(rc.Rel, rc.Count)
	}
	return []*eval.Table{tab, inv}
}

// E8MapReduce — §3: extraction throughput scales with map-reduce workers.
// The map task is the full NLP extraction stack per document (sentence
// splitting, tagging, chunking, open IE, plus surface patterns) — the
// CPU-bound workload the tutorial's map-reduce computations distribute.
func E8MapReduce() []*eval.Table {
	cfg := synth.Config{
		People: 400, Companies: 100, Cities: 40, Countries: 8,
		Universities: 25, Products: 80, Prizes: 15,
	}
	w := synth.Generate(cfg, 109)
	corpus := synth.BuildCorpus(w, synth.DefaultCorpusOptions())
	docs := corpusDocs(corpus)
	inputs := make([]interface{}, len(docs))
	for i := range docs {
		inputs[i] = docs[i]
	}
	mapper := func(record interface{}, emit func(string, interface{})) error {
		doc := record.(extract.Doc)
		for _, c := range patterns.Apply(extract.SplitDoc(doc), patterns.DefaultPatterns()) {
			emit(c.Key(), 1)
		}
		for _, ex := range openie.Extract([]openie.Doc{{Text: doc.Text, Source: doc.Source}},
			openie.Options{Syntactic: true}) {
			emit("oie:"+ex.Normalized, 1)
		}
		return nil
	}
	tab := eval.NewTable("E8: map-reduce extraction scaling (patterns + open IE per doc)",
		"workers", "docs", "ms", "docs/s", "speedup")
	// The NLP map task is allocation-heavy; at the default GC target the
	// collector runs continuously on this transient garbage and serializes
	// the workers. Raise the target for the measurement window (restored
	// after) so the experiment measures the programming model, not GOGC.
	old := debug.SetGCPercent(400)
	defer debug.SetGCPercent(old)
	var base float64
	for _, workers := range []int{1, 2, 4, 8} {
		// Best of 3 runs to damp scheduler noise.
		best := time.Duration(1 << 62)
		for r := 0; r < 3; r++ {
			t0 := time.Now()
			if _, err := mapreduce.Run(context.Background(), inputs, mapper, mapreduce.CountReducer,
				mapreduce.Config{Workers: workers, Combiner: mapreduce.CountReducer}); err != nil {
				panic(err)
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		ms := float64(best.Microseconds()) / 1000
		if workers == 1 {
			base = ms
		}
		tab.AddRow(workers, len(docs), ms,
			float64(len(docs))/best.Seconds(), base/ms)
	}
	triples, infos := e8Workload(docs)
	return []*eval.Table{tab, e8Ingestion(triples, infos), e8cAsyncIngestion(triples, infos)}
}

// IngestQueueDepth tunes the write-behind queue bound (in batches) used by
// the E8c async-ingestion experiment; 0 means the ingest package default.
// cmd/benchrunner exposes it as -ingest-queue.
var IngestQueueDepth = 0

// e8Workload replicates the extraction output of the E8 corpus with
// distinct subjects (so dedup does not collapse the workload) into the
// parallel triple/metadata slices the ingestion experiments consume.
func e8Workload(docs []extract.Doc) ([]rdf.Triple, []core.FactInfo) {
	cands := patterns.Apply(extract.SplitDocs(docs), patterns.DefaultPatterns())
	reps := 1
	if len(cands) > 0 {
		reps = 1 + 40000/len(cands)
	}
	var triples []rdf.Triple
	var infos []core.FactInfo
	for rep := 0; rep < reps; rep++ {
		for _, c := range cands {
			triples = append(triples, rdf.T(fmt.Sprintf("%s-%d", c.S, rep), c.P, c.O))
			infos = append(infos, core.FactInfo{Confidence: c.Confidence, Source: c.Source, Time: core.Always})
		}
	}
	return triples, infos
}

// e8Ingestion is the E8b half of the experiment: the extraction output is
// funneled into the KB by concurrent workers, once through per-triple Add
// + SetInfo and once through the batch write path (TripleBatcher ->
// AddBatchMeta), across worker counts. This exercises the store's sharded
// dictionary, striped indexes, and single-lock-per-batch fact log under
// write contention.
func e8Ingestion(triples []rdf.Triple, infos []core.FactInfo) *eval.Table {
	run := func(workers int, ingest func(st *core.Store, lo, hi int)) (time.Duration, *core.Store) {
		// Best of 2 fresh-store runs to damp scheduler and GC noise.
		best := time.Duration(1 << 62)
		var bestSt *core.Store
		for r := 0; r < 2; r++ {
			st := core.NewStore()
			chunk := (len(triples) + workers - 1) / workers
			t0 := time.Now()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				lo := w * chunk
				hi := lo + chunk
				if hi > len(triples) {
					hi = len(triples)
				}
				if lo >= hi {
					continue
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					ingest(st, lo, hi)
				}(lo, hi)
			}
			wg.Wait()
			if d := time.Since(t0); d < best {
				best, bestSt = d, st
			}
		}
		return best, bestSt
	}
	tab := eval.NewTable("E8b: concurrent KB ingestion — per-triple Add vs batch write path",
		"workers", "triples", "add ms", "add t/s", "batch ms", "batch t/s", "batch/add")
	for _, workers := range []int{1, 2, 4} {
		addD, addSt := run(workers, func(st *core.Store, lo, hi int) {
			for i := lo; i < hi; i++ {
				st.SetInfo(st.Add(triples[i]), infos[i])
			}
		})
		batchD, batchSt := run(workers, func(st *core.Store, lo, hi int) {
			b := mapreduce.NewTripleBatcher(st, 1024)
			for i := lo; i < hi; i++ {
				b.Emit(triples[i], infos[i])
			}
			b.Flush()
		})
		if addSt.Len() != batchSt.Len() {
			panic(fmt.Sprintf("E8b: ingestion paths disagree: %d vs %d facts", addSt.Len(), batchSt.Len()))
		}
		tab.AddRow(workers, len(triples),
			float64(addD.Microseconds())/1000, float64(len(triples))/addD.Seconds(),
			float64(batchD.Microseconds())/1000, float64(len(triples))/batchD.Seconds(),
			addD.Seconds()/batchD.Seconds())
	}
	return tab
}

// producerWork simulates the per-fact extraction cost a real producer pays
// before it can emit (tokenizing, matching, resolving): a few rounds of
// hashing over the subject bytes. Both E8c paths pay it identically; it is
// what the write-behind queue overlaps with store writes.
func producerWork(t rdf.Triple) uint32 {
	h := fnv.New32a()
	for r := 0; r < 24; r++ {
		h.Write([]byte(t.S.Value))
		h.Write([]byte(t.O.Value))
	}
	return h.Sum32()
}

// e8cAsyncIngestion is the E8c third of the experiment: extraction workers
// produce facts (paying a per-fact extraction cost) and ingest them either
// synchronously — each worker flushes its own TripleBatcher into
// AddBatchMeta inline, blocking on the store — or write-behind, emitting
// into an ingest.Ingester whose dedicated drainers overlap store writes
// with production. The async column should meet or beat the synchronous
// baseline: producers never stall on store lock acquisition.
func e8cAsyncIngestion(triples []rdf.Triple, infos []core.FactInfo) *eval.Table {
	var sink uint32 // defeat dead-code elimination of producerWork
	run := func(workers int, mk func(st *core.Store) (emit func(w, i int) error, finish func() error)) (time.Duration, *core.Store) {
		// Best of 3 to damp scheduler noise — under a loaded machine a
		// single rep can starve the ingester goroutine and report a
		// catastrophic-looking async slowdown that is pure measurement.
		best := time.Duration(1 << 62)
		var bestSt *core.Store
		for r := 0; r < 3; r++ {
			st := core.NewStore()
			chunk := (len(triples) + workers - 1) / workers
			t0 := time.Now()
			emit, finish := mk(st)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				lo, hi := w*chunk, (w+1)*chunk
				if hi > len(triples) {
					hi = len(triples)
				}
				if lo >= hi {
					continue
				}
				wg.Add(1)
				go func(w, lo, hi int) {
					defer wg.Done()
					for i := lo; i < hi; i++ {
						if err := emit(w, i); err != nil {
							panic(err)
						}
					}
				}(w, lo, hi)
			}
			wg.Wait()
			if err := finish(); err != nil {
				panic(err)
			}
			if d := time.Since(t0); d < best {
				best, bestSt = d, st
			}
		}
		return best, bestSt
	}
	tab := eval.NewTable("E8c: write-behind (async) vs synchronous batch ingestion",
		"producers", "triples", "sync ms", "sync t/s", "async ms", "async t/s", "async/sync")
	for _, workers := range []int{1, 2, 4} {
		syncD, syncSt := run(workers, func(st *core.Store) (func(w, i int) error, func() error) {
			batchers := make([]*mapreduce.TripleBatcher, workers)
			for w := range batchers {
				batchers[w] = mapreduce.NewTripleBatcher(st, 1024)
			}
			emit := func(w, i int) error {
				sink += producerWork(triples[i])
				batchers[w].Emit(triples[i], infos[i])
				return nil
			}
			finish := func() error {
				for _, b := range batchers {
					b.Flush()
				}
				return nil
			}
			return emit, finish
		})
		asyncD, asyncSt := run(workers, func(st *core.Store) (func(w, i int) error, func() error) {
			ing := ingest.New(context.Background(), st, ingest.Options{
				BatchSize: 1024, QueueDepth: IngestQueueDepth,
			})
			producers := make([]*ingest.Producer, workers)
			for w := range producers {
				producers[w] = ing.Producer()
			}
			emit := func(w, i int) error {
				sink += producerWork(triples[i])
				return producers[w].Emit(triples[i], infos[i])
			}
			return emit, ing.Close
		})
		if syncSt.Len() != asyncSt.Len() {
			panic(fmt.Sprintf("E8c: ingestion paths disagree: %d vs %d facts", syncSt.Len(), asyncSt.Len()))
		}
		tab.AddRow(workers, len(triples),
			float64(syncD.Microseconds())/1000, float64(len(triples))/syncD.Seconds(),
			float64(asyncD.Microseconds())/1000, float64(len(triples))/asyncD.Seconds(),
			syncD.Seconds()/asyncD.Seconds())
	}
	_ = sink
	return tab
}

// E9SequenceMining — §3: frequent sequence mining over entity-pair
// contexts surfaces relation phrases.
func E9SequenceMining() []*eval.Table {
	_, corpus := standardWorld(110)
	sents := extract.SplitDocs(corpusDocs(corpus))
	// Sequence DB: the word sequences between entity-pair mentions.
	var db []mining.Sequence
	for _, sent := range sents {
		for i := 0; i < len(sent.Spans); i++ {
			for j := i + 1; j < len(sent.Spans); j++ {
				lo, hi := sent.Spans[i].End, sent.Spans[j].Start
				if hi <= lo || hi-lo > 60 {
					continue
				}
				words := strings.Fields(strings.ToLower(sent.Text[lo:hi]))
				if len(words) > 0 {
					db = append(db, mining.Sequence(words))
				}
			}
		}
	}
	tab := eval.NewTable("E9: frequent sequences between entity pairs (min-support sweep)",
		"min-support", "sequences-db", "patterns", "ms")
	for _, sup := range []int{50, 20, 10, 5} {
		t0 := time.Now()
		pats := mining.ContiguousPatterns(db, sup, 1, 4)
		tab.AddRow(sup, len(db), len(pats), float64(time.Since(t0).Microseconds())/1000)
	}
	top := eval.NewTable("E9b: top mined phrases (min-support 10, len>=2)", "phrase", "support")
	n := 0
	for _, p := range mining.ContiguousPatterns(db, 10, 2, 4) {
		if n >= 10 {
			break
		}
		top.AddRow(p.String(), p.Support)
		n++
	}
	return []*eval.Table{tab, top, e9cQueryServing()}
}

// E10Temporal — §3: inferring timespans during which facts hold.
func E10Temporal() []*eval.Table {
	w, corpus := standardWorld(111)
	sents := extract.SplitDocs(corpusDocs(corpus))
	// Collect scopes per extracted fact.
	scopes := map[string][]core.Interval{}
	for _, sent := range sents {
		iv, ok := temporal.ScopeSentence(sent.Text)
		if !ok {
			continue
		}
		for _, c := range patterns.Apply([]extract.Sentence{sent}, patterns.DefaultPatterns()) {
			scopes[c.Key()] = append(scopes[c.Key()], iv)
		}
	}
	goldTime := map[string]core.Interval{}
	for _, f := range w.Facts {
		goldTime[f.S+"\x00"+f.P+"\x00"+f.O] = f.Time
	}
	tab := eval.NewTable("E10: temporal scoping accuracy (year-level)",
		"relation", "scoped", "begin-acc", "end-acc")
	for _, rel := range []string{synth.RelWorksAt, synth.RelCEOOf, synth.RelFounded, synth.RelBornIn} {
		total, beginOK, endOK := 0, 0, 0
		for key, ivs := range scopes {
			parts := strings.SplitN(key, "\x00", 3)
			if len(parts) != 3 || parts[1] != rel {
				continue
			}
			gt, ok := goldTime[key]
			if !ok {
				continue
			}
			got, _ := temporal.AggregateScopes(ivs)
			total++
			if yearOf(got.Begin) == yearOf(gt.Begin) {
				beginOK++
			}
			if yearOf(got.End) == yearOf(gt.End) || (gt.End == core.MaxDay && got.End >= gt.Begin) {
				endOK++
			}
		}
		if total == 0 {
			continue
		}
		tab.AddRow(rel, total, eval.Accuracy(beginOK, total), eval.Accuracy(endOK, total))
	}
	return []*eval.Table{tab, e10bShardedServing()}
}

func yearOf(day int) int {
	if day == core.MinDay || day == core.MaxDay {
		return day
	}
	return temporal.FromDay(day).Year
}

// E11Multilingual — §3: cross-lingual name alignment.
func E11Multilingual() []*eval.Table {
	w, _ := standardWorld(112)
	tab := eval.NewTable("E11: cross-lingual entity alignment by name", "languages", "aligned", "P", "R")
	for _, lang := range []string{"de", "fr", "es"} {
		var src, dst []multilingual.Named
		for _, e := range w.People {
			src = append(src, multilingual.Named{ID: e.ID, Name: e.Labels["en"]})
			dst = append(dst, multilingual.Named{ID: e.ID, Name: e.Labels[lang]})
		}
		aligns := multilingual.Align(src, dst, 0.75)
		correct := 0
		for _, a := range aligns {
			if a.Src == a.Dst {
				correct++
			}
		}
		tab.AddRow("en-"+lang, len(aligns),
			eval.Accuracy(correct, len(aligns)),
			eval.Accuracy(correct, len(src)))
	}
	return []*eval.Table{tab, e11bFaultTolerance()}
}

// E12RuleMining — §3: commonsense rule mining (AMIE-style) over the KB.
func E12RuleMining() []*eval.Table {
	tab := eval.NewTable("E12: AMIE-style rule mining (scale sweep)",
		"facts", "rules", "ms")
	var lastRules []commonsense.Rule
	for _, scale := range []float64{0.5, 1.0, 2.0} {
		cfg := synth.Config{
			People: 200, Companies: 50, Cities: 25, Countries: 6,
			Universities: 15, Products: 40, Prizes: 10,
		}.Scaled(scale)
		w := synth.Generate(cfg, 113)
		t0 := time.Now()
		rules := commonsense.MineRules(w.Truth, commonsense.MineConfig{
			MinSupport: 5, MinHeadCoverage: 0.05, MinPCAConfidence: 0.5,
		})
		tab.AddRow(w.Truth.Len(), len(rules), float64(time.Since(t0).Milliseconds()))
		lastRules = rules
	}
	top := eval.NewTable("E12b: top mined rules (largest KB)", "rule")
	for i, r := range lastRules {
		if i >= 8 {
			break
		}
		top.AddRow(r.String())
	}

	// E12c: concept-property and part-whole extraction from prose — the
	// other half of §3's commonsense section.
	pages, gold := synth.BuildCommonsensePages(901)
	var propFacts []commonsense.PropertyFact
	var partFacts []commonsense.PartFact
	for _, p := range pages {
		propFacts = append(propFacts, commonsense.ExtractProperties(p.Text)...)
		partFacts = append(partFacts, commonsense.ExtractParts(p.Text)...)
	}
	pred := map[string]bool{}
	for _, f := range propFacts {
		pred[f.Concept+"|"+f.Property] = true
	}
	goldSet := map[string]bool{}
	for c, props := range gold.Properties {
		for p := range props {
			goldSet[c+"|"+p] = true
		}
	}
	propScore := eval.SetPRF(pred, goldSet)
	partPred := map[string]bool{}
	for _, f := range partFacts {
		partPred[f.Part+"|"+f.Whole] = true
	}
	partGold := map[string]bool{}
	for pw := range gold.Parts {
		partGold[pw[0]+"|"+pw[1]] = true
	}
	partScore := eval.SetPRF(partPred, partGold)
	props := eval.NewTable("E12c: commonsense property / part-whole extraction",
		"kind", "extracted", "P", "R", "F1")
	props.AddRow("concept properties", len(pred), propScore.Precision, propScore.Recall, propScore.F1)
	props.AddRow("part-whole", len(partPred), partScore.Precision, partScore.Recall, partScore.F1)
	return []*eval.Table{tab, top, props}
}
