package experiments

import (
	"fmt"
	"time"

	"kbharvest/internal/eval"
	"kbharvest/internal/extract"
	"kbharvest/internal/extract/distant"
	"kbharvest/internal/extract/patterns"
	"kbharvest/internal/factorgraph"
	"kbharvest/internal/reason"
	"kbharvest/internal/synth"
	"kbharvest/internal/taxonomy"
)

// E1Taxonomy — §2: Wikipedia category analysis assigns classes with high
// accuracy, and it scales linearly with article count.
func E1Taxonomy() []*eval.Table {
	tab := eval.NewTable("E1: taxonomy induction from category systems (sweep world scale)",
		"articles", "type-P", "type-R", "subcls-P", "subcls-R", "ms")
	for _, scale := range []float64{0.25, 0.5, 1.0, 2.0} {
		cfg := synth.Config{
			People: 200, Companies: 50, Cities: 25, Countries: 6,
			Universities: 15, Products: 40, Prizes: 10,
		}.Scaled(scale)
		w := synth.Generate(cfg, 101)
		corpus := synth.BuildCorpus(w, synth.DefaultCorpusOptions())
		var pages []taxonomy.Page
		for _, a := range corpus.Articles {
			pages = append(pages, taxonomy.Page{Subject: a.Subject, Categories: a.Categories})
		}
		t0 := time.Now()
		typeFacts := taxonomy.HarvestTypes(pages)
		edges := taxonomy.InduceSubclasses(corpus.CategoryParents)
		dur := time.Since(t0)

		pred := map[string]bool{}
		for _, tf := range typeFacts {
			pred[tf.Entity+"|"+tf.ClassNoun] = true
		}
		gold := map[string]bool{}
		for _, e := range w.Entities {
			gold[e.ID+"|"+synth.ClassNoun(e.Class)] = true
			for _, super := range w.Truth.Superclasses(e.Class) {
				if n := synth.ClassNoun(super); n != "" {
					gold[e.ID+"|"+n] = true
				}
			}
		}
		// Recall against most-specific classes only.
		specific := map[string]bool{}
		for _, e := range w.Entities {
			specific[e.ID+"|"+synth.ClassNoun(e.Class)] = true
		}
		typeScore := eval.SetPRF(pred, gold)
		recallSpecific := eval.SetPRF(pred, specific)

		edgePred := map[string]bool{}
		for _, e := range edges {
			edgePred[e.Sub+"<"+e.Super] = true
		}
		edgeGold := map[string]bool{}
		for _, pair := range w.TaxonomyPairs() {
			sub, super := synth.ClassNoun(pair[0]), synth.ClassNoun(pair[1])
			if sub != "" && super != "" {
				if _, ok := corpus.CategoryParents[synth.CategoryForClass(pair[0])]; ok {
					edgeGold[sub+"<"+super] = true
				}
			}
		}
		edgeScore := eval.SetPRF(edgePred, edgeGold)
		tab.AddRow(len(corpus.Articles), typeScore.Precision, recallSpecific.Recall,
			edgeScore.Precision, edgeScore.Recall, float64(dur.Milliseconds()))
	}
	return []*eval.Table{tab}
}

// E2SetExpansion — §2: Web set expansion grows classes from 3 seeds.
func E2SetExpansion() []*eval.Table {
	w, _ := standardWorld(102)
	pages := synth.BuildWebPages(w, 12, 103)
	var lists []taxonomy.ItemList
	for _, p := range pages {
		if len(p.Items) > 0 {
			lists = append(lists, taxonomy.ItemList{Source: p.URL, Items: p.Items})
		}
	}
	tab := eval.NewTable("E2: set expansion precision@k from 3 seeds",
		"class", "candidates", "P@5", "P@10", "P@20")
	classes := []string{synth.ClassPhysicist, synth.ClassChemist, synth.ClassEntrepreneur, synth.ClassMusician, synth.ClassCompany}
	for _, class := range classes {
		var seeds []string
		gold := map[string]bool{}
		for _, e := range w.Entities {
			if e.Class != class {
				continue
			}
			if len(seeds) < 3 {
				seeds = append(seeds, e.Name)
			} else {
				gold[e.Name] = true
			}
		}
		if len(seeds) < 3 {
			continue
		}
		cands := taxonomy.Expand(seeds, lists, 1)
		ranked := make([]string, len(cands))
		for i, c := range cands {
			ranked[i] = c.Item
		}
		tab.AddRow(synth.ClassNoun(class), len(cands),
			eval.PrecisionAtK(ranked, gold, 5),
			eval.PrecisionAtK(ranked, gold, 10),
			eval.PrecisionAtK(ranked, gold, 20))
	}
	// Hearst-pattern harvesting on the prose pages, as the second method
	// family of §2.
	hearst := eval.NewTable("E2b: Hearst-pattern class harvesting", "facts", "accuracy")
	correct, total := 0, 0
	for _, p := range pages {
		if len(p.Items) > 0 {
			continue
		}
		for _, f := range taxonomy.ExtractHearst(p.Text) {
			total++
			e := w.EntityByName(f.Instance)
			if e == nil {
				continue
			}
			if synth.ClassNoun(e.Class) == f.ClassNoun {
				correct++
				continue
			}
			for _, super := range w.Truth.Superclasses(e.Class) {
				if synth.ClassNoun(super) == f.ClassNoun {
					correct++
					break
				}
			}
		}
	}
	hearst.AddRow(total, eval.Accuracy(correct, total))
	return []*eval.Table{tab, hearst}
}

// E3Bootstrap — §3: DIPRE-style bootstrapping; precision decays and
// recall grows per iteration.
func E3Bootstrap() []*eval.Table {
	w, corpus := standardWorld(104)
	sents := extract.SplitDocs(corpusDocs(corpus))
	gold := goldFactsOfRel(w, synth.RelFounded)
	var seeds []patterns.Pair
	for _, f := range w.FactsOf(synth.RelFounded) {
		seeds = append(seeds, patterns.Pair{S: f.S, O: f.O})
		if len(seeds) == 5 {
			break
		}
	}
	tab := eval.NewTable("E3: bootstrap harvesting of kb:founded from 5 seeds (per cumulative iteration)",
		"iterations", "patterns", "facts", "precision", "recall")
	for iters := 1; iters <= 4; iters++ {
		res := patterns.Bootstrap(sents, synth.RelFounded, seeds, patterns.BootstrapConfig{
			Iterations: iters, MinPatternSupport: 2, MinPatternConfidence: 0.02, MaxNewPatterns: 2,
		})
		score := scoreCandidates(res.Facts, gold)
		tab.AddRow(iters, len(res.Patterns), len(res.Facts), score.Precision, score.Recall)
	}
	return []*eval.Table{tab}
}

// basicPatterns is the hand-written rule set a first pass of pattern
// engineering would produce: the primary verb of each relation, none of
// the paraphrases ("established", "studied at", "is based in", ...). Real
// hand-pattern sets are always incomplete in exactly this way; distant
// supervision's advantage is learning the paraphrases from data.
func basicPatterns() []patterns.SurfacePattern {
	return []patterns.SurfacePattern{
		{Rel: synth.RelFounded, Middle: "founded"},
		{Rel: synth.RelFounded, Middle: "was founded by", Inverted: true},
		{Rel: synth.RelBornIn, Middle: "was born in"},
		{Rel: synth.RelAcquired, Middle: "acquired"},
		{Rel: synth.RelLocatedIn, Middle: "is located in"},
		{Rel: synth.RelMarriedTo, Middle: "married"},
		{Rel: synth.RelGraduatedFrom, Middle: "graduated from"},
		{Rel: synth.RelWorksAt, Middle: "worked at"},
		{Rel: synth.RelWonPrize, Middle: "won the"},
		{Rel: synth.RelCEOOf, Middle: "served as ceo of"},
		{Rel: synth.RelCreated, Middle: "released the"},
	}
}

// E4DistantSupervision — §3: statistical learning vs hand patterns.
func E4DistantSupervision() []*eval.Table {
	w, corpus := standardWorld(105)
	sents := extract.SplitDocs(corpusDocs(corpus))
	half := len(sents) / 2
	train, test := sents[:half], sents[half:]
	rels := []string{
		synth.RelFounded, synth.RelBornIn, synth.RelAcquired, synth.RelLocatedIn,
		synth.RelMarriedTo, synth.RelGraduatedFrom, synth.RelWorksAt,
		synth.RelWonPrize, synth.RelCEOOf, synth.RelCreated,
	}
	kbLabel := func(s, o string) (string, bool) {
		for _, rel := range rels {
			if w.HasFact(s, rel, o) {
				return rel, true
			}
		}
		return "", false
	}
	trainInsts := distant.BuildInstances(train, kbLabel, 2)
	testInsts := distant.BuildInstances(test, kbLabel, 1)
	gold := map[string]bool{}
	for _, in := range testInsts {
		if in.Label != distant.NoneLabel {
			gold[in.S+"\x00"+in.Label+"\x00"+in.O] = true
		}
	}
	perceptron := distant.TrainPerceptron(trainInsts, 5, 3)
	bayes := distant.TrainNaiveBayes(trainInsts)

	basicCands := patterns.Apply(test, basicPatterns())
	fullCands := patterns.Apply(test, patterns.DefaultPatterns())
	percCands := distant.ExtractWithModel(testInsts, perceptron)
	bayesCands := distant.ExtractWithModel(testInsts, bayes)

	tab := eval.NewTable("E4: extraction on held-out half (micro P/R/F1 over 10 relations)",
		"method", "predicted", "P", "R", "F1")
	for _, row := range []struct {
		name  string
		cands []extract.Candidate
	}{
		{"hand patterns (basic set)", basicCands},
		{"hand patterns (tuned set)", fullCands},
		{"perceptron (distant)", percCands},
		{"naive bayes (distant)", bayesCands},
	} {
		s := scoreCandidates(row.cands, gold)
		tab.AddRow(row.name, len(row.cands), s.Precision, s.Recall, s.F1)
	}
	return []*eval.Table{tab}
}

// E5FactorGraph — §3: DeepDive-style joint inference vs independent
// thresholding on correlated candidates. The candidate set is the pattern
// extractor's output plus simulated sloppy-extractor noise (see
// injectNoise); corroboration across source articles and functional-
// relation exclusion are the correlations the factor graph exploits.
func E5FactorGraph() []*eval.Table {
	w, corpus := standardWorld(106)
	sents := extract.SplitDocs(corpusDocs(corpus))
	raw := injectNoise(w, patterns.Apply(sents, patterns.DefaultPatterns()), 0.45, 601)
	gold := goldFactSet(w)

	// Dedupe by fact key, tracking distinct sources and max confidence.
	type agg struct {
		cand    extract.Candidate
		sources map[string]bool
	}
	byKey := map[string]*agg{}
	var order []string
	for _, c := range raw {
		a, ok := byKey[c.Key()]
		if !ok {
			a = &agg{cand: c, sources: map[string]bool{}}
			byKey[c.Key()] = a
			order = append(order, c.Key())
		}
		if c.Confidence > a.cand.Confidence {
			a.cand.Confidence = c.Confidence
		}
		a.sources[c.Source] = true
	}
	cands := make([]extract.Candidate, len(order))
	for i, k := range order {
		cands[i] = byKey[k].cand
	}

	wellTyped := func(c extract.Candidate) bool {
		schema, ok := synth.SchemaOf(c.P)
		if !ok {
			return true
		}
		return w.Truth.IsA(c.S, schema.Domain) && w.Truth.IsA(c.O, schema.Range)
	}
	g := factorgraph.NewGraph()
	vars := make([]int, len(cands))
	bySP := map[string][]int{}
	for i, c := range cands {
		vars[i] = g.AddVariable(c.Key())
		prior := 0.25 + 0.5*c.Confidence
		if err := g.AddPrior(vars[i], prior); err != nil {
			panic(err)
		}
		// Type-signature rule factor (soft): ill-typed candidates are
		// strongly disfavored.
		if !wellTyped(c) {
			if err := g.AddPrior(vars[i], 0.05); err != nil {
				panic(err)
			}
		}
		// Corroboration: each extra distinct source is independent
		// positive evidence.
		if n := len(byKey[c.Key()].sources); n > 1 {
			if err := g.AddPrior(vars[i], 0.5+0.15*float64(n)); err != nil {
				panic(err)
			}
		}
		bySP[c.S+"|"+c.P] = append(bySP[c.S+"|"+c.P], i)
	}
	functional := map[string]bool{}
	for _, s := range synth.Schema {
		if s.Functional {
			functional[s.ID] = true
		}
	}
	for _, idxs := range bySP {
		for i := 0; i < len(idxs); i++ {
			if !functional[cands[idxs[i]].P] {
				continue
			}
			for j := i + 1; j < len(idxs); j++ {
				if cands[idxs[i]].O != cands[idxs[j]].O {
					if err := g.AddMutex(vars[idxs[i]], vars[idxs[j]], 5); err != nil {
						panic(err)
					}
				}
			}
		}
	}
	marg := g.Gibbs(100, 800, 9)

	tab := eval.NewTable("E5: factor-graph marginals vs independent acceptance (noisy candidates)",
		"method", "accepted", "P", "R", "F1")
	var indep []extract.Candidate
	for _, c := range cands {
		if c.Confidence >= 0.5 {
			indep = append(indep, c)
		}
	}
	sIndep := scoreCandidates(indep, gold)
	tab.AddRow("independent (confidence >= 0.5)", len(indep), sIndep.Precision, sIndep.Recall, sIndep.F1)
	var joint []extract.Candidate
	for i, c := range cands {
		if marg[vars[i]] >= 0.5 {
			joint = append(joint, c)
		}
	}
	sJoint := scoreCandidates(joint, gold)
	tab.AddRow("factor graph (Gibbs marginals)", len(joint), sJoint.Precision, sJoint.Recall, sJoint.F1)
	return []*eval.Table{tab}
}

// E6Reasoning — §3: weighted MaxSat consistency reasoning; solver
// comparison.
func E6Reasoning() []*eval.Table {
	w, corpus := standardWorld(107)
	sents := extract.SplitDocs(corpusDocs(corpus))
	cands := injectNoise(w, patterns.Apply(sents, patterns.DefaultPatterns()), 0.45, 602)
	gold := goldFactSet(w)

	rules := reason.ConsistencyRules{
		Functional: map[string]bool{},
		TypeCheck: func(c extract.Candidate) bool {
			schema, ok := synth.SchemaOf(c.P)
			if !ok {
				return true
			}
			return w.Truth.IsA(c.S, schema.Domain) && w.Truth.IsA(c.O, schema.Range)
		},
	}
	for _, s := range synth.Schema {
		if s.Functional {
			rules.Functional[s.ID] = true
		}
	}
	tab := eval.NewTable("E6: consistency reasoning over noisy candidates",
		"method", "accepted", "P", "R", "F1", "ms")
	raw := scoreCandidates(cands, gold)
	tab.AddRow("no reasoning (raw)", len(cands), raw.Precision, raw.Recall, raw.F1, 0.0)

	cp := reason.BuildConsistency(cands, rules)
	t0 := time.Now()
	greedy := cp.SolveGreedy()
	greedyMS := float64(time.Since(t0).Microseconds()) / 1000
	accG := cp.Accepted(greedy)
	sG := scoreCandidates(accG, gold)
	tab.AddRow("greedy repair", len(accG), sG.Precision, sG.Recall, sG.F1, greedyMS)

	t0 = time.Now()
	walk := cp.SolveWalkSAT(4*len(cands)+1000, 0.2, 11)
	walkMS := float64(time.Since(t0).Microseconds()) / 1000
	accW := cp.Accepted(walk)
	sW := scoreCandidates(accW, gold)
	tab.AddRow("weighted WalkSAT", len(accW), sW.Precision, sW.Recall, sW.F1, walkMS)

	// Exhaustive on a small core validates the heuristics.
	small := cands
	if len(small) > 14 {
		small = small[:14]
	}
	cpS := reason.BuildConsistency(small, rules)
	t0 = time.Now()
	exact, err := cpS.SolveExhaustive()
	if err == nil {
		exactMS := float64(time.Since(t0).Microseconds()) / 1000
		accE := cpS.Accepted(exact)
		sE := scoreCandidates(accE, goldSubset(gold, small))
		tab.AddRow(fmt.Sprintf("exhaustive (first %d vars)", len(small)), len(accE), sE.Precision, sE.Recall, sE.F1, exactMS)
	}
	return []*eval.Table{tab}
}

func goldSubset(gold map[string]bool, cands []extract.Candidate) map[string]bool {
	out := map[string]bool{}
	for _, c := range cands {
		if gold[c.Key()] {
			out[c.Key()] = true
		}
	}
	return out
}
