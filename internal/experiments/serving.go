package experiments

// E9c: the query serving layer under repeat traffic. The tutorial's §1
// motivates KBs as the backbone of online services (search, QA) whose
// query mix is heavily skewed toward repeats; the serving recipe is a
// cost-ordered join engine behind a write-invalidated result cache. This
// experiment measures the three regimes that recipe distinguishes: cold
// (every query hits the engine), warm (steady-state cache hits), and
// concurrent warm (parallel readers sharing the cache).

import (
	"context"
	"sync"
	"time"

	"kbharvest/internal/core"
	"kbharvest/internal/eval"
	"kbharvest/internal/qcache"
	"kbharvest/internal/rdf"
	"kbharvest/internal/synth"
)

// ServingWorkload builds the serving store and a skewed query mix over
// it: two-pattern joins plus single-pattern lookups across the world's
// relations, the shapes a QA front-end issues. It backs E9c and E10b and
// is exported so the kbrouter tests can cross-check scatter/gather
// answers against the same suite on a single merged store.
func ServingWorkload(seed int64) (*core.Store, [][]core.Pattern) {
	w, _ := standardWorld(seed)
	st := core.NewStore()
	for _, f := range w.Facts {
		st.Add(rdf.T(f.S, f.P, f.O))
	}
	queries := [][]core.Pattern{
		{ // who founded a company, and where is it
			{S: core.PVar("p"), P: core.PIRI(synth.RelFounded), O: core.PVar("c")},
			{S: core.PVar("c"), P: core.PIRI(synth.RelLocatedIn), O: core.PVar("city")},
		},
		{ // employees of companies with a CEO
			{S: core.PVar("ceo"), P: core.PIRI(synth.RelCEOOf), O: core.PVar("c")},
			{S: core.PVar("p"), P: core.PIRI(synth.RelWorksAt), O: core.PVar("c")},
		},
		{ // birthplaces of prize winners
			{S: core.PVar("p"), P: core.PIRI(synth.RelWonPrize), O: core.PVar("prize")},
			{S: core.PVar("p"), P: core.PIRI(synth.RelBornIn), O: core.PVar("city")},
		},
		{ // single-pattern lookup
			{S: core.PVar("p"), P: core.PIRI(synth.RelMarriedTo), O: core.PVar("q")},
		},
	}
	return st, queries
}

// e9cQueryServing times the query mix in the three serving regimes and
// reports throughput plus speedup over cold for each.
func e9cQueryServing() *eval.Table {
	st, queries := ServingWorkload(119)
	const reps = 200
	ctx := context.Background()

	drain := func(run func(q []core.Pattern) ([]core.Binding, error)) (time.Duration, int) {
		t0 := time.Now()
		n := 0
		for r := 0; r < reps; r++ {
			for _, q := range queries {
				rows, err := run(q)
				if err != nil {
					panic("E9c: " + err.Error())
				}
				n += len(rows)
			}
		}
		return time.Since(t0), reps * len(queries)
	}

	// Cold: every query goes to the join engine.
	coldD, coldN := drain(func(q []core.Pattern) ([]core.Binding, error) {
		var rows []core.Binding
		err := st.QueryFunc(ctx, q, 0, func(b core.Binding) bool {
			rows = append(rows, b)
			return true
		})
		return rows, err
	})

	// Warm: steady-state hits against a pre-filled cache.
	cache := qcache.New(st, qcache.Options{})
	for _, q := range queries {
		if _, _, err := cache.Query(ctx, q, 0); err != nil {
			panic("E9c: " + err.Error())
		}
	}
	warmD, warmN := drain(func(q []core.Pattern) ([]core.Binding, error) {
		rows, _, err := cache.Query(ctx, q, 0)
		return rows, err
	})

	// Concurrent: parallel readers sharing the warm cache.
	const readers = 8
	t0 := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < reps; r++ {
				for _, q := range queries {
					if _, _, err := cache.Query(ctx, q, 0); err != nil {
						panic("E9c: " + err.Error())
					}
				}
			}
		}()
	}
	wg.Wait()
	concD := time.Since(t0)
	concN := readers * reps * len(queries)

	tab := eval.NewTable("E9c: query serving — cold vs warm cache vs concurrent",
		"mode", "queries", "ms", "q/s", "speedup")
	qps := func(n int, d time.Duration) float64 { return float64(n) / d.Seconds() }
	coldQPS := qps(coldN, coldD)
	tab.AddRow("cold (engine)", coldN, float64(coldD.Microseconds())/1000, coldQPS, 1.0)
	tab.AddRow("warm (cache)", warmN, float64(warmD.Microseconds())/1000, qps(warmN, warmD),
		qps(warmN, warmD)/coldQPS)
	tab.AddRow("warm x8 readers", concN, float64(concD.Microseconds())/1000, qps(concN, concD),
		qps(concN, concD)/coldQPS)
	return tab
}
