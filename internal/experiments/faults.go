package experiments

// E11b: serving availability under replica faults. The web-scale serving
// story (§4) only holds if the tier keeps answering while individual
// replicas misbehave, so this experiment drives point lookups through
// the shardkb client with a faultkb proxy in front of every replica and
// sweeps the injected fault rate (connection drops + 500s, split evenly)
// over the shard-count x replica-count grid. The availability column is
// the point: with one replica per shard, faults that survive the retry
// budget surface to clients; with two, retries fail over and
// availability returns to ~1 at the cost of extra RPCs.

import (
	"context"
	"net/http/httptest"
	"time"

	"kbharvest/internal/core"
	"kbharvest/internal/eval"
	"kbharvest/internal/faultkb"
	"kbharvest/internal/serve"
	"kbharvest/internal/shardkb"
)

// e11bFaultTolerance measures availability and tail latency of the
// replicated tier under injected fault rates.
func e11bFaultTolerance() *eval.Table {
	merged, _ := ServingWorkload(119)
	all := merged.All()

	seen := map[string]bool{}
	var points []core.Pattern
	for _, t := range all {
		if seen[t.S.Value] {
			continue
		}
		seen[t.S.Value] = true
		points = append(points, core.Pattern{S: core.PTerm(t.S), P: core.PVar("p"), O: core.PVar("o")})
		if len(points) == 200 {
			break
		}
	}

	tab := eval.NewTable("E11b: serving availability under injected replica faults",
		"shards", "replicas", "fault-rate", "queries", "availability", "p50-us", "p99-us", "retry/query")
	ctx := context.Background()
	for _, n := range []int{1, 4} {
		stores := make([]*core.Store, n)
		for i := range stores {
			stores[i] = core.NewStore()
		}
		for _, t := range all {
			stores[shardkb.TripleShard(t, n)].Add(t)
		}
		for _, r := range []int{1, 2} {
			groups := make([][]string, n)
			var injectors []*faultkb.Injector
			var servers []*httptest.Server
			for i := 0; i < n; i++ {
				for j := 0; j < r; j++ {
					backend := httptest.NewServer(serve.NewServer(stores[i], serve.Options{Timeout: 5 * time.Second}))
					in := faultkb.New(int64(1000 + 10*i + j))
					proxy := httptest.NewServer(faultkb.NewProxy(backend.URL, in, nil))
					servers = append(servers, backend, proxy)
					groups[i] = append(groups[i], proxy.URL)
					injectors = append(injectors, in)
				}
			}
			client, err := shardkb.New(nil, shardkb.Options{
				Shards:  groups,
				Timeout: 5 * time.Second,
				// Fast retries and no breakers keep the sweep about one
				// variable: how far the retry budget stretches redundancy.
				RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
				BreakerThreshold: -1,
			})
			if err != nil {
				panic("E11b: " + err.Error())
			}

			for _, rate := range []float64{0, 0.05, 0.20} {
				for _, in := range injectors {
					in.SetPlan(faultkb.Plan{DropRate: rate / 2, ErrorRate: rate / 2})
				}
				before := client.Stats()
				var lat serve.LatencyHistogram
				ok := 0
				for _, q := range points {
					q0 := time.Now()
					if _, err := client.Pattern(ctx, q, 0); err == nil {
						ok++
						lat.Observe(time.Since(q0))
					}
				}
				after := client.Stats()
				sum := lat.Summary()
				tab.AddRow(n, r, rate, len(points),
					eval.Accuracy(ok, len(points)), sum.P50US, sum.P99US,
					float64(after.Retries-before.Retries)/float64(len(points)))
			}
			for _, s := range servers {
				s.Close()
			}
		}
	}
	return tab
}
