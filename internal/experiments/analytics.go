package experiments

import (
	"fmt"
	"sort"
	"time"

	"kbharvest/internal/eval"
	"kbharvest/internal/linkage"
	"kbharvest/internal/ned"
	"kbharvest/internal/synth"
	"kbharvest/internal/temporal"
)

// buildNEDModels wires dictionary/context/relatedness from a corpus.
func buildNEDModels(w *synth.World, corpus *synth.Corpus) *ned.Linker {
	b := ned.NewBuilder()
	for _, e := range w.Entities {
		b.Observe(e.Name, e.ID, 4)
		for _, a := range e.Aliases {
			b.Observe(a, e.ID, 1)
		}
	}
	for _, a := range corpus.Articles {
		for _, m := range a.Mentions {
			if m.Linked {
				b.Observe(m.Surface, m.Entity, 2)
			}
		}
	}
	ctx := ned.NewContextModel()
	rel := ned.NewRelatedness()
	for _, a := range corpus.Articles {
		ctx.AddDocument(a.Subject, a.Text)
		rel.AddLinks(a.ID, a.Links)
	}
	ctx.Finalize()
	return ned.NewLinker(b.Build(), ctx, rel)
}

func contextWindow(text string, start, end, radius int) string {
	lo := start - radius
	if lo < 0 {
		lo = 0
	}
	hi := end + radius
	if hi > len(text) {
		hi = len(text)
	}
	return text[lo:hi]
}

// E13NED — §4: NED accuracy under the three objectives. The context
// window is kept small (60 bytes) to make the task hard enough that the
// signals separate.
func E13NED() []*eval.Table {
	w, corpus := standardWorld(114)
	linker := buildNEDModels(w, corpus)
	tab := eval.NewTable("E13: NED accuracy on ambiguous mentions (context window 60 bytes)",
		"method", "mentions", "accuracy")
	for _, mode := range []ned.Mode{ned.PriorOnly, ned.PriorContext, ned.Joint} {
		correct, total := 0, 0
		for _, a := range corpus.Articles {
			var mentions []ned.Mention
			var gold []string
			for _, m := range a.Mentions {
				if len(linker.Dict.Candidates(m.Surface)) < 2 {
					continue
				}
				mentions = append(mentions, ned.Mention{
					Surface: m.Surface,
					Context: contextWindow(a.Text, m.Start, m.End, 60),
				})
				gold = append(gold, m.Entity)
			}
			if len(mentions) == 0 {
				continue
			}
			for i, r := range linker.Disambiguate(mentions, mode) {
				total++
				if r.Entity == gold[i] {
					correct++
				}
			}
		}
		tab.AddRow(mode.String(), total, eval.Accuracy(correct, total))
	}
	return []*eval.Table{tab}
}

// linkageEditions derives two noisy editions from the world (same scheme
// as the linkage tests, at experiment scale).
func linkageEditions(seed int64) (a, b []linkage.Record, gold map[string]string) {
	w, _ := standardWorld(seed)
	gold = map[string]string{}
	rng := newDetRand(seed + 1)
	for i, p := range w.People {
		attrs := map[string]string{}
		for _, f := range w.FactsOf(synth.RelBornIn) {
			if f.S == p.ID {
				attrs["birthYear"] = fmt.Sprintf("%d", f.Date.Year)
				attrs["birthPlace"] = f.O
			}
		}
		aID := "a:" + p.ID
		a = append(a, linkage.Record{ID: aID, Name: p.Name, Aliases: p.Aliases, Attrs: attrs})
		if i%7 != 0 {
			bID := "b:" + p.ID
			battrs := map[string]string{}
			if rng.Float64() < 0.8 {
				for k, v := range attrs {
					battrs[k] = v
				}
			}
			b = append(b, linkage.Record{ID: bID, Name: perturbName(p.Name, rng), Aliases: p.Aliases, Attrs: battrs})
			gold[aID] = bID
		}
	}
	return a, b, gold
}

// E14Linkage — §4: entity linkage quality and the blocking speedup.
func E14Linkage() []*eval.Table {
	a, b, gold := linkageEditions(115)
	// Train the learned matcher on a disjoint world.
	ta, tb, tgold := linkageEditions(116)
	tbByID := map[string]linkage.Record{}
	for _, r := range tb {
		tbByID[r.ID] = r
	}
	var examples []linkage.LabeledPair
	rng := newDetRand(7)
	for _, r := range ta {
		if bid, ok := tgold[r.ID]; ok {
			examples = append(examples, linkage.LabeledPair{A: r, B: tbByID[bid], Match: true})
		}
		neg := tb[rng.Intn(len(tb))]
		if tgold[r.ID] != neg.ID {
			examples = append(examples, linkage.LabeledPair{A: r, B: neg, Match: false})
		}
	}
	learned := linkage.TrainLogistic(examples, 20, 0.5, 7)

	score := func(links []linkage.SameAsLink) eval.PRF {
		tp, fp := 0, 0
		for _, l := range links {
			if gold[l.A] == l.B {
				tp++
			} else {
				fp++
			}
		}
		return eval.Score(tp, fp, len(gold)-tp)
	}
	tab := eval.NewTable("E14: entity linkage on noisy editions",
		"matcher", "pairs", "links", "P", "R", "F1", "ms")
	for _, cfg := range []struct {
		name    string
		pairs   []linkage.CandidatePair
		matcher linkage.Matcher
	}{
		{"rule (JW>=0.93), full cross-product", linkage.AllPairs(a, b), linkage.RuleMatcher{Threshold: 0.93}},
		{"rule (JW>=0.93), token blocking", linkage.Blocking(a, b), linkage.RuleMatcher{Threshold: 0.93}},
		{"logistic regression, token blocking", linkage.Blocking(a, b), learned},
	} {
		t0 := time.Now()
		links := linkage.Link(a, b, cfg.pairs, cfg.matcher)
		ms := float64(time.Since(t0).Microseconds()) / 1000
		s := score(links)
		tab.AddRow(cfg.name, len(cfg.pairs), len(links), s.Precision, s.Recall, s.F1, ms)
	}
	return []*eval.Table{tab, e14bPropagation()}
}

// e14bPropagation — the "graph algorithms" half of §4's linkage methods:
// records carry only ambiguous family names, so string similarity alone
// cannot separate namesakes; propagating similarity along the marriedTo
// neighborhood (similarity flooding) resolves them.
func e14bPropagation() *eval.Table {
	w, _ := standardWorld(118)
	spouses := map[string]string{}
	for _, f := range w.FactsOf(synth.RelMarriedTo) {
		spouses[f.S] = f.O
	}
	family := func(name string) string {
		for i := len(name) - 1; i >= 0; i-- {
			if name[i] == ' ' {
				return name[i+1:]
			}
		}
		return name
	}
	var a, b []linkage.Record
	gold := map[string]string{}
	for _, p := range w.People {
		sp, married := spouses[p.ID]
		if !married {
			continue
		}
		mkRec := func(prefix string) linkage.Record {
			return linkage.Record{
				ID:        prefix + p.ID,
				Name:      family(p.Name),
				Neighbors: []string{prefix + sp},
			}
		}
		a = append(a, mkRec("a:"))
		b = append(b, mkRec("b:"))
		gold["a:"+p.ID] = "b:" + p.ID
	}
	// Shuffle edition B so index order carries no alignment signal
	// (otherwise greedy tie-breaking silently lands on the identity).
	rng := newDetRand(119)
	for i := len(b) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		b[i], b[j] = b[j], b[i]
	}
	// Candidate scores: JW between family names — 1.0 for every namesake
	// pair, so string similarity alone cannot tell namesakes apart. The
	// flood's anchors are the records with *unique* family names; their
	// certainty propagates to their (ambiguous) spouses through the
	// marriedTo neighborhood.
	base := map[[2]int]float64{}
	for i := range a {
		for j := range b {
			if s := linkage.JaroWinkler(a[i].Name, b[j].Name); s >= 0.85 {
				base[[2]int{i, j}] = s
			}
		}
	}
	scoreLinks := func(scores map[[2]int]float64) eval.PRF {
		// Greedy one-to-one by descending score.
		var all []scorePair
		for k, v := range scores {
			all = append(all, scorePair{k[0], k[1], v})
		}
		sortScorePairs(all)
		usedA, usedB := map[int]bool{}, map[int]bool{}
		tp, fp := 0, 0
		for _, x := range all {
			if usedA[x.i] || usedB[x.j] || x.s < 0.9 {
				continue
			}
			usedA[x.i], usedB[x.j] = true, true
			if gold[a[x.i].ID] == b[x.j].ID {
				tp++
			} else {
				fp++
			}
		}
		return eval.Score(tp, fp, len(gold)-tp)
	}
	tab := eval.NewTable("E14b: ambiguous family-name linkage — similarity propagation",
		"method", "P", "R", "F1")
	sBase := scoreLinks(base)
	tab.AddRow("name similarity only", sBase.Precision, sBase.Recall, sBase.F1)
	flooded := linkage.PropagateSimilarity(a, b, base, 0.5, 4)
	sFlood := scoreLinks(flooded)
	tab.AddRow("+ similarity propagation (4 rounds)", sFlood.Precision, sFlood.Recall, sFlood.F1)
	return tab
}

// scorePair is one scored candidate pair in the flooding demonstration.
type scorePair struct {
	i, j int
	s    float64
}

// sortScorePairs orders pairs by descending score, then indices, so the
// greedy matching is deterministic.
func sortScorePairs(all []scorePair) {
	sort.Slice(all, func(x, y int) bool {
		if all[x].s != all[y].s {
			return all[x].s > all[y].s
		}
		if all[x].i != all[y].i {
			return all[x].i < all[y].i
		}
		return all[x].j < all[y].j
	})
}

// E15BrandTracking — §4's motivating example: track two product families
// over a year of posts; knowledge-based NED attributes ambiguous brand
// mentions to concrete products, string matching cannot.
func E15BrandTracking() []*eval.Table {
	w, corpus := standardWorld(117)
	linker := buildNEDModels(w, corpus)
	opt := synth.DefaultStreamOptions(w)
	opt.Posts = 3000
	posts := synth.GenerateStream(w, opt)

	// Pre-compute each line's release timeline for the KB-temporal
	// attribution method: a bare brand mention is attributed to the most
	// recently released product of that line as of the post day — the
	// "knowledge as asset" move of §4 (the KB knows the release dates).
	lineProducts := map[string][]*synth.Entity{}
	for _, prod := range w.Products {
		line := w.ProductLine[prod.ID]
		lineProducts[line] = append(lineProducts[line], prod)
	}
	attributeWithKB := func(surface string, day int) string {
		if e := w.EntityByName(surface); e != nil {
			return e.ID // full product name: exact
		}
		best, bestDay := "", -1<<62
		for _, prod := range lineProducts[surface] {
			rd, ok := w.ReleaseDay(prod.ID)
			if !ok || rd > day {
				continue
			}
			if rd > bestDay {
				best, bestDay = prod.ID, rd
			}
		}
		return best
	}

	// Attribution accuracy: for every product mention, does the method
	// pick the right product entity?
	correctNED, correctString, correctKB, total := 0, 0, 0, 0
	quarterCounts := map[string]map[int]int{} // line -> quarter -> NED-attributed mentions
	for _, p := range posts {
		for _, m := range p.Mentions {
			total++
			// String matching: exact full-name match attributes; a bare
			// line word cannot pick a generation.
			if e := w.EntityByName(m.Surface); e != nil && e.ID == m.Entity {
				correctString++
			}
			// NED with post text as context.
			res := linker.Disambiguate([]ned.Mention{{Surface: m.Surface, Context: p.Text}}, ned.PriorContext)
			if len(res) == 1 && res[0].Entity == m.Entity {
				correctNED++
			}
			// KB temporal prior.
			if attributeWithKB(m.Surface, p.Day) == m.Entity {
				correctKB++
			}
			line := w.ProductLine[m.Entity]
			if quarterCounts[line] == nil {
				quarterCounts[line] = map[int]int{}
			}
			quarterCounts[line][quarterOf(p.Day)]++
		}
	}
	acc := eval.NewTable("E15: product-mention attribution over the social stream",
		"method", "mentions", "accuracy")
	acc.AddRow("string matching", total, eval.Accuracy(correctString, total))
	acc.AddRow("NED (prior+context)", total, eval.Accuracy(correctNED, total))
	acc.AddRow("NED + KB release dates", total, eval.Accuracy(correctKB, total))

	trend := eval.NewTable("E15b: tracked mentions per quarter (gold line attribution)",
		"line", "Q1", "Q2", "Q3", "Q4")
	for _, line := range opt.Lines {
		qc := quarterCounts[line]
		trend.AddRow(line, qc[0], qc[1], qc[2], qc[3])
	}
	return []*eval.Table{acc, trend}
}

func quarterOf(day int) int {
	d := temporal.FromDay(day)
	return (d.Month - 1) / 3
}

// newDetRand is a tiny deterministic PRNG (xorshift) so experiments avoid
// pulling math/rand state ordering into their fingerprints.
type detRand struct{ s uint64 }

func newDetRand(seed int64) *detRand {
	if seed == 0 {
		seed = 1
	}
	return &detRand{s: uint64(seed)}
}

func (r *detRand) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *detRand) Float64() float64 { return float64(r.next()%1_000_000) / 1_000_000 }

func (r *detRand) Intn(n int) int { return int(r.next() % uint64(n)) }

// perturbName introduces one typo.
func perturbName(name string, rng *detRand) string {
	if len(name) < 4 {
		return name
	}
	i := 1 + rng.Intn(len(name)-2)
	switch rng.Intn(3) {
	case 0:
		return name[:i] + name[i+1:]
	case 1:
		b := []byte(name)
		b[i], b[i+1] = b[i+1], b[i]
		return string(b)
	default:
		return name[:i] + string(name[i]) + name[i:]
	}
}
