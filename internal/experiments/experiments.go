// Package experiments implements the reproduction's benchmark harness:
// one function per experiment in DESIGN.md §4 (E1–E15), each regenerating
// the table recorded in EXPERIMENTS.md. cmd/benchrunner prints them all;
// bench_test.go wraps each in a testing.B benchmark.
//
// The source paper is a tutorial without numbered tables, so each
// experiment reproduces a named claim of the tutorial (see DESIGN.md);
// the assertion checked in each table is the *shape* — which method wins
// and roughly by how much — not absolute numbers.
package experiments

import (
	"kbharvest/internal/eval"
	"kbharvest/internal/extract"
	"kbharvest/internal/synth"
)

// Experiment is one runnable experiment.
type Experiment struct {
	ID    string
	Claim string
	Run   func() []*eval.Table
}

// All returns every experiment in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "category analysis yields accurate classes at scale", E1Taxonomy},
		{"E2", "set expansion grows classes from seeds", E2SetExpansion},
		{"E3", "bootstrapping trades precision for recall over iterations", E3Bootstrap},
		{"E4", "distant supervision beats raw patterns on paraphrases", E4DistantSupervision},
		{"E5", "joint factor-graph inference beats independent decisions", E5FactorGraph},
		{"E6", "consistency reasoning lifts precision", E6Reasoning},
		{"E7", "open IE constraints cut incoherent extractions", E7OpenIE},
		{"E8", "map-reduce extraction scales with workers", E8MapReduce},
		{"E9", "frequent sequence mining finds relation phrases", E9SequenceMining},
		{"E10", "temporal scoping; sharded serving scatter/gather", E10Temporal},
		{"E11", "multilingual name alignment links editions", E11Multilingual},
		{"E12", "commonsense rules are minable from the KB", E12RuleMining},
		{"E13", "NED: coherence+context beat prior", E13NED},
		{"E14", "linkage: learning + blocking", E14Linkage},
		{"E15", "knowledge-centric brand tracking", E15BrandTracking},
	}
}

// ByID returns one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// standardWorld is the shared evaluation world. Sized so every experiment
// finishes in seconds while keeping hundreds of entities and thousands of
// mentions.
func standardWorld(seed int64) (*synth.World, *synth.Corpus) {
	cfg := synth.Config{
		People: 200, Companies: 50, Cities: 25, Countries: 6,
		Universities: 15, Products: 40, Prizes: 10,
	}
	w := synth.Generate(cfg, seed)
	return w, synth.BuildCorpus(w, synth.DefaultCorpusOptions())
}

// corpusDocs adapts articles to extraction docs with gold mentions.
func corpusDocs(c *synth.Corpus) []extract.Doc {
	docs := make([]extract.Doc, 0, len(c.Articles))
	for _, a := range c.Articles {
		d := extract.Doc{Text: a.Text, Source: a.ID}
		for _, m := range a.Mentions {
			d.Mentions = append(d.Mentions, extract.Span{Start: m.Start, End: m.End, Entity: m.Entity})
		}
		docs = append(docs, d)
	}
	return docs
}

// goldFactSet returns the world's relation facts as a key set.
func goldFactSet(w *synth.World) map[string]bool {
	gold := make(map[string]bool, len(w.Facts))
	for _, f := range w.Facts {
		gold[f.S+"\x00"+f.P+"\x00"+f.O] = true
	}
	return gold
}

func candidateKeys(cands []extract.Candidate) map[string]bool {
	out := make(map[string]bool, len(cands))
	for _, c := range cands {
		out[c.Key()] = true
	}
	return out
}

func scoreCandidates(cands []extract.Candidate, gold map[string]bool) eval.PRF {
	return eval.SetPRF(candidateKeys(cands), gold)
}

// goldFactsOfRel filters the gold set by relation.
func goldFactsOfRel(w *synth.World, rel string) map[string]bool {
	gold := map[string]bool{}
	for _, f := range w.FactsOf(rel) {
		gold[f.S+"\x00"+f.P+"\x00"+f.O] = true
	}
	return gold
}

// injectNoise simulates a sloppier extractor: for a fraction of the true
// candidates it fabricates corrupted variants — same-class object swaps
// (functional-constraint violations) and cross-class swaps (type
// violations) — with mid-range confidences. This is the error profile
// §3's consistency reasoning and joint inference exist to clean up; the
// clean template corpus alone is too easy to show the effect.
func injectNoise(w *synth.World, cands []extract.Candidate, rate float64, seed int64) []extract.Candidate {
	rng := newDetRand(seed)
	out := append([]extract.Candidate(nil), cands...)
	pools := map[string][]*synth.Entity{
		synth.ClassCity:       w.Cities,
		synth.ClassCompany:    w.Companies,
		synth.ClassUniversity: w.Universities,
		synth.ClassPerson:     w.People,
		synth.ClassProduct:    w.Products,
		synth.ClassAward:      w.Prizes,
	}
	classOf := func(id string) string {
		e, ok := w.ByID[id]
		if !ok {
			return ""
		}
		for base := range pools {
			if w.Truth.IsA(id, base) {
				return base
			}
		}
		return e.Class
	}
	for _, c := range cands {
		if rng.Float64() >= rate {
			continue
		}
		cls := classOf(c.O)
		pool := pools[cls]
		if len(pool) < 2 {
			continue
		}
		if rng.Float64() < 0.5 {
			// Same-class swap: plausible but wrong object.
			swap := pool[rng.Intn(len(pool))]
			if swap.ID == c.O || w.HasFact(c.S, c.P, swap.ID) {
				continue
			}
			out = append(out, extract.Candidate{
				S: c.S, P: c.P, O: swap.ID,
				Confidence: 0.55 + 0.3*rng.Float64(),
				Source:     "noisy-extractor",
			})
		} else {
			// Cross-class swap: type-violating object.
			other := w.People
			if cls == synth.ClassPerson {
				other = w.Cities
			}
			swap := other[rng.Intn(len(other))]
			out = append(out, extract.Candidate{
				S: c.S, P: c.P, O: swap.ID,
				Confidence: 0.55 + 0.3*rng.Float64(),
				Source:     "noisy-extractor",
			})
		}
	}
	return out
}
