package experiments

import (
	"runtime"
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Fatalf("registry has %d experiments, want 15", len(all))
	}
	for i, e := range all {
		want := "E" + strconv.Itoa(i+1)
		if e.ID != want {
			t.Errorf("experiment %d has ID %s, want %s", i, e.ID, want)
		}
		if e.Claim == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if _, ok := ByID("E7"); !ok {
		t.Error("ByID(E7) failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID(E99) should fail")
	}
}

// parseCell reads a numeric table cell.
func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("non-numeric cell %q", s)
	}
	return v
}

func TestE1Shape(t *testing.T) {
	tabs := E1Taxonomy()
	if len(tabs) != 1 || len(tabs[0].Rows) != 4 {
		t.Fatalf("E1 tables = %+v", tabs)
	}
	for _, row := range tabs[0].Rows {
		if p := parseCell(t, row[1]); p < 0.9 {
			t.Errorf("E1 type precision %v too low in row %v", p, row)
		}
		if r := parseCell(t, row[2]); r < 0.95 {
			t.Errorf("E1 type recall %v too low in row %v", r, row)
		}
	}
}

func TestE2Shape(t *testing.T) {
	tabs := E2SetExpansion()
	if len(tabs) != 2 {
		t.Fatalf("E2 tables = %d", len(tabs))
	}
	for _, row := range tabs[0].Rows {
		if p5 := parseCell(t, row[2]); p5 < 0.6 {
			t.Errorf("E2 P@5 = %v in row %v", p5, row)
		}
	}
	if acc := parseCell(t, tabs[1].Rows[0][1]); acc < 0.8 {
		t.Errorf("E2b Hearst accuracy = %v", acc)
	}
}

func TestE3Shape(t *testing.T) {
	tabs := E3Bootstrap()
	rows := tabs[0].Rows
	if len(rows) != 4 {
		t.Fatalf("E3 rows = %d", len(rows))
	}
	// Recall grows (or holds) with iterations; final precision below first.
	firstP := parseCell(t, rows[0][3])
	lastP := parseCell(t, rows[len(rows)-1][3])
	firstR := parseCell(t, rows[0][4])
	lastR := parseCell(t, rows[len(rows)-1][4])
	if lastR < firstR {
		t.Errorf("E3 recall should grow: %v -> %v", firstR, lastR)
	}
	if lastP > firstP {
		t.Errorf("E3 precision should decay or hold: %v -> %v", firstP, lastP)
	}
}

func TestE4Shape(t *testing.T) {
	tabs := E4DistantSupervision()
	rows := tabs[0].Rows
	if len(rows) != 4 {
		t.Fatalf("E4 rows = %d", len(rows))
	}
	// The learned extractor must beat the basic hand-pattern set on F1
	// (it learns the paraphrases the basic set misses).
	basicF1 := parseCell(t, rows[0][4])
	percF1 := parseCell(t, rows[2][4])
	if percF1 <= basicF1 {
		t.Errorf("E4 perceptron F1 %v should beat basic patterns %v", percF1, basicF1)
	}
	// And basic patterns keep higher precision than recall (the
	// incomplete-coverage signature).
	basicP := parseCell(t, rows[0][2])
	basicR := parseCell(t, rows[0][3])
	if basicP <= basicR {
		t.Errorf("E4 basic patterns should be precision-heavy: P=%v R=%v", basicP, basicR)
	}
}

func TestE5Shape(t *testing.T) {
	tabs := E5FactorGraph()
	rows := tabs[0].Rows
	indepP := parseCell(t, rows[0][2])
	jointP := parseCell(t, rows[1][2])
	if jointP < indepP {
		t.Errorf("E5 joint precision %v below independent %v", jointP, indepP)
	}
}

func TestE6Shape(t *testing.T) {
	tabs := E6Reasoning()
	rows := tabs[0].Rows
	rawP := parseCell(t, rows[0][2])
	walkP := parseCell(t, rows[2][2])
	if walkP < rawP {
		t.Errorf("E6 WalkSAT precision %v below raw %v", walkP, rawP)
	}
}

func TestE7Shape(t *testing.T) {
	tabs := E7OpenIE()
	rows := tabs[0].Rows
	// Unconstrained yields more, constrained is more precise.
	yieldNone := parseCell(t, rows[0][1])
	yieldFull := parseCell(t, rows[2][1])
	precNone := parseCell(t, rows[0][3])
	precFull := parseCell(t, rows[2][3])
	if yieldNone <= yieldFull {
		t.Errorf("E7 unconstrained yield %v should exceed constrained %v", yieldNone, yieldFull)
	}
	if precFull < precNone {
		t.Errorf("E7 constrained precision %v below unconstrained %v", precFull, precNone)
	}
}

func TestE8Shape(t *testing.T) {
	tabs := E8MapReduce()
	if len(tabs) != 3 {
		t.Fatalf("E8 tables = %d", len(tabs))
	}
	rows := tabs[0].Rows
	if len(rows) != 4 {
		t.Fatalf("E8 rows = %d", len(rows))
	}
	for _, row := range rows {
		t.Logf("E8 workers=%s speedup=%s", row[0], row[4])
	}
	// Parallel speedup is bounded by the cores actually available: a
	// 4-worker run cannot beat 1 worker on a single-core machine, so scale
	// the expectation to GOMAXPROCS instead of hard-coding a ratio.
	speedup4 := parseCell(t, rows[2][4])
	var want float64
	switch procs := runtime.GOMAXPROCS(0); {
	case procs >= 4:
		want = 1.5
	case procs >= 2:
		want = 1.15
	default:
		want = 0.85 // tolerance: goroutine overhead on one core
	}
	if speedup4 < want {
		t.Errorf("E8 speedup at 4 workers = %v, want >= %v on GOMAXPROCS=%d",
			speedup4, want, runtime.GOMAXPROCS(0))
	}
	// E8b: the batch write path must not lose badly to per-triple Add. On
	// a single core the lock amortization that makes batching win cannot
	// show up, and per-run noise swamps the residual difference, so this
	// only guards against a catastrophic batch-path regression.
	brows := tabs[1].Rows
	if len(brows) != 3 {
		t.Fatalf("E8b rows = %d", len(brows))
	}
	for _, row := range brows {
		t.Logf("E8b workers=%s batch/add=%s", row[0], row[6])
		if ratio := parseCell(t, row[6]); ratio < 0.5 {
			t.Errorf("E8b batch/add ratio = %v at %s workers", ratio, row[0])
		}
	}
	// E8c: write-behind ingestion overlaps store writes with producer work,
	// so it must not lose badly to inline synchronous batching. As with E8b,
	// single-core machines cannot show the overlap win, so this only guards
	// against a catastrophic regression in the async path.
	crows := tabs[2].Rows
	if len(crows) != 3 {
		t.Fatalf("E8c rows = %d", len(crows))
	}
	for _, row := range crows {
		t.Logf("E8c producers=%s async/sync=%s", row[0], row[6])
		if ratio := parseCell(t, row[6]); ratio < 0.5 {
			t.Errorf("E8c async/sync ratio = %v at %s producers", ratio, row[0])
		}
	}
}

func TestE9Shape(t *testing.T) {
	tabs := E9SequenceMining()
	rows := tabs[0].Rows
	// Lower support -> more patterns.
	first := parseCell(t, rows[0][2])
	last := parseCell(t, rows[len(rows)-1][2])
	if last <= first {
		t.Errorf("E9 pattern count should grow as support drops: %v -> %v", first, last)
	}
	if len(tabs[1].Rows) == 0 {
		t.Error("E9b top phrases empty")
	}
}

func TestE10Shape(t *testing.T) {
	tabs := E10Temporal()
	if len(tabs[0].Rows) == 0 {
		t.Fatal("E10 empty")
	}
	for _, row := range tabs[0].Rows {
		if acc := parseCell(t, row[2]); acc < 0.6 {
			t.Errorf("E10 begin accuracy %v in row %v", acc, row)
		}
	}
}

func TestE11Shape(t *testing.T) {
	tabs := E11Multilingual()
	for _, row := range tabs[0].Rows {
		if p := parseCell(t, row[2]); p < 0.85 {
			t.Errorf("E11 precision %v in row %v", p, row)
		}
	}
}

func TestE12Shape(t *testing.T) {
	tabs := E12RuleMining()
	if len(tabs) != 3 || len(tabs[1].Rows) == 0 {
		t.Fatal("E12 missing tables")
	}
	// Property extraction must be high-precision on the commonsense corpus.
	for _, row := range tabs[2].Rows {
		if p := parseCell(t, row[2]); p < 0.9 {
			t.Errorf("E12c precision %v in row %v", p, row)
		}
	}
	// marriedTo symmetry should be among the top rules.
	found := false
	for _, row := range tabs[1].Rows {
		if strings.Contains(row[0], "kb:marriedTo(y,x) => kb:marriedTo(x,y)") {
			found = true
		}
	}
	if !found {
		t.Errorf("E12 top rules missing marriedTo symmetry: %v", tabs[1].Rows)
	}
}

func TestE13Shape(t *testing.T) {
	tabs := E13NED()
	rows := tabs[0].Rows
	prior := parseCell(t, rows[0][2])
	ctx := parseCell(t, rows[1][2])
	joint := parseCell(t, rows[2][2])
	if ctx <= prior {
		t.Errorf("E13 context %v should beat prior %v", ctx, prior)
	}
	if joint < ctx-0.02 {
		t.Errorf("E13 joint %v below context %v", joint, ctx)
	}
}

func TestE14Shape(t *testing.T) {
	tabs := E14Linkage()
	rows := tabs[0].Rows
	fullPairs := parseCell(t, rows[0][1])
	blockedPairs := parseCell(t, rows[1][1])
	if blockedPairs >= fullPairs {
		t.Errorf("E14 blocking did not prune: %v vs %v", blockedPairs, fullPairs)
	}
	ruleF1 := parseCell(t, rows[1][5])
	learnedF1 := parseCell(t, rows[2][5])
	if learnedF1 <= ruleF1 {
		t.Errorf("E14 learned F1 %v should beat rule %v", learnedF1, ruleF1)
	}
	// E14b: similarity propagation beats name-only on ambiguous names.
	if len(tabs) != 2 {
		t.Fatalf("E14 tables = %d", len(tabs))
	}
	nameF1 := parseCell(t, tabs[1].Rows[0][3])
	floodF1 := parseCell(t, tabs[1].Rows[1][3])
	if floodF1 <= nameF1 {
		t.Errorf("E14b propagation F1 %v should beat name-only %v", floodF1, nameF1)
	}
}

func TestE15Shape(t *testing.T) {
	tabs := E15BrandTracking()
	rows := tabs[0].Rows
	stringAcc := parseCell(t, rows[0][2])
	nedAcc := parseCell(t, rows[1][2])
	kbAcc := parseCell(t, rows[2][2])
	if nedAcc <= stringAcc {
		t.Errorf("E15 NED accuracy %v should beat string matching %v", nedAcc, stringAcc)
	}
	if kbAcc <= nedAcc {
		t.Errorf("E15 KB-date attribution %v should beat plain NED %v", kbAcc, nedAcc)
	}
	if len(tabs[1].Rows) != 2 {
		t.Errorf("E15b should track 2 lines: %v", tabs[1].Rows)
	}
}
