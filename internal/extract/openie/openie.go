// Package openie implements ReVerb-style open information extraction
// (§3 "Open Information Extraction"): harvesting arbitrary SPO triples
// from natural-language sentences by taking noun phrases as argument
// candidates and verb phrases as prototypic relation phrases, constrained
// syntactically (the relation must match a V | V P | V W* P part-of-speech
// pattern) and lexically (the relation phrase must occur with enough
// distinct argument pairs to be a general relation, not a fragment).
package openie

import (
	"sort"
	"strings"

	"kbharvest/internal/text"
)

// Extraction is one open-IE triple with surface arguments.
type Extraction struct {
	Arg1, Rel, Arg2 string
	// Normalized is the canonicalized relation phrase (auxiliaries and
	// adverbs dropped, head verb lemmatized): "was founded by" ->
	// "found by".
	Normalized string
	Confidence float64
	Sentence   string
	Source     string
}

// Options toggle the two ReVerb constraints — the ablation of experiment
// E7 measures their effect on yield and precision.
type Options struct {
	// Syntactic requires the relation phrase to match V | V P | V W* P.
	// Without it, any token span between two NPs becomes a relation
	// phrase (the incoherent-extraction failure mode ReVerb fixes).
	Syntactic bool
	// Lexical drops extractions whose normalized relation phrase
	// supports fewer than MinRelPairs distinct argument pairs corpus-wide.
	Lexical     bool
	MinRelPairs int
}

// DefaultOptions enables both constraints.
func DefaultOptions() Options {
	return Options{Syntactic: true, Lexical: true, MinRelPairs: 3}
}

// Doc is one input document.
type Doc struct {
	Text   string
	Source string
}

// Extract runs open IE over the documents.
func Extract(docs []Doc, opt Options) []Extraction {
	if opt.MinRelPairs == 0 {
		opt.MinRelPairs = DefaultOptions().MinRelPairs
	}
	var out []Extraction
	for _, d := range docs {
		for _, sent := range text.SplitSentences(d.Text) {
			out = append(out, extractSentence(sent.Text, d.Source, opt)...)
		}
	}
	if opt.Lexical {
		out = applyLexicalConstraint(out, opt.MinRelPairs)
	}
	return out
}

// extractSentence finds (NP, relation phrase, NP) triples in one sentence.
func extractSentence(sentence, source string, opt Options) []Extraction {
	tagged := text.Tag(text.Tokenize(sentence))
	chunks := text.ChunkSentence(tagged)
	var out []Extraction
	for i := 0; i < len(chunks); i++ {
		if chunks[i].Kind != text.ChunkNP {
			continue
		}
		// Find the next NP to the right and treat the span between as the
		// relation-phrase candidate.
		for j := i + 1; j < len(chunks); j++ {
			if chunks[j].Kind != text.ChunkNP {
				continue
			}
			between := chunks[i+1 : j]
			rel, norm, ok := relationPhrase(between, opt.Syntactic)
			if !ok {
				break // no relation between these NPs; move to next left NP
			}
			ex := Extraction{
				Arg1:       chunkTextNoDet(chunks[i]),
				Rel:        rel,
				Normalized: norm,
				Arg2:       chunkTextNoDet(chunks[j]),
				Sentence:   sentence,
				Source:     source,
			}
			ex.Confidence = confidence(ex, chunks[i], chunks[j])
			out = append(out, ex)
			break // one extraction per left NP (nearest-NP heuristic)
		}
	}
	return out
}

// relationPhrase validates and renders the chunk span between two NPs.
// With the syntactic constraint it must be VP (IN|TO)? — a verb group
// optionally ending in one preposition. Without it, any non-empty span up
// to 5 tokens is accepted verbatim.
func relationPhrase(between []text.Chunk, syntactic bool) (string, string, bool) {
	if len(between) == 0 {
		return "", "", false
	}
	var toks []text.TaggedToken
	for _, c := range between {
		toks = append(toks, c.Tokens...)
	}
	if len(toks) == 0 || len(toks) > 6 {
		return "", "", false
	}
	if syntactic {
		// Pattern: VP chunk first, then optionally one IN/TO token.
		if between[0].Kind != text.ChunkVP {
			return "", "", false
		}
		switch len(between) {
		case 1:
			// pure verb group
		case 2:
			if between[1].Kind != text.ChunkOther || len(between[1].Tokens) != 1 {
				return "", "", false
			}
			t := between[1].Tokens[0].Tag
			if t != text.TagIN && t != text.TagTO {
				return "", "", false
			}
		default:
			return "", "", false
		}
	} else {
		// Unconstrained: reject only punctuation-bearing spans (sentence
		// structure) to stay comparable.
		for _, t := range toks {
			if t.Tag == text.TagPct {
				return "", "", false
			}
		}
	}
	words := make([]string, len(toks))
	for i, t := range toks {
		words[i] = t.Text
	}
	return strings.Join(words, " "), normalizeRelation(toks), true
}

// normalizeRelation lowercases, drops auxiliaries/adverbs, lemmatizes the
// head verb, and keeps a trailing preposition.
func normalizeRelation(toks []text.TaggedToken) string {
	var parts []string
	for i, t := range toks {
		lw := strings.ToLower(t.Text)
		switch t.Tag {
		case text.TagRB, text.TagMD:
			continue
		case text.TagVBD, text.TagVBZ, text.TagVBP, text.TagVBG, text.TagVBN, text.TagVB:
			// Auxiliary be/have before another verb is dropped.
			if isAuxWord(lw) && hasLaterVerb(toks, i) {
				continue
			}
			parts = append(parts, text.Lemma(t.Text, t.Tag))
		case text.TagIN, text.TagTO:
			parts = append(parts, lw)
		default:
			parts = append(parts, lw)
		}
	}
	return strings.Join(parts, " ")
}

func isAuxWord(lw string) bool {
	switch lw {
	case "is", "are", "was", "were", "be", "been", "being", "am",
		"has", "have", "had", "having", "does", "do", "did":
		return true
	}
	return false
}

func hasLaterVerb(toks []text.TaggedToken, i int) bool {
	for j := i + 1; j < len(toks); j++ {
		switch toks[j].Tag {
		case text.TagVBD, text.TagVBZ, text.TagVBP, text.TagVBG, text.TagVBN, text.TagVB:
			return true
		}
	}
	return false
}

// chunkTextNoDet renders an NP without its leading determiner ("the Nova
// 3" -> "Nova 3").
func chunkTextNoDet(c text.Chunk) string {
	toks := c.Tokens
	for len(toks) > 0 && toks[0].Tag == text.TagDT {
		toks = toks[1:]
	}
	words := make([]string, len(toks))
	for i, t := range toks {
		words[i] = t.Text
	}
	return strings.Join(words, " ")
}

// confidence is a hand-tuned scoring function in the spirit of ReVerb's
// logistic regression: proper-noun arguments, short relation phrases, and
// prepositional endings score higher.
func confidence(ex Extraction, left, right text.Chunk) float64 {
	score := 0.4
	if left.IsProper() {
		score += 0.2
	}
	if right.IsProper() {
		score += 0.2
	}
	nRelWords := len(strings.Fields(ex.Rel))
	if nRelWords <= 3 {
		score += 0.1
	}
	if strings.HasSuffix(ex.Normalized, " in") || strings.HasSuffix(ex.Normalized, " by") ||
		strings.HasSuffix(ex.Normalized, " at") || strings.HasSuffix(ex.Normalized, " from") ||
		strings.HasSuffix(ex.Normalized, " to") || strings.HasSuffix(ex.Normalized, " of") {
		score += 0.1
	}
	if score > 1 {
		score = 1
	}
	return score
}

// applyLexicalConstraint keeps extractions whose normalized relation has
// at least minPairs distinct argument pairs.
func applyLexicalConstraint(exs []Extraction, minPairs int) []Extraction {
	pairs := make(map[string]map[string]bool)
	for _, ex := range exs {
		if pairs[ex.Normalized] == nil {
			pairs[ex.Normalized] = make(map[string]bool)
		}
		pairs[ex.Normalized][ex.Arg1+"\x00"+ex.Arg2] = true
	}
	out := exs[:0]
	for _, ex := range exs {
		if len(pairs[ex.Normalized]) >= minPairs {
			out = append(out, ex)
		}
	}
	return out
}

// RelationCounts tallies normalized relation phrases — the inventory of
// "prototypic patterns for relations" open IE discovers.
func RelationCounts(exs []Extraction) []struct {
	Rel   string
	Count int
} {
	counts := make(map[string]int)
	for _, ex := range exs {
		counts[ex.Normalized]++
	}
	out := make([]struct {
		Rel   string
		Count int
	}, 0, len(counts))
	for rel, n := range counts {
		out = append(out, struct {
			Rel   string
			Count int
		}{rel, n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Rel < out[j].Rel
	})
	return out
}
