package openie

import (
	"strings"
	"testing"

	"kbharvest/internal/synth"
)

func extractOne(sentence string, opt Options) []Extraction {
	return Extract([]Doc{{Text: sentence, Source: "t"}}, opt)
}

func TestExtractSVO(t *testing.T) {
	exs := extractOne("Steve Jobs founded Apple.", Options{Syntactic: true})
	if len(exs) != 1 {
		t.Fatalf("extractions = %+v", exs)
	}
	ex := exs[0]
	if ex.Arg1 != "Steve Jobs" || ex.Rel != "founded" || ex.Arg2 != "Apple" {
		t.Errorf("extraction = %+v", ex)
	}
	if ex.Normalized != "found" {
		t.Errorf("normalized = %q", ex.Normalized)
	}
}

func TestExtractPassiveWithPreposition(t *testing.T) {
	exs := extractOne("Apple was founded by Steve Jobs.", Options{Syntactic: true})
	if len(exs) != 1 {
		t.Fatalf("extractions = %+v", exs)
	}
	ex := exs[0]
	if ex.Arg1 != "Apple" || ex.Arg2 != "Steve Jobs" {
		t.Errorf("args = %q / %q", ex.Arg1, ex.Arg2)
	}
	if ex.Normalized != "found by" {
		t.Errorf("normalized = %q", ex.Normalized)
	}
}

func TestExtractVerbPlusPreposition(t *testing.T) {
	exs := extractOne("Alice Foo graduated from Bar University.", Options{Syntactic: true})
	if len(exs) != 1 {
		t.Fatalf("extractions = %+v", exs)
	}
	if exs[0].Normalized != "graduate from" {
		t.Errorf("normalized = %q", exs[0].Normalized)
	}
}

func TestSyntacticConstraintBlocksNonVerbSpans(t *testing.T) {
	// "the CEO of Acme" — between "Alice" and "Acme" lies "the CEO of",
	// not a verb phrase.
	exs := extractOne("Alice , the CEO of Acme , resigned.", Options{Syntactic: true})
	for _, ex := range exs {
		if strings.Contains(ex.Rel, "CEO") {
			t.Errorf("noun span extracted as relation: %+v", ex)
		}
	}
}

func TestUnconstrainedYieldsMore(t *testing.T) {
	docs := []Doc{{Text: "Alice Foo , director of Acme Systems , praised Bob. " +
		"Carol Moo founded Dex Corp. Erin Zed joined Flux Labs in 1999.", Source: "t"}}
	constrained := Extract(docs, Options{Syntactic: true})
	unconstrained := Extract(docs, Options{Syntactic: false})
	if len(unconstrained) <= len(constrained) {
		t.Errorf("unconstrained %d should out-yield constrained %d",
			len(unconstrained), len(constrained))
	}
}

func TestLexicalConstraintFiltersRareRelations(t *testing.T) {
	var docs []Doc
	// "founded" appears with 3 distinct pairs; "zorbled" with 1.
	docs = append(docs,
		Doc{Text: "Alice Foo founded Acme Systems."},
		Doc{Text: "Bob Bar founded Beta Works."},
		Doc{Text: "Carol Moo founded Gamma Labs."},
		Doc{Text: "Dave Qux zorbled Delta Inc."},
	)
	exs := Extract(docs, Options{Syntactic: false, Lexical: true, MinRelPairs: 3})
	for _, ex := range exs {
		if strings.Contains(ex.Rel, "zorbled") {
			t.Errorf("rare relation survived lexical constraint: %+v", ex)
		}
	}
	found := false
	for _, ex := range exs {
		if ex.Normalized == "found" {
			found = true
		}
	}
	if !found {
		t.Errorf("frequent relation was dropped: %+v", exs)
	}
}

func TestConfidenceOrdering(t *testing.T) {
	proper := extractOne("Steve Jobs founded Apple.", Options{Syntactic: true})
	common := extractOne("the man founded the group.", Options{Syntactic: true})
	if len(proper) == 0 || len(common) == 0 {
		t.Skip("extraction failed on one input")
	}
	if proper[0].Confidence <= common[0].Confidence {
		t.Errorf("proper-noun extraction should score higher: %v vs %v",
			proper[0].Confidence, common[0].Confidence)
	}
}

func TestArgDeterminerStripped(t *testing.T) {
	exs := extractOne("Acme Systems released the Nova 3 in 2012.", Options{Syntactic: true})
	if len(exs) == 0 {
		t.Fatal("no extraction")
	}
	if strings.HasPrefix(exs[0].Arg2, "the ") {
		t.Errorf("determiner not stripped: %q", exs[0].Arg2)
	}
}

func TestRelationCounts(t *testing.T) {
	docs := []Doc{
		{Text: "A Foo founded B Corp. C Moo founded D Inc. E Zed acquired F Ltd."},
	}
	exs := Extract(docs, Options{Syntactic: true})
	counts := RelationCounts(exs)
	if len(counts) == 0 {
		t.Fatal("no relation counts")
	}
	if counts[0].Rel != "found" || counts[0].Count != 2 {
		t.Errorf("top relation = %+v", counts[0])
	}
}

func TestExtractOnSyntheticCorpus(t *testing.T) {
	w := synth.Generate(synth.Config{
		People: 60, Companies: 15, Cities: 10, Countries: 3,
		Universities: 6, Products: 12, Prizes: 4,
	}, 41)
	corpus := synth.BuildCorpus(w, synth.DefaultCorpusOptions())
	var docs []Doc
	for _, a := range corpus.Articles {
		docs = append(docs, Doc{Text: a.Text, Source: a.ID})
	}
	exs := Extract(docs, DefaultOptions())
	if len(exs) < 100 {
		t.Fatalf("only %d extractions", len(exs))
	}
	// Coherence proxy: most args should be resolvable entity names or
	// aliases (the corpus is entity-dense).
	names := map[string]bool{}
	for _, e := range w.Entities {
		names[e.Name] = true
		for _, a := range e.Aliases {
			names[a] = true
		}
	}
	resolvable := 0
	for _, ex := range exs {
		if names[ex.Arg1] {
			resolvable++
		}
	}
	frac := float64(resolvable) / float64(len(exs))
	if frac < 0.5 {
		t.Errorf("only %.2f of arg1s resolve to entities", frac)
	}
	// The discovered relation inventory must include the world's core
	// relation phrases.
	rels := map[string]bool{}
	for _, rc := range RelationCounts(exs) {
		rels[rc.Rel] = true
	}
	for _, want := range []string{"found by", "marry", "work at", "graduate from"} {
		if !rels[want] {
			t.Errorf("relation inventory missing %q", want)
		}
	}
	// Low-frequency paraphrases ("bought": ~1 pair in this small world)
	// must have been cut by the lexical constraint.
	if rels["buy"] {
		t.Error("lexical constraint should drop 1-pair relations")
	}
}

func TestEmptyInput(t *testing.T) {
	if got := Extract(nil, DefaultOptions()); len(got) != 0 {
		t.Errorf("Extract(nil) = %v", got)
	}
}
