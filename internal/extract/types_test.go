package extract

import (
	"testing"
)

func TestSplitDoc(t *testing.T) {
	d := Doc{
		Text:   "Alice founded Acme. Bob joined Acme in 1999.",
		Source: "art:1",
		Mentions: []Span{
			{Start: 0, End: 5, Entity: "kb:Alice"},
			{Start: 14, End: 18, Entity: "kb:Acme"},
			{Start: 20, End: 23, Entity: "kb:Bob"},
			{Start: 31, End: 35, Entity: "kb:Acme"},
		},
	}
	sents := SplitDoc(d)
	if len(sents) != 2 {
		t.Fatalf("sentences = %d", len(sents))
	}
	if len(sents[0].Spans) != 2 || len(sents[1].Spans) != 2 {
		t.Fatalf("span counts = %d, %d", len(sents[0].Spans), len(sents[1].Spans))
	}
	// Rebased offsets point at the right substrings.
	for _, s := range sents {
		for _, sp := range s.Spans {
			got := s.Text[sp.Start:sp.End]
			switch sp.Entity {
			case "kb:Alice":
				if got != "Alice" {
					t.Errorf("span text = %q", got)
				}
			case "kb:Acme":
				if got != "Acme" {
					t.Errorf("span text = %q", got)
				}
			}
		}
	}
	if sents[0].Source != "art:1" {
		t.Errorf("source = %q", sents[0].Source)
	}
}

func TestSplitDocMentionOnBoundary(t *testing.T) {
	// A mention that does not fall fully inside any sentence is dropped,
	// not mis-assigned.
	d := Doc{
		Text:     "Short. Another sentence here.",
		Mentions: []Span{{Start: 5, End: 9, Entity: "kb:X"}}, // straddles "." and "Ano"
	}
	sents := SplitDoc(d)
	for _, s := range sents {
		for _, sp := range s.Spans {
			if sp.Start < 0 || sp.End > len(s.Text) {
				t.Errorf("out-of-range span %+v in %q", sp, s.Text)
			}
		}
	}
}

func TestSplitDocs(t *testing.T) {
	docs := []Doc{
		{Text: "One sentence.", Source: "a"},
		{Text: "Two. Sentences.", Source: "b"},
	}
	sents := SplitDocs(docs)
	if len(sents) != 3 {
		t.Fatalf("got %d sentences", len(sents))
	}
}

func TestCandidateKey(t *testing.T) {
	a := Candidate{S: "s", P: "p", O: "o"}
	b := Candidate{S: "s", P: "p", O: "o", Confidence: 0.5}
	if a.Key() != b.Key() {
		t.Error("key should ignore confidence")
	}
	c := Candidate{S: "s", P: "p", O: "x"}
	if a.Key() == c.Key() {
		t.Error("different objects same key")
	}
}

func TestCandidateTriples(t *testing.T) {
	cs := []Candidate{
		{S: "kb:a", P: "kb:p", O: "kb:b", Confidence: 0.8},
		{S: "kb:c", P: "kb:q", O: "kb:d", Confidence: 0.3},
	}
	ts, confs := ToTriples(cs)
	if len(ts) != 2 || len(confs) != 2 {
		t.Fatalf("got %d triples, %d confs", len(ts), len(confs))
	}
	if ts[0] != cs[0].Triple() {
		t.Errorf("triple mismatch: %v vs %v", ts[0], cs[0].Triple())
	}
	if !ts[1].S.IsIRI() || ts[1].S.Value != "kb:c" || ts[1].O.Value != "kb:d" {
		t.Errorf("bad triple %v", ts[1])
	}
	if confs[0] != 0.8 || confs[1] != 0.3 {
		t.Errorf("bad confidences %v", confs)
	}
}
