// Package extract holds the shared input/output types of the fact
// extractors (§3): annotated sentences in, fact candidates out. The three
// extractor families of the tutorial's method spectrum live in the
// subpackages patterns (pattern matching), openie (open information
// extraction), and distant (statistical learning via distant supervision).
package extract

import (
	"sort"

	"kbharvest/internal/rdf"
	"kbharvest/internal/text"
)

// Span marks one resolved entity mention inside a sentence.
type Span struct {
	Start, End int
	Entity     string // entity IRI
}

// Sentence is extraction input: text plus resolved entity mentions.
// (Resolution comes either from gold annotations or from the NED stage,
// letting experiments isolate extractor quality from linker quality.)
type Sentence struct {
	Text   string
	Spans  []Span
	Source string
}

// Candidate is one extracted fact candidate.
type Candidate struct {
	S, P, O    string
	Confidence float64
	Source     string // provenance (article/sentence/extractor)
	Middle     string // pattern context or relation phrase that fired
}

// Key returns the (s,p,o) identity of the candidate.
func (c Candidate) Key() string { return c.S + "\x00" + c.P + "\x00" + c.O }

// Triple converts the candidate to an IRI triple (confidence and
// provenance are carried separately, as core.FactInfo).
func (c Candidate) Triple() rdf.Triple { return rdf.T(c.S, c.P, c.O) }

// ToTriples converts candidates to parallel triple and confidence slices —
// the shape the store's batch write path (AddBatchMeta) consumes.
func ToTriples(cs []Candidate) ([]rdf.Triple, []float64) {
	ts := make([]rdf.Triple, len(cs))
	confs := make([]float64, len(cs))
	for i, c := range cs {
		ts[i] = c.Triple()
		confs[i] = c.Confidence
	}
	return ts, confs
}

// Doc is a text with entity-mention annotations (an article body, a web
// page, a post).
type Doc struct {
	Text     string
	Source   string
	Mentions []Span
}

// SplitDoc cuts a document into annotated sentences, assigning each
// mention to the sentence that contains it (offsets rebased).
func SplitDoc(d Doc) []Sentence {
	sents := text.SplitSentences(d.Text)
	out := make([]Sentence, len(sents))
	mentions := append([]Span(nil), d.Mentions...)
	sort.Slice(mentions, func(i, j int) bool { return mentions[i].Start < mentions[j].Start })
	mi := 0
	for i, s := range sents {
		out[i] = Sentence{Text: s.Text, Source: d.Source}
		for mi < len(mentions) && mentions[mi].Start < s.End {
			m := mentions[mi]
			if m.Start >= s.Start && m.End <= s.End {
				out[i].Spans = append(out[i].Spans, Span{
					Start: m.Start - s.Start, End: m.End - s.Start, Entity: m.Entity,
				})
			}
			mi++
		}
	}
	return out
}

// SplitDocs flattens SplitDoc over a document collection.
func SplitDocs(docs []Doc) []Sentence {
	var out []Sentence
	for _, d := range docs {
		out = append(out, SplitDoc(d)...)
	}
	return out
}
