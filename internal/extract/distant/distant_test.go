package distant

import (
	"strings"
	"testing"

	"kbharvest/internal/eval"
	"kbharvest/internal/extract"
	"kbharvest/internal/rdf"
	"kbharvest/internal/synth"
)

func span(text, name, entity string) extract.Span {
	i := strings.Index(text, name)
	return extract.Span{Start: i, End: i + len(name), Entity: entity}
}

func TestFeaturize(t *testing.T) {
	sentText := "Alice Foo founded Acme Systems in 1976."
	sent := extract.Sentence{Text: sentText}
	a := span(sentText, "Alice Foo", "kb:Alice")
	b := span(sentText, "Acme Systems", "kb:Acme")
	feats := Featurize(sent, a, b)
	has := func(f string) bool {
		for _, g := range feats {
			if g == f {
				return true
			}
		}
		return false
	}
	if !has("mid:founded") {
		t.Errorf("missing middle feature: %v", feats)
	}
	if !has("order:fwd") {
		t.Errorf("missing order feature: %v", feats)
	}
	if !has("after:in") {
		t.Errorf("missing after feature: %v", feats)
	}
	// Dependency path present.
	pathFound := false
	for _, f := range feats {
		if strings.HasPrefix(f, "path:") {
			pathFound = true
		}
	}
	if !pathFound {
		t.Errorf("missing dependency path: %v", feats)
	}
	// Inverted direction flips the order feature.
	featsInv := Featurize(sent, b, a)
	invFound := false
	for _, f := range featsInv {
		if f == "order:inv" {
			invFound = true
		}
	}
	if !invFound {
		t.Errorf("inverted pair should carry order:inv: %v", featsInv)
	}
}

func TestFeaturizeMasksYears(t *testing.T) {
	sentText := "A B joined C D in 1999 happily."
	sent := extract.Sentence{Text: sentText}
	a := span(sentText, "A B", "kb:a")
	b := span(sentText, "C D", "kb:c")
	_ = b
	feats := Featurize(sent, a, b)
	for _, f := range feats {
		if f == "mid:1999" || f == "after:1999" {
			t.Errorf("unmasked year: %v", feats)
		}
	}
}

func toyInstances() []Instance {
	// Two relations with disjoint middle vocabulary plus NONE.
	mk := func(label, mid string, n int) []Instance {
		var out []Instance
		for i := 0; i < n; i++ {
			out = append(out, Instance{
				Features: []string{"mid:" + mid, "order:fwd"},
				Label:    label, S: "s", O: "o",
			})
		}
		return out
	}
	var insts []Instance
	insts = append(insts, mk("rel:founded", "founded", 20)...)
	insts = append(insts, mk("rel:acquired", "acquired", 20)...)
	insts = append(insts, mk(NoneLabel, "admired", 20)...)
	return insts
}

func TestPerceptronLearnsToyData(t *testing.T) {
	insts := toyInstances()
	p := TrainPerceptron(insts, 5, 1)
	cases := map[string]string{
		"founded":  "rel:founded",
		"acquired": "rel:acquired",
		"admired":  NoneLabel,
	}
	for mid, want := range cases {
		got, _ := p.Predict([]string{"mid:" + mid, "order:fwd"})
		if got != want {
			t.Errorf("Predict(mid:%s) = %s, want %s", mid, got, want)
		}
	}
}

func TestNaiveBayesLearnsToyData(t *testing.T) {
	insts := toyInstances()
	nb := TrainNaiveBayes(insts)
	cases := map[string]string{
		"founded":  "rel:founded",
		"acquired": "rel:acquired",
		"admired":  NoneLabel,
	}
	for mid, want := range cases {
		got, _ := nb.Predict([]string{"mid:" + mid, "order:fwd"})
		if got != want {
			t.Errorf("Predict(mid:%s) = %s, want %s", mid, got, want)
		}
	}
}

func TestPerceptronDeterministic(t *testing.T) {
	insts := toyInstances()
	a := TrainPerceptron(insts, 3, 7)
	b := TrainPerceptron(insts, 3, 7)
	la, _ := a.Predict([]string{"mid:founded"})
	lb, _ := b.Predict([]string{"mid:founded"})
	if la != lb {
		t.Error("same seed should give same model")
	}
}

// corpusSentences adapts the synthetic corpus.
func corpusSentences(c *synth.Corpus) []extract.Sentence {
	var docs []extract.Doc
	for _, a := range c.Articles {
		d := extract.Doc{Text: a.Text, Source: a.ID}
		for _, m := range a.Mentions {
			d.Mentions = append(d.Mentions, extract.Span{Start: m.Start, End: m.End, Entity: m.Entity})
		}
		docs = append(docs, d)
	}
	return extract.SplitDocs(docs)
}

// TestDistantSupervisionEndToEnd trains on half the corpus labeled by the
// gold KB and extracts from the other half; F1 must be solid and the
// learned model must beat chance by a wide margin (experiment E4's
// invariant).
func TestDistantSupervisionEndToEnd(t *testing.T) {
	w := synth.Generate(synth.Config{
		People: 100, Companies: 25, Cities: 12, Countries: 4,
		Universities: 8, Products: 15, Prizes: 5,
	}, 51)
	corpus := synth.BuildCorpus(w, synth.DefaultCorpusOptions())
	sents := corpusSentences(corpus)
	half := len(sents) / 2
	train, test := sents[:half], sents[half:]

	kbLabel := func(s, o string) (string, bool) {
		for _, rel := range []string{
			synth.RelFounded, synth.RelBornIn, synth.RelAcquired,
			synth.RelLocatedIn, synth.RelMarriedTo, synth.RelGraduatedFrom,
			synth.RelWorksAt, synth.RelWonPrize, synth.RelCEOOf, synth.RelCreated,
		} {
			if w.HasFact(s, rel, o) {
				return rel, true
			}
		}
		return "", false
	}
	trainInsts := BuildInstances(train, kbLabel, 2)
	if len(trainInsts) < 100 {
		t.Fatalf("too few training instances: %d", len(trainInsts))
	}
	model := TrainPerceptron(trainInsts, 5, 3)

	testInsts := BuildInstances(test, kbLabel, 1)
	cands := ExtractWithModel(testInsts, model)
	if len(cands) == 0 {
		t.Fatal("no extractions on test half")
	}
	pred := map[string]bool{}
	for _, c := range cands {
		pred[c.Key()] = true
	}
	gold := map[string]bool{}
	for _, in := range testInsts {
		if in.Label != NoneLabel {
			gold[in.S+"\x00"+in.Label+"\x00"+in.O] = true
		}
	}
	score := eval.SetPRF(pred, gold)
	if score.F1 < 0.6 {
		t.Errorf("distant supervision F1 = %v", score)
	}
}

func TestBuildInstancesSubsamplesNone(t *testing.T) {
	w := synth.Generate(synth.Config{
		People: 40, Companies: 10, Cities: 8, Countries: 3,
		Universities: 4, Products: 8, Prizes: 3,
	}, 52)
	corpus := synth.BuildCorpus(w, synth.DefaultCorpusOptions())
	sents := corpusSentences(corpus)
	kbLabel := func(s, o string) (string, bool) { return "", false }
	all := BuildInstances(sents, kbLabel, 1)
	sampled := BuildInstances(sents, kbLabel, 4)
	if len(sampled) >= len(all) {
		t.Errorf("subsampling did not reduce: %d vs %d", len(sampled), len(all))
	}
}

func TestExtractWithModelSkipsNone(t *testing.T) {
	insts := []Instance{
		{Features: []string{"mid:founded"}, Label: "x", S: "a", O: "b"},
	}
	nb := TrainNaiveBayes(toyInstances())
	cands := ExtractWithModel(insts, nb)
	for _, c := range cands {
		if c.P == NoneLabel {
			t.Error("NONE prediction leaked into candidates")
		}
	}
}

func TestFeaturizeAdjacentAndReversedSpans(t *testing.T) {
	// Adjacent mentions (empty middle) and reversed role order must not
	// panic and must produce valid features.
	sentText := "AcmeAlice met."
	sent := extract.Sentence{Text: sentText}
	a := extract.Span{Start: 0, End: 4, Entity: "kb:acme"}
	b := extract.Span{Start: 4, End: 9, Entity: "kb:alice"}
	for _, pair := range [][2]extract.Span{{a, b}, {b, a}} {
		feats := Featurize(sent, pair[0], pair[1])
		if len(feats) == 0 {
			t.Fatal("no features")
		}
		for _, f := range feats {
			if f == "" {
				t.Error("empty feature emitted")
			}
		}
	}
}

func TestBuildInstancesSkipsSameEntityPairs(t *testing.T) {
	sentText := "Alice met Alice."
	sent := extract.Sentence{
		Text: sentText,
		Spans: []extract.Span{
			{Start: 0, End: 5, Entity: "kb:alice"},
			{Start: 10, End: 15, Entity: "kb:alice"},
		},
	}
	insts := BuildInstances([]extract.Sentence{sent}, func(s, o string) (string, bool) {
		return "rel", true
	}, 1)
	if len(insts) != 0 {
		t.Errorf("same-entity pair should be skipped: %+v", insts)
	}
}

func TestModelInterface(t *testing.T) {
	var _ Model = (*Perceptron)(nil)
	var _ Model = (*NaiveBayes)(nil)
}

func TestTruthHasLabelsForSanity(t *testing.T) {
	// Guard: the gold store must expose facts used by kbLabel above.
	w := synth.Generate(synth.Config{
		People: 10, Companies: 4, Cities: 4, Countries: 2,
		Universities: 2, Products: 3, Prizes: 2,
	}, 53)
	found := false
	if n := len(w.Truth.Match(rdf.Triple{P: rdf.NewIRI(synth.RelFounded)})); n == 0 {
		t.Skip("world has no founded facts at this size")
	}
	for _, f := range w.Facts {
		if f.P == synth.RelFounded {
			found = true
		}
	}
	if !found {
		t.Skip("world has no founded facts at this size")
	}
}
