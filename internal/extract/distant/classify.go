package distant

import (
	"math"
	"math/rand"
	"sort"

	"kbharvest/internal/extract"
)

// Perceptron is an averaged multi-class perceptron over sparse string
// features — compact, fast, and competitive on high-dimensional sparse
// text features.
type Perceptron struct {
	Labels  []string
	weights map[string]map[string]float64 // label -> feature -> averaged weight
}

// TrainPerceptron runs the averaged perceptron for the given epochs,
// shuffling deterministically with seed.
func TrainPerceptron(insts []Instance, epochs int, seed int64) *Perceptron {
	labelSet := map[string]bool{}
	for _, in := range insts {
		labelSet[in.Label] = true
	}
	labels := make([]string, 0, len(labelSet))
	for l := range labelSet {
		labels = append(labels, l)
	}
	sort.Strings(labels)

	w := map[string]map[string]float64{}   // current weights
	acc := map[string]map[string]float64{} // accumulated for averaging
	for _, l := range labels {
		w[l] = map[string]float64{}
		acc[l] = map[string]float64{}
	}
	score := func(label string, feats []string) float64 {
		s := 0.0
		lw := w[label]
		for _, f := range feats {
			s += lw[f]
		}
		return s
	}
	rng := rand.New(rand.NewSource(seed))
	order := make([]int, len(insts))
	for i := range order {
		order[i] = i
	}
	step := 1.0
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			in := insts[idx]
			best, bestScore := "", math.Inf(-1)
			for _, l := range labels {
				if s := score(l, in.Features); s > bestScore {
					best, bestScore = l, s
				}
			}
			if best != in.Label {
				for _, f := range in.Features {
					w[in.Label][f]++
					w[best][f]--
					acc[in.Label][f] += step
					acc[best][f] -= step
				}
			}
			step++
		}
	}
	// Averaged weights: w_avg = w - acc/step.
	avg := map[string]map[string]float64{}
	for _, l := range labels {
		avg[l] = map[string]float64{}
		for f, v := range w[l] {
			avg[l][f] = v - acc[l][f]/step
		}
	}
	return &Perceptron{Labels: labels, weights: avg}
}

// Predict returns the best label and its margin over the runner-up.
func (p *Perceptron) Predict(feats []string) (string, float64) {
	best, second := math.Inf(-1), math.Inf(-1)
	bestLabel := NoneLabel
	for _, l := range p.Labels {
		s := 0.0
		lw := p.weights[l]
		for _, f := range feats {
			s += lw[f]
		}
		if s > best {
			second = best
			best, bestLabel = s, l
		} else if s > second {
			second = s
		}
	}
	margin := best - second
	if math.IsInf(margin, 0) {
		margin = 0
	}
	return bestLabel, margin
}

// NaiveBayes is multinomial naive Bayes with add-one smoothing.
type NaiveBayes struct {
	Labels     []string
	prior      map[string]float64 // log prior
	condLog    map[string]map[string]float64
	defaultLog map[string]float64 // log P(unseen feature | label)
}

// TrainNaiveBayes fits the model.
func TrainNaiveBayes(insts []Instance) *NaiveBayes {
	labelCount := map[string]int{}
	featCount := map[string]map[string]int{}
	featTotal := map[string]int{}
	vocab := map[string]bool{}
	for _, in := range insts {
		labelCount[in.Label]++
		if featCount[in.Label] == nil {
			featCount[in.Label] = map[string]int{}
		}
		for _, f := range in.Features {
			featCount[in.Label][f]++
			featTotal[in.Label]++
			vocab[f] = true
		}
	}
	labels := make([]string, 0, len(labelCount))
	for l := range labelCount {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	nb := &NaiveBayes{
		Labels:     labels,
		prior:      map[string]float64{},
		condLog:    map[string]map[string]float64{},
		defaultLog: map[string]float64{},
	}
	v := float64(len(vocab))
	for _, l := range labels {
		nb.prior[l] = math.Log(float64(labelCount[l]) / float64(len(insts)))
		denom := float64(featTotal[l]) + v
		nb.condLog[l] = map[string]float64{}
		for f, c := range featCount[l] {
			nb.condLog[l][f] = math.Log((float64(c) + 1) / denom)
		}
		nb.defaultLog[l] = math.Log(1 / denom)
	}
	return nb
}

// Predict returns the maximum-posterior label and the log-odds margin.
func (nb *NaiveBayes) Predict(feats []string) (string, float64) {
	best, second := math.Inf(-1), math.Inf(-1)
	bestLabel := NoneLabel
	for _, l := range nb.Labels {
		s := nb.prior[l]
		for _, f := range feats {
			if lp, ok := nb.condLog[l][f]; ok {
				s += lp
			} else {
				s += nb.defaultLog[l]
			}
		}
		if s > best {
			second = best
			best, bestLabel = s, l
		} else if s > second {
			second = s
		}
	}
	margin := best - second
	if math.IsInf(margin, 0) {
		margin = 0
	}
	return bestLabel, margin
}

// Model is the common prediction interface of both classifiers.
type Model interface {
	Predict(feats []string) (label string, margin float64)
}

// ExtractWithModel classifies every instance and emits the non-NONE
// predictions as fact candidates. Confidence is a squashed margin.
func ExtractWithModel(insts []Instance, m Model) []extract.Candidate {
	var out []extract.Candidate
	seen := map[string]bool{}
	for _, in := range insts {
		label, margin := m.Predict(in.Features)
		if label == NoneLabel {
			continue
		}
		c := extract.Candidate{
			S: in.S, P: label, O: in.O,
			Confidence: squash(margin),
			Source:     in.Source,
		}
		if !seen[c.Key()] {
			seen[c.Key()] = true
			out = append(out, c)
		}
	}
	return out
}

func squash(x float64) float64 { return 1 - math.Exp(-math.Abs(x)/4)*0.5 }
