// Package distant implements the statistical-learning family of fact
// harvesting (§3): distant supervision. A seed knowledge base labels
// entity-pair co-occurrences in text (pairs with a known relation become
// positive training instances, others negatives), a feature-based
// classifier is trained on these silver labels, and the model then
// extracts facts from unseen sentences — including paraphrases no
// hand-written pattern covers. Two from-scratch classifiers are provided:
// an averaged multi-class perceptron and multinomial naive Bayes.
package distant

import (
	"fmt"
	"strings"

	"kbharvest/internal/extract"
	"kbharvest/internal/parse"
	"kbharvest/internal/text"
)

// NoneLabel marks entity pairs that stand in no known relation.
const NoneLabel = "NONE"

// Featurize renders one (sentence, subject span, object span) pair as a
// feature-string bag: middle unigrams/bigram, flanking words, mention
// distance bucket, ordering, and the dependency path between the mentions.
func Featurize(sent extract.Sentence, a, b extract.Span) []string {
	var feats []string
	first, second := a, b
	inverted := false
	if b.Start < a.Start {
		first, second = b, a
		inverted = true
	}
	if inverted {
		feats = append(feats, "order:inv")
	} else {
		feats = append(feats, "order:fwd")
	}

	middle := ""
	if second.Start >= first.End {
		middle = sent.Text[first.End:second.Start]
	}
	midWords := maskYears(strings.Fields(strings.ToLower(middle)))
	for _, w := range midWords {
		feats = append(feats, "mid:"+w)
	}
	for i := 0; i+1 < len(midWords); i++ {
		feats = append(feats, "mid2:"+midWords[i]+"_"+midWords[i+1])
	}
	feats = append(feats, "midall:"+strings.Join(midWords, "_"))
	feats = append(feats, fmt.Sprintf("dist:%d", distBucket(len(midWords))))

	// Flanking words.
	beforeWords := strings.Fields(strings.ToLower(sent.Text[:first.Start]))
	if len(beforeWords) > 0 {
		feats = append(feats, "before:"+trimPunct(beforeWords[len(beforeWords)-1]))
	}
	afterWords := strings.Fields(strings.ToLower(sent.Text[second.End:]))
	if len(afterWords) > 0 {
		feats = append(feats, "after:"+trimPunct(afterWords[0]))
	}

	// Dependency path between the mention head tokens.
	tagged := text.Tag(text.Tokenize(sent.Text))
	tree := parse.Parse(tagged)
	ai := tokenIndexAt(tagged, a.End-1)
	bi := tokenIndexAt(tagged, b.End-1)
	if ai >= 0 && bi >= 0 {
		if p := tree.Path(ai, bi); p != "" {
			feats = append(feats, "path:"+p)
		}
	}
	return feats
}

func maskYears(words []string) []string {
	out := make([]string, 0, len(words))
	for _, w := range words {
		w = trimPunct(w)
		if w == "" {
			continue
		}
		if len(w) == 4 && allDigits(w) {
			w = "<year>"
		}
		out = append(out, w)
	}
	return out
}

func trimPunct(w string) string { return strings.Trim(w, ",.;:!?\"'()") }

func allDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return s != ""
}

func distBucket(n int) int {
	switch {
	case n <= 2:
		return 0
	case n <= 5:
		return 1
	case n <= 10:
		return 2
	default:
		return 3
	}
}

// tokenIndexAt finds the token covering byte offset off.
func tokenIndexAt(toks []text.TaggedToken, off int) int {
	for i, t := range toks {
		if off >= t.Start && off < t.End {
			return i
		}
	}
	return -1
}

// Instance is one training/prediction example.
type Instance struct {
	Features []string
	Label    string
	// S, O carry the entity pair for extraction output.
	S, O   string
	Source string
}

// BuildInstances labels every close entity-pair co-occurrence with the
// relation the seed KB asserts between the entities (distant supervision's
// core assumption), or NoneLabel when the KB knows none. keepNone
// subsamples negatives deterministically (every k-th) to balance classes.
func BuildInstances(sents []extract.Sentence, kbLabel func(s, o string) (string, bool), keepNone int) []Instance {
	if keepNone < 1 {
		keepNone = 1
	}
	var out []Instance
	noneSeen := 0
	for _, sent := range sents {
		spans := sent.Spans
		for i := 0; i < len(spans); i++ {
			for j := 0; j < len(spans); j++ {
				if i == j || spans[i].Entity == spans[j].Entity {
					continue
				}
				if spans[j].Start >= spans[i].Start && spans[j].Start-spans[i].End > 80 {
					continue
				}
				if spans[i].Start > spans[j].Start {
					continue // handled when roles swap: featurize both directions via (i,j) with i subject
				}
				// Try both role assignments for this ordered pair.
				for _, roles := range [][2]int{{i, j}, {j, i}} {
					s, o := spans[roles[0]], spans[roles[1]]
					label, ok := kbLabel(s.Entity, o.Entity)
					if !ok {
						label = NoneLabel
					}
					if label == NoneLabel {
						noneSeen++
						if noneSeen%keepNone != 0 {
							continue
						}
					}
					out = append(out, Instance{
						Features: Featurize(sent, s, o),
						Label:    label,
						S:        s.Entity,
						O:        o.Entity,
						Source:   sent.Source,
					})
				}
			}
		}
	}
	return out
}
