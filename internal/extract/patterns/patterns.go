// Package patterns implements pattern-based relational fact harvesting
// (§3 "Harvesting Relational Facts — pattern matching"): hand-written
// surface patterns, infobox harvesting, and DIPRE/Snowball-style pattern
// bootstrapping that alternates between finding patterns from seed facts
// and finding facts from learned patterns.
package patterns

import (
	"sort"
	"strings"

	"kbharvest/internal/extract"
)

// pairContext is one co-occurring mention pair and the text between them.
type pairContext struct {
	s, o   string
	middle string
	source string
}

// maxGap bounds the middle context length in bytes; longer gaps rarely
// express a direct relation.
const maxGap = 60

// contexts enumerates ordered mention pairs with normalized middles.
func contexts(sents []extract.Sentence) []pairContext {
	var out []pairContext
	for _, sent := range sents {
		spans := append([]extract.Span(nil), sent.Spans...)
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		for i := 0; i < len(spans); i++ {
			for j := i + 1; j < len(spans); j++ {
				if spans[j].Start-spans[i].End > maxGap {
					break
				}
				if spans[i].Entity == spans[j].Entity {
					continue
				}
				mid := normalizeMiddle(sent.Text[spans[i].End:spans[j].Start])
				if mid == "" {
					continue
				}
				out = append(out, pairContext{
					s: spans[i].Entity, o: spans[j].Entity,
					middle: mid, source: sent.Source,
				})
			}
		}
	}
	return out
}

// normalizeMiddle lowercases, trims, collapses whitespace, and masks
// four-digit years so patterns generalize over dates.
func normalizeMiddle(s string) string {
	fields := strings.Fields(strings.ToLower(s))
	for i, f := range fields {
		f = strings.Trim(f, ",.;:!?")
		if len(f) == 4 && allDigits(f) {
			f = "<year>"
		}
		fields[i] = f
	}
	// Drop leading/trailing empties from trimming.
	out := fields[:0]
	for _, f := range fields {
		if f != "" {
			out = append(out, f)
		}
	}
	return strings.Join(out, " ")
}

func allDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return s != ""
}

// SurfacePattern is one hand-written extraction rule: a relation, the
// normalized middle string that signals it, and whether subject/object
// order is inverted ("O was founded by S").
type SurfacePattern struct {
	Rel      string
	Middle   string
	Inverted bool
}

// DefaultPatterns are the hand-written rules for the synthetic world's
// relations — the "regular expressions" end of the tutorial's method
// spectrum. Middles use the normalized form produced by normalizeMiddle.
func DefaultPatterns() []SurfacePattern {
	return []SurfacePattern{
		{Rel: "kb:founded", Middle: "founded"},
		{Rel: "kb:founded", Middle: "founded <year>", Inverted: false},
		{Rel: "kb:founded", Middle: "was founded by", Inverted: true},
		{Rel: "kb:founded", Middle: "established"},
		{Rel: "kb:founded", Middle: "started"},
		{Rel: "kb:bornIn", Middle: "was born in"},
		{Rel: "kb:acquired", Middle: "acquired"},
		{Rel: "kb:acquired", Middle: "bought"},
		{Rel: "kb:acquired", Middle: "was acquired by", Inverted: true},
		{Rel: "kb:locatedIn", Middle: "is headquartered in"},
		{Rel: "kb:locatedIn", Middle: "is located in"},
		{Rel: "kb:locatedIn", Middle: "is based in"},
		{Rel: "kb:marriedTo", Middle: "married"},
		{Rel: "kb:marriedTo", Middle: "is married to"},
		{Rel: "kb:graduatedFrom", Middle: "graduated from"},
		{Rel: "kb:graduatedFrom", Middle: "studied at"},
		{Rel: "kb:worksAt", Middle: "worked at"},
		{Rel: "kb:worksAt", Middle: "joined"},
		{Rel: "kb:wonPrize", Middle: "won the"},
		{Rel: "kb:wonPrize", Middle: "received the"},
		{Rel: "kb:ceoOf", Middle: "served as ceo of"},
		{Rel: "kb:ceoOf", Middle: "led"},
		{Rel: "kb:created", Middle: "released the"},
		{Rel: "kb:created", Middle: "unveiled the"},
		{Rel: "kb:created", Middle: "was released by", Inverted: true},
	}
}

// Apply runs surface patterns over sentences. A pattern fires when its
// middle is a prefix of the normalized pair context (so "founded" also
// matches "founded <year>" contexts but not vice versa) — longest match
// wins per pair.
func Apply(sents []extract.Sentence, pats []SurfacePattern) []extract.Candidate {
	ctxs := contexts(sents)
	var out []extract.Candidate
	seen := make(map[string]bool)
	for _, ctx := range ctxs {
		best := -1
		bestLen := -1
		for i, p := range pats {
			if matchesMiddle(ctx.middle, p.Middle) && len(p.Middle) > bestLen {
				best, bestLen = i, len(p.Middle)
			}
		}
		if best < 0 {
			continue
		}
		p := pats[best]
		s, o := ctx.s, ctx.o
		if p.Inverted {
			s, o = o, s
		}
		c := extract.Candidate{S: s, P: p.Rel, O: o, Confidence: 0.9, Source: ctx.source, Middle: ctx.middle}
		if !seen[c.Key()] {
			seen[c.Key()] = true
			out = append(out, c)
		}
	}
	return out
}

// matchesMiddle reports whether the pattern middle matches the context
// middle: exact, or pattern followed by supplementary tokens like
// "in <year>" / "on <date words>".
func matchesMiddle(ctx, pat string) bool {
	if ctx == pat {
		return true
	}
	if !strings.HasPrefix(ctx, pat+" ") {
		return false
	}
	rest := ctx[len(pat)+1:]
	// Accept only date-ish continuations.
	for _, f := range strings.Fields(rest) {
		switch {
		case f == "in", f == "on", f == "<year>":
		case isMonthWord(f), allDigits(f):
		default:
			return false
		}
	}
	return true
}

func isMonthWord(f string) bool {
	switch f {
	case "january", "february", "march", "april", "may", "june", "july",
		"august", "september", "october", "november", "december":
		return true
	}
	return false
}

// Infobox is one semi-structured attribute box from an article.
type Infobox struct {
	Subject string // entity IRI the article is about
	Fields  map[string]string
}

// HarvestInfoboxes turns infobox fields into candidates using a key ->
// relation mapping and a name -> entity resolver. Infobox extraction is
// the high-precision backbone of DBpedia-style harvesting (§2).
func HarvestInfoboxes(boxes []Infobox, relOf func(key string) (rel string, inverted bool, ok bool), resolve func(name string) (string, bool)) []extract.Candidate {
	var out []extract.Candidate
	for _, b := range boxes {
		keys := make([]string, 0, len(b.Fields))
		for k := range b.Fields {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			rel, inverted, ok := relOf(key)
			if !ok {
				continue
			}
			obj, ok := resolve(b.Fields[key])
			if !ok {
				continue
			}
			s, o := b.Subject, obj
			if inverted {
				s, o = o, s
			}
			out = append(out, extract.Candidate{
				S: s, P: rel, O: o, Confidence: 0.95,
				Source: "infobox:" + b.Subject, Middle: key,
			})
		}
	}
	return out
}
