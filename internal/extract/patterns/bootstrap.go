package patterns

import (
	"math"
	"sort"
	"strconv"

	"kbharvest/internal/extract"
)

func log2(x float64) float64 { return math.Log2(x) }

// DIPRE/Snowball-style bootstrapping (§3): starting from a handful of seed
// facts of one relation, alternately (a) collect the textual patterns that
// connect seed pairs and (b) apply confident patterns to harvest new
// pairs, growing the seed set each round. Precision decays and recall
// grows with iterations — the trade-off experiment E3 charts.

// Pair is one (subject, object) instance of the target relation.
type Pair struct{ S, O string }

// LearnedPattern is a bootstrapped pattern with its statistics.
type LearnedPattern struct {
	Middle   string
	Inverted bool
	Positive int // distinct seed pairs matched
	Matches  int // distinct pairs matched overall
	Negative int // matches contradicting a (functional) seed subject
	// Confidence is the pattern's selectivity, Positive/(Matches +
	// Negative): how exclusively the pattern connects seed pairs. Generic
	// contexts that connect many non-seed pairs score low — the guard
	// against semantic drift.
	Confidence float64
}

// IterationStats records what one bootstrap round produced.
type IterationStats struct {
	Iteration   int
	NewPatterns int
	NewFacts    int
	SeedSize    int
}

// BootstrapConfig tunes the loop.
type BootstrapConfig struct {
	// Iterations is the number of pattern/fact rounds. Default 3.
	Iterations int
	// MinPatternSupport is the minimum distinct seed pairs a pattern
	// must match. Default 2.
	MinPatternSupport int
	// MinPatternConfidence is a selectivity floor; patterns whose seed
	// matches are a tiny fraction of everything they match are rejected
	// outright. Default 0.02.
	MinPatternConfidence float64
	// MaxNewPatterns caps how many new patterns each iteration accepts
	// (highest RlogF score first) — the DIPRE-style dial between
	// conservative (1) and aggressive (many) harvesting. Default 2.
	MaxNewPatterns int
	// FunctionalSubject treats the relation as functional when scoring
	// pattern contradictions (a pattern matching (s, o') where a seed
	// says (s, o) counts negative).
	FunctionalSubject bool
}

// DefaultBootstrapConfig returns the standard settings.
func DefaultBootstrapConfig() BootstrapConfig {
	return BootstrapConfig{Iterations: 3, MinPatternSupport: 2, MinPatternConfidence: 0.02, MaxNewPatterns: 2}
}

// BootstrapResult is the outcome of a run.
type BootstrapResult struct {
	Rel      string
	Patterns []LearnedPattern
	// Facts are all harvested candidates (excluding the input seeds),
	// annotated with the iteration that found them via Source.
	Facts      []extract.Candidate
	Iterations []IterationStats
}

// Bootstrap runs the loop for one relation over the sentence collection.
func Bootstrap(sents []extract.Sentence, rel string, seeds []Pair, cfg BootstrapConfig) BootstrapResult {
	if cfg.Iterations == 0 {
		cfg = DefaultBootstrapConfig()
	}
	ctxs := contexts(sents)
	res := BootstrapResult{Rel: rel}

	seedSet := make(map[Pair]bool)
	seedObj := make(map[string]map[string]bool) // subject -> objects in seeds
	addSeed := func(p Pair) {
		if seedSet[p] {
			return
		}
		seedSet[p] = true
		if seedObj[p.S] == nil {
			seedObj[p.S] = make(map[string]bool)
		}
		seedObj[p.S][p.O] = true
	}
	for _, s := range seeds {
		addSeed(s)
	}

	knownPattern := make(map[string]bool) // middle+dir already accepted
	knownFact := make(map[Pair]bool)

	for iter := 1; iter <= cfg.Iterations; iter++ {
		// (a) Pattern induction: score every (middle, direction) by seed
		// matches.
		type pkey struct {
			middle   string
			inverted bool
		}
		pos := make(map[pkey]map[Pair]bool)
		all := make(map[pkey]map[Pair]bool)
		neg := make(map[pkey]int)
		for _, ctx := range ctxs {
			for _, inv := range []bool{false, true} {
				s, o := ctx.s, ctx.o
				if inv {
					s, o = o, s
				}
				k := pkey{ctx.middle, inv}
				if all[k] == nil {
					all[k] = make(map[Pair]bool)
				}
				all[k][Pair{s, o}] = true
				if seedSet[Pair{s, o}] {
					if pos[k] == nil {
						pos[k] = make(map[Pair]bool)
					}
					pos[k][Pair{s, o}] = true
				} else if cfg.FunctionalSubject && seedObj[s] != nil && !seedObj[s][o] {
					neg[k]++
				}
			}
		}
		// Rank candidate patterns by RlogF (Riloff): selectivity times
		// log of seed support — high-support, seed-exclusive contexts
		// first. Accept the top MaxNewPatterns above the floors.
		type scored struct {
			k     pkey
			lp    LearnedPattern
			rlogf float64
		}
		var ranked []scored
		for k, pairs := range pos {
			if len(pairs) < cfg.MinPatternSupport {
				continue
			}
			conf := float64(len(pairs)) / float64(len(all[k])+neg[k])
			if conf < cfg.MinPatternConfidence {
				continue
			}
			if knownPattern[k.middle+"|"+boolStr(k.inverted)] {
				continue
			}
			ranked = append(ranked, scored{
				k: k,
				lp: LearnedPattern{
					Middle: k.middle, Inverted: k.inverted,
					Positive: len(pairs), Matches: len(all[k]), Negative: neg[k], Confidence: conf,
				},
				rlogf: conf * log2(float64(len(pairs))+1),
			})
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].rlogf != ranked[j].rlogf {
				return ranked[i].rlogf > ranked[j].rlogf
			}
			if ranked[i].k.middle != ranked[j].k.middle {
				return ranked[i].k.middle < ranked[j].k.middle
			}
			return !ranked[i].k.inverted
		})
		maxNew := cfg.MaxNewPatterns
		if maxNew <= 0 {
			maxNew = 2
		}
		newPatterns := 0
		for _, sc := range ranked {
			if newPatterns >= maxNew {
				break
			}
			knownPattern[sc.k.middle+"|"+boolStr(sc.k.inverted)] = true
			newPatterns++
			res.Patterns = append(res.Patterns, sc.lp)
		}

		// (b) Fact harvesting: apply every accepted pattern (all learned
		// so far) to all contexts.
		newFacts := 0
		for _, ctx := range ctxs {
			for _, p := range res.Patterns {
				if ctx.middle != p.Middle {
					continue
				}
				s, o := ctx.s, ctx.o
				if p.Inverted {
					s, o = o, s
				}
				pair := Pair{s, o}
				if seedSet[pair] || knownFact[pair] {
					continue
				}
				knownFact[pair] = true
				newFacts++
				res.Facts = append(res.Facts, extract.Candidate{
					S: s, P: rel, O: o,
					Confidence: p.Confidence,
					Source:     itoaIter(iter),
					Middle:     p.Middle,
				})
			}
		}
		// Grow seeds with this round's harvest.
		for p := range knownFact {
			addSeed(p)
		}
		res.Iterations = append(res.Iterations, IterationStats{
			Iteration: iter, NewPatterns: newPatterns, NewFacts: newFacts, SeedSize: len(seedSet),
		})
		if newPatterns == 0 && newFacts == 0 {
			break
		}
	}
	sort.Slice(res.Patterns, func(i, j int) bool {
		if res.Patterns[i].Confidence != res.Patterns[j].Confidence {
			return res.Patterns[i].Confidence > res.Patterns[j].Confidence
		}
		return res.Patterns[i].Middle < res.Patterns[j].Middle
	})
	return res
}

func boolStr(b bool) string {
	if b {
		return "inv"
	}
	return "fwd"
}

func itoaIter(i int) string {
	return "bootstrap:iter" + strconv.Itoa(i)
}
