package patterns

import (
	"strings"
	"testing"

	"kbharvest/internal/eval"
	"kbharvest/internal/extract"
	"kbharvest/internal/synth"
)

// sentence builds an extract.Sentence by locating the given names in text.
func sentence(textStr string, entities map[string]string) extract.Sentence {
	s := extract.Sentence{Text: textStr, Source: "test"}
	for name, iri := range entities {
		if i := strings.Index(textStr, name); i >= 0 {
			s.Spans = append(s.Spans, extract.Span{Start: i, End: i + len(name), Entity: iri})
		}
	}
	return s
}

func TestApplySimplePattern(t *testing.T) {
	sents := []extract.Sentence{
		sentence("Alice Foo founded Acme Systems in 1976.", map[string]string{
			"Alice Foo": "kb:Alice", "Acme Systems": "kb:Acme",
		}),
	}
	cands := Apply(sents, DefaultPatterns())
	if len(cands) != 1 {
		t.Fatalf("candidates = %+v", cands)
	}
	c := cands[0]
	if c.S != "kb:Alice" || c.P != "kb:founded" || c.O != "kb:Acme" {
		t.Errorf("candidate = %+v", c)
	}
}

func TestApplyInvertedPattern(t *testing.T) {
	sents := []extract.Sentence{
		sentence("Acme Systems was founded by Alice Foo in 1976.", map[string]string{
			"Alice Foo": "kb:Alice", "Acme Systems": "kb:Acme",
		}),
	}
	cands := Apply(sents, DefaultPatterns())
	if len(cands) != 1 || cands[0].S != "kb:Alice" || cands[0].O != "kb:Acme" {
		t.Fatalf("candidates = %+v", cands)
	}
}

func TestApplyNoMatch(t *testing.T) {
	sents := []extract.Sentence{
		sentence("Alice Foo admired Acme Systems deeply.", map[string]string{
			"Alice Foo": "kb:Alice", "Acme Systems": "kb:Acme",
		}),
	}
	if cands := Apply(sents, DefaultPatterns()); len(cands) != 0 {
		t.Errorf("unexpected candidates %+v", cands)
	}
}

func TestApplyDedupes(t *testing.T) {
	s := sentence("Alice Foo founded Acme Systems in 1976.", map[string]string{
		"Alice Foo": "kb:Alice", "Acme Systems": "kb:Acme",
	})
	cands := Apply([]extract.Sentence{s, s, s}, DefaultPatterns())
	if len(cands) != 1 {
		t.Errorf("dedup failed: %d candidates", len(cands))
	}
}

func TestNormalizeMiddle(t *testing.T) {
	cases := map[string]string{
		" founded ":          "founded",
		" was Founded by ":   "was founded by",
		" founded  in 1976 ": "founded in <year>",
		" acquired, ":        "acquired",
	}
	for in, want := range cases {
		if got := normalizeMiddle(in); got != want {
			t.Errorf("normalizeMiddle(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMatchesMiddle(t *testing.T) {
	cases := []struct {
		ctx, pat string
		want     bool
	}{
		{"founded", "founded", true},
		{"founded in <year>", "founded", true},
		{"founded on january 5 1976", "founded", true},
		{"founded the company known as", "founded", false},
		{"was founded by", "founded", false},
		{"acquired", "founded", false},
	}
	for _, c := range cases {
		if got := matchesMiddle(c.ctx, c.pat); got != c.want {
			t.Errorf("matchesMiddle(%q, %q) = %v", c.ctx, c.pat, got)
		}
	}
}

func TestMaxGapRespected(t *testing.T) {
	long := strings.Repeat("waffle ", 15)
	sents := []extract.Sentence{
		sentence("Alice Foo founded "+long+"Acme Systems.", map[string]string{
			"Alice Foo": "kb:Alice", "Acme Systems": "kb:Acme",
		}),
	}
	if cands := Apply(sents, DefaultPatterns()); len(cands) != 0 {
		t.Errorf("gap beyond maxGap should not match: %+v", cands)
	}
}

func TestHarvestInfoboxes(t *testing.T) {
	boxes := []Infobox{
		{Subject: "kb:Alice", Fields: map[string]string{
			"birth_place": "Springfield",
			"unknown_key": "whatever",
		}},
	}
	resolve := func(name string) (string, bool) {
		if name == "Springfield" {
			return "kb:Springfield", true
		}
		return "", false
	}
	cands := HarvestInfoboxes(boxes, synth.InfoboxRelation, resolve)
	if len(cands) != 1 {
		t.Fatalf("candidates = %+v", cands)
	}
	if cands[0].S != "kb:Alice" || cands[0].P != "kb:bornIn" || cands[0].O != "kb:Springfield" {
		t.Errorf("candidate = %+v", cands[0])
	}
}

// corpusSentences adapts the synthetic corpus for extractor tests.
func corpusSentences(c *synth.Corpus) []extract.Sentence {
	var docs []extract.Doc
	for _, a := range c.Articles {
		d := extract.Doc{Text: a.Text, Source: a.ID}
		for _, m := range a.Mentions {
			d.Mentions = append(d.Mentions, extract.Span{Start: m.Start, End: m.End, Entity: m.Entity})
		}
		docs = append(docs, d)
	}
	return extract.SplitDocs(docs)
}

func testWorld(seed int64) (*synth.World, []extract.Sentence) {
	w := synth.Generate(synth.Config{
		People: 80, Companies: 20, Cities: 10, Countries: 3,
		Universities: 8, Products: 15, Prizes: 5,
	}, seed)
	corpus := synth.BuildCorpus(w, synth.DefaultCorpusOptions())
	return w, corpusSentences(corpus)
}

func TestApplyOnSyntheticCorpus(t *testing.T) {
	w, sents := testWorld(31)
	cands := Apply(sents, DefaultPatterns())
	if len(cands) < 50 {
		t.Fatalf("only %d candidates from corpus", len(cands))
	}
	correct := 0
	for _, c := range cands {
		if w.HasFact(c.S, c.P, c.O) {
			correct++
		}
	}
	precision := float64(correct) / float64(len(cands))
	if precision < 0.85 {
		t.Errorf("pattern precision on corpus = %.3f (%d/%d)", precision, correct, len(cands))
	}
}

func TestBootstrapLearnsKnownPatterns(t *testing.T) {
	w, sents := testWorld(32)
	// Seeds: first 5 founded facts.
	var seeds []Pair
	for _, f := range w.FactsOf(synth.RelFounded) {
		seeds = append(seeds, Pair{f.S, f.O})
		if len(seeds) == 5 {
			break
		}
	}
	res := Bootstrap(sents, synth.RelFounded, seeds, BootstrapConfig{
		Iterations: 3, MinPatternSupport: 2, MinPatternConfidence: 0.02, MaxNewPatterns: 2,
	})
	if len(res.Patterns) == 0 {
		t.Fatal("no patterns learned")
	}
	middles := map[string]bool{}
	for _, p := range res.Patterns {
		middles[p.Middle] = true
	}
	found := false
	for m := range middles {
		if strings.Contains(m, "founded") || strings.Contains(m, "established") || strings.Contains(m, "started") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected founded-style patterns, got %v", middles)
	}
}

func TestBootstrapPrecisionRecallTradeoff(t *testing.T) {
	w, sents := testWorld(33)
	gold := map[Pair]bool{}
	for _, f := range w.FactsOf(synth.RelFounded) {
		gold[Pair{f.S, f.O}] = true
	}
	var seeds []Pair
	for p := range gold {
		seeds = append(seeds, p)
		if len(seeds) == 5 {
			break
		}
	}
	scoreAt := func(iters int) eval.PRF {
		// Conservative dial: one new pattern per round, so round 1 is the
		// single most reliable pattern and drift arrives only later.
		res := Bootstrap(sents, synth.RelFounded, seeds, BootstrapConfig{
			Iterations: iters, MinPatternSupport: 2, MinPatternConfidence: 0.02, MaxNewPatterns: 1,
		})
		pred := map[string]bool{}
		goldSet := map[string]bool{}
		for _, c := range res.Facts {
			pred[c.S+"|"+c.O] = true
		}
		for p := range gold {
			goldSet[p.S+"|"+p.O] = true
		}
		return eval.SetPRF(pred, goldSet)
	}
	first := scoreAt(1)
	third := scoreAt(3)
	// The DIPRE trade-off: the first round is precise; later rounds add
	// recall and bleed precision (semantic drift).
	if first.Precision < 0.8 {
		t.Errorf("iteration-1 precision = %v", first)
	}
	if third.Recall < first.Recall {
		t.Errorf("recall should not shrink: %v -> %v", first.Recall, third.Recall)
	}
	if third.Precision > first.Precision {
		t.Errorf("precision should decay or hold: %v -> %v", first.Precision, third.Precision)
	}
	if third.TP < 5 {
		t.Errorf("bootstrap recall too low: %v", third)
	}
	// Iterations recorded and seeds grow monotonically.
	res := Bootstrap(sents, synth.RelFounded, seeds, BootstrapConfig{
		Iterations: 3, MinPatternSupport: 2, MinPatternConfidence: 0.02, MaxNewPatterns: 2,
	})
	if len(res.Iterations) == 0 {
		t.Fatal("no iteration stats")
	}
	for i := 1; i < len(res.Iterations); i++ {
		if res.Iterations[i].SeedSize < res.Iterations[i-1].SeedSize {
			t.Error("seed set shrank")
		}
	}
}

func TestBootstrapEmptySeeds(t *testing.T) {
	_, sents := testWorld(34)
	res := Bootstrap(sents, synth.RelFounded, nil, DefaultBootstrapConfig())
	if len(res.Facts) != 0 || len(res.Patterns) != 0 {
		t.Errorf("empty seeds should learn nothing: %+v", res)
	}
}

func TestBootstrapStopsWhenDry(t *testing.T) {
	// A tiny corpus where everything is found in round 1; rounds 2+
	// should terminate early.
	sents := []extract.Sentence{
		sentence("A Foo founded B Corp.", map[string]string{"A Foo": "kb:A", "B Corp": "kb:B"}),
		sentence("C Foo founded D Corp.", map[string]string{"C Foo": "kb:C", "D Corp": "kb:D"}),
	}
	res := Bootstrap(sents, "kb:founded", []Pair{{"kb:A", "kb:B"}, {"kb:C", "kb:D"}}, BootstrapConfig{
		Iterations: 10, MinPatternSupport: 2, MinPatternConfidence: 0.5,
	})
	if len(res.Iterations) >= 10 {
		t.Errorf("bootstrap did not stop early: %d iterations", len(res.Iterations))
	}
}
