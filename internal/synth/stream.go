package synth

import (
	"fmt"
	"math/rand"

	"kbharvest/internal/temporal"
)

// Social-media stream generator for the tutorial's motivating analytics
// example: "track and compare two entities in social media over an
// extended timespan (e.g., the Apple iPhone vs. Samsung Galaxy families)"
// (§4). Posts mention products either by full name ("Nova 3") or by the
// ambiguous line word ("Nova"), which string matching cannot attribute to
// a specific product generation but NED can.

// Post is one timestamped social-media message.
type Post struct {
	Day      int // day number (see temporal.Epoch)
	Text     string
	Mentions []Mention // gold product mentions
}

// StreamOptions configure the generator.
type StreamOptions struct {
	// Lines are the product line names to cover (default: the two most
	// populous lines in the world).
	Lines []string
	// Posts is the total number of posts. Default 2000.
	Posts int
	// StartDay / Days bound the timespan. Defaults: 2012-01-01, 360 days.
	StartDay int
	Days     int
	Seed     int64
}

// DefaultStreamOptions picks the two biggest product lines.
func DefaultStreamOptions(w *World) StreamOptions {
	counts := make(map[string]int)
	for _, line := range w.ProductLine {
		counts[line]++
	}
	best, second := "", ""
	for line, n := range counts {
		switch {
		case best == "" || n > counts[best] || (n == counts[best] && line < best):
			second = best
			best = line
		case second == "" || n > counts[second] || (n == counts[second] && line < second):
			second = line
		}
	}
	return StreamOptions{
		Lines:    []string{best, second},
		Posts:    2000,
		StartDay: temporal.Date{Year: 2012, Month: 1, Day: 1}.DayNum(),
		Days:     360,
		Seed:     99,
	}
}

var postTemplates = []string{
	"Just got the new %s and I love it!",
	"My %s battery died again today.",
	"Is the %s worth the upgrade?",
	"The camera on the %s is amazing.",
	"Thinking about switching to the %s.",
	"%s keeps crashing, so frustrating.",
	"Unboxing my %s later today!",
	"The %s display is gorgeous.",
}

var fillerPosts = []string{
	"Lunch was great today.",
	"Traffic is terrible this morning.",
	"Watching the game tonight with friends.",
	"New coffee place opened downtown.",
}

// GenerateStream renders the post stream. Per post: 70% mention a product
// from one of the tracked lines (half by ambiguous line word, half by full
// name), 30% are filler noise.
func GenerateStream(w *World, opt StreamOptions) []Post {
	if opt.Posts == 0 {
		def := DefaultStreamOptions(w)
		if len(opt.Lines) == 0 {
			opt.Lines = def.Lines
		}
		opt.Posts = def.Posts
		opt.StartDay = def.StartDay
		opt.Days = def.Days
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	// Collect tracked products per line.
	byLine := make(map[string][]*Entity)
	for _, p := range w.Products {
		byLine[w.ProductLine[p.ID]] = append(byLine[w.ProductLine[p.ID]], p)
	}
	posts := make([]Post, 0, opt.Posts)
	for i := 0; i < opt.Posts; i++ {
		day := opt.StartDay + rng.Intn(opt.Days)
		if rng.Float64() < 0.3 {
			posts = append(posts, Post{Day: day, Text: fillerPosts[rng.Intn(len(fillerPosts))]})
			continue
		}
		line := opt.Lines[rng.Intn(len(opt.Lines))]
		prods := byLine[line]
		if len(prods) == 0 {
			posts = append(posts, Post{Day: day, Text: fillerPosts[rng.Intn(len(fillerPosts))]})
			continue
		}
		prod := prods[rng.Intn(len(prods))]
		surface := prod.Name
		if rng.Intn(2) == 0 {
			// Ambiguous bare-brand mention. Realistically, chatter about
			// "the Nova" mostly means the latest generation on the
			// market, so bias the referent to the most recently released
			// product of the line as of the post day.
			surface = line
			if latest, ok := latestReleasedBefore(w, prods, day); ok && rng.Float64() < 0.7 {
				prod = latest
			}
		}
		tmpl := postTemplates[rng.Intn(len(postTemplates))]
		// Build text and mention offsets.
		idx := indexOfPct(tmpl)
		text := fmt.Sprintf(tmpl, surface)
		posts = append(posts, Post{
			Day:  day,
			Text: text,
			Mentions: []Mention{{
				Start: idx, End: idx + len(surface), Surface: surface, Entity: prod.ID,
			}},
		})
	}
	return posts
}

// ReleaseDay returns the day a product was released (the kb:created
// event date), or false if unknown.
func (w *World) ReleaseDay(productID string) (int, bool) {
	for _, f := range w.FactsOf(RelCreated) {
		if f.O == productID {
			return f.Time.Begin, true
		}
	}
	return 0, false
}

// latestReleasedBefore picks the line's most recently released product as
// of the given day (nil if none released yet).
func latestReleasedBefore(w *World, prods []*Entity, day int) (*Entity, bool) {
	var best *Entity
	bestDay := -1 << 62
	for _, p := range prods {
		rd, ok := w.ReleaseDay(p.ID)
		if !ok || rd > day {
			continue
		}
		if rd > bestDay {
			best, bestDay = p, rd
		}
	}
	return best, best != nil
}

func indexOfPct(tmpl string) int {
	for i := 0; i+1 < len(tmpl); i++ {
		if tmpl[i] == '%' && tmpl[i+1] == 's' {
			return i
		}
	}
	return 0
}
