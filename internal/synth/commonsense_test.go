package synth

import (
	"strings"
	"testing"
)

func TestBuildCommonsensePages(t *testing.T) {
	pages, gold := BuildCommonsensePages(5)
	if len(pages) != len(conceptProperties)+1 {
		t.Fatalf("pages = %d", len(pages))
	}
	if len(gold.Properties) != len(conceptProperties) {
		t.Fatalf("gold concepts = %d", len(gold.Properties))
	}
	if len(gold.Parts) != len(partWhole) {
		t.Fatalf("gold parts = %d", len(gold.Parts))
	}
	// Every gold property literally appears in some page text.
	all := ""
	for _, p := range pages {
		all += p.Text + " "
	}
	for concept, props := range gold.Properties {
		if !strings.Contains(all, Plural(concept)) &&
			!strings.Contains(strings.ToLower(all), Plural(concept)) {
			t.Errorf("concept %q not rendered", concept)
		}
		for prop := range props {
			if !strings.Contains(all, prop) {
				t.Errorf("property %q not rendered", prop)
			}
		}
	}
	for pw := range gold.Parts {
		if !strings.Contains(all, pw[0]+" of a "+pw[1]) {
			t.Errorf("part pair %v not rendered", pw)
		}
	}
}

func TestBuildCommonsensePagesDeterministic(t *testing.T) {
	a, _ := BuildCommonsensePages(5)
	b, _ := BuildCommonsensePages(5)
	for i := range a {
		if a[i].Text != b[i].Text {
			t.Fatalf("page %d differs between same-seed builds", i)
		}
	}
}
