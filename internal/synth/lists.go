package synth

import (
	"math/rand"
	"sort"
	"strings"
)

// Web-style pages for the set-expansion and Hearst-pattern experiments
// (§2 "Web-based approaches that use techniques like set expansion").
// Each page is either an HTML-ish list of co-class entities or running
// text with "C such as A, B, and C" sentences.

// WebPage is one synthetic web document.
type WebPage struct {
	URL  string
	Text string
	// Items are the list entries in order (empty for prose pages).
	Items []string
}

// BuildWebPages renders list and Hearst pages over the world's classes.
// pagesPerClass controls corpus size; every page draws a random co-class
// subset, so different pages overlap partially — the redundancy signal set
// expansion exploits.
func BuildWebPages(w *World, pagesPerClass int, seed int64) []WebPage {
	rng := rand.New(rand.NewSource(seed))
	var pages []WebPage
	groups := classGroups(w)
	var classes []string
	for c := range groups {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, class := range classes {
		members := groups[class]
		if len(members) < 4 {
			continue
		}
		noun := classNoun[class]
		for p := 0; p < pagesPerClass; p++ {
			n := 4 + rng.Intn(5)
			if n > len(members) {
				n = len(members)
			}
			perm := rng.Perm(len(members))
			items := make([]string, n)
			for i := 0; i < n; i++ {
				items[i] = members[perm[i]].Name
			}
			if p%2 == 0 {
				pages = append(pages, listPage(class, noun, items, p))
			} else {
				pages = append(pages, hearstPage(class, noun, items, p, rng))
			}
		}
	}
	return pages
}

func classGroups(w *World) map[string][]*Entity {
	groups := make(map[string][]*Entity)
	for _, e := range w.Entities {
		groups[e.Class] = append(groups[e.Class], e)
	}
	return groups
}

func listPage(class, noun string, items []string, idx int) WebPage {
	var b strings.Builder
	b.WriteString("Notable " + Plural(noun) + ":\n")
	for _, it := range items {
		b.WriteString("* " + it + "\n")
	}
	return WebPage{
		URL:   "web://" + strings.ReplaceAll(class, ":", "/") + "/list-" + itoa(idx),
		Text:  b.String(),
		Items: items,
	}
}

func hearstPage(class, noun string, items []string, idx int, rng *rand.Rand) WebPage {
	patterns := []string{
		"%s such as %s are widely discussed.",
		"Many %s, including %s, attracted attention.",
		"%s like %s shaped their field.",
	}
	var b strings.Builder
	// Two Hearst sentences per page over item subsets.
	for s := 0; s < 2 && len(items) >= 2; s++ {
		k := 2 + rng.Intn(len(items)-1)
		if k > len(items) {
			k = len(items)
		}
		list := enumerate(items[:k])
		p := patterns[rng.Intn(len(patterns))]
		plural := Plural(noun)
		sentence := strings.Replace(p, "%s", strings.ToUpper(plural[:1])+plural[1:], 1)
		sentence = strings.Replace(sentence, "%s", list, 1)
		b.WriteString(sentence + " ")
		// Rotate items so the second sentence differs.
		items = append(items[1:], items[0])
	}
	return WebPage{
		URL:  "web://" + strings.ReplaceAll(class, ":", "/") + "/prose-" + itoa(idx),
		Text: b.String(),
	}
}

// enumerate renders "A, B, and C".
func enumerate(items []string) string {
	switch len(items) {
	case 0:
		return ""
	case 1:
		return items[0]
	case 2:
		return items[0] + " and " + items[1]
	default:
		return strings.Join(items[:len(items)-1], ", ") + ", and " + items[len(items)-1]
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
