package synth

import (
	"math/rand"
	"strings"
)

// Commonsense corpus: short texts stating concept-level knowledge — the
// orthogonal knowledge dimension §3 of the tutorial calls out ("apples
// can be red, green, juicy, sweet, sour, but not fast or funny";
// "mouthpiece partOf clarinet"). The generator renders a fixed gold
// inventory of concept properties and part-whole pairs into hedged
// natural-language sentences plus distractors, so property extraction can
// be scored exactly.

// conceptProperties is the gold concept -> properties inventory, straight
// from the register of examples the tutorial and ConceptNet use.
var conceptProperties = map[string][]string{
	"apple":     {"red", "green", "juicy", "sweet", "sour"},
	"clarinet":  {"cylindrical", "wooden", "delicate"},
	"lemon":     {"yellow", "sour", "juicy"},
	"snowflake": {"white", "cold", "fragile"},
	"diamond":   {"hard", "expensive", "transparent"},
	"feather":   {"light", "soft"},
	"oven":      {"hot", "heavy"},
	"river":     {"long", "wet"},
	"elephant":  {"large", "gray", "heavy"},
	"violin":    {"wooden", "fragile", "expensive"},
}

// partWhole is the gold part-of inventory.
var partWhole = [][2]string{
	{"mouthpiece", "clarinet"},
	{"keel", "ship"},
	{"trunk", "elephant"},
	{"peel", "lemon"},
	{"core", "apple"},
	{"string", "violin"},
	{"door", "oven"},
	{"delta", "river"},
}

// CommonsenseGold bundles the ground truth for scoring.
type CommonsenseGold struct {
	// Properties maps concept -> set of gold properties.
	Properties map[string]map[string]bool
	// Parts holds gold (part, whole) pairs.
	Parts map[[2]string]bool
}

// BuildCommonsensePages renders the inventory as prose pages. Each
// property is stated 1-3 times across pages with varied templates; each
// page also carries distractor sentences that must not yield facts.
func BuildCommonsensePages(seed int64) ([]WebPage, CommonsenseGold) {
	rng := rand.New(rand.NewSource(seed))
	gold := CommonsenseGold{
		Properties: map[string]map[string]bool{},
		Parts:      map[[2]string]bool{},
	}
	var concepts []string
	for c := range conceptProperties {
		concepts = append(concepts, c)
	}
	// Deterministic order.
	for i := 0; i < len(concepts); i++ {
		for j := i + 1; j < len(concepts); j++ {
			if concepts[j] < concepts[i] {
				concepts[i], concepts[j] = concepts[j], concepts[i]
			}
		}
	}
	var pages []WebPage
	for pi, concept := range concepts {
		props := conceptProperties[concept]
		gold.Properties[concept] = map[string]bool{}
		for _, p := range props {
			gold.Properties[concept][p] = true
		}
		var b strings.Builder
		plural := Plural(concept)
		cap := strings.ToUpper(plural[:1]) + plural[1:]
		switch rng.Intn(3) {
		case 0:
			b.WriteString(cap + " can be " + enumerate(props) + ". ")
		case 1:
			b.WriteString(cap + " are usually " + enumerate(props) + ". ")
		default:
			// Split into two statements.
			half := len(props) / 2
			if half == 0 {
				half = 1
			}
			b.WriteString(cap + " can be " + enumerate(props[:half]) + ". ")
			if half < len(props) {
				b.WriteString(cap + " are often " + enumerate(props[half:]) + ". ")
			}
		}
		// Distractors: sentences about named entities and actions that
		// must not produce concept properties.
		b.WriteString("Everyone knows that Daniel visited the market on Tuesday. ")
		b.WriteString("The shop sells them in every town. ")
		pages = append(pages, WebPage{
			URL:  "web://commonsense/page-" + itoa(pi),
			Text: b.String(),
		})
	}
	// Part-whole page.
	var pb strings.Builder
	for _, pw := range partWhole {
		gold.Parts[pw] = true
		switch rng.Intn(2) {
		case 0:
			pb.WriteString("The " + pw[0] + " of a " + pw[1] + " needs care. ")
		default:
			pb.WriteString("Experts examined the " + pw[0] + " of a " + pw[1] + " closely. ")
		}
	}
	pages = append(pages, WebPage{URL: "web://commonsense/parts", Text: pb.String()})
	return pages, gold
}
