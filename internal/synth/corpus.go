package synth

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"kbharvest/internal/core"
	"kbharvest/internal/temporal"
)

// Mention is one entity mention inside an article or post, with its gold
// referent — the supervision signal for the NED experiments (§4).
type Mention struct {
	Start, End int    // byte offsets into the containing text
	Surface    string // the mention string as rendered
	Entity     string // gold entity IRI
	Linked     bool   // rendered as a hyperlink (first mention, usually)
}

// Article is one synthetic Wikipedia-style page.
type Article struct {
	ID         string // "art:<entity>"
	Title      string
	Subject    string // entity IRI the page describes
	Categories []string
	Infobox    map[string]string
	Text       string
	Mentions   []Mention
	Links      []string // outgoing hyperlink targets (entity IRIs)
}

// Corpus is the full article collection plus the category graph.
type Corpus struct {
	Articles  []*Article
	BySubject map[string]*Article
	// CategoryParents maps a category to its parent categories, like
	// Wikipedia's category system (input to taxonomy induction, §2).
	CategoryParents map[string][]string
}

// textBuilder accumulates text while recording mention offsets.
type textBuilder struct {
	b        strings.Builder
	mentions []Mention
	links    map[string]bool
	linked   map[string]bool // entity -> already linked once
	rng      *rand.Rand
}

func newTextBuilder(rng *rand.Rand) *textBuilder {
	return &textBuilder{links: make(map[string]bool), linked: make(map[string]bool), rng: rng}
}

func (tb *textBuilder) raw(s string) { tb.b.WriteString(s) }

// entity emits a mention of e. The first mention of an entity uses its
// canonical name and becomes a hyperlink; later mentions fall back to an
// ambiguous alias with probability ambig.
func (tb *textBuilder) entity(e *Entity, ambig float64) {
	surface := e.Name
	link := false
	if !tb.linked[e.ID] {
		tb.linked[e.ID] = true
		link = true
		tb.links[e.ID] = true
	} else if len(e.Aliases) > 0 && tb.rng.Float64() < ambig {
		surface = e.Aliases[tb.rng.Intn(len(e.Aliases))]
	}
	start := tb.b.Len()
	tb.b.WriteString(surface)
	tb.mentions = append(tb.mentions, Mention{
		Start: start, End: tb.b.Len(), Surface: surface, Entity: e.ID, Linked: link,
	})
}

// ambigMention forces an alias mention (used to guarantee hard NED cases).
func (tb *textBuilder) ambigMention(e *Entity) {
	surface := e.Name
	if len(e.Aliases) > 0 {
		surface = e.Aliases[0]
	}
	start := tb.b.Len()
	tb.b.WriteString(surface)
	tb.mentions = append(tb.mentions, Mention{
		Start: start, End: tb.b.Len(), Surface: surface, Entity: e.ID,
	})
}

// CorpusOptions tune the article renderer.
type CorpusOptions struct {
	// NoiseRate is the probability that an article gains a corrupted
	// fact sentence (wrong object), the errors consistency reasoning
	// must clean up (§3). Default 0.08.
	NoiseRate float64
	// AliasRate is the probability that a repeat mention uses an
	// ambiguous alias. Default 0.45.
	AliasRate float64
	// InfoboxRate is the probability a fact appears in the infobox.
	// Default 0.7.
	InfoboxRate float64
	Seed        int64
}

// DefaultCorpusOptions returns the standard settings.
func DefaultCorpusOptions() CorpusOptions {
	return CorpusOptions{NoiseRate: 0.08, AliasRate: 0.45, InfoboxRate: 0.7, Seed: 42}
}

// classNoun maps a class IRI to its singular English noun.
var classNoun = map[string]string{
	ClassPhysicist:    "physicist",
	ClassChemist:      "chemist",
	ClassEntrepreneur: "entrepreneur",
	ClassMusician:     "musician",
	ClassScientist:    "scientist",
	ClassPerson:       "person",
	ClassCompany:      "company",
	ClassUniversity:   "university",
	ClassCity:         "city",
	ClassCountry:      "country",
	ClassSmartphone:   "smartphone",
	ClassProduct:      "product",
	ClassAward:        "award",
	ClassOrganization: "organization",
	ClassLocation:     "location",
	ClassArtifact:     "artifact",
	ClassEntity:       "entity",
}

// ClassNoun exposes the class -> noun mapping (used by taxonomy eval).
func ClassNoun(class string) string { return classNoun[class] }

// categoryForClass renders the conceptual category name of a class
// ("kb:physicist" -> "Physicists").
func categoryForClass(class string) string {
	n := classNoun[class]
	if n == "" {
		return ""
	}
	return pluralizeTitle(n)
}

// CategoryForClass exposes categoryForClass for evaluation code.
func CategoryForClass(class string) string { return categoryForClass(class) }

func pluralizeTitle(noun string) string {
	p := Plural(noun)
	return strings.ToUpper(p[:1]) + p[1:]
}

// Plural returns the English plural of a (regular) noun.
func Plural(n string) string {
	switch {
	case strings.HasSuffix(n, "y") && len(n) > 1 && !isVowelByte(n[len(n)-2]):
		return n[:len(n)-1] + "ies"
	case strings.HasSuffix(n, "s"), strings.HasSuffix(n, "x"),
		strings.HasSuffix(n, "ch"), strings.HasSuffix(n, "sh"):
		return n + "es"
	default:
		return n + "s"
	}
}

func isVowelByte(b byte) bool {
	switch b {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}

// adminCategories are maintenance categories that taxonomy induction must
// filter out (they carry no class information).
var adminCategories = []string{
	"Articles with unsourced statements",
	"Articles needing cleanup",
	"Pages with broken file links",
	"Stubs",
	"All article disambiguation pages",
}

// thematicCategories are topic (non-class) categories; their head noun is
// singular, which is the signal the WikiTaxonomy/YAGO heuristic uses to
// reject them.
var thematicCategories = []string{
	"Science", "Technology", "Music", "Industry", "Education", "Commerce",
}

// BuildCorpus renders one article per entity.
func BuildCorpus(w *World, opt CorpusOptions) *Corpus {
	if opt.NoiseRate == 0 && opt.AliasRate == 0 && opt.InfoboxRate == 0 {
		opt = DefaultCorpusOptions()
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	c := &Corpus{
		BySubject:       make(map[string]*Article),
		CategoryParents: make(map[string][]string),
	}
	c.buildCategoryGraph(w)
	for _, e := range w.Entities {
		a := renderArticle(w, e, opt, rng)
		c.Articles = append(c.Articles, a)
		c.BySubject[e.ID] = a
	}
	return c
}

// buildCategoryGraph mirrors the gold taxonomy as a category hierarchy and
// adds thematic/administrative parents as noise.
func (c *Corpus) buildCategoryGraph(w *World) {
	for _, pair := range w.TaxonomyPairs() {
		sub, super := categoryForClass(pair[0]), categoryForClass(pair[1])
		if sub == "" || super == "" {
			continue
		}
		c.CategoryParents[sub] = append(c.CategoryParents[sub], super)
	}
	// Thematic parents (must be filtered by induction).
	c.CategoryParents[categoryForClass(ClassPhysicist)] = append(c.CategoryParents[categoryForClass(ClassPhysicist)], "Science")
	c.CategoryParents[categoryForClass(ClassChemist)] = append(c.CategoryParents[categoryForClass(ClassChemist)], "Science")
	c.CategoryParents[categoryForClass(ClassCompany)] = append(c.CategoryParents[categoryForClass(ClassCompany)], "Commerce")
	c.CategoryParents[categoryForClass(ClassUniversity)] = append(c.CategoryParents[categoryForClass(ClassUniversity)], "Education")
	c.CategoryParents[categoryForClass(ClassMusician)] = append(c.CategoryParents[categoryForClass(ClassMusician)], "Music")
	c.CategoryParents[categoryForClass(ClassSmartphone)] = append(c.CategoryParents[categoryForClass(ClassSmartphone)], "Technology")
	for cat, parents := range c.CategoryParents {
		sort.Strings(parents)
		c.CategoryParents[cat] = parents
	}
}

func renderArticle(w *World, e *Entity, opt CorpusOptions, rng *rand.Rand) *Article {
	a := &Article{
		ID:      "art:" + e.ID,
		Title:   e.Name,
		Subject: e.ID,
		Infobox: make(map[string]string),
	}
	tb := newTextBuilder(rng)
	tb.linked[e.ID] = true // the subject itself is not a link

	// Categories: conceptual (class), thematic, administrative noise.
	a.Categories = append(a.Categories, categoryForClass(e.Class))
	if e.Class == ClassPhysicist || e.Class == ClassChemist {
		a.Categories = append(a.Categories, categoryForClass(ClassScientist))
	}
	if rng.Float64() < 0.5 {
		a.Categories = append(a.Categories, thematicCategories[rng.Intn(len(thematicCategories))])
	}
	if rng.Float64() < 0.4 {
		a.Categories = append(a.Categories, adminCategories[rng.Intn(len(adminCategories))])
	}

	// Lead sentence.
	noun := classNoun[e.Class]
	tb.raw(e.Name)
	tb.raw(" is a " + withArticleFix(noun) + ".")

	// Facts about this entity (as subject), rendered with template variety.
	facts := factsAbout(w, e.ID)
	for _, f := range facts {
		tb.raw(" ")
		renderFact(w, tb, f, opt, rng)
		if keyVal, ok := infoboxEntry(w, f); ok && rng.Float64() < opt.InfoboxRate {
			a.Infobox[keyVal[0]] = keyVal[1]
		}
	}

	// Noise: a corrupted fact sentence (object swapped within type class).
	if len(facts) > 0 && rng.Float64() < opt.NoiseRate {
		f := facts[rng.Intn(len(facts))]
		if corrupted, ok := corruptFact(w, f, rng); ok {
			tb.raw(" ")
			renderFact(w, tb, corrupted, opt, rng)
		}
	}

	// A distractor sentence mentioning a random related entity (context
	// for NED, plus link-graph density).
	if rng.Float64() < 0.6 && len(w.People) > 0 {
		other := w.Entities[rng.Intn(len(w.Entities))]
		if other.ID != e.ID {
			tb.raw(" ")
			tb.raw(distractors[rng.Intn(len(distractors))])
			tb.raw(" ")
			tb.entity(other, opt.AliasRate)
			tb.raw(".")
		}
	}

	a.Text = tb.b.String()
	a.Mentions = tb.mentions
	for id := range tb.links {
		a.Links = append(a.Links, id)
	}
	sort.Strings(a.Links)
	return a
}

var distractors = []string{
	"Commentators often draw comparisons with",
	"The press frequently mentioned",
	"Industry observers contrasted this with",
}

func withArticleFix(noun string) string {
	if noun == "" {
		return "notable entity"
	}
	return noun
}

// factsAbout returns the gold facts with subject id, in stable order.
func factsAbout(w *World, id string) []Fact {
	var out []Fact
	for _, f := range w.Facts {
		if f.S == id {
			out = append(out, f)
		}
	}
	return out
}

// corruptFact swaps the object for another entity of the same class,
// producing a false-but-well-typed statement.
func corruptFact(w *World, f Fact, rng *rand.Rand) (Fact, bool) {
	obj, ok := w.ByID[f.O]
	if !ok {
		return Fact{}, false
	}
	pool := poolOfClass(w, obj.Class)
	if len(pool) < 2 {
		return Fact{}, false
	}
	for i := 0; i < 10; i++ {
		cand := pool[rng.Intn(len(pool))]
		if cand.ID != f.O && !w.HasFact(f.S, f.P, cand.ID) {
			g := f
			g.O = cand.ID
			return g, true
		}
	}
	return Fact{}, false
}

func poolOfClass(w *World, class string) []*Entity {
	switch class {
	case ClassCity:
		return w.Cities
	case ClassCountry:
		return w.Countries
	case ClassCompany:
		return w.Companies
	case ClassUniversity:
		return w.Universities
	case ClassSmartphone, ClassProduct:
		return w.Products
	case ClassAward:
		return w.Prizes
	default:
		return w.People
	}
}

// renderFact writes one sentence expressing f, choosing among paraphrase
// templates. Each template interleaves raw text and entity mentions so
// offsets stay exact.
func renderFact(w *World, tb *textBuilder, f Fact, opt CorpusOptions, rng *rand.Rand) {
	s, sOK := w.ByID[f.S]
	o, oOK := w.ByID[f.O]
	if !sOK || !oOK {
		return
	}
	year := ""
	if f.Date.Year != 0 {
		year = fmt.Sprintf("%d", f.Date.Year)
	}
	y1, y2 := intervalYears(f.Time)
	em := func(e *Entity) { tb.entity(e, opt.AliasRate) }
	pick := func(n int) int { return rng.Intn(n) }

	switch f.P {
	case RelBornIn:
		switch pick(2) {
		case 0:
			em(s)
			tb.raw(" was born in ")
			em(o)
			tb.raw(" on " + f.Date.Format() + ".")
		default:
			em(s)
			tb.raw(" was born on " + f.Date.Format() + " in ")
			em(o)
			tb.raw(".")
		}
	case RelFounded:
		switch pick(4) {
		case 0:
			em(s)
			tb.raw(" founded ")
			em(o)
			tb.raw(" in " + year + ".")
		case 1:
			em(o)
			tb.raw(" was founded by ")
			em(s)
			tb.raw(" in " + year + ".")
		case 2:
			tb.raw("In " + year + ", ")
			em(s)
			tb.raw(" established ")
			em(o)
			tb.raw(".")
		default:
			em(s)
			tb.raw(" started ")
			em(o)
			tb.raw(".")
		}
	case RelCEOOf:
		if pick(2) == 0 {
			em(s)
			tb.raw(" served as CEO of ")
			em(o)
			tb.raw(" from " + y1 + " to " + y2 + ".")
		} else {
			em(s)
			tb.raw(" led ")
			em(o)
			tb.raw(" between " + y1 + " and " + y2 + ".")
		}
	case RelWorksAt:
		switch pick(3) {
		case 0:
			tb.raw("From " + y1 + " to " + y2 + ", ")
			em(s)
			tb.raw(" worked at ")
			em(o)
			tb.raw(".")
		case 1:
			em(s)
			tb.raw(" joined ")
			em(o)
			tb.raw(" in " + y1 + ".")
		default:
			em(s)
			tb.raw(" worked at ")
			em(o)
			tb.raw(" from " + y1 + " until " + y2 + ".")
		}
	case RelGraduatedFrom:
		if pick(2) == 0 {
			em(s)
			tb.raw(" graduated from ")
			em(o)
			tb.raw(" in " + year + ".")
		} else {
			em(s)
			tb.raw(" studied at ")
			em(o)
			tb.raw(".")
		}
	case RelMarriedTo:
		if pick(2) == 0 {
			em(s)
			tb.raw(" married ")
			em(o)
			tb.raw(" in " + y1 + ".")
		} else {
			em(s)
			tb.raw(" is married to ")
			em(o)
			tb.raw(".")
		}
	case RelWonPrize:
		if pick(2) == 0 {
			em(s)
			tb.raw(" won the ")
			em(o)
			tb.raw(" in " + year + ".")
		} else {
			em(s)
			tb.raw(" received the ")
			em(o)
			tb.raw(" in " + year + ".")
		}
	case RelLocatedIn:
		switch pick(3) {
		case 0:
			em(s)
			tb.raw(" is headquartered in ")
			em(o)
			tb.raw(".")
		case 1:
			em(s)
			tb.raw(" is located in ")
			em(o)
			tb.raw(".")
		default:
			em(s)
			tb.raw(" is based in ")
			em(o)
			tb.raw(".")
		}
	case RelAcquired:
		switch pick(3) {
		case 0:
			em(s)
			tb.raw(" acquired ")
			em(o)
			tb.raw(" in " + year + ".")
		case 1:
			em(o)
			tb.raw(" was acquired by ")
			em(s)
			tb.raw(" in " + year + ".")
		default:
			em(s)
			tb.raw(" bought ")
			em(o)
			tb.raw(" in " + year + ".")
		}
	case RelCreated:
		switch pick(3) {
		case 0:
			em(s)
			tb.raw(" released the ")
			em(o)
			tb.raw(" in " + year + ".")
		case 1:
			tb.raw("The ")
			em(o)
			tb.raw(" was released by ")
			em(s)
			tb.raw(" in " + year + ".")
		default:
			em(s)
			tb.raw(" unveiled the ")
			em(o)
			tb.raw(" in " + year + ".")
		}
	case RelRivalOf:
		tb.raw("The ")
		em(s)
		tb.raw(" competes with the ")
		em(o)
		tb.raw(".")
	default:
		em(s)
		tb.raw(" is related to ")
		em(o)
		tb.raw(".")
	}
}

func intervalYears(iv core.Interval) (string, string) {
	y1 := "1900"
	if iv.Begin != core.MinDay {
		y1 = fmt.Sprintf("%d", temporal.FromDay(iv.Begin).Year)
	}
	y2 := "present"
	if iv.End != core.MaxDay {
		y2 = fmt.Sprintf("%d", temporal.FromDay(iv.End).Year)
	}
	return y1, y2
}

// infoboxEntry maps a fact to an infobox key/value if the relation has an
// infobox rendering.
func infoboxEntry(w *World, f Fact) ([2]string, bool) {
	o, ok := w.ByID[f.O]
	if !ok {
		return [2]string{}, false
	}
	switch f.P {
	case RelBornIn:
		return [2]string{"birth_place", o.Name}, true
	case RelFounded:
		return [2]string{"founded_org", o.Name}, true
	case RelLocatedIn:
		return [2]string{"location", o.Name}, true
	case RelGraduatedFrom:
		return [2]string{"alma_mater", o.Name}, true
	case RelMarriedTo:
		return [2]string{"spouse", o.Name}, true
	case RelWorksAt:
		return [2]string{"employer", o.Name}, true
	case RelCreated:
		return [2]string{"products", o.Name}, true
	case RelWonPrize:
		return [2]string{"awards", o.Name}, true
	}
	return [2]string{}, false
}

// InfoboxRelation maps an infobox key back to its relation and orientation
// (the harvesting rule the pattern extractor uses).
func InfoboxRelation(key string) (rel string, inverted bool, ok bool) {
	switch key {
	case "birth_place":
		return RelBornIn, false, true
	case "founded_org":
		return RelFounded, false, true
	case "location":
		return RelLocatedIn, false, true
	case "alma_mater":
		return RelGraduatedFrom, false, true
	case "spouse":
		return RelMarriedTo, false, true
	case "employer":
		return RelWorksAt, false, true
	case "products":
		return RelCreated, false, true
	case "awards":
		return RelWonPrize, false, true
	}
	return "", false, false
}
