package synth

import (
	"reflect"
	"strings"
	"testing"

	"kbharvest/internal/core"
	"kbharvest/internal/rdf"
)

func smallConfig() Config {
	return Config{
		People: 40, Companies: 12, Cities: 8, Countries: 3,
		Universities: 5, Products: 10, Prizes: 4,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w1 := Generate(smallConfig(), 7)
	w2 := Generate(smallConfig(), 7)
	if len(w1.Entities) != len(w2.Entities) {
		t.Fatalf("entity counts differ: %d vs %d", len(w1.Entities), len(w2.Entities))
	}
	for i := range w1.Entities {
		if w1.Entities[i].ID != w2.Entities[i].ID {
			t.Fatalf("entity %d differs: %s vs %s", i, w1.Entities[i].ID, w2.Entities[i].ID)
		}
	}
	if len(w1.Facts) != len(w2.Facts) {
		t.Fatalf("fact counts differ")
	}
	if !reflect.DeepEqual(w1.Facts[:10], w2.Facts[:10]) {
		t.Error("facts differ between same-seed runs")
	}
	w3 := Generate(smallConfig(), 8)
	if w3.Entities[0].ID == w1.Entities[0].ID && w3.Entities[1].ID == w1.Entities[1].ID && w3.Entities[2].ID == w1.Entities[2].ID {
		t.Error("different seeds should give different worlds")
	}
}

func TestGenerateCounts(t *testing.T) {
	cfg := smallConfig()
	w := Generate(cfg, 7)
	if len(w.People) != cfg.People || len(w.Companies) != cfg.Companies ||
		len(w.Cities) != cfg.Cities || len(w.Products) != cfg.Products {
		t.Errorf("counts: %d people %d companies %d cities %d products",
			len(w.People), len(w.Companies), len(w.Cities), len(w.Products))
	}
	want := cfg.People + cfg.Companies + cfg.Cities + cfg.Countries + cfg.Universities + cfg.Products + cfg.Prizes
	if len(w.Entities) != want {
		t.Errorf("total entities = %d, want %d", len(w.Entities), want)
	}
}

func TestEntityIDsUnique(t *testing.T) {
	w := Generate(smallConfig(), 7)
	seen := map[string]bool{}
	for _, e := range w.Entities {
		if seen[e.ID] {
			t.Fatalf("duplicate entity ID %s", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestGroundTruthTypes(t *testing.T) {
	w := Generate(smallConfig(), 7)
	for _, p := range w.People {
		if !w.Truth.IsA(p.ID, ClassPerson) {
			t.Errorf("%s should be a person (class %s)", p.ID, p.Class)
		}
	}
	for _, c := range w.Companies {
		if !w.Truth.IsA(c.ID, ClassCompany) {
			t.Errorf("%s should be a company", c.ID)
		}
	}
}

func TestFactsWellTyped(t *testing.T) {
	w := Generate(smallConfig(), 7)
	for _, f := range w.Facts {
		schema, ok := SchemaOf(f.P)
		if !ok {
			t.Fatalf("fact with unknown relation %s", f.P)
		}
		if !w.Truth.IsA(f.S, schema.Domain) {
			t.Errorf("subject %s of %s is not a %s", f.S, f.P, schema.Domain)
		}
		if !w.Truth.IsA(f.O, schema.Range) {
			t.Errorf("object %s of %s is not a %s", f.O, f.P, schema.Range)
		}
		if !f.Time.Valid() {
			t.Errorf("fact %v has invalid interval", f)
		}
	}
}

func TestFunctionalRelationsAreFunctional(t *testing.T) {
	w := Generate(smallConfig(), 7)
	for _, schema := range Schema {
		if !schema.Functional {
			continue
		}
		seen := map[string]string{}
		for _, f := range w.FactsOf(schema.ID) {
			if prev, ok := seen[f.S]; ok && prev != f.O {
				t.Errorf("%s: subject %s has two objects %s, %s", schema.ID, f.S, prev, f.O)
			}
			seen[f.S] = f.O
		}
	}
}

func TestSymmetricRelationsAreSymmetric(t *testing.T) {
	w := Generate(smallConfig(), 7)
	for _, schema := range Schema {
		if !schema.Symmetric {
			continue
		}
		for _, f := range w.FactsOf(schema.ID) {
			if !w.HasFact(f.O, f.P, f.S) {
				t.Errorf("%s(%s,%s) lacks inverse", f.P, f.S, f.O)
			}
		}
	}
}

func TestMultilingualLabels(t *testing.T) {
	w := Generate(smallConfig(), 7)
	e := w.People[0]
	if len(e.Labels) != 4 {
		t.Fatalf("labels = %v", e.Labels)
	}
	if e.Labels["en"] != e.Name {
		t.Errorf("en label = %q, want %q", e.Labels["en"], e.Name)
	}
	// Labels asserted in the truth store.
	labels := w.Truth.Match(rdf.Triple{S: rdf.NewIRI(e.ID), P: rdf.NewIRI(rdf.RDFSLabel)})
	if len(labels) < 2 {
		t.Errorf("label triples = %d", len(labels))
	}
}

func TestAmbiguousAliasesExist(t *testing.T) {
	w := Generate(smallConfig(), 7)
	aliasOwners := map[string][]string{}
	for _, e := range w.Entities {
		for _, a := range e.Aliases {
			aliasOwners[a] = append(aliasOwners[a], e.ID)
		}
	}
	ambiguous := 0
	for _, owners := range aliasOwners {
		if len(owners) > 1 {
			ambiguous++
		}
	}
	if ambiguous == 0 {
		t.Error("world should contain ambiguous aliases for NED")
	}
}

func TestScaledConfig(t *testing.T) {
	c := DefaultConfig().Scaled(0.1)
	if c.People != 30 || c.Countries < 1 {
		t.Errorf("scaled config = %+v", c)
	}
}

func TestBuildCorpus(t *testing.T) {
	w := Generate(smallConfig(), 7)
	c := BuildCorpus(w, DefaultCorpusOptions())
	if len(c.Articles) != len(w.Entities) {
		t.Fatalf("articles = %d, want %d", len(c.Articles), len(w.Entities))
	}
	for _, a := range c.Articles {
		if a.Title == "" || a.Subject == "" || a.Text == "" {
			t.Fatalf("incomplete article %+v", a)
		}
		if len(a.Categories) == 0 {
			t.Errorf("article %s has no categories", a.Title)
		}
		// Mention offsets must be exact.
		for _, m := range a.Mentions {
			if m.Start < 0 || m.End > len(a.Text) || a.Text[m.Start:m.End] != m.Surface {
				t.Fatalf("bad mention offsets in %s: %+v", a.Title, m)
			}
			if _, ok := w.ByID[m.Entity]; !ok {
				t.Fatalf("mention refers to unknown entity %s", m.Entity)
			}
		}
	}
}

func TestCorpusDeterministic(t *testing.T) {
	w := Generate(smallConfig(), 7)
	c1 := BuildCorpus(w, DefaultCorpusOptions())
	c2 := BuildCorpus(w, DefaultCorpusOptions())
	for i := range c1.Articles {
		if c1.Articles[i].Text != c2.Articles[i].Text {
			t.Fatalf("article %d differs between same-seed builds", i)
		}
	}
}

func TestCorpusCategories(t *testing.T) {
	w := Generate(smallConfig(), 7)
	c := BuildCorpus(w, DefaultCorpusOptions())
	a := c.BySubject[w.People[0].ID]
	found := false
	for _, cat := range a.Categories {
		if cat == CategoryForClass(w.People[0].Class) {
			found = true
		}
	}
	if !found {
		t.Errorf("person article lacks class category: %v", a.Categories)
	}
	// Category graph mirrors the taxonomy.
	parents := c.CategoryParents["Physicists"]
	if len(parents) == 0 || !containsStr(parents, "Scientists") {
		t.Errorf("Physicists parents = %v", parents)
	}
}

func TestCorpusInfoboxes(t *testing.T) {
	w := Generate(smallConfig(), 7)
	c := BuildCorpus(w, DefaultCorpusOptions())
	withInfobox := 0
	for _, a := range c.Articles {
		if len(a.Infobox) > 0 {
			withInfobox++
		}
		for key := range a.Infobox {
			if _, _, ok := InfoboxRelation(key); !ok {
				t.Errorf("unmapped infobox key %q", key)
			}
		}
	}
	if withInfobox < len(c.Articles)/4 {
		t.Errorf("only %d/%d articles have infoboxes", withInfobox, len(c.Articles))
	}
}

func TestCorpusLinks(t *testing.T) {
	w := Generate(smallConfig(), 7)
	c := BuildCorpus(w, DefaultCorpusOptions())
	linked := 0
	for _, a := range c.Articles {
		linked += len(a.Links)
		for _, l := range a.Links {
			if _, ok := w.ByID[l]; !ok {
				t.Fatalf("link to unknown entity %s", l)
			}
		}
	}
	if linked == 0 {
		t.Error("corpus has no hyperlinks")
	}
}

func TestPlural(t *testing.T) {
	cases := map[string]string{
		"physicist": "physicists",
		"company":   "companies",
		"city":      "cities",
		"boss":      "bosses",
		"box":       "boxes",
		"church":    "churches",
		"day":       "days",
	}
	for in, want := range cases {
		if got := Plural(in); got != want {
			t.Errorf("Plural(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestBuildWebPages(t *testing.T) {
	w := Generate(smallConfig(), 7)
	pages := BuildWebPages(w, 4, 13)
	if len(pages) == 0 {
		t.Fatal("no web pages")
	}
	lists, prose := 0, 0
	for _, p := range pages {
		if p.URL == "" || p.Text == "" {
			t.Fatalf("incomplete page %+v", p)
		}
		if len(p.Items) > 0 {
			lists++
			for _, it := range p.Items {
				if !strings.Contains(p.Text, it) {
					t.Errorf("list page text missing item %q", it)
				}
			}
		} else {
			prose++
			if !strings.Contains(p.Text, "such as") && !strings.Contains(p.Text, "including") && !strings.Contains(p.Text, "like") {
				t.Errorf("prose page lacks Hearst pattern: %q", p.Text)
			}
		}
	}
	if lists == 0 || prose == 0 {
		t.Errorf("want both page kinds, got %d lists %d prose", lists, prose)
	}
}

func TestGenerateStream(t *testing.T) {
	w := Generate(smallConfig(), 7)
	opt := DefaultStreamOptions(w)
	opt.Posts = 300
	posts := GenerateStream(w, opt)
	if len(posts) != 300 {
		t.Fatalf("posts = %d", len(posts))
	}
	withMention, ambiguous := 0, 0
	for _, p := range posts {
		if p.Day < opt.StartDay || p.Day >= opt.StartDay+opt.Days {
			t.Fatalf("post day %d out of range", p.Day)
		}
		for _, m := range p.Mentions {
			withMention++
			if p.Text[m.Start:m.End] != m.Surface {
				t.Fatalf("bad mention offsets: %+v in %q", m, p.Text)
			}
			if m.Surface == w.ProductLine[m.Entity] {
				ambiguous++
			}
		}
	}
	if withMention == 0 {
		t.Fatal("no product mentions in stream")
	}
	if ambiguous == 0 {
		t.Error("stream should contain ambiguous line-word mentions")
	}
}

func TestEntityByName(t *testing.T) {
	w := Generate(smallConfig(), 7)
	p := w.People[0]
	if got := w.EntityByName(p.Name); got != p {
		t.Errorf("EntityByName(%q) = %v", p.Name, got)
	}
	if got := w.EntityByName("No Such Person"); got != nil {
		t.Errorf("unknown name should return nil, got %v", got)
	}
}

func TestTruthTemporalScopes(t *testing.T) {
	w := Generate(smallConfig(), 7)
	// worksAt facts must carry bounded intervals in the truth store.
	found := false
	for _, f := range w.FactsOf(RelWorksAt) {
		id, ok := w.Truth.FactOf(rdf.T(f.S, f.P, f.O))
		if !ok {
			t.Fatalf("gold fact missing from store: %+v", f)
		}
		info, _ := w.Truth.Info(id)
		if info.Time.Begin != core.MinDay && info.Time.End != core.MaxDay {
			found = true
		}
	}
	if !found {
		t.Error("no bounded temporal scopes found")
	}
}

func containsStr(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
