package synth

import (
	"fmt"
	"math/rand"
	"sort"

	"kbharvest/internal/core"
	"kbharvest/internal/rdf"
	"kbharvest/internal/temporal"
)

// Class IRIs of the ground-truth taxonomy.
const (
	ClassEntity       = "kb:entity"
	ClassPerson       = "kb:person"
	ClassScientist    = "kb:scientist"
	ClassPhysicist    = "kb:physicist"
	ClassChemist      = "kb:chemist"
	ClassEntrepreneur = "kb:entrepreneur"
	ClassMusician     = "kb:musician"
	ClassOrganization = "kb:organization"
	ClassCompany      = "kb:company"
	ClassUniversity   = "kb:university"
	ClassLocation     = "kb:location"
	ClassCity         = "kb:city"
	ClassCountry      = "kb:country"
	ClassArtifact     = "kb:artifact"
	ClassProduct      = "kb:product"
	ClassSmartphone   = "kb:smartphone"
	ClassAward        = "kb:award"
)

// Relation IRIs of the ground-truth schema.
const (
	RelBornIn        = "kb:bornIn"
	RelBornOnDate    = "kb:bornOnDate"
	RelMarriedTo     = "kb:marriedTo"
	RelFounded       = "kb:founded"
	RelCEOOf         = "kb:ceoOf"
	RelWorksAt       = "kb:worksAt"
	RelGraduatedFrom = "kb:graduatedFrom"
	RelWonPrize      = "kb:wonPrize"
	RelLocatedIn     = "kb:locatedIn"
	RelAcquired      = "kb:acquired"
	RelCreated       = "kb:created"
	RelRivalOf       = "kb:rivalOf"
)

// RelationSchema describes one relation: its type signature and temporal
// behaviour. The consistency reasoner (§3) and rule miner consume these.
type RelationSchema struct {
	ID         string
	Domain     string // required subject class
	Range      string // required object class
	Functional bool   // at most one object per subject (at a time)
	Temporal   bool   // facts carry validity intervals
	Symmetric  bool
}

// Schema lists every relation of the synthetic world.
var Schema = []RelationSchema{
	{ID: RelBornIn, Domain: ClassPerson, Range: ClassCity, Functional: true},
	{ID: RelMarriedTo, Domain: ClassPerson, Range: ClassPerson, Temporal: true, Symmetric: true},
	{ID: RelFounded, Domain: ClassPerson, Range: ClassCompany},
	{ID: RelCEOOf, Domain: ClassPerson, Range: ClassCompany, Temporal: true},
	{ID: RelWorksAt, Domain: ClassPerson, Range: ClassCompany, Temporal: true},
	{ID: RelGraduatedFrom, Domain: ClassPerson, Range: ClassUniversity},
	{ID: RelWonPrize, Domain: ClassPerson, Range: ClassAward},
	// locatedIn covers both organization->city and city->country.
	{ID: RelLocatedIn, Domain: ClassEntity, Range: ClassLocation, Functional: true},
	{ID: RelAcquired, Domain: ClassCompany, Range: ClassCompany},
	{ID: RelCreated, Domain: ClassCompany, Range: ClassProduct},
	{ID: RelRivalOf, Domain: ClassProduct, Range: ClassProduct, Symmetric: true},
}

// SchemaOf returns the schema of a relation IRI.
func SchemaOf(rel string) (RelationSchema, bool) {
	for _, s := range Schema {
		if s.ID == rel {
			return s, true
		}
	}
	return RelationSchema{}, false
}

// Entity is one ground-truth entity.
type Entity struct {
	ID      string            // IRI, e.g. "kb:Aldra_Venn"
	Name    string            // canonical English surface form
	Aliases []string          // additional surface forms (incl. ambiguous)
	Class   string            // most specific class IRI
	Labels  map[string]string // language -> name
}

// Fact is one ground-truth relational fact with optional temporal scope.
type Fact struct {
	S, P, O string
	// Time is the validity interval for temporal relations, or the event
	// day (Begin==End) for event-like relations; core.Always otherwise.
	Time core.Interval
	// Date is the human-readable event date where one exists.
	Date temporal.Date
}

// Config sizes the generated world.
type Config struct {
	People       int
	Companies    int
	Cities       int
	Countries    int
	Universities int
	Products     int
	Prizes       int
	// AmbiguityShare is the fraction of people whose family name is
	// drawn from a shared pool (creating NED ambiguity). Default 0.5.
	AmbiguityShare float64
}

// DefaultConfig returns a laptop-scale world adequate for all experiments.
func DefaultConfig() Config {
	return Config{
		People:       300,
		Companies:    80,
		Cities:       40,
		Countries:    8,
		Universities: 20,
		Products:     60,
		Prizes:       12,
	}
}

// Scaled multiplies entity counts by f (min 1 each) for scaling sweeps.
func (c Config) Scaled(f float64) Config {
	mul := func(n int) int {
		v := int(float64(n) * f)
		if v < 1 {
			v = 1
		}
		return v
	}
	return Config{
		People:         mul(c.People),
		Companies:      mul(c.Companies),
		Cities:         mul(c.Cities),
		Countries:      mul(c.Countries),
		Universities:   mul(c.Universities),
		Products:       mul(c.Products),
		Prizes:         mul(c.Prizes),
		AmbiguityShare: c.AmbiguityShare,
	}
}

// World is the generated ground truth.
type World struct {
	Cfg      Config
	Truth    *core.Store // every gold fact, type, and label
	Entities []*Entity
	ByID     map[string]*Entity
	Facts    []Fact

	People       []*Entity
	Companies    []*Entity
	Cities       []*Entity
	Countries    []*Entity
	Universities []*Entity
	Products     []*Entity
	Prizes       []*Entity

	// ProductLine maps product entity ID -> line name ("Nova"), the
	// shared brand word.
	ProductLine map[string]string

	rng *rand.Rand
}

// Generate builds a world deterministically from cfg and seed.
func Generate(cfg Config, seed int64) *World {
	if cfg.AmbiguityShare == 0 {
		cfg.AmbiguityShare = 0.5
	}
	rng := rand.New(rand.NewSource(seed))
	w := &World{
		Cfg:         cfg,
		Truth:       core.NewStore(),
		ByID:        make(map[string]*Entity),
		ProductLine: make(map[string]string),
		rng:         rng,
	}
	w.buildTaxonomy()
	g := newNameGen(rng)
	w.makeCountries(g)
	w.makeCities(g)
	w.makeUniversities(g)
	w.makePeople(g)
	w.makeCompanies(g)
	w.makeProducts(g)
	w.makePrizes(g)
	w.makeRelations()
	w.assertLabels()
	return w
}

func (w *World) buildTaxonomy() {
	pairs := [][2]string{
		{ClassPerson, ClassEntity},
		{ClassScientist, ClassPerson},
		{ClassPhysicist, ClassScientist},
		{ClassChemist, ClassScientist},
		{ClassEntrepreneur, ClassPerson},
		{ClassMusician, ClassPerson},
		{ClassOrganization, ClassEntity},
		{ClassCompany, ClassOrganization},
		{ClassUniversity, ClassOrganization},
		{ClassLocation, ClassEntity},
		{ClassCity, ClassLocation},
		{ClassCountry, ClassLocation},
		{ClassArtifact, ClassEntity},
		{ClassProduct, ClassArtifact},
		{ClassSmartphone, ClassProduct},
		{ClassAward, ClassEntity},
	}
	ts := make([]rdf.Triple, len(pairs))
	for i, p := range pairs {
		ts[i] = rdf.T(p[0], rdf.RDFSSubClassOf, p[1])
	}
	w.Truth.AddBatch(ts)
}

// TaxonomyPairs returns the gold subclass edges (sub, super), sorted.
func (w *World) TaxonomyPairs() [][2]string {
	var out [][2]string
	w.Truth.MatchFunc(rdf.Triple{P: rdf.NewIRI(rdf.RDFSSubClassOf)}, func(_ core.FactID, t rdf.Triple) bool {
		out = append(out, [2]string{t.S.Value, t.O.Value})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

func (w *World) addEntity(e *Entity) {
	w.Entities = append(w.Entities, e)
	w.ByID[e.ID] = e
	w.Truth.AddType(e.ID, e.Class)
}

func (w *World) makeCountries(g *nameGen) {
	for i := 0; i < w.Cfg.Countries; i++ {
		name := g.unique(2) + "ia"
		e := &Entity{ID: iriFrom("kb:", name), Name: name, Class: ClassCountry}
		w.Countries = append(w.Countries, e)
		w.addEntity(e)
	}
}

func (w *World) makeCities(g *nameGen) {
	for i := 0; i < w.Cfg.Cities; i++ {
		name := g.unique(2)
		e := &Entity{ID: iriFrom("kb:", name), Name: name, Class: ClassCity}
		w.Cities = append(w.Cities, e)
		w.addEntity(e)
		country := w.Countries[w.rng.Intn(len(w.Countries))]
		w.addFact(Fact{S: e.ID, P: RelLocatedIn, O: country.ID, Time: core.Always})
	}
}

func (w *World) makeUniversities(g *nameGen) {
	for i := 0; i < w.Cfg.Universities; i++ {
		city := w.Cities[w.rng.Intn(len(w.Cities))]
		name := g.universityName(city.Name)
		e := &Entity{ID: iriFrom("kb:", name), Name: name, Class: ClassUniversity}
		w.Universities = append(w.Universities, e)
		w.addEntity(e)
		w.addFact(Fact{S: e.ID, P: RelLocatedIn, O: city.ID, Time: core.Always})
	}
}

var personClasses = []string{ClassPhysicist, ClassChemist, ClassEntrepreneur, ClassMusician}

func (w *World) makePeople(g *nameGen) {
	// Shared family-name pool: smaller than the population, so names
	// repeat — the primary ambiguity source for NED (§4).
	nShared := w.Cfg.People / 8
	if nShared < 2 {
		nShared = 2
	}
	sharedFamilies := g.pool(nShared, 2)
	for i := 0; i < w.Cfg.People; i++ {
		given := g.word(2) // given names may repeat; full names must not
		var family string
		if w.rng.Float64() < w.Cfg.AmbiguityShare {
			family = sharedFamilies[w.rng.Intn(len(sharedFamilies))]
		} else {
			family = g.unique(2)
		}
		full := given + " " + family
		if g.used[full] {
			full = given + " " + g.unique(2)
			family = full[len(given)+1:]
		}
		g.used[full] = true
		cls := personClasses[w.rng.Intn(len(personClasses))]
		e := &Entity{
			ID:      iriFrom("kb:", full),
			Name:    full,
			Aliases: []string{family, given + " " + family[:1] + "."},
			Class:   cls,
		}
		w.People = append(w.People, e)
		w.addEntity(e)
		// Birth facts.
		city := w.Cities[w.rng.Intn(len(w.Cities))]
		birth := temporal.Date{
			Year:  1900 + w.rng.Intn(100),
			Month: 1 + w.rng.Intn(12),
		}
		birth.Day = 1 + w.rng.Intn(temporal.DaysInMonth(birth.Year, birth.Month))
		w.addFact(Fact{S: e.ID, P: RelBornIn, O: city.ID,
			Time: core.Interval{Begin: birth.DayNum(), End: birth.DayNum()}, Date: birth})
		w.Truth.Add(rdf.Triple{
			S: rdf.NewIRI(e.ID), P: rdf.NewIRI(RelBornOnDate),
			O: rdf.NewTypedLiteral(birth.String(), rdf.XSDDate),
		})
	}
}

func (w *World) makeCompanies(g *nameGen) {
	for i := 0; i < w.Cfg.Companies; i++ {
		// Half of companies take a founder family name -> ambiguity.
		family := ""
		if i < len(w.People) && w.rng.Intn(2) == 0 {
			p := w.People[w.rng.Intn(len(w.People))]
			family = familyOf(p.Name)
		}
		name := g.companyName(family)
		e := &Entity{
			ID:      iriFrom("kb:", name),
			Name:    name,
			Aliases: []string{firstWord(name)},
			Class:   ClassCompany,
		}
		w.Companies = append(w.Companies, e)
		w.addEntity(e)
		city := w.Cities[w.rng.Intn(len(w.Cities))]
		w.addFact(Fact{S: e.ID, P: RelLocatedIn, O: city.ID, Time: core.Always})
	}
}

func (w *World) makeProducts(g *nameGen) {
	gen := make(map[string]int) // line -> last generation issued
	for i := 0; i < w.Cfg.Products; i++ {
		line := productLines[w.rng.Intn(len(productLines))]
		gen[line]++
		name := g.productName(line, gen[line])
		e := &Entity{
			ID:      iriFrom("kb:", name),
			Name:    name,
			Aliases: []string{line}, // the ambiguous brand word
			Class:   ClassSmartphone,
		}
		w.Products = append(w.Products, e)
		w.ProductLine[e.ID] = line
		w.addEntity(e)
	}
}

func (w *World) makePrizes(g *nameGen) {
	for i := 0; i < w.Cfg.Prizes; i++ {
		name := g.prizeName()
		e := &Entity{ID: iriFrom("kb:", name), Name: name, Class: ClassAward}
		w.Prizes = append(w.Prizes, e)
		w.addEntity(e)
	}
}

// dayOfYear returns a day number within the given year.
func (w *World) dayInYear(year int) (int, temporal.Date) {
	d := temporal.Date{Year: year, Month: 1 + w.rng.Intn(12)}
	d.Day = 1 + w.rng.Intn(temporal.DaysInMonth(d.Year, d.Month))
	return d.DayNum(), d
}

func (w *World) makeRelations() {
	rng := w.rng
	// founded / ceoOf: each company gets 1-2 founders and a CEO history.
	for _, c := range w.Companies {
		foundYear := 1950 + rng.Intn(60)
		foundDay, foundDate := w.dayInYear(foundYear)
		nf := 1 + rng.Intn(2)
		var founders []*Entity
		for j := 0; j < nf; j++ {
			p := w.People[rng.Intn(len(w.People))]
			founders = append(founders, p)
			w.addFact(Fact{S: p.ID, P: RelFounded, O: c.ID,
				Time: core.Interval{Begin: foundDay, End: foundDay}, Date: foundDate})
		}
		// CEO: founder first, successor later.
		ceoEnd := foundDay + 365*(3+rng.Intn(15))
		w.addFact(Fact{S: founders[0].ID, P: RelCEOOf, O: c.ID,
			Time: core.Interval{Begin: foundDay, End: ceoEnd}, Date: foundDate})
		succ := w.People[rng.Intn(len(w.People))]
		if succ != founders[0] {
			w.addFact(Fact{S: succ.ID, P: RelCEOOf, O: c.ID,
				Time: core.Interval{Begin: ceoEnd + 1, End: core.MaxDay}})
		}
	}
	// worksAt: each person 1-3 jobs with disjoint intervals.
	for _, p := range w.People {
		jobs := 1 + rng.Intn(3)
		start, _ := w.dayInYear(1970 + rng.Intn(30))
		for j := 0; j < jobs; j++ {
			c := w.Companies[rng.Intn(len(w.Companies))]
			dur := 365 * (1 + rng.Intn(10))
			w.addFact(Fact{S: p.ID, P: RelWorksAt, O: c.ID,
				Time: core.Interval{Begin: start, End: start + dur}})
			start += dur + 1 + rng.Intn(400)
		}
	}
	// graduatedFrom: 80% of people.
	for _, p := range w.People {
		if rng.Float64() < 0.8 {
			u := w.Universities[rng.Intn(len(w.Universities))]
			day, date := w.dayInYear(1950 + rng.Intn(55))
			w.addFact(Fact{S: p.ID, P: RelGraduatedFrom, O: u.ID,
				Time: core.Interval{Begin: day, End: day}, Date: date})
		}
	}
	// marriedTo: pair up ~40% of people.
	perm := rng.Perm(len(w.People))
	for i := 0; i+1 < len(perm); i += 2 {
		if rng.Float64() > 0.4 {
			continue
		}
		a, b := w.People[perm[i]], w.People[perm[i+1]]
		start, _ := w.dayInYear(1960 + rng.Intn(45))
		end := core.MaxDay
		if rng.Float64() < 0.3 {
			end = start + 365*(2+rng.Intn(20))
		}
		iv := core.Interval{Begin: start, End: end}
		w.addFact(Fact{S: a.ID, P: RelMarriedTo, O: b.ID, Time: iv})
		w.addFact(Fact{S: b.ID, P: RelMarriedTo, O: a.ID, Time: iv})
	}
	// wonPrize: ~30% of people.
	for _, p := range w.People {
		if rng.Float64() < 0.3 {
			pr := w.Prizes[rng.Intn(len(w.Prizes))]
			day, date := w.dayInYear(1960 + rng.Intn(55))
			w.addFact(Fact{S: p.ID, P: RelWonPrize, O: pr.ID,
				Time: core.Interval{Begin: day, End: day}, Date: date})
		}
	}
	// acquired: ~25% of companies acquired another.
	for _, c := range w.Companies {
		if rng.Float64() < 0.25 {
			t := w.Companies[rng.Intn(len(w.Companies))]
			if t == c {
				continue
			}
			day, date := w.dayInYear(1990 + rng.Intn(25))
			w.addFact(Fact{S: c.ID, P: RelAcquired, O: t.ID,
				Time: core.Interval{Begin: day, End: day}, Date: date})
		}
	}
	// created: every product belongs to a company; rivals between lines.
	for i, pr := range w.Products {
		c := w.Companies[rng.Intn(len(w.Companies))]
		day, date := w.dayInYear(2000 + rng.Intn(15))
		w.addFact(Fact{S: c.ID, P: RelCreated, O: pr.ID,
			Time: core.Interval{Begin: day, End: day}, Date: date})
		if i > 0 && rng.Float64() < 0.3 {
			other := w.Products[rng.Intn(i)]
			if w.ProductLine[other.ID] != w.ProductLine[pr.ID] {
				w.addFact(Fact{S: pr.ID, P: RelRivalOf, O: other.ID, Time: core.Always})
				w.addFact(Fact{S: other.ID, P: RelRivalOf, O: pr.ID, Time: core.Always})
			}
		}
	}
}

func (w *World) addFact(f Fact) {
	w.Facts = append(w.Facts, f)
	id := w.Truth.Add(rdf.T(f.S, f.P, f.O))
	w.Truth.SetInfo(id, core.FactInfo{Confidence: 1, Source: "gold", Time: f.Time})
}

var labelLangs = []string{"en", "de", "fr", "es"}

func (w *World) assertLabels() {
	var ts []rdf.Triple
	for _, e := range w.Entities {
		e.Labels = make(map[string]string, len(labelLangs))
		for _, lang := range labelLangs {
			name := e.Name
			if lang != "en" {
				name = translit(e.Name, lang)
			}
			e.Labels[lang] = name
			ts = append(ts, rdf.Triple{
				S: rdf.NewIRI(e.ID), P: rdf.NewIRI(rdf.RDFSLabel),
				O: rdf.NewLangLiteral(name, lang),
			})
		}
		for _, a := range e.Aliases {
			ts = append(ts, rdf.Triple{
				S: rdf.NewIRI(e.ID), P: rdf.NewIRI(rdf.SKOSAltLabel),
				O: rdf.NewLangLiteral(a, "en"),
			})
		}
	}
	w.Truth.AddBatch(ts)
}

// HasFact reports whether (s,p,o) is ground truth.
func (w *World) HasFact(s, p, o string) bool {
	return w.Truth.Has(rdf.T(s, p, o))
}

// FactsOf returns all gold facts with the given relation.
func (w *World) FactsOf(rel string) []Fact {
	var out []Fact
	for _, f := range w.Facts {
		if f.P == rel {
			out = append(out, f)
		}
	}
	return out
}

// EntityByName finds an entity by its canonical name.
func (w *World) EntityByName(name string) *Entity {
	return w.ByID[iriFrom("kb:", name)]
}

func familyOf(full string) string {
	i := lastSpace(full)
	if i < 0 {
		return full
	}
	return full[i+1:]
}

func firstWord(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' {
			return s[:i]
		}
	}
	return s
}

func lastSpace(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == ' ' {
			return i
		}
	}
	return -1
}

var _ = fmt.Sprintf // reserved for debug helpers
