// Package synth generates the reproduction's data substrate: a
// deterministic ground-truth world (entities, classes, relations with
// temporal scope, multilingual names) plus the textual renderings the
// extraction pipeline consumes — a Wikipedia-style article corpus with
// categories, infoboxes, noisy sentences, ambiguous mentions and
// hyperlinks; web-style list pages; and a timestamped social-media stream.
//
// The real tutorial systems harvest Wikipedia and the Web; this generator
// replaces those sources (see DESIGN.md §2) while preserving the properties
// the algorithms depend on: Zipf-like mention ambiguity, incomplete
// infoboxes, noisy and paraphrased fact sentences, and interlinked
// articles. Because the generating world is known, every experiment can
// score extraction output against exact ground truth.
package synth

import (
	"fmt"
	"math/rand"
	"strings"
)

// nameGen builds pronounceable unique names from syllable inventories.
// Deterministic given the *rand.Rand it is handed.
type nameGen struct {
	rng  *rand.Rand
	used map[string]bool
}

func newNameGen(rng *rand.Rand) *nameGen {
	return &nameGen{rng: rng, used: make(map[string]bool)}
}

var (
	onsets  = []string{"b", "d", "f", "g", "h", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z", "br", "dr", "gr", "kr", "tr", "st", "sl", "th"}
	vowels  = []string{"a", "e", "i", "o", "u", "ai", "au", "ea", "ia", "io"}
	codas   = []string{"", "", "", "n", "r", "l", "s", "m", "x", "th", "nd", "rn"}
	endings = []string{"a", "o", "is", "us", "on", "en", "ar", "el", "ia"}
)

// syllable returns one random syllable.
func (g *nameGen) syllable() string {
	return onsets[g.rng.Intn(len(onsets))] + vowels[g.rng.Intn(len(vowels))] + codas[g.rng.Intn(len(codas))]
}

// word builds a capitalized word of n syllables.
func (g *nameGen) word(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(g.syllable())
	}
	if g.rng.Intn(2) == 0 {
		b.WriteString(endings[g.rng.Intn(len(endings))])
	}
	w := b.String()
	return strings.ToUpper(w[:1]) + w[1:]
}

// unique draws words until an unused one appears.
func (g *nameGen) unique(syllables int) string {
	for i := 0; ; i++ {
		w := g.word(syllables)
		if !g.used[w] {
			g.used[w] = true
			return w
		}
		if i > 1000 {
			// Inventory exhausted at this length; extend.
			syllables++
			i = 0
		}
	}
}

// pool draws n distinct words.
func (g *nameGen) pool(n, syllables int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = g.unique(syllables)
	}
	return out
}

var companySuffixes = []string{"Systems", "Labs", "Industries", "Technologies", "Corporation", "Works", "Dynamics", "Computing", "Networks", "Software"}

// companyName builds a company name, optionally derived from a founder's
// family name (a deliberate ambiguity source for NED).
func (g *nameGen) companyName(familyName string) string {
	base := familyName
	if base == "" {
		base = g.unique(2)
	}
	for i := 0; ; i++ {
		name := base + " " + companySuffixes[g.rng.Intn(len(companySuffixes))]
		if !g.used[name] {
			g.used[name] = true
			return name
		}
		if i > 50 {
			base = g.unique(2)
		}
	}
}

var productLines = []string{"Nova", "Pulse", "Orion", "Vertex", "Zephyr", "Atlas", "Comet", "Lumen", "Quasar", "Titan", "Ion", "Nimbus", "Vector", "Echo", "Strata"}

// productName builds a product name such as "Nova 3". Product lines are
// shared words, creating the "Galaxy"-style ambiguity §4 motivates.
func (g *nameGen) productName(line string, generation int) string {
	return fmt.Sprintf("%s %d", line, generation)
}

var universityPatterns = []string{"University of %s", "%s Institute of Technology", "%s State University", "%s College"}

func (g *nameGen) universityName(cityName string) string {
	for i := 0; ; i++ {
		p := universityPatterns[g.rng.Intn(len(universityPatterns))]
		name := fmt.Sprintf(p, cityName)
		if !g.used[name] {
			g.used[name] = true
			return name
		}
		if i > 10 {
			cityName = g.unique(2)
		}
	}
}

var prizePatterns = []string{"%s Prize", "%s Medal", "%s Award"}

func (g *nameGen) prizeName() string {
	for {
		name := fmt.Sprintf(prizePatterns[g.rng.Intn(len(prizePatterns))], g.unique(2))
		if !g.used[name] {
			g.used[name] = true
			return name
		}
	}
}

// translit renders a name in a pseudo-foreign orthography for a language,
// deterministic per (name, lang). The transformations are invertible-ish
// string edits, so cross-lingual matching by edit distance is learnable —
// the property the multilingual module needs (§3).
func translit(name, lang string) string {
	switch lang {
	case "de":
		r := strings.NewReplacer("th", "t", "c", "k", "ai", "ei", "x", "chs")
		return r.Replace(name)
	case "fr":
		r := strings.NewReplacer("k", "qu", "us", "ous", "ia", "ie", "th", "t")
		return r.Replace(name)
	case "es":
		r := strings.NewReplacer("th", "t", "x", "j", "k", "c")
		return r.Replace(name)
	default:
		return name
	}
}

// iriFrom builds a KB IRI from a display name: "Steve Jobs" ->
// "kb:Steve_Jobs".
func iriFrom(prefix, name string) string {
	return prefix + strings.ReplaceAll(name, " ", "_")
}
