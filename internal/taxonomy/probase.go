package taxonomy

import (
	"sort"
)

// Probabilistic taxonomy in the style of Microsoft's Probase, which the
// tutorial cites alongside the crisp taxonomies (§2): instead of hard
// isA edges, class membership carries a plausibility score derived from
// the frequency of supporting evidence (Hearst-pattern hits, list
// co-occurrences). Downstream consumers ask "how plausible is it that
// instance i is a c?" — P(c|i) estimated as n(i,c) / n(i) — and take the
// most plausible class, which is robust against sporadic extraction
// errors that would poison a crisp taxonomy.

// Evidence is one observation that an instance belongs to a class.
type Evidence struct {
	Instance  string
	ClassNoun string  // singular class noun
	Weight    float64 // observation weight; 0 means 1
}

// ProbTaxonomy accumulates evidence and answers plausibility queries.
type ProbTaxonomy struct {
	counts map[string]map[string]float64 // instance -> class -> weight
	totals map[string]float64            // instance -> total weight
	classN map[string]float64            // class -> total weight (for size)
}

// NewProbTaxonomy returns an empty probabilistic taxonomy.
func NewProbTaxonomy() *ProbTaxonomy {
	return &ProbTaxonomy{
		counts: map[string]map[string]float64{},
		totals: map[string]float64{},
		classN: map[string]float64{},
	}
}

// Observe adds one piece of evidence.
func (pt *ProbTaxonomy) Observe(ev Evidence) {
	w := ev.Weight
	if w <= 0 {
		w = 1
	}
	if pt.counts[ev.Instance] == nil {
		pt.counts[ev.Instance] = map[string]float64{}
	}
	pt.counts[ev.Instance][ev.ClassNoun] += w
	pt.totals[ev.Instance] += w
	pt.classN[ev.ClassNoun] += w
}

// ObserveHearst folds a batch of Hearst facts into the taxonomy.
func (pt *ProbTaxonomy) ObserveHearst(facts []HearstFact) {
	for _, f := range facts {
		pt.Observe(Evidence{Instance: f.Instance, ClassNoun: f.ClassNoun})
	}
}

// Plausibility returns P(class | instance) under the evidence, 0 if the
// instance is unknown.
func (pt *ProbTaxonomy) Plausibility(instance, classNoun string) float64 {
	total := pt.totals[instance]
	if total == 0 {
		return 0
	}
	return pt.counts[instance][classNoun] / total
}

// ClassScore is one ranked class for an instance.
type ClassScore struct {
	ClassNoun    string
	Plausibility float64
	Support      float64 // raw evidence weight
}

// ClassesOf returns the instance's classes ranked by plausibility.
func (pt *ProbTaxonomy) ClassesOf(instance string) []ClassScore {
	classes := pt.counts[instance]
	if len(classes) == 0 {
		return nil
	}
	total := pt.totals[instance]
	out := make([]ClassScore, 0, len(classes))
	for c, w := range classes {
		out = append(out, ClassScore{ClassNoun: c, Plausibility: w / total, Support: w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Plausibility != out[j].Plausibility {
			return out[i].Plausibility > out[j].Plausibility
		}
		return out[i].ClassNoun < out[j].ClassNoun
	})
	return out
}

// BestClass returns the most plausible class of an instance, requiring at
// least minSupport evidence weight; ok is false otherwise.
func (pt *ProbTaxonomy) BestClass(instance string, minSupport float64) (ClassScore, bool) {
	ranked := pt.ClassesOf(instance)
	if len(ranked) == 0 || ranked[0].Support < minSupport {
		return ClassScore{}, false
	}
	return ranked[0], true
}

// Instances returns the number of instances with any evidence.
func (pt *ProbTaxonomy) Instances() int { return len(pt.totals) }

// ClassSize returns the total evidence weight behind a class — Probase's
// proxy for class prominence ("company" outweighs "clarinet maker").
func (pt *ProbTaxonomy) ClassSize(classNoun string) float64 {
	return pt.classN[classNoun]
}
