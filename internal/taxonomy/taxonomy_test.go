package taxonomy

import (
	"sort"
	"strings"
	"testing"

	"kbharvest/internal/eval"
	"kbharvest/internal/synth"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		cat   string
		kind  CategoryKind
		class string
	}{
		{"Physicists", Conceptual, "physicist"},
		{"Companies", Conceptual, "company"},
		{"Cities in Fooland", Conceptual, "city"},
		{"Smartphones", Conceptual, "smartphone"},
		{"American computer pioneers", Conceptual, "pioneer"},
		{"Science", Thematic, ""},
		{"History of Fooland", Thematic, ""},
		{"Music", Thematic, ""},
		{"Articles with unsourced statements", Administrative, ""},
		{"Articles needing cleanup", Administrative, ""},
		{"Pages with broken file links", Administrative, ""},
		{"Stubs", Administrative, ""},
	}
	for _, c := range cases {
		j := Classify(c.cat)
		if j.Kind != c.kind {
			t.Errorf("Classify(%q).Kind = %v, want %v", c.cat, j.Kind, c.kind)
		}
		if c.class != "" && j.ClassNoun != c.class {
			t.Errorf("Classify(%q).ClassNoun = %q, want %q", c.cat, j.ClassNoun, c.class)
		}
	}
}

func TestCategoryKindString(t *testing.T) {
	if Conceptual.String() != "conceptual" || Thematic.String() != "thematic" || Administrative.String() != "administrative" {
		t.Error("kind strings wrong")
	}
}

func TestSingular(t *testing.T) {
	cases := map[string]string{
		"cities": "city", "physicists": "physicist", "boxes": "box",
		"churches": "church", "bosses": "boss", "companies": "company",
		"universities": "university", "awards": "award",
	}
	for in, want := range cases {
		if got := Singular(in); got != want {
			t.Errorf("Singular(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHarvestTypes(t *testing.T) {
	pages := []Page{
		{Subject: "kb:A", Categories: []string{"Physicists", "Science", "Stubs"}},
		{Subject: "kb:B", Categories: []string{"Companies"}},
	}
	facts := HarvestTypes(pages)
	if len(facts) != 2 {
		t.Fatalf("facts = %+v", facts)
	}
	if facts[0].Entity != "kb:A" || facts[0].ClassNoun != "physicist" {
		t.Errorf("first = %+v", facts[0])
	}
}

func TestInduceSubclasses(t *testing.T) {
	parents := map[string][]string{
		"Physicists": {"Scientists", "Science"},
		"Scientists": {"People"},
		"Companies":  {"Organizations", "Commerce"},
		"Science":    {"Topics"},
	}
	edges := InduceSubclasses(parents)
	got := map[string]bool{}
	for _, e := range edges {
		got[e.Sub+"<"+e.Super] = true
	}
	for _, want := range []string{"physicist<scientist", "scientist<person", "company<organization"} {
		if !got[want] {
			t.Errorf("missing edge %s in %v", want, edges)
		}
	}
	if got["physicist<science"] {
		t.Error("thematic parent leaked into taxonomy")
	}
}

// End-to-end against the synthetic corpus: type harvesting precision/recall
// vs. the generating ground truth must be high (this is experiment E1's
// invariant).
func TestHarvestTypesOnSyntheticCorpus(t *testing.T) {
	w := synth.Generate(synth.Config{
		People: 60, Companies: 15, Cities: 10, Countries: 3,
		Universities: 6, Products: 12, Prizes: 4,
	}, 21)
	corpus := synth.BuildCorpus(w, synth.DefaultCorpusOptions())
	var pages []Page
	for _, a := range corpus.Articles {
		pages = append(pages, Page{Subject: a.Subject, Categories: a.Categories})
	}
	facts := HarvestTypes(pages)
	pred := make(map[string]bool)
	for _, f := range facts {
		pred[f.Entity+"|"+f.ClassNoun] = true
	}
	gold := make(map[string]bool)
	for _, e := range w.Entities {
		gold[e.ID+"|"+synth.ClassNoun(e.Class)] = true
	}
	// Predictions include valid superclass assignments (e.g. scientist
	// for a physicist); count those as correct by extending gold with
	// superclasses.
	for _, e := range w.Entities {
		for _, super := range w.Truth.Superclasses(e.Class) {
			if n := synth.ClassNoun(super); n != "" {
				gold[e.ID+"|"+n] = true
			}
		}
	}
	score := eval.SetPRF(pred, gold)
	if score.Precision < 0.95 {
		t.Errorf("type harvesting precision = %v", score)
	}
	// Every entity must get at least its most specific class.
	for _, e := range w.Entities {
		if !pred[e.ID+"|"+synth.ClassNoun(e.Class)] {
			t.Fatalf("entity %s missing its class", e.ID)
		}
	}
}

func TestInduceSubclassesOnSyntheticCorpus(t *testing.T) {
	w := synth.Generate(synth.Config{
		People: 30, Companies: 10, Cities: 8, Countries: 3,
		Universities: 4, Products: 8, Prizes: 3,
	}, 22)
	corpus := synth.BuildCorpus(w, synth.DefaultCorpusOptions())
	edges := InduceSubclasses(corpus.CategoryParents)
	got := make(map[string]bool)
	for _, e := range edges {
		got[e.Sub+"<"+e.Super] = true
	}
	// Gold edges projected to class nouns.
	for _, pair := range w.TaxonomyPairs() {
		sub, super := synth.ClassNoun(pair[0]), synth.ClassNoun(pair[1])
		if sub == "" || super == "" {
			continue
		}
		// Only check pairs whose categories exist in the corpus graph.
		if _, ok := corpus.CategoryParents[synth.CategoryForClass(pair[0])]; !ok {
			continue
		}
		if !got[sub+"<"+super] {
			t.Errorf("missing induced edge %s < %s (have %v)", sub, super, edges)
		}
	}
}

func TestExpand(t *testing.T) {
	lists := []ItemList{
		{Source: "1", Items: []string{"A", "B", "C", "D"}},
		{Source: "2", Items: []string{"A", "C", "E"}},
		{Source: "3", Items: []string{"X", "Y", "Z"}}, // unrelated
		{Source: "4", Items: []string{"B", "C", "E", "F"}},
	}
	cands := Expand([]string{"A", "B"}, lists, 1)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	scores := map[string]float64{}
	for _, c := range cands {
		scores[c.Item] = c.Score
	}
	if scores["C"] <= scores["F"] {
		t.Errorf("C should outrank F: %v", cands)
	}
	if _, ok := scores["X"]; ok {
		t.Error("unrelated list member leaked")
	}
	if _, ok := scores["A"]; ok {
		t.Error("seeds must not be returned")
	}
}

func TestExpandMinSeedHits(t *testing.T) {
	lists := []ItemList{
		{Source: "1", Items: []string{"A", "C"}},
		{Source: "2", Items: []string{"A", "B", "D"}},
	}
	cands := Expand([]string{"A", "B"}, lists, 2)
	for _, c := range cands {
		if c.Item == "C" {
			t.Error("list with one seed hit should be ignored at minSeedHits=2")
		}
	}
}

func TestExpandOnSyntheticLists(t *testing.T) {
	w := synth.Generate(synth.Config{
		People: 60, Companies: 15, Cities: 10, Countries: 3,
		Universities: 6, Products: 12, Prizes: 4,
	}, 23)
	pages := synth.BuildWebPages(w, 8, 31)
	var lists []ItemList
	for _, p := range pages {
		if len(p.Items) > 0 {
			lists = append(lists, ItemList{Source: p.URL, Items: p.Items})
		}
	}
	// Seeds: three physicists; gold: all people of that class.
	var seeds []string
	gold := map[string]bool{}
	for _, p := range w.People {
		if p.Class == synth.ClassPhysicist {
			if len(seeds) < 3 {
				seeds = append(seeds, p.Name)
			}
			gold[p.Name] = true
		}
	}
	if len(seeds) < 3 {
		t.Skip("not enough physicists in this world")
	}
	cands := Expand(seeds, lists, 1)
	if len(cands) == 0 {
		t.Fatal("expansion found nothing")
	}
	ranked := make([]string, len(cands))
	for i, c := range cands {
		ranked[i] = c.Item
	}
	p5 := eval.PrecisionAtK(ranked, gold, 5)
	if p5 < 0.8 {
		t.Errorf("precision@5 = %v, ranked head = %v", p5, ranked[:min(5, len(ranked))])
	}
}

func TestParseLists(t *testing.T) {
	pageText := "Notable physicists:\n* Alice Foo\n* Bob Bar\nFooter text\n"
	lists := ParseLists("url", pageText)
	if len(lists) != 1 || len(lists[0].Items) != 2 || lists[0].Items[0] != "Alice Foo" {
		t.Errorf("lists = %+v", lists)
	}
	if got := ParseLists("url", "no lists here"); got != nil {
		t.Errorf("expected nil, got %+v", got)
	}
}

func TestExtractHearst(t *testing.T) {
	body := "Physicists such as Marie Curie, Albert Einstein, and Niels Bohr shaped modern science. " +
		"Many companies, including Acme Systems and Globex Corporation, attracted attention. " +
		"Smartphones like Nova 3 sold well."
	facts := ExtractHearst(body)
	byClass := map[string][]string{}
	for _, f := range facts {
		byClass[f.ClassNoun] = append(byClass[f.ClassNoun], f.Instance)
	}
	sort.Strings(byClass["physicist"])
	if len(byClass["physicist"]) != 3 || byClass["physicist"][0] != "Albert Einstein" {
		t.Errorf("physicists = %v", byClass["physicist"])
	}
	if len(byClass["company"]) != 2 {
		t.Errorf("companies = %v", byClass["company"])
	}
	if len(byClass["smartphone"]) != 1 || byClass["smartphone"][0] != "Nova 3" {
		t.Errorf("smartphones = %v", byClass["smartphone"])
	}
}

func TestExtractHearstNoFalsePositives(t *testing.T) {
	body := "He walks like a duck. She said nothing such as that was true."
	facts := ExtractHearst(body)
	for _, f := range facts {
		if strings.ToLower(f.Instance) == f.Instance {
			t.Errorf("lowercase instance extracted: %+v", f)
		}
	}
}

func TestExtractHearstOnSyntheticPages(t *testing.T) {
	w := synth.Generate(synth.Config{
		People: 40, Companies: 10, Cities: 8, Countries: 3,
		Universities: 4, Products: 10, Prizes: 3,
	}, 24)
	pages := synth.BuildWebPages(w, 6, 33)
	correct, total := 0, 0
	for _, p := range pages {
		if len(p.Items) > 0 {
			continue // only prose pages
		}
		for _, f := range ExtractHearst(p.Text) {
			total++
			e := w.EntityByName(f.Instance)
			if e == nil {
				continue
			}
			if synth.ClassNoun(e.Class) == f.ClassNoun || hasSuper(w, e.Class, f.ClassNoun) {
				correct++
			}
		}
	}
	if total == 0 {
		t.Fatal("no Hearst facts extracted from synthetic pages")
	}
	if acc := float64(correct) / float64(total); acc < 0.8 {
		t.Errorf("Hearst accuracy = %.3f (%d/%d)", acc, correct, total)
	}
}

func hasSuper(w *synth.World, class, noun string) bool {
	for _, super := range w.Truth.Superclasses(class) {
		if synth.ClassNoun(super) == noun {
			return true
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
