package taxonomy

import (
	"sort"
	"strings"

	"kbharvest/internal/text"
)

// Web-based class harvesting (§2): set expansion over list documents
// ("SEAL-style") and Hearst-pattern extraction from running text.

// ItemList is one extracted list from a web page (e.g. bullet items).
type ItemList struct {
	Source string
	Items  []string
}

// Candidate is one set-expansion result.
type Candidate struct {
	Item  string
	Score float64
}

// Expand grows a seed set: every list containing at least minSeedHits
// seeds votes for its non-seed members, with vote weight = seed overlap /
// list size (lists dominated by seeds are more on-topic). Results are
// ranked by total vote weight.
func Expand(seeds []string, lists []ItemList, minSeedHits int) []Candidate {
	if minSeedHits < 1 {
		minSeedHits = 1
	}
	seedSet := make(map[string]bool, len(seeds))
	for _, s := range seeds {
		seedSet[s] = true
	}
	votes := make(map[string]float64)
	for _, l := range lists {
		hits := 0
		for _, it := range l.Items {
			if seedSet[it] {
				hits++
			}
		}
		if hits < minSeedHits || len(l.Items) == 0 {
			continue
		}
		w := float64(hits) / float64(len(l.Items))
		for _, it := range l.Items {
			if !seedSet[it] {
				votes[it] += w
			}
		}
	}
	out := make([]Candidate, 0, len(votes))
	for it, v := range votes {
		out = append(out, Candidate{Item: it, Score: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Item < out[j].Item
	})
	return out
}

// ParseLists extracts bullet lists ("* item" lines) from page text.
func ParseLists(source, pageText string) []ItemList {
	var items []string
	for _, line := range strings.Split(pageText, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "* ") {
			items = append(items, strings.TrimSpace(line[2:]))
		}
	}
	if len(items) == 0 {
		return nil
	}
	return []ItemList{{Source: source, Items: items}}
}

// HearstFact is one (class, instance) pair extracted by a Hearst pattern.
type HearstFact struct {
	ClassNoun string // singular
	Instance  string
	Pattern   string // which pattern fired
}

// ExtractHearst finds the classic Hearst patterns in text:
//
//	NP_plural such as A, B, and C
//	many NP_plural, including A, B
//	NP_plural like A and B
//
// and emits one fact per listed instance.
func ExtractHearst(textBody string) []HearstFact {
	var out []HearstFact
	for _, sent := range text.SplitSentences(textBody) {
		toks := text.Tokenize(sent.Text)
		words := make([]string, len(toks))
		for i, t := range toks {
			words[i] = t.Text
		}
		for i := 0; i < len(words); i++ {
			lw := strings.ToLower(words[i])
			var pattern string
			var next int
			switch {
			case lw == "such" && i+1 < len(words) && strings.ToLower(words[i+1]) == "as":
				pattern, next = "such as", i+2
			case lw == "including":
				pattern, next = "including", i+1
			case lw == "like":
				pattern, next = "like", i+1
			default:
				continue
			}
			class := pluralNounBefore(words, i)
			if class == "" {
				continue
			}
			for _, inst := range properListAfter(toks, next) {
				out = append(out, HearstFact{
					ClassNoun: Singular(class),
					Instance:  inst,
					Pattern:   pattern,
				})
			}
		}
	}
	return out
}

// pluralNounBefore scans left from position i (skipping commas and
// modifiers) for the nearest plural lowercase noun.
func pluralNounBefore(words []string, i int) string {
	for j := i - 1; j >= 0 && j >= i-4; j-- {
		w := words[j]
		if w == "," {
			continue
		}
		lw := strings.ToLower(w)
		if lw == "many" || lw == "several" || lw == "some" || lw == "other" || lw == "famous" || lw == "notable" {
			continue
		}
		if isPluralNoun(lw) {
			return lw
		}
		return ""
	}
	return ""
}

// properListAfter collects the capitalized multi-word names in the
// enumeration starting at token index start: "A, B, and C ..." stops at
// the first token that is neither part of a name, a comma, nor "and".
func properListAfter(toks []text.Token, start int) []string {
	var out []string
	var current []string
	flush := func() {
		if len(current) > 0 {
			out = append(out, strings.Join(current, " "))
			current = nil
		}
	}
	for i := start; i < len(toks); i++ {
		w := toks[i].Text
		switch {
		case isCapitalizedWord(w) || (len(current) > 0 && isNamePart(w)):
			current = append(current, w)
		case w == ",":
			flush()
		case strings.EqualFold(w, "and"):
			flush()
		default:
			flush()
			return out
		}
	}
	flush()
	return out
}

func isCapitalizedWord(w string) bool {
	if w == "" {
		return false
	}
	c := w[0]
	return c >= 'A' && c <= 'Z'
}

// isNamePart accepts lowercase particles and digits inside names
// ("University of Foo", "Nova 3").
func isNamePart(w string) bool {
	if w == "of" || w == "the" {
		return true
	}
	for _, r := range w {
		if r < '0' || r > '9' {
			return false
		}
	}
	return w != ""
}
