package taxonomy

import (
	"math"
	"testing"

	"kbharvest/internal/synth"
)

func TestProbTaxonomyPlausibility(t *testing.T) {
	pt := NewProbTaxonomy()
	// "Jaguar" seen 8 times as animal, 2 times as car: P(animal)=0.8.
	for i := 0; i < 8; i++ {
		pt.Observe(Evidence{Instance: "Jaguar", ClassNoun: "animal"})
	}
	for i := 0; i < 2; i++ {
		pt.Observe(Evidence{Instance: "Jaguar", ClassNoun: "car"})
	}
	if got := pt.Plausibility("Jaguar", "animal"); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("P(animal|Jaguar) = %v", got)
	}
	if got := pt.Plausibility("Jaguar", "car"); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("P(car|Jaguar) = %v", got)
	}
	if got := pt.Plausibility("Unknown", "animal"); got != 0 {
		t.Errorf("unknown instance plausibility = %v", got)
	}
}

func TestProbTaxonomyRanking(t *testing.T) {
	pt := NewProbTaxonomy()
	pt.Observe(Evidence{Instance: "X", ClassNoun: "a", Weight: 3})
	pt.Observe(Evidence{Instance: "X", ClassNoun: "b", Weight: 1})
	ranked := pt.ClassesOf("X")
	if len(ranked) != 2 || ranked[0].ClassNoun != "a" {
		t.Fatalf("ranking = %+v", ranked)
	}
	if ranked[0].Plausibility <= ranked[1].Plausibility {
		t.Error("ranking not descending")
	}
	best, ok := pt.BestClass("X", 1)
	if !ok || best.ClassNoun != "a" {
		t.Errorf("BestClass = %+v, %v", best, ok)
	}
	// minSupport gate.
	if _, ok := pt.BestClass("X", 10); ok {
		t.Error("BestClass should respect minSupport")
	}
	if _, ok := pt.BestClass("unseen", 0); ok {
		t.Error("unknown instance should report !ok")
	}
}

func TestProbTaxonomyZeroWeightDefaults(t *testing.T) {
	pt := NewProbTaxonomy()
	pt.Observe(Evidence{Instance: "X", ClassNoun: "a", Weight: 0})
	if pt.ClassSize("a") != 1 {
		t.Errorf("zero weight should default to 1, got %v", pt.ClassSize("a"))
	}
	if pt.Instances() != 1 {
		t.Errorf("Instances = %d", pt.Instances())
	}
}

// On the synthetic web pages, Hearst evidence should concentrate on each
// entity's true class: the probabilistic taxonomy's best class matches
// gold for almost every instance with evidence.
func TestProbTaxonomyFromHearstEvidence(t *testing.T) {
	w := synth.Generate(synth.Config{
		People: 60, Companies: 15, Cities: 10, Countries: 3,
		Universities: 6, Products: 12, Prizes: 4,
	}, 71)
	pages := synth.BuildWebPages(w, 10, 72)
	pt := NewProbTaxonomy()
	for _, p := range pages {
		if len(p.Items) > 0 {
			continue
		}
		pt.ObserveHearst(ExtractHearst(p.Text))
	}
	if pt.Instances() == 0 {
		t.Fatal("no evidence accumulated")
	}
	correct, total := 0, 0
	for _, e := range w.Entities {
		best, ok := pt.BestClass(e.Name, 1)
		if !ok {
			continue
		}
		total++
		if best.ClassNoun == synth.ClassNoun(e.Class) {
			correct++
			continue
		}
		// Superclass answers also count (e.g. "scientist" for a chemist).
		for _, super := range w.Truth.Superclasses(e.Class) {
			if synth.ClassNoun(super) == best.ClassNoun {
				correct++
				break
			}
		}
	}
	if total == 0 {
		t.Fatal("no instances classified")
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Errorf("probabilistic taxonomy accuracy = %.3f (%d/%d)", acc, correct, total)
	}
}
