// Package taxonomy implements §2 of the tutorial, "Harvesting Knowledge on
// Entities and Classes": deciding which Wikipedia-style categories are
// conceptual classes (the WikiTaxonomy / YAGO head-noun heuristics),
// assigning entities to those classes, inducing the subclass hierarchy
// from the category graph, and the Web-based alternative — set expansion
// from seeds over list pages and Hearst patterns.
package taxonomy

import (
	"sort"
	"strings"

	"kbharvest/internal/text"
)

// CategoryKind classifies a category title.
type CategoryKind uint8

const (
	// Conceptual categories denote classes ("Physicists", "Cities in
	// Fooland") — their members are instances.
	Conceptual CategoryKind = iota
	// Thematic categories denote topics ("Science", "History of X") —
	// their members are merely related.
	Thematic
	// Administrative categories are wiki maintenance artifacts
	// ("Articles needing cleanup").
	Administrative
)

func (k CategoryKind) String() string {
	switch k {
	case Conceptual:
		return "conceptual"
	case Thematic:
		return "thematic"
	default:
		return "administrative"
	}
}

// Judgment is the analysis of one category title.
type Judgment struct {
	Category string
	Kind     CategoryKind
	// Head is the head noun of the pre-modifier segment ("Cities in
	// Fooland" -> "Cities").
	Head string
	// ClassNoun is the singular class noun for conceptual categories
	// ("Physicists" -> "physicist").
	ClassNoun string
}

// adminHeads are head nouns marking maintenance categories.
var adminHeads = map[string]bool{
	"articles": true, "pages": true, "stubs": true, "templates": true,
	"redirects": true, "lists": true, "disambiguation": true,
}

// Classify applies the head-noun heuristic of WikiTaxonomy/YAGO: take the
// segment of the title before the first preposition, find its head noun;
// administrative heads are filtered; a plural head noun signals a
// conceptual (class) category; singular heads are thematic.
func Classify(category string) Judgment {
	j := Judgment{Category: category}
	head := headNoun(category)
	j.Head = head
	lh := strings.ToLower(head)
	switch {
	case head == "":
		j.Kind = Thematic
	case adminHeads[lh] || containsAdminMarker(category):
		j.Kind = Administrative
	case isPluralNoun(lh):
		j.Kind = Conceptual
		j.ClassNoun = Singular(lh)
	default:
		j.Kind = Thematic
	}
	return j
}

// headNoun returns the last noun of the title segment before the first
// preposition ("Cities in Fooland" -> "Cities"; "History of X" ->
// "History").
func headNoun(title string) string {
	toks := text.Tokenize(title)
	segment := toks
	for i, t := range toks {
		lw := strings.ToLower(t.Text)
		if lw == "in" || lw == "of" || lw == "by" || lw == "from" || lw == "with" || lw == "for" {
			segment = toks[:i]
			break
		}
	}
	for i := len(segment) - 1; i >= 0; i-- {
		w := segment[i].Text
		if isWordToken(w) {
			return w
		}
	}
	return ""
}

func isWordToken(w string) bool {
	for _, r := range w {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '-') {
			return false
		}
	}
	return w != ""
}

func containsAdminMarker(title string) bool {
	lt := strings.ToLower(title)
	for _, marker := range []string{"wikipedia", "unsourced", "cleanup", "broken", "stub"} {
		if strings.Contains(lt, marker) {
			return true
		}
	}
	return false
}

// irregularPlurals maps irregular plural heads to their singulars.
var irregularPlurals = map[string]string{
	"people": "person", "men": "man", "women": "woman",
	"children": "child", "alumni": "alumnus",
}

// isPluralNoun is a morphological plural test adequate for category heads:
// regular -s/-es/-ies plurals plus a small irregular table, rejecting
// common false positives.
func isPluralNoun(lw string) bool {
	if _, ok := irregularPlurals[lw]; ok {
		return true
	}
	if len(lw) < 3 || !strings.HasSuffix(lw, "s") {
		return false
	}
	switch {
	case strings.HasSuffix(lw, "ss"), strings.HasSuffix(lw, "us"),
		strings.HasSuffix(lw, "is"), strings.HasSuffix(lw, "news"):
		return false
	}
	return true
}

// Singular inverts the regular plural: "cities" -> "city", "boxes" ->
// "box", "physicists" -> "physicist".
func Singular(plural string) string {
	lw := strings.ToLower(plural)
	if s, ok := irregularPlurals[lw]; ok {
		return s
	}
	switch {
	case strings.HasSuffix(lw, "ies") && len(lw) > 3:
		return lw[:len(lw)-3] + "y"
	case strings.HasSuffix(lw, "ches"), strings.HasSuffix(lw, "shes"),
		strings.HasSuffix(lw, "sses"), strings.HasSuffix(lw, "xes"):
		return lw[:len(lw)-2]
	case strings.HasSuffix(lw, "s"):
		return lw[:len(lw)-1]
	}
	return lw
}

// Page is the slice of an article the harvester needs: who the page is
// about and which categories it carries.
type Page struct {
	Subject    string // entity identifier
	Categories []string
}

// TypeFact is one harvested instance-of assertion.
type TypeFact struct {
	Entity    string
	ClassNoun string // singular class noun, e.g. "physicist"
	Category  string // the category it came from
}

// HarvestTypes runs category analysis over pages and emits a type fact for
// every (page, conceptual category) pair.
func HarvestTypes(pages []Page) []TypeFact {
	var out []TypeFact
	for _, p := range pages {
		for _, cat := range p.Categories {
			j := Classify(cat)
			if j.Kind == Conceptual {
				out = append(out, TypeFact{Entity: p.Subject, ClassNoun: j.ClassNoun, Category: cat})
			}
		}
	}
	return out
}

// SubclassEdge is one induced subclass relation between class nouns.
type SubclassEdge struct {
	Sub, Super string // singular class nouns
}

// InduceSubclasses walks the category parent graph and keeps edges where
// both endpoints are conceptual — the category-system projection of the
// class taxonomy (§2).
func InduceSubclasses(categoryParents map[string][]string) []SubclassEdge {
	var out []SubclassEdge
	seen := make(map[SubclassEdge]bool)
	cats := make([]string, 0, len(categoryParents))
	for c := range categoryParents {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for _, cat := range cats {
		cj := Classify(cat)
		if cj.Kind != Conceptual {
			continue
		}
		for _, parent := range categoryParents[cat] {
			pj := Classify(parent)
			if pj.Kind != Conceptual || pj.ClassNoun == cj.ClassNoun {
				continue
			}
			e := SubclassEdge{Sub: cj.ClassNoun, Super: pj.ClassNoun}
			if !seen[e] {
				seen[e] = true
				out = append(out, e)
			}
		}
	}
	return out
}
