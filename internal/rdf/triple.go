package rdf

import "strings"

// Triple is one SPO (subject-predicate-object) statement, the atomic unit
// of knowledge in the data model used by DBpedia, YAGO, Freebase, and the
// other knowledge bases the tutorial surveys.
type Triple struct {
	S, P, O Term
}

// T is shorthand for building a triple from three IRIs, which is the
// overwhelmingly common case in entity-relationship facts.
func T(s, p, o string) Triple {
	return Triple{S: NewIRI(s), P: NewIRI(p), O: NewIRI(o)}
}

// TL is shorthand for building a triple whose object is a plain literal.
func TL(s, p, lex string) Triple {
	return Triple{S: NewIRI(s), P: NewIRI(p), O: NewLiteral(lex)}
}

// String renders the triple in N-Triples syntax, terminated with " .".
func (t Triple) String() string {
	var b strings.Builder
	b.WriteString(t.S.String())
	b.WriteByte(' ')
	b.WriteString(t.P.String())
	b.WriteByte(' ')
	b.WriteString(t.O.String())
	b.WriteString(" .")
	return b.String()
}

// Equal reports whether two triples are identical.
func (t Triple) Equal(u Triple) bool { return t == u }

// Compare orders triples lexicographically by subject, predicate, object.
func (t Triple) Compare(u Triple) int {
	if c := t.S.Compare(u.S); c != 0 {
		return c
	}
	if c := t.P.Compare(u.P); c != 0 {
		return c
	}
	return t.O.Compare(u.O)
}

// Well-known vocabulary IRIs. The tutorial's examples use RDF/RDFS/OWL
// core vocabulary plus KB-specific relations; we keep the standard ones
// here and let each KB define its own relation IRIs.
const (
	// RDFType is rdf:type, linking an entity to a class (§2).
	RDFType = "rdf:type"
	// RDFSSubClassOf is rdfs:subClassOf, the taxonomy backbone (§2).
	RDFSSubClassOf = "rdfs:subClassOf"
	// RDFSLabel is rdfs:label, attaching (possibly multilingual) names.
	RDFSLabel = "rdfs:label"
	// OWLSameAs is owl:sameAs, the entity-linkage relation (§4).
	OWLSameAs = "owl:sameAs"
	// SKOSAltLabel holds alternative surface forms (aliases) of an entity.
	SKOSAltLabel = "skos:altLabel"
	// XSDDate marks date-typed literals.
	XSDDate = "xsd:date"
	// XSDInteger marks integer-typed literals.
	XSDInteger = "xsd:integer"
	// XSDDouble marks floating-point-typed literals.
	XSDDouble = "xsd:double"
)
