package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Writer serializes triples in N-Triples syntax, one statement per line.
type Writer struct {
	w   *bufio.Writer
	n   int
	err error
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write emits one triple. Errors are sticky: after the first failure all
// subsequent writes are no-ops returning the same error.
func (w *Writer) Write(t Triple) error {
	if w.err != nil {
		return w.err
	}
	if _, err := w.w.WriteString(t.String()); err != nil {
		w.err = err
		return err
	}
	if err := w.w.WriteByte('\n'); err != nil {
		w.err = err
		return err
	}
	w.n++
	return nil
}

// Count returns the number of triples successfully written.
func (w *Writer) Count() int { return w.n }

// Flush flushes buffered output.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader parses N-Triples input line by line. It accepts the subset of the
// grammar this package's Writer emits (IRIs, blank nodes, plain, typed and
// language-tagged literals) plus comment and blank lines.
type Reader struct {
	s    *bufio.Scanner
	line int
}

// NewReader returns a Reader consuming r.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	return &Reader{s: s}
}

// Read returns the next triple, or io.EOF when input is exhausted.
func (r *Reader) Read() (Triple, error) {
	for r.s.Scan() {
		r.line++
		line := strings.TrimSpace(r.s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := ParseTriple(line)
		if err != nil {
			return Triple{}, fmt.Errorf("rdf: line %d: %w", r.line, err)
		}
		return t, nil
	}
	if err := r.s.Err(); err != nil {
		return Triple{}, fmt.Errorf("rdf: scan: %w", err)
	}
	return Triple{}, io.EOF
}

// ReadAll consumes the reader and returns every triple.
func ReadAll(r io.Reader) ([]Triple, error) {
	rd := NewReader(r)
	var out []Triple
	for {
		t, err := rd.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}

// WriteAll writes every triple to w in N-Triples syntax.
func WriteAll(w io.Writer, triples []Triple) error {
	nw := NewWriter(w)
	for _, t := range triples {
		if err := nw.Write(t); err != nil {
			return err
		}
	}
	return nw.Flush()
}

// ParseTriple parses a single N-Triples statement line (with or without the
// trailing " .").
// ParseTerm parses one term in N-Triples syntax — the format Term.String
// produces — so serialized terms (IRIs, plain/lang-tagged/typed literals,
// blank nodes) round-trip through a single string. Trailing content after
// the term is an error.
func ParseTerm(s string) (Term, error) {
	p := &parser{in: s}
	t, err := p.term()
	if err != nil {
		return Term{}, err
	}
	p.skipSpace()
	if p.pos < len(p.in) {
		return Term{}, fmt.Errorf("trailing content %q after term", p.in[p.pos:])
	}
	return t, nil
}

func ParseTriple(line string) (Triple, error) {
	p := &parser{in: line}
	s, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("subject: %w", err)
	}
	pr, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("predicate: %w", err)
	}
	if !pr.IsIRI() {
		return Triple{}, fmt.Errorf("predicate must be an IRI, got %s", pr)
	}
	o, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("object: %w", err)
	}
	p.skipSpace()
	if p.pos < len(p.in) && p.in[p.pos] == '.' {
		p.pos++
	}
	p.skipSpace()
	if p.pos < len(p.in) {
		return Triple{}, fmt.Errorf("trailing content %q", p.in[p.pos:])
	}
	return Triple{S: s, P: pr, O: o}, nil
}

type parser struct {
	in  string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) term() (Term, error) {
	p.skipSpace()
	if p.pos >= len(p.in) {
		return Term{}, fmt.Errorf("unexpected end of statement")
	}
	switch p.in[p.pos] {
	case '<':
		return p.iri()
	case '_':
		return p.blank()
	case '"':
		return p.literal()
	}
	return Term{}, fmt.Errorf("unexpected character %q at offset %d", p.in[p.pos], p.pos)
}

func (p *parser) iri() (Term, error) {
	end := strings.IndexByte(p.in[p.pos:], '>')
	if end < 0 {
		return Term{}, fmt.Errorf("unterminated IRI")
	}
	iri := p.in[p.pos+1 : p.pos+end]
	p.pos += end + 1
	return NewIRI(iri), nil
}

func (p *parser) blank() (Term, error) {
	if p.pos+1 >= len(p.in) || p.in[p.pos+1] != ':' {
		return Term{}, fmt.Errorf("malformed blank node")
	}
	start := p.pos + 2
	end := start
	for end < len(p.in) && p.in[end] != ' ' && p.in[end] != '\t' {
		end++
	}
	if end == start {
		return Term{}, fmt.Errorf("empty blank node label")
	}
	label := p.in[start:end]
	p.pos = end
	return NewBlank(label), nil
}

func (p *parser) literal() (Term, error) {
	// Find the closing quote, honoring backslash escapes.
	i := p.pos + 1
	for i < len(p.in) {
		if p.in[i] == '\\' {
			i += 2
			continue
		}
		if p.in[i] == '"' {
			break
		}
		i++
	}
	if i >= len(p.in) {
		return Term{}, fmt.Errorf("unterminated literal")
	}
	lex := unescapeLiteral(p.in[p.pos+1 : i])
	p.pos = i + 1
	// Optional language tag or datatype.
	if p.pos < len(p.in) && p.in[p.pos] == '@' {
		start := p.pos + 1
		end := start
		for end < len(p.in) && p.in[end] != ' ' && p.in[end] != '\t' {
			end++
		}
		if end == start {
			return Term{}, fmt.Errorf("empty language tag")
		}
		lang := p.in[start:end]
		p.pos = end
		return NewLangLiteral(lex, lang), nil
	}
	if strings.HasPrefix(p.in[p.pos:], "^^<") {
		p.pos += 2
		dt, err := p.iri()
		if err != nil {
			return Term{}, fmt.Errorf("datatype: %w", err)
		}
		return NewTypedLiteral(lex, dt.Value), nil
	}
	return NewLiteral(lex), nil
}
