// Package rdf implements the RDF-style SPO (subject-predicate-object) data
// model that today's knowledge bases use to represent their content
// (tutorial §2, "Digital Knowledge"). It provides IRIs, typed and
// language-tagged literals, triples, prefix handling, and an N-Triples
// style reader/writer.
//
// The model is deliberately minimal: everything a knowledge base needs to
// state facts like
//
//	yago:Steve_Jobs rdf:type yago:ComputerPioneer .
//	yago:Steve_Jobs yago:bornOnDate "1955-02-24"^^xsd:date .
//	yago:Steve_Jobs rdfs:label "Steve Jobs"@en .
//
// and nothing more.
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates the three kinds of RDF terms this package models.
type TermKind uint8

const (
	// IRI identifies an entity, class, or relation.
	IRI TermKind = iota
	// Literal is a (possibly typed or language-tagged) string value.
	Literal
	// Blank is an anonymous node, used for reified fact identifiers.
	Blank
)

func (k TermKind) String() string {
	switch k {
	case IRI:
		return "iri"
	case Literal:
		return "literal"
	case Blank:
		return "blank"
	}
	return fmt.Sprintf("TermKind(%d)", uint8(k))
}

// Term is one RDF term: an IRI, a literal, or a blank node.
//
// The zero Term is the empty IRI, which is never valid in a triple; use
// NewIRI, NewLiteral, and friends to build terms.
type Term struct {
	// Kind says which of the three term kinds this is.
	Kind TermKind
	// Value is the IRI string, the literal lexical form, or the blank
	// node label, depending on Kind.
	Value string
	// Lang is the language tag of a language-tagged literal ("en", "de");
	// empty otherwise.
	Lang string
	// Datatype is the datatype IRI of a typed literal
	// (e.g. "xsd:date"); empty for plain and language-tagged literals.
	Datatype string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewLiteral returns a plain literal term.
func NewLiteral(lex string) Term { return Term{Kind: Literal, Value: lex} }

// NewLangLiteral returns a language-tagged literal such as "Steve Jobs"@en.
func NewLangLiteral(lex, lang string) Term {
	return Term{Kind: Literal, Value: lex, Lang: lang}
}

// NewTypedLiteral returns a typed literal such as "1955-02-24"^^xsd:date.
func NewTypedLiteral(lex, datatype string) Term {
	return Term{Kind: Literal, Value: lex, Datatype: datatype}
}

// NewBlank returns a blank node with the given label (without the "_:"
// prefix).
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsLiteral reports whether the term is a literal of any flavor.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == Blank }

// IsZero reports whether the term is the zero value (empty IRI), which is
// used as a wildcard in triple patterns.
func (t Term) IsZero() bool {
	return t.Kind == IRI && t.Value == "" && t.Lang == "" && t.Datatype == ""
}

// Equal reports whether two terms are identical.
func (t Term) Equal(u Term) bool { return t == u }

// String renders the term in N-Triples surface syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Blank:
		return "_:" + t.Value
	case Literal:
		var b strings.Builder
		b.WriteByte('"')
		b.WriteString(escapeLiteral(t.Value))
		b.WriteByte('"')
		if t.Lang != "" {
			b.WriteByte('@')
			b.WriteString(t.Lang)
		} else if t.Datatype != "" {
			b.WriteString("^^<")
			b.WriteString(t.Datatype)
			b.WriteByte('>')
		}
		return b.String()
	}
	return fmt.Sprintf("?%d?", t.Kind)
}

// Compare orders terms: by kind, then value, then language, then datatype.
// It returns -1, 0, or +1.
func (t Term) Compare(u Term) int {
	if t.Kind != u.Kind {
		if t.Kind < u.Kind {
			return -1
		}
		return 1
	}
	if c := strings.Compare(t.Value, u.Value); c != 0 {
		return c
	}
	if c := strings.Compare(t.Lang, u.Lang); c != 0 {
		return c
	}
	return strings.Compare(t.Datatype, u.Datatype)
}

func escapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func unescapeLiteral(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	esc := false
	for _, r := range s {
		if !esc {
			if r == '\\' {
				esc = true
			} else {
				b.WriteRune(r)
			}
			continue
		}
		switch r {
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		case 't':
			b.WriteByte('\t')
		default:
			b.WriteRune(r)
		}
		esc = false
	}
	return b.String()
}
