package rdf

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	tests := []struct {
		name string
		term Term
		kind TermKind
		str  string
	}{
		{"iri", NewIRI("yago:Steve_Jobs"), IRI, "<yago:Steve_Jobs>"},
		{"plain literal", NewLiteral("Steve Jobs"), Literal, `"Steve Jobs"`},
		{"lang literal", NewLangLiteral("Steve Jobs", "en"), Literal, `"Steve Jobs"@en`},
		{"typed literal", NewTypedLiteral("1955-02-24", XSDDate), Literal, `"1955-02-24"^^<xsd:date>`},
		{"blank", NewBlank("f42"), Blank, "_:f42"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.term.Kind != tt.kind {
				t.Errorf("kind = %v, want %v", tt.term.Kind, tt.kind)
			}
			if got := tt.term.String(); got != tt.str {
				t.Errorf("String() = %q, want %q", got, tt.str)
			}
		})
	}
}

func TestTermPredicates(t *testing.T) {
	if !NewIRI("a").IsIRI() || NewIRI("a").IsLiteral() || NewIRI("a").IsBlank() {
		t.Error("IRI predicates wrong")
	}
	if !NewLiteral("a").IsLiteral() || NewLiteral("a").IsIRI() {
		t.Error("literal predicates wrong")
	}
	if !NewBlank("a").IsBlank() {
		t.Error("blank predicate wrong")
	}
	if !(Term{}).IsZero() {
		t.Error("zero Term should report IsZero")
	}
	if NewIRI("a").IsZero() {
		t.Error("non-empty IRI should not be zero")
	}
}

func TestTermKindString(t *testing.T) {
	if IRI.String() != "iri" || Literal.String() != "literal" || Blank.String() != "blank" {
		t.Errorf("kind strings: %s %s %s", IRI, Literal, Blank)
	}
	if got := TermKind(9).String(); !strings.Contains(got, "9") {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestTermCompare(t *testing.T) {
	a := NewIRI("a")
	b := NewIRI("b")
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 || a.Compare(a) != 0 {
		t.Error("IRI ordering wrong")
	}
	if NewIRI("x").Compare(NewLiteral("x")) >= 0 {
		t.Error("IRIs should sort before literals")
	}
	if NewLangLiteral("x", "de").Compare(NewLangLiteral("x", "en")) >= 0 {
		t.Error("language tags should break ties")
	}
	if NewTypedLiteral("x", "a").Compare(NewTypedLiteral("x", "b")) >= 0 {
		t.Error("datatypes should break ties")
	}
}

func TestTripleString(t *testing.T) {
	tr := T("yago:Steve_Jobs", RDFType, "yago:ComputerPioneer")
	want := "<yago:Steve_Jobs> <rdf:type> <yago:ComputerPioneer> ."
	if got := tr.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestTripleCompare(t *testing.T) {
	a := T("a", "p", "x")
	b := T("a", "p", "y")
	c := T("a", "q", "x")
	d := T("b", "p", "x")
	if a.Compare(b) >= 0 || a.Compare(c) >= 0 || a.Compare(d) >= 0 {
		t.Error("triple ordering wrong")
	}
	if a.Compare(a) != 0 || !a.Equal(a) || a.Equal(b) {
		t.Error("triple equality wrong")
	}
}

func TestParseTriple(t *testing.T) {
	tests := []struct {
		in   string
		want Triple
	}{
		{
			"<s> <p> <o> .",
			T("s", "p", "o"),
		},
		{
			"<s> <p> <o>", // trailing dot optional
			T("s", "p", "o"),
		},
		{
			`<s> <rdfs:label> "Steve Jobs"@en .`,
			Triple{NewIRI("s"), NewIRI("rdfs:label"), NewLangLiteral("Steve Jobs", "en")},
		},
		{
			`<s> <born> "1955-02-24"^^<xsd:date> .`,
			Triple{NewIRI("s"), NewIRI("born"), NewTypedLiteral("1955-02-24", XSDDate)},
		},
		{
			`_:f1 <about> <s> .`,
			Triple{NewBlank("f1"), NewIRI("about"), NewIRI("s")},
		},
		{
			`<s> <says> "a \"quoted\" phrase" .`,
			Triple{NewIRI("s"), NewIRI("says"), NewLiteral(`a "quoted" phrase`)},
		},
		{
			"<s>\t<p>\t<o> .",
			T("s", "p", "o"),
		},
	}
	for _, tt := range tests {
		got, err := ParseTriple(tt.in)
		if err != nil {
			t.Errorf("ParseTriple(%q): %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseTriple(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestParseTripleErrors(t *testing.T) {
	bad := []string{
		"",
		"<s>",
		"<s> <p>",
		"<s <p> <o> .",
		`<s> "lit" <o> .`, // literal predicate
		`<s> <p> "unterminated .`,
		"<s> <p> <o> extra .",
		"_ <p> <o> .",
		"_: <p> <o> .",
		`<s> <p> "x"@ .`,
		"? <p> <o> .",
	}
	for _, in := range bad {
		if _, err := ParseTriple(in); err == nil {
			t.Errorf("ParseTriple(%q) should fail", in)
		}
	}
}

func TestReaderWriterRoundTrip(t *testing.T) {
	triples := []Triple{
		T("yago:Steve_Jobs", RDFType, "yago:Entrepreneur"),
		{NewIRI("yago:Steve_Jobs"), NewIRI(RDFSLabel), NewLangLiteral("Steve Jobs", "en")},
		{NewIRI("yago:Steve_Jobs"), NewIRI("yago:bornOnDate"), NewTypedLiteral("1955-02-24", XSDDate)},
		{NewBlank("f1"), NewIRI("kb:confidence"), NewTypedLiteral("0.92", XSDDouble)},
		TL("yago:Apple_Inc", "kb:motto", "Think different\nAlways"),
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, triples); err != nil {
		t.Fatalf("WriteAll: %v", err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !reflect.DeepEqual(got, triples) {
		t.Errorf("round trip mismatch:\ngot  %v\nwant %v", got, triples)
	}
}

func TestReaderSkipsCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n<s> <p> <o> .\n   \n# another\n<s2> <p> <o> .\n"
	got, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d triples, want 2", len(got))
	}
}

func TestReaderReportsLineNumbers(t *testing.T) {
	in := "<s> <p> <o> .\nbroken line\n"
	_, err := ReadAll(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("want line-2 error, got %v", err)
	}
}

func TestWriterCount(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 5; i++ {
		if err := w.Write(T("s", "p", "o")); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 5 {
		t.Errorf("Count = %d, want 5", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, io.ErrClosedPipe
	}
	f.after -= len(p)
	return len(p), nil
}

func TestWriterStickyError(t *testing.T) {
	w := NewWriter(&failWriter{after: 1})
	var firstErr error
	for i := 0; i < 100000 && firstErr == nil; i++ {
		firstErr = w.Write(TL("s", "p", strings.Repeat("x", 100)))
	}
	if firstErr == nil {
		// Error may only surface at Flush for small writes.
		firstErr = w.Flush()
	}
	if firstErr == nil {
		t.Fatal("expected an error from failing writer")
	}
	if err := w.Write(T("s", "p", "o")); err == nil && w.err == nil {
		t.Error("error should be sticky")
	}
}

func TestEscapeRoundTripQuick(t *testing.T) {
	f := func(s string) bool {
		return unescapeLiteral(escapeLiteral(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// randomTerm builds a random valid object term for property testing.
func randomTerm(r *rand.Rand) Term {
	alpha := func(n int) string {
		const chars = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:-."
		b := make([]byte, 1+r.Intn(n))
		for i := range b {
			b[i] = chars[r.Intn(len(chars))]
		}
		return string(b)
	}
	text := func(n int) string {
		const chars = "abcdefghijklmnopqrstuvwxyz \"\\\n\t,.!?éü日本"
		rs := make([]rune, r.Intn(n))
		cr := []rune(chars)
		for i := range rs {
			rs[i] = cr[r.Intn(len(cr))]
		}
		return string(rs)
	}
	switch r.Intn(4) {
	case 0:
		return NewIRI(alpha(20))
	case 1:
		return NewLiteral(text(30))
	case 2:
		return NewLangLiteral(text(30), []string{"en", "de", "fr", "zh"}[r.Intn(4)])
	default:
		return NewTypedLiteral(text(30), []string{XSDDate, XSDInteger, XSDDouble}[r.Intn(3)])
	}
}

func TestTripleSerializationRoundTripQuick(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		tr := Triple{
			S: NewIRI("s" + tripleID(r)),
			P: NewIRI("p" + tripleID(r)),
			O: randomTerm(r),
		}
		got, err := ParseTriple(tr.String())
		if err != nil {
			t.Fatalf("ParseTriple(%q): %v", tr.String(), err)
		}
		if got != tr {
			t.Fatalf("round trip: got %#v want %#v", got, tr)
		}
	}
}

func tripleID(r *rand.Rand) string {
	const chars = "abcdefghijklmnopqrstuvwxyz0123456789_"
	b := make([]byte, 1+r.Intn(12))
	for i := range b {
		b[i] = chars[r.Intn(len(chars))]
	}
	return string(b)
}
