package linkage

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"kbharvest/internal/eval"
	"kbharvest/internal/synth"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0}, {"abc", "", 3}, {"", "abc", 3},
		{"kitten", "sitting", 3}, {"same", "same", 0},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinSymmetricQuick(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestJaroWinkler(t *testing.T) {
	if JaroWinkler("martha", "marhta") < 0.9 {
		t.Error("transposed names should score high")
	}
	if JaroWinkler("same", "same") != 1 {
		t.Error("identical should be 1")
	}
	if JaroWinkler("abc", "xyz") != 0 {
		t.Error("disjoint should be 0")
	}
	// Prefix boost: dixon/dicksonx classic value ~0.813.
	got := JaroWinkler("dixon", "dicksonx")
	if got < 0.76 || got > 0.86 {
		t.Errorf("JaroWinkler(dixon,dicksonx) = %v", got)
	}
}

func TestJaroWinklerRangeQuick(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 20 {
			a = a[:20]
		}
		if len(b) > 20 {
			b = b[:20]
		}
		s := JaroWinkler(a, b)
		return s >= 0 && s <= 1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTokenJaccard(t *testing.T) {
	if TokenJaccard("Acme Systems Inc", "Acme Systems") <= 0.5 {
		t.Error("shared tokens should score high")
	}
	if TokenJaccard("alpha", "beta") != 0 {
		t.Error("disjoint tokens should be 0")
	}
	if TokenJaccard("", "") != 1 {
		t.Error("empty strings should be 1")
	}
}

func TestTrigramJaccard(t *testing.T) {
	typo := TrigramJaccard("Springfield", "Sprngfield")
	unrelated := TrigramJaccard("Springfield", "Shelbyville")
	if typo <= unrelated {
		t.Errorf("trigram: typo %v should beat unrelated %v", typo, unrelated)
	}
}

func rec(id, name string, attrs map[string]string, neighbors ...string) Record {
	return Record{ID: id, Name: name, Attrs: attrs, Neighbors: neighbors}
}

func TestBlockingCoversTruePairsAndPrunes(t *testing.T) {
	a := []Record{
		rec("a1", "Alice Foo", nil),
		rec("a2", "Bob Bar", nil),
		rec("a3", "Carol Moo", nil),
	}
	b := []Record{
		rec("b1", "Alice Fou", nil),
		rec("b2", "Bob Barr", nil),
		rec("b3", "Zed Qux", nil),
	}
	pairs := Blocking(a, b)
	if len(pairs) >= len(a)*len(b) {
		t.Errorf("blocking did not prune: %d pairs", len(pairs))
	}
	// True pairs share a token, so they survive.
	has := map[[2]int]bool{}
	for _, p := range pairs {
		has[[2]int{p.A, p.B}] = true
	}
	if !has[[2]int{0, 0}] || !has[[2]int{1, 1}] {
		t.Errorf("blocking lost true pairs: %v", pairs)
	}
}

func TestAllPairs(t *testing.T) {
	a := []Record{rec("a", "x", nil), rec("b", "y", nil)}
	b := []Record{rec("c", "z", nil)}
	if got := AllPairs(a, b); len(got) != 2 {
		t.Errorf("AllPairs = %v", got)
	}
}

func TestRuleMatcher(t *testing.T) {
	m := RuleMatcher{Threshold: 0.9}
	if ok, _ := m.Match(rec("1", "Alice Foo", nil), rec("2", "Alice Foo", nil)); !ok {
		t.Error("identical names should match")
	}
	if ok, _ := m.Match(rec("1", "Alice Foo", nil), rec("2", "Zed Qux", nil)); ok {
		t.Error("unrelated names should not match")
	}
}

func TestFeaturesShape(t *testing.T) {
	f := Features(rec("1", "Alice", map[string]string{"year": "1950"}),
		rec("2", "Alice", map[string]string{"year": "1950"}))
	if len(f) != 8 {
		t.Fatalf("features = %v", f)
	}
	if f[5] != 1 { // one agreeing attribute
		t.Errorf("agree feature = %v", f[5])
	}
	if f[7] != 1 { // bias
		t.Errorf("bias = %v", f[7])
	}
}

// perturb introduces a typo deterministically.
func perturb(name string, rng *rand.Rand) string {
	if len(name) < 4 {
		return name
	}
	i := 1 + rng.Intn(len(name)-2)
	switch rng.Intn(3) {
	case 0: // drop
		return name[:i] + name[i+1:]
	case 1: // swap
		b := []byte(name)
		b[i], b[i+1] = b[i+1], b[i]
		return string(b)
	default: // duplicate
		return name[:i] + string(name[i]) + name[i:]
	}
}

// buildEditions derives two overlapping record sets from a synthetic
// world: edition B has perturbed names and partial attribute overlap.
func buildEditions(seed int64) (a, b []Record, gold map[string]string) {
	w := synth.Generate(synth.Config{
		People: 80, Companies: 20, Cities: 10, Countries: 3,
		Universities: 6, Products: 12, Prizes: 4,
	}, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	gold = map[string]string{}
	for i, p := range w.People {
		attrs := map[string]string{}
		for _, f := range w.FactsOf(synth.RelBornIn) {
			if f.S == p.ID {
				attrs["birthYear"] = fmt.Sprintf("%d", f.Date.Year)
				attrs["birthPlace"] = f.O
			}
		}
		aID := "a:" + p.ID
		a = append(a, Record{ID: aID, Name: p.Name, Aliases: p.Aliases, Attrs: attrs})
		// 85% of entities exist in edition B, with noisy names.
		if i%7 != 0 {
			bID := "b:" + p.ID
			battrs := map[string]string{}
			if rng.Float64() < 0.8 {
				for k, v := range attrs {
					battrs[k] = v
				}
			}
			b = append(b, Record{ID: bID, Name: perturb(p.Name, rng), Aliases: p.Aliases, Attrs: battrs})
			gold[aID] = bID
		}
	}
	return a, b, gold
}

func scoreLinks(links []SameAsLink, gold map[string]string, goldSize int) eval.PRF {
	tp, fp := 0, 0
	for _, l := range links {
		if gold[l.A] == l.B {
			tp++
		} else {
			fp++
		}
	}
	return eval.Score(tp, fp, goldSize-tp)
}

func TestLearnedBeatsRuleOnNoisyEditions(t *testing.T) {
	a, b, gold := buildEditions(81)
	// Training data from a disjoint world.
	ta, tb, tgold := buildEditions(82)
	var examples []LabeledPair
	tbByID := map[string]Record{}
	for _, r := range tb {
		tbByID[r.ID] = r
	}
	rng := rand.New(rand.NewSource(5))
	for _, r := range ta {
		if bid, ok := tgold[r.ID]; ok {
			examples = append(examples, LabeledPair{A: r, B: tbByID[bid], Match: true})
		}
		// Random negatives.
		neg := tb[rng.Intn(len(tb))]
		if tgold[r.ID] != neg.ID {
			examples = append(examples, LabeledPair{A: r, B: neg, Match: false})
		}
	}
	model := TrainLogistic(examples, 20, 0.5, 7)

	pairs := Blocking(a, b)
	ruleLinks := Link(a, b, pairs, RuleMatcher{Threshold: 0.93})
	learnedLinks := Link(a, b, pairs, model)
	ruleScore := scoreLinks(ruleLinks, gold, len(gold))
	learnedScore := scoreLinks(learnedLinks, gold, len(gold))
	t.Logf("rule: %v", ruleScore)
	t.Logf("learned: %v", learnedScore)
	if learnedScore.F1 <= ruleScore.F1 {
		t.Errorf("learned matcher (%.3f) should beat rule (%.3f)", learnedScore.F1, ruleScore.F1)
	}
	if learnedScore.F1 < 0.8 {
		t.Errorf("learned F1 = %.3f", learnedScore.F1)
	}
}

func TestBlockingPreservesQuality(t *testing.T) {
	a, b, gold := buildEditions(83)
	m := RuleMatcher{Threshold: 0.90}
	full := Link(a, b, AllPairs(a, b), m)
	blocked := Link(a, b, Blocking(a, b), m)
	fullScore := scoreLinks(full, gold, len(gold))
	blockedScore := scoreLinks(blocked, gold, len(gold))
	if blockedScore.F1 < fullScore.F1-0.05 {
		t.Errorf("blocking lost quality: %.3f vs %.3f", blockedScore.F1, fullScore.F1)
	}
	// And it must actually prune.
	if len(Blocking(a, b)) >= len(a)*len(b)/2 {
		t.Error("blocking pruned too little")
	}
}

func TestLinkOneToOne(t *testing.T) {
	a := []Record{rec("a1", "Alice Foo", nil), rec("a2", "Alice Foo", nil)}
	b := []Record{rec("b1", "Alice Foo", nil)}
	links := Link(a, b, AllPairs(a, b), RuleMatcher{Threshold: 0.9})
	if len(links) != 1 {
		t.Errorf("one-to-one violated: %v", links)
	}
}

func TestPropagateSimilarity(t *testing.T) {
	// Two ambiguous name pairs; neighbors disambiguate.
	a := []Record{
		rec("a1", "Smith", nil, "a2"),
		rec("a2", "Acme", nil, "a1"),
		rec("a3", "Smith", nil, "a4"),
		rec("a4", "Globex", nil, "a3"),
	}
	b := []Record{
		rec("b1", "Smith", nil, "b2"),
		rec("b2", "Acme", nil, "b1"),
		rec("b3", "Smith", nil, "b4"),
		rec("b4", "Globex", nil, "b3"),
	}
	base := map[[2]int]float64{}
	for i := range a {
		for j := range b {
			base[[2]int{i, j}] = JaroWinkler(a[i].Name, b[j].Name)
		}
	}
	out := PropagateSimilarity(a, b, base, 0.4, 3)
	// a1 (Smith near Acme) should now prefer b1 over b3.
	if out[[2]int{0, 0}] <= out[[2]int{0, 2}] {
		t.Errorf("propagation failed: %v vs %v", out[[2]int{0, 0}], out[[2]int{0, 2}])
	}
}

func TestTrainLogisticEmpty(t *testing.T) {
	m := TrainLogistic(nil, 5, 0.1, 1)
	if m == nil || len(m.Weights) == 0 {
		t.Error("empty training should still return a usable model")
	}
}
