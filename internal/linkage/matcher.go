package linkage

import (
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Record is one entity record to link: an identifier, its name(s), and
// flat attribute values (birth year, city, type, ...).
type Record struct {
	ID      string
	Name    string
	Aliases []string
	Attrs   map[string]string
	// Neighbors lists related record IDs within the same source
	// (used by similarity propagation).
	Neighbors []string
}

// CandidatePair is one record pair under consideration.
type CandidatePair struct {
	A, B  int // indexes into the two record slices
	Score float64
}

// Blocking avoids the quadratic cross-product: records sharing a blocking
// key (any name token, lowercased) become candidate pairs — the standard
// token-blocking scheme. Returns candidate index pairs, deduplicated.
func Blocking(a, b []Record) []CandidatePair {
	index := map[string][]int{}
	for j, r := range b {
		for tok := range recordTokens(r) {
			index[tok] = append(index[tok], j)
		}
	}
	seen := map[[2]int]bool{}
	var out []CandidatePair
	for i, r := range a {
		for tok := range recordTokens(r) {
			for _, j := range index[tok] {
				k := [2]int{i, j}
				if !seen[k] {
					seen[k] = true
					out = append(out, CandidatePair{A: i, B: j})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// AllPairs is the no-blocking baseline (quadratic).
func AllPairs(a, b []Record) []CandidatePair {
	out := make([]CandidatePair, 0, len(a)*len(b))
	for i := range a {
		for j := range b {
			out = append(out, CandidatePair{A: i, B: j})
		}
	}
	return out
}

func recordTokens(r Record) map[string]bool {
	toks := tokenSet(r.Name)
	for _, al := range r.Aliases {
		for t := range tokenSet(al) {
			toks[t] = true
		}
	}
	return toks
}

// Features renders a record pair as the numeric feature vector the
// learned matcher consumes.
func Features(a, b Record) []float64 {
	nameJW := JaroWinkler(strings.ToLower(a.Name), strings.ToLower(b.Name))
	nameLev := LevenshteinSim(strings.ToLower(a.Name), strings.ToLower(b.Name))
	nameTok := TokenJaccard(a.Name, b.Name)
	nameTri := TrigramJaccard(a.Name, b.Name)
	// Best alias agreement.
	bestAlias := 0.0
	for _, aa := range append([]string{a.Name}, a.Aliases...) {
		for _, bb := range append([]string{b.Name}, b.Aliases...) {
			if s := JaroWinkler(strings.ToLower(aa), strings.ToLower(bb)); s > bestAlias {
				bestAlias = s
			}
		}
	}
	// Attribute agreement over shared keys.
	agree, disagree := 0.0, 0.0
	for k, va := range a.Attrs {
		vb, ok := b.Attrs[k]
		if !ok {
			continue
		}
		if strings.EqualFold(va, vb) {
			agree++
		} else {
			disagree++
		}
	}
	return []float64{nameJW, nameLev, nameTok, nameTri, bestAlias, agree, disagree, 1 /* bias */}
}

// RuleMatcher is the baseline: match when Jaro-Winkler name similarity
// crosses a threshold.
type RuleMatcher struct{ Threshold float64 }

// Match scores a pair (the JW similarity) and decides.
func (m RuleMatcher) Match(a, b Record) (bool, float64) {
	s := JaroWinkler(strings.ToLower(a.Name), strings.ToLower(b.Name))
	return s >= m.Threshold, s
}

// LogisticMatcher is the learned matcher: logistic regression over
// Features, trained with gradient descent.
type LogisticMatcher struct {
	Weights   []float64
	Threshold float64
}

// LabeledPair is one training example.
type LabeledPair struct {
	A, B  Record
	Match bool
}

// TrainLogistic fits the matcher. Deterministic given the seed.
func TrainLogistic(examples []LabeledPair, epochs int, lr float64, seed int64) *LogisticMatcher {
	if len(examples) == 0 {
		return &LogisticMatcher{Weights: make([]float64, 8), Threshold: 0.5}
	}
	dim := len(Features(examples[0].A, examples[0].B))
	w := make([]float64, dim)
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(len(examples))
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			ex := examples[idx]
			x := Features(ex.A, ex.B)
			p := sigmoid(dot(w, x))
			y := 0.0
			if ex.Match {
				y = 1
			}
			g := p - y
			for d := range w {
				w[d] -= lr * g * x[d]
			}
		}
	}
	return &LogisticMatcher{Weights: w, Threshold: 0.5}
}

// Match applies the trained model.
func (m *LogisticMatcher) Match(a, b Record) (bool, float64) {
	p := sigmoid(dot(m.Weights, Features(a, b)))
	return p >= m.Threshold, p
}

// Matcher is the common interface of rule-based and learned matchers.
type Matcher interface {
	Match(a, b Record) (bool, float64)
}

// SameAsLink is one emitted owl:sameAs assertion.
type SameAsLink struct {
	A, B  string
	Score float64
}

// Link runs a matcher over candidate pairs and resolves conflicts
// one-to-one greedily by descending score (each record links at most
// once) — the shape of sameAs generation between two KB editions.
func Link(a, b []Record, pairs []CandidatePair, m Matcher) []SameAsLink {
	type scored struct {
		i, j  int
		score float64
	}
	var hits []scored
	for _, p := range pairs {
		if ok, s := m.Match(a[p.A], b[p.B]); ok {
			hits = append(hits, scored{p.A, p.B, s})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].score != hits[j].score {
			return hits[i].score > hits[j].score
		}
		if hits[i].i != hits[j].i {
			return hits[i].i < hits[j].i
		}
		return hits[i].j < hits[j].j
	})
	usedA := map[int]bool{}
	usedB := map[int]bool{}
	var out []SameAsLink
	for _, h := range hits {
		if usedA[h.i] || usedB[h.j] {
			continue
		}
		usedA[h.i], usedB[h.j] = true, true
		out = append(out, SameAsLink{A: a[h.i].ID, B: b[h.j].ID, Score: h.score})
	}
	return out
}

// PropagateSimilarity refines pair scores with one round of neighborhood
// reinforcement (similarity-flooding lite): a pair's score rises with the
// average best score of its neighbor pairs. Returns the updated scores
// keyed by (A index, B index).
func PropagateSimilarity(a, b []Record, base map[[2]int]float64, alpha float64, rounds int) map[[2]int]float64 {
	idxA := map[string]int{}
	for i, r := range a {
		idxA[r.ID] = i
	}
	idxB := map[string]int{}
	for j, r := range b {
		idxB[r.ID] = j
	}
	cur := make(map[[2]int]float64, len(base))
	for k, v := range base {
		cur[k] = v
	}
	for round := 0; round < rounds; round++ {
		next := make(map[[2]int]float64, len(cur))
		for k, v := range cur {
			i, j := k[0], k[1]
			// Average of best matching neighbor pair scores.
			sum, cnt := 0.0, 0
			for _, na := range a[i].Neighbors {
				ni, ok := idxA[na]
				if !ok {
					continue
				}
				best := 0.0
				for _, nb := range b[j].Neighbors {
					nj, ok := idxB[nb]
					if !ok {
						continue
					}
					if s := cur[[2]int{ni, nj}]; s > best {
						best = s
					}
				}
				sum += best
				cnt++
			}
			boost := 0.0
			if cnt > 0 {
				boost = sum / float64(cnt)
			}
			nv := (1-alpha)*v + alpha*boost
			if nv > 1 {
				nv = 1
			}
			next[k] = nv
		}
		cur = next
	}
	return cur
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	z := math.Exp(x)
	return z / (1 + z)
}

func dot(w, x []float64) float64 {
	s := 0.0
	for i := range w {
		s += w[i] * x[i]
	}
	return s
}
