// Package linkage implements entity linkage (§4): deciding whether two
// entity records from different knowledge resources denote the same
// real-world entity, and emitting owl:sameAs links at scale. It covers the
// tutorial's method spectrum: string similarity measures, blocking to
// avoid the quadratic cross-product, a learned (logistic regression)
// match classifier, and a graph algorithm that propagates similarity
// along relations.
package linkage

import (
	"strings"
)

// Levenshtein returns the edit distance between two strings.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			m := prev[j] + 1
			if cur[j-1]+1 < m {
				m = cur[j-1] + 1
			}
			if prev[j-1]+cost < m {
				m = prev[j-1] + cost
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// LevenshteinSim normalizes edit distance to a [0,1] similarity.
func LevenshteinSim(a, b string) float64 {
	if a == b {
		return 1
	}
	m := len([]rune(a))
	if n := len([]rune(b)); n > m {
		m = n
	}
	if m == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(m)
}

// JaroWinkler computes the Jaro-Winkler similarity — the classic measure
// for name matching, boosting shared prefixes.
func JaroWinkler(a, b string) float64 {
	j := jaro(a, b)
	if j == 0 {
		return 0
	}
	// Common prefix up to 4 chars.
	prefix := 0
	for i := 0; i < len(a) && i < len(b) && i < 4; i++ {
		if a[i] != b[i] {
			break
		}
		prefix++
	}
	const p = 0.1
	return j + float64(prefix)*p*(1-j)
}

func jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, la)
	matchB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if matchB[j] || ra[i] != rb[j] {
				continue
			}
			matchA[i] = true
			matchB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Transpositions.
	trans := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			trans++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(trans)/2)/m) / 3
}

// TokenJaccard compares the lowercase token sets of two strings.
func TokenJaccard(a, b string) float64 {
	sa := tokenSet(a)
	sb := tokenSet(b)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter, union := 0, len(sb)
	for t := range sa {
		if sb[t] {
			inter++
		} else {
			union++
		}
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func tokenSet(s string) map[string]bool {
	out := map[string]bool{}
	for _, f := range strings.Fields(strings.ToLower(s)) {
		out[strings.Trim(f, ",.;:!?'\"")] = true
	}
	delete(out, "")
	return out
}

// TrigramJaccard compares character trigram sets — robust against
// in-word typos.
func TrigramJaccard(a, b string) float64 {
	ta := trigrams(strings.ToLower(a))
	tb := trigrams(strings.ToLower(b))
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	inter, union := 0, len(tb)
	for g := range ta {
		if tb[g] {
			inter++
		} else {
			union++
		}
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func trigrams(s string) map[string]bool {
	out := map[string]bool{}
	rs := []rune("  " + s + "  ")
	for i := 0; i+3 <= len(rs); i++ {
		out[string(rs[i:i+3])] = true
	}
	return out
}
