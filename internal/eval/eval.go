// Package eval provides the shared evaluation harness: precision, recall,
// F1, accuracy, set-based scoring against gold standards, and aligned
// text-table rendering for the experiment reports in EXPERIMENTS.md.
package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// PRF bundles precision, recall, and F1.
type PRF struct {
	Precision  float64
	Recall     float64
	F1         float64
	TP, FP, FN int
}

// Score computes PRF from counts.
func Score(tp, fp, fn int) PRF {
	p := PRF{TP: tp, FP: fp, FN: fn}
	if tp+fp > 0 {
		p.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		p.Recall = float64(tp) / float64(tp+fn)
	}
	if p.Precision+p.Recall > 0 {
		p.F1 = 2 * p.Precision * p.Recall / (p.Precision + p.Recall)
	}
	return p
}

// SetPRF scores a predicted set against a gold set.
func SetPRF(predicted, gold map[string]bool) PRF {
	tp, fp := 0, 0
	for p := range predicted {
		if gold[p] {
			tp++
		} else {
			fp++
		}
	}
	fn := 0
	for g := range gold {
		if !predicted[g] {
			fn++
		}
	}
	return Score(tp, fp, fn)
}

// SliceSet converts a string slice to a set.
func SliceSet(ss []string) map[string]bool {
	m := make(map[string]bool, len(ss))
	for _, s := range ss {
		m[s] = true
	}
	return m
}

func (p PRF) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F1=%.3f (tp=%d fp=%d fn=%d)",
		p.Precision, p.Recall, p.F1, p.TP, p.FP, p.FN)
}

// Accuracy is correct/total (0 when total is 0).
func Accuracy(correct, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// PrecisionAtK scores the top-k of a ranked prediction list against gold.
func PrecisionAtK(ranked []string, gold map[string]bool, k int) float64 {
	if k > len(ranked) {
		k = len(ranked)
	}
	if k == 0 {
		return 0
	}
	hit := 0
	for _, p := range ranked[:k] {
		if gold[p] {
			hit++
		}
	}
	return float64(hit) / float64(k)
}

// MacroF1 averages F1 over per-class scores.
func MacroF1(scores []PRF) float64 {
	if len(scores) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range scores {
		sum += s.F1
	}
	return sum / float64(len(scores))
}

// MicroPRF pools counts over per-class scores.
func MicroPRF(scores []PRF) PRF {
	tp, fp, fn := 0, 0, 0
	for _, s := range scores {
		tp += s.TP
		fp += s.FP
		fn += s.FN
	}
	return Score(tp, fp, fn)
}

// Table renders aligned experiment tables.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable starts a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				for p := len(c); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// SortRowsBy sorts rows by the numeric or lexical value of column idx.
func (t *Table) SortRowsBy(idx int) {
	sort.SliceStable(t.Rows, func(i, j int) bool {
		var a, b float64
		an, aerr := fmt.Sscanf(t.Rows[i][idx], "%g", &a)
		bn, berr := fmt.Sscanf(t.Rows[j][idx], "%g", &b)
		if an == 1 && bn == 1 && aerr == nil && berr == nil {
			return a < b
		}
		return t.Rows[i][idx] < t.Rows[j][idx]
	})
}
