package eval

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestScore(t *testing.T) {
	p := Score(8, 2, 4)
	if !almost(p.Precision, 0.8) || !almost(p.Recall, 8.0/12) {
		t.Errorf("PRF = %+v", p)
	}
	wantF1 := 2 * 0.8 * (8.0 / 12) / (0.8 + 8.0/12)
	if !almost(p.F1, wantF1) {
		t.Errorf("F1 = %v, want %v", p.F1, wantF1)
	}
}

func TestScoreZeroes(t *testing.T) {
	p := Score(0, 0, 0)
	if p.Precision != 0 || p.Recall != 0 || p.F1 != 0 {
		t.Errorf("zero counts should give zero scores: %+v", p)
	}
}

func TestScorePropertiesQuick(t *testing.T) {
	f := func(tp, fp, fn uint8) bool {
		p := Score(int(tp), int(fp), int(fn))
		return p.Precision >= 0 && p.Precision <= 1 &&
			p.Recall >= 0 && p.Recall <= 1 &&
			p.F1 >= 0 && p.F1 <= 1 &&
			p.F1 <= p.Precision+1e-9 || p.F1 <= p.Recall+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetPRF(t *testing.T) {
	pred := SliceSet([]string{"a", "b", "c"})
	gold := SliceSet([]string{"b", "c", "d", "e"})
	p := SetPRF(pred, gold)
	if p.TP != 2 || p.FP != 1 || p.FN != 2 {
		t.Errorf("SetPRF = %+v", p)
	}
}

func TestAccuracy(t *testing.T) {
	if !almost(Accuracy(3, 4), 0.75) || Accuracy(0, 0) != 0 {
		t.Error("Accuracy wrong")
	}
}

func TestPrecisionAtK(t *testing.T) {
	gold := SliceSet([]string{"a", "c"})
	ranked := []string{"a", "b", "c", "d"}
	if !almost(PrecisionAtK(ranked, gold, 1), 1.0) {
		t.Error("P@1 wrong")
	}
	if !almost(PrecisionAtK(ranked, gold, 2), 0.5) {
		t.Error("P@2 wrong")
	}
	if !almost(PrecisionAtK(ranked, gold, 10), 0.5) {
		t.Error("P@k beyond length should clamp")
	}
	if PrecisionAtK(nil, gold, 3) != 0 {
		t.Error("empty ranking should give 0")
	}
}

func TestMacroMicro(t *testing.T) {
	scores := []PRF{Score(10, 0, 0), Score(0, 10, 10)}
	if !almost(MacroF1(scores), 0.5) {
		t.Errorf("MacroF1 = %v", MacroF1(scores))
	}
	micro := MicroPRF(scores)
	if micro.TP != 10 || micro.FP != 10 || micro.FN != 10 {
		t.Errorf("MicroPRF = %+v", micro)
	}
	if MacroF1(nil) != 0 {
		t.Error("MacroF1(nil) should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("E99: demo", "method", "accuracy", "n")
	tab.AddRow("prior", 0.61234, 100)
	tab.AddRow("joint", 0.87, 100)
	s := tab.String()
	if !strings.Contains(s, "E99: demo") || !strings.Contains(s, "0.612") {
		t.Errorf("table:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 { // title, header, separator, 2 rows -> 5? title+header+sep+2 = 5
		if len(lines) != 5 {
			t.Errorf("table has %d lines:\n%s", len(lines), s)
		}
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tab := NewTable("", "v")
	tab.AddRow(3.0)
	tab.AddRow(12345.6)
	tab.AddRow(0.123456)
	s := tab.String()
	if !strings.Contains(s, "3.0") || !strings.Contains(s, "12346") || !strings.Contains(s, "0.123") {
		t.Errorf("float formatting:\n%s", s)
	}
}

func TestTableSortRowsBy(t *testing.T) {
	tab := NewTable("", "n", "name")
	tab.AddRow(3, "c")
	tab.AddRow(1, "a")
	tab.AddRow(2, "b")
	tab.SortRowsBy(0)
	if tab.Rows[0][1] != "a" || tab.Rows[2][1] != "c" {
		t.Errorf("rows = %v", tab.Rows)
	}
}

func TestPRFString(t *testing.T) {
	s := Score(1, 1, 1).String()
	if !strings.Contains(s, "P=0.500") {
		t.Errorf("String = %q", s)
	}
}
