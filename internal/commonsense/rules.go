package commonsense

import (
	"fmt"
	"sort"

	"kbharvest/internal/core"
	"kbharvest/internal/rdf"
)

// AMIE-style horn-rule mining over the KB: rules of the shapes
//
//	r1(x,y)            => r2(x,y)   (implication)
//	r1(y,x)            => r2(x,y)   (inverse / symmetry)
//	r1(x,z) ∧ r2(z,y)  => r3(x,y)   (chain)
//
// scored with support, head coverage, and PCA confidence — the
// commonsense-rule acquisition the tutorial sketches with the
// "father of a mother's child" example.

// Rule is one mined horn rule.
type Rule struct {
	// Kind is "impl", "inv", or "chain".
	Kind string
	// Body relations (one for impl/inv, two for chain) and the head.
	Body []string
	Head string
	// Support is the number of (x,y) pairs satisfying body and head.
	Support int
	// BodySize is the number of (x,y) pairs satisfying the body.
	BodySize int
	// HeadCoverage = Support / #head facts.
	HeadCoverage float64
	// PCAConfidence = Support / #body pairs whose x has any head fact —
	// the partial-completeness-assumption denominator AMIE introduced.
	PCAConfidence float64
}

// String renders the rule in AMIE notation.
func (r Rule) String() string {
	switch r.Kind {
	case "inv":
		return fmt.Sprintf("%s(y,x) => %s(x,y)  [supp=%d hc=%.2f pca=%.2f]",
			r.Body[0], r.Head, r.Support, r.HeadCoverage, r.PCAConfidence)
	case "chain":
		return fmt.Sprintf("%s(x,z) & %s(z,y) => %s(x,y)  [supp=%d hc=%.2f pca=%.2f]",
			r.Body[0], r.Body[1], r.Head, r.Support, r.HeadCoverage, r.PCAConfidence)
	default:
		return fmt.Sprintf("%s(x,y) => %s(x,y)  [supp=%d hc=%.2f pca=%.2f]",
			r.Body[0], r.Head, r.Support, r.HeadCoverage, r.PCAConfidence)
	}
}

// MineConfig bounds the search.
type MineConfig struct {
	// MinSupport is the minimum rule support. Default 5.
	MinSupport int
	// MinHeadCoverage prunes rules explaining too little of the head.
	// Default 0.05.
	MinHeadCoverage float64
	// MinPCAConfidence gates output quality. Default 0.3.
	MinPCAConfidence float64
	// Relations restricts mining to these relation IRIs (default: all
	// object-property relations in the store except rdf/rdfs builtins).
	Relations []string
}

// DefaultMineConfig returns the standard settings.
func DefaultMineConfig() MineConfig {
	return MineConfig{MinSupport: 5, MinHeadCoverage: 0.05, MinPCAConfidence: 0.3}
}

type pair struct{ x, y string }

// relIndex holds one relation's facts in both directions.
type relIndex struct {
	pairs   map[pair]bool
	bySubj  map[string][]string
	hasSubj map[string]bool
	n       int
}

// MineRules mines rules from the store.
func MineRules(st *core.Store, cfg MineConfig) []Rule {
	if cfg.MinSupport == 0 {
		cfg = MineConfig{
			MinSupport:       DefaultMineConfig().MinSupport,
			MinHeadCoverage:  DefaultMineConfig().MinHeadCoverage,
			MinPCAConfidence: DefaultMineConfig().MinPCAConfidence,
			Relations:        cfg.Relations,
		}
	}
	rels := cfg.Relations
	if len(rels) == 0 {
		for _, p := range st.Predicates() {
			if p.IsIRI() && !isBuiltin(p.Value) {
				rels = append(rels, p.Value)
			}
		}
	}
	sort.Strings(rels)
	idx := map[string]*relIndex{}
	for _, r := range rels {
		ri := &relIndex{
			pairs:   map[pair]bool{},
			bySubj:  map[string][]string{},
			hasSubj: map[string]bool{},
		}
		st.MatchFunc(rdf.Triple{P: rdf.NewIRI(r)}, func(_ core.FactID, t rdf.Triple) bool {
			if !t.S.IsIRI() || !t.O.IsIRI() {
				return true
			}
			p := pair{t.S.Value, t.O.Value}
			if !ri.pairs[p] {
				ri.pairs[p] = true
				ri.bySubj[p.x] = append(ri.bySubj[p.x], p.y)
				ri.hasSubj[p.x] = true
				ri.n++
			}
			return true
		})
		idx[r] = ri
	}

	var out []Rule
	keep := func(r Rule) {
		if r.Support >= cfg.MinSupport &&
			r.HeadCoverage >= cfg.MinHeadCoverage &&
			r.PCAConfidence >= cfg.MinPCAConfidence {
			out = append(out, r)
		}
	}

	// impl and inv rules.
	for _, body := range rels {
		for _, head := range rels {
			if body == head {
				// impl would be trivial; inv(r,r) captures symmetry.
				keep(scoreRule("inv", []string{body}, head, invPairs(idx[body]), idx[head]))
				continue
			}
			keep(scoreRule("impl", []string{body}, head, idx[body].pairs, idx[head]))
			keep(scoreRule("inv", []string{body}, head, invPairs(idx[body]), idx[head]))
		}
	}
	// chain rules r1(x,z) & r2(z,y) => r3(x,y).
	for _, r1 := range rels {
		for _, r2 := range rels {
			joined := joinPairs(idx[r1], idx[r2])
			if len(joined) == 0 {
				continue
			}
			for _, head := range rels {
				keep(scoreRule("chain", []string{r1, r2}, head, joined, idx[head]))
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PCAConfidence != out[j].PCAConfidence {
			return out[i].PCAConfidence > out[j].PCAConfidence
		}
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].String() < out[j].String()
	})
	return out
}

func invPairs(ri *relIndex) map[pair]bool {
	out := make(map[pair]bool, len(ri.pairs))
	for p := range ri.pairs {
		out[pair{p.y, p.x}] = true
	}
	return out
}

// joinPairs computes {(x,y) : r1(x,z), r2(z,y)}, skipping x==y loops.
func joinPairs(r1, r2 *relIndex) map[pair]bool {
	out := map[pair]bool{}
	for p := range r1.pairs {
		for _, y := range r2.bySubj[p.y] {
			if y != p.x {
				out[pair{p.x, y}] = true
			}
		}
	}
	return out
}

func scoreRule(kind string, body []string, head string, bodyPairs map[pair]bool, headIdx *relIndex) Rule {
	support := 0
	pcaDenom := 0
	for p := range bodyPairs {
		if headIdx.pairs[p] {
			support++
		}
		if headIdx.hasSubj[p.x] {
			pcaDenom++
		}
	}
	r := Rule{Kind: kind, Body: body, Head: head, Support: support, BodySize: len(bodyPairs)}
	if headIdx.n > 0 {
		r.HeadCoverage = float64(support) / float64(headIdx.n)
	}
	if pcaDenom > 0 {
		r.PCAConfidence = float64(support) / float64(pcaDenom)
	}
	return r
}

func isBuiltin(iri string) bool {
	switch iri {
	case rdf.RDFType, rdf.RDFSSubClassOf, rdf.RDFSLabel, rdf.SKOSAltLabel, rdf.OWLSameAs:
		return true
	}
	return false
}

// ApplyRule materializes a rule's predictions not yet in the store —
// the inference step that turns mined rules into new candidate facts.
func ApplyRule(st *core.Store, r Rule) []rdf.Triple {
	bodyPairs := map[pair]bool{}
	collect := func(rel string, invert bool) map[pair]bool {
		out := map[pair]bool{}
		st.MatchFunc(rdf.Triple{P: rdf.NewIRI(rel)}, func(_ core.FactID, t rdf.Triple) bool {
			if t.S.IsIRI() && t.O.IsIRI() {
				if invert {
					out[pair{t.O.Value, t.S.Value}] = true
				} else {
					out[pair{t.S.Value, t.O.Value}] = true
				}
			}
			return true
		})
		return out
	}
	switch r.Kind {
	case "impl":
		bodyPairs = collect(r.Body[0], false)
	case "inv":
		bodyPairs = collect(r.Body[0], true)
	case "chain":
		r1 := collect(r.Body[0], false)
		r2 := collect(r.Body[1], false)
		bySubj := map[string][]string{}
		for p := range r2 {
			bySubj[p.x] = append(bySubj[p.x], p.y)
		}
		for p := range r1 {
			for _, y := range bySubj[p.y] {
				if y != p.x {
					bodyPairs[pair{p.x, y}] = true
				}
			}
		}
	}
	var preds []rdf.Triple
	for p := range bodyPairs {
		t := rdf.T(p.x, r.Head, p.y)
		if !st.Has(t) {
			preds = append(preds, t)
		}
	}
	sort.Slice(preds, func(i, j int) bool { return preds[i].Compare(preds[j]) < 0 })
	return preds
}
