package commonsense

import (
	"strings"
	"testing"

	"kbharvest/internal/core"
	"kbharvest/internal/rdf"
	"kbharvest/internal/synth"
)

func TestExtractProperties(t *testing.T) {
	body := "Apples can be red, green, juicy, and sweet. Clarinets are usually cylindrical."
	facts := ExtractProperties(body)
	props := map[string][]string{}
	for _, f := range facts {
		props[f.Concept] = append(props[f.Concept], f.Property)
	}
	if len(props["apple"]) != 4 {
		t.Errorf("apple properties = %v", props["apple"])
	}
	if len(props["clarinet"]) != 1 || props["clarinet"][0] != "cylindrical" {
		t.Errorf("clarinet properties = %v", props["clarinet"])
	}
}

func TestExtractPropertiesStopsAtNonAdjective(t *testing.T) {
	body := "Apples can be red in the northern markets."
	facts := ExtractProperties(body)
	for _, f := range facts {
		if f.Property == "in" || f.Property == "the" {
			t.Errorf("stopword extracted as property: %+v", f)
		}
	}
}

func TestExtractPropertiesIgnoresProperNouns(t *testing.T) {
	body := "He said Steve Jobs can be demanding."
	// Mid-sentence capitalized words are proper nouns, not concepts.
	for _, f := range ExtractProperties(body) {
		if f.Concept == "job" {
			t.Errorf("proper noun treated as concept: %+v", f)
		}
	}
}

func TestExtractParts(t *testing.T) {
	body := "The mouthpiece of a clarinet is delicate. He admired the keel of a ship."
	facts := ExtractParts(body)
	want := map[PartFact]bool{
		{Part: "mouthpiece", Whole: "clarinet"}: true,
		{Part: "keel", Whole: "ship"}:           true,
	}
	if len(facts) != 2 {
		t.Fatalf("parts = %+v", facts)
	}
	for _, f := range facts {
		if !want[f] {
			t.Errorf("unexpected part fact %+v", f)
		}
	}
}

func TestAggregateProperties(t *testing.T) {
	facts := []PropertyFact{
		{Concept: "apple", Property: "red"},
		{Concept: "apple", Property: "red"},
		{Concept: "apple", Property: "sweet"},
	}
	agg := AggregateProperties(facts)
	if len(agg["apple"]) != 2 || agg["apple"][0].Property != "red" || agg["apple"][0].Count != 2 {
		t.Errorf("aggregate = %+v", agg)
	}
}

func buildRuleStore() *core.Store {
	st := core.NewStore()
	// Symmetric relation: marriedTo.
	couples := [][2]string{{"a", "b"}, {"c", "d"}, {"e", "f"}, {"g", "h"}, {"i", "j"}, {"k", "l"}}
	for _, c := range couples {
		st.Add(rdf.T(c[0], "kb:marriedTo", c[1]))
		st.Add(rdf.T(c[1], "kb:marriedTo", c[0]))
	}
	// founded implies ceoOf for most founders.
	for i, c := range couples {
		comp := "comp" + string(rune('0'+i))
		st.Add(rdf.T(c[0], "kb:founded", comp))
		if i < 5 {
			st.Add(rdf.T(c[0], "kb:ceoOf", comp))
		}
	}
	// An unrelated relation to add noise.
	st.Add(rdf.T("a", "kb:likes", "b"))
	return st
}

func TestMineSymmetryRule(t *testing.T) {
	st := buildRuleStore()
	rules := MineRules(st, MineConfig{MinSupport: 4, MinHeadCoverage: 0.1, MinPCAConfidence: 0.5})
	found := false
	for _, r := range rules {
		if r.Kind == "inv" && r.Body[0] == "kb:marriedTo" && r.Head == "kb:marriedTo" {
			found = true
			if r.PCAConfidence < 0.99 {
				t.Errorf("symmetry rule confidence = %v", r.PCAConfidence)
			}
		}
	}
	if !found {
		t.Errorf("symmetry rule not mined; rules = %v", rules)
	}
}

func TestMineImplicationRule(t *testing.T) {
	st := buildRuleStore()
	rules := MineRules(st, MineConfig{MinSupport: 4, MinHeadCoverage: 0.1, MinPCAConfidence: 0.5})
	found := false
	for _, r := range rules {
		if r.Kind == "impl" && r.Body[0] == "kb:founded" && r.Head == "kb:ceoOf" {
			found = true
			if r.Support != 5 {
				t.Errorf("support = %d, want 5", r.Support)
			}
		}
	}
	if !found {
		t.Errorf("founded=>ceoOf not mined; rules = %v", rules)
	}
}

func TestMineChainRule(t *testing.T) {
	st := core.NewStore()
	// worksAt(x,z) & locatedIn(z,y) => worksIn(x,y) — materialize the
	// head for most pairs.
	for i := 0; i < 8; i++ {
		p := "p" + string(rune('0'+i))
		c := "c" + string(rune('0'+i%4))
		city := "city" + string(rune('0'+i%4))
		st.Add(rdf.T(p, "kb:worksAt", c))
		st.Add(rdf.T(c, "kb:locatedIn", city))
		if i != 7 {
			st.Add(rdf.T(p, "kb:worksIn", city))
		}
	}
	rules := MineRules(st, MineConfig{MinSupport: 4, MinHeadCoverage: 0.1, MinPCAConfidence: 0.5})
	found := false
	for _, r := range rules {
		if r.Kind == "chain" && r.Body[0] == "kb:worksAt" && r.Body[1] == "kb:locatedIn" && r.Head == "kb:worksIn" {
			found = true
		}
	}
	if !found {
		t.Errorf("chain rule not mined; rules = %v", rules)
	}
}

func TestMineRulesOnSyntheticWorld(t *testing.T) {
	w := synth.Generate(synth.Config{
		People: 120, Companies: 30, Cities: 12, Countries: 4,
		Universities: 8, Products: 20, Prizes: 5,
	}, 62)
	rules := MineRules(w.Truth, MineConfig{MinSupport: 5, MinHeadCoverage: 0.05, MinPCAConfidence: 0.5})
	if len(rules) == 0 {
		t.Fatal("no rules mined from world")
	}
	// The generator guarantees marriedTo symmetry; the miner must find it.
	foundSym := false
	for _, r := range rules {
		if r.Kind == "inv" && r.Body[0] == synth.RelMarriedTo && r.Head == synth.RelMarriedTo {
			foundSym = true
			if r.PCAConfidence < 0.99 {
				t.Errorf("marriedTo symmetry confidence = %v", r.PCAConfidence)
			}
		}
	}
	if !foundSym {
		t.Error("marriedTo symmetry rule missing")
	}
}

func TestApplyRule(t *testing.T) {
	st := core.NewStore()
	st.Add(rdf.T("a", "kb:marriedTo", "b")) // missing inverse
	st.Add(rdf.T("c", "kb:marriedTo", "d"))
	st.Add(rdf.T("d", "kb:marriedTo", "c")) // complete couple
	rule := Rule{Kind: "inv", Body: []string{"kb:marriedTo"}, Head: "kb:marriedTo"}
	preds := ApplyRule(st, rule)
	if len(preds) != 1 {
		t.Fatalf("predictions = %v", preds)
	}
	if preds[0].S.Value != "b" || preds[0].O.Value != "a" {
		t.Errorf("prediction = %v", preds[0])
	}
}

func TestApplyChainRule(t *testing.T) {
	st := core.NewStore()
	st.Add(rdf.T("p", "kb:worksAt", "c"))
	st.Add(rdf.T("c", "kb:locatedIn", "city"))
	rule := Rule{Kind: "chain", Body: []string{"kb:worksAt", "kb:locatedIn"}, Head: "kb:worksIn"}
	preds := ApplyRule(st, rule)
	if len(preds) != 1 || preds[0].S.Value != "p" || preds[0].O.Value != "city" {
		t.Errorf("predictions = %v", preds)
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{Kind: "chain", Body: []string{"a", "b"}, Head: "c", Support: 3, HeadCoverage: 0.5, PCAConfidence: 0.75}
	s := r.String()
	if !strings.Contains(s, "a(x,z) & b(z,y) => c(x,y)") {
		t.Errorf("String = %q", s)
	}
}
