// Package commonsense implements the commonsense-knowledge component of
// the tutorial (§3): harvesting concept-level knowledge that entity-centric
// KBs miss — properties of concepts ("apples can be red, green, juicy"),
// part-whole relations ("the mouthpiece of a clarinet"), and commonsense
// rules mined from the KB itself with AMIE-style support/confidence
// statistics ("the spouse of a child's mother is usually the father").
package commonsense

import (
	"sort"
	"strings"

	"kbharvest/internal/text"
)

// PropertyFact states that instances of a concept can have a property.
type PropertyFact struct {
	Concept  string // singular concept noun ("apple")
	Property string // adjective ("red")
	Pattern  string // which pattern found it
}

// PartFact states a part-whole relation between concepts.
type PartFact struct {
	Part, Whole string
}

// ExtractProperties finds concept-property patterns in text:
//
//	<plural-noun> can be A, B, and C
//	<plural-noun> are usually A
//	<plural-noun> are A and B
func ExtractProperties(body string) []PropertyFact {
	var out []PropertyFact
	for _, sent := range text.SplitSentences(body) {
		toks := text.Tokenize(sent.Text)
		for i := 0; i+1 < len(toks); i++ {
			raw := toks[i].Text
			// Mid-sentence capitalized words are proper nouns, not
			// concepts; sentence-initially the case is uninformative.
			if i > 0 && raw != strings.ToLower(raw) {
				continue
			}
			w := strings.ToLower(raw)
			if !isPluralConcept(w) {
				continue
			}
			j := i + 1
			pattern := ""
			switch {
			case strings.EqualFold(toks[j].Text, "can") && j+1 < len(toks) && strings.EqualFold(toks[j+1].Text, "be"):
				pattern, j = "can be", j+2
			case strings.EqualFold(toks[j].Text, "are"):
				pattern, j = "are", j+1
				// Skip hedges.
				for j < len(toks) && isHedge(toks[j].Text) {
					j++
				}
			default:
				continue
			}
			concept := singularize(w)
			for _, adj := range adjectiveList(toks, j) {
				out = append(out, PropertyFact{Concept: concept, Property: adj, Pattern: pattern})
			}
		}
	}
	return out
}

func isHedge(w string) bool {
	switch strings.ToLower(w) {
	case "usually", "often", "typically", "generally", "sometimes", "mostly":
		return true
	}
	return false
}

// adjectiveList collects the lowercase adjectives in an enumeration
// starting at token j ("red , green , and juicy").
func adjectiveList(toks []text.Token, j int) []string {
	var out []string
	for ; j < len(toks); j++ {
		w := toks[j].Text
		switch {
		case w == ",", strings.EqualFold(w, "and"), strings.EqualFold(w, "or"):
			continue
		case isLowerAlpha(w) && !text.IsStopword(w):
			tagged := text.TagWords([]string{w})
			if len(tagged) == 1 && (tagged[0].Tag == text.TagJJ || tagged[0].Tag == text.TagNN || tagged[0].Tag == text.TagVBN) {
				out = append(out, strings.ToLower(w))
				continue
			}
			return out
		default:
			return out
		}
	}
	return out
}

// ExtractParts finds "the X of a Y" part-whole constructions.
func ExtractParts(body string) []PartFact {
	var out []PartFact
	seen := map[PartFact]bool{}
	for _, sent := range text.SplitSentences(body) {
		toks := text.Tokenize(sent.Text)
		for i := 0; i+4 < len(toks); i++ {
			if !strings.EqualFold(toks[i].Text, "the") {
				continue
			}
			part := strings.ToLower(toks[i+1].Text)
			if !strings.EqualFold(toks[i+2].Text, "of") {
				continue
			}
			art := strings.ToLower(toks[i+3].Text)
			if art != "a" && art != "an" {
				continue
			}
			whole := strings.ToLower(toks[i+4].Text)
			if !isLowerAlpha(part) || !isLowerAlpha(whole) ||
				text.IsStopword(part) || text.IsStopword(whole) {
				continue
			}
			f := PartFact{Part: part, Whole: whole}
			if !seen[f] {
				seen[f] = true
				out = append(out, f)
			}
		}
	}
	return out
}

func isPluralConcept(w string) bool {
	return len(w) > 3 && strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") &&
		isLowerAlpha(w) && !text.IsStopword(w)
}

func singularize(w string) string {
	switch {
	case strings.HasSuffix(w, "ies"):
		return w[:len(w)-3] + "y"
	case strings.HasSuffix(w, "es") && (strings.HasSuffix(w, "xes") || strings.HasSuffix(w, "ches") || strings.HasSuffix(w, "shes")):
		return w[:len(w)-2]
	default:
		return strings.TrimSuffix(w, "s")
	}
}

func isLowerAlpha(w string) bool {
	if w == "" {
		return false
	}
	for _, r := range w {
		if r < 'a' || r > 'z' {
			return false
		}
	}
	return true
}

// AggregateProperties folds extracted facts into a concept -> properties
// map with counts (repeated evidence ranks properties).
func AggregateProperties(facts []PropertyFact) map[string][]PropertyCount {
	counts := map[string]map[string]int{}
	for _, f := range facts {
		if counts[f.Concept] == nil {
			counts[f.Concept] = map[string]int{}
		}
		counts[f.Concept][f.Property]++
	}
	out := map[string][]PropertyCount{}
	for concept, props := range counts {
		var list []PropertyCount
		for p, n := range props {
			list = append(list, PropertyCount{Property: p, Count: n})
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].Count != list[j].Count {
				return list[i].Count > list[j].Count
			}
			return list[i].Property < list[j].Property
		})
		out[concept] = list
	}
	return out
}

// PropertyCount is one ranked property.
type PropertyCount struct {
	Property string
	Count    int
}
