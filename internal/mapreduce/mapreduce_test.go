package mapreduce

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func wordCountMapper(record interface{}, emit func(string, interface{})) error {
	line, ok := record.(string)
	if !ok {
		return errors.New("not a string")
	}
	for _, w := range strings.Fields(line) {
		emit(w, 1)
	}
	return nil
}

func TestWordCount(t *testing.T) {
	inputs := []interface{}{
		"the quick brown fox",
		"the lazy dog",
		"the quick dog",
	}
	got, err := Run(context.Background(), inputs, wordCountMapper, CountReducer, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, kv := range got {
		counts[kv.Key] = kv.Value.(int)
	}
	want := map[string]int{"the": 3, "quick": 2, "brown": 1, "fox": 1, "lazy": 1, "dog": 2}
	if !reflect.DeepEqual(counts, want) {
		t.Errorf("counts = %v, want %v", counts, want)
	}
}

func TestOutputSortedByKey(t *testing.T) {
	inputs := []interface{}{"b a c", "c b a"}
	got, err := Run(context.Background(), inputs, wordCountMapper, CountReducer, Config{Workers: 3, Partitions: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Key > got[i].Key {
			t.Fatalf("output not sorted: %v", got)
		}
	}
}

func TestCombinerEquivalence(t *testing.T) {
	var inputs []interface{}
	for i := 0; i < 50; i++ {
		inputs = append(inputs, "alpha beta gamma alpha")
	}
	plain, err := Run(context.Background(), inputs, wordCountMapper, CountReducer, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	combined, err := Run(context.Background(), inputs, wordCountMapper, CountReducer, Config{Workers: 4, Combiner: CountReducer})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, combined) {
		t.Errorf("combiner changed results:\n%v\nvs\n%v", plain, combined)
	}
}

func TestWorkerCountsAgree(t *testing.T) {
	var inputs []interface{}
	for i := 0; i < 200; i++ {
		inputs = append(inputs, "x y z w v u t s")
	}
	base, err := Run(context.Background(), inputs, wordCountMapper, CountReducer, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := Run(context.Background(), inputs, wordCountMapper, CountReducer, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("workers=%d results differ from workers=1", workers)
		}
	}
}

func TestMapErrorPropagates(t *testing.T) {
	inputs := []interface{}{"ok", 42} // 42 is not a string
	_, err := Run(context.Background(), inputs, wordCountMapper, CountReducer, Config{Workers: 2})
	if err == nil {
		t.Fatal("expected map error")
	}
	if !strings.Contains(err.Error(), "map record") {
		t.Errorf("error = %v", err)
	}
}

func TestReduceErrorPropagates(t *testing.T) {
	inputs := []interface{}{"a b c"}
	bad := func(key string, values []interface{}, emit func(interface{})) error {
		if key == "b" {
			return errors.New("boom")
		}
		return CountReducer(key, values, emit)
	}
	_, err := Run(context.Background(), inputs, wordCountMapper, bad, Config{Workers: 2})
	if err == nil || !strings.Contains(err.Error(), "reduce key") {
		t.Errorf("expected reduce error, got %v", err)
	}
}

func TestCountReducerTypeError(t *testing.T) {
	m := func(record interface{}, emit func(string, interface{})) error {
		emit("k", "not an int")
		return nil
	}
	if _, err := Run(context.Background(), []interface{}{"x"}, m, CountReducer, Config{}); err == nil {
		t.Error("expected type error from CountReducer")
	}
}

func TestEmptyInput(t *testing.T) {
	got, err := Run(context.Background(), nil, wordCountMapper, CountReducer, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %v", got)
	}
}

func TestMultipleEmitsPerReduce(t *testing.T) {
	m := func(record interface{}, emit func(string, interface{})) error {
		emit("k", record)
		return nil
	}
	r := func(key string, values []interface{}, emit func(interface{})) error {
		for _, v := range values {
			emit(v)
		}
		return nil
	}
	got, err := Run(context.Background(), []interface{}{"a", "b", "c"}, m, r, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("got %d outputs, want 3", len(got))
	}
}

func TestDefaultConfig(t *testing.T) {
	j := NewJob(wordCountMapper, CountReducer, Config{})
	if j.cfg.Workers <= 0 || j.cfg.Partitions <= 0 {
		t.Errorf("defaults not applied: %+v", j.cfg)
	}
}

func TestRunStreamMatchesRun(t *testing.T) {
	var inputs []interface{}
	for i := 0; i < 100; i++ {
		inputs = append(inputs, "stream the quick stream fox")
	}
	want, err := Run(context.Background(), inputs, wordCountMapper, CountReducer, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan interface{}, 3)
	go func() {
		defer close(ch)
		for _, in := range inputs {
			ch <- in
		}
	}()
	got, err := RunStream(context.Background(), ch, wordCountMapper, CountReducer, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("stream results differ:\n%v\nvs\n%v", want, got)
	}
}

func TestRunStreamMapError(t *testing.T) {
	ch := make(chan interface{}, 2)
	ch <- "ok"
	ch <- 42 // not a string
	close(ch)
	_, err := RunStream(context.Background(), ch, wordCountMapper, CountReducer, Config{Workers: 2})
	if err == nil || !strings.Contains(err.Error(), "map record") {
		t.Errorf("expected map error, got %v", err)
	}
}

func TestCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var inputs []interface{}
	for i := 0; i < 100; i++ {
		inputs = append(inputs, "a b c")
	}
	if _, err := Run(ctx, inputs, wordCountMapper, CountReducer, Config{Workers: 2}); !errors.Is(err, context.Canceled) {
		t.Errorf("Run with cancelled ctx = %v, want context.Canceled", err)
	}
	// RunStream must not hang on an open, empty channel once cancelled.
	ch := make(chan interface{})
	if _, err := RunStream(ctx, ch, wordCountMapper, CountReducer, Config{Workers: 2}); !errors.Is(err, context.Canceled) {
		t.Errorf("RunStream with cancelled ctx = %v, want context.Canceled", err)
	}
}
