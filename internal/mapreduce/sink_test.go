package mapreduce

import (
	"context"
	"fmt"
	"testing"

	"kbharvest/internal/core"
	"kbharvest/internal/rdf"
)

func TestTripleBatcherFlushesAtSize(t *testing.T) {
	st := core.NewStore()
	b := NewTripleBatcher(st, 4)
	for i := 0; i < 10; i++ {
		b.Emit(rdf.T(fmt.Sprintf("kb:s%d", i), "kb:p", "kb:o"),
			core.FactInfo{Confidence: 0.5, Source: "batcher"})
	}
	if st.Len() != 8 { // two full batches of 4 auto-flushed
		t.Errorf("before Flush: Len = %d, want 8", st.Len())
	}
	if b.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", b.Pending())
	}
	if total := b.Flush(); total != 10 {
		t.Errorf("Flush total = %d, want 10", total)
	}
	if st.Len() != 10 {
		t.Errorf("after Flush: Len = %d, want 10", st.Len())
	}
	if total := b.Flush(); total != 10 { // idempotent when empty
		t.Errorf("second Flush total = %d, want 10", total)
	}
	// Metadata must have arrived with the facts.
	id, ok := st.FactOf(rdf.T("kb:s0", "kb:p", "kb:o"))
	if !ok {
		t.Fatal("fact missing")
	}
	if info, _ := st.Info(id); info.Source != "batcher" || info.Confidence != 0.5 {
		t.Errorf("info = %+v", info)
	}
}

func TestTripleBatcherAsReducerSink(t *testing.T) {
	// One batcher per reduce partition, flushed after the job: the
	// intended wiring for store-backed reduce outputs.
	st := core.NewStore()
	inputs := make([]interface{}, 50)
	for i := range inputs {
		inputs[i] = i
	}
	mapper := func(rec interface{}, emit func(string, interface{})) error {
		i := rec.(int)
		emit(fmt.Sprintf("kb:e%d", i%10), i)
		return nil
	}
	b := NewTripleBatcher(st, 16)
	var mu = make(chan struct{}, 1)
	reducer := func(key string, values []interface{}, emit func(interface{})) error {
		mu <- struct{}{}
		b.Emit(rdf.T(key, "kb:count", fmt.Sprintf("%d", len(values))),
			core.FactInfo{Confidence: 1, Source: "mapreduce"})
		<-mu
		emit(len(values))
		return nil
	}
	if _, err := Run(context.Background(), inputs, mapper, reducer, Config{Workers: 4, Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	b.Flush()
	if st.Len() != 10 {
		t.Errorf("Len = %d, want 10", st.Len())
	}
}
