// Package mapreduce is an in-process map-reduce engine. The tutorial
// highlights "big-data techniques like frequent sequence mining and
// map-reduce computation" as the scalability substrate of open information
// extraction (§3); this package supplies the programming model — mappers,
// hash-partitioned shuffle, optional combiners, reducers — with a bounded
// worker pool, so extraction jobs can demonstrate near-linear scaling with
// worker count (experiment E8).
//
// Jobs are context-aware and cancellable: map and reduce workers check the
// context between records and between keys, so Run returns promptly with
// the context error once it is cancelled. Besides the slice entry point
// (Run), RunStream consumes records from a channel, letting callers feed
// inputs as they are produced instead of materializing the whole input in
// one []interface{} up front.
package mapreduce

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
)

// KV is one intermediate key-value pair.
type KV struct {
	Key   string
	Value interface{}
}

// MapFunc consumes one input record and emits intermediate pairs.
type MapFunc func(record interface{}, emit func(key string, value interface{})) error

// ReduceFunc folds all values of one key into zero or more outputs.
type ReduceFunc func(key string, values []interface{}, emit func(value interface{})) error

// Config tunes a job.
type Config struct {
	// Workers is the mapper/reducer parallelism. Defaults to GOMAXPROCS.
	Workers int
	// Partitions is the number of shuffle partitions. Defaults to
	// Workers.
	Partitions int
	// Combiner, if set, pre-reduces mapper-local outputs per key before
	// the shuffle, cutting shuffle volume (the classic word-count
	// optimization).
	Combiner ReduceFunc
}

// Job is one configured map-reduce computation.
type Job struct {
	mapFn    MapFunc
	reduceFn ReduceFunc
	cfg      Config
}

// NewJob builds a job from a mapper and reducer.
func NewJob(m MapFunc, r ReduceFunc, cfg Config) *Job {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = cfg.Workers
	}
	return &Job{mapFn: m, reduceFn: r, cfg: cfg}
}

// Run executes the job over the input records and returns the reducer
// outputs grouped by key, sorted by key for determinism. Cancelling the
// context aborts the job between records/keys with the context error.
func (j *Job) Run(ctx context.Context, inputs []interface{}) ([]KV, error) {
	parts, err := j.mapPhase(ctx, inputs, nil)
	if err != nil {
		return nil, err
	}
	return j.reducePhase(ctx, parts)
}

// RunStream is Run over a record channel: map workers pull records as they
// arrive, so the caller can generate inputs incrementally (and stop early
// on cancellation) instead of boxing the entire input into one slice.
// Record-to-worker assignment is scheduling-dependent, so jobs whose
// reducers are order-sensitive within a key should use Run.
func (j *Job) RunStream(ctx context.Context, records <-chan interface{}) ([]KV, error) {
	parts, err := j.mapPhase(ctx, nil, records)
	if err != nil {
		return nil, err
	}
	return j.reducePhase(ctx, parts)
}

// mapPhase fans inputs over workers; each worker keeps per-partition
// buffers to avoid lock contention, merged at the end. Records come from
// the slice (strided, deterministic assignment) or, if records != nil,
// from the channel (dynamic assignment).
func (j *Job) mapPhase(ctx context.Context, inputs []interface{}, records <-chan interface{}) ([]map[string][]interface{}, error) {
	nw := j.cfg.Workers
	type workerState struct {
		parts []map[string][]interface{}
		err   error
	}
	states := make([]workerState, nw)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		states[w].parts = make([]map[string][]interface{}, j.cfg.Partitions)
		for p := range states[w].parts {
			states[w].parts[p] = make(map[string][]interface{})
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &states[w]
			emit := func(key string, value interface{}) {
				p := partitionOf(key, j.cfg.Partitions)
				st.parts[p][key] = append(st.parts[p][key], value)
			}
			mapRecords := func() error {
				if records != nil {
					for n := 0; ; n++ {
						select {
						case <-ctx.Done():
							return fmt.Errorf("mapreduce: map: %w", ctx.Err())
						case rec, ok := <-records:
							if !ok {
								return nil
							}
							if err := j.mapFn(rec, emit); err != nil {
								return fmt.Errorf("mapreduce: map record (worker %d, #%d): %w", w, n, err)
							}
						}
					}
				}
				for i := w; i < len(inputs); i += nw {
					if err := ctx.Err(); err != nil {
						return fmt.Errorf("mapreduce: map: %w", err)
					}
					if err := j.mapFn(inputs[i], emit); err != nil {
						return fmt.Errorf("mapreduce: map record %d: %w", i, err)
					}
				}
				return nil
			}
			if err := mapRecords(); err != nil {
				st.err = err
				return
			}
			if j.cfg.Combiner != nil {
				for p := range st.parts {
					combined, err := combine(j.cfg.Combiner, st.parts[p])
					if err != nil {
						st.err = err
						return
					}
					st.parts[p] = combined
				}
			}
		}(w)
	}
	wg.Wait()
	for w := range states {
		if states[w].err != nil {
			return nil, states[w].err
		}
	}
	// Merge worker-local partitions into global partitions.
	global := make([]map[string][]interface{}, j.cfg.Partitions)
	for p := range global {
		global[p] = make(map[string][]interface{})
		for w := 0; w < nw; w++ {
			for k, vs := range states[w].parts[p] {
				global[p][k] = append(global[p][k], vs...)
			}
		}
	}
	return global, nil
}

func combine(c ReduceFunc, part map[string][]interface{}) (map[string][]interface{}, error) {
	out := make(map[string][]interface{}, len(part))
	for k, vs := range part {
		var combined []interface{}
		if err := c(k, vs, func(v interface{}) { combined = append(combined, v) }); err != nil {
			return nil, fmt.Errorf("mapreduce: combine key %q: %w", k, err)
		}
		out[k] = combined
	}
	return out, nil
}

func (j *Job) reducePhase(ctx context.Context, parts []map[string][]interface{}) ([]KV, error) {
	nw := j.cfg.Workers
	results := make([][]KV, len(parts))
	errs := make([]error, len(parts))
	sem := make(chan struct{}, nw)
	var wg sync.WaitGroup
	for p := range parts {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			keys := make([]string, 0, len(parts[p]))
			for k := range parts[p] {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if err := ctx.Err(); err != nil {
					errs[p] = fmt.Errorf("mapreduce: reduce: %w", err)
					return
				}
				err := j.reduceFn(k, parts[p][k], func(v interface{}) {
					results[p] = append(results[p], KV{Key: k, Value: v})
				})
				if err != nil {
					errs[p] = fmt.Errorf("mapreduce: reduce key %q: %w", k, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var out []KV
	for p := range results {
		out = append(out, results[p]...)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Key < out[k].Key })
	return out, nil
}

func partitionOf(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// Run is the convenience one-shot entry point.
func Run(ctx context.Context, inputs []interface{}, m MapFunc, r ReduceFunc, cfg Config) ([]KV, error) {
	return NewJob(m, r, cfg).Run(ctx, inputs)
}

// RunStream is the convenience one-shot entry point for channel inputs.
func RunStream(ctx context.Context, records <-chan interface{}, m MapFunc, r ReduceFunc, cfg Config) ([]KV, error) {
	return NewJob(m, r, cfg).RunStream(ctx, records)
}

// CountReducer sums integer values — the standard counting reducer, usable
// as both reducer and combiner.
func CountReducer(key string, values []interface{}, emit func(interface{})) error {
	total := 0
	for _, v := range values {
		n, ok := v.(int)
		if !ok {
			return fmt.Errorf("CountReducer: value for %q is %T, not int", key, v)
		}
		total += n
	}
	emit(total)
	return nil
}
