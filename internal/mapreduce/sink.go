package mapreduce

import (
	"kbharvest/internal/core"
	"kbharvest/internal/rdf"
)

// A BatchStore accepts triples with metadata through a batch write path.
// *core.Store satisfies it; tests may substitute recorders.
type BatchStore interface {
	AddBatchMeta(ts []rdf.Triple, infos []core.FactInfo) []core.FactID
}

// TripleBatcher is a reducer-side sink that buffers emitted triples and
// flushes them into a store through its batch write path, so a reducer
// producing thousands of facts costs the store a handful of lock
// acquisitions instead of several per fact. It is NOT safe for concurrent
// use: give each reducer worker its own batcher and Flush at the end, or
// funnel all emissions through one goroutine.
type TripleBatcher struct {
	st      BatchStore
	size    int
	triples []rdf.Triple
	infos   []core.FactInfo
	total   int
}

// DefaultBatchSize is the TripleBatcher flush threshold when none is given.
const DefaultBatchSize = 1024

// NewTripleBatcher returns a batcher flushing into st every size triples
// (DefaultBatchSize if size <= 0).
func NewTripleBatcher(st BatchStore, size int) *TripleBatcher {
	if size <= 0 {
		size = DefaultBatchSize
	}
	return &TripleBatcher{
		st:      st,
		size:    size,
		triples: make([]rdf.Triple, 0, size),
		infos:   make([]core.FactInfo, 0, size),
	}
}

// Emit buffers one triple with its metadata, flushing if the batch is full.
func (b *TripleBatcher) Emit(t rdf.Triple, info core.FactInfo) {
	b.triples = append(b.triples, t)
	b.infos = append(b.infos, info)
	if len(b.triples) >= b.size {
		b.Flush()
	}
}

// Flush writes any buffered triples to the store and returns the total
// number of triples emitted through the batcher so far.
func (b *TripleBatcher) Flush() int {
	if len(b.triples) > 0 {
		b.st.AddBatchMeta(b.triples, b.infos)
		b.total += len(b.triples)
		b.triples = b.triples[:0]
		b.infos = b.infos[:0]
	}
	return b.total
}

// Pending returns the number of buffered, not yet flushed triples.
func (b *TripleBatcher) Pending() int { return len(b.triples) }
