// Package faultkb is the fault-injection harness for the serving tier:
// an HTTP reverse proxy (and a client-side RoundTripper) that injects
// the failure modes real infrastructure produces — added latency, error
// statuses, dropped connections, and truncated response bodies — on a
// deterministic schedule. The shardkb/kbrouter fault tests stand a
// faultkb proxy in front of each kbserve replica to prove that retries,
// hedging, and circuit breakers absorb replica failures, and the E11b
// experiment uses it to measure availability and tail latency under
// controlled fault rates.
//
// An Injector decides, per request, which fault (if any) to apply. The
// decision comes from the current Plan — either set directly (SetPlan,
// for tests that flip a replica dead and alive) or advanced through a
// Script of request-counted steps (for flapping-replica schedules).
// Probabilistic plans draw from a seeded generator, so a given seed
// replays the same fault sequence.
package faultkb

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Plan describes the faults to inject. Rates are probabilities in
// [0, 1]; a rate of 1 makes the fault deterministic. Faults are decided
// in order drop > error > truncate (at most one per request), and
// Latency is always added first, so a slow-then-dropped request models a
// hung-then-reset connection.
type Plan struct {
	// Latency is added before the request is forwarded.
	Latency time.Duration
	// ErrorRate is the probability of answering 500 without forwarding.
	ErrorRate float64
	// DropRate is the probability of aborting the connection without
	// writing a response (the client sees EOF / connection reset).
	DropRate float64
	// TruncateRate is the probability of forwarding the request but
	// cutting the response body in half mid-stream, with the original
	// Content-Length still advertised (the client sees unexpected EOF).
	TruncateRate float64
}

// Step is one phase of a Script: the plan applied to the next N requests.
type Step struct {
	N    int
	Plan Plan
}

// Stats counts what an Injector did.
type Stats struct {
	Requests  uint64 `json:"requests"`
	Forwarded uint64 `json:"forwarded"`
	Errors    uint64 `json:"errors"`
	Drops     uint64 `json:"drops"`
	Truncated uint64 `json:"truncated"`
	Delayed   uint64 `json:"delayed"`
}

// Injector makes per-request fault decisions. The zero value injects
// nothing; use New to seed the probabilistic decisions.
type Injector struct {
	mu     sync.Mutex
	plan   Plan
	script []Step
	step   int // requests consumed from script[0]
	rng    *rand.Rand

	requests  atomic.Uint64
	forwarded atomic.Uint64
	errors    atomic.Uint64
	drops     atomic.Uint64
	truncated atomic.Uint64
	delayed   atomic.Uint64
}

// New returns an Injector whose probabilistic decisions replay
// deterministically for a given seed.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// SetPlan replaces the current plan and clears any script.
func (in *Injector) SetPlan(p Plan) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.plan = p
	in.script = nil
	in.step = 0
}

// SetScript installs a request-counted schedule: the first step's plan
// applies to its next N requests, then the second, and so on; the last
// step's plan persists once the script is exhausted.
func (in *Injector) SetScript(steps []Step) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.script = append([]Step(nil), steps...)
	in.step = 0
	if len(in.script) > 0 {
		in.plan = in.script[0].Plan
	}
}

// Stats snapshots the injection counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Requests:  in.requests.Load(),
		Forwarded: in.forwarded.Load(),
		Errors:    in.errors.Load(),
		Drops:     in.drops.Load(),
		Truncated: in.truncated.Load(),
		Delayed:   in.delayed.Load(),
	}
}

// fault is the per-request decision.
type fault int

const (
	faultNone fault = iota
	faultError
	faultDrop
	faultTruncate
)

// decide consumes one request from the schedule and rolls the dice.
func (in *Injector) decide() (fault, time.Duration) {
	in.requests.Add(1)
	in.mu.Lock()
	defer in.mu.Unlock()
	// Advance the script: the current request is charged against the
	// active step; moving past its budget activates the next step.
	if len(in.script) > 0 {
		for in.step >= in.script[0].N && len(in.script) > 1 {
			in.script = in.script[1:]
			in.step = 0
		}
		in.plan = in.script[0].Plan
		in.step++
	}
	p := in.plan
	roll := func(rate float64) bool {
		if rate >= 1 {
			return true
		}
		if rate <= 0 {
			return false
		}
		if in.rng == nil {
			in.rng = rand.New(rand.NewSource(1))
		}
		return in.rng.Float64() < rate
	}
	switch {
	case roll(p.DropRate):
		return faultDrop, p.Latency
	case roll(p.ErrorRate):
		return faultError, p.Latency
	case roll(p.TruncateRate):
		return faultTruncate, p.Latency
	}
	return faultNone, p.Latency
}

// sleepCtx waits for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Proxy is an HTTP handler that forwards requests to a target base URL
// through the injector. Stand one in front of each kbserve replica to
// subject that replica to faults; the client under test talks to the
// proxy's URL instead of the replica's.
type Proxy struct {
	in     *Injector
	target string
	client *http.Client
}

// NewProxy builds a proxy forwarding to target (a base URL such as an
// httptest server's). A nil client uses a dedicated default client.
func NewProxy(target string, in *Injector, client *http.Client) *Proxy {
	if client == nil {
		client = &http.Client{}
	}
	return &Proxy{in: in, target: strings.TrimRight(target, "/"), client: client}
}

// Injector returns the proxy's injector, for schedule changes mid-test.
func (p *Proxy) Injector() *Injector { return p.in }

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f, delay := p.in.decide()
	if delay > 0 {
		p.in.delayed.Add(1)
		if !sleepCtx(r.Context(), delay) {
			// The client hung up during injected latency (a hedged or
			// cancelled request): abort without forwarding.
			p.in.drops.Add(1)
			panic(http.ErrAbortHandler)
		}
	}
	switch f {
	case faultDrop:
		p.in.drops.Add(1)
		// Abort the response mid-flight: net/http resets the connection,
		// so the client sees a transport error, not an HTTP status.
		panic(http.ErrAbortHandler)
	case faultError:
		p.in.errors.Add(1)
		http.Error(w, `{"error": "faultkb: injected error"}`, http.StatusInternalServerError)
		return
	}

	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.target+r.URL.RequestURI(), r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		p.in.drops.Add(1)
		panic(http.ErrAbortHandler)
	}
	defer resp.Body.Close()
	p.in.forwarded.Add(1)

	body, err := io.ReadAll(resp.Body)
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	if f == faultTruncate && len(body) > 1 {
		// Advertise the full length but write only half, then abort: the
		// client's decoder sees an unexpected EOF — a torn response.
		p.in.truncated.Add(1)
		w.WriteHeader(resp.StatusCode)
		w.Write(body[:len(body)/2])
		// Force the headers and partial body onto the wire before the
		// abort resets the connection, so the client sees a torn body
		// rather than a failed request.
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

// RoundTripper wraps base (nil = http.DefaultTransport) with the same
// injection decisions on the client side — no proxy process needed.
// Latency and drops happen before the request reaches base; truncation
// cuts the returned body stream.
func (in *Injector) RoundTripper(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &faultTransport{in: in, base: base}
}

type faultTransport struct {
	in   *Injector
	base http.RoundTripper
}

// errInjected is the transport error drops surface client-side.
type errInjected struct{}

func (errInjected) Error() string   { return "faultkb: injected connection drop" }
func (errInjected) Timeout() bool   { return false }
func (errInjected) Temporary() bool { return true }

func (t *faultTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	f, delay := t.in.decide()
	if delay > 0 {
		t.in.delayed.Add(1)
		if !sleepCtx(r.Context(), delay) {
			return nil, r.Context().Err()
		}
	}
	switch f {
	case faultDrop:
		t.in.drops.Add(1)
		return nil, errInjected{}
	case faultError:
		t.in.errors.Add(1)
		return &http.Response{
			StatusCode: http.StatusInternalServerError,
			Status:     "500 Internal Server Error",
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{"Content-Type": []string{"application/json"}},
			Body:    io.NopCloser(strings.NewReader(`{"error": "faultkb: injected error"}`)),
			Request: r,
		}, nil
	}
	resp, err := t.base.RoundTrip(r)
	if err != nil {
		return nil, err
	}
	t.in.forwarded.Add(1)
	if f == faultTruncate {
		t.in.truncated.Add(1)
		// Keep the declared Content-Length but cut the stream short so
		// the reader hits an unexpected EOF mid-body.
		n := resp.ContentLength / 2
		if n <= 0 {
			n = 1
		}
		inner := resp.Body
		resp.Body = &truncatedBody{r: io.LimitReader(inner, n), c: inner}
	}
	return resp, nil
}

// truncatedBody ends the stream with ErrUnexpectedEOF instead of a clean
// EOF, the way a torn connection does.
type truncatedBody struct {
	r io.Reader
	c io.Closer
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.c.Close() }
