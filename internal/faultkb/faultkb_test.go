package faultkb

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// upstream answers every request with a fixed JSON body.
func upstream(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"rows": [1, 2, 3, 4, 5, 6, 7, 8], "count": 8}`)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func proxyFor(t *testing.T, target string, in *Injector) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewProxy(target, in, nil))
	t.Cleanup(srv.Close)
	return srv
}

func TestProxyPassThrough(t *testing.T) {
	up := upstream(t)
	in := New(1)
	px := proxyFor(t, up.URL, in)
	resp, err := http.Get(px.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"count": 8`) {
		t.Fatalf("status %d body %q", resp.StatusCode, body)
	}
	st := in.Stats()
	if st.Requests != 1 || st.Forwarded != 1 || st.Errors+st.Drops+st.Truncated != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestProxyInjectsErrors(t *testing.T) {
	up := upstream(t)
	in := New(1)
	in.SetPlan(Plan{ErrorRate: 1})
	px := proxyFor(t, up.URL, in)
	resp, err := http.Get(px.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Errorf("error envelope not JSON: %v", err)
	}
	if in.Stats().Errors != 1 {
		t.Errorf("stats = %+v", in.Stats())
	}
}

func TestProxyInjectsDrops(t *testing.T) {
	up := upstream(t)
	in := New(1)
	in.SetPlan(Plan{DropRate: 1})
	px := proxyFor(t, up.URL, in)
	if _, err := http.Get(px.URL + "/query"); err == nil {
		t.Fatal("dropped request returned a response")
	}
	if in.Stats().Drops != 1 {
		t.Errorf("stats = %+v", in.Stats())
	}
}

func TestProxyTruncatesBodies(t *testing.T) {
	up := upstream(t)
	in := New(1)
	in.SetPlan(Plan{TruncateRate: 1})
	px := proxyFor(t, up.URL, in)
	resp, err := http.Get(px.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// The body read (or its JSON decode) must fail partway through.
	var out map[string]interface{}
	err = json.NewDecoder(resp.Body).Decode(&out)
	if err == nil {
		t.Fatal("truncated body decoded cleanly")
	}
	if in.Stats().Truncated != 1 {
		t.Errorf("stats = %+v", in.Stats())
	}
}

func TestProxyInjectsLatency(t *testing.T) {
	up := upstream(t)
	in := New(1)
	in.SetPlan(Plan{Latency: 30 * time.Millisecond})
	px := proxyFor(t, up.URL, in)
	t0 := time.Now()
	resp, err := http.Get(px.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if d := time.Since(t0); d < 30*time.Millisecond {
		t.Errorf("request took %v, want >= 30ms", d)
	}
	if in.Stats().Delayed != 1 {
		t.Errorf("stats = %+v", in.Stats())
	}
}

// A script drives a flapping replica: down for 2 requests, up for 2,
// down for 2, then up for good.
func TestScriptSchedule(t *testing.T) {
	up := upstream(t)
	in := New(1)
	in.SetScript([]Step{
		{N: 2, Plan: Plan{ErrorRate: 1}},
		{N: 2, Plan: Plan{}},
		{N: 2, Plan: Plan{ErrorRate: 1}},
		{N: 1, Plan: Plan{}},
	})
	px := proxyFor(t, up.URL, in)
	want := []int{500, 500, 200, 200, 500, 500, 200, 200, 200}
	for i, w := range want {
		resp, err := http.Get(px.URL + "/query")
		if err != nil {
			t.Fatalf("req %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != w {
			t.Fatalf("req %d: status %d, want %d", i, resp.StatusCode, w)
		}
	}
}

func TestRoundTripperFaults(t *testing.T) {
	up := upstream(t)

	in := New(1)
	in.SetPlan(Plan{DropRate: 1})
	hc := &http.Client{Transport: in.RoundTripper(nil)}
	if _, err := hc.Get(up.URL); err == nil {
		t.Fatal("drop did not surface as a transport error")
	}

	in.SetPlan(Plan{ErrorRate: 1})
	resp, err := hc.Get(up.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", resp.StatusCode)
	}

	in.SetPlan(Plan{TruncateRate: 1})
	resp, err = hc.Get(up.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated read error = %v, want unexpected EOF", err)
	}

	in.SetPlan(Plan{})
	resp, err = hc.Get(up.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || !strings.Contains(string(body), `"count": 8`) {
		t.Errorf("clean plan: err %v body %q", err, body)
	}
}

// Probabilistic rates with a fixed seed are deterministic and land near
// the configured rate.
func TestSeededRatesReplay(t *testing.T) {
	outcomes := func(seed int64) []fault {
		in := New(seed)
		in.SetPlan(Plan{ErrorRate: 0.3})
		out := make([]fault, 200)
		for i := range out {
			out[i], _ = in.decide()
		}
		return out
	}
	a, b := outcomes(7), outcomes(7)
	errs := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across replays", i)
		}
		if a[i] == faultError {
			errs++
		}
	}
	if errs < 30 || errs > 90 {
		t.Errorf("0.3 error rate produced %d/200 errors", errs)
	}
}
