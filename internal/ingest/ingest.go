// Package ingest is the write-behind ingestion layer between extraction
// and the knowledge base (the ROADMAP "async ingest" item): extraction
// workers emit facts into per-producer buffers, full buffers are handed to
// a bounded queue, and dedicated drainer goroutines write them into the
// store through its batch write path (AddBatchMeta). Extraction latency is
// thereby decoupled from store lock acquisition — a producer pays only an
// append until its buffer fills, and even then it blocks only if every
// queue slot is in use (backpressure), never on the store itself.
//
// The layer gives three guarantees:
//
//   - Visibility: Flush returns only after every fact emitted before the
//     call is visible in the store; Close is Flush plus shutdown.
//   - Error propagation: the first write error (or context cancellation)
//     is sticky — every subsequent Emit, Flush, and Close returns it, so a
//     failing sink stops producers promptly instead of silently dropping
//     facts.
//   - Prompt cancellation: a producer blocked on a full queue, or a Flush
//     waiting for in-flight batches, unblocks as soon as the ingester's
//     context is cancelled.
//
// One Ingester serves many producers; each Producer is itself safe for
// concurrent use but is cheapest when owned by a single goroutine (the
// intended shape: one producer per extraction worker).
package ingest

import (
	"context"
	"errors"
	"sync"

	"kbharvest/internal/core"
	"kbharvest/internal/rdf"
)

// BatchStore is the store-side write path drained into. *core.Store
// satisfies it; tests may substitute recorders.
type BatchStore interface {
	AddBatchMeta(ts []rdf.Triple, infos []core.FactInfo) []core.FactID
}

// WriteFunc is the generalized sink signature: one batch of triples with
// parallel metadata, returning the write error (nil for *core.Store).
type WriteFunc func(ts []rdf.Triple, infos []core.FactInfo) error

// ErrClosed is returned by Emit and Flush after Close.
var ErrClosed = errors.New("ingest: ingester closed")

// Options tune an Ingester. The zero value means all defaults.
type Options struct {
	// BatchSize is the per-producer buffer size: a producer hands its
	// buffer to the queue once it holds this many facts. Default 1024.
	BatchSize int
	// QueueDepth bounds the handoff queue in batches; a producer whose
	// buffer fills while the queue is full blocks (backpressure).
	// Default 8.
	QueueDepth int
	// Drainers is the number of dedicated goroutines writing queued
	// batches into the store. Default 2.
	Drainers int
}

// DefaultBatchSize is the per-producer buffer threshold when none is given.
const DefaultBatchSize = 1024

// DefaultQueueDepth is the queue bound (in batches) when none is given.
const DefaultQueueDepth = 8

// DefaultDrainers is the drainer goroutine count when none is given.
const DefaultDrainers = 2

func (o Options) withDefaults() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = DefaultQueueDepth
	}
	if o.Drainers <= 0 {
		o.Drainers = DefaultDrainers
	}
	return o
}

// batch is one unit of queue handoff.
type batch struct {
	ts    []rdf.Triple
	infos []core.FactInfo
}

// Ingester is the write-behind front of a store. Create with New (or
// NewFunc for a custom sink), obtain one Producer per emitting goroutine,
// and Close when all producers are done. Close must not race with Emit.
type Ingester struct {
	write WriteFunc
	opt   Options
	ctx   context.Context

	queue    chan batch
	drainers sync.WaitGroup

	mu        sync.Mutex
	cond      *sync.Cond // broadcast when pending drops or err becomes set
	pending   int        // batches enqueued but not yet written (or discarded)
	err       error      // first write/context error, sticky
	closed    bool
	written   int // facts written to the sink
	batches   int // batches written to the sink
	producers []*Producer
}

// New returns an Ingester draining into st. The context bounds the
// ingester's lifetime: once cancelled, blocked producers and flushes
// return promptly with the context error.
func New(ctx context.Context, st BatchStore, opt Options) *Ingester {
	return NewFunc(ctx, func(ts []rdf.Triple, infos []core.FactInfo) error {
		st.AddBatchMeta(ts, infos)
		return nil
	}, opt)
}

// NewFunc is New with an arbitrary batch sink.
func NewFunc(ctx context.Context, write WriteFunc, opt Options) *Ingester {
	if ctx == nil {
		ctx = context.Background()
	}
	opt = opt.withDefaults()
	in := &Ingester{
		write: write,
		opt:   opt,
		ctx:   ctx,
		queue: make(chan batch, opt.QueueDepth),
	}
	in.cond = sync.NewCond(&in.mu)
	for i := 0; i < opt.Drainers; i++ {
		in.drainers.Add(1)
		go in.drain()
	}
	// Wake blocked Flush/Close waiters the moment the context dies.
	go func() {
		<-ctx.Done()
		in.fail(ctx.Err())
	}()
	return in
}

// drain is one dedicated writer: it moves batches from the queue into the
// sink until the queue is closed. After a failure (or cancellation) it
// keeps draining but discards, so blocked producers unwedge quickly.
func (in *Ingester) drain() {
	defer in.drainers.Done()
	for b := range in.queue {
		if in.Err() != nil {
			in.settle(0, nil)
			continue
		}
		err := in.write(b.ts, b.infos)
		in.settle(len(b.ts), err)
	}
}

// settle records one batch leaving the queue: counts it (n > 0 means
// written), latches the first error, and wakes waiters.
func (in *Ingester) settle(n int, err error) {
	in.mu.Lock()
	in.pending--
	if n > 0 {
		in.written += n
		in.batches++
	}
	if err != nil && in.err == nil {
		in.err = err
	}
	in.cond.Broadcast()
	in.mu.Unlock()
}

// fail latches err as the ingester's first error and wakes waiters.
func (in *Ingester) fail(err error) {
	if err == nil {
		return
	}
	in.mu.Lock()
	if in.err == nil {
		in.err = err
	}
	in.cond.Broadcast()
	in.mu.Unlock()
}

// Err returns the sticky first error (a failed write, or the context
// error once cancelled), or nil.
func (in *Ingester) Err() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.err
}

// state is Err plus the closed flag, for producer-side fast checks.
func (in *Ingester) state() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.err != nil {
		return in.err
	}
	if in.closed {
		return ErrClosed
	}
	return nil
}

// Written returns the number of facts written to the sink so far.
func (in *Ingester) Written() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.written
}

// Batches returns the number of batches written to the sink so far.
func (in *Ingester) Batches() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.batches
}

// enqueue hands one batch to the drainers, blocking while the queue is
// full (backpressure) but returning promptly on cancellation.
func (in *Ingester) enqueue(b batch) error {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return ErrClosed
	}
	if in.err != nil {
		err := in.err
		in.mu.Unlock()
		return err
	}
	in.pending++
	in.mu.Unlock()
	select {
	case in.queue <- b:
		return nil
	case <-in.ctx.Done():
		in.settle(0, nil) // the batch never entered the queue
		in.fail(in.ctx.Err())
		return in.ctx.Err()
	}
}

// Producer returns a new buffered emitter backed by this ingester. Give
// each emitting goroutine its own producer; buffers are per-producer, so
// producers never contend with each other until a buffer fills.
func (in *Ingester) Producer() *Producer {
	p := &Producer{in: in}
	p.reset()
	in.mu.Lock()
	in.producers = append(in.producers, p)
	in.mu.Unlock()
	return p
}

// Flush pushes every producer's buffer into the queue and blocks until
// all batches enqueued so far are written (or until the first error).
// Facts emitted before Flush is called are visible in the store when it
// returns nil. Flush must not race with Close.
func (in *Ingester) Flush() error {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return ErrClosed
	}
	producers := append([]*Producer(nil), in.producers...)
	in.mu.Unlock()
	for _, p := range producers {
		if err := p.Flush(); err != nil {
			return err
		}
	}
	return in.wait()
}

// wait blocks until no batches are pending or an error is latched.
func (in *Ingester) wait() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	for in.pending > 0 && in.err == nil {
		in.cond.Wait()
	}
	return in.err
}

// Close flushes every producer, shuts the drainers down, and returns the
// first error (nil on a clean run). Close is idempotent; Emit after Close
// returns ErrClosed. Close must not race with concurrent Emit calls.
func (in *Ingester) Close() error {
	in.mu.Lock()
	if in.closed {
		err := in.err
		in.mu.Unlock()
		return err
	}
	producers := append([]*Producer(nil), in.producers...)
	in.mu.Unlock()
	var flushErr error
	for _, p := range producers {
		if err := p.Flush(); err != nil && flushErr == nil {
			flushErr = err
		}
	}
	in.mu.Lock()
	in.closed = true
	in.mu.Unlock()
	close(in.queue)
	in.drainers.Wait()
	in.fail(flushErr)
	return in.Err()
}

// Producer is one buffered emitter. Emit and Flush are safe for
// concurrent use, but the intended shape is one producer per goroutine.
type Producer struct {
	in    *Ingester
	mu    sync.Mutex
	ts    []rdf.Triple
	infos []core.FactInfo
	count int // facts emitted through this producer
}

func (p *Producer) reset() {
	size := p.in.opt.BatchSize
	p.ts = make([]rdf.Triple, 0, size)
	p.infos = make([]core.FactInfo, 0, size)
}

// Emit buffers one fact, handing the buffer to the drain queue when full.
// It returns the ingester's sticky error, if any: once a write fails or
// the context is cancelled, producers learn on their next Emit.
func (p *Producer) Emit(t rdf.Triple, info core.FactInfo) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.in.state(); err != nil {
		return err
	}
	p.ts = append(p.ts, t)
	p.infos = append(p.infos, info)
	p.count++
	if len(p.ts) >= p.in.opt.BatchSize {
		return p.flushLocked()
	}
	return nil
}

// EmitCandidate emits an extraction-shaped fact: triple plus confidence,
// provenance, and temporal scope assembled into a FactInfo.
func (p *Producer) EmitCandidate(t rdf.Triple, confidence float64, source string, time core.Interval) error {
	return p.Emit(t, core.FactInfo{Confidence: confidence, Source: source, Time: time})
}

// Flush hands the current buffer to the drain queue without waiting for
// the write. Use Ingester.Flush for the visibility barrier.
func (p *Producer) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushLocked()
}

func (p *Producer) flushLocked() error {
	if len(p.ts) == 0 {
		return p.in.Err()
	}
	b := batch{ts: p.ts, infos: p.infos}
	p.reset()
	return p.in.enqueue(b)
}

// Emitted returns the number of facts emitted through this producer.
func (p *Producer) Emitted() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.count
}
