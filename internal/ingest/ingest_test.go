package ingest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kbharvest/internal/core"
	"kbharvest/internal/rdf"
)

func fact(i int) (rdf.Triple, core.FactInfo) {
	return rdf.T(fmt.Sprintf("kb:s%d", i), "kb:p", fmt.Sprintf("kb:o%d", i)),
		core.FactInfo{Confidence: 0.9, Source: "test", Time: core.Always}
}

// TestFlushVisibility: every fact emitted before Flush is in the store
// when Flush returns, across several producers and odd batch sizes.
func TestFlushVisibility(t *testing.T) {
	st := core.NewStore()
	in := New(context.Background(), st, Options{BatchSize: 7, QueueDepth: 2, Drainers: 3})
	const producers, each = 4, 253
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		p := in.Producer()
		wg.Add(1)
		go func(w int, p *Producer) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tr, info := fact(w*each + i)
				if err := p.Emit(tr, info); err != nil {
					t.Errorf("emit: %v", err)
					return
				}
			}
		}(w, p)
	}
	wg.Wait()
	if err := in.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if got, want := st.Len(), producers*each; got != want {
		t.Fatalf("after flush store has %d facts, want %d", got, want)
	}
	if in.Written() != producers*each {
		t.Errorf("Written = %d, want %d", in.Written(), producers*each)
	}
	// Metadata rode along.
	id, ok := st.FactOf(rdf.T("kb:s0", "kb:p", "kb:o0"))
	if !ok {
		t.Fatal("fact missing")
	}
	if info, _ := st.Info(id); info.Source != "test" {
		t.Errorf("info = %+v", info)
	}
	if err := in.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := in.Flush(); !errors.Is(err, ErrClosed) {
		t.Errorf("flush after close = %v, want ErrClosed", err)
	}
}

// slowStore blocks every write until released.
type slowStore struct {
	st      *core.Store
	release chan struct{} // one receive per allowed write
}

func (s *slowStore) AddBatchMeta(ts []rdf.Triple, infos []core.FactInfo) []core.FactID {
	<-s.release
	return s.st.AddBatchMeta(ts, infos)
}

// TestBackpressure: with a slow store and a bounded queue, a producer
// blocks once queue + in-flight slots are exhausted, and resumes when the
// store drains.
func TestBackpressure(t *testing.T) {
	slow := &slowStore{st: core.NewStore(), release: make(chan struct{})}
	in := New(context.Background(), slow, Options{BatchSize: 1, QueueDepth: 2, Drainers: 1})
	p := in.Producer()

	// 1 batch stuck in the drainer + 2 in the queue fill every slot.
	const capacity = 3
	var progress atomic.Int64
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		for i := 0; i < capacity+1; i++ {
			tr, info := fact(i)
			if err := p.Emit(tr, info); err != nil {
				t.Errorf("emit %d: %v", i, err)
				return
			}
			progress.Add(1)
		}
	}()
	// The producer must get exactly `capacity` emits through, then stall.
	deadline := time.Now().Add(5 * time.Second)
	for progress.Load() < capacity {
		if time.Now().After(deadline) {
			t.Fatal("producer never filled the queue")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	if n := progress.Load(); n != capacity {
		t.Fatalf("emit %d returned despite full queue", n)
	}
	// Release the store: the stalled emit completes.
	for i := 0; i < capacity+1; i++ {
		slow.release <- struct{}{}
	}
	select {
	case <-finished:
		if n := progress.Load(); n != capacity+1 {
			t.Fatalf("resumed emit count = %d", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("producer did not resume after store drained")
	}
	if err := in.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if slow.st.Len() != capacity+1 {
		t.Errorf("store has %d facts, want %d", slow.st.Len(), capacity+1)
	}
}

// TestErrorPropagation: the first failing batch poisons the ingester —
// later emits, Flush, and Close all surface that first error.
func TestErrorPropagation(t *testing.T) {
	boom := errors.New("disk full")
	var writes int
	var mu sync.Mutex
	in := NewFunc(context.Background(), func(ts []rdf.Triple, infos []core.FactInfo) error {
		mu.Lock()
		writes++
		n := writes
		mu.Unlock()
		if n == 2 {
			return boom
		}
		return nil
	}, Options{BatchSize: 2, QueueDepth: 1, Drainers: 1})
	p := in.Producer()
	var sawErr error
	for i := 0; i < 1000; i++ {
		tr, info := fact(i)
		if err := p.Emit(tr, info); err != nil {
			sawErr = err
			break
		}
	}
	if !errors.Is(sawErr, boom) {
		t.Fatalf("emit error = %v, want %v", sawErr, boom)
	}
	if err := in.Flush(); !errors.Is(err, boom) {
		t.Errorf("flush error = %v, want %v", err, boom)
	}
	if err := in.Close(); !errors.Is(err, boom) {
		t.Errorf("close error = %v, want %v", err, boom)
	}
}

// TestCancellationUnblocks: a producer blocked on a full queue returns
// promptly once the context is cancelled, as do Flush and Close.
func TestCancellationUnblocks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	slow := &slowStore{st: core.NewStore(), release: make(chan struct{})}
	in := New(ctx, slow, Options{BatchSize: 1, QueueDepth: 1, Drainers: 1})
	p := in.Producer()

	errc := make(chan error, 1)
	go func() {
		var err error
		for i := 0; i < 10 && err == nil; i++ { // plenty to jam the queue
			tr, info := fact(i)
			err = p.Emit(tr, info)
		}
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the producer wedge
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("emit after cancel = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("producer still blocked after cancel")
	}
	if err := in.Flush(); !errors.Is(err, context.Canceled) {
		t.Errorf("flush after cancel = %v", err)
	}
	// Unwedge the drainer stuck inside the slow write so Close can join it.
	close(slow.release)
	if err := in.Close(); !errors.Is(err, context.Canceled) {
		t.Errorf("close after cancel = %v", err)
	}
}

// TestPreCancelled: an ingester built from an already-cancelled context
// refuses work immediately.
func TestPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := New(ctx, core.NewStore(), Options{})
	p := in.Producer()
	deadline := time.After(5 * time.Second)
	for {
		tr, info := fact(0)
		err := p.Emit(tr, info)
		if errors.Is(err, context.Canceled) {
			break
		}
		select {
		case <-deadline:
			t.Fatal("emit never observed the cancelled context")
		default:
		}
	}
	if err := in.Close(); !errors.Is(err, context.Canceled) {
		t.Errorf("close = %v", err)
	}
}

// TestCloseIdempotent: double Close is safe and returns the same result.
func TestCloseIdempotent(t *testing.T) {
	st := core.NewStore()
	in := New(context.Background(), st, Options{BatchSize: 4})
	p := in.Producer()
	for i := 0; i < 10; i++ {
		tr, info := fact(i)
		if err := p.Emit(tr, info); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if st.Len() != 10 {
		t.Errorf("store has %d facts, want 10", st.Len())
	}
	tr, info := fact(99)
	if err := p.Emit(tr, info); !errors.Is(err, ErrClosed) {
		t.Errorf("emit after close = %v, want ErrClosed", err)
	}
}

// TestDuplicatesCollapse: the write-behind path preserves the store's
// dedup semantics — emitting the same triple from many producers yields
// one fact.
func TestDuplicatesCollapse(t *testing.T) {
	st := core.NewStore()
	in := New(context.Background(), st, Options{BatchSize: 3, Drainers: 4})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		p := in.Producer()
		wg.Add(1)
		go func(p *Producer) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr, info := fact(i % 5)
				if err := p.Emit(tr, info); err != nil {
					t.Errorf("emit: %v", err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 5 {
		t.Errorf("store has %d facts, want 5", st.Len())
	}
	if in.Written() != 400 {
		t.Errorf("Written = %d, want 400", in.Written())
	}
}
