package reason

import (
	"math/rand"
	"testing"

	"kbharvest/internal/core"
	"kbharvest/internal/eval"
	"kbharvest/internal/extract"
)

func TestGreedySimple(t *testing.T) {
	p := NewProblem()
	a := p.AddVar("a")
	b := p.AddVar("b")
	p.AddSoft(0.9, Lit{Var: a})
	p.AddSoft(0.4, Lit{Var: b})
	p.AddHard(Lit{Var: a, Neg: true}, Lit{Var: b, Neg: true}) // ¬a ∨ ¬b
	sol := p.SolveGreedy()
	if sol.HardViolations != 0 {
		t.Fatalf("greedy left hard violations: %+v", sol)
	}
	if !sol.Values[a] || sol.Values[b] {
		t.Errorf("greedy should keep the heavier fact: %v", sol.Values)
	}
}

func TestEvaluate(t *testing.T) {
	p := NewProblem()
	a := p.AddVar("a")
	p.AddSoft(0.5, Lit{Var: a})
	p.AddHard(Lit{Var: a, Neg: true})
	s := p.Evaluate([]bool{true})
	if s.SoftWeight != 0.5 || s.HardViolations != 1 {
		t.Errorf("Evaluate = %+v", s)
	}
	s = p.Evaluate([]bool{false})
	if s.SoftWeight != 0 || s.HardViolations != 0 {
		t.Errorf("Evaluate = %+v", s)
	}
}

func TestClauseValidation(t *testing.T) {
	p := NewProblem()
	if err := p.AddSoft(1); err == nil {
		t.Error("empty clause should fail")
	}
	if err := p.AddHard(Lit{Var: 5}); err == nil {
		t.Error("out-of-range variable should fail")
	}
}

func TestWalkSATMatchesExhaustiveOnSmallRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		p := NewProblem()
		n := 6 + rng.Intn(4)
		for i := 0; i < n; i++ {
			p.AddVar("v")
		}
		// Random soft unit clauses.
		for i := 0; i < n; i++ {
			p.AddSoft(0.1+rng.Float64(), Lit{Var: i})
		}
		// Random hard binary exclusions.
		for k := 0; k < n; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				p.AddHard(Lit{Var: a, Neg: true}, Lit{Var: b, Neg: true})
			}
		}
		exact, err := p.SolveExhaustive()
		if err != nil {
			t.Fatal(err)
		}
		walk := p.SolveWalkSAT(2000, 0.2, int64(trial))
		if walk.HardViolations != 0 {
			t.Fatalf("trial %d: WalkSAT infeasible", trial)
		}
		if walk.SoftWeight < exact.SoftWeight-1e-9 {
			// WalkSAT is a heuristic, but on these tiny instances it
			// should reach the optimum.
			t.Errorf("trial %d: WalkSAT %.4f < exact %.4f", trial, walk.SoftWeight, exact.SoftWeight)
		}
	}
}

func TestExhaustiveTooLarge(t *testing.T) {
	p := NewProblem()
	for i := 0; i < 30; i++ {
		p.AddVar("v")
	}
	if _, err := p.SolveExhaustive(); err == nil {
		t.Error("expected size error")
	}
}

func TestTrueVars(t *testing.T) {
	p := NewProblem()
	a := p.AddVar("fact-a")
	p.AddVar("fact-b")
	p.AddSoft(1, Lit{Var: a})
	sol := p.SolveGreedy()
	names := p.TrueVars(sol)
	found := false
	for _, n := range names {
		if n == "fact-a" {
			found = true
		}
	}
	if !found {
		t.Errorf("TrueVars = %v", names)
	}
}

func cand(s, p, o string, conf float64) extract.Candidate {
	return extract.Candidate{S: s, P: p, O: o, Confidence: conf}
}

func TestBuildConsistencyFunctional(t *testing.T) {
	cands := []extract.Candidate{
		cand("kb:alice", "kb:bornIn", "kb:springfield", 0.9),
		cand("kb:alice", "kb:bornIn", "kb:shelbyville", 0.4), // conflicting birthplace
		cand("kb:bob", "kb:bornIn", "kb:springfield", 0.8),
	}
	cp := BuildConsistency(cands, ConsistencyRules{
		Functional: map[string]bool{"kb:bornIn": true},
	})
	sol := cp.SolveWalkSAT(500, 0.2, 1)
	if sol.HardViolations != 0 {
		t.Fatal("infeasible")
	}
	accepted := cp.Accepted(sol)
	keys := map[string]bool{}
	for _, c := range accepted {
		keys[c.O+"|"+c.S] = true
	}
	if !keys["kb:springfield|kb:alice"] {
		t.Errorf("high-confidence fact rejected: %+v", accepted)
	}
	if keys["kb:shelbyville|kb:alice"] {
		t.Errorf("conflicting low-confidence fact accepted: %+v", accepted)
	}
	if !keys["kb:springfield|kb:bob"] {
		t.Errorf("unrelated fact rejected: %+v", accepted)
	}
}

func TestBuildConsistencyTypeCheck(t *testing.T) {
	cands := []extract.Candidate{
		cand("kb:alice", "kb:bornIn", "kb:acme", 0.95), // born in a company: ill-typed
		cand("kb:alice", "kb:bornIn", "kb:springfield", 0.5),
	}
	cp := BuildConsistency(cands, ConsistencyRules{
		Functional: map[string]bool{"kb:bornIn": true},
		TypeCheck: func(c extract.Candidate) bool {
			return c.O != "kb:acme"
		},
	})
	sol := cp.SolveWalkSAT(500, 0.2, 2)
	accepted := cp.Accepted(sol)
	for _, c := range accepted {
		if c.O == "kb:acme" {
			t.Error("ill-typed fact accepted despite hard clause")
		}
	}
	if len(accepted) != 1 {
		t.Errorf("accepted = %+v", accepted)
	}
}

func TestBuildConsistencyTemporal(t *testing.T) {
	times := map[string]core.Interval{
		"kb:a|kb:ceoOf|kb:acme": {Begin: 0, End: 100},
		"kb:b|kb:ceoOf|kb:acme": {Begin: 50, End: 150},  // overlaps a
		"kb:c|kb:ceoOf|kb:acme": {Begin: 200, End: 300}, // disjoint
	}
	// Note: temporal exclusivity groups by subject; here the "subject" of
	// exclusivity is the company, so model facts as (company, rel, person).
	cands := []extract.Candidate{
		cand("kb:acme", "ceoIs", "kb:a", 0.9),
		cand("kb:acme", "ceoIs", "kb:b", 0.5),
		cand("kb:acme", "ceoIs", "kb:c", 0.7),
	}
	keyOf := func(c extract.Candidate) string { return c.O + "|kb:ceoOf|" + c.S }
	cp := BuildConsistency(cands, ConsistencyRules{
		TemporallyExclusive: map[string]bool{"ceoIs": true},
		Times: func(c extract.Candidate) core.Interval {
			return times[keyOf(c)]
		},
	})
	sol := cp.SolveWalkSAT(500, 0.2, 3)
	accepted := cp.Accepted(sol)
	people := map[string]bool{}
	for _, c := range accepted {
		people[c.O] = true
	}
	if !people["kb:a"] || people["kb:b"] || !people["kb:c"] {
		t.Errorf("temporal reasoning wrong: %+v", accepted)
	}
}

func TestBuildConsistencyDedupes(t *testing.T) {
	cands := []extract.Candidate{
		cand("a", "p", "b", 0.3),
		cand("a", "p", "b", 0.8), // duplicate, higher confidence
	}
	cp := BuildConsistency(cands, ConsistencyRules{})
	if len(cp.Candidates) != 1 {
		t.Fatalf("candidates = %+v", cp.Candidates)
	}
	if cp.Candidates[0].Confidence != 0.8 {
		t.Errorf("dedupe should keep max confidence: %+v", cp.Candidates[0])
	}
}

// The E6 invariant in miniature: reasoning lifts precision on a noisy
// candidate set without destroying recall.
func TestReasoningLiftsPrecision(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var cands []extract.Candidate
	gold := map[string]bool{}
	// 40 true facts, high confidence.
	for i := 0; i < 40; i++ {
		s := entity("s", i)
		o := entity("o", i)
		c := cand(s, "kb:bornIn", o, 0.7+0.3*rng.Float64())
		cands = append(cands, c)
		gold[c.Key()] = true
	}
	// 20 noise facts contradicting the functional constraint, lower
	// confidence.
	for i := 0; i < 20; i++ {
		s := entity("s", i)
		o := entity("noise", i)
		cands = append(cands, cand(s, "kb:bornIn", o, 0.2+0.4*rng.Float64()))
	}
	pre := precisionOf(cands, gold)

	cp := BuildConsistency(cands, ConsistencyRules{
		Functional: map[string]bool{"kb:bornIn": true},
	})
	sol := cp.SolveWalkSAT(3000, 0.2, 5)
	if sol.HardViolations != 0 {
		t.Fatal("infeasible solution")
	}
	accepted := cp.Accepted(sol)
	post := precisionOf(accepted, gold)
	if post <= pre {
		t.Errorf("reasoning did not lift precision: %.3f -> %.3f", pre, post)
	}
	if post < 0.95 {
		t.Errorf("post-reasoning precision = %.3f", post)
	}
	// Recall: all 40 gold facts should survive (their confidences beat
	// the noise).
	kept := 0
	for _, c := range accepted {
		if gold[c.Key()] {
			kept++
		}
	}
	if kept < 38 {
		t.Errorf("reasoning destroyed recall: %d/40 kept", kept)
	}
}

func precisionOf(cands []extract.Candidate, gold map[string]bool) float64 {
	if len(cands) == 0 {
		return 0
	}
	tp := 0
	for _, c := range cands {
		if gold[c.Key()] {
			tp++
		}
	}
	return eval.Accuracy(tp, len(cands))
}

func entity(prefix string, i int) string {
	return "kb:" + prefix + string(rune('A'+i%26)) + string(rune('0'+i/26))
}
