package reason

import (
	"fmt"
	"sort"

	"kbharvest/internal/core"
	"kbharvest/internal/extract"
)

// ConsistencyRules describe the schema knowledge the reasoner enforces —
// the rule kinds the tutorial names for "logical consistency reasoning":
// functional relations, type signatures, and temporal exclusivity.
type ConsistencyRules struct {
	// Functional relations allow at most one object per subject.
	Functional map[string]bool
	// InverseFunctional relations allow at most one subject per object.
	InverseFunctional map[string]bool
	// TypeCheck, if set, vets a candidate's type signature; failing
	// candidates get a hard ¬fact clause.
	TypeCheck func(c extract.Candidate) bool
	// TemporallyExclusive relations allow no two facts with the same
	// subject whose validity intervals overlap (e.g. a company's CEO);
	// intervals are supplied by Times.
	TemporallyExclusive map[string]bool
	Times               func(c extract.Candidate) core.Interval
}

// ConsistencyProblem couples a MaxSat instance with the candidate facts
// its variables stand for.
type ConsistencyProblem struct {
	*Problem
	Candidates []extract.Candidate
}

// BuildConsistency compiles candidates + rules into weighted MaxSat:
// soft unit clause (fact) with the extraction confidence as weight, and
// hard pairwise exclusion clauses (¬a ∨ ¬b) for rule conflicts.
func BuildConsistency(cands []extract.Candidate, rules ConsistencyRules) *ConsistencyProblem {
	cp := &ConsistencyProblem{Problem: NewProblem()}
	// Dedupe candidates by (s,p,o), keeping max confidence.
	byKey := map[string]int{}
	for _, c := range cands {
		if i, ok := byKey[c.Key()]; ok {
			if c.Confidence > cp.Candidates[i].Confidence {
				cp.Candidates[i].Confidence = c.Confidence
			}
			continue
		}
		byKey[c.Key()] = len(cp.Candidates)
		cp.Candidates = append(cp.Candidates, c)
	}
	for _, c := range cp.Candidates {
		v := cp.AddVar(fmt.Sprintf("%s|%s|%s", c.S, c.P, c.O))
		w := c.Confidence
		if w <= 0 {
			w = 0.01
		}
		mustNoErr(cp.AddSoft(w, Lit{Var: v}))
		if rules.TypeCheck != nil && !rules.TypeCheck(c) {
			mustNoErr(cp.AddHard(Lit{Var: v, Neg: true}))
		}
	}
	// Pairwise exclusions.
	group := func(key func(c extract.Candidate) (string, bool)) map[string][]int {
		m := map[string][]int{}
		for i, c := range cp.Candidates {
			if k, ok := key(c); ok {
				m[k] = append(m[k], i)
			}
		}
		return m
	}
	addMutexes := func(groups map[string][]int, conflict func(a, b extract.Candidate) bool) {
		keys := make([]string, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			idxs := groups[k]
			for i := 0; i < len(idxs); i++ {
				for j := i + 1; j < len(idxs); j++ {
					a, b := cp.Candidates[idxs[i]], cp.Candidates[idxs[j]]
					if conflict(a, b) {
						mustNoErr(cp.AddHard(
							Lit{Var: idxs[i], Neg: true},
							Lit{Var: idxs[j], Neg: true},
						))
					}
				}
			}
		}
	}
	if len(rules.Functional) > 0 {
		addMutexes(group(func(c extract.Candidate) (string, bool) {
			if rules.Functional[c.P] {
				return c.P + "|" + c.S, true
			}
			return "", false
		}), func(a, b extract.Candidate) bool { return a.O != b.O })
	}
	if len(rules.InverseFunctional) > 0 {
		addMutexes(group(func(c extract.Candidate) (string, bool) {
			if rules.InverseFunctional[c.P] {
				return c.P + "|" + c.O, true
			}
			return "", false
		}), func(a, b extract.Candidate) bool { return a.S != b.S })
	}
	if len(rules.TemporallyExclusive) > 0 && rules.Times != nil {
		addMutexes(group(func(c extract.Candidate) (string, bool) {
			if rules.TemporallyExclusive[c.P] {
				return c.P + "|" + c.S, true
			}
			return "", false
		}), func(a, b extract.Candidate) bool {
			return a.O != b.O && rules.Times(a).Overlaps(rules.Times(b))
		})
	}
	return cp
}

// Accepted returns the candidates assigned true by a solution.
func (cp *ConsistencyProblem) Accepted(s Solution) []extract.Candidate {
	var out []extract.Candidate
	for i, c := range cp.Candidates {
		if i < len(s.Values) && s.Values[i] {
			out = append(out, c)
		}
	}
	return out
}

func mustNoErr(err error) {
	if err != nil {
		// Clauses built here reference variables we just created; an
		// error means a bug in this package, not bad input.
		panic(err)
	}
}
