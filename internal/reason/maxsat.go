// Package reason implements logical consistency reasoning over candidate
// facts (§3): the SOFIE/YAGO approach of casting fact acceptance as
// weighted MaxSat. Extracted candidates become weighted unit clauses
// (weight = extraction confidence); consistency rules — functionality,
// type signatures, relation disjointness, temporal exclusion — become hard
// clauses. A solver then picks the consistent subset of maximum weight,
// which lifts precision over accepting raw extractions (experiment E6).
package reason

import (
	"fmt"
	"math/rand"
	"sort"
)

// Lit is one literal: variable index, possibly negated.
type Lit struct {
	Var int
	Neg bool
}

// Clause is a disjunction of literals. Hard clauses must be satisfied;
// soft clauses contribute Weight when satisfied.
type Clause struct {
	Lits   []Lit
	Weight float64
	Hard   bool
}

// Problem is a weighted partial MaxSat instance.
type Problem struct {
	names   []string
	clauses []Clause
	// watch[v] lists clause indexes containing variable v.
	watch [][]int
}

// NewProblem returns an empty instance.
func NewProblem() *Problem { return &Problem{} }

// AddVar adds a boolean variable and returns its index.
func (p *Problem) AddVar(name string) int {
	p.names = append(p.names, name)
	p.watch = append(p.watch, nil)
	return len(p.names) - 1
}

// NumVars returns the variable count.
func (p *Problem) NumVars() int { return len(p.names) }

// Name returns a variable's name.
func (p *Problem) Name(v int) string { return p.names[v] }

// AddSoft adds a soft clause with the given weight.
func (p *Problem) AddSoft(weight float64, lits ...Lit) error {
	return p.addClause(Clause{Lits: lits, Weight: weight})
}

// AddHard adds a hard clause.
func (p *Problem) AddHard(lits ...Lit) error {
	return p.addClause(Clause{Lits: lits, Hard: true})
}

func (p *Problem) addClause(c Clause) error {
	if len(c.Lits) == 0 {
		return fmt.Errorf("reason: empty clause")
	}
	for _, l := range c.Lits {
		if l.Var < 0 || l.Var >= len(p.names) {
			return fmt.Errorf("reason: variable %d out of range", l.Var)
		}
	}
	idx := len(p.clauses)
	p.clauses = append(p.clauses, c)
	seen := map[int]bool{}
	for _, l := range c.Lits {
		if !seen[l.Var] {
			seen[l.Var] = true
			p.watch[l.Var] = append(p.watch[l.Var], idx)
		}
	}
	return nil
}

// Solution is one assignment with its quality.
type Solution struct {
	Values []bool
	// SoftWeight is the total weight of satisfied soft clauses.
	SoftWeight float64
	// HardViolations counts unsatisfied hard clauses (0 for feasible
	// solutions).
	HardViolations int
}

func satisfied(c Clause, vals []bool) bool {
	for _, l := range c.Lits {
		if vals[l.Var] != l.Neg {
			return true
		}
	}
	return false
}

// Evaluate scores an assignment.
func (p *Problem) Evaluate(vals []bool) Solution {
	s := Solution{Values: vals}
	for _, c := range p.clauses {
		if satisfied(c, vals) {
			if !c.Hard {
				s.SoftWeight += c.Weight
			}
		} else if c.Hard {
			s.HardViolations++
		}
	}
	return s
}

// SolveGreedy starts from all-true (accept every fact) and repairs hard
// violations by flipping, within each violated clause, the variable whose
// flip loses the least soft weight; then does one local-improvement pass
// over soft clauses. Deterministic.
func (p *Problem) SolveGreedy() Solution {
	vals := make([]bool, len(p.names))
	for i := range vals {
		vals[i] = true
	}
	// Repair loop.
	for iter := 0; iter < 4*len(p.clauses)+16; iter++ {
		vi := p.firstViolatedHard(vals)
		if vi < 0 {
			break
		}
		c := p.clauses[vi]
		bestVar, bestLoss := -1, 0.0
		for _, l := range c.Lits {
			loss := p.flipLoss(vals, l.Var)
			if bestVar == -1 || loss < bestLoss {
				bestVar, bestLoss = l.Var, loss
			}
		}
		vals[bestVar] = !vals[bestVar]
	}
	// Local improvement on soft weight (single pass, keep feasibility).
	for v := range vals {
		if p.flipLoss(vals, v) < 0 && p.flipKeepsFeasible(vals, v) {
			vals[v] = !vals[v]
		}
	}
	return p.Evaluate(vals)
}

// flipLoss returns the soft-weight change lost by flipping v (positive =
// flip hurts).
func (p *Problem) flipLoss(vals []bool, v int) float64 {
	before, after := 0.0, 0.0
	vals[v] = !vals[v]
	for _, ci := range p.watch[v] {
		c := p.clauses[ci]
		if c.Hard {
			continue
		}
		if satisfied(c, vals) {
			after += c.Weight
		}
	}
	vals[v] = !vals[v]
	for _, ci := range p.watch[v] {
		c := p.clauses[ci]
		if c.Hard {
			continue
		}
		if satisfied(c, vals) {
			before += c.Weight
		}
	}
	return before - after
}

func (p *Problem) flipKeepsFeasible(vals []bool, v int) bool {
	vals[v] = !vals[v]
	ok := true
	for _, ci := range p.watch[v] {
		c := p.clauses[ci]
		if c.Hard && !satisfied(c, vals) {
			ok = false
			break
		}
	}
	vals[v] = !vals[v]
	return ok
}

func (p *Problem) firstViolatedHard(vals []bool) int {
	for i, c := range p.clauses {
		if c.Hard && !satisfied(c, vals) {
			return i
		}
	}
	return -1
}

// SolveWalkSAT runs weighted WalkSAT: starting from the greedy solution,
// it repeatedly picks an unsatisfied clause (hard ones first) and flips
// either a random variable in it (with probability noise) or the variable
// whose flip minimizes the damage. The best feasible solution seen wins.
func (p *Problem) SolveWalkSAT(maxFlips int, noise float64, seed int64) Solution {
	rng := rand.New(rand.NewSource(seed))
	cur := p.SolveGreedy()
	vals := append([]bool(nil), cur.Values...)
	best := cur
	for flip := 0; flip < maxFlips; flip++ {
		ci := p.pickUnsatisfied(vals, rng)
		if ci < 0 {
			break // everything satisfied
		}
		c := p.clauses[ci]
		var v int
		if rng.Float64() < noise {
			v = c.Lits[rng.Intn(len(c.Lits))].Var
		} else {
			v = -1
			bestLoss := 0.0
			for _, l := range c.Lits {
				loss := p.flipLoss(vals, l.Var)
				if v == -1 || loss < bestLoss {
					v, bestLoss = l.Var, loss
				}
			}
		}
		vals[v] = !vals[v]
		sol := p.Evaluate(vals)
		if sol.HardViolations == 0 &&
			(best.HardViolations > 0 || sol.SoftWeight > best.SoftWeight) {
			best = Solution{Values: append([]bool(nil), vals...), SoftWeight: sol.SoftWeight}
		}
	}
	return best
}

// pickUnsatisfied returns a violated hard clause if any, else a random
// unsatisfied soft clause, else -1.
func (p *Problem) pickUnsatisfied(vals []bool, rng *rand.Rand) int {
	var soft []int
	for i, c := range p.clauses {
		if satisfied(c, vals) {
			continue
		}
		if c.Hard {
			return i
		}
		soft = append(soft, i)
	}
	if len(soft) == 0 {
		return -1
	}
	return soft[rng.Intn(len(soft))]
}

// SolveExhaustive enumerates all assignments — exact, for problems with at
// most ~22 variables (used to validate the heuristics on small cores).
func (p *Problem) SolveExhaustive() (Solution, error) {
	n := len(p.names)
	if n > 22 {
		return Solution{}, fmt.Errorf("reason: %d variables too many for exhaustive search", n)
	}
	best := Solution{HardViolations: 1 << 30}
	vals := make([]bool, n)
	for mask := 0; mask < 1<<uint(n); mask++ {
		for v := 0; v < n; v++ {
			vals[v] = mask&(1<<uint(v)) != 0
		}
		sol := p.Evaluate(vals)
		if sol.HardViolations < best.HardViolations ||
			(sol.HardViolations == best.HardViolations && sol.SoftWeight > best.SoftWeight) {
			best = Solution{
				Values:         append([]bool(nil), vals...),
				SoftWeight:     sol.SoftWeight,
				HardViolations: sol.HardViolations,
			}
		}
	}
	return best, nil
}

// TrueVars lists the names of variables assigned true, sorted.
func (p *Problem) TrueVars(s Solution) []string {
	var out []string
	for v, val := range s.Values {
		if val {
			out = append(out, p.names[v])
		}
	}
	sort.Strings(out)
	return out
}
