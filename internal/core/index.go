package core

import "sync"

// The index layer: each of the three permutations (spo/pos/osp) is a
// permIndex of indexStripes independently locked stripes, keyed by the
// permutation's leading ID. A write touches exactly one stripe per
// permutation, so concurrent writers with different leading terms never
// contend; readers take a stripe read lock only long enough to copy the
// matching fact IDs out.
//
// Postings are held behind pointers (map[ID]*posting) so appending to an
// existing posting list costs one map access instead of an access plus a
// re-assignment.

const (
	indexStripeBits = 4
	indexStripes    = 1 << indexStripeBits // 16
	indexStripeMask = indexStripes - 1
)

type posting struct{ ids []FactID }

type indexStripe struct {
	mu sync.RWMutex
	m  map[ID]map[ID]*posting // leading -> second -> facts
}

type permIndex struct {
	stripes [indexStripes]indexStripe
}

func (p *permIndex) init() {
	for i := range p.stripes {
		p.stripes[i].m = make(map[ID]map[ID]*posting)
	}
}

func stripeOf(lead ID) uint32 {
	// Leading IDs carry the dictionary shard in their low bits; mix the
	// local index in so stripe choice is independent of dictionary shard.
	return (uint32(lead) ^ uint32(lead)>>indexStripeBits) & indexStripeMask
}

func (st *indexStripe) put(a, b ID, f FactID) {
	inner, ok := st.m[a]
	if !ok {
		inner = make(map[ID]*posting)
		st.m[a] = inner
	}
	pl, ok := inner[b]
	if !ok {
		pl = &posting{}
		inner[b] = pl
	}
	pl.ids = append(pl.ids, f)
}

// insert adds one fact under (a, b). One stripe lock acquisition.
func (p *permIndex) insert(a, b ID, f FactID) {
	s := &p.stripes[stripeOf(a)]
	s.mu.Lock()
	s.put(a, b, f)
	s.mu.Unlock()
}

// idxEntry is one pending index insertion of a batch.
type idxEntry struct {
	a, b ID
	f    FactID
}

// insertBatch adds every entry, taking each stripe's lock at most once.
func (p *permIndex) insertBatch(entries []idxEntry) {
	var byStripe [indexStripes][]idxEntry
	for _, e := range entries {
		s := stripeOf(e.a)
		byStripe[s] = append(byStripe[s], e)
	}
	for s := range byStripe {
		if len(byStripe[s]) == 0 {
			continue
		}
		stripe := &p.stripes[s]
		stripe.mu.Lock()
		for _, e := range byStripe[s] {
			stripe.put(e.a, e.b, e.f)
		}
		stripe.mu.Unlock()
	}
}

// pair appends the fact IDs filed under (a, b) to buf and returns it.
func (p *permIndex) pair(a, b ID, buf []FactID) []FactID {
	s := &p.stripes[stripeOf(a)]
	s.mu.RLock()
	if pl, ok := s.m[a][b]; ok {
		buf = append(buf, pl.ids...)
	}
	s.mu.RUnlock()
	return buf
}

// lead appends every fact ID whose leading term is a to buf and returns
// it. Order is unspecified; callers sort by FactID.
func (p *permIndex) lead(a ID, buf []FactID) []FactID {
	s := &p.stripes[stripeOf(a)]
	s.mu.RLock()
	for _, pl := range s.m[a] {
		buf = append(buf, pl.ids...)
	}
	s.mu.RUnlock()
	return buf
}
