package core

import (
	"sync"
	"sync/atomic"
)

// The index layer: each of the three permutations (spo/pos/osp) is a
// permIndex of indexStripes independently locked stripes, keyed by the
// permutation's leading ID. A write touches exactly one stripe per
// permutation, so concurrent writers with different leading terms never
// contend; readers take a stripe read lock only long enough to copy the
// matching fact IDs out.
//
// Postings are held behind pointers (map[ID]*posting) so appending to an
// existing posting list costs one map access instead of an access plus a
// re-assignment.
//
// Each stripe additionally carries a write generation counter, bumped on
// every insertion into the stripe and on every tombstone whose fact the
// stripe indexes. The counter lets the result cache (internal/qcache)
// validate a cached pattern result with a single atomic load: if the
// generation of the stripe a pattern reads from is unchanged since the
// result was computed, no write can have altered the pattern's matches.
// Writers only bump atomics — they never touch cache state or cache locks.

const (
	indexStripeBits = 4
	indexStripes    = 1 << indexStripeBits // 16
	indexStripeMask = indexStripes - 1
)

// compactMinPostings is the smallest copied-out candidate list that can
// trigger tombstone compaction of its posting; below it, the dead entries
// cost less than the compaction pass.
const compactMinPostings = 16

type posting struct{ ids []FactID }

type indexStripe struct {
	mu  sync.RWMutex
	gen atomic.Uint64
	m   map[ID]map[ID]*posting // leading -> second -> facts
}

type permIndex struct {
	stripes [indexStripes]indexStripe
}

func (p *permIndex) init() {
	for i := range p.stripes {
		p.stripes[i].m = make(map[ID]map[ID]*posting)
	}
}

func stripeOf(lead ID) uint32 {
	// Leading IDs carry the dictionary shard in their low bits; mix the
	// local index in so stripe choice is independent of dictionary shard.
	return (uint32(lead) ^ uint32(lead)>>indexStripeBits) & indexStripeMask
}

func (st *indexStripe) put(a, b ID, f FactID) {
	inner, ok := st.m[a]
	if !ok {
		inner = make(map[ID]*posting)
		st.m[a] = inner
	}
	pl, ok := inner[b]
	if !ok {
		pl = &posting{}
		inner[b] = pl
	}
	pl.ids = append(pl.ids, f)
}

// insert adds one fact under (a, b). One stripe lock acquisition.
func (p *permIndex) insert(a, b ID, f FactID) {
	s := &p.stripes[stripeOf(a)]
	s.mu.Lock()
	s.put(a, b, f)
	s.gen.Add(1)
	s.mu.Unlock()
}

// idxEntry is one pending index insertion of a batch.
type idxEntry struct {
	a, b ID
	f    FactID
}

// insertBatch adds every entry, taking each stripe's lock at most once and
// bumping each touched stripe's generation once.
func (p *permIndex) insertBatch(entries []idxEntry) {
	var byStripe [indexStripes][]idxEntry
	for _, e := range entries {
		s := stripeOf(e.a)
		byStripe[s] = append(byStripe[s], e)
	}
	for s := range byStripe {
		if len(byStripe[s]) == 0 {
			continue
		}
		stripe := &p.stripes[s]
		stripe.mu.Lock()
		for _, e := range byStripe[s] {
			stripe.put(e.a, e.b, e.f)
		}
		stripe.gen.Add(1)
		stripe.mu.Unlock()
	}
}

// pair appends the fact IDs filed under (a, b) to buf and returns it.
func (p *permIndex) pair(a, b ID, buf []FactID) []FactID {
	s := &p.stripes[stripeOf(a)]
	s.mu.RLock()
	if pl, ok := s.m[a][b]; ok {
		buf = append(buf, pl.ids...)
	}
	s.mu.RUnlock()
	return buf
}

// lead appends every fact ID whose leading term is a to buf and returns
// it. Order is unspecified; callers sort by FactID.
func (p *permIndex) lead(a ID, buf []FactID) []FactID {
	s := &p.stripes[stripeOf(a)]
	s.mu.RLock()
	for _, pl := range s.m[a] {
		buf = append(buf, pl.ids...)
	}
	s.mu.RUnlock()
	return buf
}

// pairCount returns the posting length under (a, b). Tombstoned facts are
// included until compaction prunes them, so this is an upper bound on the
// live matches — which is exactly what join planning needs cheaply.
func (p *permIndex) pairCount(a, b ID) int {
	s := &p.stripes[stripeOf(a)]
	s.mu.RLock()
	n := 0
	if pl, ok := s.m[a][b]; ok {
		n = len(pl.ids)
	}
	s.mu.RUnlock()
	return n
}

// leadCount returns the total posting length under leading term a (an
// upper bound on live matches, like pairCount).
func (p *permIndex) leadCount(a ID) int {
	s := &p.stripes[stripeOf(a)]
	s.mu.RLock()
	n := 0
	for _, pl := range s.m[a] {
		n += len(pl.ids)
	}
	s.mu.RUnlock()
	return n
}

// genOf returns the current write generation of the stripe that indexes
// leading term a.
func (p *permIndex) genOf(a ID) uint64 {
	return p.stripes[stripeOf(a)].gen.Load()
}

// bumpGen marks a write affecting leading term a without touching the
// stripe's postings (used when a fact is tombstoned: the posting entry
// goes stale but is pruned lazily).
func (p *permIndex) bumpGen(a ID) {
	p.stripes[stripeOf(a)].gen.Add(1)
}

// compactPair rewrites the (a, b) posting dropping every FactID in dead.
// Tombstoned FactIDs never come back to life (a re-added triple gets a
// fresh ID), so dead sets computed outside the stripe lock stay valid.
// Compaction does not change any pattern's visible matches, so it does not
// bump the stripe generation.
func (p *permIndex) compactPair(a, b ID, dead map[FactID]bool) {
	s := &p.stripes[stripeOf(a)]
	s.mu.Lock()
	if pl, ok := s.m[a][b]; ok {
		pl.ids = pruneDead(pl.ids, dead)
		if len(pl.ids) == 0 {
			delete(s.m[a], b)
			if len(s.m[a]) == 0 {
				delete(s.m, a)
			}
		}
	}
	s.mu.Unlock()
}

// compactLead rewrites every posting under leading term a dropping the
// FactIDs in dead.
func (p *permIndex) compactLead(a ID, dead map[FactID]bool) {
	s := &p.stripes[stripeOf(a)]
	s.mu.Lock()
	inner := s.m[a]
	for b, pl := range inner {
		pl.ids = pruneDead(pl.ids, dead)
		if len(pl.ids) == 0 {
			delete(inner, b)
		}
	}
	if len(inner) == 0 {
		delete(s.m, a)
	}
	s.mu.Unlock()
}

func pruneDead(ids []FactID, dead map[FactID]bool) []FactID {
	out := ids[:0]
	for _, id := range ids {
		if !dead[id] {
			out = append(out, id)
		}
	}
	return out
}
