package core

import (
	"reflect"
	"testing"
)

// buildTaxonomy creates the small class hierarchy used across these tests:
//
//	entity
//	  person
//	    scientist
//	      physicist
//	    entrepreneur
//	  organization
//	    company
func buildTaxonomy() *Store {
	st := NewStore()
	st.AddSubclass("person", "entity")
	st.AddSubclass("scientist", "person")
	st.AddSubclass("physicist", "scientist")
	st.AddSubclass("entrepreneur", "person")
	st.AddSubclass("organization", "entity")
	st.AddSubclass("company", "organization")
	st.AddType("einstein", "physicist")
	st.AddType("jobs", "entrepreneur")
	st.AddType("curie", "physicist")
	st.AddType("curie", "scientist")
	st.AddType("apple", "company")
	return st
}

func TestDirectTypes(t *testing.T) {
	st := buildTaxonomy()
	got := st.DirectTypes("curie")
	if len(got) != 2 {
		t.Errorf("DirectTypes(curie) = %v", got)
	}
	if got := st.DirectTypes("nobody"); len(got) != 0 {
		t.Errorf("DirectTypes(nobody) = %v", got)
	}
}

func TestTypesTransitive(t *testing.T) {
	st := buildTaxonomy()
	want := []string{"entity", "person", "physicist", "scientist"}
	if got := st.Types("einstein"); !reflect.DeepEqual(got, want) {
		t.Errorf("Types(einstein) = %v, want %v", got, want)
	}
}

func TestIsA(t *testing.T) {
	st := buildTaxonomy()
	cases := []struct {
		e, c string
		want bool
	}{
		{"einstein", "physicist", true},
		{"einstein", "scientist", true},
		{"einstein", "person", true},
		{"einstein", "entity", true},
		{"einstein", "entrepreneur", false},
		{"einstein", "company", false},
		{"apple", "organization", true},
		{"apple", "person", false},
	}
	for _, c := range cases {
		if got := st.IsA(c.e, c.c); got != c.want {
			t.Errorf("IsA(%s, %s) = %v, want %v", c.e, c.c, got, c.want)
		}
	}
}

func TestSuperSubclasses(t *testing.T) {
	st := buildTaxonomy()
	if got := st.Superclasses("physicist"); !reflect.DeepEqual(got, []string{"entity", "person", "scientist"}) {
		t.Errorf("Superclasses(physicist) = %v", got)
	}
	if got := st.Subclasses("person"); !reflect.DeepEqual(got, []string{"entrepreneur", "physicist", "scientist"}) {
		t.Errorf("Subclasses(person) = %v", got)
	}
	if got := st.Subclasses("physicist"); len(got) != 0 {
		t.Errorf("Subclasses(physicist) = %v", got)
	}
}

func TestSubclassCycleTolerated(t *testing.T) {
	st := NewStore()
	st.AddSubclass("a", "b")
	st.AddSubclass("b", "c")
	st.AddSubclass("c", "a") // cycle
	got := st.Superclasses("a")
	// Must terminate; a's supers are b, c (and a itself is excluded).
	if len(got) != 2 {
		t.Errorf("Superclasses in cycle = %v", got)
	}
	st.AddType("x", "a")
	types := st.Types("x")
	if len(types) != 3 {
		t.Errorf("Types through cycle = %v", types)
	}
}

func TestInstances(t *testing.T) {
	st := buildTaxonomy()
	if got := st.Instances("scientist"); !reflect.DeepEqual(got, []string{"curie", "einstein"}) {
		t.Errorf("Instances(scientist) = %v", got)
	}
	if got := st.Instances("person"); !reflect.DeepEqual(got, []string{"curie", "einstein", "jobs"}) {
		t.Errorf("Instances(person) = %v", got)
	}
	if got := st.DirectInstances("person"); len(got) != 0 {
		t.Errorf("DirectInstances(person) = %v", got)
	}
	if got := st.Instances("entity"); len(got) != 4 {
		t.Errorf("Instances(entity) = %v", got)
	}
}

func TestClasses(t *testing.T) {
	st := buildTaxonomy()
	got := st.Classes()
	want := []string{"company", "entity", "entrepreneur", "organization", "person", "physicist", "scientist"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Classes = %v, want %v", got, want)
	}
}

func TestLowestCommonAncestors(t *testing.T) {
	st := buildTaxonomy()
	if got := st.LowestCommonAncestors("einstein", "curie"); !reflect.DeepEqual(got, []string{"physicist"}) {
		t.Errorf("LCA(einstein,curie) = %v", got)
	}
	if got := st.LowestCommonAncestors("einstein", "jobs"); !reflect.DeepEqual(got, []string{"person"}) {
		t.Errorf("LCA(einstein,jobs) = %v", got)
	}
	if got := st.LowestCommonAncestors("einstein", "apple"); !reflect.DeepEqual(got, []string{"entity"}) {
		t.Errorf("LCA(einstein,apple) = %v", got)
	}
	if got := st.LowestCommonAncestors("einstein", "unknown"); len(got) != 0 {
		t.Errorf("LCA with unknown = %v", got)
	}
}
