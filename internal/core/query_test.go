package core

import (
	"context"
	"testing"

	"kbharvest/internal/rdf"
)

func buildQueryFixture() *Store {
	st := NewStore()
	st.Add(rdf.T("jobs", "founded", "apple"))
	st.Add(rdf.T("jobs", "founded", "next"))
	st.Add(rdf.T("wozniak", "founded", "apple"))
	st.Add(rdf.T("gates", "founded", "microsoft"))
	st.Add(rdf.T("apple", "locatedIn", "cupertino"))
	st.Add(rdf.T("microsoft", "locatedIn", "redmond"))
	st.Add(rdf.T("next", "locatedIn", "redwood"))
	st.AddType("jobs", "person")
	st.AddType("wozniak", "person")
	st.AddType("gates", "person")
	return st
}

func TestQuerySinglePattern(t *testing.T) {
	st := buildQueryFixture()
	got := st.Query([]Pattern{{S: PVar("x"), P: PIRI("founded"), O: PIRI("apple")}})
	if len(got) != 2 {
		t.Fatalf("got %d bindings, want 2", len(got))
	}
	SortBindings(got, "x")
	if got[0]["x"].Value != "jobs" || got[1]["x"].Value != "wozniak" {
		t.Errorf("bindings = %v", got)
	}
}

func TestQueryJoin(t *testing.T) {
	st := buildQueryFixture()
	// Who founded a company located in redmond?
	got := st.Query([]Pattern{
		{S: PVar("p"), P: PIRI("founded"), O: PVar("c")},
		{S: PVar("c"), P: PIRI("locatedIn"), O: PIRI("redmond")},
	})
	if len(got) != 1 {
		t.Fatalf("got %d bindings, want 1: %v", len(got), got)
	}
	if got[0]["p"].Value != "gates" || got[0]["c"].Value != "microsoft" {
		t.Errorf("binding = %v", got[0])
	}
}

func TestQueryThreeWayJoin(t *testing.T) {
	st := buildQueryFixture()
	// People and the cities of companies they founded.
	got := st.Query([]Pattern{
		{S: PVar("p"), P: PIRI(rdf.RDFType), O: PIRI("person")},
		{S: PVar("p"), P: PIRI("founded"), O: PVar("c")},
		{S: PVar("c"), P: PIRI("locatedIn"), O: PVar("city")},
	})
	if len(got) != 4 {
		t.Fatalf("got %d rows, want 4: %v", len(got), got)
	}
	SortBindings(got, "p", "city")
	if got[0]["p"].Value != "gates" || got[0]["city"].Value != "redmond" {
		t.Errorf("first row = %v", got[0])
	}
}

func TestQueryNoResults(t *testing.T) {
	st := buildQueryFixture()
	got := st.Query([]Pattern{
		{S: PVar("x"), P: PIRI("founded"), O: PIRI("nonexistent")},
	})
	if got != nil {
		t.Errorf("want nil, got %v", got)
	}
	// Join that dies at second pattern.
	got = st.Query([]Pattern{
		{S: PVar("x"), P: PIRI("founded"), O: PVar("c")},
		{S: PVar("c"), P: PIRI("locatedIn"), O: PIRI("nowhere")},
	})
	if got != nil {
		t.Errorf("want nil, got %v", got)
	}
}

func TestQueryRepeatedVariable(t *testing.T) {
	st := NewStore()
	st.Add(rdf.T("a", "knows", "a")) // self loop
	st.Add(rdf.T("a", "knows", "b"))
	got := st.Query([]Pattern{{S: PVar("x"), P: PIRI("knows"), O: PVar("x")}})
	if len(got) != 1 || got[0]["x"].Value != "a" {
		t.Errorf("self-loop query = %v", got)
	}
}

func TestQueryVariablePredicate(t *testing.T) {
	st := buildQueryFixture()
	got := st.Query([]Pattern{{S: PIRI("jobs"), P: PVar("r"), O: PVar("y")}})
	if len(got) != 3 {
		t.Errorf("got %d rows, want 3", len(got))
	}
}

func TestQueryEmptyPatternList(t *testing.T) {
	st := buildQueryFixture()
	got := st.Query(nil)
	if len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("empty query should yield one empty binding, got %v", got)
	}
}

func TestParsePatternTerm(t *testing.T) {
	cases := []struct {
		in      string
		wantVar Var
		wantIRI string
		wantLit string
		wantErr bool
	}{
		{"?x", "x", "", "", false},
		{"<kb:founded>", "", "kb:founded", "", false},
		{"kb:founded", "", "kb:founded", "", false},
		{`"Steve Jobs"`, "", "", "Steve Jobs", false},
		{"?", "", "", "", true},
		{"", "", "", "", true},
	}
	for _, c := range cases {
		got, err := ParsePatternTerm(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParsePatternTerm(%q) should fail", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePatternTerm(%q): %v", c.in, err)
			continue
		}
		switch {
		case c.wantVar != "":
			if got.Var != c.wantVar {
				t.Errorf("ParsePatternTerm(%q).Var = %q", c.in, got.Var)
			}
		case c.wantIRI != "":
			if !got.Const.IsIRI() || got.Const.Value != c.wantIRI {
				t.Errorf("ParsePatternTerm(%q) = %v", c.in, got.Const)
			}
		case c.wantLit != "":
			if !got.Const.IsLiteral() || got.Const.Value != c.wantLit {
				t.Errorf("ParsePatternTerm(%q) = %v", c.in, got.Const)
			}
		}
	}
}

func TestQueryStrings(t *testing.T) {
	st := buildQueryFixture()
	got, err := st.QueryStrings([]string{
		"?p founded ?c",
		"?c locatedIn cupertino",
	})
	if err != nil {
		t.Fatal(err)
	}
	SortBindings(got, "p")
	if len(got) != 2 || got[0]["p"].Value != "jobs" || got[1]["p"].Value != "wozniak" {
		t.Errorf("QueryStrings = %v", got)
	}
	if _, err := st.QueryStrings([]string{"only two"}); err == nil {
		t.Error("malformed pattern should error")
	}
}

// Property: two-pattern joins agree with a brute-force nested-loop join
// over random stores.
func TestQueryJoinAgreesWithBruteForce(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	rels := []string{"p", "q"}
	rnd := func(seed int64) *Store {
		st := NewStore()
		x := uint64(seed)
		next := func(n int) int {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			return int(x % uint64(n))
		}
		for i := 0; i < 30; i++ {
			st.Add(rdf.T(names[next(4)], rels[next(2)], names[next(4)]))
		}
		return st
	}
	for seed := int64(1); seed <= 25; seed++ {
		st := rnd(seed)
		got := st.Query([]Pattern{
			{S: PVar("x"), P: PIRI("p"), O: PVar("y")},
			{S: PVar("y"), P: PIRI("q"), O: PVar("z")},
		})
		// Brute force.
		var want int
		for _, t1 := range st.Match(rdf.Triple{P: rdf.NewIRI("p")}) {
			for _, t2 := range st.Match(rdf.Triple{P: rdf.NewIRI("q")}) {
				if t1.O == t2.S {
					want++
				}
			}
		}
		if len(got) != want {
			t.Fatalf("seed %d: join returned %d rows, brute force %d", seed, len(got), want)
		}
		// Every binding satisfies both patterns.
		for _, b := range got {
			if !st.Has(rdf.Triple{S: b["x"], P: rdf.NewIRI("p"), O: b["y"]}) ||
				!st.Has(rdf.Triple{S: b["y"], P: rdf.NewIRI("q"), O: b["z"]}) {
				t.Fatalf("seed %d: invalid binding %v", seed, b)
			}
		}
	}
}

func TestQueryStringsWithLiteralSpaces(t *testing.T) {
	st := NewStore()
	st.Add(rdf.TL("jobs", "label", "Steve Jobs"))
	got, err := st.QueryStrings([]string{`?x label "Steve Jobs"`})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0]["x"].Value != "jobs" {
		t.Errorf("literal-with-space query = %v", got)
	}
}

func TestParsePatternTermQuoteErrors(t *testing.T) {
	for _, in := range []string{`"`, `"abc`, `abc"`, `"unterminated literal`} {
		if _, err := ParsePatternTerm(in); err == nil {
			t.Errorf("ParsePatternTerm(%q) should fail, parsed as non-error", in)
		}
	}
	// A well-formed literal still parses.
	got, err := ParsePatternTerm(`"ok"`)
	if err != nil || !got.Const.IsLiteral() || got.Const.Value != "ok" {
		t.Errorf(`ParsePatternTerm("ok") = %v, %v`, got, err)
	}
}

func TestParsePatternUnclosedQuoteToEOL(t *testing.T) {
	// rejoinQuoted swallows to end of line; the unterminated literal must
	// surface as a parse error, not silently become an IRI.
	if _, err := ParsePattern(`?x label "steve jobs`); err == nil {
		t.Error("unclosed quote running to end of line should be a parse error")
	}
	if _, err := ParsePattern(`?x " ?y`); err == nil {
		t.Error("bare quote term should be a parse error")
	}
}

func TestQueryRepeatedVariableAcrossPatterns(t *testing.T) {
	st := NewStore()
	st.Add(rdf.T("a", "p", "b"))
	st.Add(rdf.T("b", "q", "a")) // cycle a -p-> b -q-> a
	st.Add(rdf.T("b", "q", "c"))
	st.Add(rdf.T("c", "p", "d"))
	got := st.Query([]Pattern{
		{S: PVar("x"), P: PIRI("p"), O: PVar("y")},
		{S: PVar("y"), P: PIRI("q"), O: PVar("x")}, // both vars repeat
	})
	if len(got) != 1 || got[0]["x"].Value != "a" || got[0]["y"].Value != "b" {
		t.Errorf("cyclic join = %v", got)
	}
}

func TestQueryFuncLimit(t *testing.T) {
	st := buildQueryFixture()
	var rows []Binding
	err := st.QueryFunc(context.Background(), []Pattern{
		{S: PVar("x"), P: PIRI("founded"), O: PVar("c")},
	}, 2, func(b Binding) bool {
		rows = append(rows, b)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("limit 2 emitted %d rows", len(rows))
	}
	// fn returning false stops the stream before the limit.
	n := 0
	if err := st.QueryFunc(context.Background(), []Pattern{
		{S: PVar("x"), P: PIRI("founded"), O: PVar("c")},
	}, 0, func(Binding) bool {
		n++
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("fn-stop emitted %d rows, want 1", n)
	}
}

func TestQueryFuncCancellation(t *testing.T) {
	st := buildQueryFixture()
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	err := st.QueryFunc(ctx, []Pattern{
		{S: PVar("x"), P: PVar("r"), O: PVar("y")},
	}, 0, func(Binding) bool {
		n++
		cancel() // cancel mid-stream after the first row
		return true
	})
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if n == 0 || n == st.Len() {
		t.Errorf("cancellation emitted %d of %d rows, want a strict prefix", n, st.Len())
	}
	// An already-cancelled context emits nothing.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	n = 0
	if err := st.QueryFunc(ctx2, []Pattern{
		{S: PVar("x"), P: PVar("r"), O: PVar("y")},
	}, 0, func(Binding) bool { n++; return true }); err != context.Canceled {
		t.Errorf("pre-cancelled err = %v", err)
	}
	if n != 0 {
		t.Errorf("pre-cancelled context emitted %d rows", n)
	}
}

// A context that expires only after the traversal already visited every
// match must not discard the fully-computed result: callers (qcache,
// kbserve) would otherwise drop an answer they have in hand. Cancelling
// from within the callback of the final row makes the race deterministic.
func TestQueryFuncCompletionBeatsCancellation(t *testing.T) {
	st := NewStore()
	st.Add(rdf.T("jobs", "founded", "apple"))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	err := st.QueryFunc(ctx, []Pattern{
		{S: PVar("x"), P: PIRI("founded"), O: PVar("c")},
	}, 0, func(Binding) bool {
		n++
		cancel() // fires "just after" the last row: traversal still completes
		return true
	})
	if err != nil {
		t.Errorf("err = %v, want nil for a traversal that completed before cancellation", err)
	}
	if n != 1 {
		t.Errorf("emitted %d rows, want 1", n)
	}
}

func TestQueryFactRemovedBetweenJoinPatterns(t *testing.T) {
	// A fact removed after the first pattern matched it must not survive
	// into rows produced by later patterns of the same join.
	st := NewStore()
	st.Add(rdf.T("jobs", "founded", "apple"))
	st.Add(rdf.T("gates", "founded", "microsoft"))
	st.Add(rdf.T("apple", "locatedIn", "cupertino"))
	st.Add(rdf.T("microsoft", "locatedIn", "redmond"))
	var rows []Binding
	err := st.QueryFunc(context.Background(), []Pattern{
		{S: PVar("p"), P: PIRI("founded"), O: PVar("c")},
		{S: PVar("c"), P: PIRI("locatedIn"), O: PVar("city")},
	}, 0, func(b Binding) bool {
		rows = append(rows, b)
		// After the first emitted row, retract the other branch's
		// location fact so its join partner disappears mid-query.
		st.Remove(rdf.T("apple", "locatedIn", "cupertino"))
		st.Remove(rdf.T("microsoft", "locatedIn", "redmond"))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Errorf("got %d rows, want 1 (second branch's fact was removed mid-join): %v", len(rows), rows)
	}
}

func TestQueryLiteralWithQuotesAndSpaces(t *testing.T) {
	st := NewStore()
	st.Add(rdf.TL("jobs", "label", "Steve Jobs"))
	st.Add(rdf.TL("widget", "label", `the "best" widget`))
	got := st.Query([]Pattern{{S: PVar("x"), P: PIRI("label"), O: PTerm(rdf.NewLiteral(`the "best" widget`))}})
	if len(got) != 1 || got[0]["x"].Value != "widget" {
		t.Errorf("literal-with-quotes query = %v", got)
	}
}

func TestPatternEstimate(t *testing.T) {
	st := buildQueryFixture()
	founded := Pattern{S: PVar("x"), P: PIRI("founded"), O: PVar("c")}
	if got := st.PatternEstimate(founded, nil); got != 4 {
		t.Errorf("estimate(?x founded ?c) = %d, want 4", got)
	}
	bound := Binding{"c": rdf.NewIRI("apple")}
	if got := st.PatternEstimate(founded, bound); got != 2 {
		t.Errorf("estimate(?x founded apple) = %d, want 2", got)
	}
	unknown := Pattern{S: PVar("x"), P: PIRI("neverSeen"), O: PVar("c")}
	if got := st.PatternEstimate(unknown, nil); got != 0 {
		t.Errorf("estimate of unknown predicate = %d, want 0", got)
	}
}

// The planner must place a zero-cardinality pattern first so impossible
// conjunctions short-circuit without enumerating the other patterns.
func TestQueryImpossiblePatternShortCircuits(t *testing.T) {
	st := buildQueryFixture()
	got := st.Query([]Pattern{
		{S: PVar("x"), P: PVar("r"), O: PVar("y")}, // would enumerate everything
		{S: PVar("x"), P: PIRI("neverSeen"), O: PVar("z")},
	})
	if got != nil {
		t.Errorf("impossible conjunction returned %v", got)
	}
}
