package core

import (
	"testing"

	"kbharvest/internal/rdf"
)

func buildQueryFixture() *Store {
	st := NewStore()
	st.Add(rdf.T("jobs", "founded", "apple"))
	st.Add(rdf.T("jobs", "founded", "next"))
	st.Add(rdf.T("wozniak", "founded", "apple"))
	st.Add(rdf.T("gates", "founded", "microsoft"))
	st.Add(rdf.T("apple", "locatedIn", "cupertino"))
	st.Add(rdf.T("microsoft", "locatedIn", "redmond"))
	st.Add(rdf.T("next", "locatedIn", "redwood"))
	st.AddType("jobs", "person")
	st.AddType("wozniak", "person")
	st.AddType("gates", "person")
	return st
}

func TestQuerySinglePattern(t *testing.T) {
	st := buildQueryFixture()
	got := st.Query([]Pattern{{S: PVar("x"), P: PIRI("founded"), O: PIRI("apple")}})
	if len(got) != 2 {
		t.Fatalf("got %d bindings, want 2", len(got))
	}
	SortBindings(got, "x")
	if got[0]["x"].Value != "jobs" || got[1]["x"].Value != "wozniak" {
		t.Errorf("bindings = %v", got)
	}
}

func TestQueryJoin(t *testing.T) {
	st := buildQueryFixture()
	// Who founded a company located in redmond?
	got := st.Query([]Pattern{
		{S: PVar("p"), P: PIRI("founded"), O: PVar("c")},
		{S: PVar("c"), P: PIRI("locatedIn"), O: PIRI("redmond")},
	})
	if len(got) != 1 {
		t.Fatalf("got %d bindings, want 1: %v", len(got), got)
	}
	if got[0]["p"].Value != "gates" || got[0]["c"].Value != "microsoft" {
		t.Errorf("binding = %v", got[0])
	}
}

func TestQueryThreeWayJoin(t *testing.T) {
	st := buildQueryFixture()
	// People and the cities of companies they founded.
	got := st.Query([]Pattern{
		{S: PVar("p"), P: PIRI(rdf.RDFType), O: PIRI("person")},
		{S: PVar("p"), P: PIRI("founded"), O: PVar("c")},
		{S: PVar("c"), P: PIRI("locatedIn"), O: PVar("city")},
	})
	if len(got) != 4 {
		t.Fatalf("got %d rows, want 4: %v", len(got), got)
	}
	SortBindings(got, "p", "city")
	if got[0]["p"].Value != "gates" || got[0]["city"].Value != "redmond" {
		t.Errorf("first row = %v", got[0])
	}
}

func TestQueryNoResults(t *testing.T) {
	st := buildQueryFixture()
	got := st.Query([]Pattern{
		{S: PVar("x"), P: PIRI("founded"), O: PIRI("nonexistent")},
	})
	if got != nil {
		t.Errorf("want nil, got %v", got)
	}
	// Join that dies at second pattern.
	got = st.Query([]Pattern{
		{S: PVar("x"), P: PIRI("founded"), O: PVar("c")},
		{S: PVar("c"), P: PIRI("locatedIn"), O: PIRI("nowhere")},
	})
	if got != nil {
		t.Errorf("want nil, got %v", got)
	}
}

func TestQueryRepeatedVariable(t *testing.T) {
	st := NewStore()
	st.Add(rdf.T("a", "knows", "a")) // self loop
	st.Add(rdf.T("a", "knows", "b"))
	got := st.Query([]Pattern{{S: PVar("x"), P: PIRI("knows"), O: PVar("x")}})
	if len(got) != 1 || got[0]["x"].Value != "a" {
		t.Errorf("self-loop query = %v", got)
	}
}

func TestQueryVariablePredicate(t *testing.T) {
	st := buildQueryFixture()
	got := st.Query([]Pattern{{S: PIRI("jobs"), P: PVar("r"), O: PVar("y")}})
	if len(got) != 3 {
		t.Errorf("got %d rows, want 3", len(got))
	}
}

func TestQueryEmptyPatternList(t *testing.T) {
	st := buildQueryFixture()
	got := st.Query(nil)
	if len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("empty query should yield one empty binding, got %v", got)
	}
}

func TestParsePatternTerm(t *testing.T) {
	cases := []struct {
		in      string
		wantVar Var
		wantIRI string
		wantLit string
		wantErr bool
	}{
		{"?x", "x", "", "", false},
		{"<kb:founded>", "", "kb:founded", "", false},
		{"kb:founded", "", "kb:founded", "", false},
		{`"Steve Jobs"`, "", "", "Steve Jobs", false},
		{"?", "", "", "", true},
		{"", "", "", "", true},
	}
	for _, c := range cases {
		got, err := ParsePatternTerm(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParsePatternTerm(%q) should fail", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePatternTerm(%q): %v", c.in, err)
			continue
		}
		switch {
		case c.wantVar != "":
			if got.Var != c.wantVar {
				t.Errorf("ParsePatternTerm(%q).Var = %q", c.in, got.Var)
			}
		case c.wantIRI != "":
			if !got.Const.IsIRI() || got.Const.Value != c.wantIRI {
				t.Errorf("ParsePatternTerm(%q) = %v", c.in, got.Const)
			}
		case c.wantLit != "":
			if !got.Const.IsLiteral() || got.Const.Value != c.wantLit {
				t.Errorf("ParsePatternTerm(%q) = %v", c.in, got.Const)
			}
		}
	}
}

func TestQueryStrings(t *testing.T) {
	st := buildQueryFixture()
	got, err := st.QueryStrings([]string{
		"?p founded ?c",
		"?c locatedIn cupertino",
	})
	if err != nil {
		t.Fatal(err)
	}
	SortBindings(got, "p")
	if len(got) != 2 || got[0]["p"].Value != "jobs" || got[1]["p"].Value != "wozniak" {
		t.Errorf("QueryStrings = %v", got)
	}
	if _, err := st.QueryStrings([]string{"only two"}); err == nil {
		t.Error("malformed pattern should error")
	}
}

// Property: two-pattern joins agree with a brute-force nested-loop join
// over random stores.
func TestQueryJoinAgreesWithBruteForce(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	rels := []string{"p", "q"}
	rnd := func(seed int64) *Store {
		st := NewStore()
		x := uint64(seed)
		next := func(n int) int {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			return int(x % uint64(n))
		}
		for i := 0; i < 30; i++ {
			st.Add(rdf.T(names[next(4)], rels[next(2)], names[next(4)]))
		}
		return st
	}
	for seed := int64(1); seed <= 25; seed++ {
		st := rnd(seed)
		got := st.Query([]Pattern{
			{S: PVar("x"), P: PIRI("p"), O: PVar("y")},
			{S: PVar("y"), P: PIRI("q"), O: PVar("z")},
		})
		// Brute force.
		var want int
		for _, t1 := range st.Match(rdf.Triple{P: rdf.NewIRI("p")}) {
			for _, t2 := range st.Match(rdf.Triple{P: rdf.NewIRI("q")}) {
				if t1.O == t2.S {
					want++
				}
			}
		}
		if len(got) != want {
			t.Fatalf("seed %d: join returned %d rows, brute force %d", seed, len(got), want)
		}
		// Every binding satisfies both patterns.
		for _, b := range got {
			if !st.Has(rdf.Triple{S: b["x"], P: rdf.NewIRI("p"), O: b["y"]}) ||
				!st.Has(rdf.Triple{S: b["y"], P: rdf.NewIRI("q"), O: b["z"]}) {
				t.Fatalf("seed %d: invalid binding %v", seed, b)
			}
		}
	}
}

func TestQueryStringsWithLiteralSpaces(t *testing.T) {
	st := NewStore()
	st.Add(rdf.TL("jobs", "label", "Steve Jobs"))
	got, err := st.QueryStrings([]string{`?x label "Steve Jobs"`})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0]["x"].Value != "jobs" {
		t.Errorf("literal-with-space query = %v", got)
	}
}
