// Package core implements the knowledge base itself: a dictionary-encoded
// in-memory triple store built for massively parallel harvesting, with
// per-fact metadata (confidence, provenance, temporal scope), taxonomy
// operations over rdf:type / rdfs:subClassOf, a small conjunctive
// (SPARQL-BGP-style) query engine, and snapshot persistence.
//
// This is the substrate every other module of the reproduction reads from
// and writes to — the role that the RDF stores behind DBpedia, YAGO, and
// Freebase play in the tutorial (§2). Because web-scale KB construction
// only works when the store absorbs many concurrent extraction workers,
// the store is layered for concurrency rather than guarded by one lock:
//
//   - dictionary shards (dict.go): term interning is hash-sharded over 16
//     independently locked shards; IDs encode their shard in the low bits.
//   - index stripes (index.go): each index permutation (spo/pos/osp) is
//     split into 16 stripes keyed by leading ID, so writers with
//     different leading terms never contend and readers only hold a
//     stripe lock while copying fact IDs out.
//   - fact log (factlog.go): the dense FactID-ordered triple log with the
//     exact-match dedup index and per-fact metadata, with short critical
//     sections.
//
// No operation holds two layer locks at once, so the store is deadlock
// free by construction. The batch write path — AddBatch / AddBatchMeta —
// interns, logs, and indexes a whole batch with at most one lock
// acquisition per shard or stripe, and is the preferred ingestion API for
// extraction pipelines; per-triple Add remains for incremental use.
// Pattern enumeration is sorted by FactID, so batch and sequential
// insertion of the same triples answer every query identically.
package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"kbharvest/internal/rdf"
)

// ID is a dictionary-encoded term identifier. The low bits carry the
// dictionary shard, the rest the shard-local index; 0 is reserved as
// "no term" / wildcard.
type ID uint32

// FactID identifies one asserted triple inside a Store. FactIDs are dense
// and start at 0; they stay stable for the lifetime of the store (facts
// are tombstoned, not compacted, on removal).
type FactID uint32

// NoFact is returned by lookups that find no fact.
const NoFact = FactID(^uint32(0))

type encTriple struct {
	s, p, o ID
}

// Store is an in-memory knowledge base. It is safe for concurrent use:
// point operations (Add, Remove, FactOf, ...) are atomic, and a fact is
// visible to every read path once the call that asserted it returns.
//
// The zero value is not usable; call NewStore.
type Store struct {
	dict *termDict
	log  *factLog

	// Three permutations cover all bound/unbound pattern combinations:
	// spo answers (s ? ?) and (s p ?); pos answers (? p ?) and (? p o);
	// osp answers (? ? o) and (s ? o).
	spo permIndex
	pos permIndex
	osp permIndex

	// writeGen counts every mutation (insert or tombstone). It backs
	// PatternGen for patterns no index stripe can vouch for (full scans,
	// patterns naming terms the dictionary has never seen).
	writeGen atomic.Uint64
}

// NewStore returns an empty knowledge base.
func NewStore() *Store {
	st := &Store{
		dict: newTermDict(),
		log:  newFactLog(),
	}
	st.spo.init()
	st.pos.init()
	st.osp.init()
	return st
}

// lookup returns the ID for a term, or 0 if the term is unknown or a
// wildcard (zero Term).
func (st *Store) lookup(t rdf.Term) (ID, bool) {
	if t.IsZero() {
		return 0, true // wildcard
	}
	return st.dict.lookup(t)
}

// Term returns the term for an ID. The zero or an unknown ID yields the
// zero Term.
func (st *Store) Term(id ID) rdf.Term {
	return st.dict.term(id)
}

// TermID returns the dictionary ID for a term, or false if it has never
// been seen by this store.
func (st *Store) TermID(t rdf.Term) (ID, bool) {
	return st.dict.lookup(t)
}

// Add asserts a triple and returns its FactID. Adding an existing live
// triple is idempotent and returns the original FactID.
func (st *Store) Add(t rdf.Triple) FactID {
	et := encTriple{st.dict.intern(t.S), st.dict.intern(t.P), st.dict.intern(t.O)}
	id, isNew := st.log.add(et)
	if isNew {
		st.spo.insert(et.s, et.p, id)
		st.pos.insert(et.p, et.o, id)
		st.osp.insert(et.o, et.s, id)
		st.writeGen.Add(1)
	}
	return id
}

// AddAll asserts every triple, returning the fact IDs in order. It is
// equivalent to, and implemented as, AddBatch.
func (st *Store) AddAll(ts []rdf.Triple) []FactID {
	return st.AddBatch(ts)
}

// AddBatch asserts every triple through the batch write path: terms are
// interned per dictionary shard, the fact log is appended under a single
// lock acquisition (FactIDs assigned in input order), and index insertions
// are grouped per stripe. Duplicate triples — within the batch or against
// the store — reuse their existing FactID, exactly like repeated Add
// calls.
func (st *Store) AddBatch(ts []rdf.Triple) []FactID {
	return st.addBatch(ts, nil)
}

// AddBatchMeta is AddBatch plus per-fact metadata: infos[i] is attached to
// ts[i] in the same fact-log critical section (overwriting existing
// metadata on duplicates, like SetInfo). infos must have the same length
// as ts.
func (st *Store) AddBatchMeta(ts []rdf.Triple, infos []FactInfo) []FactID {
	if len(infos) != len(ts) {
		panic(fmt.Sprintf("core: AddBatchMeta: %d triples but %d infos", len(ts), len(infos)))
	}
	ptrs := make([]*FactInfo, len(infos))
	for i := range infos {
		ptrs[i] = &infos[i]
	}
	return st.addBatch(ts, ptrs)
}

func (st *Store) addBatch(ts []rdf.Triple, infos []*FactInfo) []FactID {
	n := len(ts)
	if n == 0 {
		return nil
	}
	// Layer 1: intern all terms, grouped by dictionary shard.
	terms := make([]rdf.Term, 3*n)
	for i, t := range ts {
		terms[3*i], terms[3*i+1], terms[3*i+2] = t.S, t.P, t.O
	}
	termIDs := make([]ID, 3*n)
	st.dict.internAll(terms, termIDs)
	ets := make([]encTriple, n)
	for i := range ts {
		ets[i] = encTriple{termIDs[3*i], termIDs[3*i+1], termIDs[3*i+2]}
	}
	// Layer 3: append to the fact log in input order, one lock.
	ids := make([]FactID, n)
	fresh := make([]bool, n)
	st.log.addBatch(ets, ids, fresh, infos)
	// Layer 2: index the new facts, grouped by stripe per permutation.
	entries := make([]idxEntry, 0, n)
	for i := range ets {
		if fresh[i] {
			entries = append(entries, idxEntry{ets[i].s, ets[i].p, ids[i]})
		}
	}
	st.spo.insertBatch(entries)
	for j, i := 0, 0; i < n; i++ {
		if fresh[i] {
			entries[j] = idxEntry{ets[i].p, ets[i].o, ids[i]}
			j++
		}
	}
	st.pos.insertBatch(entries)
	for j, i := 0, 0; i < n; i++ {
		if fresh[i] {
			entries[j] = idxEntry{ets[i].o, ets[i].s, ids[i]}
			j++
		}
	}
	st.osp.insertBatch(entries)
	if len(entries) > 0 {
		st.writeGen.Add(1)
	}
	return ids
}

// Remove retracts a triple. It reports whether the triple was present.
// The fact's ID is tombstoned; indexes drop it lazily during queries,
// compacting a posting list once most of it resolves dead.
func (st *Store) Remove(t rdf.Triple) bool {
	s, ok1 := st.dict.lookup(t.S)
	p, ok2 := st.dict.lookup(t.P)
	o, ok3 := st.dict.lookup(t.O)
	if !ok1 || !ok2 || !ok3 {
		return false
	}
	et := encTriple{s, p, o}
	if !st.log.remove(et) {
		return false
	}
	st.bumpTombstoneGens(et)
	return true
}

// RemoveFact retracts the fact with the given ID, reporting whether it was
// live.
func (st *Store) RemoveFact(id FactID) bool {
	et, ok := st.log.removeFact(id)
	if !ok {
		return false
	}
	st.bumpTombstoneGens(et)
	return true
}

// bumpTombstoneGens records that a tombstone changed the matches of every
// pattern any of the three permutations could answer for this triple.
func (st *Store) bumpTombstoneGens(et encTriple) {
	st.spo.bumpGen(et.s)
	st.pos.bumpGen(et.p)
	st.osp.bumpGen(et.o)
	st.writeGen.Add(1)
}

// WriteGen returns the store-wide write generation: a counter that
// advances on every insert and every tombstone. A pattern result computed
// at generation g is still valid iff the generations guarding the pattern
// (PatternGen) are unchanged.
func (st *Store) WriteGen() uint64 {
	return st.writeGen.Load()
}

// genFallbackTag marks a PatternGen value drawn from the store-wide
// WriteGen rather than an index stripe. Stripe generations and the write
// generation are unrelated counters, so without the tag a pattern that
// migrates between the two sources (a term interned by a later write)
// could coincidentally produce equal values and validate a stale cached
// result. Both counters count writes and cannot approach 2^63, so the top
// bit is free to keep the two value domains disjoint.
const genFallbackTag = uint64(1) << 63

// PatternGen returns the write generation guarding a match pattern
// (zero-valued terms are wildcards): the generation of the index stripe
// MatchFunc would read the pattern from. Every write that can change the
// pattern's matches bumps this generation — an insert bumps the stripes of
// all three of its leading terms, and so does a tombstone — so a cached
// result for the pattern is valid as long as one atomic load returns the
// generation observed before it was computed. Patterns that resolve to no
// single stripe (full scans, patterns naming unknown terms) fall back to
// the store-wide WriteGen, tagged with genFallbackTag so the fallback can
// never compare equal to a stripe generation once a later write interns
// the pattern's terms; tagged values invalidate on any write.
func (st *Store) PatternGen(pattern rdf.Triple) uint64 {
	s, ok := st.lookup(pattern.S)
	if !ok {
		return st.writeGen.Load() | genFallbackTag
	}
	p, ok := st.lookup(pattern.P)
	if !ok {
		return st.writeGen.Load() | genFallbackTag
	}
	o, ok := st.lookup(pattern.O)
	if !ok {
		return st.writeGen.Load() | genFallbackTag
	}
	switch {
	case s != 0:
		return st.spo.genOf(s)
	case p != 0:
		return st.pos.genOf(p)
	case o != 0:
		return st.osp.genOf(o)
	default:
		return st.writeGen.Load() | genFallbackTag
	}
}

// EstimateMatches returns a cheap upper bound on the number of live facts
// matching the pattern, read from posting-list sizes without touching the
// fact log (tombstones not yet compacted away are counted). The query
// planner orders joins by these estimates; they are also useful for
// admission decisions in serving layers.
func (st *Store) EstimateMatches(pattern rdf.Triple) int {
	s, ok := st.lookup(pattern.S)
	if !ok {
		return 0
	}
	p, ok := st.lookup(pattern.P)
	if !ok {
		return 0
	}
	o, ok := st.lookup(pattern.O)
	if !ok {
		return 0
	}
	return st.estimateEnc(s, p, o)
}

// estimateEnc is EstimateMatches over encoded IDs (0 = wildcard).
func (st *Store) estimateEnc(s, p, o ID) int {
	switch {
	case s != 0 && p != 0 && o != 0:
		if _, ok := st.log.factOf(encTriple{s, p, o}); ok {
			return 1
		}
		return 0
	case s != 0 && p != 0:
		return st.spo.pairCount(s, p)
	case s != 0 && o != 0:
		return st.osp.pairCount(o, s)
	case s != 0:
		return st.spo.leadCount(s)
	case p != 0 && o != 0:
		return st.pos.pairCount(p, o)
	case p != 0:
		return st.pos.leadCount(p)
	case o != 0:
		return st.osp.leadCount(o)
	default:
		return st.log.len()
	}
}

// Has reports whether the triple is asserted.
func (st *Store) Has(t rdf.Triple) bool {
	_, ok := st.FactOf(t)
	return ok
}

// FactOf returns the FactID of an asserted triple.
func (st *Store) FactOf(t rdf.Triple) (FactID, bool) {
	s, ok1 := st.dict.lookup(t.S)
	p, ok2 := st.dict.lookup(t.P)
	o, ok3 := st.dict.lookup(t.O)
	if !ok1 || !ok2 || !ok3 {
		return NoFact, false
	}
	return st.log.factOf(encTriple{s, p, o})
}

// Fact returns the triple for a FactID; ok is false for tombstoned or
// out-of-range IDs.
func (st *Store) Fact(id FactID) (rdf.Triple, bool) {
	et, ok := st.log.get(id)
	if !ok {
		return rdf.Triple{}, false
	}
	return st.decode(et), true
}

func (st *Store) decode(et encTriple) rdf.Triple {
	return rdf.Triple{S: st.dict.term(et.s), P: st.dict.term(et.p), O: st.dict.term(et.o)}
}

// Len returns the number of live facts.
func (st *Store) Len() int {
	return st.log.len()
}

// TermCount returns the number of distinct terms in the dictionary.
func (st *Store) TermCount() int {
	return st.dict.count()
}

// Match returns every live fact matching the pattern. Zero-valued terms
// (rdf.Term{}) act as wildcards. Results are in fact-insertion order.
func (st *Store) Match(pattern rdf.Triple) []rdf.Triple {
	var out []rdf.Triple
	st.MatchFunc(pattern, func(_ FactID, t rdf.Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// MatchFacts is Match but returns fact IDs.
func (st *Store) MatchFacts(pattern rdf.Triple) []FactID {
	var out []FactID
	st.MatchFunc(pattern, func(id FactID, _ rdf.Triple) bool {
		out = append(out, id)
		return true
	})
	return out
}

// MatchFunc streams every live fact matching the pattern to fn in
// fact-insertion order, stopping early if fn returns false. fn runs with
// no store locks held, so it may freely call back into the store.
func (st *Store) MatchFunc(pattern rdf.Triple, fn func(FactID, rdf.Triple) bool) {
	s, ok := st.lookup(pattern.S)
	if !ok {
		return
	}
	p, ok := st.lookup(pattern.P)
	if !ok {
		return
	}
	o, ok := st.lookup(pattern.O)
	if !ok {
		return
	}
	ids, ets := st.matchEnc(s, p, o)
	for i, id := range ids {
		if !fn(id, st.decode(ets[i])) {
			return
		}
	}
}

// matchEnc gathers the live facts matching the encoded pattern (0 =
// wildcard), sorted by FactID. Candidate IDs are collected from the
// narrowest index, then filtered against tombstones in one fact-log pass.
// When more than half of a large copied-out posting resolves dead, the
// posting is compacted in place so churned stripes do not grow — and slow
// down — without bound.
func (st *Store) matchEnc(s, p, o ID) ([]FactID, []encTriple) {
	var cand []FactID
	var compact func(dead map[FactID]bool)
	switch {
	case s != 0 && p != 0 && o != 0:
		id, ok := st.log.factOf(encTriple{s, p, o})
		if !ok {
			return nil, nil
		}
		et, ok := st.log.get(id)
		if !ok {
			return nil, nil
		}
		return []FactID{id}, []encTriple{et}
	case s != 0 && p != 0:
		cand = st.spo.pair(s, p, nil)
		compact = func(dead map[FactID]bool) { st.spo.compactPair(s, p, dead) }
	case s != 0 && o != 0:
		cand = st.osp.pair(o, s, nil)
		compact = func(dead map[FactID]bool) { st.osp.compactPair(o, s, dead) }
	case s != 0:
		cand = st.spo.lead(s, nil)
		compact = func(dead map[FactID]bool) { st.spo.compactLead(s, dead) }
	case p != 0 && o != 0:
		cand = st.pos.pair(p, o, nil)
		compact = func(dead map[FactID]bool) { st.pos.compactPair(p, o, dead) }
	case p != 0:
		cand = st.pos.lead(p, nil)
		compact = func(dead map[FactID]bool) { st.pos.compactLead(p, dead) }
	case o != 0:
		cand = st.osp.lead(o, nil)
		compact = func(dead map[FactID]bool) { st.osp.compactLead(o, dead) }
	default:
		return st.log.scan()
	}
	if len(cand) == 0 {
		return nil, nil
	}
	total := len(cand)
	sort.Slice(cand, func(i, j int) bool { return cand[i] < cand[j] })
	live, ets, dead := st.log.resolve(cand)
	// Tombstone-ratio-triggered compaction: once the majority of a big
	// copied-out posting resolves dead, prune those IDs from the posting.
	// Tombstoned FactIDs never revive (a re-added triple gets a fresh ID),
	// so a dead set computed here stays exact even if writers append to
	// the posting before the compaction takes the stripe lock.
	if len(dead)*2 > total && total >= compactMinPostings {
		deadSet := make(map[FactID]bool, len(dead))
		for _, id := range dead {
			deadSet[id] = true
		}
		compact(deadSet)
	}
	return live, ets
}

// Objects returns the distinct objects of facts (s, p, ?).
func (st *Store) Objects(s, p string) []rdf.Term {
	var out []rdf.Term
	seen := make(map[rdf.Term]bool)
	st.MatchFunc(rdf.Triple{S: rdf.NewIRI(s), P: rdf.NewIRI(p)}, func(_ FactID, t rdf.Triple) bool {
		if !seen[t.O] {
			seen[t.O] = true
			out = append(out, t.O)
		}
		return true
	})
	return out
}

// Subjects returns the distinct subjects of facts (?, p, o) where o is an
// IRI.
func (st *Store) Subjects(p, o string) []rdf.Term {
	var out []rdf.Term
	seen := make(map[rdf.Term]bool)
	st.MatchFunc(rdf.Triple{P: rdf.NewIRI(p), O: rdf.NewIRI(o)}, func(_ FactID, t rdf.Triple) bool {
		if !seen[t.S] {
			seen[t.S] = true
			out = append(out, t.S)
		}
		return true
	})
	return out
}

// Predicates returns the distinct predicates used by live facts, sorted.
func (st *Store) Predicates() []rdf.Term {
	_, ets := st.log.scan()
	seen := make(map[ID]bool)
	var out []rdf.Term
	for _, et := range ets {
		if !seen[et.p] {
			seen[et.p] = true
			out = append(out, st.dict.term(et.p))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// All returns every live triple in fact-insertion order.
func (st *Store) All() []rdf.Triple {
	_, ets := st.log.scan()
	out := make([]rdf.Triple, len(ets))
	for i, et := range ets {
		out[i] = st.decode(et)
	}
	return out
}

// Stats summarizes store contents; useful for the kbbuild tool and the
// scaling experiments.
type Stats struct {
	Facts      int // live facts
	Terms      int // dictionary size
	Predicates int // distinct predicates in use
	Entities   int // distinct IRI subjects
}

// Stats computes summary statistics.
func (st *Store) Stats() Stats {
	_, ets := st.log.scan()
	subjects := make(map[ID]bool)
	preds := make(map[ID]bool)
	for _, et := range ets {
		subjects[et.s] = true
		preds[et.p] = true
	}
	entities := 0
	for s := range subjects {
		if st.dict.term(s).IsIRI() {
			entities++
		}
	}
	return Stats{
		Facts:      len(ets),
		Terms:      st.dict.count(),
		Predicates: len(preds),
		Entities:   entities,
	}
}

// String renders a short summary, e.g. "kb(12345 facts, 6789 terms)".
func (st *Store) String() string {
	return fmt.Sprintf("kb(%d facts, %d terms)", st.Len(), st.TermCount())
}
