// Package core implements the knowledge base itself: a dictionary-encoded
// in-memory triple store with the three index permutations needed to answer
// any triple pattern, per-fact metadata (confidence, provenance, temporal
// scope), taxonomy operations over rdf:type / rdfs:subClassOf, a small
// conjunctive (SPARQL-BGP-style) query engine, and snapshot persistence.
//
// This is the substrate every other module of the reproduction reads from
// and writes to — the role that the RDF stores behind DBpedia, YAGO, and
// Freebase play in the tutorial (§2).
package core

import (
	"fmt"
	"sort"
	"sync"

	"kbharvest/internal/rdf"
)

// ID is a dictionary-encoded term identifier. IDs are dense and start at 1;
// 0 is reserved as "no term" / wildcard.
type ID uint32

// FactID identifies one asserted triple inside a Store. FactIDs are dense
// and start at 0; they stay stable for the lifetime of the store (facts are
// tombstoned, not compacted, on removal).
type FactID uint32

// NoFact is returned by lookups that find no fact.
const NoFact = FactID(^uint32(0))

type encTriple struct {
	s, p, o ID
}

// Store is an in-memory knowledge base. It is safe for concurrent use.
//
// The zero value is not usable; call NewStore.
type Store struct {
	mu sync.RWMutex

	dict  map[rdf.Term]ID
	terms []rdf.Term // ID -> term; index 0 unused

	triples []encTriple // FactID -> triple
	dead    []bool      // FactID -> tombstone
	index   map[encTriple]FactID

	// Three permutations cover all bound/unbound pattern combinations:
	// spo answers (s ? ?) and (s p ?); pos answers (? p ?) and (? p o);
	// osp answers (? ? o) and (s ? o).
	spo map[ID]map[ID][]FactID // s -> p -> facts
	pos map[ID]map[ID][]FactID // p -> o -> facts
	osp map[ID]map[ID][]FactID // o -> s -> facts

	meta map[FactID]*FactInfo

	live int
}

// NewStore returns an empty knowledge base.
func NewStore() *Store {
	return &Store{
		dict:  make(map[rdf.Term]ID),
		terms: make([]rdf.Term, 1),
		index: make(map[encTriple]FactID),
		spo:   make(map[ID]map[ID][]FactID),
		pos:   make(map[ID]map[ID][]FactID),
		osp:   make(map[ID]map[ID][]FactID),
		meta:  make(map[FactID]*FactInfo),
	}
}

// intern returns the ID for a term, allocating one if needed.
// Caller must hold mu for writing.
func (st *Store) intern(t rdf.Term) ID {
	if id, ok := st.dict[t]; ok {
		return id
	}
	id := ID(len(st.terms))
	st.terms = append(st.terms, t)
	st.dict[t] = id
	return id
}

// lookup returns the ID for a term, or 0 if the term is unknown or a
// wildcard (zero Term). Caller must hold mu for reading.
func (st *Store) lookup(t rdf.Term) (ID, bool) {
	if t.IsZero() {
		return 0, true // wildcard
	}
	id, ok := st.dict[t]
	return id, ok
}

// Term returns the term for an ID. The zero ID yields the zero Term.
func (st *Store) Term(id ID) rdf.Term {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if int(id) >= len(st.terms) {
		return rdf.Term{}
	}
	return st.terms[id]
}

// TermID returns the dictionary ID for a term, or false if it has never
// been seen by this store.
func (st *Store) TermID(t rdf.Term) (ID, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	id, ok := st.dict[t]
	return id, ok
}

// Add asserts a triple and returns its FactID. Adding an existing live
// triple is idempotent and returns the original FactID.
func (st *Store) Add(t rdf.Triple) FactID {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.addLocked(t)
}

func (st *Store) addLocked(t rdf.Triple) FactID {
	et := encTriple{st.intern(t.S), st.intern(t.P), st.intern(t.O)}
	if id, ok := st.index[et]; ok && !st.dead[id] {
		return id
	}
	id := FactID(len(st.triples))
	st.triples = append(st.triples, et)
	st.dead = append(st.dead, false)
	st.index[et] = id
	addIdx(st.spo, et.s, et.p, id)
	addIdx(st.pos, et.p, et.o, id)
	addIdx(st.osp, et.o, et.s, id)
	st.live++
	return id
}

// AddAll asserts every triple, returning the fact IDs in order.
func (st *Store) AddAll(ts []rdf.Triple) []FactID {
	st.mu.Lock()
	defer st.mu.Unlock()
	ids := make([]FactID, len(ts))
	for i, t := range ts {
		ids[i] = st.addLocked(t)
	}
	return ids
}

func addIdx(idx map[ID]map[ID][]FactID, a, b ID, f FactID) {
	m, ok := idx[a]
	if !ok {
		m = make(map[ID][]FactID)
		idx[a] = m
	}
	m[b] = append(m[b], f)
}

// Remove retracts a triple. It reports whether the triple was present.
// The fact's ID is tombstoned; indexes drop it lazily during queries.
func (st *Store) Remove(t rdf.Triple) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok1 := st.dict[t.S]
	p, ok2 := st.dict[t.P]
	o, ok3 := st.dict[t.O]
	if !ok1 || !ok2 || !ok3 {
		return false
	}
	id, ok := st.index[encTriple{s, p, o}]
	if !ok || st.dead[id] {
		return false
	}
	st.dead[id] = true
	delete(st.meta, id)
	st.live--
	return true
}

// RemoveFact retracts the fact with the given ID, reporting whether it was
// live.
func (st *Store) RemoveFact(id FactID) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if int(id) >= len(st.triples) || st.dead[id] {
		return false
	}
	st.dead[id] = true
	delete(st.meta, id)
	st.live--
	return true
}

// Has reports whether the triple is asserted.
func (st *Store) Has(t rdf.Triple) bool {
	_, ok := st.FactOf(t)
	return ok
}

// FactOf returns the FactID of an asserted triple.
func (st *Store) FactOf(t rdf.Triple) (FactID, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s, ok1 := st.dict[t.S]
	p, ok2 := st.dict[t.P]
	o, ok3 := st.dict[t.O]
	if !ok1 || !ok2 || !ok3 {
		return NoFact, false
	}
	id, ok := st.index[encTriple{s, p, o}]
	if !ok || st.dead[id] {
		return NoFact, false
	}
	return id, true
}

// Fact returns the triple for a FactID; ok is false for tombstoned or
// out-of-range IDs.
func (st *Store) Fact(id FactID) (rdf.Triple, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if int(id) >= len(st.triples) || st.dead[id] {
		return rdf.Triple{}, false
	}
	return st.decode(st.triples[id]), true
}

func (st *Store) decode(et encTriple) rdf.Triple {
	return rdf.Triple{S: st.terms[et.s], P: st.terms[et.p], O: st.terms[et.o]}
}

// Len returns the number of live facts.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.live
}

// TermCount returns the number of distinct terms in the dictionary.
func (st *Store) TermCount() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.terms) - 1
}

// Match returns every live fact matching the pattern. Zero-valued terms
// (rdf.Term{}) act as wildcards. Results are in fact-insertion order.
func (st *Store) Match(pattern rdf.Triple) []rdf.Triple {
	var out []rdf.Triple
	st.MatchFunc(pattern, func(_ FactID, t rdf.Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// MatchFacts is Match but returns fact IDs.
func (st *Store) MatchFacts(pattern rdf.Triple) []FactID {
	var out []FactID
	st.MatchFunc(pattern, func(id FactID, _ rdf.Triple) bool {
		out = append(out, id)
		return true
	})
	return out
}

// MatchFunc streams every live fact matching the pattern to fn, stopping
// early if fn returns false.
func (st *Store) MatchFunc(pattern rdf.Triple, fn func(FactID, rdf.Triple) bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s, ok := st.lookup(pattern.S)
	if !ok {
		return
	}
	p, ok := st.lookup(pattern.P)
	if !ok {
		return
	}
	o, ok := st.lookup(pattern.O)
	if !ok {
		return
	}
	st.matchIDs(s, p, o, func(id FactID) bool {
		return fn(id, st.decode(st.triples[id]))
	})
}

// matchIDs enumerates live fact IDs matching the encoded pattern (0 =
// wildcard). Caller must hold mu for reading.
func (st *Store) matchIDs(s, p, o ID, fn func(FactID) bool) {
	emit := func(ids []FactID) bool {
		for _, id := range ids {
			if st.dead[id] {
				continue
			}
			if !fn(id) {
				return false
			}
		}
		return true
	}
	switch {
	case s != 0 && p != 0 && o != 0:
		if id, ok := st.index[encTriple{s, p, o}]; ok && !st.dead[id] {
			fn(id)
		}
	case s != 0 && p != 0:
		emit(st.spo[s][p])
	case s != 0 && o != 0:
		// osp answers (s ? o).
		for _, id := range st.osp[o][s] {
			if st.dead[id] {
				continue
			}
			if !fn(id) {
				return
			}
		}
	case s != 0:
		for _, pm := range sortedKeys(st.spo[s]) {
			if !emit(st.spo[s][pm]) {
				return
			}
		}
	case p != 0 && o != 0:
		emit(st.pos[p][o])
	case p != 0:
		for _, om := range sortedKeys(st.pos[p]) {
			if !emit(st.pos[p][om]) {
				return
			}
		}
	case o != 0:
		for _, sm := range sortedKeys(st.osp[o]) {
			if !emit(st.osp[o][sm]) {
				return
			}
		}
	default:
		for id := range st.triples {
			if st.dead[id] {
				continue
			}
			if !fn(FactID(id)) {
				return
			}
		}
	}
}

func sortedKeys(m map[ID][]FactID) []ID {
	keys := make([]ID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Objects returns the distinct objects of facts (s, p, ?).
func (st *Store) Objects(s, p string) []rdf.Term {
	var out []rdf.Term
	seen := make(map[rdf.Term]bool)
	st.MatchFunc(rdf.Triple{S: rdf.NewIRI(s), P: rdf.NewIRI(p)}, func(_ FactID, t rdf.Triple) bool {
		if !seen[t.O] {
			seen[t.O] = true
			out = append(out, t.O)
		}
		return true
	})
	return out
}

// Subjects returns the distinct subjects of facts (?, p, o) where o is an
// IRI.
func (st *Store) Subjects(p, o string) []rdf.Term {
	var out []rdf.Term
	seen := make(map[rdf.Term]bool)
	st.MatchFunc(rdf.Triple{P: rdf.NewIRI(p), O: rdf.NewIRI(o)}, func(_ FactID, t rdf.Triple) bool {
		if !seen[t.S] {
			seen[t.S] = true
			out = append(out, t.S)
		}
		return true
	})
	return out
}

// Predicates returns the distinct predicates used by live facts.
func (st *Store) Predicates() []rdf.Term {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []rdf.Term
	for p, m := range st.pos {
		alive := false
	scan:
		for _, ids := range m {
			for _, id := range ids {
				if !st.dead[id] {
					alive = true
					break scan
				}
			}
		}
		if alive {
			out = append(out, st.terms[p])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// All returns every live triple in fact-insertion order.
func (st *Store) All() []rdf.Triple {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]rdf.Triple, 0, st.live)
	for id, et := range st.triples {
		if !st.dead[id] {
			out = append(out, st.decode(et))
		}
	}
	return out
}

// Stats summarizes store contents; useful for the kbbuild tool and the
// scaling experiments.
type Stats struct {
	Facts      int // live facts
	Terms      int // dictionary size
	Predicates int // distinct predicates in use
	Entities   int // distinct IRI subjects
}

// Stats computes summary statistics.
func (st *Store) Stats() Stats {
	st.mu.RLock()
	subjects := make(map[ID]bool)
	preds := make(map[ID]bool)
	live := 0
	for id, et := range st.triples {
		if st.dead[id] {
			continue
		}
		live++
		if st.terms[et.s].IsIRI() {
			subjects[et.s] = true
		}
		preds[et.p] = true
	}
	terms := len(st.terms) - 1
	st.mu.RUnlock()
	return Stats{Facts: live, Terms: terms, Predicates: len(preds), Entities: len(subjects)}
}

// String renders a short summary, e.g. "kb(12345 facts, 6789 terms)".
func (st *Store) String() string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return fmt.Sprintf("kb(%d facts, %d terms)", st.live, len(st.terms)-1)
}
