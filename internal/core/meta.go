package core

import (
	"fmt"
	"math"
)

// Interval is a closed time interval in integer days since an arbitrary
// epoch (the synthetic world uses day 0 = 1900-01-01). A fact whose
// validity is unbounded on one side uses MinDay / MaxDay.
//
// Temporal scoping of facts — "inferring the timepoints of events and
// timespans during which certain facts hold" (§3) — attaches these
// intervals to facts via FactInfo.
type Interval struct {
	Begin, End int
}

// MinDay and MaxDay bound the representable timeline.
const (
	MinDay = math.MinInt32
	MaxDay = math.MaxInt32
)

// Always is the unbounded interval.
var Always = Interval{Begin: MinDay, End: MaxDay}

// Valid reports whether Begin <= End.
func (iv Interval) Valid() bool { return iv.Begin <= iv.End }

// Contains reports whether day d lies inside the interval.
func (iv Interval) Contains(d int) bool { return iv.Begin <= d && d <= iv.End }

// Overlaps reports whether two intervals share at least one day.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Begin <= o.End && o.Begin <= iv.End
}

// Intersect returns the overlap of two intervals; ok is false if disjoint.
func (iv Interval) Intersect(o Interval) (Interval, bool) {
	r := Interval{Begin: max(iv.Begin, o.Begin), End: min(iv.End, o.End)}
	return r, r.Valid()
}

// Union returns the smallest interval covering both.
func (iv Interval) Union(o Interval) Interval {
	return Interval{Begin: min(iv.Begin, o.Begin), End: max(iv.End, o.End)}
}

// Days returns the length of the interval in days (0 for invalid). The
// unbounded interval saturates at MaxDay.
func (iv Interval) Days() int {
	if !iv.Valid() {
		return 0
	}
	d := int64(iv.End) - int64(iv.Begin) + 1
	if d > int64(MaxDay) {
		return MaxDay
	}
	return int(d)
}

func (iv Interval) String() string {
	fmtDay := func(d int) string {
		switch d {
		case MinDay:
			return "-inf"
		case MaxDay:
			return "+inf"
		}
		return fmt.Sprintf("%d", d)
	}
	return "[" + fmtDay(iv.Begin) + "," + fmtDay(iv.End) + "]"
}

// FactInfo carries the per-fact metadata that distinguishes a curated KB
// from a raw triple set: extraction confidence, provenance, and temporal
// scope (§2/§3 of the tutorial).
type FactInfo struct {
	// Confidence in [0,1]; 1 for ground-truth or manually curated facts.
	Confidence float64
	// Source names where the fact came from (an article ID, an extractor
	// name, an infobox key, ...).
	Source string
	// Time is the validity interval of the fact; Always if unscoped.
	Time Interval
}

// SetInfo attaches metadata to a fact. Unknown or dead fact IDs are
// ignored (reported via the return value). For bulk assertion with
// metadata, prefer AddBatchMeta, which applies the metadata in the same
// fact-log critical section as the insert.
func (st *Store) SetInfo(id FactID, info FactInfo) bool {
	return st.log.setInfo(id, info)
}

// Info returns the metadata of a fact. Facts without explicit metadata
// report confidence 1 and the Always interval.
func (st *Store) Info(id FactID) (FactInfo, bool) {
	return st.log.info(id)
}

// SetConfidence updates only the confidence of a fact, preserving other
// metadata.
func (st *Store) SetConfidence(id FactID, c float64) bool {
	return st.log.update(id, FactInfo{Confidence: c, Time: Always}, func(m *FactInfo) {
		m.Confidence = c
	})
}

// SetTime updates only the temporal scope of a fact.
func (st *Store) SetTime(id FactID, iv Interval) bool {
	return st.log.update(id, FactInfo{Confidence: 1, Time: iv}, func(m *FactInfo) {
		m.Time = iv
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
