package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kbharvest/internal/rdf"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{10, 20}
	if !iv.Valid() || !iv.Contains(10) || !iv.Contains(20) || iv.Contains(21) || iv.Contains(9) {
		t.Error("Contains wrong")
	}
	if iv.Days() != 11 {
		t.Errorf("Days = %d, want 11", iv.Days())
	}
	if (Interval{5, 4}).Valid() {
		t.Error("inverted interval should be invalid")
	}
	if (Interval{5, 4}).Days() != 0 {
		t.Error("invalid interval should have 0 days")
	}
	if Always.Days() != MaxDay {
		t.Error("Always should saturate Days")
	}
}

func TestIntervalOverlapIntersectUnion(t *testing.T) {
	a := Interval{0, 10}
	b := Interval{5, 15}
	c := Interval{11, 20}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b should overlap")
	}
	if a.Overlaps(c) {
		t.Error("a and c should not overlap")
	}
	got, ok := a.Intersect(b)
	if !ok || got != (Interval{5, 10}) {
		t.Errorf("Intersect = %v, %v", got, ok)
	}
	if _, ok := a.Intersect(c); ok {
		t.Error("disjoint Intersect should report false")
	}
	if u := a.Union(c); u != (Interval{0, 20}) {
		t.Errorf("Union = %v", u)
	}
}

func TestIntervalString(t *testing.T) {
	if got := (Interval{1, 2}).String(); got != "[1,2]" {
		t.Errorf("String = %q", got)
	}
	if got := Always.String(); got != "[-inf,+inf]" {
		t.Errorf("Always.String = %q", got)
	}
}

func TestIntervalPropertiesQuick(t *testing.T) {
	gen := func(r *rand.Rand) Interval {
		a, b := r.Intn(1000)-500, r.Intn(1000)-500
		if a > b {
			a, b = b, a
		}
		return Interval{a, b}
	}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		a, b := gen(r), gen(r)
		// Overlap symmetric and consistent with Intersect.
		if a.Overlaps(b) != b.Overlaps(a) {
			t.Fatalf("overlap asymmetric: %v %v", a, b)
		}
		iv, ok := a.Intersect(b)
		if ok != a.Overlaps(b) {
			t.Fatalf("intersect/overlap disagree: %v %v", a, b)
		}
		if ok {
			// Intersection contained in both; union contains both.
			if iv.Begin < a.Begin || iv.End > a.End || iv.Begin < b.Begin || iv.End > b.End {
				t.Fatalf("intersection %v not contained in %v,%v", iv, a, b)
			}
		}
		u := a.Union(b)
		if u.Begin > a.Begin || u.End < a.End || u.Begin > b.Begin || u.End < b.End {
			t.Fatalf("union %v does not contain %v,%v", u, a, b)
		}
	}
	// quick.Check on Contains within intersection.
	f := func(x int16) bool {
		a := Interval{-100, 200}
		b := Interval{0, 300}
		iv, _ := a.Intersect(b)
		d := int(x)
		return iv.Contains(d) == (a.Contains(d) && b.Contains(d))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFactInfoDefaults(t *testing.T) {
	st := NewStore()
	id := st.Add(rdf.T("a", "p", "b"))
	info, ok := st.Info(id)
	if !ok {
		t.Fatal("Info should resolve")
	}
	if info.Confidence != 1 || info.Time != Always {
		t.Errorf("default info = %+v", info)
	}
}

func TestSetInfo(t *testing.T) {
	st := NewStore()
	id := st.Add(rdf.T("a", "p", "b"))
	in := FactInfo{Confidence: 0.75, Source: "patterns:art42", Time: Interval{100, 200}}
	if !st.SetInfo(id, in) {
		t.Fatal("SetInfo should succeed")
	}
	got, _ := st.Info(id)
	if got != in {
		t.Errorf("Info = %+v, want %+v", got, in)
	}
	if st.SetInfo(FactID(999), in) {
		t.Error("SetInfo on bad id should fail")
	}
	// Zero interval is normalized to Always.
	st.SetInfo(id, FactInfo{Confidence: 0.5})
	got, _ = st.Info(id)
	if got.Time != Always {
		t.Errorf("zero interval should normalize to Always, got %v", got.Time)
	}
}

func TestSetConfidenceAndTime(t *testing.T) {
	st := NewStore()
	id := st.Add(rdf.T("a", "p", "b"))
	if !st.SetConfidence(id, 0.4) {
		t.Fatal("SetConfidence failed")
	}
	got, _ := st.Info(id)
	if got.Confidence != 0.4 || got.Time != Always {
		t.Errorf("after SetConfidence: %+v", got)
	}
	if !st.SetTime(id, Interval{1, 2}) {
		t.Fatal("SetTime failed")
	}
	got, _ = st.Info(id)
	if got.Confidence != 0.4 || got.Time != (Interval{1, 2}) {
		t.Errorf("after SetTime: %+v", got)
	}
	// Set time first on a fresh fact.
	id2 := st.Add(rdf.T("a", "p", "c"))
	st.SetTime(id2, Interval{3, 4})
	got, _ = st.Info(id2)
	if got.Confidence != 1 {
		t.Errorf("SetTime should preserve default confidence, got %+v", got)
	}
	if st.SetConfidence(FactID(999), 0.1) || st.SetTime(FactID(999), Always) {
		t.Error("bad ids should fail")
	}
}

func TestInfoGoneAfterRemove(t *testing.T) {
	st := NewStore()
	tr := rdf.T("a", "p", "b")
	id := st.Add(tr)
	st.SetConfidence(id, 0.3)
	st.Remove(tr)
	if _, ok := st.Info(id); ok {
		t.Error("Info of removed fact should fail")
	}
}
