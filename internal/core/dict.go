package core

import (
	"sync"

	"kbharvest/internal/rdf"
)

// The term dictionary layer: hash-sharded, lock-striped interning of
// rdf.Term values to dense per-shard IDs. Workers interning terms during
// parallel harvesting contend only on the shard their term hashes to,
// never on one global mutex.
//
// ID layout: the shard index lives in the low dictShardBits bits, the
// shard-local index (starting at 1) in the bits above. ID 0 is therefore
// never allocated and stays reserved as "no term" / wildcard.

const (
	dictShardBits = 4
	dictShards    = 1 << dictShardBits // 16
	dictShardMask = dictShards - 1
)

type dictShard struct {
	mu    sync.RWMutex
	ids   map[rdf.Term]ID
	terms []rdf.Term // local index -> term; index 0 unused
}

// termDict is the sharded dictionary. Each shard is independently locked;
// no operation ever holds more than one shard lock at a time.
type termDict struct {
	shards [dictShards]dictShard
}

func newTermDict() *termDict {
	d := &termDict{}
	for i := range d.shards {
		d.shards[i].ids = make(map[rdf.Term]ID)
		d.shards[i].terms = make([]rdf.Term, 1)
	}
	return d
}

// termShard hashes a term to its shard with FNV-1a over all fields.
func termShard(t rdf.Term) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	h = (h ^ uint32(t.Kind)) * prime
	for i := 0; i < len(t.Value); i++ {
		h = (h ^ uint32(t.Value[i])) * prime
	}
	h = (h ^ 0xff) * prime // field separator
	for i := 0; i < len(t.Lang); i++ {
		h = (h ^ uint32(t.Lang[i])) * prime
	}
	h = (h ^ 0xff) * prime
	for i := 0; i < len(t.Datatype); i++ {
		h = (h ^ uint32(t.Datatype[i])) * prime
	}
	// Fold the high bits in so the shard index uses the whole hash.
	return (h ^ h>>16) & dictShardMask
}

func packID(shard uint32, local int) ID { return ID(local)<<dictShardBits | ID(shard) }

// intern returns the ID for a term, allocating one if needed. One shard
// lock acquisition.
func (d *termDict) intern(t rdf.Term) ID {
	s := termShard(t)
	sh := &d.shards[s]
	sh.mu.RLock()
	id, ok := sh.ids[t]
	sh.mu.RUnlock()
	if ok {
		return id
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if id, ok := sh.ids[t]; ok {
		return id
	}
	id = packID(s, len(sh.terms))
	sh.terms = append(sh.terms, t)
	sh.ids[t] = id
	return id
}

// internAll interns every term of ts into ids (parallel slices, same
// length), taking each shard's lock at most once. This is the batch-write
// fast path: a 1024-triple batch costs <= 16 dictionary lock acquisitions
// instead of 3072.
func (d *termDict) internAll(ts []rdf.Term, ids []ID) {
	n := len(ts)
	shardOf := make([]uint8, n)
	var counts [dictShards]int
	for i, t := range ts {
		s := termShard(t)
		shardOf[i] = uint8(s)
		counts[s]++
	}
	// Bucket term positions contiguously by shard (counting sort).
	var offsets [dictShards]int
	sum := 0
	for s := 0; s < dictShards; s++ {
		offsets[s] = sum
		sum += counts[s]
	}
	order := make([]int32, n)
	next := offsets
	for i := 0; i < n; i++ {
		s := shardOf[i]
		order[next[s]] = int32(i)
		next[s]++
	}
	for s := 0; s < dictShards; s++ {
		if counts[s] == 0 {
			continue
		}
		bucket := order[offsets[s] : offsets[s]+counts[s]]
		sh := &d.shards[s]
		sh.mu.Lock()
		for _, i := range bucket {
			t := ts[i]
			id, ok := sh.ids[t]
			if !ok {
				id = packID(uint32(s), len(sh.terms))
				sh.terms = append(sh.terms, t)
				sh.ids[t] = id
			}
			ids[i] = id
		}
		sh.mu.Unlock()
	}
}

// lookup returns the ID of a previously interned term.
func (d *termDict) lookup(t rdf.Term) (ID, bool) {
	sh := &d.shards[termShard(t)]
	sh.mu.RLock()
	id, ok := sh.ids[t]
	sh.mu.RUnlock()
	return id, ok
}

// term resolves an ID back to its term. Unknown IDs (including 0) yield
// the zero term.
func (d *termDict) term(id ID) rdf.Term {
	if id == 0 {
		return rdf.Term{}
	}
	sh := &d.shards[id&dictShardMask]
	local := int(id >> dictShardBits)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if local <= 0 || local >= len(sh.terms) {
		return rdf.Term{}
	}
	return sh.terms[local]
}

// count returns the number of interned terms.
func (d *termDict) count() int {
	n := 0
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.RLock()
		n += len(sh.terms) - 1
		sh.mu.RUnlock()
	}
	return n
}
