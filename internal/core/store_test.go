package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"kbharvest/internal/rdf"
)

func TestAddAndHas(t *testing.T) {
	st := NewStore()
	tr := rdf.T("yago:Steve_Jobs", "kb:founded", "yago:Apple_Inc")
	id := st.Add(tr)
	if !st.Has(tr) {
		t.Fatal("fact should be present after Add")
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st.Len())
	}
	// Idempotence.
	if id2 := st.Add(tr); id2 != id {
		t.Errorf("re-Add returned %d, want %d", id2, id)
	}
	if st.Len() != 1 {
		t.Errorf("Len after re-Add = %d, want 1", st.Len())
	}
	got, ok := st.Fact(id)
	if !ok || got != tr {
		t.Errorf("Fact(%d) = %v, %v", id, got, ok)
	}
}

func TestAddAll(t *testing.T) {
	st := NewStore()
	ts := []rdf.Triple{
		rdf.T("a", "p", "b"),
		rdf.T("b", "p", "c"),
		rdf.T("a", "p", "b"), // duplicate
	}
	ids := st.AddAll(ts)
	if len(ids) != 3 {
		t.Fatalf("got %d ids", len(ids))
	}
	if ids[0] != ids[2] {
		t.Error("duplicate triple should reuse fact id")
	}
	if st.Len() != 2 {
		t.Errorf("Len = %d, want 2", st.Len())
	}
}

func TestRemove(t *testing.T) {
	st := NewStore()
	tr := rdf.T("a", "p", "b")
	id := st.Add(tr)
	if !st.Remove(tr) {
		t.Fatal("Remove should report true")
	}
	if st.Has(tr) || st.Len() != 0 {
		t.Error("fact still visible after Remove")
	}
	if st.Remove(tr) {
		t.Error("second Remove should report false")
	}
	if _, ok := st.Fact(id); ok {
		t.Error("tombstoned fact should not resolve")
	}
	if st.Remove(rdf.T("never", "seen", "terms")) {
		t.Error("removing unknown terms should report false")
	}
	// Re-adding after removal works and yields a fresh ID.
	id2 := st.Add(tr)
	if id2 == id {
		t.Error("re-added fact should get a fresh id")
	}
	if !st.Has(tr) {
		t.Error("fact should be back")
	}
}

func TestRemoveFact(t *testing.T) {
	st := NewStore()
	id := st.Add(rdf.T("a", "p", "b"))
	if !st.RemoveFact(id) {
		t.Fatal("RemoveFact should succeed")
	}
	if st.RemoveFact(id) {
		t.Error("double RemoveFact should fail")
	}
	if st.RemoveFact(FactID(999)) {
		t.Error("out-of-range RemoveFact should fail")
	}
}

func addFixture(st *Store) {
	st.Add(rdf.T("jobs", "founded", "apple"))
	st.Add(rdf.T("jobs", "founded", "next"))
	st.Add(rdf.T("wozniak", "founded", "apple"))
	st.Add(rdf.T("jobs", "bornIn", "sanfrancisco"))
	st.Add(rdf.TL("jobs", "label", "Steve Jobs"))
}

func TestMatchAllPatternShapes(t *testing.T) {
	st := NewStore()
	addFixture(st)
	w := rdf.Term{} // wildcard
	cases := []struct {
		name    string
		pattern rdf.Triple
		want    int
	}{
		{"spo bound", rdf.T("jobs", "founded", "apple"), 1},
		{"sp bound", rdf.Triple{S: rdf.NewIRI("jobs"), P: rdf.NewIRI("founded"), O: w}, 2},
		{"so bound", rdf.Triple{S: rdf.NewIRI("jobs"), P: w, O: rdf.NewIRI("apple")}, 1},
		{"s bound", rdf.Triple{S: rdf.NewIRI("jobs"), P: w, O: w}, 4},
		{"po bound", rdf.Triple{S: w, P: rdf.NewIRI("founded"), O: rdf.NewIRI("apple")}, 2},
		{"p bound", rdf.Triple{S: w, P: rdf.NewIRI("founded"), O: w}, 3},
		{"o bound", rdf.Triple{S: w, P: w, O: rdf.NewIRI("apple")}, 2},
		{"all wild", rdf.Triple{S: w, P: w, O: w}, 5},
		{"unknown term", rdf.T("nobody", "founded", "apple"), 0},
		{"unknown pred", rdf.Triple{S: w, P: rdf.NewIRI("nosuch"), O: w}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := len(st.Match(c.pattern)); got != c.want {
				t.Errorf("Match(%v) returned %d facts, want %d", c.pattern, got, c.want)
			}
		})
	}
}

func TestMatchSkipsTombstones(t *testing.T) {
	st := NewStore()
	addFixture(st)
	st.Remove(rdf.T("jobs", "founded", "next"))
	got := st.Match(rdf.Triple{S: rdf.NewIRI("jobs"), P: rdf.NewIRI("founded")})
	if len(got) != 1 || got[0].O.Value != "apple" {
		t.Errorf("Match after remove = %v", got)
	}
	all := st.Match(rdf.Triple{})
	if len(all) != 4 {
		t.Errorf("full scan returned %d, want 4", len(all))
	}
}

func TestMatchFuncEarlyStop(t *testing.T) {
	st := NewStore()
	addFixture(st)
	n := 0
	st.MatchFunc(rdf.Triple{}, func(FactID, rdf.Triple) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("early stop visited %d, want 2", n)
	}
}

func TestObjectsSubjectsPredicates(t *testing.T) {
	st := NewStore()
	addFixture(st)
	objs := st.Objects("jobs", "founded")
	if len(objs) != 2 {
		t.Errorf("Objects = %v", objs)
	}
	subs := st.Subjects("founded", "apple")
	if len(subs) != 2 {
		t.Errorf("Subjects = %v", subs)
	}
	preds := st.Predicates()
	if len(preds) != 3 {
		t.Errorf("Predicates = %v", preds)
	}
	st.Remove(rdf.TL("jobs", "label", "Steve Jobs"))
	preds = st.Predicates()
	if len(preds) != 2 {
		t.Errorf("Predicates after remove = %v", preds)
	}
}

func TestStats(t *testing.T) {
	st := NewStore()
	addFixture(st)
	s := st.Stats()
	if s.Facts != 5 {
		t.Errorf("Facts = %d", s.Facts)
	}
	if s.Entities != 2 { // jobs, wozniak as IRI subjects
		t.Errorf("Entities = %d", s.Entities)
	}
	if s.Predicates != 3 {
		t.Errorf("Predicates = %d", s.Predicates)
	}
	if s.Terms != st.TermCount() {
		t.Errorf("Terms = %d, TermCount = %d", s.Terms, st.TermCount())
	}
}

func TestTermIDRoundTrip(t *testing.T) {
	st := NewStore()
	st.Add(rdf.T("a", "p", "b"))
	id, ok := st.TermID(rdf.NewIRI("a"))
	if !ok {
		t.Fatal("TermID should find interned term")
	}
	if got := st.Term(id); got.Value != "a" {
		t.Errorf("Term(%d) = %v", id, got)
	}
	if _, ok := st.TermID(rdf.NewIRI("unseen")); ok {
		t.Error("unseen term should not resolve")
	}
	if !st.Term(ID(9999)).IsZero() {
		t.Error("out-of-range ID should yield zero term")
	}
}

func TestFactOf(t *testing.T) {
	st := NewStore()
	id := st.Add(rdf.T("a", "p", "b"))
	got, ok := st.FactOf(rdf.T("a", "p", "b"))
	if !ok || got != id {
		t.Errorf("FactOf = %d, %v", got, ok)
	}
	if _, ok := st.FactOf(rdf.T("a", "p", "c")); ok {
		t.Error("FactOf should miss unknown triple")
	}
}

func TestAllInsertionOrder(t *testing.T) {
	st := NewStore()
	want := []rdf.Triple{
		rdf.T("c", "p", "d"),
		rdf.T("a", "p", "b"),
		rdf.T("b", "p", "c"),
	}
	for _, tr := range want {
		st.Add(tr)
	}
	if got := st.All(); !reflect.DeepEqual(got, want) {
		t.Errorf("All = %v, want %v", got, want)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	st := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				st.Add(rdf.T(fmt.Sprintf("s%d", w), "p", fmt.Sprintf("o%d", i)))
			}
		}(w)
	}
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				st.Match(rdf.Triple{P: rdf.NewIRI("p")})
				st.Len()
			}
		}()
	}
	wg.Wait()
	if st.Len() != 8*200 {
		t.Errorf("Len = %d, want %d", st.Len(), 8*200)
	}
}

// Property: for random triple sets, every pattern query agrees with a
// brute-force scan over the asserted set.
func TestMatchAgreesWithBruteForceQuick(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	names := []string{"a", "b", "c", "d", "e"}
	for trial := 0; trial < 50; trial++ {
		st := NewStore()
		var truth []rdf.Triple
		seen := make(map[rdf.Triple]bool)
		for i := 0; i < 40; i++ {
			tr := rdf.T(names[r.Intn(5)], names[r.Intn(5)], names[r.Intn(5)])
			if !seen[tr] {
				seen[tr] = true
				truth = append(truth, tr)
			}
			st.Add(tr)
		}
		// Random pattern: each position wildcard or a random name.
		pos := func() rdf.Term {
			if r.Intn(2) == 0 {
				return rdf.Term{}
			}
			return rdf.NewIRI(names[r.Intn(5)])
		}
		for q := 0; q < 20; q++ {
			pat := rdf.Triple{S: pos(), P: pos(), O: pos()}
			want := 0
			for _, tr := range truth {
				if matches(pat, tr) {
					want++
				}
			}
			got := len(st.Match(pat))
			if got != want {
				t.Fatalf("trial %d: Match(%v) = %d, brute force = %d", trial, pat, got, want)
			}
		}
	}
}

func matches(pat, tr rdf.Triple) bool {
	ok := func(p, v rdf.Term) bool { return p.IsZero() || p == v }
	return ok(pat.S, tr.S) && ok(pat.P, tr.P) && ok(pat.O, tr.O)
}
