package core

import (
	"fmt"

	"kbharvest/internal/rdf"
)

// Reification: exporting per-fact metadata as triples, in the style of
// YAGO2's SPOTL(X) representation — every fact gets an identifier node,
// and confidence / provenance / temporal scope become statements about
// that node. This makes a kbharvest snapshot interoperable with plain
// triple tooling that knows nothing of our metadata side-channel, and is
// how "several KBs are interlinked … forming the backbone of the Web of
// Linked Data" (§1) exchange meta-knowledge.

// Vocabulary used by reified fact descriptions.
const (
	ReifySubject    = "rdf:subject"
	ReifyPredicate  = "rdf:predicate"
	ReifyObject     = "rdf:object"
	ReifyConfidence = "kb:hasConfidence"
	ReifySource     = "kb:wasExtractedFrom"
	ReifyBegin      = "kb:validSince"
	ReifyEnd        = "kb:validUntil"
)

// ReifyFact renders one fact and its metadata as triples rooted at a
// blank node "_:f<ID>". Unbounded interval endpoints are omitted.
func (st *Store) ReifyFact(id FactID) ([]rdf.Triple, error) {
	t, ok := st.Fact(id)
	if !ok {
		return nil, fmt.Errorf("core: reify: no live fact %d", id)
	}
	info, _ := st.Info(id)
	node := rdf.NewBlank(fmt.Sprintf("f%d", id))
	out := []rdf.Triple{
		{S: node, P: rdf.NewIRI(ReifySubject), O: t.S},
		{S: node, P: rdf.NewIRI(ReifyPredicate), O: t.P},
		{S: node, P: rdf.NewIRI(ReifyObject), O: t.O},
		{S: node, P: rdf.NewIRI(ReifyConfidence),
			O: rdf.NewTypedLiteral(fmt.Sprintf("%g", info.Confidence), rdf.XSDDouble)},
	}
	if info.Source != "" {
		out = append(out, rdf.Triple{S: node, P: rdf.NewIRI(ReifySource), O: rdf.NewLiteral(info.Source)})
	}
	if info.Time.Begin != MinDay {
		out = append(out, rdf.Triple{S: node, P: rdf.NewIRI(ReifyBegin),
			O: rdf.NewTypedLiteral(fmt.Sprintf("%d", info.Time.Begin), rdf.XSDInteger)})
	}
	if info.Time.End != MaxDay {
		out = append(out, rdf.Triple{S: node, P: rdf.NewIRI(ReifyEnd),
			O: rdf.NewTypedLiteral(fmt.Sprintf("%d", info.Time.End), rdf.XSDInteger)})
	}
	return out, nil
}

// ReifyAll renders every live fact (optionally only those matching the
// pattern) as reified triples.
func (st *Store) ReifyAll(pattern rdf.Triple) []rdf.Triple {
	var out []rdf.Triple
	st.MatchFunc(pattern, func(id FactID, _ rdf.Triple) bool {
		ts, err := st.ReifyFact(id)
		if err == nil {
			out = append(out, ts...)
		}
		return true
	})
	return out
}

// LoadReified reconstructs facts-with-metadata from reified triples (the
// inverse of ReifyAll): triples are grouped by their blank-node root and
// asserted into the store. Returns the number of facts loaded; groups
// missing any of subject/predicate/object are skipped and counted in
// incomplete.
func (st *Store) LoadReified(triples []rdf.Triple) (loaded, incomplete int) {
	type desc struct {
		s, p, o             rdf.Term
		haveS, haveP, haveO bool
		info                FactInfo
	}
	groups := map[string]*desc{}
	order := []string{}
	get := func(node string) *desc {
		d, ok := groups[node]
		if !ok {
			d = &desc{info: FactInfo{Confidence: 1, Time: Always}}
			groups[node] = d
			order = append(order, node)
		}
		return d
	}
	for _, t := range triples {
		if !t.S.IsBlank() {
			continue
		}
		d := get(t.S.Value)
		switch t.P.Value {
		case ReifySubject:
			d.s, d.haveS = t.O, true
		case ReifyPredicate:
			d.p, d.haveP = t.O, true
		case ReifyObject:
			d.o, d.haveO = t.O, true
		case ReifyConfidence:
			fmt.Sscanf(t.O.Value, "%g", &d.info.Confidence)
		case ReifySource:
			d.info.Source = t.O.Value
		case ReifyBegin:
			fmt.Sscanf(t.O.Value, "%d", &d.info.Time.Begin)
		case ReifyEnd:
			fmt.Sscanf(t.O.Value, "%d", &d.info.Time.End)
		}
	}
	for _, node := range order {
		d := groups[node]
		if !d.haveS || !d.haveP || !d.haveO {
			incomplete++
			continue
		}
		id := st.Add(rdf.Triple{S: d.s, P: d.p, O: d.o})
		st.SetInfo(id, d.info)
		loaded++
	}
	return loaded, incomplete
}
