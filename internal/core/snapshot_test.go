package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"kbharvest/internal/rdf"
)

func TestSnapshotRoundTrip(t *testing.T) {
	st := NewStore()
	id1 := st.Add(rdf.T("jobs", "founded", "apple"))
	st.Add(rdf.Triple{S: rdf.NewIRI("jobs"), P: rdf.NewIRI("label"), O: rdf.NewLangLiteral("Steve Jobs", "en")})
	id3 := st.Add(rdf.Triple{S: rdf.NewIRI("jobs"), P: rdf.NewIRI("born"), O: rdf.NewTypedLiteral("1955-02-24", rdf.XSDDate)})
	st.SetInfo(id1, FactInfo{Confidence: 0.8, Source: "patterns:a1", Time: Interval{100, 900}})
	st.SetInfo(id3, FactInfo{Confidence: 0.95, Source: "infobox", Time: Always})

	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}

	st2 := NewStore()
	n, err := st2.Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if n != 3 || st2.Len() != 3 {
		t.Fatalf("loaded %d facts, Len %d", n, st2.Len())
	}
	id, ok := st2.FactOf(rdf.T("jobs", "founded", "apple"))
	if !ok {
		t.Fatal("fact missing after load")
	}
	info, _ := st2.Info(id)
	if info.Confidence != 0.8 || info.Source != "patterns:a1" || info.Time != (Interval{100, 900}) {
		t.Errorf("meta after load = %+v", info)
	}
	// The unannotated fact gets defaults.
	id2, _ := st2.FactOf(rdf.Triple{S: rdf.NewIRI("jobs"), P: rdf.NewIRI("label"), O: rdf.NewLangLiteral("Steve Jobs", "en")})
	info2, _ := st2.Info(id2)
	if info2.Confidence != 1 || info2.Time != Always {
		t.Errorf("default meta after load = %+v", info2)
	}
}

func TestSnapshotSkipsTombstones(t *testing.T) {
	st := NewStore()
	st.Add(rdf.T("a", "p", "b"))
	st.Add(rdf.T("a", "p", "c"))
	st.Remove(rdf.T("a", "p", "b"))
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	st2 := NewStore()
	if n, err := st2.Load(&buf); err != nil || n != 1 {
		t.Fatalf("Load = %d, %v", n, err)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"meta first", "#!meta 0.5 0 1 src\n"},
		{"bad conf", "<a> <p> <b> .\n#!meta notanumber 0 1 src\n"},
		{"bad begin", "<a> <p> <b> .\n#!meta 0.5 x 1 src\n"},
		{"bad end", "<a> <p> <b> .\n#!meta 0.5 0 y src\n"},
		{"short meta", "<a> <p> <b> .\n#!meta 0.5\n"},
		{"bad triple", "<a> <p>\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			st := NewStore()
			if _, err := st.Load(strings.NewReader(c.in)); err == nil {
				t.Errorf("Load(%q) should fail", c.in)
			}
		})
	}
}

func TestLoadIgnoresPlainComments(t *testing.T) {
	in := "# header comment\n<a> <p> <b> .\n# tail\n"
	st := NewStore()
	n, err := st.Load(strings.NewReader(in))
	if err != nil || n != 1 {
		t.Fatalf("Load = %d, %v", n, err)
	}
}

func TestSnapshotRoundTripQuick(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	names := []string{"e1", "e2", "e3", "e4", "rel_a", "rel_b"}
	for trial := 0; trial < 20; trial++ {
		st := NewStore()
		for i := 0; i < 50; i++ {
			id := st.Add(rdf.T(names[r.Intn(4)], names[4+r.Intn(2)], names[r.Intn(4)]))
			if r.Intn(2) == 0 {
				st.SetInfo(id, FactInfo{
					Confidence: float64(r.Intn(100)) / 100,
					Source:     "src with spaces",
					Time:       Interval{r.Intn(100), 100 + r.Intn(100)},
				})
			}
		}
		var buf bytes.Buffer
		if err := st.Save(&buf); err != nil {
			t.Fatal(err)
		}
		st2 := NewStore()
		if _, err := st2.Load(&buf); err != nil {
			t.Fatal(err)
		}
		if st2.Len() != st.Len() {
			t.Fatalf("trial %d: Len %d != %d", trial, st2.Len(), st.Len())
		}
		for _, tr := range st.All() {
			if !st2.Has(tr) {
				t.Fatalf("trial %d: missing %v", trial, tr)
			}
			idA, _ := st.FactOf(tr)
			idB, _ := st2.FactOf(tr)
			ia, _ := st.Info(idA)
			ib, _ := st2.Info(idB)
			if ia != ib {
				t.Fatalf("trial %d: meta mismatch %+v != %+v", trial, ia, ib)
			}
		}
	}
}

// Property: snapshots round-trip FactInfo.Source strings that attack the
// line-oriented meta format — newlines, carriage returns, backslashes,
// "#!meta" prefixes, unicode — without corrupting the following lines.
func TestSnapshotRoundTripHostileSources(t *testing.T) {
	sources := []string{
		"plain-article-42",
		"line1\nline2",
		"\n",
		"\r\n",
		"trailing-newline\n",
		"#!meta 0.5 0 0 fake",
		"back\\slash and C:\\path\\file",
		"tab\tand spaces  kept",
		"unicode: préfix ∞ 知識",
		"\\n literal backslash-n",
		"",
	}
	st := NewStore()
	var ids []FactID
	for i, src := range sources {
		id := st.Add(rdf.T(fmt.Sprintf("kb:s%d", i), "kb:rel", fmt.Sprintf("kb:o%d", i)))
		st.SetInfo(id, FactInfo{Confidence: 0.25 + float64(i)/100, Source: src, Time: Interval{10, 20}})
		ids = append(ids, id)
	}
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded := NewStore()
	n, err := loaded.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("load after hostile sources: %v\nsnapshot:\n%s", err, buf.String())
	}
	if n != len(sources) {
		t.Fatalf("loaded %d facts, want %d", n, len(sources))
	}
	for i, src := range sources {
		id, ok := loaded.FactOf(rdf.T(fmt.Sprintf("kb:s%d", i), "kb:rel", fmt.Sprintf("kb:o%d", i)))
		if !ok {
			t.Fatalf("fact %d missing after round trip", i)
		}
		info, _ := loaded.Info(id)
		if info.Source != src {
			t.Errorf("source %d round-tripped to %q, want %q", i, info.Source, src)
		}
		want, _ := st.Info(ids[i])
		if info.Confidence != want.Confidence || info.Time != want.Time {
			t.Errorf("meta %d = %+v, want %+v", i, info, want)
		}
	}
}

// Legacy snapshots — no "#!kbsnap" header, written before source escaping
// existed — must load their backslashes verbatim, including sequences
// that look like escapes (\n, \r, \\).
func TestSnapshotLegacyBackslashSource(t *testing.T) {
	for _, src := range []string{
		`C:\data\articles`,
		`C:\network\new`, // \n must stay a literal backslash-n, not a newline
		`C:\raw\route`,   // likewise \r
		`double\\slash`,
	} {
		snapshot := "<kb:s> <kb:p> <kb:o> .\n#!meta 0.5 1 2 " + src + "\n"
		st := NewStore()
		if _, err := st.Load(strings.NewReader(snapshot)); err != nil {
			t.Fatal(err)
		}
		id, _ := st.FactOf(rdf.T("kb:s", "kb:p", "kb:o"))
		info, _ := st.Info(id)
		if info.Source != src {
			t.Errorf("legacy source = %q, want %q", info.Source, src)
		}
	}
}

// The version header makes a snapshot self-describing: Save's output
// carries it, Load treats it as a comment-compatible marker, and other
// "#"-prefixed lines still load as before.
func TestSnapshotHeaderWrittenAndGatesUnescaping(t *testing.T) {
	st := NewStore()
	id := st.Add(rdf.T("kb:s", "kb:p", "kb:o"))
	st.SetInfo(id, FactInfo{Confidence: 0.5, Source: "a\nb", Time: Interval{1, 2}})
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "#!kbsnap 2\n") {
		t.Fatalf("snapshot does not start with version header:\n%s", buf.String())
	}
	loaded := NewStore()
	if _, err := loaded.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	lid, _ := loaded.FactOf(rdf.T("kb:s", "kb:p", "kb:o"))
	info, _ := loaded.Info(lid)
	if info.Source != "a\nb" {
		t.Errorf("versioned source = %q, want %q", info.Source, "a\nb")
	}
}
