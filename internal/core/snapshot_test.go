package core

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"kbharvest/internal/rdf"
)

func TestSnapshotRoundTrip(t *testing.T) {
	st := NewStore()
	id1 := st.Add(rdf.T("jobs", "founded", "apple"))
	st.Add(rdf.Triple{S: rdf.NewIRI("jobs"), P: rdf.NewIRI("label"), O: rdf.NewLangLiteral("Steve Jobs", "en")})
	id3 := st.Add(rdf.Triple{S: rdf.NewIRI("jobs"), P: rdf.NewIRI("born"), O: rdf.NewTypedLiteral("1955-02-24", rdf.XSDDate)})
	st.SetInfo(id1, FactInfo{Confidence: 0.8, Source: "patterns:a1", Time: Interval{100, 900}})
	st.SetInfo(id3, FactInfo{Confidence: 0.95, Source: "infobox", Time: Always})

	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}

	st2 := NewStore()
	n, err := st2.Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if n != 3 || st2.Len() != 3 {
		t.Fatalf("loaded %d facts, Len %d", n, st2.Len())
	}
	id, ok := st2.FactOf(rdf.T("jobs", "founded", "apple"))
	if !ok {
		t.Fatal("fact missing after load")
	}
	info, _ := st2.Info(id)
	if info.Confidence != 0.8 || info.Source != "patterns:a1" || info.Time != (Interval{100, 900}) {
		t.Errorf("meta after load = %+v", info)
	}
	// The unannotated fact gets defaults.
	id2, _ := st2.FactOf(rdf.Triple{S: rdf.NewIRI("jobs"), P: rdf.NewIRI("label"), O: rdf.NewLangLiteral("Steve Jobs", "en")})
	info2, _ := st2.Info(id2)
	if info2.Confidence != 1 || info2.Time != Always {
		t.Errorf("default meta after load = %+v", info2)
	}
}

func TestSnapshotSkipsTombstones(t *testing.T) {
	st := NewStore()
	st.Add(rdf.T("a", "p", "b"))
	st.Add(rdf.T("a", "p", "c"))
	st.Remove(rdf.T("a", "p", "b"))
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	st2 := NewStore()
	if n, err := st2.Load(&buf); err != nil || n != 1 {
		t.Fatalf("Load = %d, %v", n, err)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"meta first", "#!meta 0.5 0 1 src\n"},
		{"bad conf", "<a> <p> <b> .\n#!meta notanumber 0 1 src\n"},
		{"bad begin", "<a> <p> <b> .\n#!meta 0.5 x 1 src\n"},
		{"bad end", "<a> <p> <b> .\n#!meta 0.5 0 y src\n"},
		{"short meta", "<a> <p> <b> .\n#!meta 0.5\n"},
		{"bad triple", "<a> <p>\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			st := NewStore()
			if _, err := st.Load(strings.NewReader(c.in)); err == nil {
				t.Errorf("Load(%q) should fail", c.in)
			}
		})
	}
}

func TestLoadIgnoresPlainComments(t *testing.T) {
	in := "# header comment\n<a> <p> <b> .\n# tail\n"
	st := NewStore()
	n, err := st.Load(strings.NewReader(in))
	if err != nil || n != 1 {
		t.Fatalf("Load = %d, %v", n, err)
	}
}

func TestSnapshotRoundTripQuick(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	names := []string{"e1", "e2", "e3", "e4", "rel_a", "rel_b"}
	for trial := 0; trial < 20; trial++ {
		st := NewStore()
		for i := 0; i < 50; i++ {
			id := st.Add(rdf.T(names[r.Intn(4)], names[4+r.Intn(2)], names[r.Intn(4)]))
			if r.Intn(2) == 0 {
				st.SetInfo(id, FactInfo{
					Confidence: float64(r.Intn(100)) / 100,
					Source:     "src with spaces",
					Time:       Interval{r.Intn(100), 100 + r.Intn(100)},
				})
			}
		}
		var buf bytes.Buffer
		if err := st.Save(&buf); err != nil {
			t.Fatal(err)
		}
		st2 := NewStore()
		if _, err := st2.Load(&buf); err != nil {
			t.Fatal(err)
		}
		if st2.Len() != st.Len() {
			t.Fatalf("trial %d: Len %d != %d", trial, st2.Len(), st.Len())
		}
		for _, tr := range st.All() {
			if !st2.Has(tr) {
				t.Fatalf("trial %d: missing %v", trial, tr)
			}
			idA, _ := st.FactOf(tr)
			idB, _ := st2.FactOf(tr)
			ia, _ := st.Info(idA)
			ib, _ := st2.Info(idB)
			if ia != ib {
				t.Fatalf("trial %d: meta mismatch %+v != %+v", trial, ia, ib)
			}
		}
	}
}

// Property: snapshots round-trip FactInfo.Source strings that attack the
// line-oriented meta format — newlines, carriage returns, backslashes,
// "#!meta" prefixes, unicode — without corrupting the following lines.
func TestSnapshotRoundTripHostileSources(t *testing.T) {
	sources := []string{
		"plain-article-42",
		"line1\nline2",
		"\n",
		"\r\n",
		"trailing-newline\n",
		"#!meta 0.5 0 0 fake",
		"back\\slash and C:\\path\\file",
		"tab\tand spaces  kept",
		"unicode: préfix ∞ 知識",
		"\\n literal backslash-n",
		"",
	}
	st := NewStore()
	var ids []FactID
	for i, src := range sources {
		id := st.Add(rdf.T(fmt.Sprintf("kb:s%d", i), "kb:rel", fmt.Sprintf("kb:o%d", i)))
		st.SetInfo(id, FactInfo{Confidence: 0.25 + float64(i)/100, Source: src, Time: Interval{10, 20}})
		ids = append(ids, id)
	}
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded := NewStore()
	n, err := loaded.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("load after hostile sources: %v\nsnapshot:\n%s", err, buf.String())
	}
	if n != len(sources) {
		t.Fatalf("loaded %d facts, want %d", n, len(sources))
	}
	for i, src := range sources {
		id, ok := loaded.FactOf(rdf.T(fmt.Sprintf("kb:s%d", i), "kb:rel", fmt.Sprintf("kb:o%d", i)))
		if !ok {
			t.Fatalf("fact %d missing after round trip", i)
		}
		info, _ := loaded.Info(id)
		if info.Source != src {
			t.Errorf("source %d round-tripped to %q, want %q", i, info.Source, src)
		}
		want, _ := st.Info(ids[i])
		if info.Confidence != want.Confidence || info.Time != want.Time {
			t.Errorf("meta %d = %+v, want %+v", i, info, want)
		}
	}
}

// Legacy snapshots — no "#!kbsnap" header, written before source escaping
// existed — must load their backslashes verbatim, including sequences
// that look like escapes (\n, \r, \\).
func TestSnapshotLegacyBackslashSource(t *testing.T) {
	for _, src := range []string{
		`C:\data\articles`,
		`C:\network\new`, // \n must stay a literal backslash-n, not a newline
		`C:\raw\route`,   // likewise \r
		`double\\slash`,
	} {
		snapshot := "<kb:s> <kb:p> <kb:o> .\n#!meta 0.5 1 2 " + src + "\n"
		st := NewStore()
		if _, err := st.Load(strings.NewReader(snapshot)); err != nil {
			t.Fatal(err)
		}
		id, _ := st.FactOf(rdf.T("kb:s", "kb:p", "kb:o"))
		info, _ := st.Info(id)
		if info.Source != src {
			t.Errorf("legacy source = %q, want %q", info.Source, src)
		}
	}
}

// Regression: Load used to TrimSpace every line, silently mangling meta
// sources with leading or trailing spaces/tabs that escapeMetaSource had
// faithfully written. Only line-ending characters may be trimmed, so
// sources round-trip byte-exactly.
func TestSnapshotSourceWhitespaceRoundTrip(t *testing.T) {
	sources := []string{
		"trailing-space ",
		"trailing-tab\t",
		"trailing-both \t ",
		"  leading-spaces",
		"\tleading-tab",
		" padded both sides \t",
	}
	st := NewStore()
	for i, src := range sources {
		id := st.Add(rdf.T(fmt.Sprintf("kb:ws%d", i), "kb:rel", "kb:o"))
		st.SetInfo(id, FactInfo{Confidence: 0.5, Source: src, Time: Interval{1, 2}})
	}
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded := NewStore()
	if n, err := loaded.Load(bytes.NewReader(buf.Bytes())); err != nil || n != len(sources) {
		t.Fatalf("Load = %d, %v", n, err)
	}
	for i, src := range sources {
		id, ok := loaded.FactOf(rdf.T(fmt.Sprintf("kb:ws%d", i), "kb:rel", "kb:o"))
		if !ok {
			t.Fatalf("fact %d missing", i)
		}
		info, _ := loaded.Info(id)
		if info.Source != src {
			t.Errorf("source %d = %q, want %q", i, info.Source, src)
		}
	}
}

// A snapshot whose final fact line lacks a trailing newline (truncated
// copy, hand-edited file) must still load every fact.
func TestLoadNoTrailingNewline(t *testing.T) {
	in := "#!kbsnap 2\n<kb:a> <kb:p> <kb:b> .\n#!meta 0.5 1 2 src\n<kb:c> <kb:p> <kb:d> ."
	st := NewStore()
	n, err := st.Load(strings.NewReader(in))
	if err != nil || n != 2 {
		t.Fatalf("Load = %d, %v", n, err)
	}
	if !st.Has(rdf.T("kb:c", "kb:p", "kb:d")) {
		t.Error("final newline-less fact missing")
	}
	id, _ := st.FactOf(rdf.T("kb:a", "kb:p", "kb:b"))
	if info, _ := st.Info(id); info.Source != "src" {
		t.Errorf("meta source = %q", info.Source)
	}
}

// Save must produce a consistent, loadable view while writers churn the
// store: every snapshot taken mid-write has to contain all stable facts
// and parse cleanly (run under -race in CI).
func TestConcurrentSaveWithWriters(t *testing.T) {
	st := NewStore()
	var stable []rdf.Triple
	for i := 0; i < 50; i++ {
		tr := rdf.T(fmt.Sprintf("kb:stable%d", i), "kb:rel", "kb:o")
		st.Add(tr)
		stable = append(stable, tr)
	}
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for g := 0; g < 2; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				batch := []rdf.Triple{
					rdf.T(fmt.Sprintf("kb:churn%d_%d", g, i%20), "kb:rel", "kb:x"),
					rdf.T(fmt.Sprintf("kb:churn%d_%d", g, i%20), "kb:rel", "kb:y"),
				}
				ids := st.AddBatch(batch)
				st.SetInfo(ids[0], FactInfo{Confidence: 0.5, Source: "churn ", Time: Interval{1, 2}})
				st.Remove(batch[0])
				st.Remove(batch[1])
			}
		}(g)
	}
	for round := 0; round < 20; round++ {
		var buf bytes.Buffer
		if err := st.Save(&buf); err != nil {
			t.Fatalf("round %d: Save: %v", round, err)
		}
		loaded := NewStore()
		if _, err := loaded.Load(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("round %d: snapshot does not load: %v", round, err)
		}
		for _, tr := range stable {
			if !loaded.Has(tr) {
				t.Fatalf("round %d: stable fact %v missing from snapshot", round, tr)
			}
		}
	}
	close(stop)
	writers.Wait()
}

// SaveShards partitions the store into N loadable snapshots whose union
// is the original store, metadata included.
func TestSaveShardsRoundTrip(t *testing.T) {
	st := NewStore()
	for i := 0; i < 40; i++ {
		id := st.Add(rdf.T(fmt.Sprintf("kb:s%d", i), "kb:rel", fmt.Sprintf("kb:o%d", i%7)))
		if i%3 == 0 {
			st.SetInfo(id, FactInfo{Confidence: 0.9, Source: fmt.Sprintf("src%d", i), Time: Interval{i, i + 1}})
		}
	}
	const n = 4
	bufs := make([]bytes.Buffer, n)
	ws := make([]io.Writer, n)
	for i := range bufs {
		ws[i] = &bufs[i]
	}
	shardOf := func(t rdf.Triple) int { return len(t.S.Value) % n }
	if err := st.SaveShards(ws, shardOf); err != nil {
		t.Fatal(err)
	}
	merged := NewStore()
	total := 0
	for i := range bufs {
		if !strings.HasPrefix(bufs[i].String(), "#!kbsnap 3\n") {
			t.Errorf("shard %d missing version header", i)
		}
		shard := NewStore()
		c, err := shard.Load(bytes.NewReader(bufs[i].Bytes()))
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		// Every fact in the shard belongs there per the shard function.
		for _, tr := range shard.All() {
			if shardOf(tr) != i {
				t.Errorf("fact %v landed in shard %d, want %d", tr, i, shardOf(tr))
			}
		}
		if _, err := merged.Load(bytes.NewReader(bufs[i].Bytes())); err != nil {
			t.Fatal(err)
		}
		total += c
	}
	if total != st.Len() || merged.Len() != st.Len() {
		t.Fatalf("shards hold %d facts (merged %d), want %d", total, merged.Len(), st.Len())
	}
	for _, tr := range st.All() {
		idA, _ := st.FactOf(tr)
		idB, ok := merged.FactOf(tr)
		if !ok {
			t.Fatalf("fact %v lost in sharding", tr)
		}
		ia, _ := st.Info(idA)
		ib, _ := merged.Info(idB)
		if ia != ib {
			t.Errorf("meta for %v = %+v, want %+v", tr, ib, ia)
		}
	}
	// Errors: no writers, out-of-range shard.
	if err := st.SaveShards(nil, nil); err == nil {
		t.Error("SaveShards(nil) should fail")
	}
	if err := st.SaveShards(ws, func(rdf.Triple) int { return n }); err == nil {
		t.Error("out-of-range shard function should fail")
	}
}

// The version header makes a snapshot self-describing: Save's output
// carries it, Load treats it as a comment-compatible marker, and other
// "#"-prefixed lines still load as before.
func TestSnapshotHeaderWrittenAndGatesUnescaping(t *testing.T) {
	st := NewStore()
	id := st.Add(rdf.T("kb:s", "kb:p", "kb:o"))
	st.SetInfo(id, FactInfo{Confidence: 0.5, Source: "a\nb", Time: Interval{1, 2}})
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "#!kbsnap 3\n") {
		t.Fatalf("snapshot does not start with version header:\n%s", buf.String())
	}
	loaded := NewStore()
	if _, err := loaded.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	lid, _ := loaded.FactOf(rdf.T("kb:s", "kb:p", "kb:o"))
	info, _ := loaded.Info(lid)
	if info.Source != "a\nb" {
		t.Errorf("versioned source = %q, want %q", info.Source, "a\nb")
	}
}

// The v3 trailer turns torn writes into loud errors: a truncated copy, a
// flipped bit, a wrong fact count, or trailing garbage must all fail the
// load, while trailer-less legacy snapshots keep loading.
func TestSnapshotCRCDetectsCorruption(t *testing.T) {
	st := NewStore()
	for i := 0; i < 20; i++ {
		id := st.Add(rdf.T(fmt.Sprintf("kb:e%d", i), "kb:rel", fmt.Sprintf("kb:v%d", i)))
		st.SetInfo(id, FactInfo{Confidence: 0.7, Source: fmt.Sprintf("src%d", i), Time: Interval{1, 2}})
	}
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	if !strings.Contains(good, "#!kbcrc ") {
		t.Fatalf("snapshot has no CRC trailer:\n%s", good)
	}
	if n, err := NewStore().Load(strings.NewReader(good)); err != nil || n != st.Len() {
		t.Fatalf("clean load = %d, %v; want %d, nil", n, err, st.Len())
	}

	cases := []struct {
		name, data string
	}{
		{"truncated before trailer", good[:strings.Index(good, "#!kbcrc ")]},
		{"truncated mid-facts", good[:len(good)/2]},
		{"bit flip", strings.Replace(good, "kb:e7", "kb:f7", 1)},
		{"dropped fact line", strings.Replace(good, "<kb:e3> <kb:rel> <kb:v3> .\n", "", 1)},
		{"content after trailer", good + "<kb:x> <kb:p> <kb:y> .\n"},
		{"duplicate trailer", good + good[strings.Index(good, "#!kbcrc "):]},
		{"malformed trailer", strings.Replace(good, "#!kbcrc ", "#!kbcrc zz ", 1)},
	}
	for _, tc := range cases {
		if _, err := NewStore().Load(strings.NewReader(tc.data)); err == nil {
			t.Errorf("%s: load succeeded, want integrity error", tc.name)
		}
	}

	// Legacy: no header, no trailer — still loads.
	legacy := "<kb:a> <kb:p> <kb:b> .\n#!meta 0.5 1 2 src\n"
	if n, err := NewStore().Load(strings.NewReader(legacy)); err != nil || n != 1 {
		t.Errorf("legacy load = %d, %v; want 1, nil", n, err)
	}
	// v2: header but no trailer — still loads (written before trailers).
	v2 := "#!kbsnap 2\n<kb:a> <kb:p> <kb:b> .\n"
	if n, err := NewStore().Load(strings.NewReader(v2)); err != nil || n != 1 {
		t.Errorf("v2 load = %d, %v; want 1, nil", n, err)
	}
}

// CRLF translation in transit (editors, some copy tools) must not break
// trailer verification: the CRC is over "\n"-normalized lines.
func TestSnapshotCRCSurvivesCRLF(t *testing.T) {
	st := NewStore()
	id := st.Add(rdf.T("kb:s", "kb:p", "kb:o"))
	st.SetInfo(id, FactInfo{Confidence: 0.5, Source: "src", Time: Interval{1, 2}})
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	crlf := strings.ReplaceAll(buf.String(), "\n", "\r\n")
	if n, err := NewStore().Load(strings.NewReader(crlf)); err != nil || n != 1 {
		t.Fatalf("CRLF load = %d, %v; want 1, nil", n, err)
	}
}

// SaveFile writes through a temp file and renames, so the target is
// either absent or a complete, verifiable snapshot — and no temp files
// are left behind.
func TestSaveFileAtomicAndClean(t *testing.T) {
	dir := t.TempDir()
	st := NewStore()
	for i := 0; i < 5; i++ {
		st.Add(rdf.T(fmt.Sprintf("kb:s%d", i), "kb:p", "kb:o"))
	}
	path := filepath.Join(dir, "kb.nt")
	if err := st.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded := NewStore()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := loaded.Load(bytes.NewReader(data)); err != nil || n != st.Len() {
		t.Fatalf("Load = %d, %v; want %d, nil", n, err, st.Len())
	}
	// Overwrite in place: the old snapshot must be replaced atomically.
	st.Add(rdf.T("kb:extra", "kb:p", "kb:o"))
	if err := st.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "kb.nt" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory holds %v, want only kb.nt (no temp litter)", names)
	}
}

func TestSaveShardFiles(t *testing.T) {
	dir := t.TempDir()
	st := NewStore()
	for i := 0; i < 30; i++ {
		st.Add(rdf.T(fmt.Sprintf("kb:s%d", i), "kb:p", fmt.Sprintf("kb:o%d", i)))
	}
	paths := []string{
		filepath.Join(dir, "shard0.nt"),
		filepath.Join(dir, "shard1.nt"),
		filepath.Join(dir, "shard2.nt"),
	}
	shardOf := func(tr rdf.Triple) int { return len(tr.S.Value) % len(paths) }
	if err := st.SaveShardFiles(paths, shardOf); err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		shard := NewStore()
		n, err := shard.Load(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		total += n
	}
	if total != st.Len() {
		t.Fatalf("shards hold %d facts, want %d", total, st.Len())
	}
	if entries, _ := os.ReadDir(dir); len(entries) != len(paths) {
		t.Fatalf("directory holds %d entries, want %d (no temp litter)", len(entries), len(paths))
	}
}
