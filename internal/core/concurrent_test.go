package core

import (
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"kbharvest/internal/rdf"
)

// stressTriple makes a deterministic triple from a worker id and counter,
// with enough key collisions that workers contend on shared terms, facts,
// and stripes.
func stressTriple(w, i int) rdf.Triple {
	return rdf.T(
		fmt.Sprintf("kb:s%d", (w*1000+i)%97),
		fmt.Sprintf("kb:p%d", i%7),
		fmt.Sprintf("kb:o%d", i%53),
	)
}

// TestStoreConcurrentStress hammers one store from >=8 goroutines mixing
// Add, AddBatch, AddBatchMeta, Remove, pattern queries, joins, and
// Snapshot, and must pass under `go test -race ./internal/core/`.
func TestStoreConcurrentStress(t *testing.T) {
	st := NewStore()
	const (
		writers  = 4
		batchers = 2
		removers = 2
		readers  = 4
		iters    = 300
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := st.Add(stressTriple(w, i))
				if i%3 == 0 {
					st.SetConfidence(id, 0.5)
				}
			}
		}(w)
	}
	for b := 0; b < batchers; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			for i := 0; i < iters; i += 32 {
				batch := make([]rdf.Triple, 0, 32)
				infos := make([]FactInfo, 0, 32)
				for j := 0; j < 32; j++ {
					batch = append(batch, stressTriple(100+b, i+j))
					infos = append(infos, FactInfo{Confidence: 0.9, Source: "stress"})
				}
				if b == 0 {
					st.AddBatch(batch)
				} else {
					st.AddBatchMeta(batch, infos)
				}
			}
		}(b)
	}
	for r := 0; r < removers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				st.Remove(stressTriple(r, i))
			}
		}(r)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch i % 5 {
				case 0:
					st.Match(rdf.Triple{P: rdf.NewIRI(fmt.Sprintf("kb:p%d", i%7))})
				case 1:
					st.Match(rdf.Triple{S: rdf.NewIRI(fmt.Sprintf("kb:s%d", i%97))})
				case 2:
					st.Query([]Pattern{
						{S: PVar("x"), P: PIRI("kb:p1"), O: PVar("y")},
					})
				case 3:
					if err := st.Save(io.Discard); err != nil {
						t.Errorf("Save: %v", err)
					}
				case 4:
					st.Stats()
					st.Predicates()
				}
			}
		}(r)
	}
	wg.Wait()

	// Every triple the pure writers asserted and nobody removed must be
	// present and indexed consistently.
	for w := 2; w < writers; w++ { // removers only target w < 2
		for i := 0; i < iters; i++ {
			tr := stressTriple(w, i)
			if !st.Has(tr) {
				t.Fatalf("missing fact %v after stress", tr)
			}
		}
	}
	// The three index permutations and the log must agree.
	n := st.Len()
	if got := len(st.Match(rdf.Triple{})); got != n {
		t.Errorf("full scan %d != Len %d", got, n)
	}
	perPred := 0
	for p := 0; p < 7; p++ {
		perPred += len(st.Match(rdf.Triple{P: rdf.NewIRI(fmt.Sprintf("kb:p%d", p))}))
	}
	if perPred != n {
		t.Errorf("per-predicate sum %d != Len %d", perPred, n)
	}
}

// TestBatchSequentialDeterminism: inserting the same triples via AddBatch
// must yield a store observationally identical to per-triple Add — same
// FactIDs, same results in the same order for every query shape.
func TestBatchSequentialDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	names := []string{"a", "b", "c", "d", "e", "f", "g"}
	var triples []rdf.Triple
	for i := 0; i < 500; i++ {
		triples = append(triples, rdf.T(
			names[r.Intn(len(names))],
			names[r.Intn(len(names))],
			names[r.Intn(len(names))],
		))
	}
	seq := NewStore()
	var seqIDs []FactID
	for _, tr := range triples {
		seqIDs = append(seqIDs, seq.Add(tr))
	}
	bat := NewStore()
	var batIDs []FactID
	for i := 0; i < len(triples); i += 64 {
		end := i + 64
		if end > len(triples) {
			end = len(triples)
		}
		batIDs = append(batIDs, bat.AddBatch(triples[i:end])...)
	}
	if !reflect.DeepEqual(seqIDs, batIDs) {
		t.Fatal("batch insertion assigned different FactIDs than sequential")
	}
	if !reflect.DeepEqual(seq.All(), bat.All()) {
		t.Fatal("All() differs between batch and sequential insertion")
	}
	pos := func(i int) rdf.Term {
		if i < 0 {
			return rdf.Term{}
		}
		return rdf.NewIRI(names[i])
	}
	for s := -1; s < len(names); s++ {
		for p := -1; p < len(names); p++ {
			for o := -1; o < len(names); o++ {
				pat := rdf.Triple{S: pos(s), P: pos(p), O: pos(o)}
				if !reflect.DeepEqual(seq.Match(pat), bat.Match(pat)) {
					t.Fatalf("Match(%v) differs between batch and sequential", pat)
				}
			}
		}
	}
	q := []Pattern{
		{S: PVar("x"), P: PIRI("b"), O: PVar("y")},
		{S: PVar("y"), P: PIRI("c"), O: PVar("z")},
	}
	qa, qb := seq.Query(q), bat.Query(q)
	SortBindings(qa, "x", "y", "z")
	SortBindings(qb, "x", "y", "z")
	if !reflect.DeepEqual(qa, qb) {
		t.Fatal("Query results differ between batch and sequential insertion")
	}
}

func TestAddBatchDedupAndIDs(t *testing.T) {
	st := NewStore()
	pre := st.Add(rdf.T("x", "p", "y"))
	ids := st.AddBatch([]rdf.Triple{
		rdf.T("a", "p", "b"),
		rdf.T("x", "p", "y"), // duplicate of pre-existing fact
		rdf.T("a", "p", "b"), // duplicate within batch
		rdf.T("c", "p", "d"),
	})
	if len(ids) != 4 {
		t.Fatalf("got %d ids", len(ids))
	}
	if ids[1] != pre {
		t.Errorf("cross-store duplicate got id %d, want %d", ids[1], pre)
	}
	if ids[0] != ids[2] {
		t.Errorf("in-batch duplicate got ids %d and %d", ids[0], ids[2])
	}
	if st.Len() != 3 {
		t.Errorf("Len = %d, want 3", st.Len())
	}
	if st.AddBatch(nil) != nil {
		t.Error("empty batch should return nil")
	}
}

func TestAddBatchMeta(t *testing.T) {
	st := NewStore()
	ts := []rdf.Triple{rdf.T("a", "p", "b"), rdf.T("b", "p", "c")}
	infos := []FactInfo{
		{Confidence: 0.7, Source: "doc1"},
		{Confidence: 0.4, Source: "doc2", Time: Interval{Begin: 10, End: 20}},
	}
	ids := st.AddBatchMeta(ts, infos)
	got0, _ := st.Info(ids[0])
	if got0.Confidence != 0.7 || got0.Source != "doc1" || got0.Time != Always {
		t.Errorf("info[0] = %+v", got0)
	}
	got1, _ := st.Info(ids[1])
	if got1.Confidence != 0.4 || got1.Time != (Interval{Begin: 10, End: 20}) {
		t.Errorf("info[1] = %+v", got1)
	}
	// Re-asserting with metadata overwrites, like SetInfo.
	st.AddBatchMeta(ts[:1], []FactInfo{{Confidence: 0.9, Source: "doc3"}})
	got0, _ = st.Info(ids[0])
	if got0.Confidence != 0.9 || got0.Source != "doc3" {
		t.Errorf("info[0] after overwrite = %+v", got0)
	}
	// Mutating the caller's infos slice afterwards must not leak into the
	// store (metadata is copied).
	infos[1].Confidence = 0.99
	got1, _ = st.Info(ids[1])
	if got1.Confidence != 0.4 {
		t.Errorf("stored metadata aliases caller slice: %+v", got1)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	st.AddBatchMeta(ts, infos[:1])
}