package core

import (
	"bufio"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"kbharvest/internal/rdf"
)

// Snapshot persistence. The format is N-Triples for the facts plus "#!meta"
// comment lines carrying per-fact metadata, so a snapshot is simultaneously
// a valid N-Triples document (other tools can read it, ignoring comments)
// and a lossless dump of the store.
//
// Layout:
//
//	#!kbsnap 3
//	<s> <p> <o> .
//	#!meta <conf> <begin> <end> <source...>
//	#!kbcrc <crc32-hex> <fact-count>
//
// A meta line applies to the immediately preceding fact line. The
// "#!kbsnap" header carries the format version: version >= 2 means meta
// sources are escaped (escapeMetaSource; Load unescapes only then, so
// legacy snapshots written before escaping existed load their sources —
// backslash sequences included — verbatim), and version >= 3 means the
// snapshot ends in a mandatory "#!kbcrc" trailer: a CRC32 (IEEE) over
// every preceding line (normalized to "\n" endings) plus the fact
// count. Load verifies the trailer, so a torn write — a crash mid-save,
// a truncated copy, a flipped bit — is a loud integrity error instead of
// a silently short KB. Trailer-less version <= 2 snapshots still load.

// snapshotVersion is the format version Save writes; see the layout
// comment for what each version guarantees.
const snapshotVersion = 3

// snapshotHeader marks a snapshot written by the current writer.
const snapshotHeader = "#!kbsnap 3"

// crcPrefix starts the integrity trailer line.
const crcPrefix = "#!kbcrc "

// Save writes the store to w. Facts appear in insertion order. The fact
// list and metadata are captured in one consistent view before
// serialization, so concurrent writers cannot tear a snapshot.
func (st *Store) Save(w io.Writer) error {
	return st.SaveShards([]io.Writer{w}, nil)
}

// SaveShards writes the store hash-partitioned across len(ws) snapshot
// files: each fact (and its meta line) goes to ws[shardOf(triple)], and
// every shard carries the version header, so each output is itself a
// complete, loadable snapshot of its partition. A nil shardOf (only
// sensible with one writer) routes everything to ws[0]. Like Save, the
// fact list is captured in one consistent view before serialization.
func (st *Store) SaveShards(ws []io.Writer, shardOf func(rdf.Triple) int) error {
	if len(ws) == 0 {
		return fmt.Errorf("core: save: no shard writers")
	}
	_, ets, infos := st.log.snapshot()
	bws := make([]*bufio.Writer, len(ws))
	crcs := make([]hash.Hash32, len(ws))
	counts := make([]int, len(ws))
	for i, w := range ws {
		// Everything before the trailer flows through the CRC as it is
		// written, so the trailer certifies exactly the bytes on disk.
		crcs[i] = crc32.NewIEEE()
		bws[i] = bufio.NewWriter(io.MultiWriter(w, crcs[i]))
		if _, err := bws[i].WriteString(snapshotHeader + "\n"); err != nil {
			return fmt.Errorf("core: save: %w", err)
		}
	}
	for i, et := range ets {
		t := st.decode(et)
		shard := 0
		if shardOf != nil {
			shard = shardOf(t)
			if shard < 0 || shard >= len(ws) {
				return fmt.Errorf("core: save: shard function returned %d for %d writers", shard, len(ws))
			}
		}
		bw := bws[shard]
		counts[shard]++
		if _, err := bw.WriteString(t.String()); err != nil {
			return fmt.Errorf("core: save: %w", err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("core: save: %w", err)
		}
		if m := infos[i]; m != nil {
			line := fmt.Sprintf("#!meta %g %d %d %s\n", m.Confidence, m.Time.Begin, m.Time.End, escapeMetaSource(m.Source))
			if _, err := bw.WriteString(line); err != nil {
				return fmt.Errorf("core: save: %w", err)
			}
		}
	}
	for i, bw := range bws {
		if err := bw.Flush(); err != nil {
			return fmt.Errorf("core: save: %w", err)
		}
		// The trailer itself bypasses the CRC writer: it certifies the
		// content, it is not part of it.
		trailer := fmt.Sprintf("%s%08x %d\n", crcPrefix, crcs[i].Sum32(), counts[i])
		if _, err := io.WriteString(ws[i], trailer); err != nil {
			return fmt.Errorf("core: save: %w", err)
		}
	}
	return nil
}

// SaveFile writes the snapshot crash-safely: to a temp file in the
// target directory, synced, then atomically renamed over path, so a
// crash mid-save leaves either the old snapshot or the new one — never a
// torn file.
func (st *Store) SaveFile(path string) error {
	return st.SaveShardFiles([]string{path}, nil)
}

// SaveShardFiles is SaveShards onto named files with crash safety: each
// shard is written to a temp file beside its target, fsynced, and
// atomically renamed into place only after a successful write. On error
// the temp files are removed and every target keeps its previous
// contents.
func (st *Store) SaveShardFiles(paths []string, shardOf func(rdf.Triple) int) (err error) {
	tmps := make([]*os.File, 0, len(paths))
	defer func() {
		if err != nil {
			for _, f := range tmps {
				f.Close()
				os.Remove(f.Name())
			}
		}
	}()
	ws := make([]io.Writer, len(paths))
	for i, p := range paths {
		f, ferr := os.CreateTemp(filepath.Dir(p), filepath.Base(p)+".tmp*")
		if ferr != nil {
			return fmt.Errorf("core: save: %w", ferr)
		}
		tmps = append(tmps, f)
		ws[i] = f
	}
	if err = st.SaveShards(ws, shardOf); err != nil {
		return err
	}
	for i, f := range tmps {
		if err = f.Sync(); err != nil {
			return fmt.Errorf("core: save: sync %s: %w", f.Name(), err)
		}
		if err = f.Close(); err != nil {
			return fmt.Errorf("core: save: close %s: %w", f.Name(), err)
		}
		if err = os.Rename(f.Name(), paths[i]); err != nil {
			return fmt.Errorf("core: save: %w", err)
		}
	}
	tmps = nil // every rename landed; nothing to clean up
	return nil
}

// loadBatchSize bounds how many parsed facts Load buffers before flushing
// them through the batch write path.
const loadBatchSize = 4096

// Load reads a snapshot produced by Save into an empty-or-existing store.
// Facts are asserted through the batch write path in chunks of
// loadBatchSize. It returns the number of facts loaded.
//
// Snapshots with a version >= 3 header must end in a valid "#!kbcrc"
// trailer; a missing trailer (truncated file), a CRC mismatch (corrupted
// bytes), or a fact-count mismatch fails the load, so a torn snapshot
// can never silently serve as a short KB. Older snapshots have no
// trailer and load as before.
func (st *Store) Load(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	n := 0
	lineNo := 0
	escaped := false     // header version >= 2: meta sources are escaped
	crcRequired := false // header version >= 3: trailer must be present
	sawTrailer := false
	// The running CRC hashes each content line normalized to a "\n"
	// ending — exactly the bytes SaveShards wrote (it never emits \r),
	// while staying robust to CRLF translation in transit.
	crc := crc32.NewIEEE()
	var (
		pending []rdf.Triple
		infos   []*FactInfo
	)
	flush := func() {
		if len(pending) > 0 {
			st.addBatch(pending, infos)
			pending = pending[:0]
			infos = infos[:0]
		}
	}
	for sc.Scan() {
		lineNo++
		// Trim only line-ending characters: the scanner already stripped
		// the \n, so only a \r (CRLF files) can remain. Interior and
		// trailing spaces/tabs must survive — escapeMetaSource wrote meta
		// sources byte-faithfully, and a TrimSpace here would silently
		// mangle a source with trailing whitespace on reload.
		line := strings.TrimRight(sc.Text(), "\r")
		// Classify on a left-trimmed view so hand-indented comment and
		// meta lines still parse, without disturbing the trailing bytes.
		ltrim := strings.TrimLeft(line, " \t")
		if strings.HasPrefix(ltrim, crcPrefix) {
			if sawTrailer {
				return n, fmt.Errorf("core: load: line %d: duplicate %strailer", lineNo, crcPrefix)
			}
			if err := verifyCRCTrailer(ltrim, crc.Sum32(), n); err != nil {
				return n, fmt.Errorf("core: load: line %d: %w", lineNo, err)
			}
			sawTrailer = true
			continue
		}
		if sawTrailer && strings.TrimSpace(ltrim) != "" {
			return n, fmt.Errorf("core: load: line %d: content after %strailer", lineNo, crcPrefix)
		}
		crc.Write([]byte(line))
		crc.Write([]byte{'\n'})
		switch {
		case strings.TrimSpace(ltrim) == "":
			continue
		case strings.HasPrefix(ltrim, "#!kbsnap"):
			escaped = true
			if v, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(ltrim, "#!kbsnap"))); err == nil && v >= 3 {
				crcRequired = true
			}
			continue
		case strings.HasPrefix(ltrim, "#!meta "):
			if len(pending) == 0 {
				return n, fmt.Errorf("core: load: line %d: meta without preceding fact", lineNo)
			}
			info, err := parseMetaLine(ltrim, escaped)
			if err != nil {
				return n, fmt.Errorf("core: load: line %d: %w", lineNo, err)
			}
			infos[len(infos)-1] = &info
		case strings.HasPrefix(ltrim, "#"):
			continue
		default:
			t, err := rdf.ParseTriple(strings.TrimSpace(line))
			if err != nil {
				return n, fmt.Errorf("core: load: line %d: %w", lineNo, err)
			}
			pending = append(pending, t)
			infos = append(infos, nil)
			n++
			if len(pending) >= loadBatchSize {
				// Flush only up to the last fact so a following meta
				// line can still attach to it.
				keepT, keepI := pending[len(pending)-1], infos[len(infos)-1]
				pending = pending[:len(pending)-1]
				infos = infos[:len(infos)-1]
				flush()
				pending = append(pending, keepT)
				infos = append(infos, keepI)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return n, fmt.Errorf("core: load: %w", err)
	}
	if crcRequired && !sawTrailer {
		return n, fmt.Errorf("core: load: truncated snapshot: missing %strailer after %d facts", crcPrefix, n)
	}
	flush()
	return n, nil
}

// verifyCRCTrailer checks one "#!kbcrc <hex> <count>" line against the
// running CRC and fact count.
func verifyCRCTrailer(line string, gotCRC uint32, gotFacts int) error {
	fields := strings.Fields(strings.TrimPrefix(line, crcPrefix))
	if len(fields) != 2 {
		return fmt.Errorf("malformed %strailer %q", crcPrefix, line)
	}
	wantCRC, err := strconv.ParseUint(fields[0], 16, 32)
	if err != nil {
		return fmt.Errorf("%strailer crc: %w", crcPrefix, err)
	}
	wantFacts, err := strconv.Atoi(fields[1])
	if err != nil {
		return fmt.Errorf("%strailer count: %w", crcPrefix, err)
	}
	if uint32(wantCRC) != gotCRC {
		return fmt.Errorf("snapshot corrupt: crc %08x, trailer says %08x", gotCRC, uint32(wantCRC))
	}
	if wantFacts != gotFacts {
		return fmt.Errorf("snapshot corrupt: %d facts, trailer says %d", gotFacts, wantFacts)
	}
	return nil
}

// parseMetaLine decodes one "#!meta" line. escaped reports whether the
// snapshot carries the version header, i.e. its sources were written by
// escapeMetaSource and must be unescaped; legacy sources load verbatim.
func parseMetaLine(line string, escaped bool) (FactInfo, error) {
	fields := strings.SplitN(strings.TrimPrefix(line, "#!meta "), " ", 4)
	if len(fields) < 3 {
		return FactInfo{}, fmt.Errorf("malformed meta line %q", line)
	}
	conf, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return FactInfo{}, fmt.Errorf("confidence: %w", err)
	}
	begin, err := strconv.Atoi(fields[1])
	if err != nil {
		return FactInfo{}, fmt.Errorf("begin: %w", err)
	}
	end, err := strconv.Atoi(fields[2])
	if err != nil {
		return FactInfo{}, fmt.Errorf("end: %w", err)
	}
	src := ""
	if len(fields) == 4 {
		src = fields[3]
		if escaped {
			src = unescapeMetaSource(src)
		}
	}
	return FactInfo{Confidence: conf, Source: src, Time: Interval{begin, end}}, nil
}

// escapeMetaSource makes a FactInfo.Source safe to embed in a single
// "#!meta" line: backslashes and line breaks — which would otherwise split
// the meta line and corrupt the snapshot for Load — are escaped so the
// line-oriented format round-trips any source string.
func escapeMetaSource(s string) string {
	if !strings.ContainsAny(s, "\\\n\r") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// unescapeMetaSource inverts escapeMetaSource. It is only applied to
// snapshots carrying the version header (see parseMetaLine): escaping
// writers always escape backslashes, so within a versioned snapshot every
// `\n`, `\r` and `\\` sequence is an escape, and unknown sequences (which
// an escaping writer never emits) pass through verbatim.
func unescapeMetaSource(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			case 'r':
				b.WriteByte('\r')
				i++
				continue
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			}
		}
		b.WriteByte(c)
	}
	return b.String()
}
