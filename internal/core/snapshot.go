package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"kbharvest/internal/rdf"
)

// Snapshot persistence. The format is N-Triples for the facts plus "#!meta"
// comment lines carrying per-fact metadata, so a snapshot is simultaneously
// a valid N-Triples document (other tools can read it, ignoring comments)
// and a lossless dump of the store.
//
// Layout:
//
//	#!kbsnap 2
//	<s> <p> <o> .
//	#!meta <conf> <begin> <end> <source...>
//
// A meta line applies to the immediately preceding fact line. The
// "#!kbsnap" header identifies a snapshot whose meta sources are escaped
// (escapeMetaSource); Load unescapes only when it has seen the header, so
// legacy snapshots written before escaping existed load their sources —
// backslash sequences included — verbatim.

// snapshotHeader marks a snapshot written by the escaping writer. Format
// version 2 = meta-source escaping; version 1 (no header) wrote sources
// verbatim.
const snapshotHeader = "#!kbsnap 2"

// Save writes the store to w. Facts appear in insertion order. The fact
// list and metadata are captured in one consistent view before
// serialization, so concurrent writers cannot tear a snapshot.
func (st *Store) Save(w io.Writer) error {
	return st.SaveShards([]io.Writer{w}, nil)
}

// SaveShards writes the store hash-partitioned across len(ws) snapshot
// files: each fact (and its meta line) goes to ws[shardOf(triple)], and
// every shard carries the version header, so each output is itself a
// complete, loadable snapshot of its partition. A nil shardOf (only
// sensible with one writer) routes everything to ws[0]. Like Save, the
// fact list is captured in one consistent view before serialization.
func (st *Store) SaveShards(ws []io.Writer, shardOf func(rdf.Triple) int) error {
	if len(ws) == 0 {
		return fmt.Errorf("core: save: no shard writers")
	}
	_, ets, infos := st.log.snapshot()
	bws := make([]*bufio.Writer, len(ws))
	for i, w := range ws {
		bws[i] = bufio.NewWriter(w)
		if _, err := bws[i].WriteString(snapshotHeader + "\n"); err != nil {
			return fmt.Errorf("core: save: %w", err)
		}
	}
	for i, et := range ets {
		t := st.decode(et)
		shard := 0
		if shardOf != nil {
			shard = shardOf(t)
			if shard < 0 || shard >= len(ws) {
				return fmt.Errorf("core: save: shard function returned %d for %d writers", shard, len(ws))
			}
		}
		bw := bws[shard]
		if _, err := bw.WriteString(t.String()); err != nil {
			return fmt.Errorf("core: save: %w", err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("core: save: %w", err)
		}
		if m := infos[i]; m != nil {
			line := fmt.Sprintf("#!meta %g %d %d %s\n", m.Confidence, m.Time.Begin, m.Time.End, escapeMetaSource(m.Source))
			if _, err := bw.WriteString(line); err != nil {
				return fmt.Errorf("core: save: %w", err)
			}
		}
	}
	for _, bw := range bws {
		if err := bw.Flush(); err != nil {
			return fmt.Errorf("core: save: %w", err)
		}
	}
	return nil
}

// loadBatchSize bounds how many parsed facts Load buffers before flushing
// them through the batch write path.
const loadBatchSize = 4096

// Load reads a snapshot produced by Save into an empty-or-existing store.
// Facts are asserted through the batch write path in chunks of
// loadBatchSize. It returns the number of facts loaded.
func (st *Store) Load(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	n := 0
	lineNo := 0
	escaped := false // saw snapshotHeader: meta sources are escaped
	var (
		pending []rdf.Triple
		infos   []*FactInfo
	)
	flush := func() {
		if len(pending) > 0 {
			st.addBatch(pending, infos)
			pending = pending[:0]
			infos = infos[:0]
		}
	}
	for sc.Scan() {
		lineNo++
		// Trim only line-ending characters: the scanner already stripped
		// the \n, so only a \r (CRLF files) can remain. Interior and
		// trailing spaces/tabs must survive — escapeMetaSource wrote meta
		// sources byte-faithfully, and a TrimSpace here would silently
		// mangle a source with trailing whitespace on reload.
		line := strings.TrimRight(sc.Text(), "\r")
		// Classify on a left-trimmed view so hand-indented comment and
		// meta lines still parse, without disturbing the trailing bytes.
		ltrim := strings.TrimLeft(line, " \t")
		switch {
		case strings.TrimSpace(ltrim) == "":
			continue
		case strings.HasPrefix(ltrim, "#!kbsnap"):
			escaped = true
			continue
		case strings.HasPrefix(ltrim, "#!meta "):
			if len(pending) == 0 {
				return n, fmt.Errorf("core: load: line %d: meta without preceding fact", lineNo)
			}
			info, err := parseMetaLine(ltrim, escaped)
			if err != nil {
				return n, fmt.Errorf("core: load: line %d: %w", lineNo, err)
			}
			infos[len(infos)-1] = &info
		case strings.HasPrefix(ltrim, "#"):
			continue
		default:
			t, err := rdf.ParseTriple(strings.TrimSpace(line))
			if err != nil {
				return n, fmt.Errorf("core: load: line %d: %w", lineNo, err)
			}
			pending = append(pending, t)
			infos = append(infos, nil)
			n++
			if len(pending) >= loadBatchSize {
				// Flush only up to the last fact so a following meta
				// line can still attach to it.
				keepT, keepI := pending[len(pending)-1], infos[len(infos)-1]
				pending = pending[:len(pending)-1]
				infos = infos[:len(infos)-1]
				flush()
				pending = append(pending, keepT)
				infos = append(infos, keepI)
			}
		}
	}
	flush()
	if err := sc.Err(); err != nil {
		return n, fmt.Errorf("core: load: %w", err)
	}
	return n, nil
}

// parseMetaLine decodes one "#!meta" line. escaped reports whether the
// snapshot carries the version header, i.e. its sources were written by
// escapeMetaSource and must be unescaped; legacy sources load verbatim.
func parseMetaLine(line string, escaped bool) (FactInfo, error) {
	fields := strings.SplitN(strings.TrimPrefix(line, "#!meta "), " ", 4)
	if len(fields) < 3 {
		return FactInfo{}, fmt.Errorf("malformed meta line %q", line)
	}
	conf, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return FactInfo{}, fmt.Errorf("confidence: %w", err)
	}
	begin, err := strconv.Atoi(fields[1])
	if err != nil {
		return FactInfo{}, fmt.Errorf("begin: %w", err)
	}
	end, err := strconv.Atoi(fields[2])
	if err != nil {
		return FactInfo{}, fmt.Errorf("end: %w", err)
	}
	src := ""
	if len(fields) == 4 {
		src = fields[3]
		if escaped {
			src = unescapeMetaSource(src)
		}
	}
	return FactInfo{Confidence: conf, Source: src, Time: Interval{begin, end}}, nil
}

// escapeMetaSource makes a FactInfo.Source safe to embed in a single
// "#!meta" line: backslashes and line breaks — which would otherwise split
// the meta line and corrupt the snapshot for Load — are escaped so the
// line-oriented format round-trips any source string.
func escapeMetaSource(s string) string {
	if !strings.ContainsAny(s, "\\\n\r") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// unescapeMetaSource inverts escapeMetaSource. It is only applied to
// snapshots carrying the version header (see parseMetaLine): escaping
// writers always escape backslashes, so within a versioned snapshot every
// `\n`, `\r` and `\\` sequence is an escape, and unknown sequences (which
// an escaping writer never emits) pass through verbatim.
func unescapeMetaSource(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			case 'r':
				b.WriteByte('\r')
				i++
				continue
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			}
		}
		b.WriteByte(c)
	}
	return b.String()
}
