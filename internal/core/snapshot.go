package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"kbharvest/internal/rdf"
)

// Snapshot persistence. The format is N-Triples for the facts plus "#!meta"
// comment lines carrying per-fact metadata, so a snapshot is simultaneously
// a valid N-Triples document (other tools can read it, ignoring comments)
// and a lossless dump of the store.
//
// Layout:
//
//	<s> <p> <o> .
//	#!meta <conf> <begin> <end> <source...>
//
// A meta line applies to the immediately preceding fact line.

// Save writes the store to w. Facts appear in insertion order.
func (st *Store) Save(w io.Writer) error {
	st.mu.RLock()
	defer st.mu.RUnlock()
	bw := bufio.NewWriter(w)
	for id, et := range st.triples {
		if st.dead[id] {
			continue
		}
		if _, err := bw.WriteString(st.decode(et).String()); err != nil {
			return fmt.Errorf("core: save: %w", err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("core: save: %w", err)
		}
		if m, ok := st.meta[FactID(id)]; ok {
			line := fmt.Sprintf("#!meta %g %d %d %s\n", m.Confidence, m.Time.Begin, m.Time.End, m.Source)
			if _, err := bw.WriteString(line); err != nil {
				return fmt.Errorf("core: save: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	return nil
}

// Load reads a snapshot produced by Save into an empty-or-existing store.
// It returns the number of facts loaded.
func (st *Store) Load(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	n := 0
	lineNo := 0
	last := NoFact
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "#!meta "):
			if last == NoFact {
				return n, fmt.Errorf("core: load: line %d: meta without preceding fact", lineNo)
			}
			info, err := parseMetaLine(line)
			if err != nil {
				return n, fmt.Errorf("core: load: line %d: %w", lineNo, err)
			}
			st.SetInfo(last, info)
		case strings.HasPrefix(line, "#"):
			continue
		default:
			t, err := rdf.ParseTriple(line)
			if err != nil {
				return n, fmt.Errorf("core: load: line %d: %w", lineNo, err)
			}
			last = st.Add(t)
			n++
		}
	}
	if err := sc.Err(); err != nil {
		return n, fmt.Errorf("core: load: %w", err)
	}
	return n, nil
}

func parseMetaLine(line string) (FactInfo, error) {
	fields := strings.SplitN(strings.TrimPrefix(line, "#!meta "), " ", 4)
	if len(fields) < 3 {
		return FactInfo{}, fmt.Errorf("malformed meta line %q", line)
	}
	conf, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return FactInfo{}, fmt.Errorf("confidence: %w", err)
	}
	begin, err := strconv.Atoi(fields[1])
	if err != nil {
		return FactInfo{}, fmt.Errorf("begin: %w", err)
	}
	end, err := strconv.Atoi(fields[2])
	if err != nil {
		return FactInfo{}, fmt.Errorf("end: %w", err)
	}
	src := ""
	if len(fields) == 4 {
		src = fields[3]
	}
	return FactInfo{Confidence: conf, Source: src, Time: Interval{begin, end}}, nil
}
