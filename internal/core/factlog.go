package core

import "sync"

// The fact-log layer: the append-only list of encoded triples, tombstones,
// the exact-match (dedup) index, and per-fact metadata. FactIDs are dense
// log positions. The log's critical sections are short — one map probe and
// two appends — and the batch path amortizes the lock over a whole batch,
// assigning FactIDs in input order (which is what makes batch and
// sequential insertion of the same triples observationally identical).

type factLog struct {
	mu      sync.RWMutex
	triples []encTriple // FactID -> triple
	dead    []bool      // FactID -> tombstone
	index   map[encTriple]FactID
	meta    map[FactID]*FactInfo
	live    int
}

func newFactLog() *factLog {
	return &factLog{
		index: make(map[encTriple]FactID),
		meta:  make(map[FactID]*FactInfo),
	}
}

// add appends one triple, reporting its FactID and whether it is new (a
// live duplicate reuses its existing ID).
func (l *factLog) add(et encTriple) (FactID, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.addLocked(et)
}

func (l *factLog) addLocked(et encTriple) (FactID, bool) {
	if id, ok := l.index[et]; ok && !l.dead[id] {
		return id, false
	}
	id := FactID(len(l.triples))
	l.triples = append(l.triples, et)
	l.dead = append(l.dead, false)
	l.index[et] = id
	l.live++
	return id, true
}

// addBatch appends every triple under one lock acquisition, filling ids
// and fresh (parallel slices). infos, when non-nil, carries per-fact
// metadata applied in the same critical section; a nil entry leaves the
// fact's metadata untouched.
func (l *factLog) addBatch(ets []encTriple, ids []FactID, fresh []bool, infos []*FactInfo) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, et := range ets {
		id, isNew := l.addLocked(et)
		ids[i] = id
		if fresh != nil {
			fresh[i] = isNew
		}
		if infos != nil && infos[i] != nil {
			cp := *infos[i]
			if cp.Time == (Interval{}) {
				cp.Time = Always
			}
			l.meta[id] = &cp
		}
	}
}

// remove tombstones the live fact for et, reporting whether one existed.
func (l *factLog) remove(et encTriple) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	id, ok := l.index[et]
	if !ok || l.dead[id] {
		return false
	}
	l.killLocked(id)
	return true
}

// removeFact tombstones a fact by ID, returning its triple so the caller
// can bump the index generations that covered it.
func (l *factLog) removeFact(id FactID) (encTriple, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if int(id) >= len(l.triples) || l.dead[id] {
		return encTriple{}, false
	}
	l.killLocked(id)
	return l.triples[id], true
}

func (l *factLog) killLocked(id FactID) {
	l.dead[id] = true
	delete(l.meta, id)
	l.live--
}

// factOf resolves a live triple to its FactID.
func (l *factLog) factOf(et encTriple) (FactID, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	id, ok := l.index[et]
	if !ok || l.dead[id] {
		return NoFact, false
	}
	return id, true
}

// get returns the triple of a live fact.
func (l *factLog) get(id FactID) (encTriple, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if int(id) >= len(l.triples) || l.dead[id] {
		return encTriple{}, false
	}
	return l.triples[id], true
}

// resolve filters candidate IDs down to live facts and fetches their
// triples under one read lock, also returning the tombstoned IDs it
// skipped (nil when none) so callers can compact the posting they came
// from. ids must be sorted if callers rely on deterministic output order;
// the live result aliases ids' backing array.
func (l *factLog) resolve(ids []FactID) ([]FactID, []encTriple, []FactID) {
	live := ids[:0]
	ets := make([]encTriple, 0, len(ids))
	var dead []FactID
	l.mu.RLock()
	for _, id := range ids {
		if int(id) < len(l.triples) && !l.dead[id] {
			live = append(live, id)
			ets = append(ets, l.triples[id])
		} else {
			dead = append(dead, id)
		}
	}
	l.mu.RUnlock()
	return live, ets, dead
}

// scan returns every live fact ID and triple in insertion order.
func (l *factLog) scan() ([]FactID, []encTriple) {
	l.mu.RLock()
	ids := make([]FactID, 0, l.live)
	ets := make([]encTriple, 0, l.live)
	for id, et := range l.triples {
		if !l.dead[id] {
			ids = append(ids, FactID(id))
			ets = append(ets, et)
		}
	}
	l.mu.RUnlock()
	return ids, ets
}

// snapshot returns every live fact in insertion order together with a
// copy of its explicit metadata (nil where none was set), under one read
// lock — the consistent view Save serializes.
func (l *factLog) snapshot() ([]FactID, []encTriple, []*FactInfo) {
	l.mu.RLock()
	ids := make([]FactID, 0, l.live)
	ets := make([]encTriple, 0, l.live)
	infos := make([]*FactInfo, 0, l.live)
	for id, et := range l.triples {
		if l.dead[id] {
			continue
		}
		ids = append(ids, FactID(id))
		ets = append(ets, et)
		if m, ok := l.meta[FactID(id)]; ok {
			cp := *m
			infos = append(infos, &cp)
		} else {
			infos = append(infos, nil)
		}
	}
	l.mu.RUnlock()
	return ids, ets, infos
}

func (l *factLog) len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.live
}

// setInfo replaces a live fact's metadata.
func (l *factLog) setInfo(id FactID, info FactInfo) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if int(id) >= len(l.triples) || l.dead[id] {
		return false
	}
	cp := info
	if cp.Time == (Interval{}) {
		cp.Time = Always
	}
	l.meta[id] = &cp
	return true
}

// info reads a live fact's metadata, defaulting to confidence 1 / Always.
func (l *factLog) info(id FactID) (FactInfo, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if int(id) >= len(l.triples) || l.dead[id] {
		return FactInfo{}, false
	}
	if m, ok := l.meta[id]; ok {
		return *m, true
	}
	return FactInfo{Confidence: 1, Time: Always}, true
}

// update mutates a live fact's metadata in place via fn, creating the
// entry from the given default if absent.
func (l *factLog) update(id FactID, def FactInfo, fn func(*FactInfo)) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if int(id) >= len(l.triples) || l.dead[id] {
		return false
	}
	m, ok := l.meta[id]
	if !ok {
		cp := def
		m = &cp
		l.meta[id] = m
	}
	fn(m)
	return true
}
