package core

import (
	"fmt"
	"testing"

	"kbharvest/internal/rdf"
)

// postingLen inspects the spo posting for (s, p) — test-only visibility
// into the index layer.
func (st *Store) postingLen(s, p string) int {
	sid, ok1 := st.dict.lookup(rdf.NewIRI(s))
	pid, ok2 := st.dict.lookup(rdf.NewIRI(p))
	if !ok1 || !ok2 {
		return 0
	}
	return st.spo.pairCount(sid, pid)
}

// Churn (remove + re-add) must not grow postings without bound: once a
// match resolves a majority-dead posting, the dead IDs are compacted away.
func TestPostingCompactionAfterChurn(t *testing.T) {
	st := NewStore()
	pat := rdf.Triple{S: rdf.NewIRI("kb:s"), P: rdf.NewIRI("kb:p")}
	for i := 0; i < 64; i++ {
		st.Add(rdf.T("kb:s", "kb:p", fmt.Sprintf("kb:o%d", i)))
	}
	for i := 0; i < 48; i++ {
		if !st.Remove(rdf.T("kb:s", "kb:p", fmt.Sprintf("kb:o%d", i))) {
			t.Fatalf("remove %d failed", i)
		}
	}
	if got := st.postingLen("kb:s", "kb:p"); got != 64 {
		t.Fatalf("pre-compaction posting length = %d, want 64 (tombstones pruned lazily)", got)
	}
	if got := len(st.Match(pat)); got != 16 {
		t.Fatalf("live matches = %d, want 16", got)
	}
	// The >50%-dead match above must have compacted the posting in place.
	if got := st.postingLen("kb:s", "kb:p"); got != 16 {
		t.Errorf("post-compaction posting length = %d, want 16", got)
	}
	// Query results are unchanged after compaction.
	if got := len(st.Match(pat)); got != 16 {
		t.Errorf("matches after compaction = %d, want 16", got)
	}
}

// Repeated remove + re-add cycles keep the posting bounded near the live
// set instead of growing by one dead ID per cycle.
func TestPostingBoundedUnderChurn(t *testing.T) {
	st := NewStore()
	for i := 0; i < 32; i++ {
		st.Add(rdf.T("kb:hub", "kb:p", fmt.Sprintf("kb:o%d", i)))
	}
	pat := rdf.Triple{S: rdf.NewIRI("kb:hub"), P: rdf.NewIRI("kb:p")}
	for cycle := 0; cycle < 50; cycle++ {
		for i := 0; i < 32; i++ {
			st.Remove(rdf.T("kb:hub", "kb:p", fmt.Sprintf("kb:o%d", i)))
			st.Add(rdf.T("kb:hub", "kb:p", fmt.Sprintf("kb:o%d", i)))
		}
		if got := len(st.Match(pat)); got != 32 {
			t.Fatalf("cycle %d: live matches = %d, want 32", cycle, got)
		}
	}
	// 50 cycles × 32 removals = 1600 tombstones flowed through; without
	// compaction the posting would hold them all.
	if got := st.postingLen("kb:hub", "kb:p"); got > 96 {
		t.Errorf("posting grew to %d IDs under churn, want <= 96", got)
	}
}

// Compaction of a lead (s ? ?) posting group.
func TestLeadPostingCompaction(t *testing.T) {
	st := NewStore()
	for i := 0; i < 40; i++ {
		st.Add(rdf.T("kb:x", fmt.Sprintf("kb:p%d", i%4), fmt.Sprintf("kb:o%d", i)))
	}
	for i := 0; i < 32; i++ {
		st.Remove(rdf.T("kb:x", fmt.Sprintf("kb:p%d", i%4), fmt.Sprintf("kb:o%d", i)))
	}
	pat := rdf.Triple{S: rdf.NewIRI("kb:x")}
	if got := len(st.Match(pat)); got != 8 {
		t.Fatalf("live lead matches = %d, want 8", got)
	}
	sid, _ := st.dict.lookup(rdf.NewIRI("kb:x"))
	if got := st.spo.leadCount(sid); got != 8 {
		t.Errorf("lead posting total = %d after compaction, want 8", got)
	}
}

// Generation counters: every insert and tombstone advances the pattern
// generation an affected pattern reads, and unrelated writes can advance
// it spuriously but never leave it stale.
func TestPatternGenAdvancesOnWrites(t *testing.T) {
	st := NewStore()
	st.Add(rdf.T("kb:a", "kb:p", "kb:b"))
	pat := rdf.Triple{P: rdf.NewIRI("kb:p")}
	g0 := st.PatternGen(pat)
	st.Add(rdf.T("kb:c", "kb:p", "kb:d"))
	g1 := st.PatternGen(pat)
	if g1 == g0 {
		t.Error("insert matching (? p ?) did not advance its pattern generation")
	}
	st.Remove(rdf.T("kb:a", "kb:p", "kb:b"))
	if g2 := st.PatternGen(pat); g2 == g1 {
		t.Error("tombstone matching (? p ?) did not advance its pattern generation")
	}
	// Unknown-term patterns fall back to the store-wide generation,
	// tagged so the fallback domain is disjoint from stripe generations.
	unk := rdf.Triple{P: rdf.NewIRI("kb:neverSeen")}
	gu := st.PatternGen(unk)
	if gu != st.WriteGen()|genFallbackTag {
		t.Errorf("unknown-term pattern gen = %d, want tagged WriteGen %d", gu, st.WriteGen()|genFallbackTag)
	}
	st.Add(rdf.T("kb:e", "kb:q", "kb:f"))
	if st.PatternGen(unk) == gu {
		t.Error("unknown-term pattern generation must advance on any write")
	}
}

// A pattern whose term is unknown reads the tagged store-wide fallback;
// once a write interns the term the pattern reads an untagged stripe
// generation. The two must never compare equal, even when the underlying
// counters coincide — otherwise a cache could validate a result computed
// before the term existed (e.g. writeGen=1 recorded for an unknown term,
// then the interning insert lands the term's stripe at generation 1).
func TestPatternGenFallbackDisjointFromStripeGen(t *testing.T) {
	st := NewStore()
	st.Add(rdf.T("kb:a", "kb:p", "kb:o")) // writeGen = 1
	pat := rdf.Triple{S: rdf.NewIRI("kb:b"), P: rdf.NewIRI("kb:p")}
	before := st.PatternGen(pat) // kb:b unknown: tagged fallback
	if before&genFallbackTag == 0 {
		t.Fatalf("unknown-term pattern gen %d is not tagged as fallback", before)
	}
	st.Add(rdf.T("kb:b", "kb:p", "kb:o2")) // interns kb:b on a fresh stripe
	after := st.PatternGen(pat)
	if after&genFallbackTag != 0 {
		t.Fatalf("interned pattern gen %d still tagged as fallback", after)
	}
	if after == before {
		t.Errorf("pattern gen unchanged (%d) across the write that interned its subject", after)
	}
}

func TestEstimateMatches(t *testing.T) {
	st := NewStore()
	for i := 0; i < 10; i++ {
		st.Add(rdf.T("kb:s", "kb:p", fmt.Sprintf("kb:o%d", i)))
	}
	st.Add(rdf.T("kb:s", "kb:q", "kb:o0"))
	if got := st.EstimateMatches(rdf.Triple{S: rdf.NewIRI("kb:s"), P: rdf.NewIRI("kb:p")}); got != 10 {
		t.Errorf("estimate (s p ?) = %d, want 10", got)
	}
	if got := st.EstimateMatches(rdf.Triple{S: rdf.NewIRI("kb:s")}); got != 11 {
		t.Errorf("estimate (s ? ?) = %d, want 11", got)
	}
	if got := st.EstimateMatches(rdf.Triple{}); got != 11 {
		t.Errorf("estimate (? ? ?) = %d, want 11", got)
	}
	if got := st.EstimateMatches(rdf.Triple{S: rdf.NewIRI("kb:unknown")}); got != 0 {
		t.Errorf("estimate of unknown subject = %d, want 0", got)
	}
}
