package core

import (
	"bytes"
	"testing"

	"kbharvest/internal/rdf"
)

func TestReifyFact(t *testing.T) {
	st := NewStore()
	id := st.Add(rdf.T("kb:alice", "kb:worksAt", "kb:acme"))
	st.SetInfo(id, FactInfo{Confidence: 0.8, Source: "patterns", Time: Interval{100, 200}})
	ts, err := st.ReifyFact(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 7 {
		t.Fatalf("reified triples = %d: %v", len(ts), ts)
	}
	byPred := map[string]rdf.Term{}
	for _, tr := range ts {
		if !tr.S.IsBlank() {
			t.Errorf("reified triple not rooted at blank node: %v", tr)
		}
		byPred[tr.P.Value] = tr.O
	}
	if byPred[ReifySubject].Value != "kb:alice" || byPred[ReifyObject].Value != "kb:acme" {
		t.Errorf("spo wrong: %v", byPred)
	}
	if byPred[ReifyConfidence].Value != "0.8" {
		t.Errorf("confidence = %v", byPred[ReifyConfidence])
	}
	if byPred[ReifyBegin].Value != "100" || byPred[ReifyEnd].Value != "200" {
		t.Errorf("interval = %v / %v", byPred[ReifyBegin], byPred[ReifyEnd])
	}
}

func TestReifyOmitsUnboundedAndEmpty(t *testing.T) {
	st := NewStore()
	id := st.Add(rdf.T("a", "p", "b")) // default meta: conf 1, Always, no source
	ts, err := st.ReifyFact(id)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range ts {
		switch tr.P.Value {
		case ReifyBegin, ReifyEnd, ReifySource:
			t.Errorf("unbounded/empty metadata should be omitted: %v", tr)
		}
	}
}

func TestReifyFactErrors(t *testing.T) {
	st := NewStore()
	if _, err := st.ReifyFact(FactID(7)); err == nil {
		t.Error("reifying a missing fact should fail")
	}
	id := st.Add(rdf.T("a", "p", "b"))
	st.RemoveFact(id)
	if _, err := st.ReifyFact(id); err == nil {
		t.Error("reifying a tombstoned fact should fail")
	}
}

func TestReifyRoundTrip(t *testing.T) {
	st := NewStore()
	id1 := st.Add(rdf.T("kb:a", "kb:worksAt", "kb:x"))
	st.SetInfo(id1, FactInfo{Confidence: 0.7, Source: "s1", Time: Interval{10, 20}})
	id2 := st.Add(rdf.Triple{S: rdf.NewIRI("kb:a"), P: rdf.NewIRI("kb:label"), O: rdf.NewLangLiteral("A", "en")})
	st.SetInfo(id2, FactInfo{Confidence: 0.9, Time: Always})

	reified := st.ReifyAll(rdf.Triple{})
	// Reified form survives N-Triples serialization.
	var buf bytes.Buffer
	if err := rdf.WriteAll(&buf, reified); err != nil {
		t.Fatal(err)
	}
	parsed, err := rdf.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}

	st2 := NewStore()
	loaded, incomplete := st2.LoadReified(parsed)
	if loaded != 2 || incomplete != 0 {
		t.Fatalf("loaded=%d incomplete=%d", loaded, incomplete)
	}
	gotID, ok := st2.FactOf(rdf.T("kb:a", "kb:worksAt", "kb:x"))
	if !ok {
		t.Fatal("fact lost in round trip")
	}
	info, _ := st2.Info(gotID)
	if info.Confidence != 0.7 || info.Source != "s1" || info.Time != (Interval{10, 20}) {
		t.Errorf("meta after round trip: %+v", info)
	}
	// Language-tagged literal object preserved.
	if !st2.Has(rdf.Triple{S: rdf.NewIRI("kb:a"), P: rdf.NewIRI("kb:label"), O: rdf.NewLangLiteral("A", "en")}) {
		t.Error("literal fact lost")
	}
}

func TestLoadReifiedIncompleteGroups(t *testing.T) {
	st := NewStore()
	triples := []rdf.Triple{
		{S: rdf.NewBlank("f1"), P: rdf.NewIRI(ReifySubject), O: rdf.NewIRI("a")},
		{S: rdf.NewBlank("f1"), P: rdf.NewIRI(ReifyPredicate), O: rdf.NewIRI("p")},
		// missing object
		{S: rdf.NewIRI("not-blank"), P: rdf.NewIRI(ReifySubject), O: rdf.NewIRI("x")},
	}
	loaded, incomplete := st.LoadReified(triples)
	if loaded != 0 || incomplete != 1 {
		t.Errorf("loaded=%d incomplete=%d", loaded, incomplete)
	}
}

func TestReifyAllPattern(t *testing.T) {
	st := NewStore()
	st.Add(rdf.T("a", "p", "b"))
	st.Add(rdf.T("a", "q", "c"))
	ts := st.ReifyAll(rdf.Triple{P: rdf.NewIRI("p")})
	// Only the p-fact reified: 4 triples (spo + confidence).
	if len(ts) != 4 {
		t.Errorf("reified %d triples, want 4: %v", len(ts), ts)
	}
}
