package core

import (
	"sort"

	"kbharvest/internal/rdf"
)

// Taxonomy operations over rdf:type and rdfs:subClassOf. Every entity in a
// KB belongs to one or more classes, organized into a subsumption taxonomy
// (§2 "Harvesting Knowledge on Entities and Classes"); these helpers give
// the store the class-reasoning primitives (transitive closure, inherited
// instance sets) that downstream modules rely on: type checking during
// consistency reasoning, class features in NED, and type signatures in
// rule mining.

// AddType asserts (entity rdf:type class).
func (st *Store) AddType(entity, class string) FactID {
	return st.Add(rdf.T(entity, rdf.RDFType, class))
}

// AddSubclass asserts (sub rdfs:subClassOf super).
func (st *Store) AddSubclass(sub, super string) FactID {
	return st.Add(rdf.T(sub, rdf.RDFSSubClassOf, super))
}

// DirectTypes returns the directly asserted classes of an entity.
func (st *Store) DirectTypes(entity string) []string {
	return iriValues(st.Objects(entity, rdf.RDFType))
}

// Types returns all classes of an entity, including those inherited
// through rdfs:subClassOf, in deterministic (sorted) order.
func (st *Store) Types(entity string) []string {
	seen := make(map[string]bool)
	var frontier []string
	for _, c := range st.DirectTypes(entity) {
		if !seen[c] {
			seen[c] = true
			frontier = append(frontier, c)
		}
	}
	for len(frontier) > 0 {
		c := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, super := range iriValues(st.Objects(c, rdf.RDFSSubClassOf)) {
			if !seen[super] {
				seen[super] = true
				frontier = append(frontier, super)
			}
		}
	}
	return sortedSet(seen)
}

// IsA reports whether entity is an instance of class, directly or through
// the subclass hierarchy.
func (st *Store) IsA(entity, class string) bool {
	for _, c := range st.Types(entity) {
		if c == class {
			return true
		}
	}
	return false
}

// Superclasses returns every (transitive) superclass of a class, excluding
// the class itself, in sorted order. Cycles are tolerated.
func (st *Store) Superclasses(class string) []string {
	seen := make(map[string]bool)
	frontier := []string{class}
	for len(frontier) > 0 {
		c := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, super := range iriValues(st.Objects(c, rdf.RDFSSubClassOf)) {
			if super != class && !seen[super] {
				seen[super] = true
				frontier = append(frontier, super)
			}
		}
	}
	return sortedSet(seen)
}

// Subclasses returns every (transitive) subclass of a class, excluding the
// class itself, in sorted order.
func (st *Store) Subclasses(class string) []string {
	seen := make(map[string]bool)
	frontier := []string{class}
	for len(frontier) > 0 {
		c := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, sub := range iriValues(st.Subjects(rdf.RDFSSubClassOf, c)) {
			if sub != class && !seen[sub] {
				seen[sub] = true
				frontier = append(frontier, sub)
			}
		}
	}
	return sortedSet(seen)
}

// DirectInstances returns entities directly typed with the class.
func (st *Store) DirectInstances(class string) []string {
	return iriValues(st.Subjects(rdf.RDFType, class))
}

// Instances returns all entities of a class, including instances of its
// transitive subclasses, in sorted order.
func (st *Store) Instances(class string) []string {
	seen := make(map[string]bool)
	classes := append([]string{class}, st.Subclasses(class)...)
	for _, c := range classes {
		for _, e := range st.DirectInstances(c) {
			seen[e] = true
		}
	}
	return sortedSet(seen)
}

// Classes returns every term that appears as a class (object of rdf:type
// or either side of rdfs:subClassOf), sorted.
func (st *Store) Classes() []string {
	seen := make(map[string]bool)
	st.MatchFunc(rdf.Triple{P: rdf.NewIRI(rdf.RDFType)}, func(_ FactID, t rdf.Triple) bool {
		if t.O.IsIRI() {
			seen[t.O.Value] = true
		}
		return true
	})
	st.MatchFunc(rdf.Triple{P: rdf.NewIRI(rdf.RDFSSubClassOf)}, func(_ FactID, t rdf.Triple) bool {
		if t.S.IsIRI() {
			seen[t.S.Value] = true
		}
		if t.O.IsIRI() {
			seen[t.O.Value] = true
		}
		return true
	})
	return sortedSet(seen)
}

// LowestCommonAncestors returns the most specific classes that subsume
// both a and b (considering each entity's full type set). Used as a
// semantic-relatedness signal.
func (st *Store) LowestCommonAncestors(a, b string) []string {
	ta := make(map[string]bool)
	for _, c := range st.Types(a) {
		ta[c] = true
	}
	common := make(map[string]bool)
	for _, c := range st.Types(b) {
		if ta[c] {
			common[c] = true
		}
	}
	// Drop any common class that has a common strict subclass.
	lowest := make(map[string]bool)
	for c := range common {
		isLowest := true
		for _, sub := range st.Subclasses(c) {
			if common[sub] {
				isLowest = false
				break
			}
		}
		if isLowest {
			lowest[c] = true
		}
	}
	return sortedSet(lowest)
}

func iriValues(ts []rdf.Term) []string {
	out := make([]string, 0, len(ts))
	for _, t := range ts {
		if t.IsIRI() {
			out = append(out, t.Value)
		}
	}
	return out
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
