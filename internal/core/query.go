package core

import (
	"fmt"
	"sort"
	"strings"

	"kbharvest/internal/rdf"
)

// A minimal conjunctive query engine in the spirit of SPARQL basic graph
// patterns. The tutorial's target applications — "deep question answering
// and semantic search and analytics over entities and relations" (§1) —
// reduce to evaluating small joins over the KB; this engine powers the
// deepqa example and the kbquery tool.

// Var is a query variable. Variables are written "?name".
type Var string

// Pattern is one triple pattern whose positions are either constants
// (rdf.Term) or variables (Var), encoded as strings starting with '?'.
type Pattern struct {
	S, P, O PatternTerm
}

// PatternTerm is one position of a Pattern: a constant or a variable.
type PatternTerm struct {
	Const rdf.Term
	Var   Var // non-empty means variable
}

// PVar returns a variable pattern term.
func PVar(name string) PatternTerm { return PatternTerm{Var: Var(name)} }

// PIRI returns a constant IRI pattern term.
func PIRI(iri string) PatternTerm { return PatternTerm{Const: rdf.NewIRI(iri)} }

// PTerm returns a constant pattern term.
func PTerm(t rdf.Term) PatternTerm { return PatternTerm{Const: t} }

// ParsePatternTerm parses "?x" as a variable, "<iri>" or a bare token as an
// IRI, and a double-quoted string as a plain literal.
func ParsePatternTerm(s string) (PatternTerm, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return PatternTerm{}, fmt.Errorf("core: empty pattern term")
	case strings.HasPrefix(s, "?"):
		if len(s) == 1 {
			return PatternTerm{}, fmt.Errorf("core: empty variable name")
		}
		return PVar(s[1:]), nil
	case strings.HasPrefix(s, "<") && strings.HasSuffix(s, ">"):
		return PIRI(s[1 : len(s)-1]), nil
	case strings.HasPrefix(s, `"`) && strings.HasSuffix(s, `"`) && len(s) >= 2:
		return PTerm(rdf.NewLiteral(s[1 : len(s)-1])), nil
	default:
		return PIRI(s), nil
	}
}

// ParsePattern parses a whitespace-separated "s p o" pattern line.
func ParsePattern(line string) (Pattern, error) {
	fields := strings.Fields(strings.TrimSuffix(strings.TrimSpace(line), " ."))
	// Literals may contain spaces; re-join quoted fields.
	fields = rejoinQuoted(fields)
	if len(fields) != 3 {
		return Pattern{}, fmt.Errorf("core: pattern needs 3 terms, got %d in %q", len(fields), line)
	}
	s, err := ParsePatternTerm(fields[0])
	if err != nil {
		return Pattern{}, err
	}
	p, err := ParsePatternTerm(fields[1])
	if err != nil {
		return Pattern{}, err
	}
	o, err := ParsePatternTerm(fields[2])
	if err != nil {
		return Pattern{}, err
	}
	return Pattern{S: s, P: p, O: o}, nil
}

func rejoinQuoted(fields []string) []string {
	var out []string
	for i := 0; i < len(fields); i++ {
		f := fields[i]
		if strings.HasPrefix(f, `"`) && !strings.HasSuffix(f, `"`) {
			j := i + 1
			for ; j < len(fields); j++ {
				f += " " + fields[j]
				if strings.HasSuffix(fields[j], `"`) {
					break
				}
			}
			i = j
		}
		out = append(out, f)
	}
	return out
}

// Binding maps variable names to terms.
type Binding map[Var]rdf.Term

func (b Binding) clone() Binding {
	c := make(Binding, len(b)+1)
	for k, v := range b {
		c[k] = v
	}
	return c
}

// Query evaluates a conjunction of patterns and returns all bindings.
// Patterns are greedily reordered so that the most selective (fewest
// unbound variables given current bindings) executes first.
func (st *Store) Query(patterns []Pattern) []Binding {
	results := []Binding{make(Binding)}
	remaining := append([]Pattern(nil), patterns...)
	for len(remaining) > 0 {
		// Pick the pattern with the fewest unbound variables under any
		// current binding (they all share the same bound-variable set
		// domain, so inspect the first).
		bestIdx, bestUnbound := 0, 4
		var probe Binding
		if len(results) > 0 {
			probe = results[0]
		}
		for i, p := range remaining {
			u := unboundCount(p, probe)
			if u < bestUnbound {
				bestUnbound, bestIdx = u, i
			}
		}
		p := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)

		var next []Binding
		for _, b := range results {
			st.matchPattern(p, b, func(nb Binding) {
				next = append(next, nb)
			})
		}
		results = next
		if len(results) == 0 {
			return nil
		}
	}
	return results
}

func unboundCount(p Pattern, b Binding) int {
	n := 0
	for _, pt := range []PatternTerm{p.S, p.P, p.O} {
		if pt.Var != "" {
			if _, ok := b[pt.Var]; !ok {
				n++
			}
		}
	}
	return n
}

func (st *Store) matchPattern(p Pattern, b Binding, emit func(Binding)) {
	resolve := func(pt PatternTerm) (rdf.Term, Var) {
		if pt.Var == "" {
			return pt.Const, ""
		}
		if t, ok := b[pt.Var]; ok {
			return t, ""
		}
		return rdf.Term{}, pt.Var
	}
	sc, sv := resolve(p.S)
	pc, pv := resolve(p.P)
	oc, ov := resolve(p.O)
	st.MatchFunc(rdf.Triple{S: sc, P: pc, O: oc}, func(_ FactID, t rdf.Triple) bool {
		nb := b.clone()
		if sv != "" {
			nb[sv] = t.S
		}
		if pv != "" {
			if sv == pv && nb[sv] != t.P {
				return true
			}
			nb[pv] = t.P
		}
		if ov != "" {
			if (sv == ov && nb[sv] != t.O) || (pv == ov && nb[pv] != t.O) {
				return true
			}
			nb[ov] = t.O
		}
		emit(nb)
		return true
	})
}

// QueryStrings evaluates patterns written as "s p o" lines (see
// ParsePattern) — the format the kbquery tool accepts.
func (st *Store) QueryStrings(lines []string) ([]Binding, error) {
	patterns := make([]Pattern, 0, len(lines))
	for _, l := range lines {
		p, err := ParsePattern(l)
		if err != nil {
			return nil, err
		}
		patterns = append(patterns, p)
	}
	return st.Query(patterns), nil
}

// SortBindings orders bindings deterministically by the given variables
// (useful for tests and stable tool output).
func SortBindings(bs []Binding, vars ...Var) {
	sort.Slice(bs, func(i, j int) bool {
		for _, v := range vars {
			if c := bs[i][v].Compare(bs[j][v]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}
