package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"kbharvest/internal/rdf"
)

// A minimal conjunctive query engine in the spirit of SPARQL basic graph
// patterns. The tutorial's target applications — "deep question answering
// and semantic search and analytics over entities and relations" (§1) —
// reduce to evaluating small joins over the KB; this engine powers the
// deepqa example and the kbquery tool.

// Var is a query variable. Variables are written "?name".
type Var string

// Pattern is one triple pattern whose positions are either constants
// (rdf.Term) or variables (Var), encoded as strings starting with '?'.
type Pattern struct {
	S, P, O PatternTerm
}

// PatternTerm is one position of a Pattern: a constant or a variable.
type PatternTerm struct {
	Const rdf.Term
	Var   Var // non-empty means variable
}

// PVar returns a variable pattern term.
func PVar(name string) PatternTerm { return PatternTerm{Var: Var(name)} }

// PIRI returns a constant IRI pattern term.
func PIRI(iri string) PatternTerm { return PatternTerm{Const: rdf.NewIRI(iri)} }

// PTerm returns a constant pattern term.
func PTerm(t rdf.Term) PatternTerm { return PatternTerm{Const: t} }

// ParsePatternTerm parses "?x" as a variable, "<iri>" or a bare token as an
// IRI, and a double-quoted string as a plain literal.
func ParsePatternTerm(s string) (PatternTerm, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return PatternTerm{}, fmt.Errorf("core: empty pattern term")
	case strings.HasPrefix(s, "?"):
		if len(s) == 1 {
			return PatternTerm{}, fmt.Errorf("core: empty variable name")
		}
		return PVar(s[1:]), nil
	case strings.HasPrefix(s, "<") && strings.HasSuffix(s, ">"):
		return PIRI(s[1 : len(s)-1]), nil
	case strings.HasPrefix(s, `"`) || strings.HasSuffix(s, `"`):
		// A term touching a double quote must be a complete literal;
		// a lone '"' or an unterminated `"abc` is a parse error, not an
		// IRI whose name happens to contain a quote. Full N-Triples
		// literal syntax is accepted (escapes, @lang, ^^<datatype>), so
		// a term serialized with rdf.Term.String round-trips through a
		// pattern — the property the scatter/gather wire protocol
		// (internal/shardkb) relies on when substituting bindings.
		if strings.HasPrefix(s, `"`) {
			if t, err := rdf.ParseTerm(s); err == nil && t.IsLiteral() {
				return PTerm(t), nil
			}
		}
		return PatternTerm{}, fmt.Errorf("core: unterminated or bare quote in literal %q", s)
	default:
		return PIRI(s), nil
	}
}

// ParsePattern parses a whitespace-separated "s p o" pattern line.
func ParsePattern(line string) (Pattern, error) {
	fields := strings.Fields(strings.TrimSuffix(strings.TrimSpace(line), " ."))
	// Literals may contain spaces; re-join quoted fields.
	fields = rejoinQuoted(fields)
	if len(fields) != 3 {
		return Pattern{}, fmt.Errorf("core: pattern needs 3 terms, got %d in %q", len(fields), line)
	}
	s, err := ParsePatternTerm(fields[0])
	if err != nil {
		return Pattern{}, err
	}
	p, err := ParsePatternTerm(fields[1])
	if err != nil {
		return Pattern{}, err
	}
	o, err := ParsePatternTerm(fields[2])
	if err != nil {
		return Pattern{}, err
	}
	return Pattern{S: s, P: p, O: o}, nil
}

func rejoinQuoted(fields []string) []string {
	var out []string
	for i := 0; i < len(fields); i++ {
		f := fields[i]
		if strings.HasPrefix(f, `"`) && !strings.HasSuffix(f, `"`) {
			j := i + 1
			for ; j < len(fields); j++ {
				f += " " + fields[j]
				if strings.HasSuffix(fields[j], `"`) {
					break
				}
			}
			i = j
		}
		out = append(out, f)
	}
	return out
}

// Binding maps variable names to terms.
type Binding map[Var]rdf.Term

func (b Binding) clone() Binding {
	c := make(Binding, len(b)+1)
	for k, v := range b {
		c[k] = v
	}
	return c
}

// Query evaluates a conjunction of patterns and returns all bindings.
// It is QueryFunc without streaming: no cancellation, no limit.
func (st *Store) Query(patterns []Pattern) []Binding {
	var out []Binding
	st.QueryFunc(context.Background(), patterns, 0, func(b Binding) bool {
		out = append(out, b)
		return true
	})
	return out
}

// QueryFunc streams the bindings of a conjunctive query to fn. It stops
// early when fn returns false, when limit bindings have been emitted
// (limit <= 0 means unlimited), or when ctx is cancelled — in which case
// the context's error is returned.
//
// Join order is cardinality-driven and chosen per branch: before each
// step the engine probes the index posting sizes every remaining pattern
// would read under the current binding (PatternEstimate) and executes the
// cheapest pattern next. A pattern that estimates to zero matches prunes
// its branch immediately — estimates are upper bounds — so constants the
// dictionary has never seen short-circuit the whole conjunction.
func (st *Store) QueryFunc(ctx context.Context, patterns []Pattern, limit int, fn func(Binding) bool) error {
	remaining := append([]Pattern(nil), patterns...)
	emitted := 0
	stopped := false
	var step func(b Binding, rest []Pattern) bool // false halts the traversal
	step = func(b Binding, rest []Pattern) bool {
		if ctx.Err() != nil {
			return false
		}
		if len(rest) == 0 {
			emitted++
			if !fn(b) {
				stopped = true
				return false
			}
			if limit > 0 && emitted >= limit {
				stopped = true
				return false
			}
			return true
		}
		best, bestCost := 0, int(^uint(0)>>1)
		for i, p := range rest {
			if c := st.PatternEstimate(p, b); c < bestCost {
				best, bestCost = i, c
			}
		}
		if bestCost == 0 {
			return true // some pattern cannot match under b: prune branch
		}
		// Swap the chosen pattern to the front and recurse on rest[1:];
		// restore afterwards so sibling branches see the original order.
		rest[0], rest[best] = rest[best], rest[0]
		ok := true
		st.matchPattern(rest[0], b, func(nb Binding) bool {
			ok = step(nb, rest[1:])
			return ok
		})
		rest[0], rest[best] = rest[best], rest[0]
		return ok
	}
	completed := step(make(Binding), remaining)
	// step returns false only when cut short: by fn/limit (stopped) or by
	// cancellation. A context expiring after the traversal already
	// completed must not discard the fully-computed result.
	if !completed && !stopped {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// PatternEstimate returns the planner's cost probe for one pattern: the
// index-cardinality upper bound on its matches under binding b. Variables
// bound in b count as constants, genuinely unbound variables as
// wildcards; tombstoned facts still sitting in postings are counted until
// compaction prunes them. A zero estimate is exact — the pattern cannot
// match.
func (st *Store) PatternEstimate(p Pattern, b Binding) int {
	var ids [3]ID
	for i, pt := range [3]PatternTerm{p.S, p.P, p.O} {
		t := pt.Const
		if pt.Var != "" {
			bt, ok := b[pt.Var]
			if !ok {
				continue // unbound variable: wildcard
			}
			t = bt
		} else if t.IsZero() {
			continue // explicit wildcard position
		}
		id, ok := st.dict.lookup(t)
		if !ok {
			return 0
		}
		ids[i] = id
	}
	return st.estimateEnc(ids[0], ids[1], ids[2])
}

// matchPattern streams the bindings extending b that satisfy p, stopping
// early when emit returns false.
func (st *Store) matchPattern(p Pattern, b Binding, emit func(Binding) bool) {
	resolve := func(pt PatternTerm) (rdf.Term, Var) {
		if pt.Var == "" {
			return pt.Const, ""
		}
		if t, ok := b[pt.Var]; ok {
			return t, ""
		}
		return rdf.Term{}, pt.Var
	}
	sc, sv := resolve(p.S)
	pc, pv := resolve(p.P)
	oc, ov := resolve(p.O)
	st.MatchFunc(rdf.Triple{S: sc, P: pc, O: oc}, func(_ FactID, t rdf.Triple) bool {
		nb := b.clone()
		if sv != "" {
			nb[sv] = t.S
		}
		if pv != "" {
			if sv == pv && nb[sv] != t.P {
				return true
			}
			nb[pv] = t.P
		}
		if ov != "" {
			if (sv == ov && nb[sv] != t.O) || (pv == ov && nb[pv] != t.O) {
				return true
			}
			nb[ov] = t.O
		}
		return emit(nb)
	})
}

// QueryStrings evaluates patterns written as "s p o" lines (see
// ParsePattern) — the format the kbquery tool accepts.
func (st *Store) QueryStrings(lines []string) ([]Binding, error) {
	patterns := make([]Pattern, 0, len(lines))
	for _, l := range lines {
		p, err := ParsePattern(l)
		if err != nil {
			return nil, err
		}
		patterns = append(patterns, p)
	}
	return st.Query(patterns), nil
}

// SortBindings orders bindings deterministically by the given variables
// (useful for tests and stable tool output).
func SortBindings(bs []Binding, vars ...Var) {
	sort.Slice(bs, func(i, j int) bool {
		for _, v := range vars {
			if c := bs[i][v].Compare(bs[j][v]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}
