package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"kbharvest/internal/core"
	"kbharvest/internal/rdf"
)

func testStore() *core.Store {
	st := core.NewStore()
	st.Add(rdf.T("kb:jobs", "kb:founded", "kb:apple"))
	st.Add(rdf.T("kb:wozniak", "kb:founded", "kb:apple"))
	st.Add(rdf.T("kb:gates", "kb:founded", "kb:microsoft"))
	st.Add(rdf.T("kb:apple", "kb:locatedIn", "kb:cupertino"))
	st.Add(rdf.T("kb:microsoft", "kb:locatedIn", "kb:redmond"))
	return st
}

func newTestServer(st *core.Store, timeout time.Duration) *Server {
	return NewServer(st, Options{Timeout: timeout})
}

func postJSON(t *testing.T, srv http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

func postQuery(t *testing.T, srv http.Handler, body string) (*httptest.ResponseRecorder, QueryResponse) {
	t.Helper()
	rec := postJSON(t, srv, "/query", body)
	var resp QueryResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad response %q: %v", rec.Body.String(), err)
		}
	}
	return rec, resp
}

func TestServerQueryJoin(t *testing.T) {
	srv := newTestServer(testStore(), time.Second)
	rec, resp := postQuery(t, srv, `{"patterns": ["?p kb:founded ?c", "?c kb:locatedIn ?city"]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Count != 3 || len(resp.Rows) != 3 {
		t.Fatalf("count = %d rows = %d, want 3", resp.Count, len(resp.Rows))
	}
	if resp.Cached {
		t.Error("first query reported cached")
	}
	if want := []string{"c", "city", "p"}; fmt.Sprint(resp.Vars) != fmt.Sprint(want) {
		t.Errorf("vars = %v, want %v", resp.Vars, want)
	}
	// Repeat: served from cache.
	rec, resp = postQuery(t, srv, `{"patterns": ["?p kb:founded ?c", "?c kb:locatedIn ?city"]}`)
	if rec.Code != http.StatusOK || !resp.Cached {
		t.Errorf("repeat query: status %d cached %v", rec.Code, resp.Cached)
	}
	if resp.Count != 3 {
		t.Errorf("cached count = %d", resp.Count)
	}
}

func TestServerQueryLimit(t *testing.T) {
	srv := newTestServer(testStore(), time.Second)
	rec, resp := postQuery(t, srv, `{"patterns": ["?p kb:founded ?c"], "limit": 2}`)
	if rec.Code != http.StatusOK || resp.Count != 2 {
		t.Errorf("status %d count %d, want 2 rows", rec.Code, resp.Count)
	}
}

func TestServerAskQuery(t *testing.T) {
	srv := newTestServer(testStore(), time.Second)
	rec, resp := postQuery(t, srv, `{"patterns": ["kb:jobs kb:founded kb:apple"]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Ask == nil || !*resp.Ask {
		t.Errorf("ask = %v, want true", resp.Ask)
	}
	if len(resp.Rows) != 0 {
		t.Errorf("ask query returned rows: %v", resp.Rows)
	}
	_, resp = postQuery(t, srv, `{"patterns": ["kb:jobs kb:founded kb:microsoft"]}`)
	if resp.Ask == nil || *resp.Ask {
		t.Errorf("ask = %v, want false", resp.Ask)
	}
}

func TestServerBadRequests(t *testing.T) {
	srv := newTestServer(testStore(), time.Second)
	cases := []struct {
		body string
		want int
	}{
		{`{"patterns": []}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
		{`{"patterns": ["only twoterms"]}`, http.StatusBadRequest},
		{`{"patterns": ["?x kb:label \"unterminated"]}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		rec, _ := postQuery(t, srv, c.body)
		if rec.Code != c.want {
			t.Errorf("body %q: status %d, want %d (%s)", c.body, rec.Code, c.want, rec.Body.String())
		}
	}
	// GET /query is not allowed.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/query", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /query status = %d", rec.Code)
	}
}

func TestServerTimeout(t *testing.T) {
	// A deadline in the past forces the evaluation's first context check
	// to fail, exercising the 504 path.
	srv := newTestServer(testStore(), time.Nanosecond)
	rec, _ := postQuery(t, srv, `{"patterns": ["?p kb:founded ?c"]}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Errorf("status = %d, want 504: %s", rec.Code, rec.Body.String())
	}
}

func TestServerEstimate(t *testing.T) {
	srv := newTestServer(testStore(), time.Second)
	rec := postJSON(t, srv, "/estimate",
		`{"patterns": ["?p kb:founded ?c", "kb:apple kb:locatedIn ?city", "?p kb:never ?x"]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("estimate status %d: %s", rec.Code, rec.Body.String())
	}
	var resp EstimateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Estimates) != 3 {
		t.Fatalf("estimates = %v, want 3 entries", resp.Estimates)
	}
	// Estimates are upper bounds: founded has 3 matches, the apple lookup
	// one, and a never-seen predicate is exactly zero.
	if resp.Estimates[0] < 3 {
		t.Errorf("founded estimate = %d, want >= 3", resp.Estimates[0])
	}
	if resp.Estimates[1] < 1 {
		t.Errorf("apple estimate = %d, want >= 1", resp.Estimates[1])
	}
	if resp.Estimates[2] != 0 {
		t.Errorf("unknown-predicate estimate = %d, want 0", resp.Estimates[2])
	}
	// Bad request envelope is shared with /query.
	if rec := postJSON(t, srv, "/estimate", `{"patterns": []}`); rec.Code != http.StatusBadRequest {
		t.Errorf("empty estimate status = %d", rec.Code)
	}
}

func TestServerReadyz(t *testing.T) {
	srv := NewServer(testStore(), Options{Snapshot: "kb.0.nt"})
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz status %d", rec.Code)
	}
	var resp ReadyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Facts != 5 || resp.Snapshot != "kb.0.nt" {
		t.Errorf("readyz = %+v", resp)
	}
	// An empty store is not ready: the router must skip it.
	empty := NewServer(core.NewStore(), Options{})
	rec = httptest.NewRecorder()
	empty.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("empty readyz status = %d, want 503", rec.Code)
	}
}

func TestServerStatsz(t *testing.T) {
	srv := newTestServer(testStore(), time.Second)
	postQuery(t, srv, `{"patterns": ["?p kb:founded ?c"]}`)
	postQuery(t, srv, `{"patterns": ["?p kb:founded ?c"]}`)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statsz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("statsz status %d", rec.Code)
	}
	var stats StatszResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("statsz body %q: %v", rec.Body.String(), err)
	}
	if stats.Cache.Hits != 1 || stats.Cache.Misses != 1 {
		t.Errorf("cache stats = %+v", stats.Cache)
	}
	if stats.Cache.HitRate != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", stats.Cache.HitRate)
	}
	if stats.Latency.Count != 2 || stats.Latency.P99US == 0 {
		t.Errorf("latency stats = %+v", stats.Latency)
	}
	if stats.Store.Facts != 5 {
		t.Errorf("store facts = %d, want 5", stats.Store.Facts)
	}
}

func TestServerHealthz(t *testing.T) {
	srv := newTestServer(testStore(), time.Second)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("healthz status %d", rec.Code)
	}
}

// Concurrent requests against a store that keeps mutating: handlers and
// the cache must be race-clean, and every answer must be a possible state
// (3 stable join rows plus at most one transient chain).
func TestServerConcurrentQueriesWithWriter(t *testing.T) {
	st := testStore()
	srv := NewServer(st, Options{Timeout: time.Second})
	stop := make(chan struct{})
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			co := fmt.Sprintf("kb:startup%d", i%5)
			st.Add(rdf.T("kb:founder", "kb:founded", co))
			st.Add(rdf.T(co, "kb:locatedIn", "kb:garage"))
			st.Remove(rdf.T("kb:founder", "kb:founded", co))
			st.Remove(rdf.T(co, "kb:locatedIn", "kb:garage"))
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 150; r++ {
				req := httptest.NewRequest(http.MethodPost, "/query",
					strings.NewReader(`{"patterns": ["?p kb:founded ?c", "?c kb:locatedIn ?city"]}`))
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("status %d: %s", rec.Code, rec.Body.String())
					return
				}
				var resp QueryResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					errs <- err
					return
				}
				if resp.Count < 3 || resp.Count > 4 {
					errs <- fmt.Errorf("impossible row count %d", resp.Count)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	writerWG.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// Every error path must answer with the well-formed JSON error envelope
// and the right status: clients (and the router) parse these bodies, so
// a bare text error would break them.
func TestServerErrorEnvelopes(t *testing.T) {
	srv := newTestServer(testStore(), time.Second)
	oversized := `{"patterns": ["?p kb:founded ?c"], "pad": "` + strings.Repeat("x", 2<<20) + `"}`
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"malformed json", "/query", `{"patterns": [`, http.StatusBadRequest},
		{"not json at all", "/query", `<html>`, http.StatusBadRequest},
		{"oversized body", "/query", oversized, http.StatusBadRequest},
		{"bad pattern", "/query", `{"patterns": ["too few"]}`, http.StatusBadRequest},
		{"estimate malformed", "/estimate", `}{`, http.StatusBadRequest},
	}
	for _, c := range cases {
		rec := postJSON(t, srv, c.path, c.body)
		if rec.Code != c.want {
			t.Errorf("%s: status %d, want %d", c.name, rec.Code, c.want)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type %q, want application/json", c.name, ct)
		}
		var er ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
			t.Errorf("%s: body %q is not an error envelope (%v)", c.name, rec.Body.String(), err)
		}
	}
	// The timeout path flows through WriteQueryError: 504 plus envelope.
	slow := newTestServer(testStore(), time.Nanosecond)
	rec := postJSON(t, slow, "/query", `{"patterns": ["?p kb:founded ?c"]}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("timeout status %d, want 504", rec.Code)
	}
	var er ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
		t.Errorf("timeout body %q is not an error envelope (%v)", rec.Body.String(), err)
	}
}

// A snapshot that failed integrity verification must never report ready,
// even with facts loaded before the corruption was hit.
func TestServerReadyzLoadError(t *testing.T) {
	srv := NewServer(testStore(), Options{
		Snapshot:  "kb.0.nt",
		LoadError: fmt.Errorf("snapshot corrupt: crc aaaa, trailer says bbbb"),
	})
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("corrupt-snapshot readyz = %d, want 503", rec.Code)
	}
	var resp ReadyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Error, "snapshot failed verification") {
		t.Errorf("readyz error = %q", resp.Error)
	}
}

// The ready -> draining transition a rolling restart depends on: /readyz
// flips to 503 while /query keeps answering, and flipping back restores
// readiness.
func TestServerReadyzDraining(t *testing.T) {
	srv := newTestServer(testStore(), time.Second)
	readyz := func() int {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
		return rec.Code
	}
	if c := readyz(); c != http.StatusOK {
		t.Fatalf("readyz before drain = %d", c)
	}
	srv.SetDraining(true)
	if c := readyz(); c != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", c)
	}
	// In-flight and keep-alive queries still answer during the notice.
	rec, resp := postQuery(t, srv, `{"patterns": ["?p kb:founded ?c"]}`)
	if rec.Code != http.StatusOK || resp.Count != 3 {
		t.Fatalf("query while draining = %d count %d, want 200/3", rec.Code, resp.Count)
	}
	srv.SetDraining(false)
	if c := readyz(); c != http.StatusOK {
		t.Fatalf("readyz after drain cleared = %d", c)
	}
}

// Quantile is the exported face of the histogram the shardkb client
// derives hedge delays from.
func TestLatencyQuantile(t *testing.T) {
	var h LatencyHistogram
	if h.Quantile(0.99) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	for i := 0; i < 99; i++ {
		h.Observe(100 * time.Microsecond)
	}
	h.Observe(50 * time.Millisecond)
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 < 100*time.Microsecond || p50 > time.Millisecond {
		t.Errorf("p50 = %v, want a small upper bound near 100us", p50)
	}
	if p99 < p50 {
		t.Errorf("p99 %v < p50 %v", p99, p50)
	}
}
