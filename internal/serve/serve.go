// Package serve implements the single-shard HTTP serving surface of the
// knowledge base: request parsing, cache-backed conjunctive query
// evaluation with per-request deadlines, planner estimates, readiness,
// and operational counters. cmd/kbserve wraps it in a process; the
// scatter/gather tier (internal/shardkb, cmd/kbrouter) talks to N of
// these over the same wire protocol, and tests and experiments drive it
// in-process through httptest.
//
// Endpoints:
//
//	POST /query     {"patterns": [...], "limit": N} -> QueryResponse
//	POST /estimate  {"patterns": [...]}             -> EstimateResponse
//	GET  /statsz    cache hit rate, latency histogram, store stats
//	GET  /healthz   liveness probe (process up)
//	GET  /readyz    readiness: 200 + fact count/snapshot path once the
//	                store holds facts, 503 while empty/still loading
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"kbharvest/internal/core"
	"kbharvest/internal/qcache"
	"kbharvest/internal/rdf"
)

// QueryRequest is the POST /query (and /estimate) body.
type QueryRequest struct {
	// Patterns are "s p o" lines in kbquery syntax.
	Patterns []string `json:"patterns"`
	// Limit caps the number of rows (0 = all). Ignored by /estimate.
	Limit int `json:"limit,omitempty"`
}

// QueryResponse is the POST /query reply.
type QueryResponse struct {
	Vars   []string            `json:"vars,omitempty"`
	Rows   []map[string]string `json:"rows,omitempty"`
	Count  int                 `json:"count"`
	Ask    *bool               `json:"ask,omitempty"` // set for zero-variable queries
	Cached bool                `json:"cached"`
	TookUS int64               `json:"took_us"`
	// Partial is set by the router when shards failed and -allow-partial
	// merged the surviving results; a single shard never sets it.
	Partial bool `json:"partial,omitempty"`
}

// EstimateResponse is the POST /estimate reply: the planner's
// index-cardinality upper bound for each requested pattern on this
// shard's store (core.Store.EstimateMatches). A zero is exact — the
// pattern cannot match here.
type EstimateResponse struct {
	Estimates []int `json:"estimates"`
}

// ReadyResponse is the GET /readyz reply.
type ReadyResponse struct {
	Facts    int    `json:"facts"`
	Snapshot string `json:"snapshot,omitempty"`
	// Error explains a 503: snapshot integrity failure or draining.
	Error string `json:"error,omitempty"`
}

// ErrorResponse is the JSON error envelope every endpoint uses.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Options tunes a Server.
type Options struct {
	// Cache configures the result cache (internal/qcache).
	Cache qcache.Options
	// Timeout bounds each query evaluation (0 = unbounded).
	Timeout time.Duration
	// Snapshot is the path the store was loaded from, reported by
	// /readyz so operators and the router can tell shards apart.
	Snapshot string
	// LoadError marks the snapshot as failed (e.g. CRC verification
	// rejected it). The server still answers — operators can inspect
	// /statsz — but /readyz stays 503 so no router sends traffic to a
	// shard serving a torn KB.
	LoadError error
}

// LatencyHistogram counts request latencies in power-of-two microsecond
// buckets; all counters are atomics so request handlers never serialize
// on stats. The zero value is ready to use. cmd/kbrouter shares it for
// its own /statsz.
type LatencyHistogram struct {
	buckets [32]atomic.Uint64 // bucket i: latency < 2^i µs
	count   atomic.Uint64
	sumUS   atomic.Uint64
}

// Observe records one request latency.
func (h *LatencyHistogram) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	b := 0
	for us>>b > 0 && b < len(h.buckets)-1 {
		b++
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sumUS.Add(uint64(us))
}

// quantile returns an upper bound on the q-quantile latency in µs.
func (h *LatencyHistogram) quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	var seen uint64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return uint64(1) << i
		}
	}
	return uint64(1) << (len(h.buckets) - 1)
}

// Quantile returns an upper bound on the q-quantile latency. The
// shardkb client derives percentile-based hedge delays from it.
func (h *LatencyHistogram) Quantile(q float64) time.Duration {
	return time.Duration(h.quantile(q)) * time.Microsecond
}

// Summary snapshots the histogram into the /statsz latency block.
func (h *LatencyHistogram) Summary() LatencyStats {
	lat := LatencyStats{
		Count: h.count.Load(),
		P50US: h.quantile(0.50),
		P90US: h.quantile(0.90),
		P99US: h.quantile(0.99),
	}
	if lat.Count > 0 {
		lat.MeanUS = float64(h.sumUS.Load()) / float64(lat.Count)
	}
	return lat
}

// Server is the HTTP handler serving one store.
type Server struct {
	st       *core.Store
	cache    *qcache.Cache
	timeout  time.Duration
	snapshot string
	loadErr  error
	draining atomic.Bool
	mux      *http.ServeMux
	lat      LatencyHistogram
}

// NewServer wires the handler for one store.
func NewServer(st *core.Store, opt Options) *Server {
	s := &Server{
		st:       st,
		cache:    qcache.New(st, opt.Cache),
		timeout:  opt.Timeout,
		snapshot: opt.Snapshot,
		loadErr:  opt.LoadError,
		mux:      http.NewServeMux(),
	}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/estimate", s.handleEstimate)
	s.mux.HandleFunc("/statsz", s.handleStatsz)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// WriteJSON writes v as a JSON response with the given status.
func WriteJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// DecodePatterns parses the shared request envelope of /query and
// /estimate — also the router's, which speaks the same protocol. A nil
// return means the error response was already written.
func DecodePatterns(w http.ResponseWriter, r *http.Request) (*QueryRequest, []core.Pattern) {
	if r.Method != http.MethodPost {
		WriteJSON(w, http.StatusMethodNotAllowed, ErrorResponse{"POST a JSON body"})
		return nil, nil
	}
	var req QueryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		WriteJSON(w, http.StatusBadRequest, ErrorResponse{"bad request body: " + err.Error()})
		return nil, nil
	}
	if len(req.Patterns) == 0 {
		WriteJSON(w, http.StatusBadRequest, ErrorResponse{"no patterns"})
		return nil, nil
	}
	patterns := make([]core.Pattern, 0, len(req.Patterns))
	for _, line := range req.Patterns {
		p, err := core.ParsePattern(line)
		if err != nil {
			WriteJSON(w, http.StatusBadRequest, ErrorResponse{err.Error()})
			return nil, nil
		}
		patterns = append(patterns, p)
	}
	return &req, patterns
}

// HasVars reports whether any pattern position is a variable — false
// means the conjunction is ASK-style.
func HasVars(patterns []core.Pattern) bool {
	for _, p := range patterns {
		if p.S.Var != "" || p.P.Var != "" || p.O.Var != "" {
			return true
		}
	}
	return false
}

// WriteQueryError maps an evaluation error onto the HTTP status the
// protocol uses: 504 for deadline, 499 for client cancellation, 500
// otherwise.
func WriteQueryError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	if errors.Is(err, context.DeadlineExceeded) {
		status = http.StatusGatewayTimeout
	} else if errors.Is(err, context.Canceled) {
		status = 499 // client closed request
	}
	WriteJSON(w, status, ErrorResponse{err.Error()})
}

// BuildQueryResponse renders bindings into the wire shape: sorted vars
// and serialized rows for a query with variables, an ask flag for an
// all-constant conjunction. The caller fills Cached/TookUS/Partial.
func BuildQueryResponse(bindings []core.Binding, hasVar bool) QueryResponse {
	resp := QueryResponse{Count: len(bindings)}
	if !hasVar {
		// ASK-style: an all-constant conjunction either holds or not.
		ask := len(bindings) > 0
		resp.Ask = &ask
		resp.Count = 0
		return resp
	}
	if len(bindings) > 0 {
		var vars []core.Var
		for v := range bindings[0] {
			vars = append(vars, v)
		}
		sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
		resp.Vars = make([]string, len(vars))
		for i, v := range vars {
			resp.Vars[i] = string(v)
		}
		resp.Rows = make([]map[string]string, len(bindings))
		for i, b := range bindings {
			row := make(map[string]string, len(vars))
			for _, v := range vars {
				row[string(v)] = b[v].String()
			}
			resp.Rows[i] = row
		}
	}
	return resp
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, patterns := DecodePatterns(w, r)
	if req == nil {
		return
	}
	ctx := r.Context()
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	t0 := time.Now()
	bindings, cached, err := s.cache.Query(ctx, patterns, req.Limit)
	took := time.Since(t0)
	s.lat.Observe(took)
	if err != nil {
		WriteQueryError(w, err)
		return
	}
	resp := BuildQueryResponse(bindings, HasVars(patterns))
	resp.Cached = cached
	resp.TookUS = took.Microseconds()
	WriteJSON(w, http.StatusOK, resp)
}

// handleEstimate serves the router's planning probe: per-pattern
// index-cardinality upper bounds, with unbound variables as wildcards.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	req, patterns := DecodePatterns(w, r)
	if req == nil {
		return
	}
	ests := make([]int, len(patterns))
	for i, p := range patterns {
		ests[i] = s.st.EstimateMatches(patternSkeleton(p))
	}
	WriteJSON(w, http.StatusOK, EstimateResponse{Estimates: ests})
}

// patternSkeleton maps a pattern onto the triple EstimateMatches expects:
// constants stay, variables become zero-term wildcards.
func patternSkeleton(p core.Pattern) rdf.Triple {
	var t rdf.Triple
	if p.S.Var == "" {
		t.S = p.S.Const
	}
	if p.P.Var == "" {
		t.P = p.P.Const
	}
	if p.O.Var == "" {
		t.O = p.O.Const
	}
	return t
}

// SetDraining flips the shard in or out of drain mode. While draining,
// /readyz answers 503 so routers and load balancers stop sending new
// work, while in-flight and keep-alive requests still complete —
// cmd/kbserve sets it before starting the shutdown deadline.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	resp := ReadyResponse{Facts: s.st.Len(), Snapshot: s.snapshot}
	switch {
	case s.loadErr != nil:
		// The snapshot failed integrity verification: serving it would
		// present a torn, silently short KB as healthy. Never ready.
		resp.Error = "snapshot failed verification: " + s.loadErr.Error()
		WriteJSON(w, http.StatusServiceUnavailable, resp)
	case s.draining.Load():
		resp.Error = "draining"
		WriteJSON(w, http.StatusServiceUnavailable, resp)
	case resp.Facts == 0:
		// An empty store means the shard is still loading (or was pointed
		// at the wrong snapshot); the router must not route here.
		resp.Error = "empty store"
		WriteJSON(w, http.StatusServiceUnavailable, resp)
	default:
		WriteJSON(w, http.StatusOK, resp)
	}
}

// StatszResponse is the GET /statsz reply.
type StatszResponse struct {
	Cache   CacheStats   `json:"cache"`
	Latency LatencyStats `json:"latency"`
	Store   core.Stats   `json:"store"`
}

// CacheStats augments the raw qcache counters with the derived hit rate.
type CacheStats struct {
	qcache.Stats
	HitRate float64 `json:"hit_rate"`
}

// LatencyStats summarizes the query latency histogram.
type LatencyStats struct {
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  uint64  `json:"p50_us"`
	P90US  uint64  `json:"p90_us"`
	P99US  uint64  `json:"p99_us"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	cs := s.cache.Stats()
	WriteJSON(w, http.StatusOK, StatszResponse{
		Cache:   CacheStats{Stats: cs, HitRate: cs.HitRate()},
		Latency: s.lat.Summary(),
		Store:   s.st.Stats(),
	})
}
