// Package mining implements frequent-pattern mining: PrefixSpan
// frequent-sequence mining and Apriori frequent itemsets. The tutorial
// names "frequent sequence mining" as one of the big-data techniques open
// information extraction borrows (§3): mining frequent word sequences
// between entity pairs surfaces the prototypic relation phrases that open
// IE promotes to patterns (experiment E9).
package mining

import (
	"sort"
	"strings"
)

// Sequence is one input sequence of items (for us: tokens).
type Sequence []string

// Pattern is a frequent subsequence with its support count.
type Pattern struct {
	Items   []string
	Support int
}

// String renders the pattern items space-joined.
func (p Pattern) String() string { return strings.Join(p.Items, " ") }

// PrefixSpan mines all sequential patterns with support >= minSupport and
// length <= maxLen from db. Supports are sequence counts (each sequence
// counts once however often the pattern occurs inside it).
//
// The implementation is the standard projected-database recursion: for each
// frequent item, project the database to the suffixes after its first
// occurrence and recurse.
func PrefixSpan(db []Sequence, minSupport, maxLen int) []Pattern {
	if minSupport < 1 {
		minSupport = 1
	}
	// A projection is a list of (sequence index, start offset).
	type proj struct{ seq, off int }
	initial := make([]proj, len(db))
	for i := range db {
		initial[i] = proj{i, 0}
	}
	var out []Pattern
	var recurse func(prefix []string, projs []proj)
	recurse = func(prefix []string, projs []proj) {
		if len(prefix) >= maxLen {
			return
		}
		// Count item supports in the projected database (once per
		// sequence).
		support := make(map[string]int)
		seenInSeq := make(map[string]int) // item -> last seq counted +1
		for _, pr := range projs {
			seq := db[pr.seq]
			for _, item := range seq[pr.off:] {
				if seenInSeq[item] != pr.seq+1 {
					seenInSeq[item] = pr.seq + 1
					support[item]++
				}
			}
		}
		items := make([]string, 0, len(support))
		for item, s := range support {
			if s >= minSupport {
				items = append(items, item)
			}
		}
		sort.Strings(items)
		for _, item := range items {
			newPrefix := append(append([]string(nil), prefix...), item)
			out = append(out, Pattern{Items: newPrefix, Support: support[item]})
			// Project: for each sequence, suffix after first occurrence
			// of item at/after off.
			var next []proj
			for _, pr := range projs {
				seq := db[pr.seq]
				for k := pr.off; k < len(seq); k++ {
					if seq[k] == item {
						next = append(next, proj{pr.seq, k + 1})
						break
					}
				}
			}
			recurse(newPrefix, next)
		}
	}
	recurse(nil, initial)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].String() < out[j].String()
	})
	return out
}

// ContiguousPatterns mines frequent contiguous subsequences (n-grams) of
// length [minLen, maxLen] with support >= minSupport — the variant used to
// find relation phrases, where gaps would break the phrase.
func ContiguousPatterns(db []Sequence, minSupport, minLen, maxLen int) []Pattern {
	counts := make(map[string]int)
	for _, seq := range db {
		seen := make(map[string]bool) // count once per sequence
		for n := minLen; n <= maxLen; n++ {
			for i := 0; i+n <= len(seq); i++ {
				key := strings.Join(seq[i:i+n], "\x00")
				if !seen[key] {
					seen[key] = true
					counts[key]++
				}
			}
		}
	}
	var out []Pattern
	for key, c := range counts {
		if c >= minSupport {
			out = append(out, Pattern{Items: strings.Split(key, "\x00"), Support: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].String() < out[j].String()
	})
	return out
}

// Itemset is a frequent itemset with its support.
type Itemset struct {
	Items   []string // sorted
	Support int
}

// FrequentItemsets mines itemsets with support >= minSupport and size <=
// maxSize using Apriori level-wise search. Transactions are deduplicated
// item sets.
func FrequentItemsets(transactions [][]string, minSupport, maxSize int) []Itemset {
	// Level 1.
	counts := make(map[string]int)
	txs := make([][]string, len(transactions))
	for i, t := range transactions {
		set := uniqueSorted(t)
		txs[i] = set
		for _, item := range set {
			counts[item]++
		}
	}
	var frontier [][]string
	var out []Itemset
	for item, c := range counts {
		if c >= minSupport {
			frontier = append(frontier, []string{item})
			out = append(out, Itemset{Items: []string{item}, Support: c})
		}
	}
	sortKey := func(is []string) string { return strings.Join(is, "\x00") }
	sort.Slice(frontier, func(i, j int) bool { return sortKey(frontier[i]) < sortKey(frontier[j]) })

	for size := 2; size <= maxSize && len(frontier) > 0; size++ {
		// Candidate generation: join frontier sets sharing a prefix.
		cands := make(map[string][]string)
		for i := 0; i < len(frontier); i++ {
			for j := i + 1; j < len(frontier); j++ {
				a, b := frontier[i], frontier[j]
				if !samePrefix(a, b) {
					continue
				}
				cand := append(append([]string(nil), a...), b[len(b)-1])
				sort.Strings(cand)
				cands[sortKey(cand)] = cand
			}
		}
		// Count supports.
		counts := make(map[string]int)
		for _, tx := range txs {
			for key, cand := range cands {
				if containsAll(tx, cand) {
					counts[key]++
				}
			}
		}
		frontier = frontier[:0]
		var keys []string
		for key := range counts {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			if counts[key] >= minSupport {
				items := cands[key]
				frontier = append(frontier, items)
				out = append(out, Itemset{Items: items, Support: counts[key]})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return sortKey(out[i].Items) < sortKey(out[j].Items)
	})
	return out
}

func samePrefix(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return a[len(a)-1] != b[len(b)-1]
}

// containsAll reports whether sorted slice tx contains every item of
// sorted slice items.
func containsAll(tx, items []string) bool {
	i := 0
	for _, item := range items {
		for i < len(tx) && tx[i] < item {
			i++
		}
		if i >= len(tx) || tx[i] != item {
			return false
		}
	}
	return true
}

func uniqueSorted(items []string) []string {
	cp := append([]string(nil), items...)
	sort.Strings(cp)
	out := cp[:0]
	for i, it := range cp {
		if i == 0 || cp[i-1] != it {
			out = append(out, it)
		}
	}
	return out
}

func sortKey(is []string) string { return strings.Join(is, "\x00") }
