package mining

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestPrefixSpanSimple(t *testing.T) {
	db := []Sequence{
		{"a", "b", "c"},
		{"a", "b"},
		{"a", "c"},
		{"b", "c"},
	}
	pats := PrefixSpan(db, 2, 3)
	support := map[string]int{}
	for _, p := range pats {
		support[p.String()] = p.Support
	}
	want := map[string]int{
		"a": 3, "b": 3, "c": 3,
		"a b": 2, "a c": 2, "b c": 2,
	}
	if !reflect.DeepEqual(support, want) {
		t.Errorf("patterns = %v, want %v", support, want)
	}
}

func TestPrefixSpanGaps(t *testing.T) {
	// "a ... c" with a gap must still count.
	db := []Sequence{
		{"a", "x", "c"},
		{"a", "y", "c"},
	}
	pats := PrefixSpan(db, 2, 2)
	found := false
	for _, p := range pats {
		if p.String() == "a c" && p.Support == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("gapped pattern missing: %v", pats)
	}
}

func TestPrefixSpanCountsOncePerSequence(t *testing.T) {
	db := []Sequence{{"a", "a", "a"}}
	pats := PrefixSpan(db, 1, 1)
	for _, p := range pats {
		if p.String() == "a" && p.Support != 1 {
			t.Errorf("support = %d, want 1", p.Support)
		}
	}
}

func TestPrefixSpanMaxLen(t *testing.T) {
	db := []Sequence{{"a", "b", "c", "d"}, {"a", "b", "c", "d"}}
	pats := PrefixSpan(db, 2, 2)
	for _, p := range pats {
		if len(p.Items) > 2 {
			t.Errorf("pattern longer than maxLen: %v", p)
		}
	}
}

func TestPrefixSpanSortedBySupport(t *testing.T) {
	db := []Sequence{
		{"a", "b"}, {"a", "b"}, {"a"}, {"c"},
	}
	pats := PrefixSpan(db, 1, 2)
	for i := 1; i < len(pats); i++ {
		if pats[i-1].Support < pats[i].Support {
			t.Fatalf("not sorted by support: %v", pats)
		}
	}
}

// Property: every reported pattern really is a subsequence of at least
// `support` distinct sequences.
func TestPrefixSpanSupportsAreCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vocab := []string{"a", "b", "c", "d", "e"}
	for trial := 0; trial < 20; trial++ {
		db := make([]Sequence, 12)
		for i := range db {
			n := 1 + rng.Intn(6)
			s := make(Sequence, n)
			for j := range s {
				s[j] = vocab[rng.Intn(len(vocab))]
			}
			db[i] = s
		}
		for _, p := range PrefixSpan(db, 2, 3) {
			count := 0
			for _, seq := range db {
				if isSubsequence(p.Items, seq) {
					count++
				}
			}
			if count != p.Support {
				t.Fatalf("trial %d: pattern %v support %d, brute force %d", trial, p.Items, p.Support, count)
			}
		}
	}
}

func isSubsequence(pat []string, seq Sequence) bool {
	i := 0
	for _, item := range seq {
		if i < len(pat) && pat[i] == item {
			i++
		}
	}
	return i == len(pat)
}

func TestContiguousPatterns(t *testing.T) {
	db := []Sequence{
		{"was", "founded", "by"},
		{"was", "founded", "by"},
		{"was", "acquired", "by"},
	}
	pats := ContiguousPatterns(db, 2, 2, 3)
	support := map[string]int{}
	for _, p := range pats {
		support[p.String()] = p.Support
	}
	if support["was founded by"] != 2 {
		t.Errorf("'was founded by' support = %d", support["was founded by"])
	}
	if _, ok := support["was by"]; ok {
		t.Error("gapped pattern should not appear in contiguous mining")
	}
}

func TestContiguousMinLen(t *testing.T) {
	db := []Sequence{{"a", "b"}, {"a", "b"}}
	pats := ContiguousPatterns(db, 2, 2, 2)
	for _, p := range pats {
		if len(p.Items) < 2 {
			t.Errorf("pattern shorter than minLen: %v", p)
		}
	}
}

func TestFrequentItemsets(t *testing.T) {
	txs := [][]string{
		{"milk", "bread", "butter"},
		{"milk", "bread"},
		{"milk", "eggs"},
		{"bread", "butter"},
	}
	sets := FrequentItemsets(txs, 2, 3)
	support := map[string]int{}
	for _, s := range sets {
		support[strings.Join(s.Items, ",")] = s.Support
	}
	if support["milk"] != 3 || support["bread"] != 3 {
		t.Errorf("singleton supports wrong: %v", support)
	}
	if support["bread,milk"] != 2 {
		t.Errorf("pair support wrong: %v", support)
	}
	if support["bread,butter"] != 2 {
		t.Errorf("pair support wrong: %v", support)
	}
	if _, ok := support["eggs"]; ok {
		t.Error("below-threshold item leaked")
	}
}

func TestFrequentItemsetsDedupWithinTransaction(t *testing.T) {
	txs := [][]string{{"a", "a", "b"}, {"a", "b"}}
	sets := FrequentItemsets(txs, 2, 2)
	for _, s := range sets {
		if strings.Join(s.Items, ",") == "a" && s.Support != 2 {
			t.Errorf("duplicate items in one transaction should count once: %+v", s)
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	if got := PrefixSpan(nil, 1, 3); len(got) != 0 {
		t.Errorf("PrefixSpan(nil) = %v", got)
	}
	if got := ContiguousPatterns(nil, 1, 1, 3); len(got) != 0 {
		t.Errorf("ContiguousPatterns(nil) = %v", got)
	}
	if got := FrequentItemsets(nil, 1, 3); len(got) != 0 {
		t.Errorf("FrequentItemsets(nil) = %v", got)
	}
}
