package parse

import (
	"strings"
	"testing"

	"kbharvest/internal/text"
)

// find returns the index of the first token with the given text.
func find(t *Tree, word string) int {
	for i, tok := range t.Tokens {
		if tok.Text == word {
			return i
		}
	}
	return -1
}

func TestParseSVO(t *testing.T) {
	tr := ParseSentence("Steve Jobs founded Apple")
	v := find(tr, "founded")
	subj := find(tr, "Jobs")
	obj := find(tr, "Apple")
	if tr.Heads[v] != Root || tr.Labels[v] != LabelRoot {
		t.Errorf("verb not root: %s", tr)
	}
	if tr.Heads[subj] != v || tr.Labels[subj] != LabelNsubj {
		t.Errorf("subject wrong: %s", tr)
	}
	if tr.Heads[obj] != v || tr.Labels[obj] != LabelDobj {
		t.Errorf("object wrong: %s", tr)
	}
	// "Steve" is a compound modifier of "Jobs".
	if s := find(tr, "Steve"); tr.Heads[s] != subj || tr.Labels[s] != LabelNn {
		t.Errorf("compound wrong: %s", tr)
	}
}

func TestParsePassive(t *testing.T) {
	tr := ParseSentence("Apple was founded by Steve Jobs")
	v := find(tr, "founded")
	was := find(tr, "was")
	apple := find(tr, "Apple")
	by := find(tr, "by")
	jobs := find(tr, "Jobs")
	if tr.Heads[v] != Root {
		t.Fatalf("main verb wrong:\n%s", tr)
	}
	if tr.Labels[was] != LabelAuxPass || tr.Heads[was] != v {
		t.Errorf("auxpass wrong:\n%s", tr)
	}
	if tr.Labels[apple] != LabelNsubjPass {
		t.Errorf("passive subject wrong:\n%s", tr)
	}
	if tr.Heads[by] != v || tr.Labels[by] != LabelPrep {
		t.Errorf("prep wrong:\n%s", tr)
	}
	if tr.Heads[jobs] != by || tr.Labels[jobs] != LabelPobj {
		t.Errorf("pobj wrong:\n%s", tr)
	}
}

func TestParsePrepositionalAttachment(t *testing.T) {
	tr := ParseSentence("Jobs founded Apple in Cupertino")
	in := find(tr, "in")
	cup := find(tr, "Cupertino")
	if tr.Heads[cup] != in || tr.Labels[cup] != LabelPobj {
		t.Errorf("pobj wrong:\n%s", tr)
	}
	if tr.Labels[in] != LabelPrep {
		t.Errorf("prep wrong:\n%s", tr)
	}
}

func TestParseCopula(t *testing.T) {
	tr := ParseSentence("Jobs is an entrepreneur")
	is := find(tr, "is")
	attr := find(tr, "entrepreneur")
	if tr.Heads[is] != Root {
		t.Fatalf("copula should head the clause:\n%s", tr)
	}
	if tr.Heads[attr] != is || tr.Labels[attr] != LabelAttr {
		t.Errorf("attr wrong:\n%s", tr)
	}
}

func TestParseNPInternals(t *testing.T) {
	tr := ParseSentence("The famous entrepreneur created a small company")
	the := find(tr, "The")
	famous := find(tr, "famous")
	ent := find(tr, "entrepreneur")
	if tr.Heads[the] != ent || tr.Labels[the] != LabelDet {
		t.Errorf("det wrong:\n%s", tr)
	}
	if tr.Heads[famous] != ent || tr.Labels[famous] != LabelAmod {
		t.Errorf("amod wrong:\n%s", tr)
	}
}

func TestParseConjunction(t *testing.T) {
	tr := ParseSentence("Jobs founded Apple and NeXT")
	apple := find(tr, "Apple")
	next := find(tr, "NeXT")
	and := find(tr, "and")
	if tr.Labels[apple] != LabelDobj {
		t.Errorf("first conjunct wrong:\n%s", tr)
	}
	if tr.Heads[next] != apple || tr.Labels[next] != LabelConj {
		t.Errorf("conj wrong:\n%s", tr)
	}
	if tr.Heads[and] != apple || tr.Labels[and] != LabelCc {
		t.Errorf("cc wrong:\n%s", tr)
	}
}

func TestParseNoVerb(t *testing.T) {
	tr := ParseSentence("The quick brown fox")
	root := tr.RootIndex()
	if root == -1 {
		t.Fatalf("no root:\n%s", tr)
	}
	if tr.Tokens[root].Text != "fox" {
		t.Errorf("root = %q, want fox", tr.Tokens[root].Text)
	}
}

func TestParseEmpty(t *testing.T) {
	tr := Parse(nil)
	if len(tr.Heads) != 0 || tr.RootIndex() != -1 {
		t.Errorf("empty parse wrong: %+v", tr)
	}
}

func TestSingleRoot(t *testing.T) {
	sentences := []string{
		"Steve Jobs founded Apple",
		"Apple was founded by Steve Jobs in 1976",
		"The company is a leader",
		"He quickly moved to California and married Laurene",
		"word",
		"!",
	}
	for _, s := range sentences {
		tr := ParseSentence(s)
		roots := 0
		for i := range tr.Heads {
			if tr.Heads[i] == Root {
				roots++
			}
		}
		if roots != 1 {
			t.Errorf("%q: %d roots\n%s", s, roots, tr)
		}
	}
}

func TestTreeIsAcyclic(t *testing.T) {
	sentences := []string{
		"Steve Jobs founded Apple in Cupertino in 1976",
		"Apple was originally founded by Steve Jobs and Steve Wozniak",
		"The famous company released a new phone in January",
	}
	for _, s := range sentences {
		tr := ParseSentence(s)
		for i := range tr.Heads {
			seen := map[int]bool{}
			j := i
			for j != Root {
				if seen[j] {
					t.Fatalf("%q: cycle at token %d\n%s", s, i, tr)
				}
				seen[j] = true
				j = tr.Heads[j]
			}
		}
	}
}

func TestPath(t *testing.T) {
	tr := ParseSentence("Steve Jobs founded Apple")
	subj := find(tr, "Jobs")
	obj := find(tr, "Apple")
	p := tr.Path(subj, obj)
	if !strings.Contains(p, "nsubj") || !strings.Contains(p, "dobj") || !strings.Contains(p, "found") {
		t.Errorf("Path = %q", p)
	}
	// Path to self is just the lemma.
	if got := tr.Path(subj, subj); got != "jobs" {
		t.Errorf("self path = %q", got)
	}
	if got := tr.Path(-1, obj); got != "" {
		t.Errorf("invalid path = %q", got)
	}
}

func TestPathPassive(t *testing.T) {
	tr := ParseSentence("Apple was founded by Steve Jobs")
	a := find(tr, "Apple")
	j := find(tr, "Jobs")
	p := tr.Path(a, j)
	if !strings.Contains(p, "nsubjpass") || !strings.Contains(p, "pobj") {
		t.Errorf("passive path = %q\n%s", p, tr)
	}
}

func TestChildrenAndChildWithLabel(t *testing.T) {
	tr := ParseSentence("Steve Jobs founded Apple")
	v := find(tr, "founded")
	kids := tr.Children(v)
	if len(kids) != 2 {
		t.Errorf("Children = %v\n%s", kids, tr)
	}
	if got := tr.ChildWithLabel(v, LabelDobj); got == -1 || tr.Tokens[got].Text != "Apple" {
		t.Errorf("ChildWithLabel(dobj) = %d", got)
	}
	if got := tr.ChildWithLabel(v, "nosuch"); got != -1 {
		t.Errorf("ChildWithLabel(nosuch) = %d", got)
	}
}

func TestArcs(t *testing.T) {
	tr := ParseSentence("Jobs founded Apple")
	arcs := tr.Arcs()
	if len(arcs) != 3 {
		t.Fatalf("arcs = %v", arcs)
	}
	for _, a := range arcs {
		if a.Dep < 0 || a.Dep >= 3 {
			t.Errorf("bad arc %+v", a)
		}
	}
}

func TestParseRobustnessOnArbitraryText(t *testing.T) {
	// The parser must never panic or produce out-of-range heads on
	// arbitrary input.
	inputs := []string{
		"the of and in by",
		"!!! ??? ...",
		"founded founded founded",
		"a b c d e f g h i j k l m n o p",
		"Über die Brücke 42 , 7 %",
	}
	for _, s := range inputs {
		tr := ParseSentence(s)
		for i, h := range tr.Heads {
			if h != Root && (h < 0 || h >= len(tr.Heads)) {
				t.Errorf("%q: head out of range at %d", s, i)
			}
		}
	}
}

func TestParseTaggedDirectly(t *testing.T) {
	tagged := text.Tag(text.Tokenize("Jobs founded Apple"))
	tr := Parse(tagged)
	if tr.RootIndex() == -1 {
		t.Error("no root")
	}
}
