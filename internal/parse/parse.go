// Package parse implements a compact rule-based dependency parser over the
// POS-tagged sentences produced by internal/text. The tutorial lists
// dependency parsing among the computational-linguistics methods used for
// relational fact harvesting (§3); the distant-supervision extractor uses
// the dependency path between two entity mentions as its key feature.
//
// The parser is deterministic and attachment-rule-driven rather than
// learned: on the controlled encyclopedic register of the synthetic corpus
// (SVO clauses, passives, prepositional attachments, copulas) this yields
// accurate trees at a tiny fraction of the complexity of a trained parser.
package parse

import (
	"fmt"
	"strings"

	"kbharvest/internal/text"
)

// Root is the head index of the sentence root.
const Root = -1

// Dependency labels.
const (
	LabelRoot      = "root"
	LabelNsubj     = "nsubj"     // nominal subject
	LabelNsubjPass = "nsubjpass" // passive subject
	LabelDobj      = "dobj"      // direct object
	LabelPrep      = "prep"      // preposition attached to verb or noun
	LabelPobj      = "pobj"      // object of preposition
	LabelAux       = "aux"       // auxiliary
	LabelAuxPass   = "auxpass"   // passive auxiliary
	LabelDet       = "det"       // determiner
	LabelAmod      = "amod"      // adjectival modifier
	LabelAdvmod    = "advmod"    // adverbial modifier
	LabelNn        = "nn"        // noun compound modifier
	LabelNum       = "num"       // numeric modifier
	LabelCc        = "cc"        // coordinating conjunction
	LabelConj      = "conj"      // conjunct
	LabelCop       = "cop"       // copula
	LabelAttr      = "attr"      // predicate nominal ("X is a Y")
	LabelPunct     = "punct"
	LabelDep       = "dep" // unresolved attachment
)

// Arc is one dependency: token Dep is governed by token Head with Label.
type Arc struct {
	Head  int // index into the token slice; Root (-1) for the root
	Dep   int
	Label string
}

// Tree is a parsed sentence: the tagged tokens plus one arc per token.
type Tree struct {
	Tokens []text.TaggedToken
	// Heads[i] is the head index of token i (Root for the root token).
	Heads []int
	// Labels[i] is the dependency label of token i.
	Labels []string
}

// Arcs returns the arc list form of the tree.
func (t *Tree) Arcs() []Arc {
	out := make([]Arc, len(t.Heads))
	for i := range t.Heads {
		out[i] = Arc{Head: t.Heads[i], Dep: i, Label: t.Labels[i]}
	}
	return out
}

// RootIndex returns the index of the root token, or -1 for empty trees.
func (t *Tree) RootIndex() int {
	for i, h := range t.Heads {
		if h == Root {
			return i
		}
	}
	return -1
}

// Children returns the dependents of token i in order.
func (t *Tree) Children(i int) []int {
	var out []int
	for d, h := range t.Heads {
		if h == i {
			out = append(out, d)
		}
	}
	return out
}

// ChildWithLabel returns the first dependent of i carrying the label, or
// -1.
func (t *Tree) ChildWithLabel(i int, label string) int {
	for d, h := range t.Heads {
		if h == i && t.Labels[d] == label {
			return d
		}
	}
	return -1
}

// Path returns the dependency path between tokens a and b as a string such
// as "nsubj↑ root ↓dobj" — rising arcs from a to the lowest common
// ancestor, then descending arcs to b. This is the feature the
// distant-supervision extractor keys on.
func (t *Tree) Path(a, b int) string {
	if a < 0 || b < 0 || a >= len(t.Heads) || b >= len(t.Heads) {
		return ""
	}
	// Ancestor chains.
	chain := func(i int) []int {
		var c []int
		for i != Root {
			c = append(c, i)
			i = t.Heads[i]
			if len(c) > len(t.Heads) { // cycle guard
				break
			}
		}
		return c
	}
	ca, cb := chain(a), chain(b)
	anc := map[int]int{} // token -> depth in ca
	for d, tok := range ca {
		anc[tok] = d
	}
	lca, lcaDepthB := -1, -1
	for d, tok := range cb {
		if _, ok := anc[tok]; ok {
			lca, lcaDepthB = tok, d
			break
		}
	}
	if lca == -1 {
		return ""
	}
	var parts []string
	for _, tok := range ca {
		if tok == lca {
			break
		}
		parts = append(parts, t.Labels[tok]+"↑")
	}
	lcaWord := text.Lemma(t.Tokens[lca].Text, t.Tokens[lca].Tag)
	parts = append(parts, lcaWord)
	var down []string
	for d := 0; d < lcaDepthB; d++ {
		down = append(down, "↓"+t.Labels[cb[d]])
	}
	for i := len(down) - 1; i >= 0; i-- {
		parts = append(parts, down[i])
	}
	return strings.Join(parts, " ")
}

// String renders the tree one arc per line for debugging.
func (t *Tree) String() string {
	var b strings.Builder
	for i, tok := range t.Tokens {
		head := "ROOT"
		if t.Heads[i] != Root {
			head = t.Tokens[t.Heads[i]].Text
		}
		fmt.Fprintf(&b, "%-15s %-6s %-10s %s\n", tok.Text, tok.Tag, t.Labels[i], head)
	}
	return b.String()
}

// Parse builds a dependency tree for one tagged sentence.
func Parse(tokens []text.TaggedToken) *Tree {
	n := len(tokens)
	t := &Tree{
		Tokens: tokens,
		Heads:  make([]int, n),
		Labels: make([]string, n),
	}
	for i := range t.Heads {
		t.Heads[i] = Root // provisional; exactly one will stay Root
		t.Labels[i] = LabelDep
	}
	if n == 0 {
		return t
	}

	tag := func(i int) string { return tokens[i].Tag }
	isVerb := func(i int) bool {
		switch tag(i) {
		case text.TagVB, text.TagVBD, text.TagVBZ, text.TagVBP, text.TagVBG, text.TagVBN:
			return true
		}
		return false
	}
	isNoun := func(i int) bool {
		switch tag(i) {
		case text.TagNN, text.TagNNS, text.TagNNP, text.TagPRP, text.TagCD:
			return true
		}
		return false
	}
	isBeForm := func(i int) bool {
		switch strings.ToLower(tokens[i].Text) {
		case "is", "are", "was", "were", "be", "been", "being", "am":
			return true
		}
		return false
	}

	// 1. Find the main verb: the last verb of the first verb group; in
	// "was founded", the participle is the main verb and "was" its
	// auxiliary. A copula clause ("X is a Y") has no second verb; then the
	// be-form is provisionally the main verb and is demoted to cop later
	// if a predicate nominal follows.
	main := -1
	for i := 0; i < n; i++ {
		if !isVerb(i) {
			continue
		}
		main = i
		// Extend over the verb group: aux (be/have/modal) + participles.
		j := i
		for j+1 < n && (isVerb(j+1) || (tag(j+1) == text.TagRB && j+2 < n && isVerb(j+2))) {
			if tag(j+1) == text.TagRB {
				j += 2
			} else {
				j++
			}
			main = j
		}
		break
	}

	// 2. Noun-phrase internal structure: determiners, adjectives, numbers
	// and compound nouns attach to the rightmost noun of their NP run.
	attachNPInternals(t, tokens)

	if main == -1 {
		// No verb: promote the last noun head to root, attach the rest.
		root := -1
		for i := n - 1; i >= 0; i-- {
			if isNoun(i) && t.Heads[i] == Root {
				if root == -1 {
					root = i
					t.Labels[i] = LabelRoot
				}
			}
		}
		if root == -1 {
			t.Labels[0] = LabelRoot
			root = 0
		}
		attachLeftovers(t, root)
		return t
	}

	t.Heads[main] = Root
	t.Labels[main] = LabelRoot

	// 3. Auxiliaries and adverbs before the main verb inside its group.
	passive := false
	for i := main - 1; i >= 0 && (isVerb(i) || tag(i) == text.TagRB || tag(i) == text.TagMD); i-- {
		t.Heads[i] = main
		switch {
		case tag(i) == text.TagRB:
			t.Labels[i] = LabelAdvmod
		case tag(i) == text.TagMD:
			t.Labels[i] = LabelAux
		case isBeForm(i) && tag(main) == text.TagVBN:
			t.Labels[i] = LabelAuxPass
			passive = true
		default:
			t.Labels[i] = LabelAux
		}
	}

	// 4. Subject: head noun of the NP immediately left of the verb group.
	subj := -1
	for i := main - 1; i >= 0; i-- {
		if t.Heads[i] == main || (isVerb(i) && i != main) {
			continue // skip the verb group
		}
		if isNoun(i) && npHead(t, i) == i {
			subj = i
			break
		}
		if tag(i) == text.TagPct {
			break
		}
	}
	if subj != -1 {
		t.Heads[subj] = main
		if passive {
			t.Labels[subj] = LabelNsubjPass
		} else {
			t.Labels[subj] = LabelNsubj
		}
	}

	// 5. Right side of the verb: objects, predicate nominals,
	// prepositional phrases. Scan left to right.
	copula := isBeForm(main) && tag(main) != text.TagVBN
	lastNounHead := main
	i := main + 1
	for i < n {
		switch {
		case tag(i) == text.TagIN || tag(i) == text.TagTO:
			// Preposition: attach to nearest verb-or-noun on the left
			// (here: main verb unless directly after a noun head).
			prepHead := main
			if lastNounHead != main && i > 0 && npHead(t, i-1) == lastNounHead {
				prepHead = lastNounHead
			}
			t.Heads[i] = prepHead
			t.Labels[i] = LabelPrep
			// Its object: next NP head.
			if obj := nextNPHead(t, i+1); obj != -1 {
				t.Heads[obj] = i
				t.Labels[obj] = LabelPobj
				lastNounHead = obj
				i = obj + 1
				continue
			}
			i++
		case isNoun(i) && npHead(t, i) == i && t.Heads[i] == Root:
			if copula {
				t.Heads[i] = main
				t.Labels[i] = LabelAttr
			} else if t.ChildWithLabel(main, LabelDobj) == -1 && !passive {
				t.Heads[i] = main
				t.Labels[i] = LabelDobj
			} else {
				// Additional bare NP: conjunct of the previous object.
				t.Heads[i] = lastNounHead
				t.Labels[i] = LabelConj
			}
			lastNounHead = i
			i++
		case tag(i) == text.TagCC:
			t.Heads[i] = lastNounHead
			t.Labels[i] = LabelCc
			// Conjunct NP after the conjunction.
			if obj := nextNPHead(t, i+1); obj != -1 {
				t.Heads[obj] = lastNounHead
				t.Labels[obj] = LabelConj
				i = obj + 1
				continue
			}
			i++
		case tag(i) == text.TagRB:
			t.Heads[i] = main
			t.Labels[i] = LabelAdvmod
			i++
		case tag(i) == text.TagPct:
			t.Heads[i] = main
			t.Labels[i] = LabelPunct
			i++
		default:
			i++
		}
	}

	// 6. Leftover tokens (left-of-subject adverbs, punctuation, stray
	// prepositions before the subject) attach to the main verb.
	attachLeftovers(t, main)
	return t
}

// attachNPInternals links det/amod/num/nn dependents to the rightmost noun
// of each contiguous noun-phrase run.
func attachNPInternals(t *Tree, tokens []text.TaggedToken) {
	n := len(tokens)
	i := 0
	for i < n {
		switch tokens[i].Tag {
		case text.TagDT, text.TagJJ, text.TagCD, text.TagNN, text.TagNNS, text.TagNNP:
			// Find the extent of this NP run.
			j := i
			lastNoun := -1
			for j < n {
				switch tokens[j].Tag {
				case text.TagDT, text.TagJJ, text.TagCD:
					j++
					continue
				case text.TagNN, text.TagNNS, text.TagNNP:
					lastNoun = j
					j++
					continue
				}
				break
			}
			if lastNoun == -1 {
				i = j
				continue
			}
			for k := i; k < lastNoun; k++ {
				t.Heads[k] = lastNoun
				switch tokens[k].Tag {
				case text.TagDT:
					t.Labels[k] = LabelDet
				case text.TagJJ:
					t.Labels[k] = LabelAmod
				case text.TagCD:
					t.Labels[k] = LabelNum
				default:
					t.Labels[k] = LabelNn
				}
			}
			i = j
		default:
			i++
		}
	}
}

// npHead returns the index of the noun that token i's NP run attaches to
// (i itself if it is the head).
func npHead(t *Tree, i int) int {
	if i < 0 || i >= len(t.Heads) {
		return -1
	}
	h := t.Heads[i]
	if h != Root && (t.Labels[i] == LabelDet || t.Labels[i] == LabelAmod || t.Labels[i] == LabelNum || t.Labels[i] == LabelNn) {
		return h
	}
	return i
}

// nextNPHead finds the head of the next NP at or after position i.
func nextNPHead(t *Tree, i int) int {
	for j := i; j < len(t.Tokens); j++ {
		switch t.Tokens[j].Tag {
		case text.TagNN, text.TagNNS, text.TagNNP, text.TagPRP, text.TagCD:
			return npHead(t, j)
		case text.TagDT, text.TagJJ:
			continue
		default:
			return -1
		}
	}
	return -1
}

// attachLeftovers points every unattached non-root token at fallbackHead.
func attachLeftovers(t *Tree, fallbackHead int) {
	for i := range t.Heads {
		if i == fallbackHead {
			continue
		}
		if t.Heads[i] == Root && t.Labels[i] != LabelRoot {
			t.Heads[i] = fallbackHead
			if t.Tokens[i].Tag == text.TagPct {
				t.Labels[i] = LabelPunct
			} else {
				t.Labels[i] = LabelDep
			}
		}
	}
}

// ParseSentence tokenizes, tags, and parses a raw sentence.
func ParseSentence(sentence string) *Tree {
	return Parse(text.Tag(text.Tokenize(sentence)))
}
