package ned

import (
	"math"

	"kbharvest/internal/text"
)

// ContextModel holds per-entity keyphrase profiles as tf-idf stem vectors
// built from the entity's article text — the "salient phrases associated
// with an entity" side of the tutorial's NED equation.
type ContextModel struct {
	vecs map[string]map[string]float64 // entity -> stem -> tf-idf weight
	df   map[string]int
	n    int
}

// NewContextModel returns an empty model.
func NewContextModel() *ContextModel {
	return &ContextModel{
		vecs: make(map[string]map[string]float64),
		df:   make(map[string]int),
	}
}

// AddDocument registers an entity's profile text (typically its article).
func (m *ContextModel) AddDocument(entity, body string) {
	tf := make(map[string]float64)
	for _, stem := range text.ContentStems(body) {
		tf[stem]++
	}
	m.vecs[entity] = tf
	for stem := range tf {
		m.df[stem]++
	}
	m.n++
}

// Finalize converts raw term frequencies to normalized tf-idf vectors.
// Call once after all AddDocument calls.
func (m *ContextModel) Finalize() {
	for entity, tf := range m.vecs {
		var norm float64
		for stem, f := range tf {
			idf := math.Log(float64(m.n+1) / float64(m.df[stem]+1))
			w := f * idf
			tf[stem] = w
			norm += w * w
		}
		norm = math.Sqrt(norm)
		if norm > 0 {
			for stem := range tf {
				tf[stem] /= norm
			}
		}
		m.vecs[entity] = tf
	}
}

// Similarity scores an entity's profile against a context word bag
// (cosine over tf-idf).
func (m *ContextModel) Similarity(entity string, contextStems map[string]float64) float64 {
	vec, ok := m.vecs[entity]
	if !ok {
		return 0
	}
	dot := 0.0
	for stem, w := range contextStems {
		dot += w * vec[stem]
	}
	return dot
}

// ContextVector builds the normalized stem vector of a mention's context.
func ContextVector(context string) map[string]float64 {
	tf := make(map[string]float64)
	for _, stem := range text.ContentStems(context) {
		tf[stem]++
	}
	var norm float64
	for _, f := range tf {
		norm += f * f
	}
	norm = math.Sqrt(norm)
	if norm > 0 {
		for stem := range tf {
			tf[stem] /= norm
		}
	}
	return tf
}

// Relatedness measures entity-entity semantic relatedness with the
// Milne-Witten inlink measure over the article hyperlink graph — the
// "coherence" side of the tutorial's NED equation.
type Relatedness struct {
	inlinks map[string]map[string]bool // entity -> set of linking pages
	total   int                        // total number of pages
}

// NewRelatedness returns an empty relatedness model.
func NewRelatedness() *Relatedness {
	return &Relatedness{inlinks: make(map[string]map[string]bool)}
}

// AddLinks registers one page's outgoing links to entities.
func (r *Relatedness) AddLinks(page string, targets []string) {
	for _, t := range targets {
		if r.inlinks[t] == nil {
			r.inlinks[t] = make(map[string]bool)
		}
		r.inlinks[t][page] = true
	}
	r.total++
}

// Score returns Milne-Witten relatedness in [0,1]: 1 - normalized
// log-overlap distance of the entities' inlink sets.
func (r *Relatedness) Score(a, b string) float64 {
	la, lb := r.inlinks[a], r.inlinks[b]
	if len(la) == 0 || len(lb) == 0 || r.total == 0 {
		return 0
	}
	inter := 0
	small, large := la, lb
	if len(lb) < len(la) {
		small, large = lb, la
	}
	for p := range small {
		if large[p] {
			inter++
		}
	}
	if inter == 0 {
		return 0
	}
	maxLen := math.Log(float64(max(len(la), len(lb))))
	minLen := math.Log(float64(min(len(la), len(lb))))
	interLog := math.Log(float64(inter))
	denom := math.Log(float64(r.total)) - minLen
	if denom <= 0 {
		return 1
	}
	score := 1 - (maxLen-interLog)/denom
	if score < 0 {
		return 0
	}
	if score > 1 {
		return 1
	}
	return score
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
