package ned

import (
	"strings"
	"testing"

	"kbharvest/internal/eval"
	"kbharvest/internal/synth"
)

func TestDictionaryPriors(t *testing.T) {
	b := NewBuilder()
	b.Observe("Jobs", "kb:Steve_Jobs", 8)
	b.Observe("Jobs", "kb:Laurene_Jobs", 2)
	d := b.Build()
	cands := d.Candidates("jobs") // case-insensitive
	if len(cands) != 2 {
		t.Fatalf("candidates = %+v", cands)
	}
	if cands[0].Entity != "kb:Steve_Jobs" || cands[0].Prior != 0.8 {
		t.Errorf("top candidate = %+v", cands[0])
	}
	if cands[1].Prior != 0.2 {
		t.Errorf("second prior = %v", cands[1].Prior)
	}
}

func TestDictionaryObserveAccumulates(t *testing.T) {
	b := NewBuilder()
	b.Observe("X", "e1", 1)
	b.Observe("X", "e1", 1)
	b.Observe("X", "e2", 2)
	d := b.Build()
	cands := d.Candidates("X")
	if len(cands) != 2 || cands[0].Prior != 0.5 {
		t.Errorf("candidates = %+v", cands)
	}
}

func TestDictionaryAmbiguity(t *testing.T) {
	b := NewBuilder()
	b.Observe("unique", "e1", 1)
	b.Observe("shared", "e1", 1)
	b.Observe("shared", "e2", 1)
	d := b.Build()
	surfaces, ambiguous := d.Ambiguity()
	if surfaces != 2 || ambiguous != 1 {
		t.Errorf("ambiguity = %d/%d", ambiguous, surfaces)
	}
}

func TestDetectMentions(t *testing.T) {
	b := NewBuilder()
	b.Observe("Steve Jobs", "kb:Steve_Jobs", 1)
	b.Observe("Apple", "kb:Apple", 1)
	d := b.Build()
	text := "Steve Jobs presented the new Apple product."
	ms := d.DetectMentions(text, 3)
	if len(ms) != 2 {
		t.Fatalf("mentions = %+v", ms)
	}
	if text[ms[0].Start:ms[0].End] != "Steve Jobs" {
		t.Errorf("first mention = %q", text[ms[0].Start:ms[0].End])
	}
	// Longest match wins: "Steve Jobs" not "Jobs".
	b.Observe("Jobs", "kb:Steve_Jobs", 1)
	d = b.Build()
	ms = d.DetectMentions(text, 3)
	if len(ms) != 2 || text[ms[0].Start:ms[0].End] != "Steve Jobs" {
		t.Errorf("longest match failed: %+v", ms)
	}
}

func TestContextModelSimilarity(t *testing.T) {
	m := NewContextModel()
	m.AddDocument("kb:physicist", "quantum theory relativity physics research laboratory")
	m.AddDocument("kb:musician", "album concert guitar stage tour music")
	m.Finalize()
	physCtx := ContextVector("the physics laboratory published quantum research")
	if m.Similarity("kb:physicist", physCtx) <= m.Similarity("kb:musician", physCtx) {
		t.Error("context similarity failed to separate profiles")
	}
	if m.Similarity("kb:unknown", physCtx) != 0 {
		t.Error("unknown entity should score 0")
	}
}

func TestRelatednessScore(t *testing.T) {
	r := NewRelatedness()
	// a and b share inlinks; c is isolated.
	r.AddLinks("p1", []string{"a", "b"})
	r.AddLinks("p2", []string{"a", "b"})
	r.AddLinks("p3", []string{"a", "c"})
	r.AddLinks("p4", []string{"d"})
	ab := r.Score("a", "b")
	ac := r.Score("a", "c")
	if ab <= ac {
		t.Errorf("relatedness: ab=%v should exceed ac=%v", ab, ac)
	}
	if got := r.Score("a", "zzz"); got != 0 {
		t.Errorf("unknown entity relatedness = %v", got)
	}
	if ab < 0 || ab > 1 {
		t.Errorf("relatedness out of range: %v", ab)
	}
}

func TestModeString(t *testing.T) {
	if PriorOnly.String() != "prior" || Joint.String() != "prior+context+coherence" {
		t.Error("mode strings wrong")
	}
}

// buildModels wires NED models from a synthetic world + corpus, the way
// the pipeline does in production.
func buildModels(w *synth.World, corpus *synth.Corpus) (*Dictionary, *ContextModel, *Relatedness) {
	b := NewBuilder()
	for _, e := range w.Entities {
		b.Observe(e.Name, e.ID, 4)
		for _, a := range e.Aliases {
			b.Observe(a, e.ID, 1)
		}
	}
	// Anchor statistics from linked mentions.
	for _, a := range corpus.Articles {
		for _, m := range a.Mentions {
			if m.Linked {
				b.Observe(m.Surface, m.Entity, 2)
			}
		}
	}
	dict := b.Build()
	ctx := NewContextModel()
	rel := NewRelatedness()
	for _, a := range corpus.Articles {
		ctx.AddDocument(a.Subject, a.Text)
		rel.AddLinks(a.ID, a.Links)
	}
	ctx.Finalize()
	return dict, ctx, rel
}

func nedWorld(seed int64) (*synth.World, *synth.Corpus) {
	w := synth.Generate(synth.Config{
		People: 120, Companies: 30, Cities: 12, Countries: 4,
		Universities: 8, Products: 24, Prizes: 6,
	}, seed)
	return w, synth.BuildCorpus(w, synth.DefaultCorpusOptions())
}

// evalMode disambiguates every ambiguous alias mention in the corpus and
// scores accuracy against the gold referent.
func evalMode(t *testing.T, w *synth.World, corpus *synth.Corpus, linker *Linker, mode Mode) (float64, int) {
	t.Helper()
	correct, total := 0, 0
	for _, a := range corpus.Articles {
		var mentions []Mention
		var gold []string
		for _, m := range a.Mentions {
			cands := linker.Dict.Candidates(m.Surface)
			if len(cands) < 2 {
				continue // unambiguous; every mode gets it right
			}
			mentions = append(mentions, Mention{
				Surface: m.Surface,
				Context: contextWindow(a.Text, m.Start, m.End, 200),
			})
			gold = append(gold, m.Entity)
		}
		if len(mentions) == 0 {
			continue
		}
		results := linker.Disambiguate(mentions, mode)
		for i, r := range results {
			total++
			if r.Entity == gold[i] {
				correct++
			}
		}
	}
	if total == 0 {
		t.Fatal("no ambiguous mentions to evaluate")
	}
	return eval.Accuracy(correct, total), total
}

func contextWindow(text string, start, end, radius int) string {
	lo := start - radius
	if lo < 0 {
		lo = 0
	}
	hi := end + radius
	if hi > len(text) {
		hi = len(text)
	}
	return text[lo:hi]
}

// The tutorial's central NED claim (E13): context beats prior, and
// coherence beats context.
func TestContextBeatsPrior(t *testing.T) {
	w, corpus := nedWorld(71)
	dict, ctx, rel := buildModels(w, corpus)
	linker := NewLinker(dict, ctx, rel)
	accPrior, n := evalMode(t, w, corpus, linker, PriorOnly)
	accCtx, _ := evalMode(t, w, corpus, linker, PriorContext)
	t.Logf("prior=%.3f context=%.3f over %d ambiguous mentions", accPrior, accCtx, n)
	if accCtx <= accPrior {
		t.Errorf("context (%.3f) should beat prior (%.3f)", accCtx, accPrior)
	}
}

func TestJointAtLeastMatchesContext(t *testing.T) {
	w, corpus := nedWorld(72)
	dict, ctx, rel := buildModels(w, corpus)
	linker := NewLinker(dict, ctx, rel)
	accCtx, _ := evalMode(t, w, corpus, linker, PriorContext)
	accJoint, n := evalMode(t, w, corpus, linker, Joint)
	t.Logf("context=%.3f joint=%.3f over %d ambiguous mentions", accCtx, accJoint, n)
	if accJoint < accCtx-0.02 {
		t.Errorf("joint (%.3f) fell below context (%.3f)", accJoint, accCtx)
	}
	if accJoint < 0.5 {
		t.Errorf("joint accuracy too low: %.3f", accJoint)
	}
}

func TestDisambiguateNoCandidates(t *testing.T) {
	linker := NewLinker(NewDictionary(), NewContextModel(), NewRelatedness())
	results := linker.Disambiguate([]Mention{{Surface: "Unknown Name"}}, Joint)
	if len(results) != 1 || !results[0].NoCandidate {
		t.Errorf("results = %+v", results)
	}
}

func TestTopCandidates(t *testing.T) {
	b := NewBuilder()
	b.Observe("X", "e1", 3)
	b.Observe("X", "e2", 1)
	linker := NewLinker(b.Build(), NewContextModel(), NewRelatedness())
	top := linker.TopCandidates(Mention{Surface: "X"}, 1)
	if len(top) != 1 || top[0].Entity != "e1" {
		t.Errorf("top = %+v", top)
	}
	if got := linker.TopCandidates(Mention{Surface: "none"}, 3); got != nil {
		t.Errorf("unknown surface should yield nil, got %v", got)
	}
}

func TestRelatednessEmptyModel(t *testing.T) {
	r := NewRelatedness()
	if got := r.Score("a", "b"); got != 0 {
		t.Errorf("empty model relatedness = %v", got)
	}
}

func TestDisambiguateSingleMentionJointFallsBack(t *testing.T) {
	// Joint mode with one mention has no coherence partners; it must
	// behave like prior+context, not fail.
	b := NewBuilder()
	b.Observe("X", "e1", 3)
	b.Observe("X", "e2", 1)
	linker := NewLinker(b.Build(), NewContextModel(), NewRelatedness())
	res := linker.Disambiguate([]Mention{{Surface: "X"}}, Joint)
	if len(res) != 1 || res[0].Entity != "e1" {
		t.Errorf("single-mention joint = %+v", res)
	}
}

func TestDetectMentionsDefaultsMaxWords(t *testing.T) {
	b := NewBuilder()
	b.Observe("Alpha Beta Gamma", "e1", 1)
	d := b.Build()
	ms := d.DetectMentions("the Alpha Beta Gamma device", 0) // 0 -> default 3
	if len(ms) != 1 {
		t.Errorf("default maxWords failed: %+v", ms)
	}
}

func TestNormSurface(t *testing.T) {
	if normSurface("  Steve   JOBS ") != "steve jobs" {
		t.Error("normalization wrong")
	}
}

func TestMentionSurfaceRoundTrip(t *testing.T) {
	// DetectMentions output must slice back to the surface.
	b := NewBuilder()
	b.Observe("Nova 3", "kb:Nova_3", 1)
	d := b.Build()
	text := "I love my Nova 3 phone."
	ms := d.DetectMentions(text, 3)
	if len(ms) != 1 {
		t.Fatalf("mentions = %+v", ms)
	}
	if !strings.EqualFold(text[ms[0].Start:ms[0].End], "Nova 3") {
		t.Errorf("span = %q", text[ms[0].Start:ms[0].End])
	}
}
