// Package ned implements named-entity disambiguation (§4): mapping
// ambiguous mentions ("Jobs", "Galaxy") to canonical KB entities. The
// linker follows the AIDA recipe the tutorial describes: a name dictionary
// with mention-entity priors, context similarity between the mention's
// surroundings and an entity's keyphrase profile, and a coherence measure
// between candidate entities resolved jointly across all mentions of a
// document. Baselines (prior-only, context-only) are first-class so the
// ablation of experiment E13 falls out naturally.
package ned

import (
	"sort"
	"strings"
)

// Candidate is one entity a surface form may refer to, with its prior.
type Candidate struct {
	Entity string
	Prior  float64
}

// Dictionary maps normalized surface forms to candidate entities.
type Dictionary struct {
	cands map[string][]Candidate
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{cands: make(map[string][]Candidate)}
}

// normSurface folds case and squeezes whitespace.
func normSurface(s string) string {
	return strings.Join(strings.Fields(strings.ToLower(s)), " ")
}

// observations accumulate before Finalize computes priors.
type obs struct {
	entity string
	count  float64
}

// Builder accumulates (surface, entity) observations — from KB labels,
// aliases, and hyperlink anchor statistics — and derives priors from the
// observation counts, mirroring how anchor-text statistics give mention
// priors over Wikipedia.
type Builder struct {
	seen map[string][]obs
}

// NewBuilder returns an empty dictionary builder.
func NewBuilder() *Builder { return &Builder{seen: make(map[string][]obs)} }

// Observe records that surface referred to entity with the given weight.
func (b *Builder) Observe(surface, entity string, weight float64) {
	if weight <= 0 {
		weight = 1
	}
	key := normSurface(surface)
	if key == "" {
		return
	}
	for i := range b.seen[key] {
		if b.seen[key][i].entity == entity {
			b.seen[key][i].count += weight
			return
		}
	}
	b.seen[key] = append(b.seen[key], obs{entity: entity, count: weight})
}

// Build normalizes counts into priors.
func (b *Builder) Build() *Dictionary {
	d := NewDictionary()
	for surface, entries := range b.seen {
		total := 0.0
		for _, e := range entries {
			total += e.count
		}
		list := make([]Candidate, 0, len(entries))
		for _, e := range entries {
			list = append(list, Candidate{Entity: e.entity, Prior: e.count / total})
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].Prior != list[j].Prior {
				return list[i].Prior > list[j].Prior
			}
			return list[i].Entity < list[j].Entity
		})
		d.cands[surface] = list
	}
	return d
}

// Candidates returns the candidate entities of a surface form, most
// probable first.
func (d *Dictionary) Candidates(surface string) []Candidate {
	return d.cands[normSurface(surface)]
}

// Ambiguity returns the number of surface forms with more than one
// candidate — the quantity that makes NED non-trivial.
func (d *Dictionary) Ambiguity() (surfaces, ambiguous int) {
	for _, c := range d.cands {
		surfaces++
		if len(c) > 1 {
			ambiguous++
		}
	}
	return
}

// DetectedMention is one dictionary hit in free text.
type DetectedMention struct {
	Start, End int
	Surface    string
}

// DetectMentions scans text for dictionary surface forms, longest match
// first, non-overlapping. It considers token-aligned spans of up to
// maxWords words.
func (d *Dictionary) DetectMentions(text string, maxWords int) []DetectedMention {
	if maxWords < 1 {
		maxWords = 3
	}
	words := tokenizeOffsets(text)
	var out []DetectedMention
	i := 0
	for i < len(words) {
		matched := false
		for n := maxWords; n >= 1; n-- {
			if i+n > len(words) {
				continue
			}
			start, end := words[i].start, words[i+n-1].end
			surface := text[start:end]
			if _, ok := d.cands[normSurface(surface)]; ok {
				out = append(out, DetectedMention{Start: start, End: end, Surface: surface})
				i += n
				matched = true
				break
			}
		}
		if !matched {
			i++
		}
	}
	return out
}

type wordSpan struct{ start, end int }

func tokenizeOffsets(s string) []wordSpan {
	var out []wordSpan
	i := 0
	for i < len(s) {
		for i < len(s) && !isWordByte(s[i]) {
			i++
		}
		if i >= len(s) {
			break
		}
		start := i
		for i < len(s) && isWordByte(s[i]) {
			i++
		}
		out = append(out, wordSpan{start, i})
	}
	return out
}

func isWordByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' || b == '\'' || b == '-' || b >= 0x80
}
