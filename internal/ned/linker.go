package ned

import (
	"sort"
)

// Linker combines the three NED signals. Weights follow the AIDA
// formulation: score(mention m -> entity e) =
//
//	α·prior(m,e) + β·contextSim(m,e) + γ·(coherence of e with the
//	entities chosen for the document's other mentions)
type Linker struct {
	Dict *Dictionary
	Ctx  *ContextModel
	Rel  *Relatedness
	// Alpha, Beta, Gamma weight prior, context, coherence. Defaults
	// 0.3/0.4/0.3.
	Alpha, Beta, Gamma float64
}

// NewLinker wires the models with default weights.
func NewLinker(d *Dictionary, c *ContextModel, r *Relatedness) *Linker {
	return &Linker{Dict: d, Ctx: c, Rel: r, Alpha: 0.3, Beta: 0.4, Gamma: 0.3}
}

// Mention is one mention to disambiguate: its surface form and the text
// around it.
type Mention struct {
	Surface string
	Context string
}

// Result is the linker's decision for one mention.
type Result struct {
	Entity string
	Score  float64
	// NoCandidate is true when the dictionary knows no entity for the
	// surface form.
	NoCandidate bool
}

// Mode selects the objective — the E13 ablation axis.
type Mode int

const (
	// PriorOnly picks argmax prior (the popularity baseline).
	PriorOnly Mode = iota
	// PriorContext adds context similarity.
	PriorContext
	// Joint adds pairwise coherence across the document's mentions,
	// optimized greedily (full AIDA-style objective).
	Joint
)

func (m Mode) String() string {
	switch m {
	case PriorOnly:
		return "prior"
	case PriorContext:
		return "prior+context"
	case Joint:
		return "prior+context+coherence"
	}
	return "mode?"
}

// Disambiguate resolves all mentions of one document under the given mode.
func (l *Linker) Disambiguate(mentions []Mention, mode Mode) []Result {
	n := len(mentions)
	results := make([]Result, n)
	cands := make([][]Candidate, n)
	ctxVecs := make([]map[string]float64, n)
	for i, m := range mentions {
		cands[i] = l.Dict.Candidates(m.Surface)
		if len(cands[i]) == 0 {
			results[i] = Result{NoCandidate: true}
			continue
		}
		if mode != PriorOnly {
			ctxVecs[i] = ContextVector(m.Context)
		}
	}
	local := func(i, c int) float64 {
		s := l.Alpha * cands[i][c].Prior
		if mode != PriorOnly && l.Ctx != nil {
			s += l.Beta * l.Ctx.Similarity(cands[i][c].Entity, ctxVecs[i])
		}
		return s
	}
	// Initial assignment: best local score.
	choice := make([]int, n)
	for i := range mentions {
		if results[i].NoCandidate {
			choice[i] = -1
			continue
		}
		best, bestScore := 0, local(i, 0)
		for c := 1; c < len(cands[i]); c++ {
			if s := local(i, c); s > bestScore {
				best, bestScore = c, s
			}
		}
		choice[i] = best
		results[i] = Result{Entity: cands[i][best].Entity, Score: bestScore}
	}
	if mode != Joint || l.Rel == nil || n < 2 {
		return results
	}
	// Greedy coherence sweeps: re-pick each mention's entity to maximize
	// local + average relatedness to the other current choices.
	objective := func(i, c int) float64 {
		s := local(i, c)
		coh, cnt := 0.0, 0
		for j := range mentions {
			if j == i || choice[j] < 0 {
				continue
			}
			coh += l.Rel.Score(cands[i][c].Entity, cands[j][choice[j]].Entity)
			cnt++
		}
		if cnt > 0 {
			s += l.Gamma * coh / float64(cnt)
		}
		return s
	}
	for sweep := 0; sweep < 5; sweep++ {
		changed := false
		for i := range mentions {
			if choice[i] < 0 {
				continue
			}
			best, bestScore := choice[i], objective(i, choice[i])
			for c := range cands[i] {
				if c == choice[i] {
					continue
				}
				if s := objective(i, c); s > bestScore {
					best, bestScore = c, s
				}
			}
			if best != choice[i] {
				choice[i] = best
				changed = true
			}
			results[i] = Result{Entity: cands[i][choice[i]].Entity, Score: objective(i, choice[i])}
		}
		if !changed {
			break
		}
	}
	return results
}

// TopCandidates exposes the ranked candidates with their local scores —
// useful for debugging and the nedtool command.
func (l *Linker) TopCandidates(m Mention, k int) []Candidate {
	cands := l.Dict.Candidates(m.Surface)
	if len(cands) == 0 {
		return nil
	}
	ctx := ContextVector(m.Context)
	scored := make([]Candidate, len(cands))
	for i, c := range cands {
		s := l.Alpha * c.Prior
		if l.Ctx != nil {
			s += l.Beta * l.Ctx.Similarity(c.Entity, ctx)
		}
		scored[i] = Candidate{Entity: c.Entity, Prior: s}
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].Prior != scored[j].Prior {
			return scored[i].Prior > scored[j].Prior
		}
		return scored[i].Entity < scored[j].Entity
	})
	if k > 0 && k < len(scored) {
		scored = scored[:k]
	}
	return scored
}
