// Package shardkb is the scatter/gather layer of the serving tier: the
// shard function that hash-partitions a KB by subject term, and an HTTP
// client that executes single triple patterns against N kbserve shards —
// routing a subject-constant pattern to exactly one shard (the fast path
// that makes point lookups cost one RPC regardless of shard count) and
// fanning everything else out concurrently with per-shard timeouts,
// bounded in-flight RPCs, and an explicit partial-failure policy.
//
// Each shard may be a replica group (Options.Shards): replicas serve the
// same partition, and the client rides out replica faults by retrying
// transient failures (connection errors, 5xx, timeouts, torn bodies)
// across replicas with jittered exponential backoff, optionally hedging
// slow requests (first reply wins, the loser is cancelled), and wrapping
// every replica in a circuit breaker that sheds traffic from a dead
// replica until its half-open /readyz probe succeeds. Stats reports
// retries, hedges fired/won, breaker transitions, and per-replica error
// counts.
//
// The shard function is the contract between the builder and the router:
// kbbuild -shards partitions facts with TripleShard, and the client pins
// subject-constant patterns with PatternShard, so a point lookup lands on
// the one shard that can hold its facts. Both sides must agree — changing
// the hash invalidates every partitioned snapshot.
package shardkb

import (
	"hash/fnv"
	"io"

	"kbharvest/internal/core"
	"kbharvest/internal/rdf"
)

// ShardOf maps a term to one of n shards by FNV-1a over its canonical
// N-Triples form. n <= 1 always yields shard 0 — the single-file snapshot
// format is the N=1 case of the partitioned one.
func ShardOf(t rdf.Term, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New64a()
	io.WriteString(h, t.String())
	return int(h.Sum64() % uint64(n))
}

// TripleShard maps a fact to its home shard: facts are partitioned by
// subject, so all facts about one entity are co-located.
func TripleShard(t rdf.Triple, n int) int { return ShardOf(t.S, n) }

// PatternShard reports the one shard that can match p, when p's subject
// is a constant: subject-hash partitioning pins the pattern. A variable
// or wildcard subject means every shard may hold matches (false).
func PatternShard(p core.Pattern, n int) (int, bool) {
	if p.S.Var != "" || p.S.Const.IsZero() {
		return 0, false
	}
	return ShardOf(p.S.Const, n), true
}

// FormatTerm renders a pattern term in the wire syntax core.ParsePattern
// accepts: "?name" for variables, the canonical N-Triples form for
// constants (which ParsePatternTerm round-trips, literals included).
func FormatTerm(pt core.PatternTerm) string {
	if pt.Var != "" {
		return "?" + string(pt.Var)
	}
	return pt.Const.String()
}

// FormatPattern renders a pattern as the "s p o" line the /query and
// /estimate endpoints parse.
func FormatPattern(p core.Pattern) string {
	return FormatTerm(p.S) + " " + FormatTerm(p.P) + " " + FormatTerm(p.O)
}
