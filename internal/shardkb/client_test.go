package shardkb

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kbharvest/internal/core"
	"kbharvest/internal/rdf"
	"kbharvest/internal/serve"
)

func testTriples() []rdf.Triple {
	return []rdf.Triple{
		rdf.T("kb:jobs", "kb:founded", "kb:apple"),
		rdf.T("kb:jobs", "kb:bornIn", "kb:sf"),
		rdf.T("kb:wozniak", "kb:founded", "kb:apple"),
		rdf.T("kb:gates", "kb:founded", "kb:microsoft"),
		rdf.T("kb:apple", "kb:locatedIn", "kb:cupertino"),
		rdf.T("kb:microsoft", "kb:locatedIn", "kb:redmond"),
	}
}

// startShards partitions triples across n in-process kbserve instances by
// the package shard function and returns their base URLs plus a per-shard
// request counter.
func startShards(t *testing.T, triples []rdf.Triple, n int) ([]string, []*atomic.Uint64) {
	t.Helper()
	stores := make([]*core.Store, n)
	for i := range stores {
		stores[i] = core.NewStore()
	}
	for _, tr := range triples {
		stores[TripleShard(tr, n)].Add(tr)
	}
	urls := make([]string, n)
	counters := make([]*atomic.Uint64, n)
	for i := range stores {
		h := serve.NewServer(stores[i], serve.Options{Timeout: time.Second})
		ctr := &atomic.Uint64{}
		counters[i] = ctr
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ctr.Add(1)
			h.ServeHTTP(w, r)
		}))
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return urls, counters
}

func mustClient(t *testing.T, urls []string, opt Options) *Client {
	t.Helper()
	c, err := New(urls, opt)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestShardOfDeterministicAndBounded(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		seen := map[int]bool{}
		for i := 0; i < 200; i++ {
			term := rdf.NewIRI(fmt.Sprintf("kb:e%d", i))
			s := ShardOf(term, n)
			if s < 0 || s >= n {
				t.Fatalf("ShardOf(%v, %d) = %d out of range", term, n, s)
			}
			if s != ShardOf(term, n) {
				t.Fatal("ShardOf not deterministic")
			}
			seen[s] = true
		}
		if n > 1 && len(seen) < 2 {
			t.Errorf("n=%d: all 200 terms landed on one shard", n)
		}
	}
	if ShardOf(rdf.NewIRI("anything"), 1) != 0 {
		t.Error("n=1 must always be shard 0")
	}
}

func TestPatternShardPinsSubjectConstants(t *testing.T) {
	p, _ := core.ParsePattern("kb:jobs kb:founded ?c")
	shard, ok := PatternShard(p, 4)
	if !ok {
		t.Fatal("subject-constant pattern not pinned")
	}
	if want := ShardOf(rdf.NewIRI("kb:jobs"), 4); shard != want {
		t.Errorf("pinned to %d, want %d", shard, want)
	}
	v, _ := core.ParsePattern("?p kb:founded ?c")
	if _, ok := PatternShard(v, 4); ok {
		t.Error("variable-subject pattern must scatter")
	}
}

func TestFormatPatternRoundTrips(t *testing.T) {
	for _, line := range []string{
		"kb:jobs kb:founded ?c",
		"?p kb:founded ?c",
		`?p kb:label "Steve Jobs"`,
	} {
		p, err := core.ParsePattern(line)
		if err != nil {
			t.Fatal(err)
		}
		back, err := core.ParsePattern(FormatPattern(p))
		if err != nil {
			t.Fatalf("FormatPattern(%q) = %q does not re-parse: %v", line, FormatPattern(p), err)
		}
		if back != p {
			t.Errorf("round trip %q -> %q: %+v != %+v", line, FormatPattern(p), back, p)
		}
	}
}

func TestFastPathSingleRPC(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		urls, counters := startShards(t, testTriples(), n)
		c := mustClient(t, urls, Options{})
		p, _ := core.ParsePattern("kb:jobs kb:founded ?c")
		res, err := c.Pattern(context.Background(), p, 0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(res.Bindings) != 1 || res.Bindings[0]["c"] != rdf.NewIRI("kb:apple") {
			t.Fatalf("n=%d: bindings = %v", n, res.Bindings)
		}
		if res.RPCs != 1 {
			t.Errorf("n=%d: point lookup issued %d RPCs, want exactly 1", n, res.RPCs)
		}
		var total uint64
		for _, ctr := range counters {
			total += ctr.Load()
		}
		if total != 1 {
			t.Errorf("n=%d: shards saw %d requests, want exactly 1", n, total)
		}
		st := c.Stats()
		if st.FastPath != 1 || st.Scatters != 0 || st.RPCs != 1 {
			t.Errorf("n=%d: stats = %+v", n, st)
		}
	}
}

func TestScatterGatherMerge(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		urls, _ := startShards(t, testTriples(), n)
		c := mustClient(t, urls, Options{})
		p, _ := core.ParsePattern("?p kb:founded ?c")
		res, err := c.Pattern(context.Background(), p, 0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(res.Bindings) != 3 {
			t.Fatalf("n=%d: got %d rows, want 3: %v", n, len(res.Bindings), res.Bindings)
		}
		if res.RPCs != n || res.Partial {
			t.Errorf("n=%d: RPCs = %d partial = %v", n, res.RPCs, res.Partial)
		}
		founders := map[string]bool{}
		for _, b := range res.Bindings {
			founders[b["p"].Value] = true
		}
		for _, want := range []string{"kb:jobs", "kb:wozniak", "kb:gates"} {
			if !founders[want] {
				t.Errorf("n=%d: founder %s missing from merge", n, want)
			}
		}
		if st := c.Stats(); st.FastPath != 0 || st.Scatters != 1 {
			t.Errorf("n=%d: stats = %+v", n, st)
		}
	}
}

func TestScatterLimit(t *testing.T) {
	urls, _ := startShards(t, testTriples(), 4)
	c := mustClient(t, urls, Options{})
	p, _ := core.ParsePattern("?p kb:founded ?c")
	res, err := c.Pattern(context.Background(), p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 2 {
		t.Errorf("limit 2 returned %d rows", len(res.Bindings))
	}
}

func TestAskThroughFastPath(t *testing.T) {
	urls, _ := startShards(t, testTriples(), 4)
	c := mustClient(t, urls, Options{})
	p, _ := core.ParsePattern("kb:jobs kb:founded kb:apple")
	res, err := c.Pattern(context.Background(), p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 1 || len(res.Bindings[0]) != 0 {
		t.Errorf("ask(true) = %v, want one empty binding", res.Bindings)
	}
	p, _ = core.ParsePattern("kb:jobs kb:founded kb:microsoft")
	res, err = c.Pattern(context.Background(), p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 0 {
		t.Errorf("ask(false) = %v, want no bindings", res.Bindings)
	}
}

func TestEstimatesSumShards(t *testing.T) {
	urls, _ := startShards(t, testTriples(), 4)
	c := mustClient(t, urls, Options{})
	ps := make([]core.Pattern, 0, 3)
	for _, line := range []string{"?p kb:founded ?c", "kb:jobs kb:bornIn ?x", "?p kb:never ?x"} {
		p, _ := core.ParsePattern(line)
		ps = append(ps, p)
	}
	ests, err := c.Estimates(context.Background(), ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 3 {
		t.Fatalf("estimates = %v", ests)
	}
	if ests[0] < 3 {
		t.Errorf("founded estimate = %d, want >= 3", ests[0])
	}
	if ests[1] < 1 {
		t.Errorf("bornIn estimate = %d, want >= 1", ests[1])
	}
	if ests[2] != 0 {
		t.Errorf("unknown predicate estimate = %d, want 0", ests[2])
	}
}

// killShard replaces one shard with a closed server so RPCs to it fail.
func killShard(t *testing.T, urls []string, i int) {
	t.Helper()
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	urls[i] = dead.URL
}

func TestScatterPartialFailureFailsByDefault(t *testing.T) {
	urls, _ := startShards(t, testTriples(), 4)
	killShard(t, urls, 2)
	c := mustClient(t, urls, Options{Timeout: 500 * time.Millisecond})
	p, _ := core.ParsePattern("?p kb:founded ?c")
	_, err := c.Pattern(context.Background(), p, 0)
	if !errors.Is(err, ErrPartial) {
		t.Fatalf("err = %v, want ErrPartial", err)
	}
	if st := c.Stats(); st.PartialFailures != 1 {
		t.Errorf("partial failures = %d, want 1", st.PartialFailures)
	}
}

func TestScatterPartialFailureDegradesWhenAllowed(t *testing.T) {
	triples := testTriples()
	urls, _ := startShards(t, triples, 4)
	const dead = 2
	killShard(t, urls, dead)
	c := mustClient(t, urls, Options{Timeout: 500 * time.Millisecond, AllowPartial: true})
	p, _ := core.ParsePattern("?p kb:founded ?c")
	res, err := c.Pattern(context.Background(), p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Error("result not flagged partial")
	}
	// Exactly the live shards' matches must be present.
	want := 0
	for _, tr := range triples {
		if tr.P.Value == "kb:founded" && TripleShard(tr, 4) != dead {
			want++
		}
	}
	if len(res.Bindings) != want {
		t.Errorf("partial merge has %d rows, want %d", len(res.Bindings), want)
	}
}

func TestFastPathFailurePolicies(t *testing.T) {
	// Pin a lookup to the dead shard: default policy fails the query,
	// AllowPartial degrades to an empty partial result.
	urls, _ := startShards(t, testTriples(), 4)
	p, _ := core.ParsePattern("kb:jobs kb:founded ?c")
	pinned, ok := PatternShard(p, 4)
	if !ok {
		t.Fatal("not pinned")
	}
	killShard(t, urls, pinned)

	strict := mustClient(t, urls, Options{Timeout: 500 * time.Millisecond})
	if _, err := strict.Pattern(context.Background(), p, 0); !errors.Is(err, ErrPartial) {
		t.Fatalf("strict err = %v, want ErrPartial", err)
	}
	lax := mustClient(t, urls, Options{Timeout: 500 * time.Millisecond, AllowPartial: true})
	res, err := lax.Pattern(context.Background(), p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || len(res.Bindings) != 0 {
		t.Errorf("lax result = %+v, want empty partial", res)
	}
}

func TestReady(t *testing.T) {
	urls, _ := startShards(t, testTriples(), 2)
	c := mustClient(t, urls, Options{})
	replies, err := c.Ready(context.Background())
	if err != nil {
		t.Fatalf("Ready: %v", err)
	}
	total := 0
	for i, r := range replies {
		if r == nil {
			t.Fatalf("shard %d reply missing", i)
		}
		total += r.Facts
	}
	if total != len(testTriples()) {
		t.Errorf("ready shards report %d facts, want %d", total, len(testTriples()))
	}

	// An empty shard reports not-ready and fails the tier check.
	empty := httptest.NewServer(serve.NewServer(core.NewStore(), serve.Options{}))
	t.Cleanup(empty.Close)
	c2 := mustClient(t, append(append([]string(nil), urls...), empty.URL), Options{})
	if _, err := c2.Ready(context.Background()); err == nil {
		t.Error("Ready must fail with an empty shard in the tier")
	}
}

// Concurrent fast-path and scatter traffic against live shards: counters
// and merges must be race-clean (run under -race in CI).
func TestClientConcurrent(t *testing.T) {
	urls, _ := startShards(t, testTriples(), 4)
	c := mustClient(t, urls, Options{MaxInFlight: 6})
	point, _ := core.ParsePattern("kb:jobs kb:founded ?c")
	scan, _ := core.ParsePattern("?p kb:founded ?c")
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				p := point
				want := 1
				if (g+i)%2 == 0 {
					p = scan
					want = 3
				}
				res, err := c.Pattern(context.Background(), p, 0)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Bindings) != want {
					errs <- fmt.Errorf("got %d rows, want %d", len(res.Bindings), want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	st := c.Stats()
	if st.FastPath+st.Scatters != 8*40 {
		t.Errorf("executions = %d, want %d", st.FastPath+st.Scatters, 8*40)
	}
}
