package shardkb

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"kbharvest/internal/core"
	"kbharvest/internal/faultkb"
	"kbharvest/internal/serve"
)

// startReplicatedShards partitions testTriples across n shards, stands r
// replicas behind each (all serving the same partition), and fronts every
// replica with a faultkb proxy. Returns the proxy URL groups and the
// injector for each replica, indexed [shard][replica].
func startReplicatedShards(t *testing.T, n, r int) ([][]string, [][]*faultkb.Injector) {
	t.Helper()
	stores := make([]*core.Store, n)
	for i := range stores {
		stores[i] = core.NewStore()
	}
	for _, tr := range testTriples() {
		stores[TripleShard(tr, n)].Add(tr)
	}
	groups := make([][]string, n)
	injectors := make([][]*faultkb.Injector, n)
	for i := 0; i < n; i++ {
		for j := 0; j < r; j++ {
			h := serve.NewServer(stores[i], serve.Options{Timeout: time.Second})
			backend := httptest.NewServer(h)
			t.Cleanup(backend.Close)
			in := faultkb.New(int64(100*i + j))
			proxy := httptest.NewServer(faultkb.NewProxy(backend.URL, in, nil))
			t.Cleanup(proxy.Close)
			groups[i] = append(groups[i], proxy.URL)
			injectors[i] = append(injectors[i], in)
		}
	}
	return groups, injectors
}

func mustReplicatedClient(t *testing.T, groups [][]string, opt Options) *Client {
	t.Helper()
	opt.Shards = groups
	c, err := New(nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// queryAll runs the canonical point lookup and scatter against the tier
// and fails the test on any client-visible error.
func queryAll(t *testing.T, c *Client) {
	t.Helper()
	ctx := context.Background()
	point, _ := core.ParsePattern("kb:jobs kb:founded ?c")
	scatter, _ := core.ParsePattern("?p kb:founded ?c")
	if res, err := c.Pattern(ctx, point, 0); err != nil {
		t.Fatalf("point lookup: %v", err)
	} else if len(res.Bindings) != 1 {
		t.Fatalf("point lookup returned %d rows, want 1", len(res.Bindings))
	}
	if res, err := c.Pattern(ctx, scatter, 0); err != nil {
		t.Fatalf("scatter: %v", err)
	} else if len(res.Bindings) != 3 {
		t.Fatalf("scatter returned %d rows, want 3", len(res.Bindings))
	}
}

// A dead replica (every request dropped) must be invisible to callers:
// retries fail over to the healthy replica of each shard.
func TestReplicaDownFailover(t *testing.T) {
	groups, injectors := startReplicatedShards(t, 2, 2)
	c := mustReplicatedClient(t, groups, Options{RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond})
	for i := range injectors {
		injectors[i][0].SetPlan(faultkb.Plan{DropRate: 1})
	}
	for k := 0; k < 10; k++ {
		queryAll(t, c)
	}
	st := c.Stats()
	if st.Retries == 0 {
		t.Error("no retries recorded with a dead replica in every shard")
	}
	for i, ss := range st.Shards {
		if ss.Replicas[1].RPCs == 0 {
			t.Errorf("shard %d: surviving replica never used", i)
		}
	}
}

// Torn response bodies (advertised length, truncated stream) are
// transient: the client retries them on another replica rather than
// surfacing a decode error.
func TestTruncatedBodyRetries(t *testing.T) {
	groups, injectors := startReplicatedShards(t, 1, 2)
	c := mustReplicatedClient(t, groups, Options{RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond})
	injectors[0][0].SetPlan(faultkb.Plan{TruncateRate: 1})
	for k := 0; k < 5; k++ {
		queryAll(t, c)
	}
	if st := c.Stats(); st.Retries == 0 {
		t.Error("no retries recorded with a truncating replica")
	}
}

// A flapping replica — dead for a burst of requests, then healthy, then
// dead again — must never surface an error to callers.
func TestFlappingReplica(t *testing.T) {
	groups, injectors := startReplicatedShards(t, 2, 2)
	c := mustReplicatedClient(t, groups, Options{
		RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
		BreakerThreshold: -1, // keep traffic flowing to the flapper
	})
	for i := range injectors {
		injectors[i][0].SetScript([]faultkb.Step{
			{N: 3, Plan: faultkb.Plan{DropRate: 1}},
			{N: 3, Plan: faultkb.Plan{}},
			{N: 3, Plan: faultkb.Plan{ErrorRate: 1}},
			{N: 1, Plan: faultkb.Plan{}},
		})
	}
	for k := 0; k < 20; k++ {
		queryAll(t, c)
	}
	if st := c.Stats(); st.Retries == 0 {
		t.Error("flapping replica produced no retries")
	}
}

// A slow (but healthy) replica is rescued by hedging: the hedge to the
// fast replica wins long before the slow attempt's timeout.
func TestSlowReplicaHedging(t *testing.T) {
	groups, injectors := startReplicatedShards(t, 1, 2)
	c := mustReplicatedClient(t, groups, Options{
		Timeout:    5 * time.Second,
		HedgeDelay: 10 * time.Millisecond,
	})
	injectors[0][0].SetPlan(faultkb.Plan{Latency: 2 * time.Second})
	point, _ := core.ParsePattern("kb:jobs kb:founded ?c")
	// The first attempt rotates across replicas, so some queries start on
	// the fast replica (no hedge needed) and some on the slow one (hedge
	// rescues them). Every query must finish well under the 2s latency.
	for k := 0; k < 4; k++ {
		t0 := time.Now()
		res, err := c.Pattern(context.Background(), point, 0)
		took := time.Since(t0)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Bindings) != 1 {
			t.Fatalf("got %d rows, want 1", len(res.Bindings))
		}
		if took > time.Second {
			t.Errorf("hedged lookup took %v; the hedge should have rescued it", took)
		}
	}
	st := c.Stats()
	if st.HedgesFired == 0 {
		t.Error("no hedges fired against a slow replica")
	}
	if st.HedgesWon == 0 {
		t.Error("no hedge won against a 2s-slow replica")
	}
}

// With every replica of a shard down, the default policy fails the query
// loudly; AllowPartial degrades a scatter to the surviving shards and
// marks the result partial.
func TestAllReplicasDownPartialPolicy(t *testing.T) {
	scatter, _ := core.ParsePattern("?p kb:founded ?c")

	kill := func(injectors [][]*faultkb.Injector, shard int) {
		for _, in := range injectors[shard] {
			in.SetPlan(faultkb.Plan{DropRate: 1})
		}
	}

	strictGroups, strictInj := startReplicatedShards(t, 2, 2)
	strict := mustReplicatedClient(t, strictGroups, Options{
		RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond, MaxAttempts: 2,
	})
	kill(strictInj, 0)
	if _, err := strict.Pattern(context.Background(), scatter, 0); err == nil {
		t.Error("scatter with a whole shard down succeeded under the strict policy")
	}

	lenientGroups, lenientInj := startReplicatedShards(t, 2, 2)
	lenient := mustReplicatedClient(t, lenientGroups, Options{
		RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond, MaxAttempts: 2,
		AllowPartial: true,
	})
	kill(lenientInj, 0)
	res, err := lenient.Pattern(context.Background(), scatter, 0)
	if err != nil {
		t.Fatalf("AllowPartial scatter failed: %v", err)
	}
	if !res.Partial {
		t.Error("result not marked partial with a whole shard down")
	}
	if st := lenient.Stats(); st.PartialFailures == 0 {
		t.Error("partial failure not counted")
	}
}

// A consistently failing replica trips its circuit breaker (shedding
// traffic), and a recovered replica is readmitted after the half-open
// /readyz probe succeeds.
func TestBreakerOpensAndRecovers(t *testing.T) {
	groups, injectors := startReplicatedShards(t, 1, 2)
	c := mustReplicatedClient(t, groups, Options{
		RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  20 * time.Millisecond,
	})
	injectors[0][0].SetPlan(faultkb.Plan{ErrorRate: 1})
	for k := 0; k < 10; k++ {
		queryAll(t, c)
	}
	st := c.Stats()
	rep0 := st.Shards[0].Replicas[0]
	if rep0.Breaker != "open" {
		t.Fatalf("failing replica breaker = %q, want open", rep0.Breaker)
	}
	if rep0.BreakerOpens == 0 || st.BreakerTransitions == 0 {
		t.Error("breaker transitions not counted")
	}
	// With the breaker open, traffic stops reaching the bad replica.
	before := rep0.RPCs
	for k := 0; k < 5; k++ {
		queryAll(t, c)
	}
	if after := c.Stats().Shards[0].Replicas[0].RPCs; after != before {
		t.Errorf("open breaker still passed traffic: %d -> %d RPCs", before, after)
	}

	// Heal the replica; after the cooldown the half-open probe readmits it.
	injectors[0][0].SetPlan(faultkb.Plan{})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		queryAll(t, c)
		if s := c.Stats().Shards[0].Replicas[0]; s.Breaker == "closed" && s.RPCs > before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("healed replica never readmitted: breaker = %q",
		c.Stats().Shards[0].Replicas[0].Breaker)
}

// An oversized reply fails the RPC loudly (non-transient: the other
// replica would send the same giant body) instead of buffering without
// bound or retrying forever.
func TestMaxBodyBytes(t *testing.T) {
	groups, _ := startReplicatedShards(t, 1, 2)
	c := mustReplicatedClient(t, groups, Options{
		MaxBodyBytes: 64, // far below any real reply
		RetryBase:    time.Millisecond,
	})
	point, _ := core.ParsePattern("kb:jobs kb:founded ?c")
	_, err := c.Pattern(context.Background(), point, 0)
	if err == nil {
		t.Fatal("oversized reply succeeded, want error")
	}
	if st := c.Stats(); st.Retries != 0 {
		t.Errorf("oversized reply was retried %d times; it is not transient", st.Retries)
	}
}
