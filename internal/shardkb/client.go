package shardkb

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kbharvest/internal/core"
	"kbharvest/internal/rdf"
	"kbharvest/internal/serve"
)

// ErrPartial marks a query that could not be answered by every shard it
// needed. It is the default outcome of a scatter with a failed shard;
// Options.AllowPartial degrades it to merged available results with
// Result.Partial set instead.
var ErrPartial = errors.New("shardkb: partial shard results")

// errBodyTooLarge marks a reply exceeding Options.MaxBodyBytes. It is
// not transient: the same replica would send the same oversized body on
// a retry.
var errBodyTooLarge = errors.New("shardkb: response body too large")

// Options tunes a Client.
type Options struct {
	// Shards lists the tier as replica groups: Shards[i] holds the base
	// URLs of every kbserve replica serving partition i (all loaded from
	// the same kb.i.nt snapshot). When set it overrides the flat URL
	// list passed to New, which remains the 1-replica-per-shard case.
	Shards [][]string
	// Timeout bounds each replica RPC attempt (default 2s).
	Timeout time.Duration
	// MaxInFlight bounds concurrent logical shard RPCs across all
	// in-progress scatters (default 2x the shard count, minimum 4).
	// Retries and hedges ride the slot their logical RPC holds.
	MaxInFlight int
	// AllowPartial merges available results when shards fail instead of
	// failing the query with ErrPartial.
	AllowPartial bool
	// HTTPClient overrides the transport (default http.DefaultClient
	// semantics with no client-level timeout; per-RPC contexts bound it).
	HTTPClient *http.Client

	// MaxAttempts caps physical attempts per logical shard RPC,
	// counting the first try, retries, and hedges. Default: twice the
	// shard's replica count, clamped to [2, 4].
	MaxAttempts int
	// RetryBase is the first retry backoff; attempt k waits
	// jitter(RetryBase << k) capped at RetryMax. Defaults 20ms / 250ms.
	RetryBase time.Duration
	RetryMax  time.Duration

	// HedgeDelay, when > 0, fires one hedge request to the next replica
	// if the first attempt has not replied within the delay; the first
	// reply wins and the loser is cancelled. Requires >= 2 replicas.
	HedgeDelay time.Duration
	// HedgePercentile, when > 0 (e.g. 0.99) and HedgeDelay is unset,
	// derives the hedge delay from the client's observed RPC latency
	// histogram: hedge once an attempt outlives that quantile. Takes
	// effect after a short warmup of observed RPCs.
	HedgePercentile float64

	// BreakerThreshold opens a replica's circuit breaker after this many
	// consecutive failures (default 5; negative disables breakers). An
	// open replica receives no traffic until a half-open /readyz probe
	// succeeds after BreakerCooldown (default 1s).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// MaxBodyBytes caps a reply body (default 32 MiB); larger replies
	// fail the RPC instead of buffering without bound.
	MaxBodyBytes int64
}

// Result is the outcome of one pattern execution.
type Result struct {
	// Bindings are the merged rows, in shard order.
	Bindings []core.Binding
	// Partial reports that some shards failed and AllowPartial merged
	// the rest — the result may be missing matches.
	Partial bool
	// RPCs is the number of physical shard requests this execution
	// issued: 1 on the healthy fast path, more when retries or hedges
	// fired, the shard count (plus retries) on a scatter.
	RPCs int
}

// breaker states.
const (
	brClosed int = iota
	brOpen
	brHalfOpen
)

// breakerStateName maps states onto the strings Stats reports.
var breakerStateName = [...]string{"closed", "open", "half-open"}

// breaker is a per-replica circuit breaker: closed → open after a run of
// consecutive failures → half-open probe via /readyz → closed on a
// successful probe (or any successful request), back to open on a failed
// one. It sheds traffic from a dead replica without giving up on it.
type breaker struct {
	mu          sync.Mutex
	state       int
	fails       int
	until       time.Time // while open: when a half-open probe may start
	probing     bool
	opens       uint64
	transitions uint64
}

// allow reports whether a request may be sent to this replica; probe
// additionally asks the caller to launch a half-open /readyz probe.
func (b *breaker) allow(threshold int, now time.Time) (ok, probe bool) {
	if threshold <= 0 {
		return true, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case brClosed:
		return true, false
	case brOpen:
		if now.After(b.until) && !b.probing {
			b.state = brHalfOpen
			b.transitions++
			b.probing = true
			return false, true
		}
		return false, false
	default: // half-open: the in-flight probe decides
		return false, false
	}
}

func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.probing = false
	if b.state != brClosed {
		b.state = brClosed
		b.transitions++
	}
}

func (b *breaker) onFailure(threshold int, cooldown time.Duration, now time.Time) {
	if threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	b.probing = false
	if (b.state == brClosed && b.fails >= threshold) || b.state == brHalfOpen {
		if b.state != brOpen {
			b.opens++
			b.transitions++
		}
		b.state = brOpen
		b.until = now.Add(cooldown)
	}
}

func (b *breaker) snapshot() (state string, opens, transitions uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return breakerStateName[b.state], b.opens, b.transitions
}

// replica is one kbserve process inside a shard's replica group.
type replica struct {
	url   string
	rpcs  atomic.Uint64
	errs  atomic.Uint64
	sumUS atomic.Uint64
	br    breaker
}

// group is one shard's replica set.
type group struct {
	replicas []*replica
	next     atomic.Uint64 // rotating start replica for load spreading
}

func (g *group) label() string {
	urls := make([]string, len(g.replicas))
	for i, r := range g.replicas {
		urls[i] = r.url
	}
	return strings.Join(urls, "|")
}

// ReplicaStats is one replica's view in Stats.
type ReplicaStats struct {
	URL          string  `json:"url"`
	RPCs         uint64  `json:"rpcs"`
	Errors       uint64  `json:"errors"`
	MeanUS       float64 `json:"mean_us"`
	Breaker      string  `json:"breaker"`
	BreakerOpens uint64  `json:"breaker_opens"`
}

// ShardStats is one shard group's view in Stats.
type ShardStats struct {
	Replicas []ReplicaStats `json:"replicas"`
}

// Stats is a point-in-time snapshot of the client's counters.
type Stats struct {
	FastPath           uint64       `json:"fast_path"` // subject-pinned single-group executions
	Scatters           uint64       `json:"scatters"`  // full fan-out executions
	RPCs               uint64       `json:"rpcs"`      // physical replica RPCs issued
	Retries            uint64       `json:"retries"`
	HedgesFired        uint64       `json:"hedges_fired"`
	HedgesWon          uint64       `json:"hedges_won"`
	BreakerTransitions uint64       `json:"breaker_transitions"`
	PartialFailures    uint64       `json:"partial_failures"`
	Shards             []ShardStats `json:"shards"`
}

// FastPathRate returns the fraction of pattern executions that were
// pinned to a single shard, 0 when idle.
func (s Stats) FastPathRate() float64 {
	if t := s.FastPath + s.Scatters; t > 0 {
		return float64(s.FastPath) / float64(t)
	}
	return 0
}

// Client executes single triple patterns against N kbserve shard groups,
// retrying transient failures across each group's replicas with backoff,
// optionally hedging slow requests, and shedding traffic from dead
// replicas through per-replica circuit breakers.
type Client struct {
	groups       []*group
	hc           *http.Client
	timeout      time.Duration
	allowPartial bool
	sem          chan struct{}

	maxAttempts int
	retryBase   time.Duration
	retryMax    time.Duration
	hedgeDelay  time.Duration
	hedgePct    float64
	brThreshold int
	brCooldown  time.Duration
	maxBody     int64

	lat             serve.LatencyHistogram // all replica RPCs, feeds percentile hedging
	fastPath        atomic.Uint64
	scatters        atomic.Uint64
	rpcs            atomic.Uint64
	retries         atomic.Uint64
	hedgesFired     atomic.Uint64
	hedgesWon       atomic.Uint64
	partialFailures atomic.Uint64
}

// hedgeWarmup is the number of observed RPCs required before percentile
// hedging trusts the latency histogram.
const hedgeWarmup = 16

// drainLimit bounds how much of a leftover response body is drained
// before close to keep the connection reusable; anything longer is
// cheaper to tear down.
const drainLimit = 256 << 10

// New builds a client over the tier. The flat shardURLs list is the
// 1-replica-per-shard case (shard i serves the facts TripleShard assigns
// to i — the order must match the builder's partitioning);
// Options.Shards supersedes it with explicit replica groups.
func New(shardURLs []string, opt Options) (*Client, error) {
	groupURLs := opt.Shards
	if groupURLs == nil {
		groupURLs = make([][]string, len(shardURLs))
		for i, u := range shardURLs {
			groupURLs[i] = []string{u}
		}
	}
	if len(groupURLs) == 0 {
		return nil, errors.New("shardkb: no shard URLs")
	}
	groups := make([]*group, len(groupURLs))
	for i, urls := range groupURLs {
		if len(urls) == 0 {
			return nil, fmt.Errorf("shardkb: shard %d has no replicas", i)
		}
		g := &group{replicas: make([]*replica, len(urls))}
		for j, u := range urls {
			g.replicas[j] = &replica{url: strings.TrimRight(u, "/")}
		}
		groups[i] = g
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 2 * time.Second
	}
	if opt.MaxInFlight <= 0 {
		opt.MaxInFlight = 2 * len(groups)
		if opt.MaxInFlight < 4 {
			opt.MaxInFlight = 4
		}
	}
	if opt.RetryBase <= 0 {
		opt.RetryBase = 20 * time.Millisecond
	}
	if opt.RetryMax <= 0 {
		opt.RetryMax = 250 * time.Millisecond
	}
	if opt.BreakerThreshold == 0 {
		opt.BreakerThreshold = 5
	}
	if opt.BreakerCooldown <= 0 {
		opt.BreakerCooldown = time.Second
	}
	if opt.MaxBodyBytes <= 0 {
		opt.MaxBodyBytes = 32 << 20
	}
	hc := opt.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{
		groups:       groups,
		hc:           hc,
		timeout:      opt.Timeout,
		allowPartial: opt.AllowPartial,
		sem:          make(chan struct{}, opt.MaxInFlight),
		maxAttempts:  opt.MaxAttempts,
		retryBase:    opt.RetryBase,
		retryMax:     opt.RetryMax,
		hedgeDelay:   opt.HedgeDelay,
		hedgePct:     opt.HedgePercentile,
		brThreshold:  opt.BreakerThreshold,
		brCooldown:   opt.BreakerCooldown,
		maxBody:      opt.MaxBodyBytes,
	}, nil
}

// NumShards returns the shard (replica group) count.
func (c *Client) NumShards() int { return len(c.groups) }

// NumReplicas returns the replica count of one shard group.
func (c *Client) NumReplicas(shard int) int { return len(c.groups[shard].replicas) }

// AllowsPartial reports the configured partial-failure policy.
func (c *Client) AllowsPartial() bool { return c.allowPartial }

// Stats snapshots the client counters.
func (c *Client) Stats() Stats {
	s := Stats{
		FastPath:        c.fastPath.Load(),
		Scatters:        c.scatters.Load(),
		RPCs:            c.rpcs.Load(),
		Retries:         c.retries.Load(),
		HedgesFired:     c.hedgesFired.Load(),
		HedgesWon:       c.hedgesWon.Load(),
		PartialFailures: c.partialFailures.Load(),
		Shards:          make([]ShardStats, len(c.groups)),
	}
	for i, g := range c.groups {
		ss := ShardStats{Replicas: make([]ReplicaStats, len(g.replicas))}
		for j, rep := range g.replicas {
			rs := ReplicaStats{URL: rep.url, RPCs: rep.rpcs.Load(), Errors: rep.errs.Load()}
			if rs.RPCs > 0 {
				rs.MeanUS = float64(rep.sumUS.Load()) / float64(rs.RPCs)
			}
			var trans uint64
			rs.Breaker, rs.BreakerOpens, trans = rep.br.snapshot()
			s.BreakerTransitions += trans
			ss.Replicas[j] = rs
		}
		s.Shards[i] = ss
	}
	return s
}

// attempt is the outcome of one physical replica RPC.
type attempt struct {
	ri        int
	hedge     bool
	data      []byte
	err       error
	transient bool
}

// roundTrip issues one physical RPC to a replica under the per-attempt
// timeout, returning the full (bounded) response body.
func (c *Client) roundTrip(ctx context.Context, shard, ri int, path string, body []byte) ([]byte, error, bool) {
	rep := c.groups[shard].replicas[ri]
	rctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(rctx, http.MethodPost, rep.url+path, bytes.NewReader(body))
	if err != nil {
		return nil, err, false
	}
	hreq.Header.Set("Content-Type", "application/json")

	c.rpcs.Add(1)
	rep.rpcs.Add(1)
	t0 := time.Now()
	resp, err := c.hc.Do(hreq)
	took := time.Since(t0)
	rep.sumUS.Add(uint64(took.Microseconds()))
	c.lat.Observe(took)
	if err != nil {
		if ctx.Err() != nil {
			// The logical call is over (parent cancelled, or another
			// replica already won a hedge race): not a replica failure.
			return nil, ctx.Err(), false
		}
		rep.errs.Add(1)
		return nil, err, true // connection errors and attempt timeouts are transient
	}
	defer func() {
		// Drain any unread remainder (bounded) before close so the
		// keep-alive connection goes back to the pool instead of being
		// torn down after every response.
		io.Copy(io.Discard, io.LimitReader(resp.Body, drainLimit))
		resp.Body.Close()
	}()
	data, err := io.ReadAll(io.LimitReader(resp.Body, c.maxBody+1))
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err(), false
		}
		rep.errs.Add(1)
		return nil, fmt.Errorf("read response: %w", err), true // torn body
	}
	if int64(len(data)) > c.maxBody {
		rep.errs.Add(1)
		return nil, fmt.Errorf("%w (> %d bytes)", errBodyTooLarge, c.maxBody), false
	}
	if resp.StatusCode != http.StatusOK {
		rep.errs.Add(1)
		transient := resp.StatusCode >= 500 ||
			resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusRequestTimeout
		var e serve.ErrorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("status %d: %s", resp.StatusCode, e.Error), transient
		}
		return nil, fmt.Errorf("status %d", resp.StatusCode), transient
	}
	return data, nil, false
}

// probe launches the half-open /readyz probe that decides whether an
// open breaker may close: a 200 restores the replica to service, any
// failure re-opens it for another cooldown.
func (c *Client) probe(shard, ri int) {
	rep := c.groups[shard].replicas[ri]
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
		defer cancel()
		ok := false
		if req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/readyz", nil); err == nil {
			if resp, err := c.hc.Do(req); err == nil {
				io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
				resp.Body.Close()
				ok = resp.StatusCode == http.StatusOK
			}
		}
		if ok {
			rep.br.onSuccess()
		} else {
			rep.br.onFailure(c.brThreshold, c.brCooldown, time.Now())
		}
	}()
}

// backoff returns the jittered exponential delay before retry number
// `made` (1-based count of attempts already made).
func (c *Client) backoff(made int) time.Duration {
	d := c.retryBase << (made - 1)
	if d > c.retryMax || d <= 0 {
		d = c.retryMax
	}
	// Full jitter over [d/2, d): concurrent retries against a struggling
	// replica spread out instead of stampeding in lockstep.
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	return time.Duration(half + rand.Int63n(half))
}

// currentHedgeDelay resolves the hedge trigger: a fixed delay if
// configured, else the observed latency quantile once warmed up, else
// hedging is off.
func (c *Client) currentHedgeDelay() time.Duration {
	if c.hedgeDelay > 0 {
		return c.hedgeDelay
	}
	if c.hedgePct > 0 && c.lat.Summary().Count >= hedgeWarmup {
		d := c.lat.Quantile(c.hedgePct)
		if d < time.Millisecond {
			d = time.Millisecond
		}
		return d
	}
	return 0
}

// call executes one logical RPC against a shard's replica group and
// reports how many physical attempts it made: the
// first attempt goes to the group's next replica in rotation, transient
// failures retry on the following replicas with jittered exponential
// backoff, a hedge may race a second replica when the first is slow
// (first reply wins, the loser's context is cancelled), and every
// outcome feeds the per-replica circuit breakers.
func (c *Client) call(ctx context.Context, shard int, path string, req, out interface{}) (int, error) {
	select {
	case c.sem <- struct{}{}:
		defer func() { <-c.sem }()
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	body, err := json.Marshal(req)
	if err != nil {
		return 0, fmt.Errorf("shardkb: encode request: %w", err)
	}
	g := c.groups[shard]

	// Candidate replicas in rotation order, filtered by breaker state.
	// A breaker whose cooldown just expired gets its half-open /readyz
	// probe launched here; until a probe succeeds the replica stays out
	// of the candidate set.
	start := int(g.next.Add(1))
	now := time.Now()
	order := make([]int, 0, len(g.replicas))
	for i := range g.replicas {
		ri := (start + i) % len(g.replicas)
		ok, probe := g.replicas[ri].br.allow(c.brThreshold, now)
		if probe {
			c.probe(shard, ri)
		}
		if ok {
			order = append(order, ri)
		}
	}
	if len(order) == 0 {
		return 0, fmt.Errorf("shardkb: shard %d (%s): circuit breakers open on all %d replicas",
			shard, g.label(), len(g.replicas))
	}
	maxAttempts := c.maxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 2 * len(g.replicas)
		if maxAttempts < 2 {
			maxAttempts = 2
		}
		if maxAttempts > 4 {
			maxAttempts = 4
		}
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan attempt, maxAttempts)
	launched, inflight := 0, 0
	launch := func(hedge bool) {
		ri := order[launched%len(order)]
		launched++
		inflight++
		go func() {
			data, err, transient := c.roundTrip(cctx, shard, ri, path, body)
			results <- attempt{ri: ri, hedge: hedge, data: data, err: err, transient: transient}
		}()
	}
	launch(false)

	var hedgeCh <-chan time.Time
	if d := c.currentHedgeDelay(); d > 0 && len(order) > 1 && maxAttempts > 1 {
		ht := time.NewTimer(d)
		defer ht.Stop()
		hedgeCh = ht.C
	}
	var retryTimer *time.Timer
	defer func() {
		if retryTimer != nil {
			retryTimer.Stop()
		}
	}()
	var retryCh <-chan time.Time

	var fails []string
	for inflight > 0 || retryCh != nil {
		select {
		case <-ctx.Done():
			return launched, ctx.Err()
		case <-hedgeCh:
			hedgeCh = nil
			if launched < maxAttempts {
				c.hedgesFired.Add(1)
				launch(true)
			}
		case <-retryCh:
			retryCh = nil
			if launched < maxAttempts {
				c.retries.Add(1)
				launch(false)
			}
		case a := <-results:
			inflight--
			rep := g.replicas[a.ri]
			if a.err == nil {
				rep.br.onSuccess()
				if a.hedge {
					c.hedgesWon.Add(1)
				}
				// First reply wins: cancel any slower attempt still in
				// flight before decoding.
				cancel()
				if err := json.Unmarshal(a.data, out); err != nil {
					return launched, fmt.Errorf("shardkb: shard %d (%s): decode response: %w", shard, rep.url, err)
				}
				return launched, nil
			}
			if ctx.Err() != nil {
				return launched, ctx.Err()
			}
			fails = append(fails, fmt.Sprintf("%s: %v", rep.url, a.err))
			rep.br.onFailure(c.brThreshold, c.brCooldown, time.Now())
			if !a.transient {
				cancel()
				return launched, fmt.Errorf("shardkb: shard %d: %s", shard, strings.Join(fails, "; "))
			}
			if launched < maxAttempts && retryCh == nil {
				retryTimer = time.NewTimer(c.backoff(launched))
				retryCh = retryTimer.C
			}
		}
	}
	return launched, fmt.Errorf("shardkb: shard %d: %s", shard, strings.Join(fails, "; "))
}

// decodeBindings converts a wire response into bindings: rows parse each
// serialized term back (rdf.ParseTerm), ASK replies become the empty
// binding (true) or nothing (false) so they compose with join logic.
func decodeBindings(resp *serve.QueryResponse) ([]core.Binding, error) {
	if resp.Ask != nil {
		if *resp.Ask {
			return []core.Binding{{}}, nil
		}
		return nil, nil
	}
	out := make([]core.Binding, 0, len(resp.Rows))
	for _, row := range resp.Rows {
		b := make(core.Binding, len(row))
		for v, s := range row {
			t, err := rdf.ParseTerm(s)
			if err != nil {
				return nil, fmt.Errorf("shardkb: bad term %q in shard reply: %w", s, err)
			}
			b[core.Var(v)] = t
		}
		out = append(out, b)
	}
	return out, nil
}

// Pattern executes one triple pattern across the shard tier. A
// subject-constant pattern is routed to exactly one shard group — the
// fast path; anything else scatters to every group concurrently and
// gathers the merged bindings. limit caps the merged row count (0 = all).
func (c *Client) Pattern(ctx context.Context, p core.Pattern, limit int) (*Result, error) {
	req := serve.QueryRequest{Patterns: []string{FormatPattern(p)}, Limit: limit}
	if shard, ok := PatternShard(p, len(c.groups)); ok {
		c.fastPath.Add(1)
		var resp serve.QueryResponse
		attempts, err := c.call(ctx, shard, "/query", req, &resp)
		if err != nil {
			c.partialFailures.Add(1)
			if c.allowPartial {
				return &Result{Partial: true, RPCs: attempts}, nil
			}
			return nil, fmt.Errorf("%w: shard %d (%s): %v", ErrPartial, shard, c.groups[shard].label(), err)
		}
		bs, err := decodeBindings(&resp)
		if err != nil {
			return nil, err
		}
		return &Result{Bindings: bs, RPCs: attempts}, nil
	}

	c.scatters.Add(1)
	type shardReply struct {
		bs       []core.Binding
		attempts int
		err      error
	}
	replies := make([]shardReply, len(c.groups))
	var wg sync.WaitGroup
	for i := range c.groups {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp serve.QueryResponse
			attempts, err := c.call(ctx, i, "/query", req, &resp)
			replies[i].attempts = attempts
			if err != nil {
				replies[i].err = err
				return
			}
			replies[i].bs, replies[i].err = decodeBindings(&resp)
		}(i)
	}
	wg.Wait()
	res := &Result{}
	for _, r := range replies {
		res.RPCs += r.attempts
	}
	var failed []string
	for i, r := range replies {
		if r.err != nil {
			failed = append(failed, fmt.Sprintf("shard %d (%s): %v", i, c.groups[i].label(), r.err))
			continue
		}
		res.Bindings = append(res.Bindings, r.bs...)
	}
	if len(failed) > 0 {
		c.partialFailures.Add(1)
		if !c.allowPartial {
			return nil, fmt.Errorf("%w: %s", ErrPartial, strings.Join(failed, "; "))
		}
		res.Partial = true
	}
	if limit > 0 && len(res.Bindings) > limit {
		res.Bindings = res.Bindings[:limit]
	}
	return res, nil
}

// Estimates returns, for each pattern, the sum of per-shard planner
// estimates — the scatter-aware analogue of core.Store.EstimateMatches
// the router orders joins by. Shard failures follow the partial policy:
// by default the call fails; with AllowPartial the failed shard's
// contribution is simply missing (estimates stay upper bounds of the
// reachable data).
func (c *Client) Estimates(ctx context.Context, patterns []core.Pattern) ([]int, error) {
	lines := make([]string, len(patterns))
	for i, p := range patterns {
		lines[i] = FormatPattern(p)
	}
	req := serve.QueryRequest{Patterns: lines}
	replies := make([]*serve.EstimateResponse, len(c.groups))
	errs := make([]error, len(c.groups))
	var wg sync.WaitGroup
	for i := range c.groups {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp serve.EstimateResponse
			if _, err := c.call(ctx, i, "/estimate", req, &resp); err != nil {
				errs[i] = err
				return
			}
			replies[i] = &resp
		}(i)
	}
	wg.Wait()
	sums := make([]int, len(patterns))
	var failed []string
	for i := range c.groups {
		if errs[i] != nil {
			failed = append(failed, fmt.Sprintf("shard %d (%s): %v", i, c.groups[i].label(), errs[i]))
			continue
		}
		if len(replies[i].Estimates) != len(patterns) {
			return nil, fmt.Errorf("shardkb: shard %d returned %d estimates for %d patterns",
				i, len(replies[i].Estimates), len(patterns))
		}
		for j, e := range replies[i].Estimates {
			sums[j] += e
		}
	}
	if len(failed) > 0 && !c.allowPartial {
		return nil, fmt.Errorf("%w: %s", ErrPartial, strings.Join(failed, "; "))
	}
	return sums, nil
}

// readyReplica fetches one replica's /readyz.
func (c *Client) readyReplica(ctx context.Context, url string) (*serve.ReadyResponse, error) {
	rctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, url+"/readyz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var rr serve.ReadyResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&rr); err != nil {
		return nil, fmt.Errorf("decode /readyz: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("not ready (status %d, %d facts)", resp.StatusCode, rr.Facts)
	}
	return &rr, nil
}

// Ready health-checks the tier: a shard group is ready when at least one
// of its replicas answers /readyz with a loaded snapshot (replicas of a
// group serve the same partition). It returns per-shard readiness (nil
// entries for groups with no ready replica) and an error naming every
// such group.
func (c *Client) Ready(ctx context.Context) ([]*serve.ReadyResponse, error) {
	replies := make([]*serve.ReadyResponse, len(c.groups))
	errs := make([]error, len(c.groups))
	var wg sync.WaitGroup
	for i := range c.groups {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var fails []string
			for _, rep := range c.groups[i].replicas {
				rr, err := c.readyReplica(ctx, rep.url)
				if err == nil {
					replies[i] = rr
					return
				}
				fails = append(fails, fmt.Sprintf("%s: %v", rep.url, err))
			}
			errs[i] = errors.New(strings.Join(fails, "; "))
		}(i)
	}
	wg.Wait()
	var failed []string
	for i, err := range errs {
		if err != nil {
			failed = append(failed, fmt.Sprintf("shard %d: %v", i, err))
		}
	}
	if len(failed) > 0 {
		return replies, fmt.Errorf("shardkb: %s", strings.Join(failed, "; "))
	}
	return replies, nil
}
