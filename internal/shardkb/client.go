package shardkb

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kbharvest/internal/core"
	"kbharvest/internal/rdf"
	"kbharvest/internal/serve"
)

// ErrPartial marks a query that could not be answered by every shard it
// needed. It is the default outcome of a scatter with a failed shard;
// Options.AllowPartial degrades it to merged available results with
// Result.Partial set instead.
var ErrPartial = errors.New("shardkb: partial shard results")

// Options tunes a Client.
type Options struct {
	// Timeout bounds each shard RPC (default 2s).
	Timeout time.Duration
	// MaxInFlight bounds concurrent shard RPCs across all in-progress
	// scatters (default 2x the shard count, minimum 4).
	MaxInFlight int
	// AllowPartial merges available results when shards fail instead of
	// failing the query with ErrPartial.
	AllowPartial bool
	// HTTPClient overrides the transport (default http.DefaultClient
	// semantics with no client-level timeout; per-RPC contexts bound it).
	HTTPClient *http.Client
}

// Result is the outcome of one pattern execution.
type Result struct {
	// Bindings are the merged rows, in shard order.
	Bindings []core.Binding
	// Partial reports that some shards failed and AllowPartial merged
	// the rest — the result may be missing matches.
	Partial bool
	// RPCs is the number of shard requests this execution issued: 1 on
	// the fast path, the shard count on a scatter.
	RPCs int
}

// shardCounters are the per-shard atomics behind Stats.
type shardCounters struct {
	rpcs  atomic.Uint64
	errs  atomic.Uint64
	sumUS atomic.Uint64
}

// ShardStats is one shard's view in Stats.
type ShardStats struct {
	URL    string  `json:"url"`
	RPCs   uint64  `json:"rpcs"`
	Errors uint64  `json:"errors"`
	MeanUS float64 `json:"mean_us"`
}

// Stats is a point-in-time snapshot of the client's counters.
type Stats struct {
	FastPath        uint64       `json:"fast_path"` // subject-pinned single-RPC executions
	Scatters        uint64       `json:"scatters"`  // full fan-out executions
	RPCs            uint64       `json:"rpcs"`      // total shard RPCs issued
	PartialFailures uint64       `json:"partial_failures"`
	Shards          []ShardStats `json:"shards"`
}

// FastPathRate returns the fraction of pattern executions that were
// pinned to a single shard, 0 when idle.
func (s Stats) FastPathRate() float64 {
	if t := s.FastPath + s.Scatters; t > 0 {
		return float64(s.FastPath) / float64(t)
	}
	return 0
}

// Client executes single triple patterns against N kbserve shards.
type Client struct {
	urls         []string
	hc           *http.Client
	timeout      time.Duration
	allowPartial bool
	sem          chan struct{}

	fastPath        atomic.Uint64
	scatters        atomic.Uint64
	rpcs            atomic.Uint64
	partialFailures atomic.Uint64
	shards          []shardCounters
}

// New builds a client over the given kbserve base URLs (shard i serves
// the facts TripleShard assigns to i — the order must match the builder's
// partitioning).
func New(shardURLs []string, opt Options) (*Client, error) {
	if len(shardURLs) == 0 {
		return nil, errors.New("shardkb: no shard URLs")
	}
	urls := make([]string, len(shardURLs))
	for i, u := range shardURLs {
		urls[i] = strings.TrimRight(u, "/")
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 2 * time.Second
	}
	if opt.MaxInFlight <= 0 {
		opt.MaxInFlight = 2 * len(urls)
		if opt.MaxInFlight < 4 {
			opt.MaxInFlight = 4
		}
	}
	hc := opt.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{
		urls:         urls,
		hc:           hc,
		timeout:      opt.Timeout,
		allowPartial: opt.AllowPartial,
		sem:          make(chan struct{}, opt.MaxInFlight),
		shards:       make([]shardCounters, len(urls)),
	}, nil
}

// NumShards returns the shard count.
func (c *Client) NumShards() int { return len(c.urls) }

// AllowsPartial reports the configured partial-failure policy.
func (c *Client) AllowsPartial() bool { return c.allowPartial }

// Stats snapshots the client counters.
func (c *Client) Stats() Stats {
	s := Stats{
		FastPath:        c.fastPath.Load(),
		Scatters:        c.scatters.Load(),
		RPCs:            c.rpcs.Load(),
		PartialFailures: c.partialFailures.Load(),
		Shards:          make([]ShardStats, len(c.urls)),
	}
	for i := range c.shards {
		sc := &c.shards[i]
		ss := ShardStats{URL: c.urls[i], RPCs: sc.rpcs.Load(), Errors: sc.errs.Load()}
		if ss.RPCs > 0 {
			ss.MeanUS = float64(sc.sumUS.Load()) / float64(ss.RPCs)
		}
		s.Shards[i] = ss
	}
	return s
}

// post issues one JSON RPC to a shard under the in-flight bound and the
// per-shard timeout, decoding the reply into out.
func (c *Client) post(ctx context.Context, shard int, path string, req, out interface{}) error {
	select {
	case c.sem <- struct{}{}:
		defer func() { <-c.sem }()
	case <-ctx.Done():
		return ctx.Err()
	}
	rctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("shardkb: encode request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(rctx, http.MethodPost, c.urls[shard]+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")

	c.rpcs.Add(1)
	sc := &c.shards[shard]
	sc.rpcs.Add(1)
	t0 := time.Now()
	resp, err := c.hc.Do(hreq)
	sc.sumUS.Add(uint64(time.Since(t0).Microseconds()))
	if err != nil {
		sc.errs.Add(1)
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		sc.errs.Add(1)
		var e serve.ErrorResponse
		if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("shardkb: shard %d: status %d: %s", shard, resp.StatusCode, e.Error)
		}
		return fmt.Errorf("shardkb: shard %d: status %d", shard, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		sc.errs.Add(1)
		return fmt.Errorf("shardkb: shard %d: decode response: %w", shard, err)
	}
	return nil
}

// decodeBindings converts a wire response into bindings: rows parse each
// serialized term back (rdf.ParseTerm), ASK replies become the empty
// binding (true) or nothing (false) so they compose with join logic.
func decodeBindings(resp *serve.QueryResponse) ([]core.Binding, error) {
	if resp.Ask != nil {
		if *resp.Ask {
			return []core.Binding{{}}, nil
		}
		return nil, nil
	}
	out := make([]core.Binding, 0, len(resp.Rows))
	for _, row := range resp.Rows {
		b := make(core.Binding, len(row))
		for v, s := range row {
			t, err := rdf.ParseTerm(s)
			if err != nil {
				return nil, fmt.Errorf("shardkb: bad term %q in shard reply: %w", s, err)
			}
			b[core.Var(v)] = t
		}
		out = append(out, b)
	}
	return out, nil
}

// Pattern executes one triple pattern across the shard tier. A
// subject-constant pattern is routed to exactly one shard — the fast
// path; anything else scatters to every shard concurrently and gathers
// the merged bindings. limit caps the merged row count (0 = all).
func (c *Client) Pattern(ctx context.Context, p core.Pattern, limit int) (*Result, error) {
	req := serve.QueryRequest{Patterns: []string{FormatPattern(p)}, Limit: limit}
	if shard, ok := PatternShard(p, len(c.urls)); ok {
		c.fastPath.Add(1)
		var resp serve.QueryResponse
		if err := c.post(ctx, shard, "/query", req, &resp); err != nil {
			c.partialFailures.Add(1)
			if c.allowPartial {
				return &Result{Partial: true, RPCs: 1}, nil
			}
			return nil, fmt.Errorf("%w: shard %d (%s): %v", ErrPartial, shard, c.urls[shard], err)
		}
		bs, err := decodeBindings(&resp)
		if err != nil {
			return nil, err
		}
		return &Result{Bindings: bs, RPCs: 1}, nil
	}

	c.scatters.Add(1)
	type shardReply struct {
		bs  []core.Binding
		err error
	}
	replies := make([]shardReply, len(c.urls))
	var wg sync.WaitGroup
	for i := range c.urls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp serve.QueryResponse
			if err := c.post(ctx, i, "/query", req, &resp); err != nil {
				replies[i].err = err
				return
			}
			replies[i].bs, replies[i].err = decodeBindings(&resp)
		}(i)
	}
	wg.Wait()
	res := &Result{RPCs: len(c.urls)}
	var failed []string
	for i, r := range replies {
		if r.err != nil {
			failed = append(failed, fmt.Sprintf("shard %d (%s): %v", i, c.urls[i], r.err))
			continue
		}
		res.Bindings = append(res.Bindings, r.bs...)
	}
	if len(failed) > 0 {
		c.partialFailures.Add(1)
		if !c.allowPartial {
			return nil, fmt.Errorf("%w: %s", ErrPartial, strings.Join(failed, "; "))
		}
		res.Partial = true
	}
	if limit > 0 && len(res.Bindings) > limit {
		res.Bindings = res.Bindings[:limit]
	}
	return res, nil
}

// Estimates returns, for each pattern, the sum of per-shard planner
// estimates — the scatter-aware analogue of core.Store.EstimateMatches
// the router orders joins by. Shard failures follow the partial policy:
// by default the call fails; with AllowPartial the failed shard's
// contribution is simply missing (estimates stay upper bounds of the
// reachable data).
func (c *Client) Estimates(ctx context.Context, patterns []core.Pattern) ([]int, error) {
	lines := make([]string, len(patterns))
	for i, p := range patterns {
		lines[i] = FormatPattern(p)
	}
	req := serve.QueryRequest{Patterns: lines}
	replies := make([]*serve.EstimateResponse, len(c.urls))
	errs := make([]error, len(c.urls))
	var wg sync.WaitGroup
	for i := range c.urls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp serve.EstimateResponse
			if err := c.post(ctx, i, "/estimate", req, &resp); err != nil {
				errs[i] = err
				return
			}
			replies[i] = &resp
		}(i)
	}
	wg.Wait()
	sums := make([]int, len(patterns))
	var failed []string
	for i := range c.urls {
		if errs[i] != nil {
			failed = append(failed, fmt.Sprintf("shard %d (%s): %v", i, c.urls[i], errs[i]))
			continue
		}
		if len(replies[i].Estimates) != len(patterns) {
			return nil, fmt.Errorf("shardkb: shard %d returned %d estimates for %d patterns",
				i, len(replies[i].Estimates), len(patterns))
		}
		for j, e := range replies[i].Estimates {
			sums[j] += e
		}
	}
	if len(failed) > 0 && !c.allowPartial {
		return nil, fmt.Errorf("%w: %s", ErrPartial, strings.Join(failed, "; "))
	}
	return sums, nil
}

// Ready health-checks every shard's /readyz. It returns per-shard
// readiness (nil entries for unreachable or not-ready shards) and an
// error naming every shard that is not ready to serve.
func (c *Client) Ready(ctx context.Context) ([]*serve.ReadyResponse, error) {
	replies := make([]*serve.ReadyResponse, len(c.urls))
	errs := make([]error, len(c.urls))
	var wg sync.WaitGroup
	for i := range c.urls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rctx, cancel := context.WithTimeout(ctx, c.timeout)
			defer cancel()
			req, err := http.NewRequestWithContext(rctx, http.MethodGet, c.urls[i]+"/readyz", nil)
			if err != nil {
				errs[i] = err
				return
			}
			resp, err := c.hc.Do(req)
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var rr serve.ReadyResponse
			if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&rr); err != nil {
				errs[i] = fmt.Errorf("decode /readyz: %w", err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("not ready (status %d, %d facts)", resp.StatusCode, rr.Facts)
				return
			}
			replies[i] = &rr
		}(i)
	}
	wg.Wait()
	var failed []string
	for i, err := range errs {
		if err != nil {
			failed = append(failed, fmt.Sprintf("shard %d (%s): %v", i, c.urls[i], err))
		}
	}
	if len(failed) > 0 {
		return replies, fmt.Errorf("shardkb: %s", strings.Join(failed, "; "))
	}
	return replies, nil
}
