// Package multilingual implements the multilingual-knowledge component of
// the tutorial (§3): harvesting entity names in multiple languages from
// language-tagged labels, and aligning entities across languages by
// transliteration-aware name similarity when explicit interwiki links are
// missing.
package multilingual

import (
	"sort"
	"strings"

	"kbharvest/internal/core"
	"kbharvest/internal/rdf"
)

// Labels returns an entity's names per language from rdfs:label triples.
func Labels(st *core.Store, entity string) map[string]string {
	out := make(map[string]string)
	st.MatchFunc(rdf.Triple{S: rdf.NewIRI(entity), P: rdf.NewIRI(rdf.RDFSLabel)}, func(_ core.FactID, t rdf.Triple) bool {
		if t.O.IsLiteral() && t.O.Lang != "" {
			out[t.O.Lang] = t.O.Value
		}
		return true
	})
	return out
}

// AddLabel asserts a language-tagged label.
func AddLabel(st *core.Store, entity, label, lang string) core.FactID {
	return st.Add(rdf.Triple{
		S: rdf.NewIRI(entity), P: rdf.NewIRI(rdf.RDFSLabel),
		O: rdf.NewLangLiteral(label, lang),
	})
}

// translitPairs are substring substitutions that cost little when
// comparing names across orthographies (the systematic sound shifts the
// synthetic languages — and many real ones — apply).
var translitPairs = [][2]string{
	{"th", "t"}, {"c", "k"}, {"qu", "k"}, {"chs", "x"}, {"ei", "ai"},
	{"ie", "ia"}, {"ous", "us"}, {"j", "x"},
}

// canonicalize lowers the name and applies the transliteration folds so
// systematically shifted spellings collapse to one form.
func canonicalize(name string) string {
	s := strings.ToLower(name)
	for _, p := range translitPairs {
		// Fold the longer variant onto the shorter.
		from, to := p[0], p[1]
		if len(to) > len(from) {
			from, to = to, from
		}
		s = strings.ReplaceAll(s, from, to)
	}
	return s
}

// NameSimilarity scores two names in [0,1]: 1 for equal after
// transliteration folding, otherwise 1 - normalized Levenshtein distance
// of the folded forms.
func NameSimilarity(a, b string) float64 {
	ca, cb := canonicalize(a), canonicalize(b)
	if ca == cb {
		return 1
	}
	d := levenshtein(ca, cb)
	m := len(ca)
	if len(cb) > m {
		m = len(cb)
	}
	if m == 0 {
		return 0
	}
	return 1 - float64(d)/float64(m)
}

func levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Named is one entity with a name in some language.
type Named struct {
	ID   string
	Name string
}

// Alignment links an entity of one language edition to one of another.
type Alignment struct {
	Src, Dst string
	Score    float64
}

// Align matches src entities to dst entities greedily by descending name
// similarity, one-to-one, keeping pairs with score >= minSim. This is the
// name-based fallback for building interwiki (owl:sameAs) links across
// language editions.
func Align(src, dst []Named, minSim float64) []Alignment {
	type cand struct {
		si, di int
		score  float64
	}
	var cands []cand
	for si, s := range src {
		for di, d := range dst {
			if sc := NameSimilarity(s.Name, d.Name); sc >= minSim {
				cands = append(cands, cand{si, di, sc})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		if src[cands[i].si].ID != src[cands[j].si].ID {
			return src[cands[i].si].ID < src[cands[j].si].ID
		}
		return dst[cands[i].di].ID < dst[cands[j].di].ID
	})
	usedS := make([]bool, len(src))
	usedD := make([]bool, len(dst))
	var out []Alignment
	for _, c := range cands {
		if usedS[c.si] || usedD[c.di] {
			continue
		}
		usedS[c.si], usedD[c.di] = true, true
		out = append(out, Alignment{Src: src[c.si].ID, Dst: dst[c.di].ID, Score: c.score})
	}
	return out
}

// AssertSameAs writes alignments into a store as owl:sameAs links.
func AssertSameAs(st *core.Store, aligns []Alignment) int {
	n := 0
	for _, a := range aligns {
		id := st.Add(rdf.T(a.Src, rdf.OWLSameAs, a.Dst))
		st.SetConfidence(id, a.Score)
		n++
	}
	return n
}
