package multilingual

import (
	"testing"

	"kbharvest/internal/core"
	"kbharvest/internal/rdf"
	"kbharvest/internal/synth"
)

func TestLabelsRoundTrip(t *testing.T) {
	st := core.NewStore()
	AddLabel(st, "kb:Alice", "Alice Foo", "en")
	AddLabel(st, "kb:Alice", "Alize Fou", "fr")
	st.Add(rdf.TL("kb:Alice", rdf.RDFSLabel, "untagged")) // no lang -> ignored
	labels := Labels(st, "kb:Alice")
	if len(labels) != 2 || labels["en"] != "Alice Foo" || labels["fr"] != "Alize Fou" {
		t.Errorf("labels = %v", labels)
	}
}

func TestNameSimilarity(t *testing.T) {
	if NameSimilarity("Katrin", "Catrin") < 0.99 {
		t.Error("k/c fold should make these equal")
	}
	if NameSimilarity("Thomas", "Tomas") < 0.99 {
		t.Error("th/t fold should make these equal")
	}
	if s := NameSimilarity("Alice", "Bob"); s > 0.5 {
		t.Errorf("unrelated names too similar: %v", s)
	}
	if NameSimilarity("same", "same") != 1 {
		t.Error("identical names should score 1")
	}
	if s := NameSimilarity("", ""); s != 1 {
		t.Errorf("empty names = %v", s)
	}
}

func TestNameSimilaritySymmetric(t *testing.T) {
	pairs := [][2]string{
		{"Katrin", "Catrin"}, {"Alpha", "Beta"}, {"Quest", "Kest"},
	}
	for _, p := range pairs {
		if NameSimilarity(p[0], p[1]) != NameSimilarity(p[1], p[0]) {
			t.Errorf("asymmetric similarity for %v", p)
		}
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0}, {"a", "", 1}, {"", "abc", 3},
		{"kitten", "sitting", 3}, {"flaw", "lawn", 2},
	}
	for _, c := range cases {
		if got := levenshtein(c.a, c.b); got != c.want {
			t.Errorf("levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestAlignOneToOne(t *testing.T) {
	src := []Named{{"en:1", "Katrin Foo"}, {"en:2", "Thomas Bar"}}
	dst := []Named{{"de:1", "Catrin Foo"}, {"de:2", "Tomas Bar"}, {"de:3", "Unrelated Person"}}
	aligns := Align(src, dst, 0.8)
	if len(aligns) != 2 {
		t.Fatalf("alignments = %+v", aligns)
	}
	got := map[string]string{}
	for _, a := range aligns {
		got[a.Src] = a.Dst
	}
	if got["en:1"] != "de:1" || got["en:2"] != "de:2" {
		t.Errorf("alignments = %v", got)
	}
}

func TestAlignRespectsThreshold(t *testing.T) {
	src := []Named{{"a", "Alice"}}
	dst := []Named{{"b", "Zorblatt"}}
	if aligns := Align(src, dst, 0.8); len(aligns) != 0 {
		t.Errorf("low-similarity pair aligned: %+v", aligns)
	}
}

// E11's invariant: aligning the English and German editions of the
// synthetic world by name recovers the identity mapping.
func TestAlignSyntheticEditions(t *testing.T) {
	w := synth.Generate(synth.Config{
		People: 60, Companies: 15, Cities: 10, Countries: 3,
		Universities: 6, Products: 12, Prizes: 4,
	}, 61)
	var src, dst []Named
	for _, p := range w.People {
		src = append(src, Named{ID: p.ID, Name: p.Labels["en"]})
		dst = append(dst, Named{ID: p.ID, Name: p.Labels["de"]})
	}
	aligns := Align(src, dst, 0.75)
	correct := 0
	for _, a := range aligns {
		if a.Src == a.Dst {
			correct++
		}
	}
	if len(aligns) == 0 {
		t.Fatal("no alignments")
	}
	precision := float64(correct) / float64(len(aligns))
	recall := float64(correct) / float64(len(src))
	if precision < 0.9 {
		t.Errorf("alignment precision = %.3f", precision)
	}
	if recall < 0.8 {
		t.Errorf("alignment recall = %.3f", recall)
	}
}

func TestAssertSameAs(t *testing.T) {
	st := core.NewStore()
	n := AssertSameAs(st, []Alignment{{Src: "en:1", Dst: "de:1", Score: 0.9}})
	if n != 1 {
		t.Fatalf("asserted %d", n)
	}
	id, ok := st.FactOf(rdf.T("en:1", rdf.OWLSameAs, "de:1"))
	if !ok {
		t.Fatal("sameAs link missing")
	}
	info, _ := st.Info(id)
	if info.Confidence != 0.9 {
		t.Errorf("confidence = %v", info.Confidence)
	}
}
