package text

import (
	"testing"
	"testing/quick"
)

func TestStemKnownPairs(t *testing.T) {
	// Classic Porter examples plus the forms our pipeline actually meets.
	cases := map[string]string{
		"caresses":     "caress",
		"ponies":       "poni",
		"ties":         "ti",
		"caress":       "caress",
		"cats":         "cat",
		"feed":         "feed",
		"agreed":       "agre",
		"plastered":    "plaster",
		"bled":         "bled",
		"motoring":     "motor",
		"sing":         "sing",
		"conflated":    "conflat",
		"troubled":     "troubl",
		"sized":        "size",
		"hopping":      "hop",
		"tanned":       "tan",
		"falling":      "fall",
		"hissing":      "hiss",
		"fizzed":       "fizz",
		"failing":      "fail",
		"filing":       "file",
		"happy":        "happi",
		"sky":          "sky",
		"relational":   "relat",
		"conditional":  "condit",
		"rational":     "ration",
		"valenci":      "valenc",
		"digitizer":    "digit",
		"operator":     "oper",
		"feudalism":    "feudal",
		"decisiveness": "decis",
		"hopefulness":  "hope",
		"formaliti":    "formal",
		"formalize":    "formal",
		"electriciti":  "electr",
		"electrical":   "electr",
		"hopeful":      "hope",
		"goodness":     "good",
		"revival":      "reviv",
		"allowance":    "allow",
		"inference":    "infer",
		"airliner":     "airlin",
		"adjustable":   "adjust",
		"defensible":   "defens",
		"irritant":     "irrit",
		"replacement":  "replac",
		"adjustment":   "adjust",
		"dependent":    "depend",
		"adoption":     "adopt",
		"communism":    "commun",
		"activate":     "activ",
		"angulariti":   "angular",
		"homologous":   "homolog",
		"effective":    "effect",
		"bowdlerize":   "bowdler",
		"probate":      "probat",
		"rate":         "rate",
		"cease":        "ceas",
		"controll":     "control",
		"roll":         "roll",
		"founded":      "found",
		"companies":    "compani",
		"acquisition":  "acquisit",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemConflatesForms(t *testing.T) {
	groups := [][]string{
		{"connect", "connected", "connecting", "connection", "connections"},
		{"found", "founded", "founding"},
		{"acquire", "acquired", "acquires", "acquiring"},
	}
	for _, g := range groups {
		base := Stem(g[0])
		for _, w := range g[1:] {
			if got := Stem(w); got != base {
				t.Errorf("Stem(%q) = %q, want %q (conflation with %q)", w, got, base, g[0])
			}
		}
	}
}

func TestStemShortWords(t *testing.T) {
	for _, w := range []string{"", "a", "of", "be"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, short words should be untouched", w, got)
		}
	}
}

func TestStemLowercases(t *testing.T) {
	if Stem("Connected") != Stem("connected") {
		t.Error("stemming should be case-insensitive")
	}
}

// Properties: stemming never grows a word (beyond the lowercase mapping) by
// more than one char (the +e restoration), never panics, and is idempotent
// on its own output for ASCII words.
func TestStemPropertiesQuick(t *testing.T) {
	f := func(s string) bool {
		// Restrict to plausible word shapes.
		if len(s) > 30 {
			s = s[:30]
		}
		clean := make([]byte, 0, len(s))
		for i := 0; i < len(s); i++ {
			c := s[i] | 0x20
			if c >= 'a' && c <= 'z' {
				clean = append(clean, c)
			}
		}
		w := string(clean)
		st := Stem(w)
		if len(st) > len(w)+1 {
			return false
		}
		// Applying Stem twice equals applying once for the overwhelming
		// majority of words; require only that it terminates and shrinks
		// monotonically.
		return len(Stem(st)) <= len(st)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMeasure(t *testing.T) {
	cases := map[string]int{
		"tr": 0, "ee": 0, "tree": 0, "y": 0, "by": 0,
		"trouble": 1, "oats": 1, "trees": 1, "ivy": 1,
		"troubles": 2, "private": 2, "oaten": 2,
	}
	for w, want := range cases {
		if got := measure(w); got != want {
			t.Errorf("measure(%q) = %d, want %d", w, got, want)
		}
	}
}
