package text

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	got := Words("Steve Jobs founded Apple in 1976.")
	want := []string{"Steve", "Jobs", "founded", "Apple", "in", "1976", "."}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Words = %v, want %v", got, want)
	}
}

func TestTokenizePunctuationAndHyphens(t *testing.T) {
	got := Words("state-of-the-art, isn't it?")
	want := []string{"state-of-the-art", ",", "isn't", "it", "?"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Words = %v, want %v", got, want)
	}
}

func TestTokenizeDottedAbbreviation(t *testing.T) {
	got := Words("He moved to the U.S. in 1990.")
	if !contains(got, "U.S.") {
		t.Errorf("expected dotted abbreviation token, got %v", got)
	}
}

func TestTokenizeOffsets(t *testing.T) {
	s := "Apple was founded."
	for _, tok := range Tokenize(s) {
		if s[tok.Start:tok.End] != tok.Text {
			t.Errorf("offset mismatch: %q vs %q", s[tok.Start:tok.End], tok.Text)
		}
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Words("Über München—great city")
	if !contains(got, "Über") || !contains(got, "München") {
		t.Errorf("unicode words lost: %v", got)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Errorf("Tokenize(\"\") = %v", got)
	}
	if got := Tokenize("   \t\n "); len(got) != 0 {
		t.Errorf("Tokenize(spaces) = %v", got)
	}
}

// Property: concatenated tokens with offsets reconstruct the non-space
// content of the input; offsets are monotonically increasing.
func TestTokenizeOffsetsQuick(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		prev := -1
		for _, tok := range toks {
			if tok.Start < 0 || tok.End > len(s) || tok.Start >= tok.End {
				return false
			}
			if tok.Start <= prev {
				return false
			}
			prev = tok.Start
			if s[tok.Start:tok.End] != tok.Text {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSplitSentencesBasic(t *testing.T) {
	text := "Steve Jobs founded Apple. He was born in San Francisco! Did he also found NeXT?"
	got := SplitSentences(text)
	if len(got) != 3 {
		t.Fatalf("got %d sentences: %+v", len(got), got)
	}
	if got[0].Text != "Steve Jobs founded Apple." {
		t.Errorf("first = %q", got[0].Text)
	}
	if got[2].Text != "Did he also found NeXT?" {
		t.Errorf("third = %q", got[2].Text)
	}
}

func TestSplitSentencesAbbreviations(t *testing.T) {
	text := "Dr. Smith works at Apple Inc. in Cupertino. He is busy."
	got := SplitSentences(text)
	// "Dr." must not split; "Inc." is a known abbreviation so no split either.
	if len(got) != 2 {
		t.Fatalf("got %d sentences: %+v", len(got), got)
	}
	if !strings.HasPrefix(got[0].Text, "Dr. Smith") {
		t.Errorf("first = %q", got[0].Text)
	}
}

func TestSplitSentencesDecimals(t *testing.T) {
	text := "The phone costs 3.99 dollars. It is cheap."
	got := SplitSentences(text)
	if len(got) != 2 {
		t.Fatalf("decimal split wrong: %+v", got)
	}
}

func TestSplitSentencesParagraphBreak(t *testing.T) {
	text := "First paragraph without period\n\nSecond paragraph."
	got := SplitSentences(text)
	if len(got) != 2 {
		t.Fatalf("paragraph split wrong: %+v", got)
	}
}

func TestSplitSentencesOffsets(t *testing.T) {
	text := "  One. Two!  Three?  "
	for _, s := range SplitSentences(text) {
		if text[s.Start:s.End] != s.Text {
			t.Errorf("offset mismatch: %q vs %q", text[s.Start:s.End], s.Text)
		}
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
