package text

import (
	"testing"
)

func chunksOf(sentence string) []Chunk {
	return ChunkSentence(Tag(Tokenize(sentence)))
}

func npTexts(cs []Chunk) []string {
	var out []string
	for _, c := range cs {
		if c.Kind == ChunkNP {
			out = append(out, c.Text())
		}
	}
	return out
}

func vpTexts(cs []Chunk) []string {
	var out []string
	for _, c := range cs {
		if c.Kind == ChunkVP {
			out = append(out, c.Text())
		}
	}
	return out
}

func TestChunkSimpleSVO(t *testing.T) {
	cs := chunksOf("Steve Jobs founded Apple")
	nps := npTexts(cs)
	vps := vpTexts(cs)
	if len(nps) != 2 || nps[0] != "Steve Jobs" || nps[1] != "Apple" {
		t.Errorf("NPs = %v", nps)
	}
	if len(vps) != 1 || vps[0] != "founded" {
		t.Errorf("VPs = %v", vps)
	}
}

func TestChunkDeterminerAndAdjectives(t *testing.T) {
	cs := chunksOf("The famous entrepreneur created a small company")
	nps := npTexts(cs)
	if len(nps) != 2 || nps[0] != "The famous entrepreneur" || nps[1] != "a small company" {
		t.Errorf("NPs = %v", nps)
	}
}

func TestChunkVerbGroup(t *testing.T) {
	cs := chunksOf("Apple was founded by Steve Jobs")
	vps := vpTexts(cs)
	if len(vps) != 1 || vps[0] != "was founded" {
		t.Errorf("VPs = %v", vps)
	}
}

func TestChunkVerbGroupWithAdverb(t *testing.T) {
	cs := chunksOf("The company was originally founded in Cupertino")
	vps := vpTexts(cs)
	if len(vps) != 1 || vps[0] != "was originally founded" {
		t.Errorf("VPs = %v", vps)
	}
}

func TestChunkHeadNoun(t *testing.T) {
	cs := chunksOf("American computer pioneers")
	if len(cs) == 0 || cs[0].Kind != ChunkNP {
		t.Fatalf("chunks = %+v", cs)
	}
	if got := cs[0].HeadNoun(); got != "pioneers" {
		t.Errorf("HeadNoun = %q, want %q", got, "pioneers")
	}
	vp := Chunk{Kind: ChunkVP}
	if vp.HeadNoun() != "" {
		t.Error("VP HeadNoun should be empty")
	}
}

func TestChunkIsProper(t *testing.T) {
	cs := chunksOf("Steve Jobs met the engineer")
	var proper, common *Chunk
	for i := range cs {
		if cs[i].Kind != ChunkNP {
			continue
		}
		if cs[i].Text() == "Steve Jobs" {
			proper = &cs[i]
		} else {
			common = &cs[i]
		}
	}
	if proper == nil || !proper.IsProper() {
		t.Error("'Steve Jobs' should be a proper NP")
	}
	if common == nil || common.IsProper() {
		t.Error("'the engineer' should not be proper")
	}
}

func TestChunkOffsets(t *testing.T) {
	cs := chunksOf("Steve Jobs founded Apple in 1976")
	for _, c := range cs {
		if c.Last <= c.First {
			t.Errorf("bad chunk bounds %+v", c)
		}
		if len(c.Tokens) != c.Last-c.First {
			t.Errorf("token count mismatch %+v", c)
		}
	}
	// Chunks tile the sentence.
	total := 0
	for _, c := range cs {
		total += len(c.Tokens)
	}
	if total != len(Tokenize("Steve Jobs founded Apple in 1976")) {
		t.Errorf("chunks do not tile sentence: %d tokens covered", total)
	}
}

func TestNounPhrases(t *testing.T) {
	nps := NounPhrases("Tim Cook leads Apple and Satya Nadella leads Microsoft.")
	if len(nps) != 4 {
		texts := npTexts(nps)
		t.Errorf("NounPhrases = %v", texts)
	}
}

func TestChunkKindString(t *testing.T) {
	if ChunkNP.String() != "NP" || ChunkVP.String() != "VP" || ChunkOther.String() != "O" {
		t.Error("ChunkKind strings wrong")
	}
}

func TestChunkEmpty(t *testing.T) {
	if got := ChunkSentence(nil); len(got) != 0 {
		t.Errorf("ChunkSentence(nil) = %v", got)
	}
}
