package text

import "strings"

// Stem implements the Porter stemming algorithm (Porter 1980), used to
// conflate word forms when building context vectors for NED and keyphrase
// matching (§4). The implementation follows the original five-step
// description.
func Stem(word string) string {
	w := strings.ToLower(word)
	if len(w) <= 2 {
		return w
	}
	w = step1a(w)
	w = step1b(w)
	w = step1c(w)
	w = step2(w)
	w = step3(w)
	w = step4(w)
	w = step5a(w)
	w = step5b(w)
	return w
}

// isCons reports whether w[i] is a consonant in Porter's sense.
func isCons(w string, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isCons(w, i-1)
	}
	return true
}

// measure returns Porter's m: the number of VC sequences in w.
func measure(w string) int {
	n := 0
	i := 0
	// Skip initial consonants.
	for i < len(w) && isCons(w, i) {
		i++
	}
	for i < len(w) {
		// Vowel run.
		for i < len(w) && !isCons(w, i) {
			i++
		}
		if i >= len(w) {
			break
		}
		// Consonant run -> one VC.
		for i < len(w) && isCons(w, i) {
			i++
		}
		n++
	}
	return n
}

func containsVowel(w string) bool {
	for i := range w {
		if !isCons(w, i) {
			return true
		}
	}
	return false
}

func endsDoubleCons(w string) bool {
	n := len(w)
	return n >= 2 && w[n-1] == w[n-2] && isCons(w, n-1)
}

// endsCVC reports whether w ends consonant-vowel-consonant where the final
// consonant is not w, x, or y.
func endsCVC(w string) bool {
	n := len(w)
	if n < 3 {
		return false
	}
	if !isCons(w, n-3) || isCons(w, n-2) || !isCons(w, n-1) {
		return false
	}
	switch w[n-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func step1a(w string) string {
	switch {
	case strings.HasSuffix(w, "sses"):
		return w[:len(w)-2]
	case strings.HasSuffix(w, "ies"):
		return w[:len(w)-2]
	case strings.HasSuffix(w, "ss"):
		return w
	case strings.HasSuffix(w, "s"):
		return w[:len(w)-1]
	}
	return w
}

func step1b(w string) string {
	if strings.HasSuffix(w, "eed") {
		if measure(w[:len(w)-3]) > 0 {
			return w[:len(w)-1]
		}
		return w
	}
	var stem string
	switch {
	case strings.HasSuffix(w, "ed") && containsVowel(w[:len(w)-2]):
		stem = w[:len(w)-2]
	case strings.HasSuffix(w, "ing") && containsVowel(w[:len(w)-3]):
		stem = w[:len(w)-3]
	default:
		return w
	}
	switch {
	case strings.HasSuffix(stem, "at"), strings.HasSuffix(stem, "bl"), strings.HasSuffix(stem, "iz"):
		return stem + "e"
	case endsDoubleCons(stem) && !strings.HasSuffix(stem, "l") && !strings.HasSuffix(stem, "s") && !strings.HasSuffix(stem, "z"):
		return stem[:len(stem)-1]
	case measure(stem) == 1 && endsCVC(stem):
		return stem + "e"
	}
	return stem
}

func step1c(w string) string {
	if strings.HasSuffix(w, "y") && containsVowel(w[:len(w)-1]) {
		return w[:len(w)-1] + "i"
	}
	return w
}

var step2Rules = []struct{ suffix, repl string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

func step2(w string) string {
	for _, r := range step2Rules {
		if strings.HasSuffix(w, r.suffix) {
			stem := w[:len(w)-len(r.suffix)]
			if measure(stem) > 0 {
				return stem + r.repl
			}
			return w
		}
	}
	return w
}

var step3Rules = []struct{ suffix, repl string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(w string) string {
	for _, r := range step3Rules {
		if strings.HasSuffix(w, r.suffix) {
			stem := w[:len(w)-len(r.suffix)]
			if measure(stem) > 0 {
				return stem + r.repl
			}
			return w
		}
	}
	return w
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(w string) string {
	for _, suf := range step4Suffixes {
		if strings.HasSuffix(w, suf) {
			stem := w[:len(w)-len(suf)]
			if measure(stem) <= 1 {
				return w
			}
			if suf == "ion" && !strings.HasSuffix(stem, "s") && !strings.HasSuffix(stem, "t") {
				return w
			}
			return stem
		}
	}
	return w
}

func step5a(w string) string {
	if strings.HasSuffix(w, "e") {
		stem := w[:len(w)-1]
		m := measure(stem)
		if m > 1 || (m == 1 && !endsCVC(stem)) {
			return stem
		}
	}
	return w
}

func step5b(w string) string {
	if measure(w) > 1 && endsDoubleCons(w) && strings.HasSuffix(w, "l") {
		return w[:len(w)-1]
	}
	return w
}
