package text

// stopwords is a compact English stopword list used when building context
// vectors and keyphrase sets; function words carry no entity-discriminating
// signal.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "and": true, "or": true, "but": true,
	"if": true, "then": true, "else": true, "when": true, "while": true,
	"of": true, "at": true, "by": true, "for": true, "with": true,
	"about": true, "against": true, "between": true, "into": true,
	"through": true, "during": true, "before": true, "after": true,
	"above": true, "below": true, "to": true, "from": true, "up": true,
	"down": true, "in": true, "out": true, "on": true, "off": true,
	"over": true, "under": true, "again": true, "further": true,
	"once": true, "here": true, "there": true, "where": true, "why": true,
	"how": true, "all": true, "any": true, "both": true, "each": true,
	"few": true, "more": true, "most": true, "other": true, "some": true,
	"such": true, "no": true, "nor": true, "not": true, "only": true,
	"own": true, "same": true, "so": true, "than": true, "too": true,
	"very": true, "can": true, "will": true, "just": true, "should": true,
	"now": true, "is": true, "am": true, "are": true, "was": true,
	"were": true, "be": true, "been": true, "being": true, "have": true,
	"has": true, "had": true, "having": true, "do": true, "does": true,
	"did": true, "doing": true, "would": true, "could": true, "ought": true,
	"i": true, "me": true, "my": true, "we": true, "our": true, "you": true,
	"your": true, "he": true, "him": true, "his": true, "she": true,
	"her": true, "it": true, "its": true, "they": true, "them": true,
	"their": true, "what": true, "which": true, "who": true, "whom": true,
	"this": true, "that": true, "these": true, "those": true, "as": true,
	"until": true, "because": true, "also": true, "however": true,
}

// IsStopword reports whether the lowercase form of w is a stopword.
func IsStopword(w string) bool { return stopwords[lower(w)] }

// ContentWords returns the non-stopword, alphabetic tokens of s,
// lowercased.
func ContentWords(s string) []string {
	var out []string
	for _, t := range Tokenize(s) {
		w := lower(t.Text)
		if stopwords[w] || !isAlphaWord(w) {
			continue
		}
		out = append(out, w)
	}
	return out
}

// ContentStems returns Porter stems of the content words of s.
func ContentStems(s string) []string {
	ws := ContentWords(s)
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = Stem(w)
	}
	return out
}

func isAlphaWord(w string) bool {
	if w == "" {
		return false
	}
	for _, r := range w {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '-' || r == '\'') {
			return false
		}
	}
	return true
}

func lower(s string) string {
	// ASCII fast path.
	hasUpper := false
	for i := 0; i < len(s); i++ {
		if s[i] >= 'A' && s[i] <= 'Z' {
			hasUpper = true
			break
		}
	}
	if !hasUpper {
		return s
	}
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}
