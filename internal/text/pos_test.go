package text

import (
	"strings"
	"testing"
)

func tagsOf(sentence string) ([]string, []string) {
	ts := Tag(Tokenize(sentence))
	words := make([]string, len(ts))
	tags := make([]string, len(ts))
	for i, t := range ts {
		words[i] = t.Text
		tags[i] = t.Tag
	}
	return words, tags
}

func TestTagSimpleSentence(t *testing.T) {
	words, tags := tagsOf("Steve Jobs founded Apple in 1976 .")
	want := map[string]string{
		"Steve": TagNNP, "Jobs": TagNNP, "founded": TagVBD,
		"Apple": TagNNP, "in": TagIN, "1976": TagCD, ".": TagPct,
	}
	for i, w := range words {
		if want[w] != "" && tags[i] != want[w] {
			t.Errorf("tag(%q) = %s, want %s", w, tags[i], want[w])
		}
	}
}

func TestTagPassive(t *testing.T) {
	words, tags := tagsOf("Apple was founded by Steve Jobs")
	for i, w := range words {
		if w == "founded" && tags[i] != TagVBN {
			t.Errorf("passive 'founded' tagged %s, want VBN", tags[i])
		}
		if w == "was" && tags[i] != TagVBD {
			t.Errorf("'was' tagged %s", tags[i])
		}
	}
}

func TestTagPassiveWithAdverb(t *testing.T) {
	_, tags := tagsOf("The company was originally founded in Cupertino")
	joined := strings.Join(tags, " ")
	if !strings.Contains(joined, TagVBN) {
		t.Errorf("expected VBN in %v", tags)
	}
}

func TestTagPerfect(t *testing.T) {
	words, tags := tagsOf("Apple has acquired the startup")
	for i, w := range words {
		if w == "acquired" && tags[i] != TagVBN {
			t.Errorf("'acquired' after has tagged %s, want VBN", tags[i])
		}
	}
}

func TestTagInfinitive(t *testing.T) {
	words, tags := tagsOf("He wants to found a company")
	for i, w := range words {
		if w == "found" && tags[i] != TagVB {
			t.Errorf("'to found' tagged %s, want VB", tags[i])
		}
	}
}

func TestTagClosedClass(t *testing.T) {
	cases := map[string]string{
		"the": TagDT, "of": TagIN, "and": TagCC, "he": TagPRP,
		"to": TagTO, "would": TagMD, "who": TagWP,
	}
	for w, want := range cases {
		_, tags := tagsOf("x " + w + " x") // mid-sentence
		if tags[1] != want {
			t.Errorf("tag(%q) = %s, want %s", w, tags[1], want)
		}
	}
}

func TestTagMorphology(t *testing.T) {
	cases := map[string]string{
		"companies":  TagNNS,
		"quickly":    TagRB,
		"famous":     TagJJ,
		"acquires":   TagVBZ,
		"developing": TagVBG,
		"3,000":      TagCD,
		"42":         TagCD,
	}
	for w, want := range cases {
		_, tags := tagsOf("it " + w + " it")
		if tags[1] != want {
			t.Errorf("tag(%q) = %s, want %s", w, tags[1], want)
		}
	}
}

func TestTagProperMidSentence(t *testing.T) {
	_, tags := tagsOf("the Galaxy phone")
	if tags[1] != TagNNP {
		t.Errorf("mid-sentence capitalized word tagged %s, want NNP", tags[1])
	}
}

func TestTagDeterminerNoun(t *testing.T) {
	words, tags := tagsOf("He admired the work of the team")
	for i, w := range words {
		if w == "work" && tags[i] != TagNN {
			t.Errorf("'the work' tagged %s, want NN", tags[i])
		}
	}
}

func TestTagWords(t *testing.T) {
	ts := TagWords([]string{"Apple", "acquired", "NeXT"})
	if len(ts) != 3 || ts[1].Tag != TagVBD {
		t.Errorf("TagWords = %+v", ts)
	}
}

func TestLemma(t *testing.T) {
	cases := []struct{ word, tag, want string }{
		{"founded", TagVBD, "found"},
		{"acquired", TagVBD, "acquire"},
		{"acquires", TagVBZ, "acquire"},
		{"acquiring", TagVBG, "acquire"},
		{"married", TagVBD, "marry"},
		{"won", TagVBD, "win"},
		{"written", TagVBN, "write"},
		{"releases", TagVBZ, "release"},
		{"developing", TagVBG, "develop"},
		{"Apple", TagNNP, "apple"},
	}
	for _, c := range cases {
		if got := Lemma(c.word, c.tag); got != c.want {
			t.Errorf("Lemma(%q,%s) = %q, want %q", c.word, c.tag, got, c.want)
		}
	}
}

func TestIsStopwordAndContentWords(t *testing.T) {
	if !IsStopword("The") || IsStopword("Apple") {
		t.Error("stopword check wrong")
	}
	got := ContentWords("The quick brown fox, it jumped over 3 lazy dogs!")
	for _, w := range got {
		if IsStopword(w) {
			t.Errorf("stopword %q leaked into content words", w)
		}
	}
	if contains(got, "3") {
		t.Error("numbers should be excluded from content words")
	}
	if !contains(got, "quick") || !contains(got, "fox") {
		t.Errorf("content words missing: %v", got)
	}
}

func TestContentStems(t *testing.T) {
	got := ContentStems("connected connection connects")
	for _, s := range got[1:] {
		if s != got[0] {
			t.Errorf("stems differ: %v", got)
		}
	}
}
