package text

import (
	"strings"
	"unicode"
)

// Part-of-speech tagging with a compact Penn-Treebank-style tag set. The
// tagger is lexicon-plus-rules: a closed-class lexicon, a verb lexicon
// covering common relational verbs, morphological suffix heuristics, and a
// handful of Brill-style contextual repair rules. Open IE and the pattern
// extractors (§3) consume these tags.
const (
	TagDT  = "DT"  // determiner
	TagNN  = "NN"  // noun, singular
	TagNNS = "NNS" // noun, plural
	TagNNP = "NNP" // proper noun
	TagVB  = "VB"  // verb, base
	TagVBD = "VBD" // verb, past
	TagVBZ = "VBZ" // verb, 3sg present
	TagVBP = "VBP" // verb, non-3sg present
	TagVBG = "VBG" // verb, gerund
	TagVBN = "VBN" // verb, past participle
	TagIN  = "IN"  // preposition / subordinating conjunction
	TagJJ  = "JJ"  // adjective
	TagRB  = "RB"  // adverb
	TagCC  = "CC"  // coordinating conjunction
	TagCD  = "CD"  // cardinal number
	TagPRP = "PRP" // pronoun
	TagTO  = "TO"  // "to"
	TagMD  = "MD"  // modal
	TagWP  = "WP"  // wh-pronoun
	TagPct = "."   // punctuation
)

// TaggedToken is a token with its part-of-speech tag.
type TaggedToken struct {
	Token
	Tag string
}

var closedClass = map[string]string{
	"the": TagDT, "a": TagDT, "an": TagDT, "this": TagDT, "that": TagDT,
	"these": TagDT, "those": TagDT, "every": TagDT, "some": TagDT,
	"no": TagDT, "each": TagDT, "its": TagDT, "his": TagDT, "her": TagDT,
	"their": TagDT, "any": TagDT,

	"of": TagIN, "in": TagIN, "on": TagIN, "at": TagIN, "by": TagIN,
	"with": TagIN, "from": TagIN, "into": TagIN, "through": TagIN,
	"during": TagIN, "before": TagIN, "after": TagIN, "between": TagIN,
	"under": TagIN, "over": TagIN, "about": TagIN, "against": TagIN,
	"as": TagIN, "since": TagIN, "until": TagIN, "near": TagIN,
	"for": TagIN,

	"and": TagCC, "or": TagCC, "but": TagCC, "nor": TagCC, "yet": TagCC,

	"he": TagPRP, "she": TagPRP, "it": TagPRP, "they": TagPRP, "we": TagPRP,
	"i": TagPRP, "you": TagPRP, "him": TagPRP, "them": TagPRP, "us": TagPRP,

	"who": TagWP, "whom": TagWP, "which": TagWP, "what": TagWP,
	"whose": TagWP, "where": TagWP, "when": TagWP,

	"to": TagTO,

	"will": TagMD, "would": TagMD, "can": TagMD, "could": TagMD,
	"may": TagMD, "might": TagMD, "shall": TagMD, "should": TagMD,
	"must": TagMD,

	"is": TagVBZ, "are": TagVBP, "was": TagVBD, "were": TagVBD,
	"be": TagVB, "been": TagVBN, "being": TagVBG, "am": TagVBP,
	"has": TagVBZ, "have": TagVBP, "had": TagVBD, "having": TagVBG,
	"does": TagVBZ, "do": TagVBP, "did": TagVBD,

	"not": TagRB, "also": TagRB, "very": TagRB, "often": TagRB,
	"usually": TagRB, "never": TagRB, "always": TagRB, "later": TagRB,
	"now": TagRB, "then": TagRB, "there": TagRB, "here": TagRB,
	"still": TagRB, "already": TagRB, "together": TagRB,
}

// verbLemmas lists base forms of verbs; inflections are recognized
// morphologically. It covers the relational verbs common in encyclopedic
// text (and used by the synthetic corpus generator).
var verbLemmas = map[string]bool{
	"found": true, "establish": true, "create": true, "start": true,
	"acquire": true, "buy": true, "purchase": true, "merge": true,
	"marry": true, "wed": true, "divorce": true, "bear": true,
	"locate": true, "headquarter": true, "base": true, "situate": true,
	"release": true, "launch": true, "announce": true, "unveil": true,
	"introduce": true, "develop": true, "design": true, "produce": true,
	"make": true, "build": true, "manufacture": true, "invent": true,
	"graduate": true, "study": true, "attend": true, "enroll": true,
	"work": true, "serve": true, "join": true, "leave": true, "lead": true,
	"head": true, "direct": true, "manage": true, "run": true,
	"win": true, "receive": true, "earn": true, "award": true,
	"move": true, "relocate": true, "live": true, "reside": true,
	"die": true, "play": true, "perform": true, "star": true,
	"write": true, "author": true, "publish": true, "compose": true,
	"know": true, "call": true, "name": true, "say": true, "report": true,
	"meet": true, "get": true, "give": true, "take": true, "show": true,
	"become": true, "remain": true, "grow": true, "expand": true,
	"employ": true, "hire": true, "appoint": true, "elect": true,
	"succeed": true, "replace": true, "own": true, "hold": true,
	"sell": true, "ship": true, "unlock": true, "love": true,
	"like": true, "prefer": true, "use": true, "compare": true,
	"tweet": true, "post": true, "review": true, "criticize": true,
	"praise": true, "support": true,
}

// irregularPast maps irregular past/participle forms to their lemmas.
var irregularPast = map[string]string{
	"founded": "found", "found": "find", "bought": "buy", "wed": "wed",
	"born": "bear", "bore": "bear", "led": "lead", "ran": "run",
	"won": "win", "wrote": "write", "written": "write", "made": "make",
	"built": "build", "left": "leave", "grew": "grow", "grown": "grow",
	"became": "become", "held": "hold", "sold": "sell", "knew": "know",
	"known": "know", "said": "say", "died": "die", "got": "get",
	"met": "meet", "gave": "give", "given": "give", "took": "take",
	"taken": "take", "showed": "show", "shown": "show",
}

// Tag assigns a part-of-speech tag to every token of a tokenized sentence.
func Tag(tokens []Token) []TaggedToken {
	out := make([]TaggedToken, len(tokens))
	for i, tok := range tokens {
		out[i] = TaggedToken{Token: tok, Tag: lexTag(tok.Text, i == 0)}
	}
	applyContextRules(out)
	return out
}

// TagWords is Tag over a plain word slice (offsets are word indexes).
func TagWords(words []string) []TaggedToken {
	toks := make([]Token, len(words))
	for i, w := range words {
		toks[i] = Token{Text: w, Start: i, End: i + 1}
	}
	return Tag(toks)
}

// lexTag assigns the context-free tag for one token.
func lexTag(w string, sentenceInitial bool) string {
	if w == "" {
		return TagPct
	}
	r := rune(w[0])
	if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
		return TagPct
	}
	if isNumeric(w) {
		return TagCD
	}
	lw := lower(w)
	if tag, ok := closedClass[lw]; ok {
		return tag
	}
	// Capitalized (not sentence-initial closed-class) -> proper noun.
	if unicode.IsUpper(r) {
		if !sentenceInitial {
			return TagNNP
		}
		// Sentence-initially, treat as NNP only if it is not a known
		// common word shape.
		if !verbLemmas[lw] && !looksCommon(lw) {
			return TagNNP
		}
	}
	// Verb morphology against the lemma lexicon.
	if _, ok := irregularPast[lw]; ok {
		return TagVBD
	}
	if verbLemmas[lw] {
		return TagVBP
	}
	if strings.HasSuffix(lw, "ed") && len(lw) > 3 {
		if verbLemmas[strings.TrimSuffix(lw, "ed")] || verbLemmas[strings.TrimSuffix(lw, "d")] ||
			verbLemmas[undouble(strings.TrimSuffix(lw, "ed"))] || verbLemmas[unY(strings.TrimSuffix(lw, "ied"))] {
			return TagVBD
		}
	}
	if strings.HasSuffix(lw, "ing") && len(lw) > 4 {
		base := strings.TrimSuffix(lw, "ing")
		if verbLemmas[base] || verbLemmas[base+"e"] || verbLemmas[undouble(base)] {
			return TagVBG
		}
	}
	// Adjective/adverb suffixes (checked before the plural-s rule so that
	// "famous" is not misread as a plural noun).
	switch {
	case strings.HasSuffix(lw, "ly") && len(lw) > 4:
		return TagRB
	case strings.HasSuffix(lw, "ous"), strings.HasSuffix(lw, "ful"),
		strings.HasSuffix(lw, "able"), strings.HasSuffix(lw, "ible"),
		strings.HasSuffix(lw, "ive"), strings.HasSuffix(lw, "ical"),
		strings.HasSuffix(lw, "ish"), strings.HasSuffix(lw, "less"):
		return TagJJ
	}
	if strings.HasSuffix(lw, "s") && !strings.HasSuffix(lw, "ss") && len(lw) > 2 {
		base := strings.TrimSuffix(lw, "s")
		if verbLemmas[base] || verbLemmas[strings.TrimSuffix(lw, "es")] || verbLemmas[unY(strings.TrimSuffix(lw, "ies"))] {
			return TagVBZ
		}
		return TagNNS
	}
	return TagNN
}

// looksCommon reports whether a lowercase word has a very common
// common-noun/adjective shape, to reduce sentence-initial NNP errors.
func looksCommon(lw string) bool {
	return stopwords[lw] || strings.HasSuffix(lw, "tion") || strings.HasSuffix(lw, "ity")
}

// applyContextRules repairs tags using neighboring context (Brill-style).
func applyContextRules(ts []TaggedToken) {
	for i := range ts {
		lw := lower(ts[i].Text)
		// TO + verb-or-noun -> base verb ("to found a company").
		if i > 0 && ts[i-1].Tag == TagTO && (ts[i].Tag == TagNN || ts[i].Tag == TagVBP || ts[i].Tag == TagVBD) && verbLemmas[lw] {
			ts[i].Tag = TagVB
		}
		// MD + anything verbal -> base verb.
		if i > 0 && ts[i-1].Tag == TagMD && (ts[i].Tag == TagVBP || ts[i].Tag == TagVBD || ts[i].Tag == TagNN) && verbLemmas[lw] {
			ts[i].Tag = TagVB
		}
		// have/has/had + VBD -> VBN ("has acquired").
		if i > 0 && isHave(lower(ts[i-1].Text)) && ts[i].Tag == TagVBD {
			ts[i].Tag = TagVBN
		}
		// be-form + VBD -> VBN ("was founded", "is located").
		if i > 0 && isBe(lower(ts[i-1].Text)) && ts[i].Tag == TagVBD {
			ts[i].Tag = TagVBN
		}
		// be-form + RB + VBD -> VBN ("was originally founded").
		if i > 1 && isBe(lower(ts[i-2].Text)) && ts[i-1].Tag == TagRB && ts[i].Tag == TagVBD {
			ts[i].Tag = TagVBN
		}
		// DT + VB* that could be a noun -> NN ("the work", "a run").
		if i > 0 && ts[i-1].Tag == TagDT && (ts[i].Tag == TagVBP || ts[i].Tag == TagVB) {
			ts[i].Tag = TagNN
		}
	}
}

func isBe(w string) bool {
	switch w {
	case "is", "are", "was", "were", "be", "been", "being", "am":
		return true
	}
	return false
}

func isHave(w string) bool {
	switch w {
	case "have", "has", "had", "having":
		return true
	}
	return false
}

func isNumeric(w string) bool {
	digits := 0
	for _, r := range w {
		if unicode.IsDigit(r) {
			digits++
		} else if r != ',' && r != '.' && r != '-' {
			return false
		}
	}
	return digits > 0
}

func undouble(s string) string {
	if len(s) >= 2 && s[len(s)-1] == s[len(s)-2] {
		return s[:len(s)-1]
	}
	return s
}

func unY(s string) string {
	if s == "" {
		return s
	}
	return s + "y"
}

// Lemma returns the base form of a verb token given its tag, using the
// irregular table and simple de-inflection; for non-verbs it returns the
// lowercase word.
func Lemma(word, tag string) string {
	lw := lower(word)
	if isBe(lw) {
		return "be"
	}
	switch tag {
	case TagVBD, TagVBN:
		if base, ok := irregularPast[lw]; ok {
			return base
		}
		for _, try := range []string{
			strings.TrimSuffix(lw, "ed"),
			strings.TrimSuffix(lw, "d"),
			undouble(strings.TrimSuffix(lw, "ed")),
			unY(strings.TrimSuffix(lw, "ied")),
		} {
			if verbLemmas[try] {
				return try
			}
		}
		return lw
	case TagVBZ:
		for _, try := range []string{
			strings.TrimSuffix(lw, "s"),
			strings.TrimSuffix(lw, "es"),
			unY(strings.TrimSuffix(lw, "ies")),
		} {
			if verbLemmas[try] {
				return try
			}
		}
		return strings.TrimSuffix(lw, "s")
	case TagVBG:
		base := strings.TrimSuffix(lw, "ing")
		for _, try := range []string{base, base + "e", undouble(base)} {
			if verbLemmas[try] {
				return try
			}
		}
		return base
	}
	return lw
}
