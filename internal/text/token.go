// Package text is the from-scratch natural-language processing substrate of
// the reproduction: tokenizer, sentence splitter, Porter stemmer, stopword
// list, part-of-speech tagger, and phrase chunker.
//
// The tutorial's extraction pipelines (§3) assume "computational
// linguistics" components such as tokenizers and parsers; since the repro
// environment has no NLP libraries (the stated reproduction gate), this
// package provides compact rule-based implementations over which the
// extractors run. They are deliberately conservative: high precision on the
// controlled synthetic corpus, graceful degradation on arbitrary English.
package text

import (
	"strings"
	"unicode"
)

// Token is one token with its byte offsets into the original string.
type Token struct {
	Text  string
	Start int // byte offset of first byte
	End   int // byte offset one past last byte
}

// Tokenize splits s into word, number, and punctuation tokens. Rules:
//
//   - maximal runs of letters/digits/apostrophes/hyphens form one token
//     ("don't", "state-of-the-art", "iPhone5");
//   - each punctuation rune is its own token;
//   - a trailing sentence period is split off ("Inc." keeps its period only
//     when the token is a known abbreviation).
func Tokenize(s string) []Token {
	var out []Token
	i := 0
	for i < len(s) {
		r, size := decodeRune(s[i:])
		switch {
		case unicode.IsSpace(r):
			i += size
		case isWordRune(r):
			start := i
			for i < len(s) {
				r2, sz := decodeRune(s[i:])
				if !isWordRune(r2) {
					break
				}
				i += sz
			}
			tok := s[start:i]
			// "U.S." style internal periods: absorb alternating
			// letter-period sequences.
			for i < len(s) && s[i] == '.' && isAbbrevSoFar(tok) {
				tok += "."
				i++
				start2 := i
				for i < len(s) {
					r2, sz := decodeRune(s[i:])
					if !isWordRune(r2) {
						break
					}
					i += sz
				}
				tok += s[start2:i]
			}
			out = append(out, Token{Text: tok, Start: start, End: i})
		default:
			out = append(out, Token{Text: s[i : i+size], Start: i, End: i + size})
			i += size
		}
	}
	return out
}

// Words returns just the token texts.
func Words(s string) []string {
	toks := Tokenize(s)
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '\'' || r == '-' || r == '_'
}

// isAbbrevSoFar reports whether tok looks like the prefix of a dotted
// abbreviation ("U", "U.S", "Inc" is NOT — only single letters qualify).
func isAbbrevSoFar(tok string) bool {
	parts := strings.Split(tok, ".")
	last := parts[len(parts)-1]
	return len(last) == 1 && unicode.IsUpper(rune(last[0]))
}

func decodeRune(s string) (rune, int) {
	if s == "" {
		return 0, 0
	}
	if s[0] < 0x80 {
		return rune(s[0]), 1
	}
	for i, r := range s {
		_ = i
		n := 1
		for n < len(s) && s[n]&0xC0 == 0x80 {
			n++
		}
		return r, n
	}
	return 0, 1
}

// knownAbbrevs are tokens whose trailing period is part of the token, so a
// following capitalized word does not necessarily open a new sentence.
var knownAbbrevs = map[string]bool{
	"Mr": true, "Mrs": true, "Ms": true, "Dr": true, "Prof": true,
	"Inc": true, "Corp": true, "Ltd": true, "Co": true, "St": true,
	"Jr": true, "Sr": true, "vs": true, "etc": true, "approx": true,
}

// Sentence is one sentence with byte offsets into the original text.
type Sentence struct {
	Text  string
	Start int
	End   int
}

// SplitSentences segments text into sentences at ., !, ? boundaries,
// keeping known abbreviations and decimal numbers intact.
func SplitSentences(text string) []Sentence {
	var out []Sentence
	start := 0
	i := 0
	flush := func(end int) {
		seg := strings.TrimSpace(text[start:end])
		if seg != "" {
			// Recompute trimmed offsets.
			b := start + strings.Index(text[start:end], seg)
			out = append(out, Sentence{Text: seg, Start: b, End: b + len(seg)})
		}
		start = end
	}
	for i < len(text) {
		c := text[i]
		if c == '!' || c == '?' {
			flush(i + 1)
			i++
			continue
		}
		if c == '.' {
			// Decimal number: digit on both sides.
			if i > 0 && i+1 < len(text) && isDigit(text[i-1]) && isDigit(text[i+1]) {
				i++
				continue
			}
			// Abbreviation: preceding word is a known abbreviation or a
			// single capital letter.
			w := precedingWord(text, i)
			if knownAbbrevs[w] || (len(w) == 1 && w[0] >= 'A' && w[0] <= 'Z') {
				i++
				continue
			}
			flush(i + 1)
			i++
			continue
		}
		if c == '\n' && i+1 < len(text) && text[i+1] == '\n' {
			// Paragraph break ends a sentence even without punctuation.
			flush(i)
			i += 2
			start = i
			continue
		}
		i++
	}
	flush(len(text))
	return out
}

func precedingWord(s string, i int) string {
	end := i
	j := i
	for j > 0 {
		r := rune(s[j-1])
		if !unicode.IsLetter(r) {
			break
		}
		j--
	}
	return s[j:end]
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }
