package text

// Phrase chunking: grouping tagged tokens into base noun phrases and verb
// groups. Open information extraction "aggressively taps into noun phrases
// as entity candidates and verbal phrases as prototypic patterns for
// relations" (§3) — this chunker supplies exactly those units.

// ChunkKind labels a chunk.
type ChunkKind uint8

const (
	// ChunkNP is a base noun phrase (optional determiner, adjectives,
	// nouns / proper nouns).
	ChunkNP ChunkKind = iota
	// ChunkVP is a verb group (optional auxiliaries/modals/adverbs plus a
	// head verb, optionally followed by a particle/preposition glued by
	// the extractor, not here).
	ChunkVP
	// ChunkOther covers everything else, one token per chunk.
	ChunkOther
)

func (k ChunkKind) String() string {
	switch k {
	case ChunkNP:
		return "NP"
	case ChunkVP:
		return "VP"
	default:
		return "O"
	}
}

// Chunk is a contiguous span of tagged tokens.
type Chunk struct {
	Kind   ChunkKind
	Tokens []TaggedToken
	First  int // index of first token in the sentence
	Last   int // index one past the last token
}

// Text joins the chunk's token texts with single spaces.
func (c Chunk) Text() string {
	n := 0
	for _, t := range c.Tokens {
		n += len(t.Text) + 1
	}
	b := make([]byte, 0, n)
	for i, t := range c.Tokens {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, t.Text...)
	}
	return string(b)
}

// HeadNoun returns the rightmost noun token of an NP chunk ("computer
// pioneers" -> "pioneers"), or "" for other chunks. Head nouns drive the
// Wikipedia category analysis in the taxonomy module (§2).
func (c Chunk) HeadNoun() string {
	if c.Kind != ChunkNP {
		return ""
	}
	for i := len(c.Tokens) - 1; i >= 0; i-- {
		switch c.Tokens[i].Tag {
		case TagNN, TagNNS, TagNNP:
			return c.Tokens[i].Text
		}
	}
	return ""
}

// IsProper reports whether an NP chunk consists of proper nouns (an entity
// mention candidate rather than a concept).
func (c Chunk) IsProper() bool {
	if c.Kind != ChunkNP {
		return false
	}
	sawNNP := false
	for _, t := range c.Tokens {
		switch t.Tag {
		case TagNNP:
			sawNNP = true
		case TagDT, TagCD:
			// Allowed inside proper chunks ("The 2 Guys").
		default:
			return false
		}
	}
	return sawNNP
}

// ChunkSentence groups a tagged sentence into NP, VP, and Other chunks with
// a left-to-right finite-state scan.
func ChunkSentence(ts []TaggedToken) []Chunk {
	var out []Chunk
	i := 0
	for i < len(ts) {
		if start, end, ok := scanNP(ts, i); ok {
			out = append(out, Chunk{Kind: ChunkNP, Tokens: ts[start:end], First: start, Last: end})
			i = end
			continue
		}
		if start, end, ok := scanVP(ts, i); ok {
			out = append(out, Chunk{Kind: ChunkVP, Tokens: ts[start:end], First: start, Last: end})
			i = end
			continue
		}
		out = append(out, Chunk{Kind: ChunkOther, Tokens: ts[i : i+1], First: i, Last: i + 1})
		i++
	}
	return out
}

// scanNP matches DT? (JJ|CD)* (NN|NNS|NNP)+ starting at i.
func scanNP(ts []TaggedToken, i int) (int, int, bool) {
	j := i
	if j < len(ts) && ts[j].Tag == TagDT {
		j++
	}
	for j < len(ts) && (ts[j].Tag == TagJJ || ts[j].Tag == TagCD) {
		j++
	}
	nouns := 0
	for j < len(ts) && isNounTag(ts[j].Tag) {
		j++
		nouns++
	}
	if nouns == 0 {
		return 0, 0, false
	}
	return i, j, true
}

// scanVP matches (MD|RB)* (be|have)* RB* V+ starting at i, requiring at
// least one main verb tag.
func scanVP(ts []TaggedToken, i int) (int, int, bool) {
	j := i
	for j < len(ts) && (ts[j].Tag == TagMD || ts[j].Tag == TagRB) {
		j++
	}
	for j < len(ts) && isVerbTag(ts[j].Tag) {
		j++
	}
	// Allow one trailing adverb then more verbs ("was originally founded").
	for j < len(ts) && ts[j].Tag == TagRB && j+1 < len(ts) && isVerbTag(ts[j+1].Tag) {
		j++
		for j < len(ts) && isVerbTag(ts[j].Tag) {
			j++
		}
	}
	// Require at least one verb token in [i, j).
	hasVerb := false
	for k := i; k < j; k++ {
		if isVerbTag(ts[k].Tag) {
			hasVerb = true
			break
		}
	}
	if !hasVerb {
		return 0, 0, false
	}
	return i, j, true
}

func isNounTag(t string) bool { return t == TagNN || t == TagNNS || t == TagNNP }

func isVerbTag(t string) bool {
	switch t {
	case TagVB, TagVBD, TagVBZ, TagVBP, TagVBG, TagVBN:
		return true
	}
	return false
}

// NounPhrases returns the NP chunks of a raw sentence — the entity
// candidates open IE taps into.
func NounPhrases(sentence string) []Chunk {
	var nps []Chunk
	for _, c := range ChunkSentence(Tag(Tokenize(sentence))) {
		if c.Kind == ChunkNP {
			nps = append(nps, c)
		}
	}
	return nps
}
