// Package qcache is the sharded query-result cache of the read path: it
// memoizes the binding sets of conjunctive queries over a core.Store and
// serves repeats without re-evaluating the join — the cheap half of the
// cache-plus-cost-based-evaluation recipe public KB endpoints rely on to
// survive skewed repeat traffic.
//
// # The generation-invalidation contract
//
// The cache never observes writes and writers never take cache locks.
// Instead, the store exports monotonic write generations
// (core.Store.PatternGen): every index stripe carries a counter that is
// bumped by each insertion into the stripe and by each tombstone whose
// fact the stripe indexes, and a store-wide counter (WriteGen) backs the
// patterns no single stripe can vouch for (full scans, patterns naming
// terms the dictionary has never interned). Fallback values are tagged
// (high bit set) so they occupy a value domain disjoint from stripe
// generations: a generation recorded while a pattern's term was unknown
// can never compare equal to the stripe generation the pattern reads
// after a write interns the term. Because an insert bumps the stripes of
// all three of its leading terms — and a tombstone does too — any write
// that can change the matches of a pattern necessarily advances that
// pattern's generation.
//
// A cache entry therefore records, for each pattern of its query, the
// pattern's generation observed *before* evaluation. A hit validates each
// recorded pattern with one atomic load: if every generation is
// unchanged, no write can have altered the result; if any differs, the
// entry is discarded and the query re-evaluated. Generations advancing
// spuriously (an unrelated write hashing to the same stripe) costs a
// recomputation, never a stale answer. Capturing the generations before
// evaluation makes a write racing the fill land the entry with an
// already-stale generation, so it self-invalidates on its first hit — the
// cache is exactly as consistent as an uncached query racing the same
// write.
//
// Entries are spread over 2^k independently locked shards by key hash,
// each an LRU list, so concurrent readers contend only within a shard and
// eviction is O(1).
package qcache

import (
	"container/list"
	"context"
	"hash/maphash"
	"strconv"
	"sync"
	"sync/atomic"

	"kbharvest/internal/core"
	"kbharvest/internal/rdf"
)

// Options tunes a Cache.
type Options struct {
	// Shards is the number of independently locked cache shards, rounded
	// up to a power of two. Default 16.
	Shards int
	// PerShard is the maximum number of cached queries per shard (LRU
	// evicted beyond it). Default 256.
	PerShard int
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`    // includes generation invalidations
	Stale     uint64 `json:"stale"`     // entries discarded on generation mismatch
	Evictions uint64 `json:"evictions"` // LRU capacity evictions
	Entries   int    `json:"entries"`   // current cached queries
}

// HitRate returns hits / (hits + misses), 0 when idle.
func (s Stats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// Cache is a sharded, generation-validated LRU cache of conjunctive query
// results. It is safe for concurrent use.
type Cache struct {
	st     *core.Store
	shards []shard
	mask   uint64
	seed   maphash.Seed

	hits, misses, stale, evictions atomic.Uint64
}

type entry struct {
	key      string
	pats     []rdf.Triple // constant skeleton of each pattern, for PatternGen
	gens     []uint64     // generation of pats[i] before evaluation
	bindings []core.Binding
}

type shard struct {
	mu  sync.Mutex
	m   map[string]*list.Element
	lru list.List // front = most recently used; values are *entry
	cap int
}

// New returns a cache over st.
func New(st *core.Store, opt Options) *Cache {
	shards := opt.Shards
	if shards <= 0 {
		shards = 16
	}
	// Round up to a power of two so key hashes spread by masking.
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := opt.PerShard
	if perShard <= 0 {
		perShard = 256
	}
	c := &Cache{
		st:     st,
		shards: make([]shard, n),
		mask:   uint64(n - 1),
		seed:   maphash.MakeSeed(),
	}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*list.Element)
		c.shards[i].cap = perShard
	}
	return c
}

// Key renders the canonical cache key of a query: its patterns plus the
// limit (a truncated result set cannot serve a larger request).
func Key(patterns []core.Pattern, limit int) string {
	var b []byte
	for _, p := range patterns {
		for _, pt := range [3]core.PatternTerm{p.S, p.P, p.O} {
			if pt.Var != "" {
				b = append(b, '?')
				b = append(b, pt.Var...)
			} else {
				b = append(b, pt.Const.String()...)
			}
			b = append(b, 0x1f)
		}
		b = append(b, 0x1e)
	}
	if limit > 0 {
		b = strconv.AppendInt(b, int64(limit), 10)
	}
	return string(b)
}

// Query evaluates a conjunction of patterns through the cache, returning
// the bindings, whether they came from a still-valid cache entry, and any
// evaluation error (ctx cancellation; errors are never cached). limit <= 0
// means all results. The returned bindings are shared with the cache and
// must not be modified.
func (c *Cache) Query(ctx context.Context, patterns []core.Pattern, limit int) ([]core.Binding, bool, error) {
	key := Key(patterns, limit)
	sh := &c.shards[maphash.String(c.seed, key)&c.mask]

	sh.mu.Lock()
	if el, ok := sh.m[key]; ok {
		e := el.Value.(*entry)
		if c.valid(e) {
			sh.lru.MoveToFront(el)
			sh.mu.Unlock()
			c.hits.Add(1)
			return e.bindings, true, nil
		}
		sh.lru.Remove(el)
		delete(sh.m, key)
		c.stale.Add(1)
	}
	sh.mu.Unlock()
	c.misses.Add(1)

	// Capture each pattern's generation before evaluating so a write
	// racing the evaluation leaves the entry already-stale.
	pats := make([]rdf.Triple, len(patterns))
	gens := make([]uint64, len(patterns))
	for i, p := range patterns {
		pats[i] = constSkeleton(p)
		gens[i] = c.st.PatternGen(pats[i])
	}
	var bindings []core.Binding
	if err := c.st.QueryFunc(ctx, patterns, limit, func(b core.Binding) bool {
		bindings = append(bindings, b)
		return true
	}); err != nil {
		return nil, false, err
	}

	e := &entry{key: key, pats: pats, gens: gens, bindings: bindings}
	sh.mu.Lock()
	if el, ok := sh.m[key]; ok {
		// A concurrent miss filled the same key; keep the newer entry.
		sh.lru.Remove(el)
		delete(sh.m, key)
	}
	sh.m[key] = sh.lru.PushFront(e)
	for sh.lru.Len() > sh.cap {
		last := sh.lru.Back()
		sh.lru.Remove(last)
		delete(sh.m, last.Value.(*entry).key)
		c.evictions.Add(1)
	}
	sh.mu.Unlock()
	return bindings, false, nil
}

// valid reports whether every pattern generation recorded in e is still
// current — one atomic load per pattern.
func (c *Cache) valid(e *entry) bool {
	for i, pat := range e.pats {
		if c.st.PatternGen(pat) != e.gens[i] {
			return false
		}
	}
	return true
}

// constSkeleton reduces a pattern to the constant triple PatternGen keys
// on: variables — bound later by the join or not at all — act as
// wildcards, which is conservative (the chosen stripe is bumped by every
// write that could affect any instantiation of the pattern).
func constSkeleton(p core.Pattern) rdf.Triple {
	var t rdf.Triple
	if p.S.Var == "" {
		t.S = p.S.Const
	}
	if p.P.Var == "" {
		t.P = p.P.Const
	}
	if p.O.Var == "" {
		t.O = p.O.Const
	}
	return t
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	s := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Stale:     c.stale.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Entries += sh.lru.Len()
		sh.mu.Unlock()
	}
	return s
}
