package qcache

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"kbharvest/internal/core"
	"kbharvest/internal/rdf"
)

func fixture() *core.Store {
	st := core.NewStore()
	st.Add(rdf.T("jobs", "founded", "apple"))
	st.Add(rdf.T("wozniak", "founded", "apple"))
	st.Add(rdf.T("gates", "founded", "microsoft"))
	st.Add(rdf.T("apple", "locatedIn", "cupertino"))
	st.Add(rdf.T("microsoft", "locatedIn", "redmond"))
	return st
}

func joinQuery() []core.Pattern {
	return []core.Pattern{
		{S: core.PVar("p"), P: core.PIRI("founded"), O: core.PVar("c")},
		{S: core.PVar("c"), P: core.PIRI("locatedIn"), O: core.PVar("city")},
	}
}

func TestCacheHitAfterMiss(t *testing.T) {
	st := fixture()
	c := New(st, Options{})
	ctx := context.Background()
	rows, cached, err := c.Query(ctx, joinQuery(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("first query reported cached")
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	rows2, cached, err := c.Query(ctx, joinQuery(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("repeat query missed the cache")
	}
	if len(rows2) != 3 {
		t.Errorf("cached rows = %d, want 3", len(rows2))
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestCacheInvalidatedByInsert(t *testing.T) {
	st := fixture()
	c := New(st, Options{})
	ctx := context.Background()
	if _, _, err := c.Query(ctx, joinQuery(), 0); err != nil {
		t.Fatal(err)
	}
	st.Add(rdf.T("next", "locatedIn", "redwood"))
	st.Add(rdf.T("jobs", "founded", "next"))
	rows, cached, err := c.Query(ctx, joinQuery(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("entry survived a write that changed its answer")
	}
	if len(rows) != 4 {
		t.Errorf("post-insert rows = %d, want 4", len(rows))
	}
}

// A query naming a term the dictionary has never interned records the
// store-wide fallback generation. The write that then interns the term
// puts it on a fresh stripe whose counter starts near the recorded
// fallback value — with untagged generations a store holding one fact
// (writeGen=1) would see the new stripe also at generation 1 and serve
// the stale empty result. The fallback tag must force a miss instead.
func TestCacheInvalidatedWhenUnknownTermInterned(t *testing.T) {
	st := core.NewStore()
	st.Add(rdf.T("seed", "rel", "x")) // one fact: writeGen = 1
	c := New(st, Options{})
	ctx := context.Background()
	q := []core.Pattern{{S: core.PIRI("b"), P: core.PIRI("rel"), O: core.PVar("o")}}
	rows, _, err := c.Query(ctx, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("pre-intern rows = %d, want 0", len(rows))
	}
	st.Add(rdf.T("b", "rel", "y")) // interns "b" on a fresh stripe
	rows, cached, err := c.Query(ctx, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("stale empty entry survived the write that interned its subject")
	}
	if len(rows) != 1 {
		t.Errorf("post-intern rows = %d, want 1", len(rows))
	}
}

func TestCacheInvalidatedByRemove(t *testing.T) {
	st := fixture()
	c := New(st, Options{})
	ctx := context.Background()
	if _, _, err := c.Query(ctx, joinQuery(), 0); err != nil {
		t.Fatal(err)
	}
	st.Remove(rdf.T("gates", "founded", "microsoft"))
	rows, cached, err := c.Query(ctx, joinQuery(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("entry survived a tombstone that changed its answer")
	}
	if len(rows) != 2 {
		t.Errorf("post-remove rows = %d, want 2", len(rows))
	}
}

func TestCacheLimitIsPartOfKey(t *testing.T) {
	st := fixture()
	c := New(st, Options{})
	ctx := context.Background()
	rows, _, err := c.Query(ctx, joinQuery(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("limit-1 rows = %d", len(rows))
	}
	rows, cached, err := c.Query(ctx, joinQuery(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("limit-0 request hit the limit-1 entry")
	}
	if len(rows) != 3 {
		t.Errorf("unlimited rows = %d, want 3", len(rows))
	}
}

func TestCacheLRUEviction(t *testing.T) {
	st := core.NewStore()
	for i := 0; i < 32; i++ {
		st.Add(rdf.T(fmt.Sprintf("s%d", i), "p", fmt.Sprintf("o%d", i)))
	}
	c := New(st, Options{Shards: 1, PerShard: 4})
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		q := []core.Pattern{{S: core.PIRI(fmt.Sprintf("s%d", i)), P: core.PIRI("p"), O: core.PVar("o")}}
		if _, _, err := c.Query(ctx, q, 0); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Entries != 4 {
		t.Errorf("entries = %d, want shard cap 4", s.Entries)
	}
	if s.Evictions != 4 {
		t.Errorf("evictions = %d, want 4", s.Evictions)
	}
	// The oldest queries were evicted; the newest still hit.
	q := []core.Pattern{{S: core.PIRI("s7"), P: core.PIRI("p"), O: core.PVar("o")}}
	if _, cached, _ := c.Query(ctx, q, 0); !cached {
		t.Error("most recent entry was evicted")
	}
	q = []core.Pattern{{S: core.PIRI("s0"), P: core.PIRI("p"), O: core.PVar("o")}}
	if _, cached, _ := c.Query(ctx, q, 0); cached {
		t.Error("least recent entry survived past capacity")
	}
}

func TestCacheCancellationNotCached(t *testing.T) {
	st := fixture()
	c := New(st, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.Query(ctx, joinQuery(), 0); err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	// The failed evaluation must not have been cached.
	rows, cached, err := c.Query(context.Background(), joinQuery(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("cancelled evaluation was cached")
	}
	if len(rows) != 3 {
		t.Errorf("rows = %d, want 3", len(rows))
	}
}

// Concurrent queriers against one writer that keeps invalidating the
// cached entries mid-stream: every result set must be one the store could
// have held at some instant (here: row counts within the reachable range),
// and the run must be race-clean under -race.
func TestCacheConcurrentQueriersWithWriter(t *testing.T) {
	st := fixture()
	c := New(st, Options{Shards: 4, PerShard: 64})
	const queriers = 8
	const rounds = 300
	stop := make(chan struct{})
	var writerWG sync.WaitGroup
	// Writer: churn a (founder, company, city) chain in and out, bumping
	// generations that overlap the cached join's patterns.
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			co := fmt.Sprintf("startup%d", i%7)
			st.Add(rdf.T("founder", "founded", co))
			st.Add(rdf.T(co, "locatedIn", "garage"))
			st.Remove(rdf.T("founder", "founded", co))
			st.Remove(rdf.T(co, "locatedIn", "garage"))
		}
	}()
	errs := make(chan error, queriers)
	var queryWG sync.WaitGroup
	for q := 0; q < queriers; q++ {
		queryWG.Add(1)
		go func() {
			defer queryWG.Done()
			ctx := context.Background()
			for r := 0; r < rounds; r++ {
				rows, _, err := c.Query(ctx, joinQuery(), 0)
				if err != nil {
					errs <- err
					return
				}
				// The fixture contributes exactly 3 stable rows; the
				// writer adds at most one transient chain.
				if len(rows) < 3 || len(rows) > 4 {
					errs <- fmt.Errorf("impossible row count %d", len(rows))
					return
				}
			}
		}()
	}
	queryWG.Wait()
	close(stop)
	writerWG.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if s := c.Stats(); s.Hits+s.Misses == 0 {
		t.Error("no cache traffic recorded")
	}
}
