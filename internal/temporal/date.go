// Package temporal implements the temporal-knowledge component of the
// tutorial (§3): calendar arithmetic, extraction of temporal expressions
// from text, normalization to day numbers, and inference of the validity
// intervals ("timespans during which certain facts hold") of facts.
package temporal

import (
	"fmt"

	"kbharvest/internal/core"
)

// Date is a calendar date. Month and Day may be zero to express reduced
// precision ("2007" or "January 2007").
type Date struct {
	Year  int
	Month int // 1..12, or 0 if unknown
	Day   int // 1..31, or 0 if unknown
}

// Epoch is the calendar date of day number 0.
var Epoch = Date{Year: 1900, Month: 1, Day: 1}

// civilToDays converts a full y/m/d to days since 1970-01-01 using the
// standard proleptic-Gregorian algorithm, then shifts to the 1900 epoch.
func civilToDays(y, m, d int) int {
	yy := y
	if m <= 2 {
		yy--
	}
	era := yy / 400
	if yy < 0 && yy%400 != 0 {
		era--
	}
	yoe := yy - era*400
	mp := (m + 9) % 12
	doy := (153*mp+2)/5 + d - 1
	doe := yoe*365 + yoe/4 - yoe/100 + doy
	days1970 := era*146097 + doe - 719468
	return days1970 + 25567 // 1900-01-01 is day -25567 from 1970
}

// daysToCivil is the inverse of civilToDays.
func daysToCivil(day int) (y, m, d int) {
	z := day - 25567 + 719468
	era := z / 146097
	if z < 0 && z%146097 != 0 {
		era--
	}
	doe := z - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	yy := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	d = doy - (153*mp+2)/5 + 1
	m = mp + 3
	if mp >= 10 {
		m = mp - 9
	}
	if m <= 2 {
		yy++
	}
	return yy, m, d
}

// DayNum converts the date to a day number since Epoch. Missing month/day
// resolve to the earliest covered day (January / the 1st).
func (d Date) DayNum() int {
	m, dd := d.Month, d.Day
	if m == 0 {
		m = 1
	}
	if dd == 0 {
		dd = 1
	}
	return civilToDays(d.Year, m, dd)
}

// Interval converts the date to the interval of days it covers: a full
// date covers one day, "January 2007" covers the month, "2007" the year.
func (d Date) Interval() core.Interval {
	switch {
	case d.Month == 0:
		return core.Interval{
			Begin: civilToDays(d.Year, 1, 1),
			End:   civilToDays(d.Year+1, 1, 1) - 1,
		}
	case d.Day == 0:
		ny, nm := d.Year, d.Month+1
		if nm == 13 {
			ny, nm = ny+1, 1
		}
		return core.Interval{
			Begin: civilToDays(d.Year, d.Month, 1),
			End:   civilToDays(ny, nm, 1) - 1,
		}
	default:
		day := d.DayNum()
		return core.Interval{Begin: day, End: day}
	}
}

// FromDay converts a day number back to a full calendar date.
func FromDay(day int) Date {
	y, m, d := daysToCivil(day)
	return Date{Year: y, Month: m, Day: d}
}

// IsFull reports whether year, month, and day are all present.
func (d Date) IsFull() bool { return d.Year != 0 && d.Month != 0 && d.Day != 0 }

// String renders ISO-style: "2007-01-09", "2007-01", or "2007".
func (d Date) String() string {
	switch {
	case d.Month == 0:
		return fmt.Sprintf("%04d", d.Year)
	case d.Day == 0:
		return fmt.Sprintf("%04d-%02d", d.Year, d.Month)
	default:
		return fmt.Sprintf("%04d-%02d-%02d", d.Year, d.Month, d.Day)
	}
}

// MonthNames maps English month names (lowercase) to month numbers.
var MonthNames = map[string]int{
	"january": 1, "february": 2, "march": 3, "april": 4, "may": 5,
	"june": 6, "july": 7, "august": 8, "september": 9, "october": 10,
	"november": 11, "december": 12,
}

// monthName returns the English name of month m (1-based).
func monthName(m int) string {
	names := []string{"January", "February", "March", "April", "May",
		"June", "July", "August", "September", "October", "November",
		"December"}
	if m < 1 || m > 12 {
		return "Undecember"
	}
	return names[m-1]
}

// Format renders the date in natural English ("January 9, 2007"), matching
// the style the synthetic corpus uses.
func (d Date) Format() string {
	switch {
	case d.Month == 0:
		return fmt.Sprintf("%d", d.Year)
	case d.Day == 0:
		return fmt.Sprintf("%s %d", monthName(d.Month), d.Year)
	default:
		return fmt.Sprintf("%s %d, %d", monthName(d.Month), d.Day, d.Year)
	}
}

// DaysInMonth returns the number of days of month m in year y.
func DaysInMonth(y, m int) int {
	switch m {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	case 2:
		if isLeap(y) {
			return 29
		}
		return 28
	}
	return 0
}

func isLeap(y int) bool {
	return y%4 == 0 && (y%100 != 0 || y%400 == 0)
}

// Valid reports whether the (possibly reduced-precision) date denotes a
// real calendar point.
func (d Date) Valid() bool {
	if d.Year < 1 || d.Year > 9999 {
		return false
	}
	if d.Month == 0 {
		return d.Day == 0
	}
	if d.Month < 1 || d.Month > 12 {
		return false
	}
	if d.Day == 0 {
		return true
	}
	return d.Day >= 1 && d.Day <= DaysInMonth(d.Year, d.Month)
}
