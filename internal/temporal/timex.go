package temporal

import (
	"sort"
	"strconv"
	"strings"

	"kbharvest/internal/core"
	"kbharvest/internal/text"
)

// Timex is one temporal expression found in text, normalized to the
// interval of days it denotes.
type Timex struct {
	Start, End int    // byte offsets
	Text       string // surface form
	Interval   core.Interval
	// Kind distinguishes points ("January 5, 2007", "2007") from ranges
	// ("from 1998 to 2004") and open bounds ("since 1998").
	Kind TimexKind
}

// TimexKind labels a temporal expression.
type TimexKind uint8

const (
	// Point covers dates of any precision (day, month, year).
	Point TimexKind = iota
	// Range covers "from X to Y" / "between X and Y".
	Range
	// Since covers lower-bounded expressions ("since 1998").
	Since
	// Until covers upper-bounded expressions ("until 2004").
	Until
)

func (k TimexKind) String() string {
	switch k {
	case Point:
		return "point"
	case Range:
		return "range"
	case Since:
		return "since"
	case Until:
		return "until"
	}
	return "timex?"
}

// ExtractTimexes finds temporal expressions in a sentence: explicit dates
// ("January 5, 2007", "2007-01-05"), bare years, and range constructions
// over them.
func ExtractTimexes(s string) []Timex {
	toks := text.Tokenize(s)
	var points []Timex
	used := make([]bool, len(toks))

	// Pass 1: multi-token dates "Month DD, YYYY" and "Month YYYY".
	for i := 0; i < len(toks); i++ {
		if used[i] {
			continue
		}
		m, ok := MonthNames[strings.ToLower(toks[i].Text)]
		if !ok {
			continue
		}
		// Month DD , YYYY
		if i+3 < len(toks) && isDayNum(toks[i+1].Text) && toks[i+2].Text == "," && isYear(toks[i+3].Text) {
			d := Date{Year: atoi(toks[i+3].Text), Month: m, Day: atoi(toks[i+1].Text)}
			if d.Valid() {
				points = append(points, Timex{
					Start: toks[i].Start, End: toks[i+3].End,
					Text: s[toks[i].Start:toks[i+3].End], Interval: d.Interval(),
				})
				used[i], used[i+1], used[i+2], used[i+3] = true, true, true, true
				continue
			}
		}
		// Month YYYY
		if i+1 < len(toks) && isYear(toks[i+1].Text) {
			d := Date{Year: atoi(toks[i+1].Text), Month: m}
			points = append(points, Timex{
				Start: toks[i].Start, End: toks[i+1].End,
				Text: s[toks[i].Start:toks[i+1].End], Interval: d.Interval(),
			})
			used[i], used[i+1] = true, true
		}
	}
	// Pass 2: ISO dates, decades ("the 1990s"), and bare years.
	for i, t := range toks {
		if used[i] {
			continue
		}
		if d, ok := parseISO(t.Text); ok {
			points = append(points, Timex{
				Start: t.Start, End: t.End, Text: t.Text, Interval: d.Interval(),
			})
			used[i] = true
			continue
		}
		if decade, ok := parseDecade(t.Text); ok {
			points = append(points, Timex{
				Start: t.Start, End: t.End, Text: t.Text,
				Interval: core.Interval{
					Begin: Date{Year: decade}.Interval().Begin,
					End:   Date{Year: decade + 9}.Interval().End,
				},
			})
			used[i] = true
			continue
		}
		if isYear(t.Text) {
			d := Date{Year: atoi(t.Text)}
			points = append(points, Timex{
				Start: t.Start, End: t.End, Text: t.Text, Interval: d.Interval(),
			})
			used[i] = true
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Start < points[j].Start })

	// Pass 3: combine points into ranges / open bounds using cue words.
	wordBefore := func(off int) string {
		j := off
		for j > 0 && s[j-1] == ' ' {
			j--
		}
		k := j
		for k > 0 && s[k-1] != ' ' {
			k--
		}
		if k < 0 || j < k {
			return ""
		}
		return strings.ToLower(strings.Trim(s[k:j], ",."))
	}
	var out []Timex
	skip := make(map[int]bool)
	for i := 0; i < len(points); i++ {
		if skip[i] {
			continue
		}
		p := points[i]
		cue := wordBefore(p.Start)
		if (cue == "from" || cue == "between") && i+1 < len(points) {
			mid := strings.ToLower(s[p.End:points[i+1].Start])
			if strings.Contains(mid, " to ") || strings.Contains(mid, " and ") ||
				strings.TrimSpace(mid) == "to" || strings.TrimSpace(mid) == "and" ||
				strings.Contains(mid, "until") {
				out = append(out, Timex{
					Start: p.Start, End: points[i+1].End,
					Text: s[p.Start:points[i+1].End],
					Interval: core.Interval{
						Begin: p.Interval.Begin,
						End:   points[i+1].Interval.End,
					},
					Kind: Range,
				})
				skip[i+1] = true
				continue
			}
		}
		switch cue {
		case "since":
			out = append(out, Timex{
				Start: p.Start, End: p.End, Text: p.Text,
				Interval: core.Interval{Begin: p.Interval.Begin, End: core.MaxDay},
				Kind:     Since,
			})
		case "until":
			out = append(out, Timex{
				Start: p.Start, End: p.End, Text: p.Text,
				Interval: core.Interval{Begin: core.MinDay, End: p.Interval.End},
				Kind:     Until,
			})
		default:
			out = append(out, p)
		}
	}
	return out
}

// "from X to Y" where X's cue is "from": also handle "X until Y" ranges
// rendered as "from 1998 until 2004" (cue from, mid until) — covered above.

func isYear(s string) bool {
	if len(s) != 4 || !allDigits(s) {
		return false
	}
	y := atoi(s)
	return y >= 1000 && y <= 2099
}

func isDayNum(s string) bool {
	if len(s) == 0 || len(s) > 2 || !allDigits(s) {
		return false
	}
	d := atoi(s)
	return d >= 1 && d <= 31
}

// parseDecade recognizes "1990s" / "1990's", returning the decade's first
// year.
func parseDecade(s string) (int, bool) {
	s = strings.TrimSuffix(s, "'s")
	s = strings.TrimSuffix(s, "s")
	if len(s) != 4 || !allDigits(s) {
		return 0, false
	}
	y := atoi(s)
	if y < 1000 || y > 2090 || y%10 != 0 {
		return 0, false
	}
	return y, true
}

func parseISO(s string) (Date, bool) {
	// YYYY-MM-DD or YYYY-MM.
	parts := strings.Split(s, "-")
	if len(parts) < 2 || len(parts) > 3 || len(parts[0]) != 4 {
		return Date{}, false
	}
	for _, p := range parts {
		if !allDigits(p) {
			return Date{}, false
		}
	}
	d := Date{Year: atoi(parts[0]), Month: atoi(parts[1])}
	if len(parts) == 3 {
		d.Day = atoi(parts[2])
	}
	if !d.Valid() || d.Month == 0 {
		return Date{}, false
	}
	return d, true
}

func allDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return s != ""
}

func atoi(s string) int {
	n, _ := strconv.Atoi(s)
	return n
}

// ScopeSentence infers the validity interval a sentence expresses for the
// fact it states: a range/since/until wins over points; a single point
// denotes its covered interval; several points denote their span. ok is
// false when the sentence carries no temporal expression.
func ScopeSentence(s string) (core.Interval, bool) {
	txs := ExtractTimexes(s)
	if len(txs) == 0 {
		return core.Interval{}, false
	}
	for _, tx := range txs {
		if tx.Kind == Range || tx.Kind == Since || tx.Kind == Until {
			return tx.Interval, true
		}
	}
	iv := txs[0].Interval
	for _, tx := range txs[1:] {
		iv = iv.Union(tx.Interval)
	}
	return iv, true
}

// AggregateScopes merges several observed intervals for the same fact into
// one: the median of begins and the median of ends — robust against a
// minority of mis-scoped sentences.
func AggregateScopes(ivs []core.Interval) (core.Interval, bool) {
	if len(ivs) == 0 {
		return core.Interval{}, false
	}
	begins := make([]int, len(ivs))
	ends := make([]int, len(ivs))
	for i, iv := range ivs {
		begins[i] = iv.Begin
		ends[i] = iv.End
	}
	sort.Ints(begins)
	sort.Ints(ends)
	iv := core.Interval{Begin: begins[len(begins)/2], End: ends[len(ends)/2]}
	if !iv.Valid() {
		iv = core.Interval{Begin: iv.Begin, End: iv.Begin}
	}
	return iv, true
}
