package temporal

import (
	"testing"
	"testing/quick"
)

func TestEpochIsDayZero(t *testing.T) {
	if got := Epoch.DayNum(); got != 0 {
		t.Errorf("Epoch day = %d, want 0", got)
	}
}

func TestKnownDates(t *testing.T) {
	cases := []struct {
		d    Date
		want int
	}{
		{Date{1900, 1, 2}, 1},
		{Date{1900, 2, 1}, 31},
		{Date{1901, 1, 1}, 365},
		{Date{1904, 3, 1}, 365*4 + 31 + 29}, // 1904 is a leap year
		{Date{2000, 1, 1}, 36524},
	}
	for _, c := range cases {
		if got := c.d.DayNum(); got != c.want {
			t.Errorf("%v.Day = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(n uint32) bool {
		day := int(n % 100000) // ~273 years
		d := FromDay(day)
		return d.DayNum() == day && d.Valid() && d.IsFull()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDayDefaultsMissingParts(t *testing.T) {
	if (Date{Year: 1950}).DayNum() != (Date{1950, 1, 1}).DayNum() {
		t.Error("year-only should resolve to Jan 1")
	}
	if (Date{Year: 1950, Month: 6}).DayNum() != (Date{1950, 6, 1}).DayNum() {
		t.Error("month without day should resolve to the 1st")
	}
}

func TestDateInterval(t *testing.T) {
	// Year precision covers the year.
	iv := Date{Year: 2000}.Interval()
	if iv.Days() != 366 { // 2000 is a leap year
		t.Errorf("year interval = %d days", iv.Days())
	}
	// Month precision covers the month.
	iv = Date{Year: 2001, Month: 2}.Interval()
	if iv.Days() != 28 {
		t.Errorf("feb 2001 = %d days", iv.Days())
	}
	// December rolls into the next year.
	iv = Date{Year: 2001, Month: 12}.Interval()
	if iv.Days() != 31 {
		t.Errorf("dec = %d days", iv.Days())
	}
	// Full date covers one day.
	iv = Date{2001, 5, 17}.Interval()
	if iv.Days() != 1 {
		t.Errorf("full date = %d days", iv.Days())
	}
}

func TestDateStringAndFormat(t *testing.T) {
	cases := []struct {
		d          Date
		str, human string
	}{
		{Date{2007, 1, 9}, "2007-01-09", "January 9, 2007"},
		{Date{2007, 1, 0}, "2007-01", "January 2007"},
		{Date{2007, 0, 0}, "2007", "2007"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.str {
			t.Errorf("String = %q, want %q", got, c.str)
		}
		if got := c.d.Format(); got != c.human {
			t.Errorf("Format = %q, want %q", got, c.human)
		}
	}
}

func TestDaysInMonth(t *testing.T) {
	if DaysInMonth(2000, 2) != 29 || DaysInMonth(1900, 2) != 28 || DaysInMonth(2004, 2) != 29 {
		t.Error("leap year rules wrong")
	}
	if DaysInMonth(2001, 4) != 30 || DaysInMonth(2001, 1) != 31 {
		t.Error("month lengths wrong")
	}
	if DaysInMonth(2001, 13) != 0 {
		t.Error("invalid month should yield 0")
	}
}

func TestDateValid(t *testing.T) {
	valid := []Date{{2000, 2, 29}, {1999, 12, 31}, {2000, 0, 0}, {2000, 5, 0}}
	invalid := []Date{{2001, 2, 29}, {2000, 13, 1}, {2000, 0, 5}, {0, 1, 1}, {2000, 4, 31}}
	for _, d := range valid {
		if !d.Valid() {
			t.Errorf("%v should be valid", d)
		}
	}
	for _, d := range invalid {
		if d.Valid() {
			t.Errorf("%v should be invalid", d)
		}
	}
}

func TestMonthNames(t *testing.T) {
	if MonthNames["january"] != 1 || MonthNames["december"] != 12 {
		t.Error("month name map wrong")
	}
	if monthName(1) != "January" || monthName(12) != "December" {
		t.Error("monthName wrong")
	}
	if monthName(0) == "January" {
		t.Error("monthName(0) should not be January")
	}
}
