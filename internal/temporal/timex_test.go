package temporal

import (
	"testing"

	"kbharvest/internal/core"
)

func TestExtractFullDate(t *testing.T) {
	txs := ExtractTimexes("Alice was born on February 24, 1955 in Springfield.")
	if len(txs) != 1 {
		t.Fatalf("timexes = %+v", txs)
	}
	want := Date{1955, 2, 24}.Interval()
	if txs[0].Interval != want || txs[0].Kind != Point {
		t.Errorf("timex = %+v, want interval %v", txs[0], want)
	}
	if txs[0].Text != "February 24, 1955" {
		t.Errorf("surface = %q", txs[0].Text)
	}
}

func TestExtractMonthYear(t *testing.T) {
	txs := ExtractTimexes("The product launched in March 2010.")
	if len(txs) != 1 {
		t.Fatalf("timexes = %+v", txs)
	}
	if txs[0].Interval != (Date{2010, 3, 0}).Interval() {
		t.Errorf("interval = %v", txs[0].Interval)
	}
}

func TestExtractBareYear(t *testing.T) {
	txs := ExtractTimexes("Alice founded Acme in 1976.")
	if len(txs) != 1 {
		t.Fatalf("timexes = %+v", txs)
	}
	want := Date{Year: 1976}.Interval()
	if txs[0].Interval != want {
		t.Errorf("interval = %v, want %v", txs[0].Interval, want)
	}
}

func TestExtractISO(t *testing.T) {
	txs := ExtractTimexes("Recorded on 2007-01-09 at noon.")
	if len(txs) != 1 {
		t.Fatalf("timexes = %+v", txs)
	}
	if txs[0].Interval != (Date{2007, 1, 9}).Interval() {
		t.Errorf("interval = %v", txs[0].Interval)
	}
}

func TestExtractRange(t *testing.T) {
	for _, s := range []string{
		"From 1998 to 2004, Alice worked at Acme.",
		"Alice worked at Acme from 1998 to 2004.",
		"Alice led Acme between 1998 and 2004.",
		"Alice worked at Acme from 1998 until 2004.",
	} {
		txs := ExtractTimexes(s)
		if len(txs) != 1 {
			t.Fatalf("%q: timexes = %+v", s, txs)
		}
		if txs[0].Kind != Range {
			t.Errorf("%q: kind = %v", s, txs[0].Kind)
		}
		want := core.Interval{
			Begin: Date{Year: 1998}.Interval().Begin,
			End:   Date{Year: 2004}.Interval().End,
		}
		if txs[0].Interval != want {
			t.Errorf("%q: interval = %v, want %v", s, txs[0].Interval, want)
		}
	}
}

func TestExtractSinceUntil(t *testing.T) {
	txs := ExtractTimexes("Alice has led Acme since 2004.")
	if len(txs) != 1 || txs[0].Kind != Since {
		t.Fatalf("timexes = %+v", txs)
	}
	if txs[0].Interval.End != core.MaxDay {
		t.Errorf("since should be open-ended: %v", txs[0].Interval)
	}
	txs = ExtractTimexes("Alice led Acme until 2004.")
	if len(txs) != 1 || txs[0].Kind != Until {
		t.Fatalf("timexes = %+v", txs)
	}
	if txs[0].Interval.Begin != core.MinDay {
		t.Errorf("until should be open-beginning: %v", txs[0].Interval)
	}
}

func TestExtractDecade(t *testing.T) {
	txs := ExtractTimexes("The company grew rapidly during the 1990s.")
	if len(txs) != 1 {
		t.Fatalf("timexes = %+v", txs)
	}
	want := core.Interval{
		Begin: Date{Year: 1990}.Interval().Begin,
		End:   Date{Year: 1999}.Interval().End,
	}
	if txs[0].Interval != want {
		t.Errorf("decade interval = %v, want %v", txs[0].Interval, want)
	}
	// Non-decade "1993s" should not parse as a decade.
	if txs := ExtractTimexes("Model 1993s shipped."); len(txs) != 0 {
		t.Errorf("false decade: %+v", txs)
	}
}

func TestNoFalseYears(t *testing.T) {
	for _, s := range []string{
		"The phone sold 5000 units.",
		"Room 0042 is closed.",
		"It costs 3.99 dollars.",
	} {
		if txs := ExtractTimexes(s); len(txs) != 0 {
			t.Errorf("%q: unexpected timexes %+v", s, txs)
		}
	}
}

func TestTimexKindString(t *testing.T) {
	if Point.String() != "point" || Range.String() != "range" ||
		Since.String() != "since" || Until.String() != "until" {
		t.Error("kind strings wrong")
	}
}

func TestScopeSentence(t *testing.T) {
	iv, ok := ScopeSentence("From 1998 to 2004, Alice worked at Acme.")
	if !ok || iv.Begin != (Date{Year: 1998}).Interval().Begin {
		t.Errorf("scope = %v, %v", iv, ok)
	}
	iv, ok = ScopeSentence("Alice founded Acme in 1976.")
	if !ok || iv != (Date{Year: 1976}).Interval() {
		t.Errorf("scope = %v, %v", iv, ok)
	}
	if _, ok := ScopeSentence("Alice founded Acme."); ok {
		t.Error("no-timex sentence should report !ok")
	}
}

func TestScopeSentenceMultiplePoints(t *testing.T) {
	iv, ok := ScopeSentence("Alice joined in 1998 and left in 2004.")
	if !ok {
		t.Fatal("no scope")
	}
	if iv.Begin != (Date{Year: 1998}).Interval().Begin || iv.End != (Date{Year: 2004}).Interval().End {
		t.Errorf("span = %v", iv)
	}
}

// Property: ExtractTimexes never panics, offsets always slice validly,
// and every interval is well-formed, on arbitrary noisy input.
func TestExtractTimexesRobustQuick(t *testing.T) {
	inputs := []string{
		"", " ", "....", "1999 2000 2001 from to and since until",
		"from until since between and 1850",
		"January , 32, 99999 February 0 March -5",
		"from 2004 to 1998", // inverted range
		"én ünïcode 2010 tëxt",
		"2007-13-40 2007-00 2007- -2007 20075",
	}
	for _, in := range inputs {
		for _, tx := range ExtractTimexes(in) {
			if tx.Start < 0 || tx.End > len(in) || tx.Start >= tx.End {
				t.Errorf("%q: bad offsets %+v", in, tx)
			}
			if in[tx.Start:tx.End] != tx.Text {
				t.Errorf("%q: text mismatch %+v", in, tx)
			}
		}
	}
}

func TestAggregateScopes(t *testing.T) {
	ivs := []core.Interval{
		{Begin: 100, End: 200},
		{Begin: 105, End: 195},
		{Begin: 500, End: 600}, // outlier
	}
	iv, ok := AggregateScopes(ivs)
	if !ok {
		t.Fatal("no aggregate")
	}
	if iv.Begin != 105 || iv.End != 200 {
		t.Errorf("aggregate = %v", iv)
	}
	if _, ok := AggregateScopes(nil); ok {
		t.Error("empty aggregate should report !ok")
	}
}
